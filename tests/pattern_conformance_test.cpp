// Differential conformance harness for the dependency-pattern engine.
//
// Every pattern family (trivial, chain, stencils, fft, tree, random_nearest,
// all_to_all, spread) is lowered onto the runtime in both address mode and
// region mode and swept through the runtime's configuration axes — nested
// submission on/off (flat and per-step generator-task shapes), renaming
// on/off, chain depth 0/1/default, pooling on/off, dependency shards 1/64,
// small task windows, both schedulers — and the final memory image must be
// bit-identical to the sequential oracle every time. Any missed or phantom
// dependency, lost rename copy, or torn cell in any configuration shows up
// as a checksum mismatch.
//
// The PatternFuzz suite additionally draws random (spec, config) pairs from
// a seed stream under a time budget:
//   SMPSS_TEST_SEED=N        replay exactly seed N (and nothing else)
//   SMPSS_FUZZ_SEED_BASE=N   first seed of the stream (CI uses the run id)
//   SMPSS_FUZZ_BUDGET_MS=N   time box (default 2000 ms)
// Failures print the spec, the config, and a replay command line.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "patterns/driver.hpp"
#include "runtime/runtime.hpp"
#include "sanitizer_util.hpp"
#include "seed_util.hpp"

namespace smpss::patterns {
namespace {

Config base_config() {
  Config cfg;
  cfg.num_threads = 4;
  return cfg;
}

struct Variant {
  const char* name;
  void (*tweak)(RunOptions&);
};

// One axis varied at a time off the 4-thread default, plus the combined
// stress rows at the end. The NestedSteps rows move submission itself onto
// the workers (concurrent submit/retire through the sharded pipeline).
const Variant kSweep[] = {
    {"default", [](RunOptions&) {}},
    {"threads1", [](RunOptions& o) { o.cfg.num_threads = 1; }},
    {"renaming_off", [](RunOptions& o) { o.cfg.renaming = false; }},
    {"chain0", [](RunOptions& o) { o.cfg.chain_depth = 0; }},
    {"chain1", [](RunOptions& o) { o.cfg.chain_depth = 1; }},
    {"pool_off", [](RunOptions& o) { o.cfg.pool_cache = 0; }},
    {"window16", [](RunOptions& o) { o.cfg.task_window = 16; }},
    {"centralized",
     [](RunOptions& o) { o.cfg.scheduler_mode = SchedulerMode::Centralized; }},
    {"extra_field", [](RunOptions& o) { o.nfields = 3; }},
    {"nested_flat_shards1",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_shards = 1;
     }},
    {"nested_flat_shards64",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_shards = 64;
     }},
    {"nested_steps",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
     }},
    {"nested_steps_join",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
       o.join_steps = true;
     }},
    {"window4_norename",
     [](RunOptions& o) {
       o.cfg.task_window = 4;
       o.cfg.renaming = false;
     }},
    {"nested_steps_window16_shards1",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
       o.cfg.task_window = 16;
       o.cfg.dep_shards = 1;
     }},
    // Lock-free sweep: dep_lockfree on/off crossed with the shard layout and
    // chain-depth axes. The nested rows above already exercise the lock-free
    // path at default chain depth (dep_lockfree defaults on); these rows pin
    // the remaining combinations, including the locked fallback that
    // SMPSS_DEP_LOCKFREE=0 selects.
    {"lockfree_chain0_shards1",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.chain_depth = 0;
       o.cfg.dep_shards = 1;
     }},
    {"lockfree_chain0_shards64",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.chain_depth = 0;
       o.cfg.dep_shards = 64;
     }},
    {"locked_nested_shards1",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.cfg.dep_shards = 1;
     }},
    {"locked_nested_shards64",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.cfg.dep_shards = 64;
     }},
    {"locked_nested_chain0",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.cfg.chain_depth = 0;
     }},
    {"locked_nested_steps",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.shape = SubmitShape::NestedSteps;
     }},
    // Aware scheduling policy: placement and ordering change completely
    // (cost EWMA, critical-path promotion, locality routing, per-worker
    // deques) but the dataflow must not. Crossed with both dependency-engine
    // modes and both nested shapes.
    {"aware",
     [](RunOptions& o) { o.cfg.sched_policy = SchedPolicyKind::Aware; }},
    {"aware_lockfree_nested_shards1",
     [](RunOptions& o) {
       o.cfg.sched_policy = SchedPolicyKind::Aware;
       o.cfg.nested_tasks = true;
       o.cfg.dep_shards = 1;
     }},
    {"aware_lockfree_nested_shards64",
     [](RunOptions& o) {
       o.cfg.sched_policy = SchedPolicyKind::Aware;
       o.cfg.nested_tasks = true;
       o.cfg.dep_shards = 64;
     }},
    {"aware_locked_nested",
     [](RunOptions& o) {
       o.cfg.sched_policy = SchedPolicyKind::Aware;
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
     }},
    {"aware_nested_steps",
     [](RunOptions& o) {
       o.cfg.sched_policy = SchedPolicyKind::Aware;
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
     }},
    // Multi-process rows (SMPSS_PROCS > 1): the dependency manager sharded
    // by datum hash across fork()ed ranks over shared memory. Address-mode
    // only (check_spec skips them in region mode) and skipped under TSan
    // (fork + threads); crossed with both submission shapes and both
    // dependency-engine modes. ipc_dist_test owns the deeper sweep — these
    // rows keep the cross-process backend inside the same differential
    // harness every single-process configuration answers to.
    {"procs2_flat", [](RunOptions& o) { o.cfg.procs = 2; }},
    {"procs2_flat_lockfree",
     [](RunOptions& o) {
       o.cfg.procs = 2;
       o.cfg.nested_tasks = true;
     }},
    {"procs2_flat_locked",
     [](RunOptions& o) {
       o.cfg.procs = 2;
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
     }},
    {"procs2_nested_steps",
     [](RunOptions& o) {
       o.cfg.procs = 2;
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
     }},
    {"procs2_nested_steps_locked",
     [](RunOptions& o) {
       o.cfg.procs = 2;
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.shape = SubmitShape::NestedSteps;
     }},
    {"procs3_threads1",
     [](RunOptions& o) {
       o.cfg.procs = 3;
       o.cfg.num_threads = 1;
     }},
};

::testing::AssertionResult images_equal(const PatternImage& got,
                                        const PatternImage& want) {
  if (got == want) return ::testing::AssertionSuccess();
  for (long f = 0; f < want.nfields; ++f)
    for (long p = 0; p < want.width; ++p)
      if (got.at(f, p) != want.at(f, p)) {
        std::ostringstream os;
        os << "first mismatch at row " << f << " point " << p << ": got 0x"
           << std::hex << got.at(f, p) << " want 0x" << want.at(f, p);
        return ::testing::AssertionFailure() << os.str();
      }
  return ::testing::AssertionFailure() << "image shapes differ";
}

/// Run `spec` through the full sweep in every legal lowering mode, diffing
/// against the sequential oracle (computed once per row count).
void check_spec(const PatternSpec& spec) {
  std::map<int, PatternImage> oracle;  // nfields -> ground truth
  const auto expect_for = [&](int nf) -> const PatternImage& {
    auto it = oracle.find(nf);
    if (it == oracle.end()) it = oracle.emplace(nf, run_oracle(spec, nf)).first;
    return it->second;
  };
  for (LowerMode mode : {LowerMode::Address, LowerMode::Region}) {
    if (mode == LowerMode::Address && !address_mode_ok(spec)) continue;
    for (const Variant& v : kSweep) {
      RunOptions opt;
      opt.cfg = base_config();
      opt.mode = mode;
      v.tweak(opt);
      // The multi-process backend lowers in address mode only, and fork +
      // runtime threads is unsupported under TSan — the same rows run
      // single-process there via the rest of the sweep.
      if (opt.cfg.procs > 1 &&
          (mode == LowerMode::Region ||
           !smpss::testing::fork_backend_supported()))
        continue;
      if (opt.nfields == 0) opt.nfields = default_fields(spec);
      RunResult r = run_pattern(spec, opt);
      // NestedSteps spawns one generator per step — per *rank* in the
      // multi-process backend, where every rank runs its own step chain.
      const std::uint64_t expected_tasks =
          spec.total_tasks() +
          (opt.shape == SubmitShape::NestedSteps
               ? static_cast<std::uint64_t>(spec.steps) * opt.cfg.procs
               : 0);
      ASSERT_TRUE(images_equal(r.image, expect_for(opt.nfields)))
          << "variant=" << v.name << "\n  " << spec.describe() << "\n  "
          << opt.describe();
      EXPECT_EQ(r.stats.tasks_spawned, expected_tasks)
          << "variant=" << v.name << " " << spec.describe();
      EXPECT_EQ(r.stats.tasks_inlined, 0u)
          << "variant=" << v.name << " " << spec.describe();
    }
  }
}

PatternSpec standard_spec(PatternKind kind) {
  PatternSpec s;
  s.kind = kind;
  s.width = 8;
  s.steps = 10;
  s.radix = 3;
  s.period = 3;
  s.seed = 0xA11CE;
  return s;
}

// --- the per-family sweeps (narrow enough for address mode too) ---------------

TEST(PatternConformance, Trivial) {
  check_spec(standard_spec(PatternKind::Trivial));
}
TEST(PatternConformance, Chain) {
  check_spec(standard_spec(PatternKind::Chain));
}
TEST(PatternConformance, Stencil1D) {
  check_spec(standard_spec(PatternKind::Stencil1D));
}
TEST(PatternConformance, Stencil1DPeriodic) {
  check_spec(standard_spec(PatternKind::Stencil1DPeriodic));
}
TEST(PatternConformance, Fft) { check_spec(standard_spec(PatternKind::Fft)); }
TEST(PatternConformance, Tree) {
  PatternSpec s = standard_spec(PatternKind::Tree);
  s.width = 16;  // 1, 2, 4, 8, 16, 16, ... — the growing-row path
  check_spec(s);
}
TEST(PatternConformance, RandomNearest) {
  check_spec(standard_spec(PatternKind::RandomNearest));
}
TEST(PatternConformance, AllToAll) {
  // width 8 == kMaxAddressFanIn: the widest graph address mode can carry.
  check_spec(standard_spec(PatternKind::AllToAll));
}
TEST(PatternConformance, Spread) {
  check_spec(standard_spec(PatternKind::Spread));
}

// --- commuting accumulator rows -----------------------------------------------
// AccumMode bolts one commuting write per point task onto the pattern: all
// width tasks of a timestep add their produced value into one shared step
// accumulator, lowered as smpss::commutative() (mutual exclusion, no
// ordering) or smpss::reduction(Plus{}) (per-worker privatization). The
// image must stay bit-identical to the oracle AND the accumulators must
// land on oracle_step_sums exactly — wrapping uint64 addition commutes, so
// any member order that respects mutual exclusion is correct and any torn
// update, lost wakeup, double combine, or missed private shows up as a sum
// mismatch. Swept across lockfree/locked × paper/aware, the axes whose
// acquire paths differ.

struct AccumVariant {
  const char* name;
  void (*tweak)(RunOptions&);
};

const AccumVariant kAccumSweep[] = {
    {"lockfree_paper", [](RunOptions&) {}},
    {"lockfree_aware",
     [](RunOptions& o) { o.cfg.sched_policy = SchedPolicyKind::Aware; }},
    {"locked_paper", [](RunOptions& o) { o.cfg.dep_lockfree = false; }},
    {"locked_aware",
     [](RunOptions& o) {
       o.cfg.dep_lockfree = false;
       o.cfg.sched_policy = SchedPolicyKind::Aware;
     }},
    {"threads1", [](RunOptions& o) { o.cfg.num_threads = 1; }},
    {"renaming_off", [](RunOptions& o) { o.cfg.renaming = false; }},
    {"chain0", [](RunOptions& o) { o.cfg.chain_depth = 0; }},
    {"window16", [](RunOptions& o) { o.cfg.task_window = 16; }},
    {"nested_flat",
     [](RunOptions& o) { o.cfg.nested_tasks = true; }},
    {"nested_steps_lockfree",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
     }},
    {"nested_steps_locked",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.shape = SubmitShape::NestedSteps;
     }},
};

void check_accum_spec(const PatternSpec& spec, AccumMode am) {
  const int nf = default_fields(spec);
  const PatternImage expect = run_oracle(spec, nf);
  const std::vector<Cell> expect_sums = oracle_step_sums(spec, nf);
  for (LowerMode mode : {LowerMode::Address, LowerMode::Region}) {
    if (mode == LowerMode::Address && !address_mode_ok(spec)) continue;
    for (const AccumVariant& v : kAccumSweep) {
      RunOptions opt;
      opt.cfg = base_config();
      opt.mode = mode;
      opt.accum = am;
      v.tweak(opt);
      // Concurrent privatization rides the renaming machinery; the
      // renaming_off row is a commutative-only ablation.
      if (am == AccumMode::Concurrent && !opt.cfg.renaming) continue;
      opt.nfields = nf;
      RunResult r = run_pattern(spec, opt);
      ASSERT_TRUE(images_equal(r.image, expect))
          << "variant=" << v.name << "\n  " << spec.describe() << "\n  "
          << opt.describe();
      ASSERT_EQ(r.accums, expect_sums)
          << "variant=" << v.name << "\n  " << spec.describe() << "\n  "
          << opt.describe();
      // One group per step accumulator, every point task a member, every
      // group sealed and retired by the barrier.
      EXPECT_EQ(r.stats.groups_opened, static_cast<std::uint64_t>(spec.steps))
          << "variant=" << v.name << " " << spec.describe();
      EXPECT_EQ(r.stats.groups_closed, r.stats.groups_opened)
          << "variant=" << v.name << " " << spec.describe();
      EXPECT_EQ(r.stats.group_joins, spec.total_tasks())
          << "variant=" << v.name << " " << spec.describe();
    }
  }
}

TEST(PatternConformance, CommutativeAllToAll) {
  check_accum_spec(standard_spec(PatternKind::AllToAll),
                   AccumMode::Commutative);
}
TEST(PatternConformance, CommutativeSpread) {
  check_accum_spec(standard_spec(PatternKind::Spread),
                   AccumMode::Commutative);
}
TEST(PatternConformance, ConcurrentAllToAll) {
  check_accum_spec(standard_spec(PatternKind::AllToAll),
                   AccumMode::Concurrent);
}
TEST(PatternConformance, ConcurrentSpread) {
  check_accum_spec(standard_spec(PatternKind::Spread), AccumMode::Concurrent);
}

// Wide fan-in: the point tasks lower in region mode while the accumulator
// stays an address-mode commuting parameter — mixed routing on one task.
TEST(PatternConformance, CommutativeWideAllToAllRegionOnly) {
  PatternSpec a2a = standard_spec(PatternKind::AllToAll);
  a2a.width = 24;
  a2a.steps = 6;
  ASSERT_FALSE(address_mode_ok(a2a));
  check_accum_spec(a2a, AccumMode::Commutative);
  check_accum_spec(a2a, AccumMode::Concurrent);
}

// Fan-in wider than any spawn arity: the region-analyzer lowering is the
// only legal one (check_spec skips address mode by itself).
TEST(PatternConformance, WideFanInRegionOnly) {
  PatternSpec a2a = standard_spec(PatternKind::AllToAll);
  a2a.width = 24;
  a2a.steps = 6;
  ASSERT_FALSE(address_mode_ok(a2a));
  check_spec(a2a);

  PatternSpec spread = standard_spec(PatternKind::Spread);
  spread.width = 24;
  spread.steps = 8;
  spread.radix = 6;
  check_spec(spread);

  PatternSpec rn = standard_spec(PatternKind::RandomNearest);
  rn.width = 24;
  rn.radix = 8;
  rn.fraction_ppm = 900000;
  check_spec(rn);
}

// Task grain must not perturb the dataflow: the busywork kernels fold a
// deterministic result into every cell, so a body that skipped (or doubled)
// its kernel diverges from the oracle.
TEST(PatternConformance, KernelGrains) {
  PatternSpec compute = standard_spec(PatternKind::Stencil1D);
  compute.steps = 6;
  compute.kernel = {KernelKind::Compute, 64};
  check_spec(compute);

  PatternSpec memory = standard_spec(PatternKind::Fft);
  memory.steps = 6;
  memory.kernel = {KernelKind::Memory, 2};
  check_spec(memory);
}

// Baselines must agree with the oracle too — the bench's comparison curves
// are only meaningful if every runtime computes the same answer.
TEST(PatternConformance, BaselinesMatchOracle) {
  for (PatternKind kind : all_pattern_kinds()) {
    PatternSpec s = standard_spec(kind);
    const int nf = default_fields(s);
    const PatternImage expect = run_oracle(s, nf);
    ASSERT_TRUE(images_equal(run_taskpool_baseline(s, nf, 4), expect))
        << "taskpool diverged: " << s.describe();
    ASSERT_TRUE(images_equal(run_forkjoin_baseline(s, nf, 4), expect))
        << "forkjoin diverged: " << s.describe();
  }
}

// --- randomized differential fuzzing -------------------------------------------

PatternSpec random_spec(Xoshiro256& rng) {
  PatternSpec s;
  s.kind = all_pattern_kinds()[rng.next_below(kPatternKindCount)];
  s.width = 2 + static_cast<std::int32_t>(rng.next_below(23));   // 2..24
  s.steps = 2 + static_cast<std::int32_t>(rng.next_below(11));   // 2..12
  s.radix = 1 + static_cast<std::int32_t>(rng.next_below(
                    std::min<std::uint64_t>(8, s.width)));
  s.period = 1 + static_cast<std::int32_t>(rng.next_below(4));
  s.fraction_ppm = static_cast<std::uint32_t>(rng.next_below(1000001));
  s.seed = rng.next();
  switch (rng.next_below(3)) {
    case 0: s.kernel = {KernelKind::Empty, 0}; break;
    case 1:
      s.kernel = {KernelKind::Compute,
                  static_cast<std::uint32_t>(rng.next_below(65))};
      break;
    default:
      s.kernel = {KernelKind::Memory,
                  static_cast<std::uint32_t>(rng.next_below(3))};
      break;
  }
  return s;
}

RunOptions random_options(Xoshiro256& rng, const PatternSpec& spec) {
  RunOptions o;
  o.cfg.num_threads = 1 + static_cast<unsigned>(rng.next_below(4));
  o.cfg.renaming = rng.next_below(2) == 0;
  o.cfg.chain_depth = std::array<unsigned, 3>{0, 1, 16}[rng.next_below(3)];
  o.cfg.pool_cache = rng.next_below(2) ? 64u : 0u;
  o.cfg.task_window = std::array<std::size_t, 3>{4, 16, 8192}[rng.next_below(3)];
  o.cfg.dep_shards = rng.next_below(2) ? 64u : 1u;
  o.cfg.dep_lockfree = rng.next_below(2) == 0;
  o.cfg.sched_policy =
      rng.next_below(2) ? SchedPolicyKind::Aware : SchedPolicyKind::Paper;
  o.cfg.nested_tasks = rng.next_below(2) == 0;
  if (o.cfg.nested_tasks && rng.next_below(2) == 0) {
    o.shape = SubmitShape::NestedSteps;
    o.join_steps = rng.next_below(2) == 0;
  }
  o.mode = (address_mode_ok(spec) && rng.next_below(2) == 0)
               ? LowerMode::Address
               : LowerMode::Region;
  o.nfields =
      min_fields(spec) + static_cast<int>(rng.next_below(2));  // min..min+1
  // A third of the draws bolt on the commuting step accumulator; the
  // concurrent (reduction) flavor needs the renaming machinery.
  if (rng.next_below(3) == 0)
    o.accum = (o.cfg.renaming && rng.next_below(2) == 0)
                  ? AccumMode::Concurrent
                  : AccumMode::Commutative;
  // A quarter of the draws shard the dependency manager across processes.
  // The draws happen unconditionally so the (spec, config) stream stays
  // identical across builds; the result only applies where the backend is
  // legal (address mode, no accumulator side channel) and fork is supported
  // (not TSan).
  const bool cross_proc = rng.next_below(4) == 0;
  const unsigned nprocs = 2 + static_cast<unsigned>(rng.next_below(2));
  if (cross_proc && o.mode == LowerMode::Address &&
      o.accum == AccumMode::None && smpss::testing::fork_backend_supported())
    o.cfg.procs = nprocs;
  return o;
}

void run_fuzz_seed(std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xF0A77E57ull);
  const PatternSpec spec = random_spec(rng);
  const RunOptions opt = random_options(rng, spec);
  const PatternImage expect = run_oracle(spec, opt.nfields);
  const RunResult got = run_pattern(spec, opt);
  ASSERT_TRUE(images_equal(got.image, expect))
      << "fuzz seed=" << seed << "\n  " << spec.describe() << "\n  "
      << opt.describe() << "\n  "
      << smpss::testing::replay_command("pattern_conformance_test",
                                        "PatternFuzz.*", seed);
  if (opt.accum != AccumMode::None)
    ASSERT_EQ(got.accums, oracle_step_sums(spec, opt.nfields))
        << "fuzz seed=" << seed << "\n  " << spec.describe() << "\n  "
        << opt.describe() << "\n  "
        << smpss::testing::replay_command("pattern_conformance_test",
                                          "PatternFuzz.*", seed);
}

TEST(PatternFuzz, TimeBoxedRandomSweep) {
  if (auto s = smpss::testing::seed_override()) {
    std::cout << "pattern-fuzz: replaying single seed " << *s << std::endl;
    run_fuzz_seed(*s);
    return;
  }
  const std::uint64_t base = smpss::testing::fuzz_seed_base(20260728);
  const long long budget_ms = smpss::testing::fuzz_budget_ms(2000);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  std::uint64_t seed = base;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_NO_FATAL_FAILURE(run_fuzz_seed(seed)) << "failing seed: " << seed;
    ++seed;
  }
  // The CI fuzz leg greps this line into the step summary so the seed range
  // a green run covered is recorded.
  std::cout << "pattern-fuzz: " << (seed - base) << " seeds in [" << base
            << ", " << (seed == base ? base : seed - 1)
            << "], budget_ms=" << budget_ms << std::endl;
}

// --- service-mode fuzz shape ---------------------------------------------------
// Random (stream count, per-stream window/weight, spec, lowering, arrival
// stagger) drawn from one seed: N client threads multiplex independent
// pattern graphs onto one runtime through StreamHandles, racing the
// admission queue and the sharded analyzers; every image must still match
// its sequential oracle. The shape (everything but the OS interleaving) is
// seed-determined, so SMPSS_TEST_SEED replays it exactly.

void run_service_fuzz_seed(std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x5E47F1CEull);
  Config cfg;
  cfg.num_threads = 2 + static_cast<unsigned>(rng.next_below(3));  // 2..4
  cfg.nested_tasks = true;
  cfg.task_window =
      std::array<std::size_t, 3>{24, 128, 8192}[rng.next_below(3)];
  cfg.dep_shards = rng.next_below(2) ? 64u : 1u;
  cfg.dep_lockfree = rng.next_below(2) == 0;
  cfg.sched_policy =
      rng.next_below(2) ? SchedPolicyKind::Aware : SchedPolicyKind::Paper;
  const int nstreams = 2 + static_cast<int>(rng.next_below(3));  // 2..4

  struct Client {
    PatternSpec spec;
    LowerMode mode;
    StreamOptions opts;
    std::uint32_t stagger_us;
  };
  std::vector<Client> plan;
  for (int i = 0; i < nstreams; ++i) {
    Client c;
    c.spec = random_spec(rng);
    c.spec.steps = 2 + static_cast<std::int32_t>(rng.next_below(7));  // 2..8
    c.mode = (address_mode_ok(c.spec) && rng.next_below(2) == 0)
                 ? LowerMode::Address
                 : LowerMode::Region;
    c.opts.name = "fuzz-" + std::to_string(i);
    c.opts.weight = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    c.opts.task_window =
        std::array<std::size_t, 3>{0, 4, 16}[rng.next_below(3)];
    c.stagger_us = static_cast<std::uint32_t>(rng.next_below(300));
    plan.push_back(c);
  }

  std::vector<PatternImage> imgs;
  for (const Client& c : plan)
    imgs.push_back(make_initial_image(c.spec, default_fields(c.spec)));
  {
    Runtime rt(cfg);
    TaskType point = rt.register_task_type("service_fuzz_point");
    std::vector<StreamHandle> streams;
    for (const Client& c : plan) streams.push_back(rt.open_stream(c.opts));
    std::vector<std::thread> clients;
    for (int i = 0; i < nstreams; ++i)
      clients.emplace_back([&, i] {
        std::this_thread::sleep_for(
            std::chrono::microseconds(plan[i].stagger_us));
        submit_pattern_stream(streams[i], point, plan[i].spec, imgs[i],
                              plan[i].mode);
        streams[i].drain();
      });
    for (auto& th : clients) th.join();
    rt.barrier();  // realign renamed data into the images
    for (int i = 0; i < nstreams; ++i) {
      ASSERT_EQ(streams[i].state()->submitted.load(),
                static_cast<std::uint64_t>(plan[i].spec.total_tasks()))
          << "service fuzz seed=" << seed << " stream " << i;
      ASSERT_EQ(streams[i].state()->retired.load(),
                streams[i].state()->submitted.load())
          << "service fuzz seed=" << seed << " stream " << i;
    }
    ASSERT_EQ(rt.live_tasks(), 0u) << "service fuzz seed=" << seed;
  }
  for (int i = 0; i < nstreams; ++i) {
    const PatternImage expect = run_oracle(plan[i].spec, imgs[i].nfields);
    ASSERT_TRUE(images_equal(imgs[i], expect))
        << "service fuzz seed=" << seed << " stream " << i << " mode "
        << to_string(plan[i].mode) << "\n  " << plan[i].spec.describe()
        << "\n  "
        << smpss::testing::replay_command("pattern_conformance_test",
                                          "PatternFuzz.ServiceMode*", seed);
  }
}

TEST(PatternFuzz, ServiceModeRandomStreams) {
  if (auto s = smpss::testing::seed_override()) {
    std::cout << "service-fuzz: replaying single seed " << *s << std::endl;
    run_service_fuzz_seed(*s);
    return;
  }
  // A quarter of the shared fuzz budget: this shape rides in the same CI
  // leg as TimeBoxedRandomSweep without doubling its wall clock.
  const std::uint64_t base = smpss::testing::fuzz_seed_base(20260807);
  const long long budget_ms = smpss::testing::fuzz_budget_ms(2000, 1, 4);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  std::uint64_t seed = base;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_NO_FATAL_FAILURE(run_service_fuzz_seed(seed))
        << "failing seed: " << seed;
    ++seed;
  }
  std::cout << "service-fuzz: " << (seed - base) << " seeds in [" << base
            << ", " << (seed == base ? base : seed - 1)
            << "], budget_ms=" << budget_ms << std::endl;
}

}  // namespace
}  // namespace smpss::patterns
