// Stress and failure-injection tests: high task churn, deep chains, rapid
// runtime construction/teardown, all-scheduler sweeps on contended DAGs,
// renamed-memory churn under pressure, and concurrent-submission hammers
// (many workers spawning nested tasks against the dependency engine at
// once). Historically this suite assumed single-threaded submission; the
// sweeps now run with nested mode both off and on so every scheduler
// configuration is exercised under multi-threaded submission too.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

TEST(Stress, HundredThousandTinyTasks) {
  Config cfg;  // all cores
  Runtime rt(cfg);
  std::atomic<long> count{0};
  for (int i = 0; i < 100000; ++i)
    rt.spawn([](std::atomic<long>* c) { c->fetch_add(1, std::memory_order_relaxed); },
             opaque(&count));
  rt.barrier();
  EXPECT_EQ(count.load(), 100000);
  EXPECT_EQ(rt.stats().tasks_executed, 100000u);
}

TEST(Stress, DeepChainTenThousand) {
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  long x = 0;
  for (int i = 0; i < 10000; ++i)
    rt.spawn([](long* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 10000);
}

TEST(Stress, WideThenNarrowRepeated) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  constexpr int kWidth = 64, kRounds = 50;
  std::vector<long> lanes(kWidth, 0);
  long total = 0;
  for (int r = 0; r < kRounds; ++r) {
    for (int w = 0; w < kWidth; ++w)
      rt.spawn([r](long* p) { *p += r + 1; }, inout(&lanes[w]));
    // Fan-in through a chain.
    for (int w = 0; w < kWidth; ++w)
      rt.spawn([](const long* l, long* t) { *t += *l; }, in(&lanes[w]),
               inout(&total));
  }
  rt.barrier();
  // Each round adds (r+1) to each lane, then adds every lane's running
  // value into total.
  long expect = 0;
  std::vector<long> sim(kWidth, 0);
  for (int r = 0; r < kRounds; ++r)
    for (int w = 0; w < kWidth; ++w) {
      sim[w] += r + 1;
      expect += sim[w];
    }
  EXPECT_EQ(total, expect);
}

TEST(Stress, RuntimeChurn) {
  for (int round = 0; round < 20; ++round) {
    Config cfg;
    cfg.num_threads = 1 + round % 8;
    Runtime rt(cfg);
    int x = 0;
    for (int i = 0; i < 50; ++i)
      rt.spawn([](int* p) { *p += 1; }, inout(&x));
    rt.barrier();
    ASSERT_EQ(x, 50);
  }
}

TEST(Stress, BarrierInsideHotLoop) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  long acc = 0;
  for (int round = 0; round < 200; ++round) {
    rt.spawn([](long* p) { *p += 1; }, inout(&acc));
    rt.barrier();
    ASSERT_EQ(acc, round + 1);  // value visible after every barrier
  }
}

class SchedulerSweep
    : public ::testing::TestWithParam<
          std::tuple<SchedulerMode, StealOrder, bool>> {};

TEST_P(SchedulerSweep, ContendedDagCorrect) {
  auto [mode, order, nested] = GetParam();
  Config cfg;
  cfg.num_threads = 8;
  cfg.scheduler_mode = mode;
  cfg.steal_order = order;
  cfg.nested_tasks = nested;
  Runtime rt(cfg);
  // Unsigned lanes: 200 steps of *7 wrap many times over — defined for
  // unsigned, and the oracle wraps identically (the UBSan CI leg rejects
  // the signed variant).
  constexpr int kChains = 24, kLen = 200;
  std::vector<unsigned long> chains(kChains, 0);
  for (int s = 0; s < kLen; ++s)
    for (int c = 0; c < kChains; ++c)
      rt.spawn([s](unsigned long* p) { *p = *p * 7 + static_cast<unsigned>(s); },
               inout(&chains[c]));
  rt.barrier();
  unsigned long expect = 0;
  for (int s = 0; s < kLen; ++s) expect = expect * 7 + static_cast<unsigned>(s);
  for (unsigned long v : chains) ASSERT_EQ(v, expect);
}

TEST_P(SchedulerSweep, ConcurrentSubmissionHammer) {
  // N parent tasks spawn simultaneously from every worker: per-parent
  // dependency chains (private data), a shared opaque counter, and a
  // taskwait-checked join. Hammers the sharded submission pipeline, the
  // per-datum version chains, and the per-worker ready-list routing at once.
  auto [mode, order, nested] = GetParam();
  if (!nested) GTEST_SKIP() << "hammer targets multi-threaded submission";
  Config cfg;
  cfg.num_threads = 8;
  cfg.scheduler_mode = mode;
  cfg.steal_order = order;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  constexpr int kParents = 16, kChildren = 200;
  std::vector<long> lanes(kParents, 0);
  std::atomic<long> shared{0};
  std::atomic<int> joined_at_full{0};
  for (int p = 0; p < kParents; ++p) {
    rt.spawn(
        [&rt, &shared, &joined_at_full](long* lane) {
          for (int i = 0; i < kChildren; ++i)
            rt.spawn(
                [](long* q, std::atomic<long>* s) {
                  *q += 1;
                  s->fetch_add(1, std::memory_order_relaxed);
                },
                inout(lane), opaque(&shared));
          rt.taskwait();
          if (*lane == kChildren)
            joined_at_full.fetch_add(1, std::memory_order_relaxed);
        },
        inout(&lanes[p]));
  }
  rt.barrier();
  EXPECT_EQ(shared.load(), kParents * kChildren);
  EXPECT_EQ(joined_at_full.load(), kParents);
  for (long v : lanes) ASSERT_EQ(v, kChildren);
  EXPECT_EQ(rt.stats().tasks_nested,
            static_cast<std::uint64_t>(kParents) * kChildren);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SchedulerSweep,
    ::testing::Combine(::testing::Values(SchedulerMode::Distributed,
                                         SchedulerMode::Centralized),
                       ::testing::Values(StealOrder::CreationOrder,
                                         StealOrder::Random),
                       ::testing::Bool()));

TEST(Stress, NestedSharedFanInAcrossParents) {
  // Parents submit concurrently against *shared* data: each parent appends
  // its own chain on a private lane, then one fan-in child reads the lane
  // and accumulates into a shared total through a real inout dependency.
  // The fan-in order across parents is nondeterministic but the sum is not.
  Config cfg;
  cfg.num_threads = 8;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  constexpr int kParents = 12, kSteps = 50;
  std::vector<long> lanes(kParents, 0);
  long total = 0;
  for (int p = 0; p < kParents; ++p) {
    rt.spawn(
        [&rt, &total](long* lane) {
          for (int i = 0; i < kSteps; ++i)
            rt.spawn([](long* q) { *q += 1; }, inout(lane));
          rt.taskwait();
          // Commutative fan-in on shared `total`: dependency-safe because
          // inout chains serialize whatever submission interleaving the
          // parents produce.
          rt.spawn([](const long* l, long* t) { *t += *l; }, in(lane),
                   inout(&total));
        },
        inout(&lanes[p]));
  }
  rt.barrier();
  EXPECT_EQ(total, static_cast<long>(kParents) * kSteps);
}

TEST(Stress, NestedDeepChurnManyRounds) {
  // Repeated build/teardown with nested submission active, mirroring
  // RuntimeChurn for the concurrent paths.
  for (int round = 0; round < 10; ++round) {
    Config cfg;
    cfg.num_threads = 1 + round % 8;
    cfg.nested_tasks = true;
    Runtime rt(cfg);
    std::atomic<int> leaves{0};
    rt.spawn([&rt, &leaves] {
      for (int i = 0; i < 8; ++i)
        rt.spawn([&rt, &leaves] {
          for (int j = 0; j < 8; ++j)
            rt.spawn([&leaves] {
              leaves.fetch_add(1, std::memory_order_relaxed);
            });
          rt.taskwait();
        });
      rt.taskwait();
    });
    rt.barrier();
    ASSERT_EQ(leaves.load(), 64);
  }
}

TEST(Stress, RenameChurnBounded) {
  Config cfg;
  cfg.num_threads = 8;
  cfg.rename_memory_limit = 1 << 20;  // 1 MiB
  Runtime rt(cfg);
  constexpr std::size_t kObj = 1 << 14;  // 16 KiB objects
  std::vector<char> buf(kObj, 0);
  long sink = 0;
  for (int i = 0; i < 2000; ++i) {
    rt.spawn([](const char* p, long* s) { *s += p[0]; }, in(buf.data(), kObj),
             inout(&sink));
    rt.spawn([i](char* p) { p[0] = static_cast<char>(i & 0x7F); },
             out(buf.data(), kObj));
  }
  rt.barrier();
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);
  EXPECT_LE(rt.rename_pool().peak_bytes(), (std::size_t{1} << 20) + kObj);
  EXPECT_EQ(buf[0], static_cast<char>(1999 & 0x7F));
}

TEST(Stress, ManyDistinctObjectsChurn) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  constexpr int kObjs = 2000;
  std::vector<int> objs(kObjs, 0);
  for (int pass = 0; pass < 5; ++pass) {
    for (int i = 0; i < kObjs; ++i)
      rt.spawn([](int* p) { *p += 3; }, inout(&objs[i]));
    rt.barrier();
  }
  for (int v : objs) ASSERT_EQ(v, 15);
}

TEST(Stress, MixedPriorityFlood) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  TaskType urgent = rt.register_task_type("urgent", true);
  std::atomic<long> normal{0}, high{0};
  for (int i = 0; i < 5000; ++i) {
    rt.spawn([](std::atomic<long>* c) { c->fetch_add(1); }, opaque(&normal));
    if (i % 10 == 0)
      rt.spawn(urgent, [](std::atomic<long>* c) { c->fetch_add(1); },
               opaque(&high));
  }
  rt.barrier();
  EXPECT_EQ(normal.load(), 5000);
  EXPECT_EQ(high.load(), 500);
  EXPECT_GE(rt.stats().acquired_high, 1u);
}

}  // namespace
}  // namespace smpss
