// GraphRecorder fidelity over generated pattern graphs: the recorded edge
// set must match the generator's intended edge set exactly — a missed
// dependency (an absent edge) or a phantom one (an extra edge) is a
// dependency-analysis bug even when scheduling happens to produce the right
// numbers.
//
// Exactness needs a deterministic recording window, so the exact-match
// configurations submit the whole graph from the main thread with no
// workers (num_threads = 1) and a window larger than the graph: no task
// executes before the barrier, every producer is still live when its
// consumers are analyzed, and the analyzers must therefore record every
// intended true edge — no more, no less. The parallel configurations then
// re-run with workers racing the submission (chain depth 0 and default):
// there a producer may retire before its consumer is analyzed, so edges may
// legally be *dropped*, but a phantom edge is still a bug — the recorded
// set must be a subset of the intended one, and the image must still match
// the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "patterns/driver.hpp"
#include "runtime/runtime.hpp"

namespace smpss::patterns {
namespace {

using Edge = std::pair<std::uint64_t, std::uint64_t>;

std::vector<Edge> recorded_edges(const GraphRecorder& rec, EdgeKind kind) {
  std::vector<Edge> out;
  for (const GraphRecorder::EdgeRec& e : rec.edges())
    if (e.kind == kind) out.emplace_back(e.from, e.to);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Edge> dedup(std::vector<Edge> v) {
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

PatternSpec standard_spec(PatternKind kind) {
  PatternSpec s;
  s.kind = kind;
  s.width = kind == PatternKind::Tree ? 16 : 8;
  s.steps = 8;
  s.radix = 3;
  s.period = 3;
  s.seed = 0xF1DE;
  return s;
}

void expect_nodes_complete(const GraphRecorder& rec, std::uint64_t total,
                           const PatternSpec& spec) {
  ASSERT_EQ(rec.nodes().size(), total) << spec.describe();
  std::vector<std::uint64_t> seqs;
  for (const GraphRecorder::NodeRec& n : rec.nodes()) seqs.push_back(n.seq);
  std::sort(seqs.begin(), seqs.end());
  for (std::uint64_t i = 0; i < total; ++i)
    ASSERT_EQ(seqs[i], i + 1) << "node seq gap or duplicate, "
                              << spec.describe();
}

/// Deterministic-window run: every intended edge must be recorded exactly
/// (as a multiset — spread's modular stride can intend one producer twice).
void check_exact(const PatternSpec& spec, LowerMode mode, int nfields,
                 bool renaming) {
  Config cfg;
  cfg.num_threads = 1;
  cfg.task_window = 1u << 20;
  cfg.record_graph = true;
  cfg.renaming = renaming;
  PatternImage img = make_initial_image(spec, nfields);
  Runtime rt(cfg);
  submit_pattern(rt, spec, img, mode);
  rt.barrier();

  const GraphRecorder& rec = rt.graph_recorder();
  expect_nodes_complete(rec, spec.total_tasks(), spec);

  const std::vector<Edge> want = intended_true_edges(spec);
  const std::vector<Edge> got = recorded_edges(rec, EdgeKind::True);
  EXPECT_EQ(got, want) << "true-edge multiset diverged: " << spec.describe()
                       << " mode=" << to_string(mode)
                       << " nfields=" << nfields << " renaming=" << renaming;
  // These configurations have no write-after-read or write-after-write on
  // any datum (renaming absorbs them, or each datum is written once), so an
  // anti/output edge here is a phantom dependency.
  EXPECT_TRUE(recorded_edges(rec, EdgeKind::Anti).empty()) << spec.describe();
  EXPECT_TRUE(recorded_edges(rec, EdgeKind::Output).empty())
      << spec.describe();

  EXPECT_EQ(img, run_oracle(spec, nfields)) << spec.describe();
}

/// Workers race the submission: recorded edges may be dropped (producer
/// already retired) but never invented.
void check_no_phantoms(const PatternSpec& spec, unsigned chain_depth) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.record_graph = true;
  cfg.chain_depth = chain_depth;
  const int nfields = default_fields(spec);
  PatternImage img = make_initial_image(spec, nfields);
  Runtime rt(cfg);
  submit_pattern(rt, spec, img, LowerMode::Address);
  rt.barrier();

  const GraphRecorder& rec = rt.graph_recorder();
  expect_nodes_complete(rec, spec.total_tasks(), spec);

  const std::vector<Edge> want = dedup(intended_true_edges(spec));
  const std::vector<Edge> got = dedup(recorded_edges(rec, EdgeKind::True));
  EXPECT_TRUE(
      std::includes(want.begin(), want.end(), got.begin(), got.end()))
      << "phantom true edge recorded: " << spec.describe()
      << " chain_depth=" << chain_depth;

  EXPECT_EQ(img, run_oracle(spec, nfields)) << spec.describe();
}

TEST(PatternGraphFidelity, AddressModeExactWithRenaming) {
  // Rotating two-row buffering: renaming must absorb every WAR/WAW without
  // inventing edges, and record exactly the dataflow (chain runs its inout
  // in-place lowering here, nfields == 1).
  for (PatternKind kind : all_pattern_kinds()) {
    PatternSpec s = standard_spec(kind);
    check_exact(s, LowerMode::Address, default_fields(s), /*renaming=*/true);
  }
}

TEST(PatternGraphFidelity, AddressModeExactUniqueCellsNoRenaming) {
  // One row per timestep: every cell is written exactly once, so even with
  // renaming disabled the analyzer must find zero anti/output edges and the
  // exact true-edge set.
  for (PatternKind kind : all_pattern_kinds()) {
    PatternSpec s = standard_spec(kind);
    check_exact(s, LowerMode::Address, s.steps, /*renaming=*/false);
  }
}

TEST(PatternGraphFidelity, RegionModeExact) {
  // Region analyzer: each dependence interval is one region access; with a
  // row per timestep the overlap scan must reconstruct exactly the
  // generator's edges (all_to_all included — one interval, width edges).
  for (PatternKind kind : all_pattern_kinds()) {
    PatternSpec s = standard_spec(kind);
    check_exact(s, LowerMode::Region, s.steps, /*renaming=*/true);
  }
  PatternSpec wide = standard_spec(PatternKind::AllToAll);
  wide.width = 24;
  wide.steps = 5;
  check_exact(wide, LowerMode::Region, wide.steps, /*renaming=*/true);
}

TEST(PatternGraphFidelity, NoPhantomEdgesUnderParallelRetireAndChaining) {
  for (PatternKind kind : all_pattern_kinds()) {
    PatternSpec s = standard_spec(kind);
    check_no_phantoms(s, /*chain_depth=*/0);
    check_no_phantoms(s, /*chain_depth=*/Config{}.chain_depth);
  }
}

}  // namespace
}  // namespace smpss::patterns
