// The address-striped submission pipeline: concurrent submitters against
// shared and private data across shard counts (including the shards=1
// global-lock-equivalent baseline), the foreign-thread blocking conditions,
// destruction off the constructing thread, and stats() racing submitters.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

class ShardSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardSweep, ConcurrentSubmittersSharedAndPrivateData) {
  // Parents submit concurrently: private chains (disjoint shards) plus a
  // shared fan-in datum every parent contends on. Two-phase shard locking
  // must give the same results at every shard count.
  Config cfg;
  cfg.num_threads = 8;
  cfg.nested_tasks = true;
  cfg.dep_shards = GetParam();
  Runtime rt(cfg);
  constexpr int kParents = 12, kSteps = 60;
  std::vector<long> lanes(kParents, 0);
  long total = 0;
  for (int p = 0; p < kParents; ++p) {
    rt.spawn(
        [&rt, &total](long* lane) {
          for (int i = 0; i < kSteps; ++i)
            rt.spawn([](long* q) { *q += 1; }, inout(lane));
          rt.taskwait();
          rt.spawn([](const long* l, long* t) { *t += *l; }, in(lane),
                   inout(&total));
        },
        inout(&lanes[p]));
  }
  rt.barrier();
  EXPECT_EQ(total, static_cast<long>(kParents) * kSteps);
  for (long v : lanes) ASSERT_EQ(v, kSteps);
  EXPECT_GE(rt.stats().raw_edges, static_cast<std::uint64_t>(kParents));
}

TEST_P(ShardSweep, MultiParamTasksAcrossShardsStayAcyclic) {
  // Tasks whose footprints span several data (several shards) submitted
  // from many threads at once: if two-phase acquisition were broken, the
  // cross-shard edge wiring could deadlock or corrupt a chain. The diamond
  // pattern (two inputs, one output per task) maximizes cross-datum edges.
  Config cfg;
  cfg.num_threads = 8;
  cfg.nested_tasks = true;
  cfg.dep_shards = GetParam();
  Runtime rt(cfg);
  // Unsigned lanes: the values triple per round, so 40 rounds deliberately
  // wrap — defined for unsigned, and the oracle wraps identically (the new
  // UBSan CI leg rejects the signed variant).
  constexpr int kParents = 8, kRounds = 40;
  using lane_t = unsigned long;
  std::vector<lane_t> a(kParents, 1), b(kParents, 2), c(kParents, 0);
  for (int p = 0; p < kParents; ++p) {
    lane_t *pa = &a[p], *pb = &b[p], *pc = &c[p];
    rt.spawn([&rt, pa, pb, pc] {
      for (int r = 0; r < kRounds; ++r) {
        rt.spawn(
            [](const lane_t* x, const lane_t* y, lane_t* z) { *z = *x + *y; },
            in(pa), in(pb), out(pc));
        rt.spawn([](const lane_t* z, lane_t* x) { *x += *z; }, in(pc),
                 inout(pa));
        rt.spawn([](const lane_t* z, lane_t* y) { *y += *z; }, in(pc),
                 inout(pb));
      }
      rt.taskwait();
    });
  }
  rt.barrier();
  for (int p = 0; p < kParents; ++p) {
    lane_t xa = 1, xb = 2, xc = 0;
    for (int r = 0; r < kRounds; ++r) {
      xc = xa + xb;
      xa += xc;
      xb += xc;
    }
    ASSERT_EQ(a[p], xa);
    ASSERT_EQ(b[p], xb);
    ASSERT_EQ(c[p], xc);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardSweep,
                         ::testing::Values(1u, 2u, 8u, 64u));

TEST(ForeignSubmitter, WindowThrottlesForeignThread) {
  // Regression: a foreign thread (not a worker, not the constructing
  // thread) used to bypass the task-window blocking condition entirely and
  // could grow the graph without bound. It must now sleep on the gate until
  // the live count drains below the low-water mark.
  Config cfg;
  cfg.num_threads = 2;
  cfg.task_window = 16;
  cfg.task_window_low = 8;
  cfg.nested_tasks = true;  // foreign threads submit real tasks
  Runtime rt(cfg);
  constexpr int kTasks = 3000;
  long x = 0;
  std::atomic<bool> done{false};
  std::thread foreign([&] {
    for (int i = 0; i < kTasks; ++i)
      rt.spawn([](long* p) { *p += 1; }, inout(&x));
    done.store(true, std::memory_order_release);
  });
  // Sample the live-task high-water mark while the foreign thread submits.
  std::size_t max_live = 0;
  while (!done.load(std::memory_order_acquire)) {
    max_live = std::max(max_live, rt.live_tasks());
    std::this_thread::yield();
  }
  foreign.join();
  rt.barrier();
  EXPECT_EQ(x, kTasks);
  EXPECT_GE(rt.stats().foreign_throttled, 1u);
  // Pre-fix this reached ~kTasks; the gate bounds it near the window (plus
  // submissions racing the threshold check).
  EXPECT_LE(max_live, cfg.task_window + 64);
}

TEST(ForeignSubmitter, SingleThreadRuntimeNeverGatesForeignSubmitter) {
  // Liveness: with num_threads == 1 there is no independent executor, and
  // the main thread here is blocked in join() — gating the foreign
  // submitter would deadlock both threads. The window must stay soft.
  Config cfg;
  cfg.num_threads = 1;
  cfg.task_window = 8;
  cfg.task_window_low = 4;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  long x = 0;
  std::thread foreign([&] {
    for (int i = 0; i < 200; ++i)
      rt.spawn([](long* p) { *p += 1; }, inout(&x));
  });
  foreign.join();
  rt.barrier();
  EXPECT_EQ(x, 200);
  EXPECT_EQ(rt.stats().foreign_throttled, 0u);
}

TEST(ForeignSubmitter, MemoryLimitThrottlesForeignThread) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.nested_tasks = true;
  cfg.rename_memory_limit = 1 << 16;  // 64 KiB
  Runtime rt(cfg);
  constexpr std::size_t kObj = 1 << 12;  // 4 KiB renames
  std::vector<char> buf(kObj, 0);
  long sink = 0;
  std::thread foreign([&] {
    for (int i = 0; i < 200; ++i) {
      rt.spawn([](const char* p, long* s) { *s += p[0]; }, in(buf.data(), kObj),
               inout(&sink));
      rt.spawn([i](char* p) { p[0] = static_cast<char>(i); },
               out(buf.data(), kObj));
    }
  });
  foreign.join();
  rt.barrier();
  EXPECT_EQ(buf[0], static_cast<char>(199));
  // The soft limit must have held within one allocation of slack.
  EXPECT_LE(rt.rename_pool().peak_bytes(), cfg.rename_memory_limit + kObj);
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);
}

TEST(OffMainDestruction, DestructorDrainsOnForeignThread) {
  // Regression: ~Runtime on a non-constructing thread used to abort with
  // barrier()'s "main-thread-only" diagnostic. It now drains, realigns
  // renamed data, and joins the workers.
  constexpr int kTasks = 500;
  std::vector<int> xs(kTasks, 0);
  int probe = 0;
  auto rt = std::make_unique<Runtime>([] {
    Config c;
    c.num_threads = 4;
    return c;
  }());
  // A pending reader forces the writes into renamed storage, so destruction
  // must also prove the copy-back path runs.
  rt->spawn([](const int* p, int* o) { *o = *p; }, in(&xs[0]), out(&probe));
  for (int i = 0; i < kTasks; ++i)
    rt->spawn([i](int* p) { *p = i + 1; }, out(&xs[i]));
  std::thread destroyer([&] { rt.reset(); });
  destroyer.join();
  for (int i = 0; i < kTasks; ++i) ASSERT_EQ(xs[i], i + 1);
}

TEST(OffMainDestruction, NestedRuntimeDestroyedOffMain) {
  auto rt = std::make_unique<Runtime>([] {
    Config c;
    c.num_threads = 4;
    c.nested_tasks = true;
    return c;
  }());
  std::atomic<long> count{0};
  // The task body uses the raw pointer: the destructor drains all live
  // tasks (this generator included) before the object goes away, but the
  // unique_ptr *handle* must not be read concurrently with reset().
  Runtime* r = rt.get();
  r->spawn([r, &count] {
    for (int i = 0; i < 100; ++i)
      r->spawn([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    r->taskwait();
  });
  std::thread destroyer([&] { rt.reset(); });
  destroyer.join();
  EXPECT_EQ(count.load(), 100);
}

TEST(OffMainDestruction, NestedGeneratorsUnderTinyWindowSingleThread) {
  // The destroying thread registers as worker 0 for the drain, so the
  // generator bodies it executes submit and taskwait as normal in-task
  // workers (never-sleeping throttle, own-list children) — with one thread
  // and a tiny window, any sleeping misstep here deadlocks immediately.
  auto rt = std::make_unique<Runtime>([] {
    Config c;
    c.num_threads = 1;
    c.nested_tasks = true;
    c.task_window = 4;
    c.task_window_low = 2;
    return c;
  }());
  std::atomic<long> count{0};
  Runtime* r = rt.get();
  for (int g = 0; g < 3; ++g) {
    r->spawn([r, &count] {
      for (int i = 0; i < 50; ++i)
        r->spawn([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      r->taskwait();
    });
  }
  std::thread destroyer([&] { rt.reset(); });
  destroyer.join();
  EXPECT_EQ(count.load(), 150);
}

TEST(ConcurrentIntrospection, StatsAndWaitOnRaceSubmitters) {
  // stats() and wait_on() synchronize per shard / on the region rwlock;
  // calling them while generators are mid-submission must be well-defined
  // (this is primarily a TSan target) and end with consistent totals.
  Config cfg;
  cfg.num_threads = 4;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  constexpr int kParents = 4, kChildren = 300;
  std::vector<long> lanes(kParents, 0);
  for (int p = 0; p < kParents; ++p) {
    rt.spawn(
        [&rt](long* lane) {
          for (int i = 0; i < kChildren; ++i)
            rt.spawn([](long* q) { *q += 1; }, inout(lane));
          rt.taskwait();
        },
        inout(&lanes[p]));
  }
  std::uint64_t last_spawned = 0;
  for (int i = 0; i < 50; ++i) {
    StatsSnapshot s = rt.stats();
    EXPECT_GE(s.tasks_spawned, last_spawned);  // monotone under the race
    last_spawned = s.tasks_spawned;
    std::this_thread::yield();
  }
  rt.wait_on(&lanes[0]);  // produced prefix of the chain, any value is fine
  rt.barrier();
  for (long v : lanes) ASSERT_EQ(v, kChildren);
  StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.tasks_nested, static_cast<std::uint64_t>(kParents) * kChildren);
}

TEST(ConcurrentIntrospection, WaitOnDuringDrainNeverUnderflowsPending) {
  // Regression (debug assert): a producer retiring into user storage
  // decrements the entry's user_storage_pending; wait_on() copy-backs
  // sample it while parents are still draining write chains into the same
  // datum. A misordered decrement could transiently underflow the counter
  // (and let a wait_on read a half-retired version). The retire path now
  // asserts the pre-decrement value is positive; this interleaving —
  // wait_on hammering a datum whose generator is mid-drain — is the one
  // that tripped the old ordering. Run it in both dependency modes.
  for (const bool lockfree : {true, false}) {
    Config cfg;
    cfg.num_threads = 4;
    cfg.nested_tasks = true;
    cfg.dep_lockfree = lockfree;
    Runtime rt(cfg);
    constexpr int kRounds = 40, kWrites = 25;
    long x = 0;
    for (int r = 0; r < kRounds; ++r) {
      rt.spawn([&rt, &x] {
        for (int i = 0; i < kWrites; ++i)
          rt.spawn([](long* p) { *p += 1; }, inout(&x));
      });
      // Races the generator's still-submitting chain. The copied-back value
      // is some produced prefix; it cannot be read here without racing a
      // later in-place producer, so the checked outcome is the final total
      // (plus the debug underflow assert and TSan on the pending counter).
      rt.wait_on(&x);
    }
    rt.barrier();
    ASSERT_EQ(x, static_cast<long>(kRounds) * kWrites)
        << "lockfree=" << lockfree;
  }
}

TEST(ConcurrentIntrospection, SnapshotNeverShowsExecutedAboveSpawned) {
  // Regression: stats() used to sum the counters in submission order
  // (spawned first, executed last), so a snapshot racing the workers could
  // report tasks_executed > tasks_spawned — impossible totals that broke
  // rate computation in the exporter. The snapshot now reads the
  // executed-side counters first and spawned last (with an epoch retry), so
  // executed <= spawned holds in every snapshot, no matter the race.
  Config cfg;
  cfg.num_threads = 4;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  constexpr int kSubmitters = 3, kTasks = 2000;
  std::vector<long> lanes(kSubmitters, 0);
  std::vector<std::thread> subs;
  for (int p = 0; p < kSubmitters; ++p)
    subs.emplace_back([&rt, lane = &lanes[p]] {
      for (int i = 0; i < kTasks; ++i)
        rt.spawn([](long* q) { *q += 1; }, inout(lane));
    });
  std::uint64_t last_epoch = 0;
  int consistent = 0, total = 0;
  while (rt.stats().tasks_executed <
         static_cast<std::uint64_t>(kSubmitters) * kTasks) {
    StatsSnapshot s = rt.stats();
    ++total;
    ASSERT_LE(s.tasks_executed, s.tasks_spawned)
        << "snapshot " << total << " shows impossible totals";
    ASSERT_GE(s.snapshot_epoch, last_epoch) << "epoch went backwards";
    last_epoch = s.snapshot_epoch;
    if (s.snapshot_consistent) {
      ++consistent;
      EXPECT_EQ(s.snapshot_epoch, s.tasks_spawned);
    }
  }
  for (auto& t : subs) t.join();
  rt.barrier();
  // Quiescent snapshots always win their epoch check.
  StatsSnapshot s = rt.stats();
  EXPECT_TRUE(s.snapshot_consistent);
  EXPECT_EQ(s.tasks_executed, s.tasks_spawned);
  EXPECT_GT(consistent, 0) << "no snapshot ever stabilized in " << total
                           << " attempts";
}

}  // namespace
}  // namespace smpss
