// Shared replay plumbing for the randomized suites.
//
// Every randomized harness in tests/ honors SMPSS_TEST_SEED: when set, the
// suite runs exactly that seed (in every shape/configuration it sweeps)
// instead of its full seed range, and every failure message carries a
// ready-to-paste replay command line. The CI fuzz leg additionally drives
// the conformance harness through SMPSS_FUZZ_SEED_BASE / _BUDGET_MS (see
// tests/pattern_conformance_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "common/env.hpp"

namespace smpss::testing {

/// Single-seed replay override (SMPSS_TEST_SEED).
inline std::optional<std::uint64_t> seed_override() {
  if (auto v = env_int("SMPSS_TEST_SEED"); v && *v >= 0)
    return static_cast<std::uint64_t>(*v);
  return std::nullopt;
}

/// A copy-pasteable single-seed reproduction command for failure messages.
inline std::string replay_command(const char* binary, const char* filter,
                                  std::uint64_t seed) {
  std::ostringstream os;
  os << "replay: SMPSS_TEST_SEED=" << seed << " ./tests/" << binary
     << " --gtest_filter='" << filter << "'";
  return os.str();
}

}  // namespace smpss::testing
