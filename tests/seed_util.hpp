// Shared replay plumbing for the randomized suites.
//
// Every randomized harness in tests/ honors SMPSS_TEST_SEED: when set, the
// suite runs exactly that seed (in every shape/configuration it sweeps)
// instead of its full seed range, and every failure message carries a
// ready-to-paste replay command line. The CI fuzz leg additionally drives
// the conformance harness through SMPSS_FUZZ_SEED_BASE / _BUDGET_MS (see
// tests/pattern_conformance_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "common/env.hpp"

namespace smpss::testing {

/// Single-seed replay override (SMPSS_TEST_SEED).
inline std::optional<std::uint64_t> seed_override() {
  if (auto v = env_int("SMPSS_TEST_SEED"); v && *v >= 0)
    return static_cast<std::uint64_t>(*v);
  return std::nullopt;
}

/// A copy-pasteable single-seed reproduction command for failure messages.
inline std::string replay_command(const char* binary, const char* filter,
                                  std::uint64_t seed) {
  std::ostringstream os;
  os << "replay: SMPSS_TEST_SEED=" << seed << " ./tests/" << binary
     << " --gtest_filter='" << filter << "'";
  return os.str();
}

/// First seed of a fuzz stream (SMPSS_FUZZ_SEED_BASE; CI passes the run id
/// so every green run covers a fresh range).
inline std::uint64_t fuzz_seed_base(long long fallback) {
  return static_cast<std::uint64_t>(
      env_int("SMPSS_FUZZ_SEED_BASE").value_or(fallback));
}

/// Time box of one fuzz leg (SMPSS_FUZZ_BUDGET_MS). Legs sharing one budget
/// env var scale it by `num/den` — e.g. the service-mode shape runs on a
/// quarter of the pattern-fuzz budget, so enabling it never doubles the CI
/// leg's wall clock.
inline long long fuzz_budget_ms(long long fallback, long long num = 1,
                                long long den = 1) {
  const long long budget = env_int("SMPSS_FUZZ_BUDGET_MS").value_or(fallback);
  return budget * num / den;
}

}  // namespace smpss::testing
