// Version-chain lifecycle behaviors: storage reuse vs. renaming decisions,
// realignment (copy-back) accounting, wait_on with rename chains, size
// growth on re-registration, and rename-pool reclamation ordering.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config one_thread() {
  Config c;
  c.num_threads = 1;
  return c;
}

TEST(VersionLifecycle, OutAfterOutInPlaceWhenQuiescent) {
  Runtime rt(one_thread());
  int x = 0;
  // Each out sees the previous version produced with zero readers (single
  // thread, tasks drain at the window/barrier): in-place reuse, no renames.
  for (int i = 0; i < 20; ++i) {
    rt.spawn([i](int* p) { *p = i; }, out(&x));
    rt.barrier();  // force production before the next write
  }
  EXPECT_EQ(x, 19);
  EXPECT_EQ(rt.stats().renames, 0u);
}

TEST(VersionLifecycle, WawOnUnproducedVersionRenames) {
  Config cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  long slow = 0;
  int x = 0;
  // First writer is slow; second out lands while the first version is
  // unproduced -> fresh storage, no edge, both eventually retire.
  rt.spawn(
      [](int* p, long* s) {
        for (int i = 0; i < 3000000; ++i) *s += i;
        *p = 1;
      },
      out(&x), opaque(&slow));
  rt.spawn([](int* p) { *p = 2; }, out(&x));
  rt.barrier();
  EXPECT_EQ(x, 2);  // program order wins: the latest version is realigned
  EXPECT_GE(rt.stats().renames, 1u);
  EXPECT_EQ(rt.stats().waw_edges, 0u);
}

TEST(VersionLifecycle, CopybackBytesAccounted) {
  Runtime rt(one_thread());
  std::vector<char> buf(4096, 0);
  int r = 0;
  rt.spawn([](const char* p, int* o) { *o = p[0]; }, in(buf.data(), 4096),
           out(&r));
  rt.spawn([](char* p) { p[0] = 7; }, out(buf.data(), 4096));  // renamed
  rt.barrier();  // realignment copies the renamed version back
  EXPECT_EQ(buf[0], 7);
  EXPECT_GE(rt.stats().copyback_bytes, 4096u);
}

TEST(VersionLifecycle, NoCopybackWhenLatestLivesInUserStorage) {
  Runtime rt(one_thread());
  std::vector<char> buf(4096, 0);
  rt.spawn([](char* p) { p[0] = 1; }, out(buf.data(), 4096));
  rt.barrier();
  EXPECT_EQ(rt.stats().copyback_bytes, 0u);
}

TEST(VersionLifecycle, WaitOnChainOfRenames) {
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  int x = 0;
  std::vector<int> observers(16);
  // Interleave reads and writes so several renamed versions exist, then
  // wait_on must surface the *latest* value.
  for (int i = 0; i < 16; ++i) {
    rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&observers[i]));
    rt.spawn([i](int* p) { *p = i + 1; }, out(&x));
  }
  rt.wait_on(&x);
  EXPECT_EQ(x, 16);
  rt.barrier();
  // Observer i saw the value before write i: 0..15 in order.
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(observers[static_cast<std::size_t>(i)], i);
}

TEST(VersionLifecycle, SizeGrowsToLargestAccess) {
  Runtime rt(one_thread());
  std::vector<char> buf(256, 0);
  int r = 0;
  // First access registers 64 bytes, later ones 256; realignment must cover
  // the full 256 bytes of the final version.
  rt.spawn([](const char* p, int* o) { *o = p[0]; }, in(buf.data(), 64),
           out(&r));
  rt.spawn([](char* p) { p[200] = 9; p[0] = 1; }, out(buf.data(), 256));
  rt.barrier();
  EXPECT_EQ(buf[200], 9);
  EXPECT_EQ(buf[0], 1);
}

TEST(VersionLifecycle, RenamedStorageDrainsToZeroAfterEveryBarrier) {
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  std::vector<char> buf(8192, 0);
  int sink = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 32; ++i) {
      rt.spawn([](const char* p, int* s) { *s += p[0]; },
               in(buf.data(), buf.size()), inout(&sink));
      rt.spawn([](char* p) { p[0] = 1; }, out(buf.data(), buf.size()));
    }
    rt.barrier();
    ASSERT_EQ(rt.rename_pool().current_bytes(), 0u) << "round " << round;
  }
  EXPECT_GT(rt.stats().renames, 0u);
}

TEST(VersionLifecycle, InterleavedObjectsDontCrossTalk) {
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  constexpr int kObjs = 16;
  std::vector<std::vector<int>> objs(kObjs, std::vector<int>(64, 0));
  std::vector<int> finals(kObjs, 0);
  for (int step = 0; step < 10; ++step)
    for (int o = 0; o < kObjs; ++o)
      rt.spawn(
          [o, step](int* p) {
            p[0] = p[0] * 2 + o + step;
          },
          inout(objs[static_cast<std::size_t>(o)].data(), 64));
  for (int o = 0; o < kObjs; ++o)
    rt.spawn([](const int* p, int* f) { *f = p[0]; },
             in(objs[static_cast<std::size_t>(o)].data(), 64), out(&finals[o]));
  rt.barrier();
  for (int o = 0; o < kObjs; ++o) {
    int expect = 0;
    for (int step = 0; step < 10; ++step) expect = expect * 2 + o + step;
    EXPECT_EQ(finals[static_cast<std::size_t>(o)], expect) << "object " << o;
  }
}

}  // namespace
}  // namespace smpss
