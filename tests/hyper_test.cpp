// Hyper-matrix and flat-matrix utilities: block round-trips, sparse
// allocation, the Fig. 10 get/put block copies, and matrix helpers.
#include <gtest/gtest.h>

#include <cstring>

#include "common/cache.hpp"
#include "hyper/flat_matrix.hpp"
#include "hyper/hyper_matrix.hpp"

namespace smpss {
namespace {

TEST(HyperMatrix, DenseAllocationIsZeroed) {
  HyperMatrix h(3, 4, true);
  EXPECT_EQ(h.allocated_blocks(), 9u);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      ASSERT_TRUE(h.present(i, j));
      for (std::size_t e = 0; e < h.block_elems(); ++e)
        EXPECT_EQ(h.block(i, j)[e], 0.0f);
    }
}

TEST(HyperMatrix, BlocksAreAligned) {
  HyperMatrix h(2, 8, true);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      EXPECT_TRUE(is_aligned(h.block(i, j), kDataAlignment));
}

TEST(HyperMatrix, SparseStartsEmpty) {
  HyperMatrix h(4, 4, false);
  EXPECT_EQ(h.allocated_blocks(), 0u);
  EXPECT_FALSE(h.present(1, 2));
  float* b = h.ensure_block(1, 2);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(h.present(1, 2));
  EXPECT_EQ(h.allocated_blocks(), 1u);
  EXPECT_EQ(h.ensure_block(1, 2), b);  // idempotent
}

TEST(HyperMatrix, FlatRoundTrip) {
  const int nb = 3, m = 5, n = nb * m;
  FlatMatrix flat(n);
  fill_random(flat, 42);
  HyperMatrix h(nb, m, false);
  blocked_from_flat(h, flat.data());
  FlatMatrix back(n);
  flat_from_blocked(back.data(), h);
  EXPECT_EQ(max_abs_diff(flat, back), 0.0f);
}

TEST(HyperMatrix, MissingBlocksWriteZeroOnUnblock) {
  const int nb = 2, m = 3, n = nb * m;
  HyperMatrix h(nb, m, false);
  float* b = h.ensure_block(0, 0);
  for (std::size_t e = 0; e < h.block_elems(); ++e) b[e] = 7.0f;
  FlatMatrix out(n);
  fill_random(out, 1);  // pre-fill with garbage
  flat_from_blocked(out.data(), h);
  EXPECT_EQ(out.at(0, 0), 7.0f);
  EXPECT_EQ(out.at(0, m), 0.0f);   // absent block
  EXPECT_EQ(out.at(m, m), 0.0f);
}

TEST(HyperMatrix, GetPutBlockMatchAddressing) {
  const int nb = 4, m = 3, n = nb * m;
  FlatMatrix flat(n);
  fill_random(flat, 9);
  std::vector<float> block(static_cast<std::size_t>(m) * m);
  get_block(2, 1, m, n, flat.data(), block.data());
  for (int r = 0; r < m; ++r)
    for (int c = 0; c < m; ++c)
      EXPECT_EQ(block[static_cast<std::size_t>(r) * m + c],
                flat.at(2 * m + r, 1 * m + c));
  // Round-trip through put_block.
  FlatMatrix out(n);
  put_block(2, 1, m, n, block.data(), out.data());
  for (int r = 0; r < m; ++r)
    for (int c = 0; c < m; ++c)
      EXPECT_EQ(out.at(2 * m + r, m + c), flat.at(2 * m + r, m + c));
}

TEST(HyperMatrix, FillZero) {
  HyperMatrix h(2, 2, true);
  h.block(0, 0)[0] = 5.0f;
  h.fill_zero();
  EXPECT_EQ(h.block(0, 0)[0], 0.0f);
}

TEST(HyperMatrix, MoveTransfersOwnership) {
  HyperMatrix a(2, 2, true);
  float* b00 = a.block(0, 0);
  HyperMatrix b(std::move(a));
  EXPECT_EQ(b.block(0, 0), b00);
}

TEST(FlatMatrix, CopyIsDeep) {
  FlatMatrix a(8);
  fill_random(a, 3);
  FlatMatrix b(a);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  b.at(0, 0) += 1.0f;
  EXPECT_GT(max_abs_diff(a, b), 0.0f);
}

TEST(FlatMatrix, SpdIsSymmetricAndDiagonallyDominant) {
  FlatMatrix a(32);
  fill_spd(a, 5);
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) EXPECT_EQ(a.at(i, j), a.at(j, i));
    EXPECT_GT(a.at(i, i), 1.0f);
  }
}

TEST(FlatMatrix, Norms) {
  FlatMatrix a(4);
  a.at(0, 0) = 3.0f;
  a.at(1, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(frob_norm(a), 5.0);
  FlatMatrix b(4);
  EXPECT_EQ(max_abs_diff(a, b), 4.0f);
  EXPECT_EQ(max_abs_diff_lower(a, b), 4.0f);
}

}  // namespace
}  // namespace smpss
