// MatMul application tests: Fig. 1 dense, Fig. 3 sparse, and the Fig. 12
// flat on-demand transformation, all against the sequential oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/matmul.hpp"
#include "hyper/flat_matrix.hpp"

namespace smpss {
namespace {

using apps::MatmulTasks;

using Param = std::tuple<unsigned, int, int>;  // threads, nb, m

class MatmulSuite : public ::testing::TestWithParam<Param> {};

TEST_P(MatmulSuite, DenseHyperMatchesOracle) {
  auto [threads, nb, m] = GetParam();
  const int n = nb * m;
  FlatMatrix a(n), b(n), c_oracle(n);
  fill_random(a, 1);
  fill_random(b, 2);
  apps::matmul_seq_flat(n, a.data(), b.data(), c_oracle.data(),
                        blas::ref_kernels());

  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = MatmulTasks::register_in(rt);
  HyperMatrix ha(nb, m, true), hb(nb, m, true), hc(nb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  apps::matmul_smpss_hyper(rt, tt, ha, hb, hc, blas::tuned_kernels());
  FlatMatrix c(n);
  flat_from_blocked(c.data(), hc);
  EXPECT_LE(max_abs_diff(c, c_oracle), 1e-2f * static_cast<float>(n));
  EXPECT_EQ(rt.stats().tasks_spawned,
            static_cast<std::uint64_t>(nb) * nb * nb);  // "N^3 tasks"
}

TEST_P(MatmulSuite, FlatOnDemandMatchesOracle) {
  auto [threads, nb, m] = GetParam();
  const int n = nb * m;
  FlatMatrix a(n), b(n), c(n), c_oracle(n);
  fill_random(a, 3);
  fill_random(b, 4);
  apps::matmul_seq_flat(n, a.data(), b.data(), c_oracle.data(),
                        blas::ref_kernels());
  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = MatmulTasks::register_in(rt);
  apps::matmul_smpss_flat(rt, tt, n, a.data(), b.data(), c.data(), m,
                          blas::tuned_kernels());
  EXPECT_LE(max_abs_diff(c, c_oracle), 1e-2f * static_cast<float>(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulSuite,
                         ::testing::Values(Param{1, 2, 16}, Param{4, 4, 8},
                                           Param{8, 4, 16}, Param{8, 3, 24},
                                           Param{2, 1, 32}));

TEST(SparseMatmul, SkipsMissingBlocksAndAllocatesC) {
  const int nb = 4, m = 8, n = nb * m;
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  auto tt = MatmulTasks::register_in(rt);

  // Diagonal-ish sparse A, banded B.
  FlatMatrix a(n), b(n), c_oracle(n);
  HyperMatrix ha(nb, m, false), hb(nb, m, false), hc(nb, m, false);
  Xoshiro256 rng(11);
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j) {
      bool a_present = i == j || (i + j) % 3 == 0;
      bool b_present = std::abs(i - j) <= 1;
      if (a_present) {
        float* blk = ha.ensure_block(i, j);
        for (std::size_t e = 0; e < ha.block_elems(); ++e)
          blk[e] = 2.0f * rng.next_float() - 1.0f;
      }
      if (b_present) {
        float* blk = hb.ensure_block(i, j);
        for (std::size_t e = 0; e < hb.block_elems(); ++e)
          blk[e] = 2.0f * rng.next_float() - 1.0f;
      }
    }
  flat_from_blocked(a.data(), ha);
  flat_from_blocked(b.data(), hb);
  apps::matmul_seq_flat(n, a.data(), b.data(), c_oracle.data(),
                        blas::ref_kernels());

  apps::matmul_smpss_sparse(rt, tt, ha, hb, hc, blas::tuned_kernels());
  FlatMatrix c(n);
  flat_from_blocked(c.data(), hc);
  EXPECT_LE(max_abs_diff(c, c_oracle), 1e-2f * static_cast<float>(n));
  // Sparsity means strictly fewer than nb^3 tasks and not all C blocks.
  EXPECT_LT(rt.stats().tasks_spawned, static_cast<std::uint64_t>(nb) * nb * nb);
}

TEST(SparseMatmul, EmptyInputsSpawnNothing) {
  Config cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  auto tt = MatmulTasks::register_in(rt);
  HyperMatrix ha(3, 4, false), hb(3, 4, false), hc(3, 4, false);
  apps::matmul_smpss_sparse(rt, tt, ha, hb, hc, blas::ref_kernels());
  EXPECT_EQ(rt.stats().tasks_spawned, 0u);
  EXPECT_EQ(hc.allocated_blocks(), 0u);
}

TEST(MatmulProperty, LoopOrderIrrelevant) {
  // "Note that any ordering of the three nested loops produces correct
  // results" — spawn in k-j-i order instead of i-j-k and compare.
  const int nb = 3, m = 8, n = nb * m;
  FlatMatrix a(n), b(n), c_oracle(n);
  fill_random(a, 5);
  fill_random(b, 6);
  apps::matmul_seq_flat(n, a.data(), b.data(), c_oracle.data(),
                        blas::ref_kernels());

  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  auto tt = MatmulTasks::register_in(rt);
  HyperMatrix ha(nb, m, true), hb(nb, m, true), hc(nb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  const blas::Kernels* kp = &blas::tuned_kernels();
  const std::size_t be = ha.block_elems();
  for (int kk = 0; kk < nb; ++kk)
    for (int j = 0; j < nb; ++j)
      for (int i = 0; i < nb; ++i)
        rt.spawn(tt.sgemm,
                 [kp, m](const float* x, const float* y, float* z) {
                   kp->gemm_nn_acc(m, x, y, z);
                 },
                 in(ha.block(i, kk), be), in(hb.block(kk, j), be),
                 inout(hc.block(i, j), be));
  rt.barrier();
  FlatMatrix c(n);
  flat_from_blocked(c.data(), hc);
  EXPECT_LE(max_abs_diff(c, c_oracle), 1e-2f * static_cast<float>(n));
}

TEST(MatmulFlops, Formula) {
  EXPECT_DOUBLE_EQ(apps::matmul_flops(10), 2000.0);
}

}  // namespace
}  // namespace smpss
