// LU-with-partial-pivoting tests (the Sec. V regions showcase): oracle
// PA=LU reconstruction, exact pivot agreement between the blocked region
// build and the unblocked oracle, and numerical agreement across block
// sizes and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "apps/lu.hpp"
#include "hyper/flat_matrix.hpp"

namespace smpss {
namespace {

// Reconstruct P*A(original) from the in-place LU factors and pivots, and
// compare against L*U.
double lu_residual(const FlatMatrix& original, const FlatMatrix& factored,
                   const std::vector<int>& piv) {
  const int n = original.n();
  // Apply the pivot sequence to a copy of the original.
  FlatMatrix pa(original);
  for (int j = 0; j < n; ++j) {
    if (piv[static_cast<std::size_t>(j)] != j) {
      for (int c = 0; c < n; ++c)
        std::swap(pa.at(j, c), pa.at(piv[static_cast<std::size_t>(j)], c));
    }
  }
  double worst = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        double lik = (k == i) ? 1.0 : factored.at(i, k);
        acc += lik * factored.at(k, j);
      }
      // L has unit diagonal; U is the upper part including diagonal.
      if (i > j) {
        // acc already includes only k<=j terms; fine.
      }
      worst = std::max(worst, std::fabs(acc - pa.at(i, j)));
    }
  return worst;
}

TEST(LuSeq, ReconstructsPA) {
  const int n = 48;
  FlatMatrix a(n);
  fill_random(a, 77);
  FlatMatrix orig(a);
  std::vector<int> piv(static_cast<std::size_t>(n), -1);
  ASSERT_EQ(apps::lu_seq(n, a.data(), piv.data()), 0);
  EXPECT_LE(lu_residual(orig, a, piv), 1e-3 * n);
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(piv[static_cast<std::size_t>(j)], j);  // partial pivoting
    EXPECT_LT(piv[static_cast<std::size_t>(j)], n);
  }
}

TEST(LuSeq, SingularMatrixReported) {
  const int n = 8;
  FlatMatrix a(n);  // all zeros
  std::vector<int> piv(static_cast<std::size_t>(n), -1);
  EXPECT_NE(apps::lu_seq(n, a.data(), piv.data()), 0);
}

using Param = std::tuple<unsigned, int, int>;  // threads, n, bs

class LuRegions : public ::testing::TestWithParam<Param> {};

TEST_P(LuRegions, MatchesSequentialPivotsAndValues) {
  auto [threads, n, bs] = GetParam();
  FlatMatrix a(n);
  fill_random(a, 1000 + static_cast<std::uint64_t>(n) + bs);
  FlatMatrix a_seq(a);
  FlatMatrix orig(a);

  std::vector<int> piv_seq(static_cast<std::size_t>(n), -1);
  ASSERT_EQ(apps::lu_seq(n, a_seq.data(), piv_seq.data()), 0);

  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = apps::LuTasks::register_in(rt);
  std::vector<int> piv(static_cast<std::size_t>(n), -1);
  ASSERT_EQ(apps::lu_smpss_regions(rt, tt, n, a.data(), piv.data(), bs), 0);

  // Identical pivot choices (panel columns are fully updated before the
  // panel factorizes, so the comparison is exact, not just numerical).
  EXPECT_EQ(piv, piv_seq);
  EXPECT_LE(max_abs_diff(a, a_seq), 1e-2f);
  EXPECT_LE(lu_residual(orig, a, piv), 1e-3 * n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuRegions,
                         ::testing::Values(Param{1, 32, 8}, Param{4, 32, 8},
                                           Param{8, 64, 16}, Param{8, 64, 8},
                                           Param{4, 48, 16}, Param{2, 16, 16},
                                           Param{8, 96, 24}));

TEST(LuRegions, PivotingActuallyHappens) {
  // A matrix engineered to need row swaps: tiny diagonal, large subdiagonal.
  const int n = 16;
  FlatMatrix a(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a.at(i, j) = (i == j) ? 1e-6f : (i == j + 1 ? 1.0f : 0.1f);
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  auto tt = apps::LuTasks::register_in(rt);
  std::vector<int> piv(static_cast<std::size_t>(n), -1);
  ASSERT_EQ(apps::lu_smpss_regions(rt, tt, n, a.data(), piv.data(), 4), 0);
  bool any_swap = false;
  for (int j = 0; j < n; ++j)
    if (piv[static_cast<std::size_t>(j)] != j) any_swap = true;
  EXPECT_TRUE(any_swap);
}

TEST(LuFlops, Formula) {
  EXPECT_NEAR(apps::lu_flops(30), 18000.0, 1e-9);
}

}  // namespace
}  // namespace smpss
