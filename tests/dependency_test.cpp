// Dependency-engine behavior observed through the Runtime's stats counters:
// RAW edges, renaming decisions (fresh storage vs in-place reuse), inout
// copy-ins, the no-renaming WAR/WAW fallback, opaque parameters, duplicate
// parameters, and realignment at the barrier.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config one_thread(bool renaming = true) {
  Config c;
  c.num_threads = 1;
  c.renaming = renaming;
  return c;
}

TEST(Dependency, RawChainMakesEdges) {
  Runtime rt(one_thread());
  int x = 0;
  for (int i = 0; i < 10; ++i)
    rt.spawn([](int* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 10);
  auto s = rt.stats();
  EXPECT_EQ(s.raw_edges, 9u);  // a 10-task chain has 9 true edges
  EXPECT_EQ(s.war_edges, 0u);
  EXPECT_EQ(s.waw_edges, 0u);
}

TEST(Dependency, IndependentReadersShareOneVersion) {
  Runtime rt(one_thread());
  int x = 7;
  std::vector<int> outs(20, 0);
  for (int i = 0; i < 20; ++i)
    rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&outs[i]));
  rt.barrier();
  for (int v : outs) EXPECT_EQ(v, 7);
  // Readers of the initial version create no edges at all.
  EXPECT_EQ(rt.stats().raw_edges, 0u);
}

TEST(Dependency, OutAfterPendingReadersRenames) {
  Runtime rt(one_thread());
  int x = 1;
  int r1 = 0, r2 = 0;
  rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&r1));
  rt.spawn([](int* p) { *p = 2; }, out(&x));  // WAR vs pending reader
  rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&r2));
  rt.barrier();
  EXPECT_EQ(r1, 1);  // reader saw the old version
  EXPECT_EQ(r2, 2);  // reader saw the new version
  EXPECT_EQ(x, 2);   // realigned at barrier
  EXPECT_GE(rt.stats().renames, 1u);
  EXPECT_EQ(rt.stats().war_edges, 0u);  // no blocking edge: renamed instead
}

TEST(Dependency, InOutRenameCopiesOldValue) {
  Runtime rt(one_thread());
  int x = 10;
  int r1 = 0;
  rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&r1));
  // inout with a pending reader: renamed + copy-in of the old value.
  rt.spawn([](int* p) { *p += 5; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(r1, 10);
  EXPECT_EQ(x, 15);
  EXPECT_GE(rt.stats().copy_ins, 1u);
  EXPECT_GE(rt.stats().copy_in_bytes, sizeof(int));
}

TEST(Dependency, SequentialInOutReusesInPlace) {
  Runtime rt(one_thread());
  int x = 0;
  for (int i = 0; i < 50; ++i)
    rt.spawn([](int* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 50);
  // No reader pressure: every inout reuses the storage in place and no
  // renamed buffer is ever allocated.
  EXPECT_EQ(rt.stats().renames, 0u);
  EXPECT_EQ(rt.stats().copy_ins, 0u);
  EXPECT_GE(rt.stats().in_place_reuses, 49u);
}

TEST(Dependency, NoRenamingModeMakesWarAndWawEdges) {
  Runtime rt(one_thread(/*renaming=*/false));
  int x = 1;
  int r1 = 0;
  rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&r1));
  rt.spawn([](int* p) { *p = 2; }, out(&x));  // WAR edge now
  rt.spawn([](int* p) { *p = 3; }, out(&x));  // WAW edge now
  rt.barrier();
  EXPECT_EQ(r1, 1);
  EXPECT_EQ(x, 3);
  auto s = rt.stats();
  EXPECT_GE(s.war_edges, 1u);
  EXPECT_GE(s.waw_edges, 1u);
  EXPECT_EQ(s.renames, 0u);
}

TEST(Dependency, OpaquePointersSkipAnalysis) {
  Runtime rt(one_thread());
  int x = 0;
  // 10 tasks all writing through an opaque pointer: no objects tracked, no
  // edges — "opaque pointers pass through the runtime unaltered".
  for (int i = 0; i < 10; ++i)
    rt.spawn([](int* p) { *p += 1; }, opaque(&x));
  rt.barrier();
  EXPECT_EQ(x, 10);  // single worker, so the unordered writes still sum
  auto s = rt.stats();
  EXPECT_EQ(s.tracked_objects, 0u);
  EXPECT_EQ(s.raw_edges, 0u);
}

TEST(Dependency, ValueParametersAreCopiedAtSpawn) {
  Runtime rt(one_thread());
  std::vector<int> outs(5, 0);
  for (int i = 0; i < 5; ++i)
    rt.spawn([](const int& v, int* o) { *o = v; }, value(i), out(&outs[i]));
  rt.barrier();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(outs[static_cast<std::size_t>(i)], i);
}

TEST(Dependency, DuplicateParameterOnOneTaskIsSafe) {
  Runtime rt(one_thread());
  int x = 3;
  int r = 0;
  // Same datum passed twice (in + inout): must not self-deadlock.
  rt.spawn([](const int* a, int* b) { *b = *a * 2; }, in(&x), inout(&x));
  rt.spawn([](const int* a, int* o) { *o = *a; }, in(&x), out(&r));
  rt.barrier();
  EXPECT_EQ(r, 6);
}

TEST(Dependency, ManyObjectsTrackedIndependently) {
  Runtime rt(one_thread());
  constexpr int kN = 500;
  std::vector<int> xs(kN, 0);
  for (int i = 0; i < kN; ++i)
    rt.spawn([](int* p) { *p = 1; }, out(&xs[i]));
  rt.barrier();
  for (int v : xs) EXPECT_EQ(v, 1);
  EXPECT_EQ(rt.stats().tracked_objects, static_cast<std::uint64_t>(kN));
}

TEST(Dependency, WriteAfterBarrierStartsFreshChain) {
  Runtime rt(one_thread());
  int x = 0;
  rt.spawn([](int* p) { *p = 1; }, out(&x));
  rt.barrier();
  EXPECT_EQ(x, 1);
  rt.spawn([](int* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 2);
  // Tracking was dropped at the first barrier and re-created.
  EXPECT_EQ(rt.stats().tracked_objects, 2u);
}

TEST(Dependency, RenamedStorageIsAligned) {
  Runtime rt(one_thread());
  // Deliberately misaligned user buffer inside a bigger array.
  alignas(64) char raw[256];
  char* misaligned = raw + 3;
  bool task_saw_aligned = false;
  int sink = 0;
  rt.spawn([](const char* p, int* o) { *o = *p; }, in(misaligned, 64),
           out(&sink));
  // Renamed because of the pending reader; the renamed buffer must be
  // cache-line aligned (the "realigning data" effect of Sec. VI.E).
  rt.spawn(
      [&task_saw_aligned](char* p) {
        task_saw_aligned = is_aligned(p, kDataAlignment);
        p[0] = 1;
      },
      out(misaligned, 64));
  rt.barrier();
  EXPECT_TRUE(task_saw_aligned);
  EXPECT_EQ(raw[3], 1);
}

TEST(Dependency, RenameStorageReclaimedEagerly) {
  Config cfg = one_thread();
  Runtime rt(cfg);
  std::vector<char> buf(1 << 16);
  int sink = 0;
  // Alternate reader/writer so every write renames; storage from dead
  // versions must be freed as readers retire, keeping current usage small.
  for (int i = 0; i < 64; ++i) {
    rt.spawn([](const char* p, int* o) { *o += p[0]; }, in(buf.data(), buf.size()),
             inout(&sink));
    rt.spawn([](char* p) { p[0] = 1; }, out(buf.data(), buf.size()));
  }
  rt.barrier();
  EXPECT_GE(rt.stats().renames, 32u);
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);  // all reclaimed
}

}  // namespace
}  // namespace smpss
