// Runtime API behavior: spawning, barriers, wait_on, priorities, nested
// spawns, task types, stats bookkeeping — across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

class RuntimeBasic : public ::testing::TestWithParam<unsigned> {
 protected:
  Config cfg() const {
    Config c;
    c.num_threads = GetParam();
    return c;
  }
};

TEST_P(RuntimeBasic, EmptyBarrierIsFine) {
  Runtime rt(cfg());
  rt.barrier();
  rt.barrier();
  EXPECT_EQ(rt.stats().tasks_spawned, 0u);
  EXPECT_EQ(rt.stats().barriers, 2u);
}

TEST_P(RuntimeBasic, DestructorDrainsWithoutExplicitBarrier) {
  std::atomic<int> ran{0};
  {
    Runtime rt(cfg());
    for (int i = 0; i < 100; ++i)
      rt.spawn([](std::atomic<int>* r) { r->fetch_add(1); }, opaque(&ran));
  }  // ~Runtime barriers + joins
  EXPECT_EQ(ran.load(), 100);
}

TEST_P(RuntimeBasic, ChainExecutesInOrder) {
  Runtime rt(cfg());
  std::vector<int> order;
  order.reserve(64);
  int x = 0;
  for (int i = 0; i < 64; ++i)
    rt.spawn(
        [i, &order](int* p) {
          order.push_back(i);  // safe: the chain serializes the bodies
          *p += i;
        },
        inout(&x));
  rt.barrier();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(x, 64 * 63 / 2);
}

TEST_P(RuntimeBasic, FanOutFanIn) {
  Runtime rt(cfg());
  constexpr int kN = 256;
  int src = 3;
  std::vector<long> mid(kN, 0);
  long total = 0;
  for (int i = 0; i < kN; ++i)
    rt.spawn([i](const int* s, long* m) { *m = *s * (i + 1); }, in(&src),
             out(&mid[i]));
  // Fan-in: one task reading all intermediates would need kN params; chain a
  // reduction instead, which also exercises long dependency chains.
  for (int i = 0; i < kN; ++i)
    rt.spawn([](const long* m, long* t) { *t += *m; }, in(&mid[i]),
             inout(&total));
  rt.barrier();
  long expect = 0;
  for (int i = 0; i < kN; ++i) expect += 3L * (i + 1);
  EXPECT_EQ(total, expect);
}

TEST_P(RuntimeBasic, DiamondDependency) {
  Runtime rt(cfg());
  int a = 0, b = 0, c = 0, d = 0;
  rt.spawn([](int* p) { *p = 5; }, out(&a));
  rt.spawn([](const int* s, int* p) { *p = *s + 1; }, in(&a), out(&b));
  rt.spawn([](const int* s, int* p) { *p = *s * 2; }, in(&a), out(&c));
  rt.spawn([](const int* x, const int* y, int* p) { *p = *x + *y; }, in(&b),
           in(&c), out(&d));
  rt.barrier();
  EXPECT_EQ(d, 16);  // (5+1) + (5*2)
}

TEST_P(RuntimeBasic, NestedSpawnRunsInline) {
  Runtime rt(cfg());
  std::atomic<int> inner_runs{0};
  int x = 0;
  rt.spawn(
      [&rt, &inner_runs](int* p) {
        // A task spawning a task: executed as a plain function call
        // (paper Sec. VII.D), operating on the program's own pointers.
        rt.spawn([&inner_runs](int* q) {
          inner_runs.fetch_add(1);
          *q += 10;
        },
                 inout(p));
        *p += 1;
      },
      inout(&x));
  rt.barrier();
  EXPECT_EQ(inner_runs.load(), 1);
  EXPECT_EQ(x, 11);
  EXPECT_EQ(rt.stats().tasks_inlined, 1u);
  EXPECT_EQ(rt.stats().tasks_spawned, 1u);
}

TEST_P(RuntimeBasic, HighPriorityTypeIsScheduledFromHighList) {
  Config c = cfg();
  Runtime rt(c);
  TaskType urgent = rt.register_task_type("urgent", /*high_priority=*/true);
  std::atomic<int> runs{0};
  for (int i = 0; i < 32; ++i)
    rt.spawn(urgent, [](std::atomic<int>* r) { r->fetch_add(1); },
             opaque(&runs));
  rt.barrier();
  EXPECT_EQ(runs.load(), 32);
  EXPECT_GE(rt.stats().acquired_high, 1u);
}

TEST_P(RuntimeBasic, WaitOnMakesValueReadable) {
  Runtime rt(cfg());
  int x = 0;
  long slow_sink = 0;
  rt.spawn([](int* p) { *p = 42; }, out(&x));
  // Unrelated slow work that is NOT waited on.
  rt.spawn(
      [](long* s) {
        for (int i = 0; i < 2000000; ++i) *s += i;
      },
      inout(&slow_sink));
  rt.wait_on(&x);
  EXPECT_EQ(x, 42);  // readable before the barrier
  rt.barrier();
}

TEST_P(RuntimeBasic, WaitOnUntrackedAddressReturnsImmediately) {
  Runtime rt(cfg());
  int never_used = 9;
  rt.wait_on(&never_used);
  EXPECT_EQ(never_used, 9);
}

TEST_P(RuntimeBasic, WaitOnRenamedVersionCopiesBack) {
  Runtime rt(cfg());
  int x = 1;
  int r = 0;
  rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&r));
  rt.spawn([](int* p) { *p = 2; }, out(&x));  // renamed (pending reader)
  rt.wait_on(&x);
  EXPECT_EQ(x, 2);
  rt.barrier();
}

TEST_P(RuntimeBasic, StatsSpawnedEqualsExecuted) {
  Runtime rt(cfg());
  std::vector<int> xs(200, 0);
  for (int i = 0; i < 200; ++i)
    rt.spawn([](int* p) { *p = 1; }, out(&xs[i]));
  rt.barrier();
  auto s = rt.stats();
  EXPECT_EQ(s.tasks_spawned, 200u);
  EXPECT_EQ(s.tasks_executed, 200u);
  EXPECT_EQ(s.ready_at_creation, 200u);  // independent tasks
}

TEST_P(RuntimeBasic, TaskTypeNamesRecorded) {
  Runtime rt(cfg());
  TaskType a = rt.register_task_type("alpha");
  TaskType b = rt.register_task_type("beta", true);
  EXPECT_EQ(rt.task_types()[a.id].name, "alpha");
  EXPECT_EQ(rt.task_types()[b.id].name, "beta");
  EXPECT_TRUE(rt.task_types()[b.id].high_priority);
  EXPECT_FALSE(rt.task_types()[a.id].high_priority);
}

TEST_P(RuntimeBasic, LargeClosuresSpillToHeap) {
  Runtime rt(cfg());
  // Capture ~400 bytes by value: exceeds the inline closure buffer.
  std::array<long, 50> payload{};
  payload.fill(7);
  long sum = 0;
  rt.spawn([payload](long* out_sum) {
    long s = 0;
    for (long v : payload) s += v;
    *out_sum = s;
  },
           out(&sum));
  rt.barrier();
  EXPECT_EQ(sum, 350);
}

TEST_P(RuntimeBasic, ManyIndependentRootsAllRun) {
  Runtime rt(cfg());
  constexpr int kN = 5000;
  std::vector<unsigned char> flags(kN, 0);
  for (int i = 0; i < kN; ++i)
    rt.spawn([](unsigned char* f) { *f = 1; }, out(&flags[i]));
  rt.barrier();
  EXPECT_EQ(std::accumulate(flags.begin(), flags.end(), 0), kN);
}

INSTANTIATE_TEST_SUITE_P(Threads, RuntimeBasic,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(RuntimeConfig, EnvOverrides) {
  ::setenv("SMPSS_NUM_THREADS", "3", 1);
  ::setenv("SMPSS_RENAMING", "0", 1);
  ::setenv("SMPSS_SCHEDULER", "centralized", 1);
  Config c = Config::from_env();
  EXPECT_EQ(c.num_threads, 3u);
  EXPECT_FALSE(c.renaming);
  EXPECT_EQ(c.scheduler_mode, SchedulerMode::Centralized);
  ::unsetenv("SMPSS_NUM_THREADS");
  ::unsetenv("SMPSS_RENAMING");
  ::unsetenv("SMPSS_SCHEDULER");
}

TEST(RuntimeConfig, NormalizeDerivesFields) {
  Config c;
  c.num_threads = 0;
  c.task_window = 100;
  c.task_window_low = 0;
  c.normalize();
  EXPECT_GE(c.num_threads, 1u);
  EXPECT_EQ(c.task_window_low, 50u);
}

}  // namespace
}  // namespace smpss
