// Strassen tests: numerical agreement with plain GEMM, the sequential
// recursion, renaming intensity (the paper's "intensive renaming test
// case"), correctness with renaming disabled, the nested-spawn build, and
// the flop formula.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/matmul.hpp"
#include "apps/strassen.hpp"
#include "hyper/flat_matrix.hpp"

namespace smpss {
namespace {

// threads, nb, m, renaming, nested
using Param = std::tuple<unsigned, int, int, bool, bool>;

class StrassenSuite : public ::testing::TestWithParam<Param> {};

TEST_P(StrassenSuite, MatchesGemmOracle) {
  auto [threads, nb, m, renaming, nested] = GetParam();
  const int n = nb * m;
  FlatMatrix a(n), b(n), c_oracle(n);
  fill_random(a, 31);
  fill_random(b, 32);
  apps::matmul_seq_flat(n, a.data(), b.data(), c_oracle.data(),
                        blas::ref_kernels());

  Config cfg;
  cfg.num_threads = threads;
  cfg.renaming = renaming;
  cfg.nested_tasks = nested;
  Runtime rt(cfg);
  auto tt = apps::StrassenTasks::register_in(rt);
  HyperMatrix ha(nb, m, true), hb(nb, m, true), hc(nb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  apps::strassen_smpss(rt, tt, ha, hb, hc, blas::tuned_kernels());
  FlatMatrix c(n);
  flat_from_blocked(c.data(), hc);
  // Strassen loses some accuracy by construction; tolerance reflects that.
  EXPECT_LE(max_abs_diff(c, c_oracle), 5e-2f * static_cast<float>(n));
  if (nested && nb > 1) EXPECT_GT(rt.stats().tasks_nested, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrassenSuite,
    ::testing::Values(Param{1, 2, 16, true, false}, Param{4, 2, 16, true, false},
                      Param{8, 4, 8, true, false}, Param{8, 4, 16, true, false},
                      Param{4, 4, 8, false, false},  // renaming off: correct
                      Param{8, 8, 8, true, false},
                      // nested-spawn build: recursion runs as worker tasks
                      Param{1, 4, 8, true, true}, Param{4, 4, 8, true, true},
                      Param{8, 4, 16, true, true},
                      Param{8, 8, 8, true, true},
                      // nested + renaming off: hazards become edges, and the
                      // ancestor exemptions keep the C-block accumulation
                      // chains deadlock-free
                      Param{4, 4, 8, false, true}));

TEST(StrassenSeq, MatchesOracle) {
  const int nb = 4, m = 8, n = nb * m;
  FlatMatrix a(n), b(n), c_oracle(n);
  fill_random(a, 41);
  fill_random(b, 42);
  apps::matmul_seq_flat(n, a.data(), b.data(), c_oracle.data(),
                        blas::ref_kernels());
  HyperMatrix ha(nb, m, true), hb(nb, m, true), hc(nb, m, true);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  apps::strassen_seq(ha, hb, hc, blas::ref_kernels());
  FlatMatrix c(n);
  flat_from_blocked(c.data(), hc);
  EXPECT_LE(max_abs_diff(c, c_oracle), 5e-2f * static_cast<float>(n));
}

TEST(StrassenRenaming, TemporaryReuseTriggersRenames) {
  const int nb = 4, m = 8;
  Config cfg;
  // One thread: nothing executes before the barrier, so the reuse of tS/tT
  // always races with pending readers and the rename count is stable.
  cfg.num_threads = 1;
  Runtime rt(cfg);
  auto tt = apps::StrassenTasks::register_in(rt);
  HyperMatrix ha(nb, m, true), hb(nb, m, true), hc(nb, m, true);
  FlatMatrix a(nb * m), b(nb * m);
  fill_random(a, 1);
  fill_random(b, 2);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  apps::strassen_smpss(rt, tt, ha, hb, hc, blas::tuned_kernels());
  // The reused tS/tT temporaries must have forced renamed versions — this
  // is the paper's "intensive renaming test case".
  EXPECT_GT(rt.stats().renames, 10u);
  // Renamed storage is all reclaimed by the barrier.
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);
}

TEST(StrassenRenaming, NoRenamingMeansHazardEdges) {
  const int nb = 2, m = 8;
  Config cfg;
  cfg.num_threads = 1;  // deterministic hazard-edge counts
  cfg.renaming = false;
  Runtime rt(cfg);
  auto tt = apps::StrassenTasks::register_in(rt);
  HyperMatrix ha(nb, m, true), hb(nb, m, true), hc(nb, m, true);
  FlatMatrix a(nb * m), b(nb * m);
  fill_random(a, 3);
  fill_random(b, 4);
  blocked_from_flat(ha, a.data());
  blocked_from_flat(hb, b.data());
  apps::strassen_smpss(rt, tt, ha, hb, hc, blas::tuned_kernels());
  auto s = rt.stats();
  EXPECT_EQ(s.renames, 0u);
  EXPECT_GT(s.war_edges + s.waw_edges, 0u);  // serialization made explicit
}

TEST(StrassenFlops, FormulaBaseAndRecursion) {
  EXPECT_DOUBLE_EQ(apps::strassen_flops(1, 10), 2000.0);
  // One level: 7 products of half size + 18 additions of (nb/2*m)^2.
  double expect = 7.0 * apps::strassen_flops(1, 8) + 18.0 * 8.0 * 8.0;
  EXPECT_DOUBLE_EQ(apps::strassen_flops(2, 8), expect);
  // Strassen beats the classic count for large sizes.
  EXPECT_LT(apps::strassen_flops(64, 64), apps::matmul_flops(64 * 64));
}

}  // namespace
}  // namespace smpss
