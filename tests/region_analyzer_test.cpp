// Region-mode dependency analysis through the Runtime (the Sec. V.A
// extension): overlap-ordered writes, disjoint-parallel writes, RAR freedom,
// 2-D regions, and the mixed-mode diagnostic.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config threads(unsigned n) {
  Config c;
  c.num_threads = n;
  return c;
}

TEST(RegionDeps, OverlappingWritesAreOrdered) {
  Runtime rt(threads(1));  // deterministic edge counters
  std::vector<int> arr(100, 0);
  // Three tasks with overlapping regions; program order must hold.
  rt.spawn([](int* a) { for (int i = 0; i <= 60; ++i) a[i] = 1; },
           out(arr.data(), Region{{Bound::closed(0, 60)}}));
  rt.spawn([](int* a) { for (int i = 40; i <= 99; ++i) a[i] = 2; },
           out(arr.data(), Region{{Bound::closed(40, 99)}}));
  rt.spawn([](int* a) { for (int i = 50; i <= 55; ++i) a[i] += 10; },
           inout(arr.data(), Region{{Bound::closed(50, 55)}}));
  rt.barrier();
  EXPECT_EQ(arr[0], 1);
  EXPECT_EQ(arr[45], 2);
  EXPECT_EQ(arr[52], 12);
  EXPECT_EQ(arr[99], 2);
  EXPECT_GE(rt.stats().waw_edges + rt.stats().raw_edges, 1u);
}

TEST(RegionDeps, DisjointWritesHaveNoEdges) {
  Runtime rt(threads(4));
  std::vector<int> arr(1000, 0);
  for (int c = 0; c < 10; ++c) {
    long lo = c * 100, hi = lo + 99;
    rt.spawn([lo, hi](int* a) { for (long i = lo; i <= hi; ++i) a[i] = 1; },
             out(arr.data(), Region{{Bound::closed(lo, hi)}}));
  }
  rt.barrier();
  EXPECT_EQ(std::accumulate(arr.begin(), arr.end(), 0), 1000);
  auto s = rt.stats();
  EXPECT_EQ(s.raw_edges + s.war_edges + s.waw_edges, 0u);
  EXPECT_EQ(s.ready_at_creation, 10u);
}

TEST(RegionDeps, ReadAfterReadIsFree) {
  Runtime rt(threads(4));
  std::vector<int> arr(100, 5);
  std::vector<int> outs(20, 0);
  for (int i = 0; i < 20; ++i)
    rt.spawn([](const int* a, int* o) { *o = a[10]; },
             in(arr.data(), Region{{Bound::closed(0, 99)}}), out(&outs[i]));
  rt.barrier();
  for (int v : outs) EXPECT_EQ(v, 5);
  EXPECT_EQ(rt.stats().raw_edges + rt.stats().war_edges, 0u);
}

TEST(RegionDeps, RawThroughOverlap) {
  Runtime rt(threads(1));  // deterministic edge counters
  std::vector<int> arr(100, 0);
  std::vector<int> sum(1, 0);
  rt.spawn([](int* a) { for (int i = 20; i <= 40; ++i) a[i] = 3; },
           out(arr.data(), Region{{Bound::closed(20, 40)}}));
  rt.spawn(
      [](const int* a, int* s) {
        for (int i = 30; i <= 35; ++i) *s += a[i];
      },
      in(arr.data(), Region{{Bound::closed(30, 35)}}), out(&sum[0]));
  rt.barrier();
  EXPECT_EQ(sum[0], 18);
  EXPECT_GE(rt.stats().raw_edges, 1u);
}

TEST(RegionDeps, WarOrdersWriterAfterReader) {
  Runtime rt(threads(1));  // deterministic edge counters
  std::vector<int> arr(64, 1);
  int seen = 0;
  rt.spawn(
      [](const int* a, int* o) {
        int s = 0;
        for (int i = 0; i < 64; ++i) s += a[i];
        *o = s;
      },
      in(arr.data(), Region{{Bound::closed(0, 63)}}), out(&seen));
  rt.spawn([](int* a) { for (int i = 0; i < 64; ++i) a[i] = 100; },
           out(arr.data(), Region{{Bound::closed(0, 63)}}));
  rt.barrier();
  EXPECT_EQ(seen, 64);  // reader saw the pre-write values
  EXPECT_GE(rt.stats().war_edges, 1u);
}

TEST(RegionDeps, TwoDimensionalStripes) {
  Runtime rt(threads(4));
  constexpr int kN = 16;
  std::vector<float> m(kN * kN, 0.0f);
  // Column stripes written in parallel, then row band read across them.
  for (int s = 0; s < 4; ++s) {
    long c0 = s * 4, c1 = c0 + 3;
    rt.spawn(
        [c0, c1, kN](float* a) {
          for (int i = 0; i < kN; ++i)
            for (long j = c0; j <= c1; ++j) a[i * kN + j] = 1.0f;
        },
        out(m.data(), Region{{Bound::closed(0, kN - 1), Bound::closed(c0, c1)}}));
  }
  float total = 0.0f;
  rt.spawn(
      [kN](const float* a, float* t) {
        for (int i = 0; i < kN * kN; ++i) *t += a[i];
      },
      in(m.data(), Region{{Bound::whole(), Bound::whole()}}), out(&total));
  rt.barrier();
  EXPECT_FLOAT_EQ(total, 256.0f);
}

TEST(RegionDeps, FullSpecifierConflictsWithEverything) {
  Runtime rt(threads(2));
  std::vector<int> arr(32, 0);
  rt.spawn([](int* a) { a[5] = 1; },
           out(arr.data(), Region{{Bound::closed(5, 5)}}));
  rt.spawn([](int* a) { for (int i = 0; i < 32; ++i) a[i] += 1; },
           inout(arr.data(), Region{{Bound::whole()}}));
  rt.barrier();
  EXPECT_EQ(arr[5], 2);
  EXPECT_EQ(arr[6], 1);
}

TEST(RegionDeps, SequencesOfMixedAccessesMatchOracle) {
  // Randomized 1-D region program vs sequential oracle.
  Xoshiro256 rng(77);
  constexpr long kLen = 64;
  // Unsigned cells: randomized multiply-accumulate writes wrap — defined
  // for unsigned, and the oracle wraps identically (UBSan-clean).
  std::vector<unsigned> par(kLen, 0), seq(kLen, 0);
  struct Op {
    long lo, hi;
    unsigned tag;
    bool write;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 120; ++i) {
    long a = static_cast<long>(rng.next_below(kLen));
    long b = static_cast<long>(rng.next_below(kLen));
    if (a > b) std::swap(a, b);
    ops.push_back(Op{a, b, static_cast<unsigned>(i + 1),
                     rng.next_below(2) == 0});
  }
  {
    Runtime rt(threads(8));
    for (const Op& op : ops) {
      if (op.write) {
        rt.spawn(
            [op](unsigned* p) {
              for (long i = op.lo; i <= op.hi; ++i) p[i] = p[i] * 5 + op.tag;
            },
            inout(par.data(), Region{{Bound::closed(op.lo, op.hi)}}));
      } else {
        rt.spawn([](const unsigned* p) { (void)p[0]; },
                 in(par.data(), Region{{Bound::closed(op.lo, op.hi)}}));
      }
    }
    rt.barrier();
  }
  for (const Op& op : ops)
    if (op.write)
      for (long i = op.lo; i <= op.hi; ++i) seq[i] = seq[i] * 5 + op.tag;
  EXPECT_EQ(par, seq);
}

TEST(RegionDeps, Random2DProgramMatchesOracle) {
  // Random rectangular read/write program on a 2-D grid vs a sequential
  // oracle — the 2-D analogue of SequencesOfMixedAccessesMatchOracle.
  Xoshiro256 rng(2025);
  constexpr int kDim = 24;
  // Unsigned cells for the same wrap-definedness reason as the 1-D test.
  std::vector<unsigned> par(kDim * kDim, 0), seq(kDim * kDim, 0);
  struct Op {
    long r0, r1, c0, c1;
    unsigned tag;
    bool write;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 150; ++i) {
    auto ivl = [&](long& lo, long& hi) {
      lo = static_cast<long>(rng.next_below(kDim));
      hi = static_cast<long>(rng.next_below(kDim));
      if (lo > hi) std::swap(lo, hi);
    };
    Op op;
    ivl(op.r0, op.r1);
    ivl(op.c0, op.c1);
    op.tag = static_cast<unsigned>(i + 1);
    op.write = rng.next_below(5) != 0;  // write-heavy
    ops.push_back(op);
  }
  {
    Runtime rt(threads(8));
    for (const Op& op : ops) {
      Region r{{Bound::closed(op.r0, op.r1), Bound::closed(op.c0, op.c1)}};
      if (op.write) {
        rt.spawn(
            [op](unsigned* g) {
              for (long i = op.r0; i <= op.r1; ++i)
                for (long j = op.c0; j <= op.c1; ++j)
                  g[i * kDim + j] = g[i * kDim + j] * 3 + op.tag;
            },
            inout(par.data(), r));
      } else {
        rt.spawn([](const unsigned* g) { (void)g[0]; }, in(par.data(), r));
      }
    }
    rt.barrier();
  }
  for (const Op& op : ops)
    if (op.write)
      for (long i = op.r0; i <= op.r1; ++i)
        for (long j = op.c0; j <= op.c1; ++j)
          seq[static_cast<std::size_t>(i * kDim + j)] =
              seq[static_cast<std::size_t>(i * kDim + j)] * 3 + op.tag;
  EXPECT_EQ(par, seq);
}

TEST(RegionDepsDeath, MixingRegionAndAddressModeAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ASSERT_DEATH(
      {
        Config c;
        c.num_threads = 1;
        Runtime rt(c);
        std::vector<int> arr(16, 0);
        rt.spawn([](int* a) { a[0] = 1; },
                 out(arr.data(), Region{{Bound::closed(0, 15)}}));
        rt.spawn([](int* a) { a[0] = 2; }, out(arr.data(), 16));
        rt.barrier();
      },
      "region");
}

}  // namespace
}  // namespace smpss
