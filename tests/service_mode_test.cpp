// Service mode: concurrent client streams against the sequential oracle,
// future/callback exactly-once semantics, drain()/close() guarantees (no
// leaked tasks, callbacks complete before close returns), per-stream stats
// splits, the JSON exporter, and graceful whole-runtime shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "patterns/driver.hpp"
#include "patterns/oracle.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

using patterns::LowerMode;
using patterns::PatternImage;
using patterns::PatternKind;
using patterns::PatternSpec;

Config service_config(unsigned threads = 4) {
  Config cfg;
  cfg.num_threads = threads;
  cfg.nested_tasks = true;  // streams are concurrent submitters
  return cfg;
}

PatternSpec stream_spec(PatternKind kind, std::uint64_t seed) {
  PatternSpec s;
  s.kind = kind;
  s.width = 8;
  s.steps = 12;
  s.radix = 3;
  s.period = 3;
  s.seed = seed;
  return s;
}

::testing::AssertionResult images_equal(const PatternImage& got,
                                        const PatternImage& want) {
  if (got == want) return ::testing::AssertionSuccess();
  for (long f = 0; f < want.nfields; ++f)
    for (long p = 0; p < want.width; ++p)
      if (got.at(f, p) != want.at(f, p)) {
        std::ostringstream os;
        os << "first mismatch at row " << f << " point " << p << ": got 0x"
           << std::hex << got.at(f, p) << " want 0x" << want.at(f, p);
        return ::testing::AssertionFailure() << os.str();
      }
  return ::testing::AssertionFailure() << "image shapes differ";
}

// N client threads, each driving its own stream with its own pattern (its
// own image — independent graphs multiplexed onto one runtime), racing each
// other through the sharded analyzers and the admission queue. Every final
// image must be bit-identical to the sequential oracle.
TEST(ServiceMode, MultiStreamConformance) {
  const PatternKind kinds[] = {PatternKind::Chain, PatternKind::Stencil1D,
                               PatternKind::Fft, PatternKind::AllToAll};
  for (LowerMode mode : {LowerMode::Address, LowerMode::Region}) {
    Runtime rt(service_config());
    TaskType point = rt.register_task_type("service_point");
    constexpr int kStreams = 4;
    std::vector<PatternSpec> specs;
    std::vector<PatternImage> imgs;
    std::vector<StreamHandle> streams;
    for (int i = 0; i < kStreams; ++i) {
      specs.push_back(stream_spec(kinds[i], 0xBEEF + i));
      imgs.push_back(
          patterns::make_initial_image(specs[i],
                                       patterns::default_fields(specs[i])));
      streams.push_back(rt.open_stream(
          {.name = "client-" + std::to_string(i),
           .weight = static_cast<std::uint32_t>(1 + i % 2),
           .task_window = i % 2 == 0 ? 0u : 16u}));
    }
    std::vector<std::thread> clients;
    for (int i = 0; i < kStreams; ++i)
      clients.emplace_back([&, i] {
        patterns::submit_pattern_stream(streams[i], point, specs[i], imgs[i],
                                        mode);
        streams[i].drain();
      });
    for (auto& th : clients) th.join();
    // Drains cover retirement; the realignment of renamed data back into
    // the images is barrier()'s job (main thread, after the clients).
    rt.barrier();
    for (int i = 0; i < kStreams; ++i) {
      const PatternImage expect =
          patterns::run_oracle(specs[i], imgs[i].nfields);
      ASSERT_TRUE(images_equal(imgs[i], expect))
          << "stream " << i << " mode " << patterns::to_string(mode) << "\n  "
          << specs[i].describe();
      EXPECT_EQ(streams[i].state()->submitted.load(),
                static_cast<std::uint64_t>(specs[i].total_tasks()));
      EXPECT_EQ(streams[i].state()->retired.load(),
                streams[i].state()->submitted.load());
    }
  }
}

TEST(ServiceMode, FuturesCompleteExactlyOnce) {
  Runtime rt(service_config());
  StreamHandle s = rt.open_stream({.name = "fut"});
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> fired(kTasks);
  std::vector<int> cells(kTasks, 0);
  std::vector<TaskFuture> futs;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i)
    futs.push_back(s.submit([](int* c) { *c = 7; }, out(&cells[i])));
  // Arm half the callbacks immediately (they race completion: some run on
  // the retiring worker, some inline in then()); wait() the rest first and
  // install after ready — the pure inline path.
  for (int i = 0; i < kTasks; i += 2)
    futs[i].then([&fired, i] { fired[i].fetch_add(1); });
  for (int i = 1; i < kTasks; i += 2) {
    futs[i].wait();
    ASSERT_TRUE(futs[i].ready());
    futs[i].then([&fired, i] { fired[i].fetch_add(1); });
    // Installed after completion: ran inline, synchronously.
    ASSERT_EQ(fired[i].load(), 1) << i;
  }
  s.drain();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(fired[i].load(), 1) << "callback count for task " << i;
    ASSERT_EQ(cells[i], 7) << i;
  }
  // wait() after retire returns immediately.
  for (auto& f : futs) f.wait();
}

TEST(ServiceMode, CallbacksCompleteBeforeCloseReturns) {
  // close() (and drain()) returning implies every callback already ran:
  // retire fulfills the future before the stream's live count drops. A
  // client that frees callback-captured state right after close() must be
  // safe — this is the "callbacks never run on a destroyed stream" contract.
  for (int round = 0; round < 20; ++round) {
    Runtime rt(service_config(2));
    auto* counter = new std::atomic<int>(0);
    int cell = 0;
    {
      StreamHandle s = rt.open_stream({.name = "cb"});
      for (int i = 0; i < 50; ++i)
        s.submit([](int* c) { ++*c; }, inout(&cell))
            .then([counter] { counter->fetch_add(1); });
      s.close();
      ASSERT_EQ(counter->load(), 50);
    }
    ASSERT_EQ(cell, 50);
    delete counter;  // safe: no callback can still be in flight
  }
}

TEST(ServiceMode, DrainLeavesNoLeakedTasks) {
  Runtime rt(service_config());
  StreamHandle a = rt.open_stream({.name = "a"});
  StreamHandle b = rt.open_stream({.name = "b", .task_window = 8});
  long cells[2] = {0, 0};
  std::thread ta([&] {
    for (int i = 0; i < 400; ++i)
      a.post([](long* c) { *c += 1; }, inout(&cells[0]));
    a.drain();
  });
  std::thread tb([&] {
    for (int i = 0; i < 400; ++i)
      b.post([](long* c) { *c += 1; }, inout(&cells[1]));
    b.drain();
  });
  ta.join();
  tb.join();
  // Both drains returned with submissions racing each other: every admitted
  // task retired, nothing leaked into the window or the pool.
  EXPECT_EQ(a.state()->live.load(), 0);
  EXPECT_EQ(b.state()->live.load(), 0);
  EXPECT_EQ(a.state()->submitted.load(), a.state()->retired.load());
  EXPECT_EQ(b.state()->submitted.load(), b.state()->retired.load());
  EXPECT_EQ(rt.live_tasks(), 0u);
  rt.barrier();
  EXPECT_EQ(cells[0], 400);
  EXPECT_EQ(cells[1], 400);
  const StatsSnapshot st = rt.stats();
  EXPECT_EQ(st.tasks_spawned, st.tasks_executed);
  EXPECT_EQ(st.stream_submitted, 800u);
  EXPECT_EQ(st.stream_retired, 800u);
}

TEST(ServiceMode, PerStreamStatsSplit) {
  Runtime rt(service_config(2));
  StreamHandle a = rt.open_stream({.name = "alpha"});
  StreamHandle b = rt.open_stream({.name = "beta"});
  double x = 0, y = 0;
  for (int i = 0; i < 30; ++i) a.post([](double* p) { *p += 1; }, inout(&x));
  for (int i = 0; i < 70; ++i) b.post([](double* p) { *p += 1; }, inout(&y));
  a.drain();
  b.drain();
  const StatsSnapshot st = rt.stats();
  ASSERT_EQ(st.streams.size(), 2u);
  EXPECT_EQ(st.streams[0].name, "alpha");
  EXPECT_EQ(st.streams[0].submitted, 30u);
  EXPECT_EQ(st.streams[0].retired, 30u);
  EXPECT_EQ(st.streams[1].name, "beta");
  EXPECT_EQ(st.streams[1].submitted, 70u);
  EXPECT_EQ(st.streams[1].retired, 70u);
  // The inout chains rename (WAW elimination), and the charge lands on the
  // submitting stream's account — split, not pooled.
  EXPECT_GT(st.streams[0].dep_accesses, 0u);
  EXPECT_GT(st.streams[1].dep_accesses, 0u);
  EXPECT_EQ(st.stream_submitted, 100u);
  // Latency was recorded for every retired stream task.
  EXPECT_EQ(st.service_latency_count, 100u);
  EXPECT_GT(st.service_p99_ns, 0u);
  EXPECT_GE(st.service_p99_ns, st.service_p50_ns);
}

TEST(ServiceMode, StatsJsonExporterWritesLines) {
  const std::string path =
      ::testing::TempDir() + "smpss_stats_export_test.jsonl";
  std::remove(path.c_str());
  {
    Config cfg = service_config(2);
    cfg.stats_period_ms = 20;
    cfg.stats_path = path;
    Runtime rt(cfg);
    StreamHandle s = rt.open_stream({.name = "exported \"q\""});
    long cell = 0;
    for (int i = 0; i < 100; ++i)
      s.post([](long* c) { *c += 1; }, inout(&cell));
    s.drain();
  }  // destructor emits the final line and joins the exporter
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(in, line))
    if (!line.empty()) {
      last = line;
      ++lines;
    }
  ASSERT_GE(lines, 1u);  // final-line-at-shutdown guarantees >= 1
  // Spot-check the shape: totals, the stream row, escaped name, percentiles.
  EXPECT_NE(last.find("\"tasks_executed\":"), std::string::npos) << last;
  EXPECT_NE(last.find("\"window_occupancy\":"), std::string::npos) << last;
  EXPECT_NE(last.find("\"streams\":[{"), std::string::npos) << last;
  EXPECT_NE(last.find("\"name\":\"exported \\\"q\\\"\""), std::string::npos)
      << last;
  EXPECT_NE(last.find("\"p99_ns\":"), std::string::npos) << last;
  EXPECT_NE(last.find("\"retired\":100"), std::string::npos) << last;
  std::remove(path.c_str());
}

TEST(ServiceMode, GracefulShutdown) {
  Runtime rt(service_config());
  StreamHandle a = rt.open_stream({.name = "a"});
  StreamHandle b = rt.open_stream({.name = "b"});
  EXPECT_EQ(rt.open_stream_count(), 2u);
  long cell = 0;
  std::thread client([&] {
    for (int i = 0; i < 300; ++i)
      a.post([](long* c) { *c += 1; }, inout(&cell));
  });
  client.join();
  rt.shutdown_streams();
  EXPECT_EQ(rt.open_stream_count(), 0u);
  EXPECT_FALSE(a.open());
  EXPECT_FALSE(b.open());
  EXPECT_TRUE(a.valid());  // handles stay valid, submissions are refused
  EXPECT_EQ(a.state()->retired.load(), 300u);
  rt.barrier();
  EXPECT_EQ(cell, 300);
  // Idempotent: closing again (and the handle destructors later) is a no-op.
  rt.shutdown_streams();
  a.close();
}

TEST(ServiceMode, StreamHandleDestructorClosesAndDrains) {
  Runtime rt(service_config(2));
  long cell = 0;
  {
    StreamHandle s = rt.open_stream();
    EXPECT_EQ(s.name(), "stream-0");  // default naming
    for (int i = 0; i < 64; ++i)
      s.post([](long* c) { *c += 1; }, inout(&cell));
  }  // ~StreamHandle: drain + close
  EXPECT_EQ(rt.open_stream_count(), 0u);
  rt.barrier();
  EXPECT_EQ(cell, 64);
}

TEST(ServiceMode, OpenStreamRequiresNestedTasks) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.nested_tasks = false;
  Runtime rt(cfg);
  EXPECT_DEATH(rt.open_stream(), "nested_tasks");
}

}  // namespace
}  // namespace smpss
