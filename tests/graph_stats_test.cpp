// Graph-structure analysis: critical path, width, roots/leaves, per-type
// counts, predecessor queries — on hand-built graphs and runtime-recorded
// ones.
#include <gtest/gtest.h>

#include "graph/graph_recorder.hpp"
#include "graph/graph_stats.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

GraphRecorder make_chain(int n) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= n; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  for (int i = 1; i < n; ++i)
    rec.record_edge(static_cast<std::uint64_t>(i),
                    static_cast<std::uint64_t>(i + 1), EdgeKind::True);
  return rec;
}

TEST(GraphStats, Chain) {
  auto rec = make_chain(10);
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.nodes, 10u);
  EXPECT_EQ(s.edges, 9u);
  EXPECT_EQ(s.roots, 1u);
  EXPECT_EQ(s.leaves, 1u);
  EXPECT_EQ(s.critical_path, 10u);
  EXPECT_EQ(s.max_width, 1u);
  EXPECT_DOUBLE_EQ(s.avg_parallelism, 1.0);
}

TEST(GraphStats, IndependentTasks) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= 8; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.critical_path, 1u);
  EXPECT_EQ(s.max_width, 8u);
  EXPECT_EQ(s.roots, 8u);
  EXPECT_DOUBLE_EQ(s.avg_parallelism, 8.0);
}

TEST(GraphStats, Diamond) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= 4; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  rec.record_edge(1, 2, EdgeKind::True);
  rec.record_edge(1, 3, EdgeKind::True);
  rec.record_edge(2, 4, EdgeKind::True);
  rec.record_edge(3, 4, EdgeKind::True);
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.critical_path, 3u);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_EQ(s.roots, 1u);
  EXPECT_EQ(s.leaves, 1u);
}

TEST(GraphStats, PerTypeCounts) {
  GraphRecorder rec;
  rec.set_enabled(true);
  rec.record_node(1, 0);
  rec.record_node(2, 2);
  rec.record_node(3, 2);
  auto s = analyze_graph(rec);
  ASSERT_EQ(s.per_type_counts.size(), 3u);
  EXPECT_EQ(s.per_type_counts[0], 1u);
  EXPECT_EQ(s.per_type_counts[1], 0u);
  EXPECT_EQ(s.per_type_counts[2], 2u);
}

TEST(GraphStats, EmptyGraph) {
  GraphRecorder rec;
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.critical_path, 0u);
}

TEST(GraphStats, PredecessorsAndAncestors) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= 5; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  rec.record_edge(1, 3, EdgeKind::True);
  rec.record_edge(2, 3, EdgeKind::True);
  rec.record_edge(3, 5, EdgeKind::True);
  rec.record_edge(4, 5, EdgeKind::True);
  EXPECT_EQ(predecessors_of(rec, 5), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ancestor_closure(rec, 5), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_TRUE(predecessors_of(rec, 1).empty());
}

TEST(GraphStats, RecordedRuntimeGraphMatchesSpawnStructure) {
  Config c;
  // One thread: the full static graph is recorded (with workers racing,
  // completed producers leave no edge).
  c.num_threads = 1;
  c.record_graph = true;
  Runtime rt(c);
  // Two independent chains of length 5.
  int x = 0, y = 0;
  for (int i = 0; i < 5; ++i) rt.spawn([](int* p) { *p += 1; }, inout(&x));
  for (int i = 0; i < 5; ++i) rt.spawn([](int* p) { *p += 1; }, inout(&y));
  rt.barrier();
  auto s = analyze_graph(rt.graph_recorder());
  EXPECT_EQ(s.nodes, 10u);
  EXPECT_EQ(s.edges, 8u);
  EXPECT_EQ(s.critical_path, 5u);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_EQ(s.roots, 2u);
}

}  // namespace
}  // namespace smpss
