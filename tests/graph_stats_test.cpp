// Graph-structure analysis: critical path, width, roots/leaves, per-type
// counts, predecessor queries — on hand-built graphs and runtime-recorded
// ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_recorder.hpp"
#include "graph/graph_stats.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

GraphRecorder make_chain(int n) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= n; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  for (int i = 1; i < n; ++i)
    rec.record_edge(static_cast<std::uint64_t>(i),
                    static_cast<std::uint64_t>(i + 1), EdgeKind::True);
  return rec;
}

TEST(GraphStats, Chain) {
  auto rec = make_chain(10);
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.nodes, 10u);
  EXPECT_EQ(s.edges, 9u);
  EXPECT_EQ(s.roots, 1u);
  EXPECT_EQ(s.leaves, 1u);
  EXPECT_EQ(s.critical_path, 10u);
  EXPECT_EQ(s.max_width, 1u);
  EXPECT_DOUBLE_EQ(s.avg_parallelism, 1.0);
}

TEST(GraphStats, IndependentTasks) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= 8; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.critical_path, 1u);
  EXPECT_EQ(s.max_width, 8u);
  EXPECT_EQ(s.roots, 8u);
  EXPECT_DOUBLE_EQ(s.avg_parallelism, 8.0);
}

TEST(GraphStats, Diamond) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= 4; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  rec.record_edge(1, 2, EdgeKind::True);
  rec.record_edge(1, 3, EdgeKind::True);
  rec.record_edge(2, 4, EdgeKind::True);
  rec.record_edge(3, 4, EdgeKind::True);
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.critical_path, 3u);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_EQ(s.roots, 1u);
  EXPECT_EQ(s.leaves, 1u);
}

TEST(GraphStats, PerTypeCounts) {
  GraphRecorder rec;
  rec.set_enabled(true);
  rec.record_node(1, 0);
  rec.record_node(2, 2);
  rec.record_node(3, 2);
  auto s = analyze_graph(rec);
  ASSERT_EQ(s.per_type_counts.size(), 3u);
  EXPECT_EQ(s.per_type_counts[0], 1u);
  EXPECT_EQ(s.per_type_counts[1], 0u);
  EXPECT_EQ(s.per_type_counts[2], 2u);
}

TEST(GraphStats, EmptyGraph) {
  GraphRecorder rec;
  auto s = analyze_graph(rec);
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.critical_path, 0u);
}

TEST(GraphStats, PredecessorsAndAncestors) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= 5; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  rec.record_edge(1, 3, EdgeKind::True);
  rec.record_edge(2, 3, EdgeKind::True);
  rec.record_edge(3, 5, EdgeKind::True);
  rec.record_edge(4, 5, EdgeKind::True);
  EXPECT_EQ(predecessors_of(rec, 5), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ancestor_closure(rec, 5), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_TRUE(predecessors_of(rec, 1).empty());
}

TEST(GraphStats, RecordedRuntimeGraphMatchesSpawnStructure) {
  Config c;
  // One thread: the full static graph is recorded (with workers racing,
  // completed producers leave no edge).
  c.num_threads = 1;
  c.record_graph = true;
  Runtime rt(c);
  // Two independent chains of length 5.
  int x = 0, y = 0;
  for (int i = 0; i < 5; ++i) rt.spawn([](int* p) { *p += 1; }, inout(&x));
  for (int i = 0; i < 5; ++i) rt.spawn([](int* p) { *p += 1; }, inout(&y));
  rt.barrier();
  auto s = analyze_graph(rt.graph_recorder());
  EXPECT_EQ(s.nodes, 10u);
  EXPECT_EQ(s.edges, 8u);
  EXPECT_EQ(s.critical_path, 5u);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_EQ(s.roots, 2u);
}

// --- per-worker scheduling counters (StatsSnapshot::workers) -----------------

TEST(RuntimeWorkerStats, SingleThreadChainRowsAreExact) {
  Config c;
  c.num_threads = 1;
  // chain_depth = 0 forces every released successor through the ready lists,
  // where the policy stamps its placement preference (chained tasks bypass
  // enqueue entirely and carry no preference).
  c.chain_depth = 0;
  Runtime rt(c);
  constexpr int kN = 100;
  long x = 0;
  for (int i = 0; i < kN; ++i) rt.spawn([](long* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, static_cast<long>(kN));

  auto s = rt.stats();
  ASSERT_EQ(s.workers.size(), 1u);
  const auto& w = s.workers[0];
  EXPECT_EQ(w.executed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(w.steals, 0u);
  EXPECT_EQ(w.chained, 0u);
  // The chain head was spawned from the main thread (no preference, counted
  // neither way); every other task was released by worker 0 and executed by
  // worker 0.
  EXPECT_EQ(w.locality_hits, static_cast<std::uint64_t>(kN) - 1);
  EXPECT_EQ(w.locality_misses, 0u);
  // Aggregates are exactly the row sums (one row here).
  EXPECT_EQ(s.tasks_executed, w.executed);
  EXPECT_EQ(s.steals, w.steals);
  EXPECT_EQ(s.locality_hits, w.locality_hits);
  EXPECT_EQ(s.locality_misses, w.locality_misses);
  EXPECT_EQ(s.idle_ns, w.idle_ns);
  EXPECT_EQ(s.idle_sleeps, w.idle_sleeps);
  EXPECT_EQ(s.acquired_high, w.acquired_high);
  EXPECT_EQ(s.acquired_own, w.acquired_own);
  EXPECT_EQ(s.acquired_main, w.acquired_main);
  // The paper policy never promotes on priority.
  EXPECT_EQ(s.sched_promotions, 0u);
}

TEST(RuntimeWorkerStats, AggregatesEqualRowSumsAcrossWorkers) {
  Config c;
  c.num_threads = 4;
  Runtime rt(c);
  std::vector<long> sinks(64, 0);
  long chain = 0;
  for (int step = 0; step < 8; ++step) {
    rt.spawn([](long* p) { *p += 1; }, inout(&chain));
    for (auto& v : sinks) rt.spawn([](long* p) { *p += 1; }, inout(&v));
  }
  rt.barrier();
  auto s = rt.stats();
  ASSERT_EQ(s.workers.size(), 4u);
  WorkerStatsRow sum;
  for (const auto& w : s.workers) {
    sum.executed += w.executed;
    sum.steals += w.steals;
    sum.steal_attempts += w.steal_attempts;
    sum.acquired_high += w.acquired_high;
    sum.acquired_own += w.acquired_own;
    sum.acquired_main += w.acquired_main;
    sum.idle_sleeps += w.idle_sleeps;
    sum.idle_ns += w.idle_ns;
    sum.locality_hits += w.locality_hits;
    sum.locality_misses += w.locality_misses;
    sum.chained += w.chained;
  }
  EXPECT_EQ(s.tasks_executed, sum.executed);
  EXPECT_EQ(s.tasks_executed, 8u * 65u);
  EXPECT_EQ(s.steals, sum.steals);
  EXPECT_EQ(s.steal_attempts, sum.steal_attempts);
  EXPECT_EQ(s.acquired_high, sum.acquired_high);
  EXPECT_EQ(s.acquired_own, sum.acquired_own);
  EXPECT_EQ(s.acquired_main, sum.acquired_main);
  EXPECT_EQ(s.idle_sleeps, sum.idle_sleeps);
  EXPECT_EQ(s.idle_ns, sum.idle_ns);
  EXPECT_EQ(s.locality_hits, sum.locality_hits);
  EXPECT_EQ(s.locality_misses, sum.locality_misses);
  EXPECT_EQ(s.chained_executions, sum.chained);
}

TEST(RuntimeWorkerStats, AwarePolicyCountsPromotionsAndExportsJson) {
  Config c;
  c.num_threads = 1;
  c.chain_depth = 0;
  c.sched_policy = SchedPolicyKind::Aware;
  Runtime rt(c);
  // A long serial chain (growing critical-path priority) against a backdrop
  // of independent unit tasks (flat priority): the chain's enqueues must
  // cross the promotion threshold once the EWMA settles around the flat
  // tasks' priority.
  long chain = 0;
  std::vector<long> flat(16 * 8, 0);
  std::size_t k = 0;
  for (int step = 0; step < 16; ++step) {
    rt.spawn([](long* p) { *p += 1; }, inout(&chain));
    for (int j = 0; j < 8; ++j) rt.spawn([](long* p) { *p = 1; }, out(&flat[k++]));
  }
  rt.barrier();
  EXPECT_EQ(chain, 16);

  auto s = rt.stats();
  EXPECT_EQ(s.tasks_executed, 16u * 9u);
  EXPECT_GT(s.sched_promotions, 0u);
  EXPECT_EQ(s.acquired_high, s.sched_promotions);

  const std::string json = rt.stats_json();
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
  EXPECT_NE(json.find("\"locality_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"locality_misses\":"), std::string::npos);
  EXPECT_NE(json.find("\"idle_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"sched_promotions\":"), std::string::npos);
}

}  // namespace
}  // namespace smpss
