// List-scheduling simulator tests: known makespans on canonical graphs and
// consistency properties (monotone in P, bounded by critical path and
// work/P) on runtime-recorded graphs.
#include <gtest/gtest.h>

#include "apps/cholesky.hpp"
#include "graph/sched_sim.hpp"
#include "hyper/flat_matrix.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

GraphRecorder chain(int n) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= n; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  for (int i = 1; i < n; ++i)
    rec.record_edge(static_cast<std::uint64_t>(i),
                    static_cast<std::uint64_t>(i + 1), EdgeKind::True);
  return rec;
}

GraphRecorder independent(int n) {
  GraphRecorder rec;
  rec.set_enabled(true);
  for (int i = 1; i <= n; ++i) rec.record_node(static_cast<std::uint64_t>(i), 0);
  return rec;
}

TEST(SchedSim, ChainIsSerialAtAnyP) {
  auto rec = chain(10);
  for (unsigned p : {1u, 2u, 8u, 64u}) {
    auto r = simulate_schedule(rec, p);
    EXPECT_DOUBLE_EQ(r.makespan, 10.0) << "P=" << p;
    EXPECT_DOUBLE_EQ(r.critical_path, 10.0);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
  }
}

TEST(SchedSim, IndependentTasksDivideByP) {
  auto rec = independent(12);
  EXPECT_DOUBLE_EQ(simulate_schedule(rec, 1).makespan, 12.0);
  EXPECT_DOUBLE_EQ(simulate_schedule(rec, 3).makespan, 4.0);
  EXPECT_DOUBLE_EQ(simulate_schedule(rec, 12).makespan, 1.0);
  EXPECT_DOUBLE_EQ(simulate_schedule(rec, 100).makespan, 1.0);
}

TEST(SchedSim, UnevenDivision) {
  auto rec = independent(10);
  EXPECT_DOUBLE_EQ(simulate_schedule(rec, 4).makespan, 3.0);  // ceil(10/4)
}

TEST(SchedSim, DiamondWithCosts) {
  GraphRecorder rec;
  rec.set_enabled(true);
  rec.record_node(1, 0);
  rec.record_node(2, 1);
  rec.record_node(3, 1);
  rec.record_node(4, 0);
  rec.record_edge(1, 2, EdgeKind::True);
  rec.record_edge(1, 3, EdgeKind::True);
  rec.record_edge(2, 4, EdgeKind::True);
  rec.record_edge(3, 4, EdgeKind::True);
  // type 0 costs 1, type 1 costs 5.
  std::vector<double> costs = {1.0, 5.0};
  auto r2 = simulate_schedule(rec, 2, costs);
  EXPECT_DOUBLE_EQ(r2.makespan, 7.0);          // 1 + 5 (parallel) + 1
  EXPECT_DOUBLE_EQ(r2.critical_path, 7.0);
  auto r1 = simulate_schedule(rec, 1, costs);
  EXPECT_DOUBLE_EQ(r1.makespan, 12.0);         // all serial
}

TEST(SchedSim, EmptyGraph) {
  GraphRecorder rec;
  auto r = simulate_schedule(rec, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(SchedSimProperty, BoundsHoldOnCholeskyGraph) {
  Config cfg;
  cfg.num_threads = 1;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = apps::CholeskyTasks::register_in(rt);
  HyperMatrix h(8, 4, true);
  FlatMatrix a(32);
  fill_spd(a, 3);
  blocked_from_flat(h, a.data());
  ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);

  const auto& rec = rt.graph_recorder();
  double prev = 0.0;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 64u}) {
    auto r = simulate_schedule(rec, p);
    // Lower bounds: work/P and the critical path.
    EXPECT_GE(r.makespan + 1e-9, r.total_work / p);
    EXPECT_GE(r.makespan + 1e-9, r.critical_path);
    // Monotone: more processors never hurt a greedy scheduler on unit-ish
    // costs with a fixed priority order.
    if (prev > 0.0) EXPECT_LE(r.makespan, prev + 1e-9);
    prev = r.makespan;
  }
  // At P=1 makespan equals total work exactly.
  auto r1 = simulate_schedule(rec, 1);
  EXPECT_DOUBLE_EQ(r1.makespan, r1.total_work);
}

TEST(SchedSimPolicyReplay, MatchesRuntimeOrderSingleWorker) {
  // The replay regime where simulate_policy_order is exact: one worker and a
  // window larger than the graph, so every submission precedes every
  // execution. The program mixes lane chains (single-release chaining), a
  // shared reduction (multi-release batches), and high-priority injections
  // (preempt_chain coverage); the simulator, driving the real policy
  // implementation, must reproduce the runtime's execution order task for
  // task — under both policies and with chaining off and on.
  for (SchedPolicyKind kind :
       {SchedPolicyKind::Paper, SchedPolicyKind::Aware}) {
    for (unsigned depth : {0u, 16u}) {
      Config cfg;
      cfg.num_threads = 1;
      cfg.record_graph = true;
      cfg.tracing = true;
      cfg.chain_depth = depth;
      cfg.sched_policy = kind;
      Runtime rt(cfg);
      TaskType urgent = rt.register_task_type("urgent", true);

      constexpr int kLanes = 4;
      constexpr int kSteps = 12;
      std::vector<unsigned long> lanes(kLanes, 1);
      unsigned long total = 0;
      static int dummy = 0;
      for (int s = 0; s < kSteps; ++s) {
        for (int l = 0; l < kLanes; ++l)
          rt.spawn(
              [s](unsigned long* p) {
                *p = *p * 5 + static_cast<unsigned>(s);
              },
              inout(&lanes[static_cast<std::size_t>(l)]));
        for (int l = 0; l < kLanes; ++l)
          rt.spawn(
              [](const unsigned long* p, unsigned long* acc) {
                *acc += *p % 9;
              },
              in(&lanes[static_cast<std::size_t>(l)]), inout(&total));
        if (s % 3 == 0)
          rt.spawn(urgent, [](const int* d) { (void)d; }, opaque(&dummy));
      }
      rt.barrier();

      std::vector<std::uint64_t> real;
      for (const auto& e : rt.tracer().collect())  // sorted by start time
        real.push_back(e.seq);

      std::vector<std::uint8_t> high(urgent.id + 1, 0);
      high[urgent.id] = 1;
      const auto sim =
          simulate_policy_order(rt.graph_recorder(), cfg.policy_tuning(),
                                cfg.chain_depth, high);
      ASSERT_EQ(sim.size(), real.size())
          << "policy=" << to_string(kind) << " depth=" << depth;
      EXPECT_EQ(sim, real) << "simulated order diverged from the runtime "
                           << "(policy=" << to_string(kind)
                           << " depth=" << depth << ")";
    }
  }
}

TEST(SchedSimPolicy, AwareKeyKeepsMakespanBounds) {
  // The aware ordering changes which ready task starts first, never the
  // validity of the schedule: both lower bounds still hold, and on a plain
  // chain the two policies agree exactly.
  auto c = chain(10);
  for (unsigned p : {1u, 4u}) {
    auto r = simulate_schedule(c, p, {}, SchedPolicyKind::Aware);
    EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  }
  GraphRecorder rec;
  rec.set_enabled(true);
  // A wide fork with one long spine: critical-path ordering starts the
  // spine immediately, so the aware makespan can only match or beat paper.
  for (int i = 1; i <= 20; ++i)
    rec.record_node(static_cast<std::uint64_t>(i), 0);
  for (int i = 2; i <= 8; ++i)  // spine 1 -> 2 -> ... -> 8
    rec.record_edge(static_cast<std::uint64_t>(i - 1),
                    static_cast<std::uint64_t>(i), EdgeKind::True);
  for (unsigned p : {2u, 4u}) {
    auto aware = simulate_schedule(rec, p, {}, SchedPolicyKind::Aware);
    auto paper = simulate_schedule(rec, p, {}, SchedPolicyKind::Paper);
    EXPECT_GE(aware.makespan + 1e-9, aware.critical_path);
    EXPECT_GE(aware.makespan + 1e-9, aware.total_work / p);
    EXPECT_LE(aware.makespan, paper.makespan + 1e-9);
  }
}

TEST(SchedSimProperty, SixBySixCholeskyParallelismMatchesPaperNarrative) {
  Config cfg;
  cfg.num_threads = 1;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = apps::CholeskyTasks::register_in(rt);
  HyperMatrix h(6, 4, true);
  FlatMatrix a(24);
  fill_spd(a, 4);
  blocked_from_flat(h, a.data());
  ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);
  // 56 tasks, 16-deep critical path: speedup saturates around 3.5x no
  // matter how many cores — "the algorithm generates only 56 tasks".
  auto r = simulate_schedule(rt.graph_recorder(), 32);
  EXPECT_GT(r.speedup, 2.0);
  EXPECT_LT(r.speedup, 6.0);
  EXPECT_DOUBLE_EQ(r.makespan, r.critical_path);  // enough cores: CP-bound
}

}  // namespace
}  // namespace smpss
