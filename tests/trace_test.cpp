// Tracing-enabled runtime (paper Sec. VII.C): event recording, timeline CSV,
// Paraver export, utilization summaries, ASCII strip chart, and the graph
// recorder + DOT export of Fig. 5's machinery.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "graph/dot_export.hpp"
#include "graph/graph_stats.hpp"
#include "runtime/runtime.hpp"
#include "trace/paraver.hpp"
#include "trace/timeline.hpp"

namespace smpss {
namespace {

Config traced(unsigned n) {
  Config c;
  c.num_threads = n;
  c.tracing = true;
  c.record_graph = true;
  return c;
}

TEST(Tracer, OneEventPerTask) {
  Runtime rt(traced(4));
  std::vector<int> xs(50, 0);
  for (int i = 0; i < 50; ++i)
    rt.spawn([](int* p) { *p = 1; }, out(&xs[i]));
  rt.barrier();
  EXPECT_EQ(rt.tracer().event_count(), 50u);
  auto events = rt.tracer().collect();
  ASSERT_EQ(events.size(), 50u);
  for (const auto& e : events) {
    EXPECT_LE(e.start_ns, e.end_ns);
    EXPECT_LT(e.worker, 4u);
    EXPECT_GE(e.seq, 1u);
  }
  // collect() sorts by start time.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
}

TEST(Tracer, DisabledCostsNothing) {
  Config c;
  c.num_threads = 2;
  c.tracing = false;
  Runtime rt(c);
  int x = 0;
  rt.spawn([](int* p) { *p = 1; }, out(&x));
  rt.barrier();
  EXPECT_EQ(rt.tracer().event_count(), 0u);
}

TEST(Timeline, CsvHasHeaderAndRows) {
  Runtime rt(traced(2));
  int x = 0;
  TaskType tt = rt.register_task_type("mytask");
  rt.spawn(tt, [](int* p) { *p = 1; }, out(&x));
  rt.barrier();
  std::ostringstream os;
  export_timeline_csv(os, rt.tracer().collect(), rt.task_types(),
                      rt.tracer().origin_ns());
  std::string s = os.str();
  EXPECT_NE(s.find("worker,seq,type,start_us,end_us"), std::string::npos);
  EXPECT_NE(s.find("mytask"), std::string::npos);
}

TEST(Timeline, UtilizationSums) {
  Runtime rt(traced(4));
  long sink = 0;
  for (int i = 0; i < 64; ++i)
    rt.spawn(
        [](long* s) {
          long acc = 0;
          for (int k = 0; k < 100000; ++k) acc += k;
          *s = acc;
        },
        out(&sink));
  rt.barrier();
  auto u = summarize_utilization(rt.tracer().collect(), 4);
  EXPECT_GT(u.span_seconds, 0.0);
  EXPECT_GT(u.total_busy_seconds, 0.0);
  EXPECT_GT(u.avg_utilization, 0.0);
  EXPECT_LE(u.avg_utilization, 1.05);  // small clock slop allowed
  EXPECT_GT(u.avg_task_us, 0.0);
  double per_worker_total = 0;
  for (double w : u.per_worker_busy_seconds) per_worker_total += w;
  EXPECT_NEAR(per_worker_total, u.total_busy_seconds, 1e-9);
}

TEST(Timeline, AsciiStripChartDrawsBusyMarks) {
  Runtime rt(traced(2));
  long sink = 0;
  for (int i = 0; i < 16; ++i)
    rt.spawn(
        [](long* s) {
          for (int k = 0; k < 50000; ++k) *s += k;
        },
        inout(&sink));
  rt.barrier();
  std::string chart = ascii_timeline(rt.tracer().collect(), 2, 40);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find("T0"), std::string::npos);
  EXPECT_NE(chart.find("T1"), std::string::npos);
}

TEST(Paraver, PrvAndPcfWellFormed) {
  Runtime rt(traced(2));
  TaskType tt = rt.register_task_type("kernel_a");
  int x = 0;
  rt.spawn(tt, [](int* p) { *p = 1; }, out(&x));
  rt.barrier();
  std::ostringstream prv, pcf;
  export_paraver_prv(prv, rt.tracer().collect(), 2, rt.tracer().origin_ns());
  export_paraver_pcf(pcf, rt.task_types());
  EXPECT_EQ(prv.str().rfind("#Paraver", 0), 0u);  // header first
  EXPECT_NE(prv.str().find("\n1:"), std::string::npos);  // a state record
  EXPECT_NE(pcf.str().find("kernel_a"), std::string::npos);
  EXPECT_NE(pcf.str().find("0 Idle"), std::string::npos);
}

TEST(GraphRecorder, NodesAndEdgesRecorded) {
  Runtime rt(traced(1));
  int x = 0;
  rt.spawn([](int* p) { *p = 1; }, out(&x));
  rt.spawn([](int* p) { *p += 1; }, inout(&x));
  rt.spawn([](int* p) { *p += 1; }, inout(&x));
  rt.barrier();
  const auto& rec = rt.graph_recorder();
  EXPECT_EQ(rec.nodes().size(), 3u);
  EXPECT_EQ(rec.edges().size(), 2u);
  EXPECT_EQ(rec.edges()[0].from, 1u);
  EXPECT_EQ(rec.edges()[0].to, 2u);
}

TEST(DotExport, ContainsNodesEdgesAndColors) {
  Runtime rt(traced(1));
  TaskType tt = rt.register_task_type("colored");
  int x = 0;
  rt.spawn(tt, [](int* p) { *p = 1; }, out(&x));
  rt.spawn(tt, [](int* p) { *p += 1; }, inout(&x));
  rt.barrier();
  DotOptions opts;
  opts.show_type_names = true;
  std::string dot = to_dot(rt.graph_recorder(), rt.task_types(), opts);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t1"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("colored"), std::string::npos);
}

TEST(DotExport, AntiEdgesDashedInNoRenamingMode) {
  Config c;
  c.num_threads = 1;
  c.renaming = false;
  c.record_graph = true;
  Runtime rt(c);
  int x = 0, r = 0;
  rt.spawn([](const int* p, int* o) { *o = *p; }, in(&x), out(&r));
  rt.spawn([](int* p) { *p = 2; }, out(&x));  // WAR edge
  rt.barrier();
  std::string dot = to_dot(rt.graph_recorder(), rt.task_types());
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace smpss
