// Representant idiom tests (paper Sec. V.B): stable proxy addresses that
// re-introduce dependency information for opaque data, including the
// paper's exact pattern — one representant per non-overlapping region plus
// an opaque pointer to the array.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dep/representant.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

TEST(RepresentantPool, AddressesAreStableAndDistinct) {
  RepresentantPool pool;
  std::vector<char*> addrs;
  for (int i = 0; i < 1000; ++i) addrs.push_back(pool.fresh());
  // Distinct addresses...
  for (std::size_t i = 1; i < addrs.size(); ++i)
    EXPECT_NE(addrs[i], addrs[0]);
  // ...that remain valid after further growth (deque stability).
  char* first = addrs[0];
  for (int i = 0; i < 10000; ++i) pool.fresh();
  *first = 42;
  EXPECT_EQ(*addrs[0], 42);
  EXPECT_EQ(pool.size(), 11000u);
}

TEST(Representants, ProjectedDependenciesOrderOpaqueWork) {
  // The paper's pattern: the array is opaque; each quarter has a
  // representant; a writer inouts its quarter's representant, a checker
  // reads it. Dependencies flow only through the representants.
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  RepresentantPool pool;
  constexpr int kQuarters = 4, kLen = 1000;
  std::vector<int> array(kQuarters * kLen, 0);
  std::vector<char*> reps;
  for (int q = 0; q < kQuarters; ++q) reps.push_back(pool.fresh());

  std::vector<long> sums(kQuarters, -1);
  for (int round = 0; round < 3; ++round) {
    for (int q = 0; q < kQuarters; ++q) {
      rt.spawn(
          [q, round](int* data, char*) {
            for (int i = 0; i < kLen; ++i) data[q * kLen + i] += q + round;
          },
          opaque(array.data()), inout(reps[static_cast<std::size_t>(q)]));
    }
  }
  for (int q = 0; q < kQuarters; ++q) {
    rt.spawn(
        [q](const int* data, const char*, long* out_sum) {
          long s = 0;
          for (int i = 0; i < kLen; ++i) s += data[q * kLen + i];
          *out_sum = s;
        },
        opaque(static_cast<const int*>(array.data())),
        in(reps[static_cast<std::size_t>(q)]),
        out(&sums[static_cast<std::size_t>(q)]));
  }
  rt.barrier();
  for (int q = 0; q < kQuarters; ++q) {
    long expect = static_cast<long>(kLen) * (3 * q + 0 + 1 + 2);
    EXPECT_EQ(sums[static_cast<std::size_t>(q)], expect) << "quarter " << q;
  }
}

TEST(Representants, IndependentRepresentantsRunInParallel) {
  // Two representants: no cross-dependencies, both chains proceed; a shared
  // representant would order them. With one thread nothing executes until
  // the barrier, so the edge count is deterministic.
  Config cfg;
  cfg.num_threads = 1;
  Runtime rt(cfg);
  RepresentantPool pool;
  char* ra = pool.fresh();
  char* rb = pool.fresh();
  int a = 0, b = 0;
  for (int i = 0; i < 10; ++i) {
    rt.spawn([](int* x, char*) { *x += 1; }, opaque(&a), inout(ra));
    rt.spawn([](int* x, char*) { *x += 1; }, opaque(&b), inout(rb));
  }
  rt.barrier();
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
  // Two independent chains: 9 RAW edges each.
  EXPECT_EQ(rt.stats().raw_edges, 18u);
}

TEST(Representants, TreeStructuredJoin) {
  // Two child representants joined by a parent task (the multisort merge
  // shape of Fig. 7): the join must observe both children's effects.
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  RepresentantPool pool;
  char* left = pool.fresh();
  char* right = pool.fresh();
  char* parent = pool.fresh();
  std::vector<int> data(2, 0);
  rt.spawn([](int* d, char*) { d[0] = 21; }, opaque(data.data()), out(left));
  rt.spawn([](int* d, char*) { d[1] = 21; }, opaque(data.data()), out(right));
  int joined = 0;
  rt.spawn(
      [](const int* d, const char*, const char*, char*, int* out_v) {
        *out_v = d[0] + d[1];
      },
      opaque(static_cast<const int*>(data.data())), in(left), in(right),
      out(parent), out(&joined));
  rt.barrier();
  EXPECT_EQ(joined, 42);
}

}  // namespace
}  // namespace smpss
