// Cilk-like fork-join baseline: spawn/sync semantics, recursion, stealing,
// and correctness across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "baselines/forkjoin/forkjoin.hpp"

namespace smpss {
namespace {

long fib_fj(fj::Context& ctx, int n) {
  if (n < 2) return n;
  long a = 0, b = 0;
  ctx.spawn([n, &a](fj::Context& c) { a = fib_fj(c, n - 1); });
  b = fib_fj(ctx, n - 2);
  ctx.sync();
  return a + b;
}

class ForkJoin : public ::testing::TestWithParam<unsigned> {};

TEST_P(ForkJoin, FibCorrect) {
  fj::Scheduler s(GetParam());
  long result = 0;
  s.run_root([&](fj::Context& ctx) { result = fib_fj(ctx, 20); });
  EXPECT_EQ(result, 6765);
}

TEST_P(ForkJoin, ParallelSum) {
  fj::Scheduler s(GetParam());
  constexpr int kN = 1 << 16;
  std::vector<long> data(kN);
  std::iota(data.begin(), data.end(), 0L);
  std::atomic<long> total{0};
  s.run_root([&](fj::Context& ctx) {
    constexpr int kChunk = 1024;
    for (int lo = 0; lo < kN; lo += kChunk) {
      ctx.spawn([&, lo](fj::Context&) {
        long sum = 0;
        for (int i = lo; i < lo + kChunk; ++i) sum += data[i];
        total.fetch_add(sum, std::memory_order_relaxed);
      });
    }
    ctx.sync();
  });
  EXPECT_EQ(total.load(), static_cast<long>(kN) * (kN - 1) / 2);
}

TEST_P(ForkJoin, NestedSyncWaitsOnlyOwnChildren) {
  fj::Scheduler s(GetParam());
  std::atomic<int> order_ok{1};
  s.run_root([&](fj::Context& ctx) {
    std::atomic<bool> child_done{false};
    ctx.spawn([&](fj::Context& c2) {
      std::atomic<bool> grandchild_done{false};
      c2.spawn([&](fj::Context&) { grandchild_done.store(true); });
      c2.sync();
      if (!grandchild_done.load()) order_ok.store(0);
      child_done.store(true);
    });
    ctx.sync();
    if (!child_done.load()) order_ok.store(0);
  });
  EXPECT_EQ(order_ok.load(), 1);
}

TEST_P(ForkJoin, ManySmallTasks) {
  fj::Scheduler s(GetParam());
  std::atomic<long> count{0};
  s.run_root([&](fj::Context& ctx) {
    for (int i = 0; i < 20000; ++i)
      ctx.spawn([&](fj::Context&) { count.fetch_add(1, std::memory_order_relaxed); });
    ctx.sync();
  });
  EXPECT_EQ(count.load(), 20000);
}

TEST_P(ForkJoin, ReusableAcrossRoots) {
  fj::Scheduler s(GetParam());
  for (int round = 0; round < 10; ++round) {
    long result = 0;
    s.run_root([&](fj::Context& ctx) { result = fib_fj(ctx, 12); });
    EXPECT_EQ(result, 144);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ForkJoin, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ForkJoinStats, StealsHappenWithManyThreads) {
  if (std::thread::hardware_concurrency() < 2)
    GTEST_SKIP() << "stealing needs real hardware parallelism";
  fj::Scheduler s(8);
  std::atomic<long> sink{0};
  s.run_root([&](fj::Context& ctx) {
    for (int i = 0; i < 5000; ++i)
      ctx.spawn([&](fj::Context&) {
        long acc = 0;
        for (int k = 0; k < 2000; ++k) acc += k;
        sink.fetch_add(acc, std::memory_order_relaxed);
      });
    ctx.sync();
  });
  EXPECT_GT(s.steals(), 0u);
}

}  // namespace
}  // namespace smpss
