// Randomized dependency-oracle stress harness.
//
// Generates random task programs — trees of nodes, each owning a slot range
// of one shared memory image, with random leaf operations (random in/out/
// inout footprints) before and after its children — and runs every program
// four ways:
//
//   1. a sequential interpreter (the oracle),
//   2. flattened onto the main thread (the paper-faithful submission model:
//      every leaf op spawned from the main thread in program order),
//   3. as a nested task tree with Config::nested_tasks on (every node is a
//      task submitting its own leaves/children from whatever worker runs
//      it, joined by taskwait), and
//   4. the same nested tree program with nested_tasks off (the Sec. VII.D
//      inline demotion), which must degrade to sequential execution.
//
// The final memory image must be bit-identical to the oracle in all cases.
// Determinism under 3 relies on the same discipline the nested apps use:
// sibling subtrees own disjoint slot ranges (their interleaved submissions
// are independent), and a node only touches slots its children own before
// spawning them or after taskwait()ing them.
//
// Replay: set SMPSS_TEST_SEED=<n> to run exactly that seed through every
// program shape (instead of the full seed ranges); failures print the seed,
// the program shape, and a ready-to-paste replay command line.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"
#include "seed_util.hpp"

namespace smpss {
namespace {

using Cell = std::uint64_t;

struct Op {
  int ins[3];        // slot indices read (first `nins` valid)
  int nins;
  int out;           // slot index written
  bool is_inout;     // read-modify-write vs. pure overwrite
  std::uint64_t salt;
};

struct Node {
  int lo, hi;               // owned slot range [lo, hi)
  std::vector<Op> before;   // ops over [lo, hi) before the children
  std::vector<Node> children;  // disjoint subranges of [lo, hi)
  std::vector<Op> after;    // ops over [lo, hi) after taskwait
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  return h ^ (h >> 33);
}

/// The single arithmetic definition every execution mode shares.
Cell apply_op(const Op& op, Cell old_out, const Cell* in0, const Cell* in1,
              const Cell* in2) {
  std::uint64_t h = op.salt;
  if (op.is_inout) h = mix(h, old_out);
  if (op.nins > 0) h = mix(h, *in0);
  if (op.nins > 1) h = mix(h, *in1);
  if (op.nins > 2) h = mix(h, *in2);
  return h;
}

// --- random program generation ------------------------------------------------

Op random_op(Xoshiro256& rng, int lo, int hi) {
  Op op{};
  op.nins = static_cast<int>(rng.next_below(4));  // 0..3 reads
  for (int i = 0; i < op.nins; ++i)
    op.ins[i] = lo + static_cast<int>(rng.next_below(hi - lo));
  op.out = lo + static_cast<int>(rng.next_below(hi - lo));
  op.is_inout = rng.next_below(2) == 0;
  op.salt = rng.next();
  return op;
}

Node random_node(Xoshiro256& rng, int lo, int hi, int depth) {
  Node nd;
  nd.lo = lo;
  nd.hi = hi;
  const int nbefore = static_cast<int>(rng.next_below(4));
  for (int i = 0; i < nbefore; ++i) nd.before.push_back(random_op(rng, lo, hi));
  // Partition the whole range among 2..4 children when there is room and
  // depth left (the parent still touches any slot in before/after ops,
  // which bracket the children's lifetime).
  if (depth > 0 && hi - lo >= 8 && rng.next_below(4) != 0) {
    const int nchildren = 2 + static_cast<int>(rng.next_below(3));
    const int span = (hi - lo) / nchildren;
    for (int c = 0; c < nchildren; ++c) {
      int clo = lo + c * span;
      int chi = c + 1 == nchildren ? hi : clo + span;
      nd.children.push_back(random_node(rng, clo, chi, depth - 1));
    }
  }
  const int nafter = static_cast<int>(rng.next_below(4));
  for (int i = 0; i < nafter; ++i) nd.after.push_back(random_op(rng, lo, hi));
  return nd;
}

// --- execution modes ----------------------------------------------------------

void oracle_op(const Op& op, std::vector<Cell>& cells) {
  cells[op.out] = apply_op(op, cells[op.out], &cells[op.ins[0]],
                           &cells[op.ins[1]], &cells[op.ins[2]]);
}

void oracle_node(const Node& nd, std::vector<Cell>& cells) {
  for (const Op& op : nd.before) oracle_op(op, cells);
  for (const Node& c : nd.children) oracle_node(c, cells);
  for (const Op& op : nd.after) oracle_op(op, cells);
}

/// Spawn one leaf op as a real task with in/out/inout footprints. An op may
/// read the slot it writes or read one slot twice; the wrappers pass those
/// aliases through the analyzer like any repeated parameter.
void spawn_op(Runtime& rt, const Op& op, std::vector<Cell>& cells) {
  Cell* o = &cells[op.out];
  const Cell* a = &cells[op.ins[0]];
  const Cell* b = &cells[op.ins[1]];
  const Cell* c = &cells[op.ins[2]];
  const Op opv = op;  // by value into the closure
  if (op.is_inout) {
    switch (op.nins) {
      case 0:
        rt.spawn([opv](Cell* po) { *po = apply_op(opv, *po, po, po, po); },
                 inout(o));
        break;
      case 1:
        rt.spawn([opv](const Cell* pa, Cell* po) {
                   *po = apply_op(opv, *po, pa, pa, pa);
                 },
                 in(a), inout(o));
        break;
      case 2:
        rt.spawn([opv](const Cell* pa, const Cell* pb, Cell* po) {
                   *po = apply_op(opv, *po, pa, pb, pb);
                 },
                 in(a), in(b), inout(o));
        break;
      default:
        rt.spawn([opv](const Cell* pa, const Cell* pb, const Cell* pc,
                       Cell* po) { *po = apply_op(opv, *po, pa, pb, pc); },
                 in(a), in(b), in(c), inout(o));
        break;
    }
  } else {
    switch (op.nins) {
      case 0:
        rt.spawn([opv](Cell* po) { *po = apply_op(opv, 0, po, po, po); },
                 out(o));
        break;
      case 1:
        rt.spawn([opv](const Cell* pa, Cell* po) {
                   *po = apply_op(opv, 0, pa, pa, pa);
                 },
                 in(a), out(o));
        break;
      case 2:
        rt.spawn([opv](const Cell* pa, const Cell* pb, Cell* po) {
                   *po = apply_op(opv, 0, pa, pb, pb);
                 },
                 in(a), in(b), out(o));
        break;
      default:
        rt.spawn([opv](const Cell* pa, const Cell* pb, const Cell* pc,
                       Cell* po) { *po = apply_op(opv, 0, pa, pb, pc); },
                 in(a), in(b), in(c), out(o));
        break;
    }
  }
}

/// Paper-faithful mode: the whole tree flattened into main-thread spawns in
/// program order; the dependency analyzer alone must reconstruct the
/// ordering.
void flat_walk(Runtime& rt, const Node& nd, std::vector<Cell>& cells) {
  for (const Op& op : nd.before) spawn_op(rt, op, cells);
  for (const Node& c : nd.children) flat_walk(rt, c, cells);
  for (const Op& op : nd.after) spawn_op(rt, op, cells);
}

/// Nested mode: every node is a task that submits its own ops and child
/// node tasks from whatever thread executes it.
void spawn_node(Runtime& rt, const Node& nd, std::vector<Cell>& cells) {
  rt.spawn([&rt, &nd, &cells] {
    for (const Op& op : nd.before) spawn_op(rt, op, cells);
    for (const Node& c : nd.children) spawn_node(rt, c, cells);
    rt.taskwait();  // children own subranges of our range: join before after-ops
    for (const Op& op : nd.after) spawn_op(rt, op, cells);
  });
}

std::vector<Cell> initial_image(int nslots) {
  std::vector<Cell> cells(static_cast<std::size_t>(nslots));
  for (int i = 0; i < nslots; ++i)
    cells[static_cast<std::size_t>(i)] = mix(0xabcdef, static_cast<Cell>(i));
  return cells;
}

struct ProgramShape {
  int nslots;
  int depth;
  unsigned threads;
  bool renaming = true;  ///< false: WAR/WAW become graph edges (ablation)
};

/// Failure context: the failing seed, the full program shape, and a replay
/// command (SMPSS_TEST_SEED runs just this seed through every shape).
std::string failure_context(std::uint64_t seed, const ProgramShape& shape) {
  std::ostringstream os;
  os << "seed=" << seed << " nslots=" << shape.nslots
     << " depth=" << shape.depth << " threads=" << shape.threads
     << " renaming=" << shape.renaming << "\n  "
     << smpss::testing::replay_command("nested_oracle_test", "*", seed);
  return os.str();
}

void check_seed(std::uint64_t seed, const ProgramShape& shape) {
  Xoshiro256 rng(seed);
  Node root = random_node(rng, 0, shape.nslots, shape.depth);

  std::vector<Cell> expect = initial_image(shape.nslots);
  oracle_node(root, expect);

  {  // paper-faithful flat submission
    std::vector<Cell> cells = initial_image(shape.nslots);
    Config cfg;
    cfg.num_threads = shape.threads;
    cfg.renaming = shape.renaming;
    Runtime rt(cfg);
    flat_walk(rt, root, cells);
    rt.barrier();
    ASSERT_EQ(cells, expect) << "flat mode diverged, "
                             << failure_context(seed, shape);
  }
  {  // nested tree, nested mode on
    std::vector<Cell> cells = initial_image(shape.nslots);
    Config cfg;
    cfg.num_threads = shape.threads;
    cfg.renaming = shape.renaming;
    cfg.nested_tasks = true;
    Runtime rt(cfg);
    spawn_node(rt, root, cells);
    rt.barrier();
    ASSERT_EQ(cells, expect) << "nested mode diverged, "
                             << failure_context(seed, shape);
  }
  {  // nested tree program, inline demotion (Sec. VII.D)
    std::vector<Cell> cells = initial_image(shape.nslots);
    Config cfg;
    cfg.num_threads = shape.threads;
    cfg.renaming = shape.renaming;
    Runtime rt(cfg);
    spawn_node(rt, root, cells);
    rt.barrier();
    ASSERT_EQ(cells, expect) << "inline-demoted mode diverged, "
                             << failure_context(seed, shape);
  }
}

/// Seed loop honoring the SMPSS_TEST_SEED single-seed replay override.
template <typename Check>
void for_each_seed(std::uint64_t first, std::uint64_t last, Check check) {
  if (auto s = smpss::testing::seed_override()) {
    check(*s);
    return;
  }
  for (std::uint64_t seed = first; seed <= last; ++seed) check(seed);
}

// 200+ seeds across three program shapes (acceptance floor); each seed runs
// all four execution modes.

TEST(NestedOracle, SmallProgramsManySeeds) {
  for_each_seed(1, 120,
                [](std::uint64_t s) { check_seed(s, ProgramShape{16, 2, 4}); });
}

TEST(NestedOracle, MediumPrograms) {
  for_each_seed(1000, 1059,
                [](std::uint64_t s) { check_seed(s, ProgramShape{48, 3, 4}); });
}

TEST(NestedOracle, DeepNarrowPrograms) {
  for_each_seed(2000, 2039,
                [](std::uint64_t s) { check_seed(s, ProgramShape{64, 5, 8}); });
}

TEST(NestedOracle, SingleThreadStillCorrect) {
  for_each_seed(3000, 3009,
                [](std::uint64_t s) { check_seed(s, ProgramShape{24, 3, 1}); });
}

TEST(NestedOracle, RenamingDisabledStillCorrect) {
  // The no-renaming ablation turns every WAR/WAW into graph edges; with
  // nesting those flow through the ancestor-exemption paths of
  // process_write (no Output/Anti edges against a running ancestor).
  for_each_seed(4000, 4039, [](std::uint64_t s) {
    check_seed(s, ProgramShape{32, 3, 4, /*renaming=*/false});
  });
}

}  // namespace
}  // namespace smpss
