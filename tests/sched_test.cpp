// Scheduling-substrate tests: Chase-Lev deque (LIFO owner / FIFO thief
// discipline, growth, concurrent-steal exactness), the intrusive MPMC FIFO,
// the 3-tier ReadyLists policy of paper Sec. III, and the idle gate.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/idle_wait.hpp"
#include "sched/mpmc_queue.hpp"
#include "sched/ready_lists.hpp"

namespace smpss {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
  Item* queue_next = nullptr;
};

// --- ChaseLevDeque --------------------------------------------------------------

TEST(ChaseLevDeque, OwnerPopsLifo) {
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.pop_bottom()->value, 3);
  EXPECT_EQ(d.pop_bottom()->value, 2);
  EXPECT_EQ(d.pop_bottom()->value, 1);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, ThiefStealsFifo) {
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.steal_top()->value, 1);  // oldest first
  EXPECT_EQ(d.steal_top()->value, 2);
  EXPECT_EQ(d.pop_bottom()->value, 3);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<Item> d(16);
  std::vector<Item> items;
  items.reserve(1000);
  for (int i = 0; i < 1000; ++i) items.emplace_back(i);
  for (auto& it : items) d.push_bottom(&it);
  EXPECT_EQ(d.size_estimate(), 1000u);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop_bottom()->value, i);
}

TEST(ChaseLevDeque, ConcurrentStealsDeliverEachItemOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 6;
  ChaseLevDeque<Item> d;
  std::vector<Item> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.emplace_back(i);

  std::atomic<bool> go{false};
  std::atomic<int> taken{0};
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t)
    thieves.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      while (taken.load(std::memory_order_relaxed) < kItems) {
        if (Item* it = d.steal_top()) {
          seen[static_cast<std::size_t>(it->value)].fetch_add(1);
          taken.fetch_add(1);
        }
      }
    });

  go.store(true, std::memory_order_release);
  // Owner interleaves pushes and occasional pops.
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(&items[static_cast<std::size_t>(i)]);
    if (i % 7 == 0) {
      if (Item* it = d.pop_bottom()) {
        seen[static_cast<std::size_t>(it->value)].fetch_add(1);
        taken.fetch_add(1);
      }
    }
  }
  while (taken.load() < kItems) {
    if (Item* it = d.pop_bottom()) {
      seen[static_cast<std::size_t>(it->value)].fetch_add(1);
      taken.fetch_add(1);
    }
  }
  for (auto& t : thieves) t.join();
  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
}

// --- IntrusiveMpmcFifo -------------------------------------------------------------

TEST(MpmcFifo, FifoOrder) {
  IntrusiveMpmcFifo<Item> q;
  Item a(1), b(2), c(3);
  q.push_back(&a);
  q.push_back(&b);
  q.push_back(&c);
  EXPECT_EQ(q.pop_front()->value, 1);
  EXPECT_EQ(q.pop_front()->value, 2);
  EXPECT_EQ(q.pop_front()->value, 3);
  EXPECT_EQ(q.pop_front(), nullptr);
  EXPECT_TRUE(q.empty_estimate());
}

TEST(MpmcFifo, ConcurrentPushPopConservesItems) {
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 4, kConsumers = 4;
  IntrusiveMpmcFifo<Item> q;
  std::vector<std::vector<Item>> storage(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    storage[static_cast<std::size_t>(p)].reserve(kPerProducer);
    for (int i = 0; i < kPerProducer; ++i)
      storage[static_cast<std::size_t>(p)].emplace_back(p * kPerProducer + i);
  }
  std::atomic<int> consumed{0};
  std::atomic<long> sum{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p)
    ts.emplace_back([&, p] {
      for (auto& it : storage[static_cast<std::size_t>(p)]) q.push_back(&it);
    });
  for (int c = 0; c < kConsumers; ++c)
    ts.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (Item* it = q.pop_front()) {
          sum.fetch_add(it->value);
          consumed.fetch_add(1);
        }
      }
    });
  for (auto& t : ts) t.join();
  long expect = 0;
  for (int v = 0; v < kProducers * kPerProducer; ++v) expect += v;
  EXPECT_EQ(sum.load(), expect);
}

// --- ReadyLists (the Sec. III policy) ---------------------------------------------

class ReadyListsPolicy : public ::testing::Test {
 protected:
  Xoshiro256 rng{123};
  AcquireSource src = AcquireSource::None;
  unsigned attempts = 0;
};

TEST_F(ReadyListsPolicy, HighPriorityBeatsEverything) {
  ReadyLists<Item> rl(2, SchedulerMode::Distributed, StealOrder::CreationOrder);
  Item own(1), mainq(2), high(3);
  rl.push_local(0, &own);
  rl.push_main(&mainq);
  rl.push_high(&high);
  EXPECT_EQ(rl.acquire(0, rng, src, attempts)->value, 3);
  EXPECT_EQ(src, AcquireSource::HighPriority);
}

TEST_F(ReadyListsPolicy, OwnListBeatsMainList) {
  ReadyLists<Item> rl(2, SchedulerMode::Distributed, StealOrder::CreationOrder);
  Item own(1), mainq(2);
  rl.push_local(0, &own);
  rl.push_main(&mainq);
  EXPECT_EQ(rl.acquire(0, rng, src, attempts)->value, 1);
  EXPECT_EQ(src, AcquireSource::OwnList);
}

TEST_F(ReadyListsPolicy, MainListBeatsStealing) {
  ReadyLists<Item> rl(2, SchedulerMode::Distributed, StealOrder::CreationOrder);
  Item other(1), mainq(2);
  rl.push_local(1, &other);
  rl.push_main(&mainq);
  EXPECT_EQ(rl.acquire(0, rng, src, attempts)->value, 2);
  EXPECT_EQ(src, AcquireSource::MainList);
}

TEST_F(ReadyListsPolicy, StealsFromNextThreadInCreationOrder) {
  ReadyLists<Item> rl(4, SchedulerMode::Distributed, StealOrder::CreationOrder);
  Item v2(2), v3(3);
  rl.push_local(2, &v2);
  rl.push_local(3, &v3);
  // Worker 1 must visit 2 before 3 ("in creation order starting from the
  // next one").
  EXPECT_EQ(rl.acquire(1, rng, src, attempts)->value, 2);
  EXPECT_EQ(src, AcquireSource::Steal);
  EXPECT_EQ(rl.acquire(1, rng, src, attempts)->value, 3);
}

TEST_F(ReadyListsPolicy, OwnListIsLifoStealIsFifo) {
  ReadyLists<Item> rl(2, SchedulerMode::Distributed, StealOrder::CreationOrder);
  Item a(1), b(2), c(3);
  rl.push_local(0, &a);
  rl.push_local(0, &b);
  rl.push_local(0, &c);
  EXPECT_EQ(rl.acquire(0, rng, src, attempts)->value, 3);  // LIFO own
  EXPECT_EQ(rl.acquire(1, rng, src, attempts)->value, 1);  // FIFO steal
}

TEST_F(ReadyListsPolicy, CentralizedModeUsesOneQueue) {
  ReadyLists<Item> rl(4, SchedulerMode::Centralized, StealOrder::CreationOrder);
  Item a(1), b(2);
  rl.push_local(2, &a);  // redirected to the main list
  rl.push_main(&b);
  EXPECT_EQ(rl.acquire(0, rng, src, attempts)->value, 1);  // FIFO order
  EXPECT_EQ(src, AcquireSource::MainList);
  EXPECT_EQ(rl.acquire(3, rng, src, attempts)->value, 2);
}

TEST_F(ReadyListsPolicy, EmptyReturnsNullWithAttemptCount) {
  ReadyLists<Item> rl(4, SchedulerMode::Distributed, StealOrder::CreationOrder);
  EXPECT_EQ(rl.acquire(0, rng, src, attempts), nullptr);
  EXPECT_EQ(src, AcquireSource::None);
  EXPECT_EQ(attempts, 3u);  // probed the other three workers
}

TEST_F(ReadyListsPolicy, RandomStealStillFindsWork) {
  ReadyLists<Item> rl(4, SchedulerMode::Distributed, StealOrder::Random);
  Item a(7);
  rl.push_local(3, &a);
  Item* got = nullptr;
  for (int tries = 0; tries < 64 && !got; ++tries)
    got = rl.acquire(0, rng, src, attempts);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->value, 7);
}

TEST_F(ReadyListsPolicy, MaybeHasWorkEstimates) {
  ReadyLists<Item> rl(2, SchedulerMode::Distributed, StealOrder::CreationOrder);
  EXPECT_FALSE(rl.maybe_has_work());
  Item a(1);
  rl.push_local(1, &a);
  EXPECT_TRUE(rl.maybe_has_work());
}

// --- IdleGate -----------------------------------------------------------------------

TEST(IdleGate, NotifyWakesSleeper) {
  IdleGate gate;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    std::uint64_t seen = gate.prepare_wait();
    gate.wait(seen, std::chrono::milliseconds(500));
    woke.store(true);
  });
  // Give the sleeper a moment to block, then notify.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.notify_all();
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(IdleGate, StaleEpochReturnsImmediately) {
  IdleGate gate;
  std::uint64_t seen = gate.prepare_wait();
  gate.notify_all();  // epoch moves past `seen`
  auto t0 = std::chrono::steady_clock::now();
  gate.wait(seen, std::chrono::milliseconds(500));
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

}  // namespace
}  // namespace smpss
