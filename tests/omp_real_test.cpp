// Real-OpenMP baseline tests (skipped gracefully when the build lacks
// OpenMP): multisort sortedness and N-Queens counts vs. the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/nqueens.hpp"
#include "baselines/omp_real/omp_tasks.hpp"
#include "common/rng.hpp"

namespace smpss {
namespace {

TEST(OmpReal, AvailabilityIsConsistent) {
  if (ompreal::available()) {
    EXPECT_GE(ompreal::max_threads(), 1u);
  } else {
    EXPECT_EQ(ompreal::max_threads(), 0u);
    EXPECT_EQ(ompreal::nqueens(6, 3, 2), -1);
  }
}

TEST(OmpReal, MultisortSorts) {
  if (!ompreal::available()) GTEST_SKIP() << "no OpenMP in this build";
  Xoshiro256 rng(12);
  std::vector<long> data(50000);
  for (auto& x : data) x = static_cast<long>(rng.next() % 1000000);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  std::vector<long> tmp(data.size());
  ASSERT_TRUE(ompreal::multisort(data.data(), tmp.data(),
                                 static_cast<long>(data.size()), 1024, 512,
                                 4));
  EXPECT_EQ(data, expect);
}

TEST(OmpReal, MultisortAcrossThreadCounts) {
  if (!ompreal::available()) GTEST_SKIP() << "no OpenMP in this build";
  for (unsigned t : {1u, 2u, 8u}) {
    Xoshiro256 rng(100 + t);
    std::vector<long> data(20000);
    for (auto& x : data) x = static_cast<long>(rng.next() % 999);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    std::vector<long> tmp(data.size());
    ASSERT_TRUE(ompreal::multisort(data.data(), tmp.data(),
                                   static_cast<long>(data.size()), 512, 256,
                                   t));
    EXPECT_EQ(data, expect) << "threads=" << t;
  }
}

TEST(OmpReal, NQueensMatchesSequential) {
  if (!ompreal::available()) GTEST_SKIP() << "no OpenMP in this build";
  for (int n : {6, 8, 9}) {
    EXPECT_EQ(ompreal::nqueens(n, 4, 4), apps::nqueens_seq(n)) << "n=" << n;
  }
}

}  // namespace
}  // namespace smpss
