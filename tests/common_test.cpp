// Unit tests for the common substrate: small_vector, aligned allocation,
// memory accounting, RNG determinism, env parsing, spin primitives, and the
// fork-join thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned_alloc.hpp"
#include "common/affinity.hpp"
#include "common/cache.hpp"
#include "common/env.hpp"
#include "common/memcopy.hpp"
#include "common/rng.hpp"
#include "common/small_vector.hpp"
#include "common/spin.hpp"
#include "common/thread_pool.hpp"
#include "common/timing.hpp"

namespace smpss {
namespace {

// --- cache/alignment helpers ---------------------------------------------------

TEST(Cache, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(127, 8), 128u);
}

TEST(Cache, IsAligned) {
  alignas(64) char buf[128];
  EXPECT_TRUE(is_aligned(buf, 64));
  EXPECT_FALSE(is_aligned(buf + 1, 2));
  EXPECT_TRUE(is_aligned(buf + 8, 8));
}

// --- aligned allocation -------------------------------------------------------

TEST(AlignedAlloc, ReturnsAlignedPointers) {
  for (std::size_t align : {8u, 16u, 64u, 128u, 4096u}) {
    void* p = aligned_alloc_bytes(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(is_aligned(p, align));
    aligned_free_bytes(p);
  }
}

TEST(AlignedAlloc, ZeroSizeGivesUsablePointer) {
  void* p = aligned_alloc_bytes(0, 64);
  ASSERT_NE(p, nullptr);
  aligned_free_bytes(p);
}

TEST(MemoryAccountant, TracksCurrentPeakTotal) {
  MemoryAccountant acc;
  acc.add(100);
  acc.add(50);
  EXPECT_EQ(acc.current(), 150u);
  EXPECT_EQ(acc.peak(), 150u);
  acc.sub(120);
  EXPECT_EQ(acc.current(), 30u);
  EXPECT_EQ(acc.peak(), 150u);
  acc.add(10);
  EXPECT_EQ(acc.total(), 160u);
  EXPECT_EQ(acc.peak(), 150u);
}

TEST(MemoryAccountant, ConcurrentAddsBalance) {
  MemoryAccountant acc;
  constexpr int kThreads = 8, kOps = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&acc] {
      for (int i = 0; i < kOps; ++i) {
        acc.add(16);
        acc.sub(16);
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(acc.current(), 0u);
  EXPECT_EQ(acc.total(), static_cast<std::size_t>(kThreads) * kOps * 16);
}

// --- small_vector ---------------------------------------------------------------

TEST(SmallVector, StaysInlineWithinCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i * 3);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 3);
}

TEST(SmallVector, PopBackAndClear) {
  SmallVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, MoveFromInline) {
  SmallVector<std::string, 4> a;
  a.push_back("hello");
  a.push_back("world");
  SmallVector<std::string, 4> b(std::move(a));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "hello");
  EXPECT_EQ(b[1], "world");
  EXPECT_TRUE(a.empty());
}

TEST(SmallVector, MoveFromHeapStealsBuffer) {
  SmallVector<std::string, 2> a;
  for (int i = 0; i < 20; ++i) a.push_back("s" + std::to_string(i));
  SmallVector<std::string, 2> b(std::move(a));
  ASSERT_EQ(b.size(), 20u);
  EXPECT_EQ(b[19], "s19");
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.is_inline());  // donor reset to inline state
}

TEST(SmallVector, MoveAssignReplacesContents) {
  SmallVector<int, 2> a, b;
  a.push_back(1);
  for (int i = 0; i < 10; ++i) b.push_back(i);
  a = std::move(b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a[9], 9);
}

TEST(SmallVector, DestroysElements) {
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    Probe(Probe&&) noexcept { ++live; }
    ~Probe() { --live; }
  };
  {
    SmallVector<Probe, 2> v;
    for (int i = 0; i < 10; ++i) v.emplace_back();
    EXPECT_EQ(live, 10);
  }
  EXPECT_EQ(live, 0);
}

TEST(SmallVector, IterationMatchesIndexing) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 45);
}

// --- RNG --------------------------------------------------------------------------

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Xoshiro, FloatInUnitInterval) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    float f = r.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Xoshiro, NextBelowInRange) {
  Xoshiro256 r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

// --- env --------------------------------------------------------------------------

TEST(Env, ParsesIntsAndBools) {
  ::setenv("SMPSS_TEST_INT", "42", 1);
  ::setenv("SMPSS_TEST_BOOL1", "true", 1);
  ::setenv("SMPSS_TEST_BOOL0", "off", 1);
  ::setenv("SMPSS_TEST_JUNK", "zzz", 1);
  EXPECT_EQ(env_int("SMPSS_TEST_INT").value(), 42);
  EXPECT_TRUE(env_bool("SMPSS_TEST_BOOL1").value());
  EXPECT_FALSE(env_bool("SMPSS_TEST_BOOL0").value());
  EXPECT_FALSE(env_bool("SMPSS_TEST_JUNK").has_value());
  EXPECT_FALSE(env_int("SMPSS_TEST_MISSING_XYZ").has_value());
  ::unsetenv("SMPSS_TEST_INT");
  ::unsetenv("SMPSS_TEST_BOOL1");
  ::unsetenv("SMPSS_TEST_BOOL0");
  ::unsetenv("SMPSS_TEST_JUNK");
}

// --- spin primitives -----------------------------------------------------------------

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 8, kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// --- timing ----------------------------------------------------------------------------

TEST(Timing, Monotonic) {
  auto a = now_ns();
  auto b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Timing, ScopedTimerAccumulates) {
  double sink = 0.0;
  { ScopedTimer t(sink); }
  EXPECT_GE(sink, 0.0);
}

// --- affinity ---------------------------------------------------------------------------

TEST(Affinity, HardwareConcurrencyPositive) {
  EXPECT_GE(hardware_concurrency(), 1u);
}

// --- thread pool -------------------------------------------------------------------------

TEST(ThreadPool, RunsOnAllThreads) {
  ThreadPool pool(4);
  std::vector<int> hits(4, 0);
  pool.run([&](unsigned tid) { hits[tid] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run([&](unsigned) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.run([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50 * 8);
}

// --- overlap-safe copy (the data-movement primitive) ---------------------------

TEST(MemCopy, RangesOverlapTruthTable) {
  char buf[64];
  EXPECT_TRUE(ranges_overlap(buf, 16, buf, 16));        // identical
  EXPECT_TRUE(ranges_overlap(buf, 16, buf + 8, 16));    // partial, forward
  EXPECT_TRUE(ranges_overlap(buf + 8, 16, buf, 16));    // partial, backward
  EXPECT_TRUE(ranges_overlap(buf, 32, buf + 8, 8));     // containment
  EXPECT_FALSE(ranges_overlap(buf, 16, buf + 16, 16));  // adjacent
  EXPECT_FALSE(ranges_overlap(buf, 8, buf + 32, 8));    // disjoint
  EXPECT_FALSE(ranges_overlap(buf, 0, buf, 16));        // empty range
}

TEST(MemCopy, SafeCopyHandlesOverlapBothDirections) {
  // Regression for the close-node inherit copies (runtime.cpp) and the
  // shared-segment publish/fetch path: a memcpy here corrupted data when a
  // transfer's src and dst ranges aliased. safe_copy must behave like the
  // sequential byte-at-a-time oracle in both shift directions.
  std::vector<unsigned char> init(64);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<unsigned char>(i);

  // Forward shift: dst overlaps the tail of src.
  std::vector<unsigned char> fwd = init;
  safe_copy(fwd.data() + 8, fwd.data(), 32);
  for (std::size_t i = 0; i < 32; ++i)
    ASSERT_EQ(fwd[8 + i], init[i]) << "forward-shift byte " << i;

  // Backward shift: dst overlaps the head of src.
  std::vector<unsigned char> bwd = init;
  safe_copy(bwd.data(), bwd.data() + 8, 32);
  for (std::size_t i = 0; i < 32; ++i)
    ASSERT_EQ(bwd[i], init[8 + i]) << "backward-shift byte " << i;

  // Fully disjoint stays a plain copy.
  std::vector<unsigned char> dis = init;
  safe_copy(dis.data() + 32, dis.data(), 16);
  for (std::size_t i = 0; i < 16; ++i) ASSERT_EQ(dis[32 + i], init[i]);
}

TEST(ThreadPool, ParallelSumCorrect) {
  ThreadPool pool(6);
  std::vector<long> partial(6, 0);
  constexpr long kN = 600000;
  pool.run([&](unsigned tid) {
    long s = 0;
    for (long i = static_cast<long>(tid); i < kN; i += 6) s += i;
    partial[tid] = s;
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L),
            kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace smpss
