// N-Queens tests: known solution counts, agreement of all parallel builds
// with the sequential oracle, and the renaming behavior the paper highlights
// (SMPSs duplicates the partial-solution array automatically; Cilk/OMP3
// builds do it by hand).
#include <gtest/gtest.h>

#include <tuple>

#include "apps/nqueens.hpp"

namespace smpss {
namespace {

// OEIS A000170.
long known_count(int n) {
  static const long counts[] = {1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724};
  return counts[n];
}

TEST(NQueensSeq, KnownCounts) {
  for (int n = 1; n <= 10; ++n)
    EXPECT_EQ(apps::nqueens_seq(n), known_count(n)) << "n=" << n;
}

using Param = std::tuple<unsigned, int, int>;  // threads, n, task_depth

class NQueensSuite : public ::testing::TestWithParam<Param> {};

TEST_P(NQueensSuite, SmpssMatchesSeq) {
  auto [threads, n, depth] = GetParam();
  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = apps::NQueensTasks::register_in(rt);
  EXPECT_EQ(apps::nqueens_smpss(rt, tt, n, depth), apps::nqueens_seq(n));
}

TEST_P(NQueensSuite, SmpssNestedMatchesSeq) {
  // Fully recursive build: every prefix node is a task spawned from
  // whatever worker expands it, nesting as deep as the cutoff.
  auto [threads, n, depth] = GetParam();
  Config cfg;
  cfg.num_threads = threads;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  auto tt = apps::NQueensTasks::register_in(rt);
  EXPECT_EQ(apps::nqueens_smpss(rt, tt, n, depth), apps::nqueens_seq(n));
  if (n - depth > 0) EXPECT_GT(rt.stats().tasks_nested, 0u);
}

TEST_P(NQueensSuite, ForkJoinMatchesSeq) {
  auto [threads, n, depth] = GetParam();
  fj::Scheduler s(threads);
  EXPECT_EQ(apps::nqueens_fj(s, n, depth), apps::nqueens_seq(n));
}

TEST_P(NQueensSuite, TaskPoolMatchesSeq) {
  auto [threads, n, depth] = GetParam();
  omp3::TaskPool p(threads);
  EXPECT_EQ(apps::nqueens_omp3(p, n, depth), apps::nqueens_seq(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NQueensSuite,
                         ::testing::Values(Param{1, 8, 4}, Param{4, 8, 4},
                                           Param{8, 9, 4}, Param{8, 9, 5},
                                           Param{4, 10, 4}, Param{2, 6, 3},
                                           Param{4, 7, 7},   // all-task depth
                                           Param{4, 5, 0})); // no tasks at all

TEST(NQueensRenaming, SmpssRenamesBoardAutomatically) {
  Config cfg;
  // One thread: tasks only run at the barrier, so every branch's set task
  // observes pending solver readers and the rename count is deterministic.
  cfg.num_threads = 1;
  Runtime rt(cfg);
  auto tt = apps::NQueensTasks::register_in(rt);
  long count = apps::nqueens_smpss(rt, tt, 9, 4);
  EXPECT_EQ(count, known_count(9));
  auto s = rt.stats();
  // Every set task racing with pending solver readers forces a renamed
  // board version — "the runtime takes care of it by renaming the array".
  EXPECT_GT(s.renames, 0u);
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);
}

TEST(NQueensRenaming, RenamingOffStillCorrectViaWarEdges) {
  Config cfg;
  cfg.num_threads = 1;  // deterministic hazard-edge counts (see above)
  cfg.renaming = false;
  Runtime rt(cfg);
  auto tt = apps::NQueensTasks::register_in(rt);
  EXPECT_EQ(apps::nqueens_smpss(rt, tt, 8, 4), known_count(8));
  EXPECT_GT(rt.stats().war_edges, 0u);  // dependency-unaware serialization
}

}  // namespace
}  // namespace smpss
