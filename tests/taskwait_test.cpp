// Runtime::taskwait() — the complete-my-children primitive that makes
// barrier semantics compose with nested task parallelism: direct children
// finish before the parent resumes, the waiting thread executes other ready
// tasks meanwhile (so one thread or a recursion deeper than the pool cannot
// deadlock), barrier-from-inside-a-task is diagnosed, and the inline
// (paper-faithful) mode degrades it to a no-op.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config nested_cfg(unsigned threads) {
  Config c;
  c.num_threads = threads;
  c.nested_tasks = true;
  return c;
}

TEST(Taskwait, ChildrenCompleteBeforeParentResumes) {
  Runtime rt(nested_cfg(4));
  constexpr int kChildren = 16;
  std::atomic<int> done{0};
  std::atomic<bool> all_done_at_resume{false};
  rt.spawn([&rt, &done, &all_done_at_resume] {
    for (int i = 0; i < kChildren; ++i)
      rt.spawn([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    rt.taskwait();
    all_done_at_resume.store(done.load(std::memory_order_relaxed) == kChildren,
                             std::memory_order_relaxed);
  });
  rt.barrier();
  EXPECT_TRUE(all_done_at_resume.load());
  EXPECT_EQ(done.load(), kChildren);
  EXPECT_EQ(rt.stats().tasks_nested, static_cast<std::uint64_t>(kChildren));
  EXPECT_GE(rt.stats().taskwaits, 1u);
}

TEST(Taskwait, WaiterExecutesReadyTasksSingleThread) {
  // One thread total: the main thread executes the parent at the barrier,
  // the parent taskwaits, and the only way its children can run is the
  // waiter executing them itself. Completing at all proves the
  // run-ready-tasks-while-waiting path.
  Runtime rt(nested_cfg(1));
  std::atomic<int> ran{0};
  bool resumed_after_children = false;
  rt.spawn([&rt, &ran, &resumed_after_children] {
    for (int i = 0; i < 8; ++i)
      rt.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    rt.taskwait();
    resumed_after_children = ran.load(std::memory_order_relaxed) == 8;
  });
  rt.barrier();
  EXPECT_TRUE(resumed_after_children);
  EXPECT_EQ(ran.load(), 8);
}

TEST(Taskwait, WaiterExecutesUnrelatedReadyTasks) {
  // Two threads; the worker parks itself in a taskwait that can only finish
  // once its child ran — and the child sits behind a pile of unrelated
  // ready tasks. The waiting worker must chew through ready work instead of
  // sleeping.
  Runtime rt(nested_cfg(2));
  std::atomic<int> unrelated{0};
  std::atomic<bool> parent_resumed{false};
  rt.spawn([&rt, &unrelated, &parent_resumed] {
    for (int i = 0; i < 64; ++i)
      rt.spawn([&unrelated] {
        unrelated.fetch_add(1, std::memory_order_relaxed);
      });
    rt.taskwait();
    parent_resumed.store(true, std::memory_order_relaxed);
  });
  rt.barrier();
  EXPECT_TRUE(parent_resumed.load());
  EXPECT_EQ(unrelated.load(), 64);
}

TEST(Taskwait, DeepRecursionBeyondWorkerCount) {
  // A chain of nested parents each waiting on its single child: depth 64
  // with 2 threads. Every level's taskwait must execute its own child on
  // its own stack; blocking the thread instead would deadlock at depth 2.
  Runtime rt(nested_cfg(2));
  constexpr int kDepth = 64;
  std::atomic<int> leaf_depth{0};
  std::function<void(int)> spawn_level = [&](int d) {
    if (d == kDepth) {
      leaf_depth.store(d, std::memory_order_relaxed);
      return;
    }
    rt.spawn([&spawn_level, d] { spawn_level(d + 1); });
    rt.taskwait();
  };
  rt.spawn([&spawn_level] { spawn_level(1); });
  rt.barrier();
  EXPECT_EQ(leaf_depth.load(), kDepth);
  EXPECT_EQ(rt.stats().tasks_nested, static_cast<std::uint64_t>(kDepth - 1));
}

TEST(Taskwait, WaitsDirectChildrenNotGrandchildren) {
  // OpenMP semantics: taskwait joins direct children only. The grandchild
  // deliberately outlives its parent (no taskwait in the child); the
  // barrier still collects it.
  Runtime rt(nested_cfg(4));
  std::atomic<bool> grandchild_ran{false};
  rt.spawn([&] {
    rt.spawn([&] {  // child: spawns and returns without waiting
      rt.spawn([&grandchild_ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        grandchild_ran.store(true, std::memory_order_relaxed);
      });
    });
    rt.taskwait();  // joins the child; the grandchild may still be running
  });
  rt.barrier();
  EXPECT_TRUE(grandchild_ran.load());
}

TEST(Taskwait, FromMainOutsideTasksDrainsAllWork) {
  Runtime rt(nested_cfg(4));
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i)
    rt.spawn([&rt, &ran] {
      rt.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  rt.taskwait();  // not a barrier: no realignment, but everything ran
  EXPECT_EQ(ran.load(), 64);
  rt.barrier();
}

TEST(Taskwait, NoOpInInlineModeInsideTask) {
  // Paper-faithful mode: the child already ran inline by the time taskwait
  // is reached, so taskwait returns immediately instead of deadlocking.
  Config c;
  c.num_threads = 2;  // nested_tasks defaults to false
  Runtime rt(c);
  int order = 0;
  int child_at = 0, after_wait_at = 0;
  rt.spawn([&] {
    rt.spawn([&] { child_at = ++order; });
    rt.taskwait();
    after_wait_at = ++order;
  });
  rt.barrier();
  EXPECT_EQ(child_at, 1);
  EXPECT_EQ(after_wait_at, 2);
  EXPECT_EQ(rt.stats().tasks_inlined, 1u);
}

TEST(Taskwait, NestedChildrenSeeRealDependencies) {
  // A worker-submitted chain: the parent task spawns children with an inout
  // chain on one datum; after taskwait the parent observes the final value,
  // proving both the concurrent dependency analysis and the completion
  // ordering.
  Runtime rt(nested_cfg(4));
  long x = 0;
  long seen = -1;
  rt.spawn(
      [&rt, &seen](long* p) {
        for (int i = 0; i < 100; ++i)
          rt.spawn([](long* q) { *q += 1; }, inout(p));
        rt.taskwait();
        seen = *p;
      },
      inout(&x));
  rt.barrier();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(x, 100);
}

TEST(TaskwaitDeath, BarrierInsideTaskBodyIsDiagnosed) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Runtime rt(nested_cfg(2));
        rt.spawn([&rt] { rt.barrier(); });
        rt.barrier();
      },
      "barrier is main-thread-only");
}

TEST(TaskwaitDeath, WaitOnInsideTaskBodyIsDiagnosed) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Runtime rt(nested_cfg(2));
        int x = 0;
        rt.spawn([&rt, &x](int* p) { *p = 1; rt.wait_on(&x); }, out(&x));
        rt.barrier();
      },
      "wait_on is main-thread-only");
}

}  // namespace
}  // namespace smpss
