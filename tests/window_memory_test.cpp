// The Sec. III blocking conditions: the task-window (graph size limit) and
// the renamed-memory limit both make the main thread execute tasks, without
// changing program results.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

TEST(TaskWindow, MainThreadExecutesWhenWindowFull) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.task_window = 8;
  cfg.task_window_low = 4;
  Runtime rt(cfg);
  constexpr int kN = 500;
  std::vector<int> xs(kN, 0);
  for (int i = 0; i < kN; ++i)
    rt.spawn([](int* p) { *p = 1; }, out(&xs[i]));
  rt.barrier();
  for (int v : xs) EXPECT_EQ(v, 1);
  auto s = rt.stats();
  EXPECT_GE(s.main_blocked_on_window, 1u);
  // Main (worker 0) must have executed some of the work itself.
  EXPECT_GT(s.acquired_main + s.acquired_own + s.acquired_high, 0u);
}

TEST(TaskWindow, NestedSubmittersThrottleBestEffort) {
  // In nested mode the window also throttles in-task generators: a parent
  // fanning out far past the window must trigger the drain-ready throttle
  // (never a sleep — see Runtime::submit) and everything still completes.
  Config cfg;
  cfg.num_threads = 4;
  cfg.task_window = 16;
  cfg.task_window_low = 8;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  constexpr int kN = 2000;
  std::vector<int> xs(kN, 0);
  int* data = xs.data();
  rt.spawn([&rt, data] {
    for (int i = 0; i < kN; ++i)
      rt.spawn([](int* p) { *p = 1; }, out(data + i));
    rt.taskwait();
  });
  rt.barrier();
  for (int v : xs) EXPECT_EQ(v, 1);
  EXPECT_GE(rt.stats().nested_throttled, 1u);
}

TEST(TaskWindow, NestedDeepChainsUnderTinyWindowNoDeadlock) {
  // Chains submitted from inside tasks with a window far smaller than the
  // live set: the best-effort throttle must not deadlock even when the
  // only ready sources are the throttled bodies themselves.
  Config cfg;
  cfg.num_threads = 2;
  cfg.task_window = 2;
  cfg.task_window_low = 1;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  long chains[4] = {0, 0, 0, 0};
  for (long* c : {&chains[0], &chains[1], &chains[2], &chains[3]}) {
    rt.spawn(
        [&rt](long* p) {
          for (int i = 0; i < 100; ++i)
            rt.spawn([](long* q) { *q += 1; }, inout(p));
          rt.taskwait();
        },
        inout(c));
  }
  rt.barrier();
  for (long v : chains) EXPECT_EQ(v, 100);
}

TEST(TaskWindow, WindowOfTwoStillCorrectOnChains) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.task_window = 2;
  cfg.task_window_low = 1;
  Runtime rt(cfg);
  int x = 0;
  for (int i = 0; i < 200; ++i)
    rt.spawn([](int* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 200);
}

class WindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowSweep, MixedDagCorrectUnderAnyWindow) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.task_window = GetParam();
  Runtime rt(cfg);
  // Unsigned lanes: 50 steps of *3 wrap — defined for unsigned, and the
  // oracle wraps identically (the UBSan CI leg rejects the signed variant).
  constexpr int kChains = 8, kLen = 50;
  std::vector<unsigned long> chains(kChains, 0);
  for (int s = 0; s < kLen; ++s)
    for (int c = 0; c < kChains; ++c)
      rt.spawn(
          [s](unsigned long* p) { *p = *p * 3 + static_cast<unsigned>(s); },
          inout(&chains[c]));
  rt.barrier();
  unsigned long expect = 0;
  for (int s = 0; s < kLen; ++s) expect = expect * 3 + static_cast<unsigned>(s);
  for (unsigned long v : chains) EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(2u, 3u, 7u, 64u, 100000u));

TEST(MemoryLimit, RenameLimitBlocksAndFrees) {
  Config cfg;
  // One thread: every write renames (its reader is still pending), renamed
  // storage provably accumulates, and the memory-limit blocking condition
  // deterministically fires.
  cfg.num_threads = 1;
  cfg.rename_memory_limit = 1 << 16;  // 64 KiB
  Runtime rt(cfg);
  constexpr std::size_t kBufBytes = 1 << 12;  // 4 KiB renames
  std::vector<char> buf(kBufBytes, 0);
  long sink = 0;
  // Reader+writer alternation: every write renames 4 KiB. Without the limit
  // this would pile up ~1 MiB of renamed storage.
  for (int i = 0; i < 256; ++i) {
    rt.spawn([](const char* p, long* s) { *s += p[0]; }, in(buf.data(), kBufBytes),
             inout(&sink));
    rt.spawn([i](char* p) { p[0] = static_cast<char>(i); },
             out(buf.data(), kBufBytes));
  }
  rt.barrier();
  auto s = rt.stats();
  EXPECT_GE(s.renames, 200u);
  // Peak renamed footprint must respect the soft limit within one
  // allocation of slack.
  EXPECT_LE(rt.rename_pool().peak_bytes(), cfg.rename_memory_limit + kBufBytes);
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);
  EXPECT_GE(s.main_blocked_on_memory, 1u);  // the limit must have fired
  EXPECT_EQ(buf[0], static_cast<char>(255));
}

TEST(MemoryLimit, ResultsUnaffectedByTinyLimit) {
  Config tight, loose;
  tight.num_threads = loose.num_threads = 4;
  tight.rename_memory_limit = 4096;
  loose.rename_memory_limit = std::size_t(1) << 30;

  auto run = [](const Config& cfg) {
    Runtime rt(cfg);
    std::vector<int> buf(256, 0);
    std::vector<int> reads(64, 0);
    for (int i = 0; i < 64; ++i) {
      rt.spawn([](const int* p, int* o) { *o = p[0]; },
               in(buf.data(), buf.size()), out(&reads[i]));
      rt.spawn([i](int* p) { p[0] = i + 1; }, out(buf.data(), buf.size()));
    }
    rt.barrier();
    return std::make_pair(buf[0], reads);
  };
  auto [vt, rt_] = run(tight);
  auto [vl, rl] = run(loose);
  EXPECT_EQ(vt, vl);
  EXPECT_EQ(rt_, rl);
}

}  // namespace
}  // namespace smpss
