// Multisort tests: the sequential primitives (quicksort, two-run merge,
// co-rank), and all four parallel builds (regions, representants, fork-join,
// task pool) against std::sort, over sizes/thread counts/data shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "apps/multisort.hpp"
#include "common/rng.hpp"

namespace smpss {
namespace {

using apps::ELM;

std::vector<ELM> random_data(long n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<ELM> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<ELM>(rng.next() % 1000000);
  return v;
}

TEST(SeqQuick, SortsVariousShapes) {
  for (long n : {0L, 1L, 2L, 7L, 100L, 4097L}) {
    auto v = random_data(n, 5 + static_cast<std::uint64_t>(n));
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    if (n > 0) apps::seqquick(v.data(), 0, n - 1);
    EXPECT_EQ(v, expect) << "n=" << n;
  }
}

TEST(SeqQuick, AlreadySortedAndReverse) {
  std::vector<ELM> up(1000), down(1000);
  for (long i = 0; i < 1000; ++i) {
    up[static_cast<std::size_t>(i)] = i;
    down[static_cast<std::size_t>(i)] = 999 - i;
  }
  apps::seqquick(up.data(), 0, 999);
  apps::seqquick(down.data(), 0, 999);
  EXPECT_TRUE(std::is_sorted(up.begin(), up.end()));
  EXPECT_TRUE(std::is_sorted(down.begin(), down.end()));
}

TEST(SeqQuick, AllEqualElements) {
  std::vector<ELM> v(500, 42);
  apps::seqquick(v.data(), 0, 499);
  for (ELM x : v) EXPECT_EQ(x, 42);
}

TEST(SeqMerge, MergesAdjacentRuns) {
  std::vector<ELM> data = {1, 3, 5, 7, 2, 4, 6, 8};
  std::vector<ELM> dest(8, 0);
  apps::seqmerge(data.data(), 0, 3, 4, 7, dest.data());
  EXPECT_EQ(dest, (std::vector<ELM>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(SeqMerge, EmptyRunHandled) {
  std::vector<ELM> data = {1, 2, 3};
  std::vector<ELM> dest(3, 0);
  apps::seqmerge(data.data(), 0, 2, 3, 2, dest.data());  // second run empty
  EXPECT_EQ(dest, (std::vector<ELM>{1, 2, 3}));
}

// Property: co_rank(t) splits so that merging prefix pieces reproduces the
// full merge, for random sorted inputs and all t.
TEST(CoRank, MatchesBruteForceOnRandomRuns) {
  Xoshiro256 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    long la = static_cast<long>(rng.next_below(20));
    long lb = static_cast<long>(rng.next_below(20));
    std::vector<ELM> a(static_cast<std::size_t>(la)),
        b(static_cast<std::size_t>(lb));
    for (auto& x : a) x = static_cast<ELM>(rng.next_below(50));
    for (auto& x : b) x = static_cast<ELM>(rng.next_below(50));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<ELM> merged;
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged));
    for (long t = 0; t <= la + lb; ++t) {
      long ia = apps::co_rank(t, a.data(), la, b.data(), lb);
      long ib = t - ia;
      ASSERT_GE(ia, 0);
      ASSERT_LE(ia, la);
      ASSERT_GE(ib, 0);
      ASSERT_LE(ib, lb);
      // The first t merged elements must be exactly a[0..ia) ∪ b[0..ib)
      // as multisets: check boundary conditions instead of re-merging.
      if (ia > 0 && ib < lb) ASSERT_LE(a[ia - 1], b[ib]);
      if (ib > 0 && ia < la) ASSERT_LE(b[ib - 1], a[ia]);
      (void)merged;
    }
  }
}

using SortParam = std::tuple<unsigned, long, long, long, std::uint64_t>;
// threads, n, quick_size, merge_size, seed

class MultisortSuite : public ::testing::TestWithParam<SortParam> {
 protected:
  void expect_sorted_equal(const std::vector<ELM>& got,
                           std::vector<ELM> original) {
    std::sort(original.begin(), original.end());
    EXPECT_EQ(got, original);
  }
};

TEST_P(MultisortSuite, SeqVariant) {
  auto [threads, n, qs, ms, seed] = GetParam();
  (void)threads;
  (void)ms;
  auto data = random_data(n, seed);
  auto original = data;
  std::vector<ELM> tmp(data.size());
  apps::multisort_seq(data.data(), tmp.data(), n, qs);
  expect_sorted_equal(data, original);
}

TEST_P(MultisortSuite, SmpssRegions) {
  auto [threads, n, qs, ms, seed] = GetParam();
  auto data = random_data(n, seed);
  auto original = data;
  std::vector<ELM> tmp(data.size());
  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = apps::MultisortTasks::register_in(rt);
  apps::multisort_smpss_regions(rt, tt, data.data(), tmp.data(), n, qs, ms);
  expect_sorted_equal(data, original);
}

TEST_P(MultisortSuite, SmpssRegionsNested) {
  // Same decomposition, sort tree expanded by `sort_rec` worker tasks.
  auto [threads, n, qs, ms, seed] = GetParam();
  auto data = random_data(n, seed);
  auto original = data;
  std::vector<ELM> tmp(data.size());
  Config cfg;
  cfg.num_threads = threads;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  auto tt = apps::MultisortTasks::register_in(rt);
  apps::multisort_smpss_regions(rt, tt, data.data(), tmp.data(), n, qs, ms);
  expect_sorted_equal(data, original);
  if (n / 4 >= qs) EXPECT_GT(rt.stats().taskwaits, 0u);
}

TEST_P(MultisortSuite, SmpssRepresentants) {
  auto [threads, n, qs, ms, seed] = GetParam();
  (void)ms;
  auto data = random_data(n, seed);
  auto original = data;
  std::vector<ELM> tmp(data.size());
  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = apps::MultisortTasks::register_in(rt);
  apps::multisort_smpss_repr(rt, tt, data.data(), tmp.data(), n, qs);
  expect_sorted_equal(data, original);
}

TEST_P(MultisortSuite, ForkJoin) {
  auto [threads, n, qs, ms, seed] = GetParam();
  auto data = random_data(n, seed);
  auto original = data;
  std::vector<ELM> tmp(data.size());
  fj::Scheduler s(threads);
  apps::multisort_fj(s, data.data(), tmp.data(), n, qs, ms);
  expect_sorted_equal(data, original);
}

TEST_P(MultisortSuite, TaskPool) {
  auto [threads, n, qs, ms, seed] = GetParam();
  auto data = random_data(n, seed);
  auto original = data;
  std::vector<ELM> tmp(data.size());
  omp3::TaskPool p(threads);
  apps::multisort_omp3(p, data.data(), tmp.data(), n, qs, ms);
  expect_sorted_equal(data, original);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultisortSuite,
    ::testing::Values(SortParam{1, 1000, 64, 32, 1},
                      SortParam{4, 10000, 256, 128, 2},
                      SortParam{8, 50000, 1024, 512, 3},
                      SortParam{8, 65536, 4096, 2048, 4},
                      SortParam{2, 777, 50, 25, 5},     // non-power-of-two
                      SortParam{4, 4096, 8192, 512, 6}  // quick covers all
                      ));

TEST(MultisortEdge, DuplicateHeavyInput) {
  long n = 20000;
  std::vector<ELM> data(static_cast<std::size_t>(n));
  Xoshiro256 rng(8);
  for (auto& x : data) x = static_cast<ELM>(rng.next_below(4));  // few values
  auto original = data;
  std::vector<ELM> tmp(data.size());
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  auto tt = apps::MultisortTasks::register_in(rt);
  apps::multisort_smpss_regions(rt, tt, data.data(), tmp.data(), n, 512, 256);
  std::sort(original.begin(), original.end());
  EXPECT_EQ(data, original);
}

}  // namespace
}  // namespace smpss
