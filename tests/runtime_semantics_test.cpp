// The core promise of the programming model (paper Sec. II): an annotated
// program run in parallel produces exactly the results of its sequential
// execution. This suite generates random task programs over shared buffers
// with an order-sensitive mixing function and compares the parallel result
// against a sequential oracle interpreter — across thread counts, renaming
// on/off, scheduler modes, task windows, and seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

constexpr int kBufLen = 8;  // ints per buffer

struct TaskSpec {
  std::uint32_t id;
  int a, b, c;      // buffer indices: reads a and b, writes c
  bool c_is_inout;  // inout (reads old c) vs out (overwrites)
};

struct Program {
  int nbuffers;
  std::vector<TaskSpec> tasks;
};

Program random_program(std::uint64_t seed, int nbuffers, int ntasks) {
  Xoshiro256 rng(seed);
  Program p;
  p.nbuffers = nbuffers;
  p.tasks.reserve(static_cast<std::size_t>(ntasks));
  for (int t = 0; t < ntasks; ++t) {
    TaskSpec s;
    s.id = static_cast<std::uint32_t>(t + 1);
    s.a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nbuffers)));
    s.b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nbuffers)));
    s.c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nbuffers)));
    s.c_is_inout = rng.next_below(3) != 0;  // 2/3 inout, 1/3 out
    p.tasks.push_back(s);
  }
  return p;
}

// Order-sensitive mixing: any reordering of conflicting tasks changes the
// result, so a scheduling bug cannot cancel out.
void apply_body(const int* a, const int* b, int* c, std::uint32_t id,
                bool inout_c) {
  for (int i = 0; i < kBufLen; ++i) {
    std::int64_t old_c = inout_c ? c[i] : 0;
    c[i] = static_cast<int>(old_c * 31 + a[i] + 7LL * b[i] +
                            static_cast<int>(id));
  }
}

std::vector<std::vector<int>> initial_buffers(int nbuffers,
                                              std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xB0FF);
  std::vector<std::vector<int>> bufs(static_cast<std::size_t>(nbuffers),
                                     std::vector<int>(kBufLen));
  for (auto& b : bufs)
    for (int& v : b) v = static_cast<int>(rng.next() & 0xFFFF);
  return bufs;
}

std::vector<std::vector<int>> oracle_run(const Program& p,
                                         std::uint64_t seed) {
  auto bufs = initial_buffers(p.nbuffers, seed);
  for (const TaskSpec& t : p.tasks)
    apply_body(bufs[static_cast<std::size_t>(t.a)].data(),
               bufs[static_cast<std::size_t>(t.b)].data(),
               bufs[static_cast<std::size_t>(t.c)].data(), t.id, t.c_is_inout);
  return bufs;
}

std::vector<std::vector<int>> smpss_run(const Program& p, std::uint64_t seed,
                                        const Config& cfg) {
  auto bufs = initial_buffers(p.nbuffers, seed);
  Runtime rt(cfg);
  for (const TaskSpec& t : p.tasks) {
    int* pa = bufs[static_cast<std::size_t>(t.a)].data();
    int* pb = bufs[static_cast<std::size_t>(t.b)].data();
    int* pc = bufs[static_cast<std::size_t>(t.c)].data();
    std::uint32_t id = t.id;
    if (t.c_is_inout) {
      rt.spawn(
          [id](const int* a, const int* b, int* c) {
            apply_body(a, b, c, id, true);
          },
          in(pa, kBufLen), in(pb, kBufLen), inout(pc, kBufLen));
    } else {
      rt.spawn(
          [id](const int* a, const int* b, int* c) {
            apply_body(a, b, c, id, false);
          },
          in(pa, kBufLen), in(pb, kBufLen), out(pc, kBufLen));
    }
  }
  rt.barrier();
  return bufs;
}

// Parameters: (threads, renaming, centralized, window, seed)
using ParamT = std::tuple<unsigned, bool, bool, std::size_t, std::uint64_t>;

class SequentialEquivalence : public ::testing::TestWithParam<ParamT> {};

TEST_P(SequentialEquivalence, RandomProgramMatchesOracle) {
  auto [threads, renaming, centralized, window, seed] = GetParam();
  Program p = random_program(seed, /*nbuffers=*/12, /*ntasks=*/400);

  Config cfg;
  cfg.num_threads = threads;
  cfg.renaming = renaming;
  cfg.scheduler_mode =
      centralized ? SchedulerMode::Centralized : SchedulerMode::Distributed;
  cfg.task_window = window;

  auto expect = oracle_run(p, seed);
  auto got = smpss_run(p, seed, cfg);
  for (int b = 0; b < p.nbuffers; ++b)
    ASSERT_EQ(got[static_cast<std::size_t>(b)],
              expect[static_cast<std::size_t>(b)])
        << "buffer " << b << " differs (threads=" << threads
        << " renaming=" << renaming << " central=" << centralized
        << " window=" << window << " seed=" << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndRenaming, SequentialEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Bool(),                 // renaming
                       ::testing::Values(false),          // distributed
                       ::testing::Values(std::size_t{8192}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

INSTANTIATE_TEST_SUITE_P(
    CentralizedScheduler, SequentialEquivalence,
    ::testing::Combine(::testing::Values(4u), ::testing::Bool(),
                       ::testing::Values(true),  // centralized
                       ::testing::Values(std::size_t{8192}),
                       ::testing::Values(std::uint64_t{7}, std::uint64_t{8})));

INSTANTIATE_TEST_SUITE_P(
    TinyTaskWindow, SequentialEquivalence,
    ::testing::Combine(::testing::Values(2u, 8u), ::testing::Bool(),
                       ::testing::Values(false),
                       ::testing::Values(std::size_t{4}, std::size_t{16}),
                       ::testing::Values(std::uint64_t{11})));

// Random-steal ablation keeps semantics too.
TEST(SequentialEquivalenceExtra, RandomStealOrder) {
  Program p = random_program(42, 10, 300);
  Config cfg;
  cfg.num_threads = 8;
  cfg.steal_order = StealOrder::Random;
  auto expect = oracle_run(p, 42);
  auto got = smpss_run(p, 42, cfg);
  for (std::size_t b = 0; b < expect.size(); ++b) ASSERT_EQ(got[b], expect[b]);
}

// Larger stress instance on all cores.
TEST(SequentialEquivalenceExtra, LargeProgramAllCores) {
  Program p = random_program(123, 24, 3000);
  Config cfg;  // default thread count = all cores
  auto expect = oracle_run(p, 123);
  auto got = smpss_run(p, 123, cfg);
  for (std::size_t b = 0; b < expect.size(); ++b) ASSERT_EQ(got[b], expect[b]);
}

// Repeated barriers partition the program arbitrarily without changing the
// result.
TEST(SequentialEquivalenceExtra, IntermediateBarriers) {
  Program p = random_program(5, 8, 200);
  Config cfg;
  cfg.num_threads = 4;
  auto expect = oracle_run(p, 5);

  auto bufs = initial_buffers(p.nbuffers, 5);
  Runtime rt(cfg);
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    const TaskSpec& t = p.tasks[i];
    std::uint32_t id = t.id;
    // Access mode and body must agree: this variant declares inout for c,
    // so every body reads the old value.
    rt.spawn(
        [id](const int* a, const int* b, int* c) {
          apply_body(a, b, c, id, true);
        },
        in(bufs[static_cast<std::size_t>(t.a)].data(), kBufLen),
        in(bufs[static_cast<std::size_t>(t.b)].data(), kBufLen),
        inout(bufs[static_cast<std::size_t>(t.c)].data(), kBufLen));
    if (i % 37 == 0) rt.barrier();
  }
  rt.barrier();
  // Note: the spawn above always uses inout for c; rebuild oracle to match.
  auto bufs2 = initial_buffers(p.nbuffers, 5);
  for (const TaskSpec& t : p.tasks)
    apply_body(bufs2[static_cast<std::size_t>(t.a)].data(),
               bufs2[static_cast<std::size_t>(t.b)].data(),
               bufs2[static_cast<std::size_t>(t.c)].data(), t.id, true);
  for (std::size_t b = 0; b < bufs.size(); ++b) ASSERT_EQ(bufs[b], bufs2[b]);
  (void)expect;
}

}  // namespace
}  // namespace smpss
