// Commutative/concurrent access-mode semantics: mutual exclusion without
// ordering (Dir::Commutative), per-worker privatized reductions
// (Dir::Concurrent), group lifecycle accounting, conflict-token acquire
// across multiple groups, and the PageRank mini-app's bit-exactness against
// its sequential oracle under both lowerings. Everything here is exact
// integer arithmetic, so "any member order" and "program order" must agree
// to the last bit — a lost update, torn RMW, double combine, or missed
// private shows up as a wrong number, not a flake.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/pagerank.hpp"
#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config threads(unsigned n) {
  Config c;
  c.num_threads = n;
  return c;
}

/// A deliberately non-atomic read-modify-write with a widened race window:
/// only mutual exclusion makes `tasks * kSpin` additions exact.
void racy_add(std::int64_t* x, std::int64_t amount) {
  const std::int64_t before = *x;
  // Lengthen the read-to-write window so a broken token would actually
  // interleave members rather than passing by luck.
  volatile std::int64_t sink = 0;
  for (int i = 0; i < 64; ++i) sink = sink + i;
  (void)sink;
  *x = before + amount;
}

// --- mutual exclusion without ordering ----------------------------------------

TEST(Commutative, ExclusiveUnorderedIncrements) {
  Runtime rt(threads(4));
  std::int64_t x = 0;
  constexpr int kTasks = 400;
  for (int i = 0; i < kTasks; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 1); }, commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, kTasks);
}

TEST(Commutative, ReaderAfterGroupSeesAllWrites) {
  Runtime rt(threads(4));
  std::int64_t x = 0, seen = -1;
  for (int i = 1; i <= 100; ++i)
    rt.spawn([i](std::int64_t* p) { racy_add(p, i); }, commutative(&x));
  // A plain read is a non-matching access: it seals the group and orders
  // after the close node, i.e. after *every* member.
  rt.spawn([](const std::int64_t* p, std::int64_t* o) { *o = *p; }, in(&x),
           out(&seen));
  rt.barrier();
  EXPECT_EQ(seen, 100 * 101 / 2);
  EXPECT_EQ(x, 100 * 101 / 2);
}

TEST(Commutative, ReopenAfterBarrier) {
  Runtime rt(threads(4));
  std::int64_t x = 0;
  for (int i = 0; i < 50; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 2); }, commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, 100);
  for (int i = 0; i < 50; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 3); }, commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, 250);
}

TEST(Commutative, WaitOnSealsGroup) {
  Runtime rt(threads(4));
  std::int64_t x = 0;
  for (int i = 0; i < 64; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 1); }, commutative(&x));
  rt.wait_on(&x);  // serialization point: must seal the open group
  EXPECT_EQ(x, 64);
  rt.barrier();
}

TEST(Commutative, NoRenamingAblation) {
  Config c = threads(4);
  c.renaming = false;
  Runtime rt(c);
  std::int64_t x = 0;
  for (int i = 0; i < 128; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 1); }, commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, 128);
}

TEST(Commutative, LockedAnalyzerAblation) {
  Config c = threads(4);
  c.dep_lockfree = false;
  Runtime rt(c);
  std::int64_t x = 0;
  for (int i = 0; i < 128; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 1); }, commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, 128);
}

TEST(Commutative, NestedSubmitters) {
  Config c = threads(4);
  c.nested_tasks = true;
  Runtime rt(c);
  std::int64_t x = 0;
  Runtime* rtp = &rt;
  std::int64_t* xp = &x;
  // Eight parent tasks, serialized by nothing, each submitting 32 members
  // from whatever worker runs it: group open/join races the submission
  // pipeline.
  for (int g = 0; g < 8; ++g)
    rt.spawn([rtp, xp]() {
      for (int i = 0; i < 32; ++i)
        rtp->spawn([](std::int64_t* p) { racy_add(p, 1); }, commutative(xp));
    });
  rt.barrier();
  EXPECT_EQ(x, 8 * 32);
}

// --- conflict tokens across groups ---------------------------------------------

TEST(Commutative, TwoTokensPerTask) {
  Runtime rt(threads(4));
  std::int64_t a = 0, b = 0;
  // Every task holds BOTH tokens (sorted acquire order prevents deadlock);
  // the two counters must always move in lockstep.
  for (int i = 0; i < 200; ++i)
    rt.spawn(
        [](std::int64_t* pa, std::int64_t* pb) {
          racy_add(pa, 1);
          racy_add(pb, 1);
        },
        commutative(&a), commutative(&b));
  rt.barrier();
  EXPECT_EQ(a, 200);
  EXPECT_EQ(b, 200);
}

TEST(Commutative, SameDatumTwiceDoesNotSelfDeadlock) {
  Runtime rt(threads(2));
  std::int64_t x = 0;
  // Both parameters name the same datum; the analyzer must dedupe the
  // token or the all-or-nothing acquire would block on itself forever.
  for (int i = 0; i < 32; ++i)
    rt.spawn(
        [](std::int64_t* p, std::int64_t* q) {
          EXPECT_EQ(p, q);
          racy_add(p, 1);
        },
        commutative(&x), commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, 32);
}

// --- concurrent (privatized reduction) mode ------------------------------------

TEST(Concurrent, ReductionPlusExact) {
  Runtime rt(threads(4));
  std::int64_t sum = 0;
  for (int i = 1; i <= 1000; ++i)
    rt.spawn([i](std::int64_t* p) { *p += i; }, reduction(Plus{}, &sum));
  rt.barrier();
  EXPECT_EQ(sum, 1000 * 1001 / 2);
}

TEST(Concurrent, ReductionInheritsMasterValue) {
  Runtime rt(threads(4));
  std::int64_t sum = 1000000;  // pre-group value must survive the combine
  for (int i = 0; i < 100; ++i)
    rt.spawn([](std::int64_t* p) { *p += 1; }, reduction(Plus{}, &sum));
  rt.barrier();
  EXPECT_EQ(sum, 1000100);
}

TEST(Concurrent, ReductionMinMax) {
  Runtime rt(threads(4));
  std::int64_t lo = 1000, hi = -1000;
  for (int i = 0; i < 256; ++i) {
    const std::int64_t v = (i * 37) % 501 - 250;  // [-250, 250]
    rt.spawn(
        [v](std::int64_t* p) {
          if (v < *p) *p = v;
        },
        reduction(Min{}, &lo));
    rt.spawn(
        [v](std::int64_t* p) {
          if (v > *p) *p = v;
        },
        reduction(Max{}, &hi));
  }
  rt.barrier();
  std::int64_t want_lo = 1000, want_hi = -1000;
  for (int i = 0; i < 256; ++i) {
    const std::int64_t v = (i * 37) % 501 - 250;
    if (v < want_lo) want_lo = v;
    if (v > want_hi) want_hi = v;
  }
  EXPECT_EQ(lo, want_lo);
  EXPECT_EQ(hi, want_hi);
}

TEST(Concurrent, ReductionArray) {
  Runtime rt(threads(4));
  std::int64_t hist[4] = {0, 0, 0, 0};
  for (int i = 0; i < 400; ++i)
    rt.spawn([i](std::int64_t* h) { h[i % 4] += 1; },
             reduction(Plus{}, hist, 4));
  rt.barrier();
  for (int k = 0; k < 4; ++k) EXPECT_EQ(hist[k], 100) << "bin " << k;
}

TEST(Concurrent, ReaderAfterReductionSeesCombinedValue) {
  Runtime rt(threads(4));
  std::int64_t sum = 0, seen = -1;
  for (int i = 0; i < 100; ++i)
    rt.spawn([](std::int64_t* p) { *p += 3; }, reduction(Plus{}, &sum));
  rt.spawn([](const std::int64_t* p, std::int64_t* o) { *o = *p; }, in(&sum),
           out(&seen));
  rt.barrier();
  EXPECT_EQ(seen, 300);
  EXPECT_EQ(sum, 300);
}

// --- lifecycle accounting -------------------------------------------------------

TEST(Commutative, GroupStatsAccounting) {
  Runtime rt(threads(4));
  std::int64_t x = 0, y = 0;
  for (int i = 0; i < 60; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 1); }, commutative(&x));
  for (int i = 0; i < 40; ++i)
    rt.spawn([](std::int64_t* p) { *p += 1; }, reduction(Plus{}, &y));
  rt.barrier();
  const StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.groups_opened, 2u);
  EXPECT_EQ(s.groups_closed, 2u);
  EXPECT_EQ(s.group_joins, 100u);
  EXPECT_EQ(s.commute_edges, 100u);  // one member edge per join
}

TEST(Commutative, InoutLoweringOpensNoGroups) {
  Runtime rt(threads(4));
  std::int64_t x = 0;
  for (int i = 0; i < 60; ++i)
    rt.spawn([](std::int64_t* p) { racy_add(p, 1); }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 60);
  const StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.groups_opened, 0u);
  EXPECT_EQ(s.group_joins, 0u);
}

// --- the PageRank mini-app ------------------------------------------------------

void check_pagerank(Config cfg, bool use_commutative) {
  constexpr int kN = 192, kDegree = 4, kIters = 4, kBlock = 32;
  std::vector<std::int64_t> want(kN);
  apps::pagerank_init(kN, want.data());
  apps::pagerank_seq(kN, kDegree, kIters, want.data());

  std::vector<std::int64_t> ranks(kN), accum(kN, 0);
  apps::pagerank_init(kN, ranks.data());
  Runtime rt(cfg);
  const apps::PageRankTasks tt = apps::PageRankTasks::register_in(rt);
  apps::pagerank_smpss(rt, tt, kN, kDegree, kIters, kBlock, ranks.data(),
                       accum.data(), use_commutative);
  EXPECT_EQ(ranks, want) << "commutative=" << use_commutative;
  if (use_commutative) {
    const StatsSnapshot s = rt.stats();
    // One group per (iteration, destination block) accumulator.
    EXPECT_EQ(s.groups_opened, static_cast<std::uint64_t>(kIters) *
                                   (kN / kBlock));
    EXPECT_EQ(s.groups_closed, s.groups_opened);
  }
}

TEST(PageRank, CommutativeMatchesSequentialOracle) {
  check_pagerank(threads(4), /*use_commutative=*/true);
}
TEST(PageRank, InoutMatchesSequentialOracle) {
  check_pagerank(threads(4), /*use_commutative=*/false);
}
TEST(PageRank, SingleThreadCommutative) {
  check_pagerank(threads(1), /*use_commutative=*/true);
}
TEST(PageRank, LockedAnalyzer) {
  Config c = threads(4);
  c.dep_lockfree = false;
  check_pagerank(c, /*use_commutative=*/true);
}
TEST(PageRank, AwarePolicy) {
  Config c = threads(4);
  c.sched_policy = SchedPolicyKind::Aware;
  check_pagerank(c, /*use_commutative=*/true);
}
TEST(PageRank, RenamingOffCommutative) {
  Config c = threads(4);
  c.renaming = false;
  check_pagerank(c, /*use_commutative=*/true);
}
TEST(PageRank, SmallTaskWindow) {
  Config c = threads(4);
  c.task_window = 16;
  check_pagerank(c, /*use_commutative=*/true);
}

// --- spawn-time diagnostics ------------------------------------------------------

TEST(CommutativeDeath, ReductionWithoutRenamingAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ASSERT_DEATH(
      {
        Config c;
        c.num_threads = 1;
        c.renaming = false;
        Runtime rt(c);
        std::int64_t x = 0;
        rt.spawn([](std::int64_t* p) { *p += 1; }, reduction(Plus{}, &x));
        rt.barrier();
      },
      "require renaming");
}

}  // namespace
}  // namespace smpss
