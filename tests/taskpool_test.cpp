// OpenMP-3-like task pool baseline: nested tasks, taskwait, run_root, and
// correctness across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "baselines/taskpool/taskpool.hpp"

namespace smpss {
namespace {

class TaskPoolSuite : public ::testing::TestWithParam<unsigned> {};

TEST_P(TaskPoolSuite, RunsAllTasks) {
  omp3::TaskPool p(GetParam());
  std::atomic<int> runs{0};
  p.run_root([&] {
    for (int i = 0; i < 1000; ++i)
      p.task([&] { runs.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(runs.load(), 1000);
}

TEST_P(TaskPoolSuite, TaskwaitOrdersPhases) {
  omp3::TaskPool p(GetParam());
  std::atomic<int> phase1{0};
  std::atomic<bool> order_ok{true};
  p.run_root([&] {
    for (int i = 0; i < 100; ++i)
      p.task([&] { phase1.fetch_add(1, std::memory_order_relaxed); });
    p.taskwait();
    if (phase1.load() != 100) order_ok.store(false);
    for (int i = 0; i < 100; ++i)
      p.task([&] {
        if (phase1.load(std::memory_order_relaxed) != 100)
          order_ok.store(false);
      });
    p.taskwait();
  });
  EXPECT_TRUE(order_ok.load());
}

long fib_pool(omp3::TaskPool& p, int n) {
  if (n < 2) return n;
  long a = 0, b = 0;
  p.task([&p, n, &a] { a = fib_pool(p, n - 1); });
  b = fib_pool(p, n - 2);
  p.taskwait();
  return a + b;
}

TEST_P(TaskPoolSuite, NestedRecursion) {
  omp3::TaskPool p(GetParam());
  long result = 0;
  p.run_root([&] { result = fib_pool(p, 18); });
  EXPECT_EQ(result, 2584);
}

TEST_P(TaskPoolSuite, ReusableAcrossRoots) {
  omp3::TaskPool p(GetParam());
  for (int r = 0; r < 5; ++r) {
    std::atomic<int> hits{0};
    p.run_root([&] {
      for (int i = 0; i < 64; ++i)
        p.task([&] { hits.fetch_add(1); });
    });
    EXPECT_EQ(hits.load(), 64);
  }
}

TEST_P(TaskPoolSuite, TaskwaitOutsideTaskIsNoop) {
  omp3::TaskPool p(GetParam());
  p.taskwait();  // no current frame: returns immediately
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Threads, TaskPoolSuite,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace smpss
