// Pooled task-lifecycle tests: churn far more tasks than the pool caches so
// every block is recycled many times, across submitter and retirer threads,
// and assert that nothing about task identity or accounting leaks between
// tenancies — trace/graph ids stay unique (identity rests on the monotonic
// seq, not the recycled storage), stats counters stay exact, and the
// nested-mode variant exercises the remote-free path under TSan/ASan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

constexpr int kChurnTasks = 20000;

TEST(PoolLifecycle, ChurnKeepsTraceAndGraphIdsUnique) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.pool_cache = 8;     // tiny cache: force heavy block reuse
  cfg.task_window = 64;   // small window: blocks recycle while spawning
  cfg.tracing = true;
  cfg.record_graph = true;
  Runtime rt(cfg);

  std::vector<long> lanes(16, 0);
  for (int i = 0; i < kChurnTasks; ++i)
    rt.spawn([](long* p) { *p += 1; }, inout(&lanes[i % 16]));
  rt.barrier();
  for (long v : lanes) EXPECT_EQ(v, kChurnTasks / 16);

  auto s = rt.stats();
  EXPECT_EQ(s.tasks_spawned, static_cast<std::uint64_t>(kChurnTasks));
  EXPECT_EQ(s.tasks_executed, static_cast<std::uint64_t>(kChurnTasks));
  EXPECT_GT(s.pool_hits, 0u) << "the pool never served from a free list";
  // Reuse really happened: far fewer slab mallocs than tasks would imply
  // without recycling (the pool never returns blocks to the OS, so slab
  // count is bounded by peak live tasks, which the window bounds).
  EXPECT_LT(s.pool_slabs * 64, static_cast<std::uint64_t>(kChurnTasks));

  // Trace events and graph nodes: one per task, ids unique across reuse.
  const auto events = rt.tracer().collect();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kChurnTasks));
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kChurnTasks))
      << "recycled TaskNodes aliased trace ids";
  const auto& nodes = rt.graph_recorder().nodes();
  ASSERT_EQ(nodes.size(), static_cast<std::size_t>(kChurnTasks));
  std::set<std::uint64_t> node_seqs;
  for (const auto& n : nodes) node_seqs.insert(n.seq);
  EXPECT_EQ(node_seqs.size(), static_cast<std::size_t>(kChurnTasks))
      << "recycled TaskNodes aliased graph node ids";
}

TEST(PoolLifecycle, NestedChurnAcrossWorkersStaysExact) {
  // Generators on distinct workers spawn children concurrently: blocks are
  // allocated on one thread's slot and retired (remote-freed) on others.
  // Run with SMPSS_NESTED=1 under TSan/ASan in CI; the assertions here hold
  // in every configuration.
  Config cfg;
  cfg.nested_tasks = true;
  cfg.num_threads = 4;
  cfg.pool_cache = 8;
  cfg.task_window = 128;
  Runtime rt(cfg);

  constexpr int kGenerators = 3;
  constexpr int kChildren = 3000;
  std::vector<std::vector<long>> lanes(kGenerators);
  for (auto& l : lanes) l.assign(8, 0);
  for (int g = 0; g < kGenerators; ++g) {
    rt.spawn(
        [&rt](long* lane0) {
          for (int i = 0; i < kChildren; ++i)
            rt.spawn([](long* q) { *q += 1; }, smpss::inout(lane0 + (i % 8)));
          rt.taskwait();
        },
        smpss::inout(lanes[static_cast<std::size_t>(g)].data(), 8));
  }
  rt.barrier();
  for (const auto& l : lanes)
    for (long v : l) EXPECT_EQ(v, kChildren / 8);

  auto s = rt.stats();
  EXPECT_EQ(s.tasks_spawned,
            static_cast<std::uint64_t>(kGenerators) * (kChildren + 1));
  EXPECT_EQ(s.tasks_executed, s.tasks_spawned);
  EXPECT_EQ(s.tasks_nested,
            static_cast<std::uint64_t>(kGenerators) * kChildren);
  EXPECT_GT(s.pool_hits, 0u);
}

TEST(PoolLifecycle, LargeClosuresRideThePoolOrHeapCorrectly) {
  // Capture blobs straddling the inline buffer (112 B), the pooled closure
  // class (256 B), and the heap fallback — every size must execute with its
  // payload intact after heavy reuse.
  Config cfg;
  cfg.num_threads = 2;
  cfg.pool_cache = 4;
  Runtime rt(cfg);

  struct Blob96 { unsigned char b[96]; };
  struct Blob192 { unsigned char b[192]; };
  struct Blob512 { unsigned char b[512]; };
  long sum96 = 0, sum192 = 0, sum512 = 0;
  constexpr int kRounds = 800;
  for (int i = 0; i < kRounds; ++i) {
    Blob96 a{};
    a.b[95] = static_cast<unsigned char>(i & 0x3f);
    rt.spawn([a](long* s) { *s += a.b[95]; }, inout(&sum96));
    Blob192 b{};
    b.b[191] = static_cast<unsigned char>(i & 0x3f);
    rt.spawn([b](long* s) { *s += b.b[191]; }, inout(&sum192));
    Blob512 c{};
    c.b[511] = static_cast<unsigned char>(i & 0x3f);
    rt.spawn([c](long* s) { *s += c.b[511]; }, inout(&sum512));
  }
  rt.barrier();
  long expect = 0;
  for (int i = 0; i < kRounds; ++i) expect += i & 0x3f;
  EXPECT_EQ(sum96, expect);
  EXPECT_EQ(sum192, expect);
  EXPECT_EQ(sum512, expect);
}

TEST(PoolLifecycle, PoolDisabledReproducesPlainLifecycle) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.pool_cache = 0;  // paper-faithful malloc/free per task
  Runtime rt(cfg);
  long x = 0;
  for (int i = 0; i < 2000; ++i) rt.spawn([](long* p) { *p += 1; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 2000);
  auto s = rt.stats();
  EXPECT_EQ(s.tasks_executed, 2000u);
  EXPECT_EQ(s.pool_hits, 0u);
  EXPECT_EQ(s.pool_refills, 0u);
  EXPECT_EQ(s.pool_slabs, 0u);
}

}  // namespace
}  // namespace smpss
