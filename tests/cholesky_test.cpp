// Cholesky application tests: the Fig. 4 hyper-matrix build and the
// Fig. 9/10 flat build against the sequential oracle, across block sizes,
// thread counts and kernel variants; task-count formulas; failure surfacing.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/cholesky.hpp"
#include "hyper/flat_matrix.hpp"

namespace smpss {
namespace {

using apps::CholeskyTasks;

using Param = std::tuple<unsigned, int, int, blas::Variant>;  // threads, nb, m, variant

class CholeskySuite : public ::testing::TestWithParam<Param> {};

TEST_P(CholeskySuite, HyperMatchesOracle) {
  auto [threads, nb, m, variant] = GetParam();
  const int n = nb * m;
  FlatMatrix a(n);
  fill_spd(a, 100 + static_cast<std::uint64_t>(n));
  FlatMatrix oracle(a);
  ASSERT_EQ(apps::cholesky_seq_flat(n, oracle.data(), blas::ref_kernels()), 0);

  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  CholeskyTasks tt = CholeskyTasks::register_in(rt);
  HyperMatrix h(nb, m, true);
  blocked_from_flat(h, a.data());
  ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::kernels(variant)), 0);
  FlatMatrix result(n);
  flat_from_blocked(result.data(), h);
  EXPECT_LE(max_abs_diff_lower(result, oracle), 2e-2f)
      << "threads=" << threads << " nb=" << nb << " m=" << m;
}

TEST_P(CholeskySuite, FlatOnDemandMatchesOracle) {
  auto [threads, nb, m, variant] = GetParam();
  const int n = nb * m;
  FlatMatrix a(n);
  fill_spd(a, 200 + static_cast<std::uint64_t>(n));
  FlatMatrix oracle(a);
  ASSERT_EQ(apps::cholesky_seq_flat(n, oracle.data(), blas::ref_kernels()), 0);

  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  CholeskyTasks tt = CholeskyTasks::register_in(rt);
  ASSERT_EQ(apps::cholesky_smpss_flat(rt, tt, n, a.data(), m,
                                      blas::kernels(variant)),
            0);
  EXPECT_LE(max_abs_diff_lower(a, oracle), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CholeskySuite,
    ::testing::Values(Param{1, 4, 16, blas::Variant::Ref},
                      Param{4, 4, 16, blas::Variant::Tuned},
                      Param{4, 6, 8, blas::Variant::Tuned},
                      Param{8, 8, 16, blas::Variant::Tuned},
                      Param{8, 5, 24, blas::Variant::Ref},
                      Param{2, 1, 32, blas::Variant::Tuned},
                      Param{8, 16, 8, blas::Variant::Tuned}));

TEST(CholeskyCounts, SpawnedTaskCountMatchesFormula) {
  for (int nb : {1, 2, 4, 6, 8}) {
    Config cfg;
    cfg.num_threads = 4;
    Runtime rt(cfg);
    auto tt = CholeskyTasks::register_in(rt);
    HyperMatrix h(nb, 8, true);
    FlatMatrix a(nb * 8);
    fill_spd(a, 7);
    blocked_from_flat(h, a.data());
    ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);
    EXPECT_EQ(rt.stats().tasks_spawned, apps::cholesky_hyper_task_count(nb))
        << "nb=" << nb;
  }
}

TEST(CholeskyCounts, FlatSpawnsGetsAndPuts) {
  const int nb = 6, m = 8;
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  FlatMatrix a(nb * m);
  fill_spd(a, 8);
  ASSERT_EQ(apps::cholesky_smpss_flat(rt, tt, nb * m, a.data(), m,
                                      blas::ref_kernels()),
            0);
  EXPECT_EQ(rt.stats().tasks_spawned, apps::cholesky_flat_task_count(nb));
}

TEST(CholeskyErrors, NonSpdSurfacesThroughOpaqueFlag) {
  Config cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  HyperMatrix h(2, 8, true);  // all zeros: not positive definite
  EXPECT_NE(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);
}

TEST(CholeskyGraph, SpotrfIsHighPriority) {
  Config cfg;
  cfg.num_threads = 1;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  EXPECT_TRUE(rt.task_types()[tt.spotrf.id].high_priority);
  EXPECT_FALSE(rt.task_types()[tt.sgemm.id].high_priority);
}

TEST(CholeskyFlops, Formula) {
  EXPECT_DOUBLE_EQ(apps::cholesky_flops(2), 8.0 / 3.0);
  EXPECT_GT(apps::cholesky_flops(1024), 3.5e8);
}

}  // namespace
}  // namespace smpss
