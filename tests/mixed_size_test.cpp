// Mixed-size accesses on one datum: tasks that declare different sizes for
// the same base address. The merged-extent invariant says the latest version
// always covers the largest extent ever written — a smaller write inherits
// its predecessor's tail bytes instead of truncating them at copy-back.
// Verified against a sequential oracle with renaming on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config one_thread(bool renaming = true) {
  Config c;
  c.num_threads = 1;
  c.renaming = renaming;
  return c;
}

TEST(MixedSize, CopybackKeepsTailOfSupersededLargerWrite) {
  // Regression: a 1 KiB renamed write superseded by a 128 B write used to
  // copy back only 128 bytes, losing bytes 128..1023 of the larger write.
  Runtime rt(one_thread());
  constexpr std::size_t kBig = 1024, kSmall = 128;
  std::vector<unsigned char> buf(kBig, 0xAA);
  int r = 0;
  // Pending reader forces the big write into renamed storage.
  rt.spawn([](const unsigned char* p, int* o) { *o = p[0]; },
           in(buf.data(), kBig), out(&r));
  rt.spawn([](unsigned char* p) { std::memset(p, 0xBB, kBig); },
           out(buf.data(), kBig));
  rt.spawn([](unsigned char* p) { std::memset(p, 0xCC, kSmall); },
           out(buf.data(), kSmall));
  rt.barrier();
  EXPECT_EQ(r, 0xAA);
  for (std::size_t i = 0; i < kSmall; ++i)
    ASSERT_EQ(buf[i], 0xCC) << "byte " << i;
  for (std::size_t i = kSmall; i < kBig; ++i)
    ASSERT_EQ(buf[i], 0xBB) << "byte " << i;  // the pre-fix loss
}

TEST(MixedSize, WaitOnSeesFullExtentAfterShrinkingWrite) {
  Runtime rt(one_thread());
  constexpr std::size_t kBig = 512, kSmall = 64;
  std::vector<unsigned char> buf(kBig, 0);
  int r = 0;
  rt.spawn([](const unsigned char* p, int* o) { *o = p[0]; },
           in(buf.data(), kBig), out(&r));
  rt.spawn([](unsigned char* p) { std::memset(p, 1, kBig); },
           out(buf.data(), kBig));
  rt.spawn([](unsigned char* p) { std::memset(p, 2, kSmall); },
           out(buf.data(), kSmall));
  rt.wait_on(buf.data());
  for (std::size_t i = 0; i < kSmall; ++i) ASSERT_EQ(buf[i], 2);
  for (std::size_t i = kSmall; i < kBig; ++i) ASSERT_EQ(buf[i], 1);
  rt.barrier();
}

TEST(MixedSize, GrowingInoutReadsPredecessorAndOriginalTail) {
  // inout larger than everything written so far: the body must see the
  // predecessor's bytes where they exist and the program's original bytes
  // beyond them.
  Runtime rt(one_thread());
  constexpr std::size_t kBig = 1024, kSmall = 128;
  std::vector<unsigned char> buf(kBig, 0x11);
  int r = 0;
  bool seen_ok = false;
  rt.spawn([](const unsigned char* p, int* o) { *o = p[0]; },
           in(buf.data(), kSmall), out(&r));
  rt.spawn([](unsigned char* p) { std::memset(p, 0x22, kSmall); },
           out(buf.data(), kSmall));  // renamed (reader pending)
  rt.spawn(
      [](unsigned char* p, bool* ok) {
        bool good = true;
        for (std::size_t i = 0; i < kSmall; ++i) good &= p[i] == 0x22;
        for (std::size_t i = kSmall; i < kBig; ++i) good &= p[i] == 0x11;
        *ok = good;
        std::memset(p, 0x33, kBig);
      },
      inout(buf.data(), kBig), out(&seen_ok));
  rt.barrier();
  EXPECT_TRUE(seen_ok);
  for (std::size_t i = 0; i < kBig; ++i) ASSERT_EQ(buf[i], 0x33);
}

/// Sequential oracle: the same grow/shrink/grow schedule applied directly.
struct OracleOp {
  std::size_t bytes;
  unsigned char fill;
  bool inout_op;  // read-modify-write (adds 1 to each byte, then fills)
};

void apply_sequential(std::vector<unsigned char>& buf,
                      const std::vector<OracleOp>& ops) {
  for (const OracleOp& op : ops) {
    if (op.inout_op)
      for (std::size_t i = 0; i < op.bytes; ++i)
        buf[i] = static_cast<unsigned char>(buf[i] + op.fill);
    else
      for (std::size_t i = 0; i < op.bytes; ++i) buf[i] = op.fill;
  }
}

class MixedSizeOracle : public ::testing::TestWithParam<std::tuple<bool, int>> {
};

TEST_P(MixedSizeOracle, GrowShrinkGrowMatchesSequential) {
  auto [renaming, threads] = GetParam();
  // Sizes cycle grow → shrink → grow again; interleaved readers keep the
  // version chains renaming (when enabled) instead of collapsing in place.
  const std::vector<OracleOp> ops = {
      {64, 3, false},  {512, 5, false}, {96, 7, true},   {1024, 2, false},
      {128, 9, true},  {32, 4, false},  {768, 6, true},  {1024, 1, true},
      {256, 8, false}, {512, 3, true},  {1024, 5, true}, {16, 2, false},
  };
  constexpr std::size_t kBuf = 1024;
  std::vector<unsigned char> expect(kBuf, 0x55);
  apply_sequential(expect, ops);

  Config cfg;
  cfg.num_threads = static_cast<unsigned>(threads);
  cfg.renaming = renaming;
  Runtime rt(cfg);
  std::vector<unsigned char> buf(kBuf, 0x55);
  std::vector<int> sink(ops.size(), 0);
  std::size_t max_written = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OracleOp& op = ops[i];
    if (op.inout_op) {
      rt.spawn(
          [n = op.bytes, f = op.fill](unsigned char* p) {
            for (std::size_t k = 0; k < n; ++k)
              p[k] = static_cast<unsigned char>(p[k] + f);
          },
          inout(buf.data(), op.bytes));
    } else {
      rt.spawn(
          [n = op.bytes, f = op.fill](unsigned char* p) {
            for (std::size_t k = 0; k < n; ++k) p[k] = f;
          },
          out(buf.data(), op.bytes));
    }
    max_written = std::max(max_written, op.bytes);
    // Reader declaring no more than the written extent (reads may not
    // exceed a renamed version's extent); keeps rename pressure up.
    rt.spawn([](const unsigned char* p, int* o) { *o = p[0]; },
             in(buf.data(), max_written), out(&sink[i]));
  }
  rt.barrier();
  EXPECT_EQ(buf, expect);
}

INSTANTIATE_TEST_SUITE_P(
    RenamingAndThreads, MixedSizeOracle,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 4)));

TEST(MixedSize, RepeatedShrinkGrowCyclesStayCorrect) {
  Config cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  constexpr std::size_t kBuf = 4096;
  std::vector<unsigned char> buf(kBuf, 0);
  std::vector<unsigned char> expect(kBuf, 0);
  int sink = 0;
  const std::size_t sizes[] = {4096, 512, 64, 2048, 128, 4096, 16, 1024};
  for (int round = 0; round < 20; ++round) {
    for (std::size_t s : sizes) {
      const auto fill = static_cast<unsigned char>((round * 8 + s) & 0xFF);
      rt.spawn(
          [s, fill](unsigned char* p) {
            for (std::size_t k = 0; k < s; ++k) p[k] = fill;
          },
          out(buf.data(), s));
      for (std::size_t k = 0; k < s; ++k) expect[k] = fill;
      rt.spawn([](const unsigned char* p, int* o) { *o = p[0]; },
               in(buf.data(), 16), out(&sink));
    }
  }
  rt.barrier();
  EXPECT_EQ(buf, expect);
  EXPECT_EQ(rt.rename_pool().current_bytes(), 0u);
}

}  // namespace
}  // namespace smpss
