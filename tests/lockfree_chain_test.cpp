// Targeted races for the lock-free version-chain publication path
// (SMPSS_DEP_LOCKFREE): reader registration racing a retiring writer's
// in-place-reuse decision, version reclamation under churn far beyond the
// slab-pool cache (slot recycling while readers still hold pins), and the
// lockfree_cas_retries stats plumbing. These are primarily TSan targets —
// the CI thread-sanitizer legs run this suite in both dependency modes —
// but every test also checks a deterministic final image.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config nested_config(bool lockfree) {
  Config cfg;
  cfg.num_threads = 8;
  cfg.nested_tasks = true;
  cfg.dep_lockfree = lockfree;
  return cfg;
}

// Regression (memory ordering): Version::register_reader used to bump the
// pending-reader count with a relaxed store that the retiring writer's
// acquire probe was not guaranteed to observe, so a writer deciding storage
// reuse concurrently with a just-registered reader could take the user
// buffer in place and overwrite it under the reader. The registration
// increment and the writer's probe are now a seq_cst Dekker pair: either
// the writer sees the reader (and renames) or the reader's validation sees
// the writer's published version (and re-pins). A miss shows up two ways:
// TSan flags the storage write racing the read, and the seq/mirror
// invariant below breaks (the reader observes a half-applied update).
class LockfreeChain : public ::testing::TestWithParam<bool> {};

TEST_P(LockfreeChain, ReaderRegistrationRacesRetiringWriter) {
  Config cfg = nested_config(GetParam());
  Runtime rt(cfg);
  struct Cell {
    long seq;
    long mirror;  // writers keep mirror == seq; readers check it
  };
  Cell c{0, 0};
  constexpr int kWrites = 1200, kReaderGens = 4, kReads = 400;
  std::atomic<long> torn{0};
  rt.spawn([&rt, &c] {
    for (int i = 0; i < kWrites; ++i)
      rt.spawn(
          [](Cell* p) {
            p->seq += 1;
            p->mirror += 1;
          },
          inout(&c));
  });
  for (int g = 0; g < kReaderGens; ++g) {
    rt.spawn([&rt, &c, &torn] {
      for (int i = 0; i < kReads; ++i)
        rt.spawn(
            [&torn](const Cell* p) {
              if (p->seq != p->mirror)
                torn.fetch_add(1, std::memory_order_relaxed);
            },
            in(&c));
    });
  }
  rt.barrier();
  EXPECT_EQ(torn.load(), 0) << "a reader saw a half-applied in-place write";
  EXPECT_EQ(c.seq, kWrites);
  EXPECT_EQ(c.mirror, kWrites);
}

// Version churn far beyond the pool cache: every round retires two versions
// per lane, so slab slots recycle constantly while concurrent readers and
// wait_on pins race the final release of the versions they read. A
// reclamation bug (freeing under a pin, or resurrecting a recycled slot's
// reference cell inconsistently) corrupts a lane total or trips the
// debug-build refcount asserts; under TSan the use-after-free is flagged
// directly.
TEST_P(LockfreeChain, ReclamationHammerUnderSlotRecycling) {
  Config cfg = nested_config(GetParam());
  cfg.pool_cache = 2;  // tiny per-slot caches: recycling from round one
  Runtime rt(cfg);
  constexpr int kLanes = 8, kRounds = 400;
  std::array<long, kLanes> lanes{};
  std::atomic<long> misreads{0};
  for (int g = 0; g < kLanes; ++g) {
    rt.spawn([&rt, &misreads, p = &lanes[g]] {
      for (int i = 0; i < kRounds; ++i) {
        rt.spawn([](long* q) { *q += 1; }, inout(p));
        rt.spawn(
            [&misreads, i](const long* q) {
              // The pinned version holds at least this round's increment
              // and never more than the lane total.
              if (*q < i + 1 || *q > kRounds)
                misreads.fetch_add(1, std::memory_order_relaxed);
            },
            in(p));
      }
    });
  }
  // Main thread pins latest versions from outside while they are dying.
  for (int i = 0; i < 200; ++i) rt.wait_on(&lanes[i % kLanes]);
  rt.barrier();
  EXPECT_EQ(misreads.load(), 0);
  for (long v : lanes) ASSERT_EQ(v, kRounds);
}

INSTANTIATE_TEST_SUITE_P(DepModes, LockfreeChain, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "lockfree" : "locked";
                         });

TEST(LockfreeStats, CasRetryCounterPlumbedAndZeroWhenLocked) {
  // The retry counter is a striped sum: it must survive the snapshot path
  // and the JSON exporter, and the locked fallback must never count (no CAS
  // loop runs there). Retries in lock-free mode are scheduling-dependent,
  // so only non-negativity/plumbing is asserted on that side.
  for (const bool lockfree : {true, false}) {
    Config cfg = nested_config(lockfree);
    cfg.num_threads = 4;
    Runtime rt(cfg);
    long shared = 0;
    for (int g = 0; g < 4; ++g)
      rt.spawn([&rt, &shared] {
        for (int i = 0; i < 200; ++i)
          rt.spawn([](long* p) { *p += 1; }, inout(&shared));
      });
    rt.barrier();
    EXPECT_EQ(shared, 800);
    const StatsSnapshot s = rt.stats();
    if (!lockfree) EXPECT_EQ(s.lockfree_cas_retries, 0u);
    const std::string json = rt.stats_json();
    EXPECT_NE(json.find("\"lockfree_cas_retries\":"), std::string::npos);
  }
}

}  // namespace
}  // namespace smpss
