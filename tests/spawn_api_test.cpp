// Public spawn-API surface tests: every parameter-wrapper kind and
// combination, const-correctness, argument ordering, struct payloads,
// region wrappers, function pointers vs lambdas vs functors.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

Config two_threads() {
  Config c;
  c.num_threads = 2;
  return c;
}

void free_function_body(const int* a, int* b) { *b = *a * 3; }

struct FunctorBody {
  int factor;
  void operator()(const int* a, int* b) const { *b = *a * factor; }
};

TEST(SpawnApi, FreeFunction) {
  Runtime rt(two_threads());
  int x = 5, y = 0;
  rt.spawn(free_function_body, in(&x), out(&y));
  rt.barrier();
  EXPECT_EQ(y, 15);
}

TEST(SpawnApi, Functor) {
  Runtime rt(two_threads());
  int x = 5, y = 0;
  rt.spawn(FunctorBody{7}, in(&x), out(&y));
  rt.barrier();
  EXPECT_EQ(y, 35);
}

TEST(SpawnApi, CapturingLambda) {
  Runtime rt(two_threads());
  int x = 5, y = 0;
  int bonus = 100;
  rt.spawn([bonus](const int* a, int* b) { *b = *a + bonus; }, in(&x),
           out(&y));
  rt.barrier();
  EXPECT_EQ(y, 105);
}

TEST(SpawnApi, ArgumentOrderMatchesWrapperOrder) {
  Runtime rt(two_threads());
  int a = 1, b = 2, c = 3;
  int r = 0;
  // Mixed wrapper kinds; positional correspondence must hold.
  rt.spawn(
      [](const int* pa, const int& vb, int* pc, int* result) {
        *result = *pa * 100 + vb * 10 + *pc;
      },
      in(&a), value(b), inout(&c), out(&r));
  rt.barrier();
  EXPECT_EQ(r, 123);
}

TEST(SpawnApi, ValueStructPayload) {
  struct Payload {
    std::array<int, 8> data;
    int len;
  };
  Runtime rt(two_threads());
  Payload p{};
  for (int i = 0; i < 8; ++i) p.data[static_cast<std::size_t>(i)] = i;
  p.len = 8;
  long sum = 0;
  rt.spawn(
      [](const Payload& pl, long* s) {
        for (int i = 0; i < pl.len; ++i) *s += pl.data[static_cast<std::size_t>(i)];
      },
      value(p), out(&sum));
  // Mutating the original after spawn must not affect the task's copy.
  p.data[0] = 999;
  rt.barrier();
  EXPECT_EQ(sum, 28);
}

TEST(SpawnApi, OpaqueConstPointer) {
  Runtime rt(two_threads());
  const int magic = 42;
  int r = 0;
  rt.spawn([](const int* m, int* out_p) { *out_p = *m; }, opaque(&magic),
           out(&r));
  rt.barrier();
  EXPECT_EQ(r, 42);
}

TEST(SpawnApi, EightParameters) {
  Runtime rt(two_threads());
  int a = 1, b = 2, c = 3, d = 4;
  int w = 0, x = 0, y = 0, z = 0;
  rt.spawn(
      [](const int* pa, const int* pb, const int* pc, const int* pd, int* pw,
         int* px, int* py, int* pz) {
        *pw = *pa;
        *px = *pb;
        *py = *pc;
        *pz = *pd;
      },
      in(&a), in(&b), in(&c), in(&d), out(&w), out(&x), out(&y), out(&z));
  rt.barrier();
  EXPECT_EQ(w + x * 10 + y * 100 + z * 1000, 4321);
}

TEST(SpawnApi, ArrayCountSemantics) {
  Runtime rt(two_threads());
  std::vector<double> src(100, 1.5);
  double sum = 0;
  rt.spawn(
      [](const double* s, double* total) {
        for (int i = 0; i < 100; ++i) *total += s[i];
      },
      in(src.data(), src.size()), out(&sum));
  rt.barrier();
  EXPECT_DOUBLE_EQ(sum, 150.0);
}

TEST(SpawnApi, RegionWrapperPassesBasePointer) {
  Runtime rt(two_threads());
  std::vector<int> arr(64, 0);
  int* base = arr.data();
  bool base_matched = false;
  rt.spawn(
      [base, &base_matched](int* p) {
        base_matched = (p == base);
        p[10] = 7;
      },
      out(base, Region{{Bound::closed(10, 20)}}));
  rt.barrier();
  EXPECT_TRUE(base_matched);  // regions never relocate data
  EXPECT_EQ(arr[10], 7);
}

TEST(SpawnApi, MixedRegionAndScalarParams) {
  Runtime rt(two_threads());
  std::vector<long> data(32);
  for (int i = 0; i < 32; ++i) data[static_cast<std::size_t>(i)] = i;
  long total = 0;
  rt.spawn(
      [](const long* d, const long& lo, const long& hi, long* out_sum) {
        for (long i = lo; i <= hi; ++i) *out_sum += d[i];
      },
      in(data.data(), Region{{Bound::closed(4, 7)}}), value(4L), value(7L),
      out(&total));
  rt.barrier();
  EXPECT_EQ(total, 4 + 5 + 6 + 7);
}

TEST(SpawnApi, AnonymousAndNamedTypesCoexist) {
  Runtime rt(two_threads());
  TaskType named = rt.register_task_type("named");
  int x = 0, y = 0;
  rt.spawn([](int* p) { *p = 1; }, out(&x));                // type 0
  rt.spawn(named, [](int* p) { *p = 2; }, out(&y));
  rt.barrier();
  EXPECT_EQ(x, 1);
  EXPECT_EQ(y, 2);
}

TEST(SpawnApi, MutableLambdaState) {
  Runtime rt(two_threads());
  int x = 0;
  // Each task instance owns its closure; mutable state is per-instance.
  for (int i = 0; i < 3; ++i)
    rt.spawn([count = 10](int* p) mutable { *p += ++count; }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, 33);
}

TEST(SpawnApi, ConstSourceBuffers) {
  Runtime rt(two_threads());
  static const int table[4] = {10, 20, 30, 40};
  int r = 0;
  rt.spawn([](const int* t, int* out_p) { *out_p = t[2]; }, in(table, 4),
           out(&r));
  rt.barrier();
  EXPECT_EQ(r, 30);
}

TEST(SpawnApi, CommutativeWrapperSingleObject) {
  Runtime rt(two_threads());
  std::int64_t x = 0;
  for (int i = 0; i < 16; ++i)
    rt.spawn([](std::int64_t* p) { *p += 2; }, commutative(&x));
  rt.barrier();
  EXPECT_EQ(x, 32);
}

TEST(SpawnApi, ReductionWrapperWithValueParam) {
  Runtime rt(two_threads());
  std::int64_t sum = 0;
  for (int i = 0; i < 10; ++i)
    rt.spawn([](const int& k, std::int64_t* p) { *p += k; }, value(i),
             reduction(Plus{}, &sum));
  rt.barrier();
  EXPECT_EQ(sum, 45);
}

TEST(SpawnApi, TaskAttrsWeightAndName) {
  Runtime rt(two_threads());
  TaskType heavy = rt.register_task_type("heavy_kernel");
  EXPECT_EQ(rt.find_task_type("heavy_kernel").id, heavy.id);
  EXPECT_EQ(rt.find_task_type("no_such_type").id, 0u);  // fallback

  int x = 0, y = 0;
  // Explicit type + weight hint.
  rt.spawn(TaskAttrs{5000, nullptr}, heavy, [](int* p) { *p = 1; }, out(&x));
  // Type resolved by name through the attrs.
  rt.spawn(TaskAttrs{0, "heavy_kernel"}, [](int* p) { *p = 2; }, out(&y));
  rt.barrier();
  EXPECT_EQ(x, 1);
  EXPECT_EQ(y, 2);
}

// The pre-TaskAttrs positional overloads are compatibility shims over the
// attrs funnel: the same program through both spellings must be bit-exact.
TEST(SpawnApi, PositionalShimBitExactVsTypedAttrs) {
  const auto run = [](bool with_attrs) {
    Runtime rt(two_threads());
    TaskType step = rt.register_task_type("shim_step");
    std::int64_t acc = 1;
    for (int i = 1; i <= 12; ++i) {
      const auto body = [i](std::int64_t* p) { *p = *p * 31 + i; };
      if (with_attrs)
        rt.spawn(TaskAttrs{static_cast<std::uint64_t>(i), "shim_step"},
                 body, inout(&acc));
      else
        rt.spawn(step, body, inout(&acc));
    }
    rt.barrier();
    return acc;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SpawnApiDeath, NullPointerParameterAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ASSERT_DEATH(
      {
        Config c;
        c.num_threads = 1;
        Runtime rt(c);
        int* bad = nullptr;
        rt.spawn([](int* p) { *p = 1; }, out(bad));
        rt.barrier();
      },
      "null pointer");
}

TEST(SpawnApiDeath, RegisterTypeOffMainThreadAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ASSERT_DEATH(
      {
        Config c;
        c.num_threads = 1;
        Runtime rt(c);
        std::thread([&rt] { rt.register_task_type("illegal"); }).join();
      },
      "main-thread-only");
}

}  // namespace
}  // namespace smpss
