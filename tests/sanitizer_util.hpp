// Build-sanitizer detection for the suites whose coverage depends on it.
//
// The multi-process backend fork()s worker ranks that then start their own
// runtime threads. ThreadSanitizer does not support threads created in a
// forked child (die_after_fork), so every fork-based test and fuzz draw
// skips itself under TSan — the single-process conformance sweeps cover the
// same dataflow there. ASan/UBSan handle fork + threads fine and keep the
// coverage.
#pragma once

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SMPSS_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SMPSS_TSAN_BUILD 1
#endif
#ifndef SMPSS_TSAN_BUILD
#define SMPSS_TSAN_BUILD 0
#endif

namespace smpss::testing {

/// True when this build can fork worker ranks that spawn threads.
constexpr bool fork_backend_supported() { return SMPSS_TSAN_BUILD == 0; }

}  // namespace smpss::testing
