// Paper-exact reproductions of the in-text numbers:
//
//  * Fig. 5: a 6x6 blocked Cholesky generates exactly 56 tasks; "after
//    running tasks 1 and 6, the runtime is able to start executing task 51"
//    — i.e. the full ancestor closure of task 51 is {1, 6}.
//  * Sec. VI: the flat-matrix Cholesky sweep task counts. The paper quotes
//    374,272 and 49,920 tasks; these equal the Fig. 9 algorithm's spawn
//    count (compute tasks + one get and one put per lower-triangle block)
//    for 128 and 64 blocks per side respectively — verified here both
//    against the closed formula and by running the real code.
#include <gtest/gtest.h>

#include "apps/cholesky.hpp"
#include "graph/graph_stats.hpp"
#include "hyper/flat_matrix.hpp"

namespace smpss {
namespace {

using apps::CholeskyTasks;

TEST(Fig5, SixBySixCholeskyHas56Tasks) {
  EXPECT_EQ(apps::cholesky_hyper_task_count(6), 56u);

  Config cfg;
  cfg.num_threads = 1;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  HyperMatrix h(6, 8, true);
  FlatMatrix a(48);
  fill_spd(a, 55);
  blocked_from_flat(h, a.data());
  ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);

  const auto& rec = rt.graph_recorder();
  EXPECT_EQ(rec.nodes().size(), 56u);

  auto stats = analyze_graph(rec);
  EXPECT_EQ(stats.nodes, 56u);
  // Renaming means only true dependencies: the left-looking factorization
  // of 6 blocks has a critical path through all 6 panel steps.
  EXPECT_GE(stats.critical_path, 6u);
}

TEST(Fig5, Task51StartsAfterTasks1And6) {
  Config cfg;
  cfg.num_threads = 1;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  HyperMatrix h(6, 8, true);
  FlatMatrix a(48);
  fill_spd(a, 56);
  blocked_from_flat(h, a.data());
  ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);

  const auto& rec = rt.graph_recorder();
  // Direct predecessors: task 51 (the first ssyrk of the last panel) reads
  // A[5][0], produced by task 6 = strsm(A[0][0], A[5][0]).
  EXPECT_EQ(predecessors_of(rec, 51), (std::vector<std::uint64_t>{6}));
  // Task 6 in turn needs only task 1 (spotrf of A[0][0]).
  EXPECT_EQ(predecessors_of(rec, 6), (std::vector<std::uint64_t>{1}));
  // Full ancestor closure: {1, 6} — exactly the paper's claim.
  EXPECT_EQ(ancestor_closure(rec, 51), (std::vector<std::uint64_t>{1, 6}));
  // And task 1 is a root.
  EXPECT_TRUE(predecessors_of(rec, 1).empty());
}

TEST(Fig5, TaskTypeMixMatchesAlgorithm) {
  Config cfg;
  cfg.num_threads = 1;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  HyperMatrix h(6, 8, true);
  FlatMatrix a(48);
  fill_spd(a, 57);
  blocked_from_flat(h, a.data());
  ASSERT_EQ(apps::cholesky_smpss_hyper(rt, tt, h, blas::ref_kernels()), 0);
  auto stats = analyze_graph(rt.graph_recorder());
  ASSERT_GT(stats.per_type_counts.size(), tt.sgemm.id);
  EXPECT_EQ(stats.per_type_counts[tt.spotrf.id], 6u);    // one per panel
  EXPECT_EQ(stats.per_type_counts[tt.strsm.id], 15u);    // n(n-1)/2
  EXPECT_EQ(stats.per_type_counts[tt.ssyrk.id], 15u);    // n(n-1)/2
  EXPECT_EQ(stats.per_type_counts[tt.sgemm.id], 20u);    // sum j(n-1-j)
}

TEST(SecVI, QuotedTaskCountsMatchFlatCholesky) {
  // 8192^2 floats: the paper quotes 49,920 tasks and 374,272 tasks for its
  // block-size sweep. Those are the Fig. 9 spawn counts for 64 and 128
  // blocks per side (the algorithm adds one get per distinct lower-triangle
  // block and one put per block to the 45,760- and 357,760-task
  // factorizations).
  EXPECT_EQ(apps::cholesky_flat_task_count(64), 49920u);
  EXPECT_EQ(apps::cholesky_flat_task_count(128), 374272u);
}

TEST(SecVI, FormulaMatchesRealSpawnCountAtScale) {
  // Run the real Fig. 9 code with 64 blocks per side (tiny 4x4 blocks so
  // the run stays fast) and compare the spawned-task statistic.
  const int nb = 64, m = 4, n = nb * m;
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  auto tt = CholeskyTasks::register_in(rt);
  FlatMatrix a(n);
  fill_spd(a, 60);
  ASSERT_EQ(apps::cholesky_smpss_flat(rt, tt, n, a.data(), m,
                                      blas::tuned_kernels()),
            0);
  EXPECT_EQ(rt.stats().tasks_spawned, 49920u);
}

TEST(SecVI, HyperCountFormulaClosedForm) {
  // Independent closed form: n potrf + n(n-1) trsm/syrk + C(n,3)... the
  // gemm term sum_j j(n-1-j) equals n(n-1)(n-2)/6.
  for (int nb : {2, 3, 6, 10, 64, 128}) {
    std::uint64_t n = static_cast<std::uint64_t>(nb);
    std::uint64_t expect = n + n * (n - 1) + n * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(apps::cholesky_hyper_task_count(nb), expect) << nb;
  }
}

}  // namespace
}  // namespace smpss
