// Heat-diffusion (2-D Jacobi over regions) tests: bit-exact agreement with
// the sequential sweep across band sizes, thread counts, and step counts;
// wavefront dependency structure sanity.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "apps/heat.hpp"
#include "graph/graph_stats.hpp"

namespace smpss {
namespace {

using Param = std::tuple<unsigned, int, int, int>;  // threads, n, steps, band

class HeatSuite : public ::testing::TestWithParam<Param> {};

TEST_P(HeatSuite, MatchesSequentialBitExact) {
  auto [threads, n, steps, band] = GetParam();
  std::vector<float> a_seq(static_cast<std::size_t>(n) * n),
      b_seq(static_cast<std::size_t>(n) * n);
  apps::heat_init(n, a_seq.data());
  std::fill(b_seq.begin(), b_seq.end(), 0.0f);
  apps::heat_seq(n, a_seq.data(), b_seq.data(), steps);
  const float* expect = apps::heat_result(a_seq.data(), b_seq.data(), steps);

  std::vector<float> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n);
  apps::heat_init(n, a.data());
  std::fill(b.begin(), b.end(), 0.0f);
  Config cfg;
  cfg.num_threads = threads;
  Runtime rt(cfg);
  auto tt = apps::HeatTasks::register_in(rt);
  apps::heat_smpss_regions(rt, tt, n, a.data(), b.data(), steps, band);
  const float* got = apps::heat_result(a.data(), b.data(), steps);

  // Same arithmetic per cell: results must be *identical*, not just close.
  for (std::size_t i = 0; i < static_cast<std::size_t>(n) * n; ++i)
    ASSERT_EQ(got[i], expect[i]) << "cell " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeatSuite,
    ::testing::Values(Param{1, 32, 4, 8}, Param{4, 32, 5, 8},
                      Param{8, 64, 10, 16}, Param{8, 64, 10, 7},  // ragged band
                      Param{4, 16, 3, 1},   // one row per task
                      Param{8, 48, 1, 48},  // single band = sequential sweep
                      Param{2, 33, 6, 5})); // odd grid

TEST(HeatStructure, WavefrontDependencies) {
  const int n = 32, steps = 3, band = 8;
  std::vector<float> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n, 0.0f);
  apps::heat_init(n, a.data());
  Config cfg;
  // One thread: nothing executes until the barrier, so every dependency is
  // recorded (with workers racing ahead, tasks that finish before their
  // consumers are spawned leave no edge — correct, but nondeterministic).
  cfg.num_threads = 1;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = apps::HeatTasks::register_in(rt);
  apps::heat_smpss_regions(rt, tt, n, a.data(), b.data(), steps, band);

  auto gs = analyze_graph(rt.graph_recorder());
  const std::size_t bands = (n - 2 + band - 1) / band;
  EXPECT_EQ(gs.nodes, bands * steps);
  // First sweep's bands are all roots (no prior writes).
  EXPECT_EQ(gs.roots, bands);
  // The critical path spans the sweeps.
  EXPECT_EQ(gs.critical_path, static_cast<std::size_t>(steps));
  // A middle band of sweep 2 depends on up to three bands of sweep 1.
  auto preds = predecessors_of(rt.graph_recorder(), bands + 2);
  EXPECT_GE(preds.size(), 2u);
  EXPECT_LE(preds.size(), 3u);
}

TEST(HeatPhysics, DiffusionSmoothsAndConserves) {
  const int n = 64;
  std::vector<float> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n, 0.0f);
  apps::heat_init(n, a.data());
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  auto tt = apps::HeatTasks::register_in(rt);
  apps::heat_smpss_regions(rt, tt, n, a.data(), b.data(), 50, 8);
  const float* g = apps::heat_result(a.data(), b.data(), 50);
  // Interior warms up from the hot edge; values stay within source bounds.
  float interior = g[static_cast<std::size_t>(n / 2) * n + n / 2];
  EXPECT_GT(interior, 0.0f);
  for (std::size_t i = 0; i < static_cast<std::size_t>(n) * n; ++i) {
    EXPECT_GE(g[i], 0.0f);
    EXPECT_LE(g[i], 100.0f);
  }
}

}  // namespace
}  // namespace smpss
