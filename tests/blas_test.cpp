// BLAS substrate validation: every kernel in both variants against a
// double-precision naive oracle, across block sizes including awkward odd
// ones; algebraic properties (potrf reconstruction, trsm inverse); and the
// threaded-BLAS baselines against sequential results.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "blas/kernels.hpp"
#include "blas/threaded_blas.hpp"
#include "common/rng.hpp"
#include "hyper/flat_matrix.hpp"

namespace smpss {
namespace {

std::vector<float> random_block(int m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> b(static_cast<std::size_t>(m) * m);
  for (auto& v : b) v = 2.0f * rng.next_float() - 1.0f;
  return b;
}

std::vector<float> spd_block(int m, std::uint64_t seed) {
  auto r = random_block(m, seed);
  std::vector<float> a(static_cast<std::size_t>(m) * m, 0.0f);
  // a = r r^T / m + 2 I : SPD and well-conditioned in float.
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j) {
      double acc = 0;
      for (int k = 0; k < m; ++k)
        acc += static_cast<double>(r[i * m + k]) * r[j * m + k];
      a[i * m + j] = static_cast<float>(acc / m);
    }
  for (int i = 0; i < m; ++i) a[i * m + i] += 2.0f;
  return a;
}

float max_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

using KParam = std::tuple<blas::Variant, int>;  // variant, block size

class KernelSuite : public ::testing::TestWithParam<KParam> {
 protected:
  const blas::Kernels& k() const { return blas::kernels(std::get<0>(GetParam())); }
  int m() const { return std::get<1>(GetParam()); }
  float tol() const { return 1e-3f * static_cast<float>(m()); }
};

TEST_P(KernelSuite, GemmNtMinusMatchesOracle) {
  auto a = random_block(m(), 1), b = random_block(m(), 2),
       c = random_block(m(), 3);
  auto expect = c;
  for (int i = 0; i < m(); ++i)
    for (int j = 0; j < m(); ++j) {
      double acc = 0;
      for (int kk = 0; kk < m(); ++kk)
        acc += static_cast<double>(a[i * m() + kk]) * b[j * m() + kk];
      expect[i * m() + j] = static_cast<float>(expect[i * m() + j] - acc);
    }
  k().gemm_nt_minus(m(), a.data(), b.data(), c.data());
  EXPECT_LE(max_diff(c, expect), tol());
}

TEST_P(KernelSuite, GemmNnAccMatchesOracle) {
  auto a = random_block(m(), 4), b = random_block(m(), 5),
       c = random_block(m(), 6);
  auto expect = c;
  for (int i = 0; i < m(); ++i)
    for (int j = 0; j < m(); ++j) {
      double acc = 0;
      for (int kk = 0; kk < m(); ++kk)
        acc += static_cast<double>(a[i * m() + kk]) * b[kk * m() + j];
      expect[i * m() + j] = static_cast<float>(expect[i * m() + j] + acc);
    }
  k().gemm_nn_acc(m(), a.data(), b.data(), c.data());
  EXPECT_LE(max_diff(c, expect), tol());
}

TEST_P(KernelSuite, SyrkLowerMatchesOracle) {
  auto a = random_block(m(), 7), c = random_block(m(), 8);
  auto expect = c;
  for (int i = 0; i < m(); ++i)
    for (int j = 0; j <= i; ++j) {
      double acc = 0;
      for (int kk = 0; kk < m(); ++kk)
        acc += static_cast<double>(a[i * m() + kk]) * a[j * m() + kk];
      expect[i * m() + j] = static_cast<float>(expect[i * m() + j] - acc);
    }
  k().syrk_ln_minus(m(), a.data(), c.data());
  // Lower triangle updated, upper untouched.
  for (int i = 0; i < m(); ++i)
    for (int j = 0; j < m(); ++j)
      EXPECT_NEAR(c[i * m() + j], expect[i * m() + j], tol())
          << "(" << i << "," << j << ")";
}

TEST_P(KernelSuite, PotrfReconstructs) {
  auto a = spd_block(m(), 9);
  auto orig = a;
  ASSERT_EQ(k().potrf_ln(m(), a.data()), 0);
  // L L^T must reproduce the lower triangle of the original.
  for (int i = 0; i < m(); ++i)
    for (int j = 0; j <= i; ++j) {
      double acc = 0;
      for (int kk = 0; kk <= j; ++kk)
        acc += static_cast<double>(a[i * m() + kk]) * a[j * m() + kk];
      EXPECT_NEAR(acc, orig[i * m() + j], tol()) << i << "," << j;
    }
}

TEST_P(KernelSuite, PotrfRejectsNonPositive) {
  std::vector<float> a(static_cast<std::size_t>(m()) * m(), 0.0f);
  a[0] = -1.0f;
  EXPECT_NE(k().potrf_ln(m(), a.data()), 0);
}

TEST_P(KernelSuite, TrsmSolvesAgainstL) {
  auto spd = spd_block(m(), 10);
  ASSERT_EQ(k().potrf_ln(m(), spd.data()), 0);  // spd now holds L (lower)
  auto x = random_block(m(), 11);
  auto orig = x;
  k().trsm_rltn(m(), spd.data(), x.data());
  // X_new L^T == X_orig, i.e. (X_new L^T)[i][j] = sum_{k<=j} X[i][k] L[j][k].
  for (int i = 0; i < m(); ++i)
    for (int j = 0; j < m(); ++j) {
      double acc = 0;
      for (int kk = 0; kk <= j; ++kk)
        acc += static_cast<double>(x[i * m() + kk]) * spd[j * m() + kk];
      EXPECT_NEAR(acc, orig[i * m() + j], tol()) << i << "," << j;
    }
}

TEST_P(KernelSuite, AddSub) {
  auto a = random_block(m(), 12), b = random_block(m(), 13);
  std::vector<float> c(a.size());
  k().add(m(), a.data(), b.data(), c.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_FLOAT_EQ(c[i], a[i] + b[i]);
  k().sub(m(), a.data(), b.data(), c.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_FLOAT_EQ(c[i], a[i] - b[i]);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSizes, KernelSuite,
    ::testing::Combine(::testing::Values(blas::Variant::Ref,
                                         blas::Variant::Tuned),
                       ::testing::Values(1, 2, 3, 5, 8, 17, 32, 33, 64)),
    [](const auto& info) {
      return std::string(blas::to_string(std::get<0>(info.param))) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

TEST(KernelVariants, TunedAgreesWithRef) {
  for (int m : {16, 31, 64}) {
    auto a = random_block(m, 20), b = random_block(m, 21);
    auto c1 = random_block(m, 22);
    auto c2 = c1;
    blas::ref_kernels().gemm_nt_minus(m, a.data(), b.data(), c1.data());
    blas::tuned_kernels().gemm_nt_minus(m, a.data(), b.data(), c2.data());
    EXPECT_LE(max_diff(c1, c2), 1e-3f * static_cast<float>(m));
  }
}

// --- Threaded baselines -----------------------------------------------------------

class ThreadedBlasSuite : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadedBlasSuite, GemmMatchesSequential) {
  const int n = 96;
  FlatMatrix a(n), b(n), c_par(n), c_seq(n);
  fill_random(a, 1);
  fill_random(b, 2);
  blas::ThreadedBlas tb(GetParam(), blas::Variant::Tuned);
  tb.gemm_nn_acc_flat(n, a.data(), b.data(), c_par.data());
  blas::ref_kernels().gemm_nn_acc(n, a.data(), b.data(), c_seq.data());
  EXPECT_LE(max_abs_diff(c_par, c_seq), 1e-2f);
}

TEST_P(ThreadedBlasSuite, CholeskyMatchesSequential) {
  const int n = 128, bs = 32;
  FlatMatrix a(n);
  fill_spd(a, 3);
  FlatMatrix b(a);
  blas::ThreadedBlas tb(GetParam(), blas::Variant::Tuned);
  ASSERT_EQ(tb.potrf_ln_flat(n, a.data(), bs), 0);
  ASSERT_EQ(blas::ref_kernels().potrf_ln(n, b.data()), 0);
  EXPECT_LE(max_abs_diff_lower(a, b), 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedBlasSuite,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace smpss
