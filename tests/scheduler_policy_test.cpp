// Scheduler-behavior tests at the Runtime level: locality (chains stay on
// the worker that satisfied their last dependency), high-priority
// dispatching, work distribution across workers, and stealing under
// imbalance — the observable consequences of the Sec. III policy.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {

namespace {

/// Busy work the optimizer cannot collapse (a plain `*p += 1` loop folds to
/// one add, making every "long" task instantaneous and the distribution
/// assertions meaningless).
void burn_cycles(int iters, long* sink) {
  long acc = *sink;
  for (int k = 0; k < iters; ++k) asm volatile("" : "+r"(acc));
  *sink = acc + iters;
}

}  // namespace

namespace {

TEST(SchedulerPolicy, ChainStaysOnOneWorkerMostly) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  constexpr int kLen = 400;
  // A single dependency chain with bodies long enough that the graph stays
  // ahead of execution: each newly-ready task lands in the finishing
  // worker's own list and should be consumed from there (LIFO), not stolen.
  long x = 0;
  std::vector<std::thread::id> executor(kLen);
  for (int i = 0; i < kLen; ++i)
    rt.spawn(
        [i, &executor](long* p) {
          executor[static_cast<std::size_t>(i)] = std::this_thread::get_id();
          burn_cycles(20000, p);
        },
        inout(&x));
  rt.barrier();
  EXPECT_EQ(x, static_cast<long>(kLen) * 20000);
  // Count executor changes along the chain; locality scheduling keeps the
  // majority of steps on the same thread. The bound is deliberately loose:
  // OS preemption legitimately migrates the chain occasionally.
  int migrations = 0;
  for (int i = 1; i < kLen; ++i)
    if (executor[static_cast<std::size_t>(i)] !=
        executor[static_cast<std::size_t>(i - 1)])
      ++migrations;
  EXPECT_LT(migrations, kLen / 2) << "chain bounced between workers";
  // A chain step stays local two ways: popped from the finisher's own list
  // (LIFO) or chained directly out of the completion without touching the
  // lists at all (Config::chain_depth, the default retire fast path).
  auto s = rt.stats();
  EXPECT_GT(s.acquired_own + s.chained_executions,
            static_cast<std::uint64_t>(kLen) / 3);
}

TEST(SchedulerPolicy, IndependentWorkSpreadsAcrossWorkers) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  constexpr int kTasks = 256;
  std::vector<std::thread::id> executor(kTasks);
  std::vector<long> sinks(kTasks, 0);
  for (int i = 0; i < kTasks; ++i)
    rt.spawn(
        [i, &executor](long* p) {
          executor[static_cast<std::size_t>(i)] = std::this_thread::get_id();
          *p = 0;
          burn_cycles(200000, p);
        },
        out(&sinks[i]));
  rt.barrier();
  std::set<std::thread::id> distinct(executor.begin(), executor.end());
  EXPECT_GE(distinct.size(), 4u) << "independent work did not spread";
}

TEST(SchedulerPolicy, StealingKicksInOnImbalance) {
  Config cfg;
  cfg.num_threads = 8;
  Runtime rt(cfg);
  // One long chain (lives on one worker) releasing a burst of wide work at
  // each step: other workers can only get it by stealing from the chain
  // owner's list. The bursts are batched into the owner's deque in one
  // publication (batched release), so each step must leave enough work on
  // the table — for long enough — that sleeping workers (bounded 500us
  // re-poll) reliably wake and steal even on a loaded CI host.
  long chain = 0;
  std::vector<long> lanes(64, 0);
  for (int step = 0; step < 30; ++step) {
    rt.spawn([](long* c) { burn_cycles(10000, c); }, inout(&chain));
    for (int w = 0; w < 64; ++w)
      rt.spawn(
          [](const long* c, long* lane) {
            burn_cycles(20000, lane);
            (void)c;
          },
          in(&chain), inout(&lanes[w]));
  }
  rt.barrier();
  EXPECT_EQ(chain, 300000);
  for (long v : lanes) EXPECT_EQ(v, 30 * 20000);
  EXPECT_GT(rt.stats().steals, 0u);
}

/// Body of the jump-the-queue scenario, reused by the chain-depth sweep: a
/// deliberately blocked worker, queued normal tasks, then an urgent one that
/// must overtake most of them — chaining must never let a normal-priority
/// chain starve the high-priority list.
void run_high_priority_jump(Config cfg) {
  cfg.num_threads = 2;
  Runtime rt(cfg);
  TaskType urgent = rt.register_task_type("urgent", true);

  std::atomic<int> order_counter{0};
  std::atomic<int> urgent_rank{-1};
  std::vector<std::atomic<int>> normal_rank(8);
  for (auto& r : normal_rank) r.store(-1);

  std::atomic<bool> release{false};
  static int dummy_src = 0;
  // Occupy the worker.
  rt.spawn(
      [&release](const int* dummy) {
        (void)dummy;
        while (!release.load(std::memory_order_acquire)) {
        }
      },
      opaque(&dummy_src));  // opaque dummy: no dependencies
  // Queue normal work, then an urgent task.
  for (int i = 0; i < 8; ++i)
    rt.spawn(
        [i, &normal_rank, &order_counter](const int* d) {
          (void)d;
          normal_rank[static_cast<std::size_t>(i)].store(
              order_counter.fetch_add(1));
        },
        opaque(&dummy_src));
  rt.spawn(urgent,
           [&urgent_rank, &order_counter](const int* d) {
             (void)d;
             urgent_rank.store(order_counter.fetch_add(1));
           },
           opaque(&dummy_src));
  release.store(true, std::memory_order_release);
  rt.barrier();

  // The urgent task ran before at least most of the earlier-queued normal
  // tasks (exact rank 0 is not guaranteed: the worker may already have
  // grabbed one normal task when the urgent one arrived; the main thread
  // also participates).
  int beaten = 0;
  for (auto& r : normal_rank)
    if (urgent_rank.load() < r.load()) ++beaten;
  EXPECT_GE(beaten, 5) << "high-priority task did not jump the queue "
                       << "(chain_depth=" << cfg.chain_depth << ")";
}

TEST(SchedulerPolicy, HighPriorityJumpsTheQueue) {
  run_high_priority_jump(Config{});  // default chain depth (bounded on)
}

/// Dependency-oracle program shared by the chain-depth sweep: a mixed graph
/// (private chains, a shared reduction chain, and fan-out readers) whose
/// final state is computed independently; any mis-ordered release — e.g. a
/// chain running a successor before its last dependency really cleared, or
/// a batched release dropping a task — corrupts the deterministic result.
void run_dependency_oracle(Config cfg) {
  cfg.num_threads = 4;
  Runtime rt(cfg);
  // Unsigned lanes: 60 steps of *3 wrap — defined for unsigned, and the
  // oracle wraps identically (the UBSan CI leg rejects the signed variant).
  constexpr int kLanes = 8;
  constexpr int kSteps = 60;
  std::vector<unsigned long> lanes(kLanes, 0);
  unsigned long total = 0;
  for (int step = 0; step < kSteps; ++step) {
    for (int l = 0; l < kLanes; ++l)
      rt.spawn(
          [step](unsigned long* p) {
            *p = *p * 3 + static_cast<unsigned>(step);
          },
          inout(&lanes[l]));
    // Reduction over all lanes: a fan-in whose completion releases the next
    // round's fan-out (multi-successor batched release).
    for (int l = 0; l < kLanes; ++l)
      rt.spawn([](const unsigned long* p, unsigned long* acc) {
        *acc += *p % 7;
      }, in(&lanes[l]), inout(&total));
  }
  rt.barrier();

  // Sequential oracle.
  std::vector<unsigned long> olanes(kLanes, 0);
  unsigned long ototal = 0;
  for (int step = 0; step < kSteps; ++step) {
    for (int l = 0; l < kLanes; ++l)
      olanes[l] = olanes[l] * 3 + static_cast<unsigned>(step);
    for (int l = 0; l < kLanes; ++l) ototal += olanes[l] % 7;
  }
  for (int l = 0; l < kLanes; ++l)
    EXPECT_EQ(lanes[l], olanes[l]) << "lane " << l << " diverged from the "
                                   << "oracle (chain_depth="
                                   << cfg.chain_depth << ")";
  EXPECT_EQ(total, ototal) << "reduction diverged from the oracle "
                           << "(chain_depth=" << cfg.chain_depth << ")";

  auto s = rt.stats();
  EXPECT_EQ(s.tasks_executed, s.tasks_spawned);
  if (cfg.chain_depth == 0)
    EXPECT_EQ(s.chained_executions, 0u)
        << "chain_depth=0 must reproduce the paper's pure list dispatch";
}

TEST(SchedulerPolicy, ChainDepthSweepHoldsDependencyOracle) {
  for (unsigned depth : {0u, 1u, Config{}.chain_depth}) {
    Config cfg;
    cfg.chain_depth = depth;
    run_dependency_oracle(cfg);
  }
}

TEST(SchedulerPolicy, ChainDepthSweepHighPriorityStillJumps) {
  for (unsigned depth : {0u, 1u, Config{}.chain_depth}) {
    Config cfg;
    cfg.chain_depth = depth;
    run_high_priority_jump(cfg);
  }
}

/// The tentpole preemption pin: a pending high-priority task must preempt a
/// running normal-priority chain at the next chain boundary — the racy
/// high-list emptiness probe now lives behind SchedulerPolicy::preempt_chain
/// and must behave identically through it. Two threads: the worker chains
/// down a long dependency chain while the main thread (which never helps —
/// it spin-waits) injects an urgent task mid-chain; the urgent body records
/// how far the chain had advanced. The bound follows from the probe
/// semantics: the chain can complete at most the in-flight task plus a
/// couple of already-promoted steps before the high list is served.
void run_chain_preemption(Config cfg) {
  cfg.num_threads = 2;
  Runtime rt(cfg);
  TaskType urgent_t = rt.register_task_type("urgent", true);

  constexpr int kChain = 64;
  std::atomic<int> counter{0};
  std::atomic<int> urgent_at{-1};
  long sink = 0;
  for (int i = 0; i < kChain; ++i)
    rt.spawn(
        [&counter](long* p) {
          burn_cycles(20000, p);
          counter.fetch_add(1, std::memory_order_release);
        },
        inout(&sink));
  // Let the worker get well into the chain before injecting.
  while (counter.load(std::memory_order_acquire) < 8) {
  }
  const int at_spawn = counter.load(std::memory_order_acquire);
  static int dummy = 0;
  rt.spawn(urgent_t,
           [&urgent_at, &counter](const int* d) {
             (void)d;
             urgent_at.store(counter.load(std::memory_order_acquire));
           },
           opaque(&dummy));
  // Spin without helping: the preemption must come from the chaining worker
  // honoring the policy probe, not from this thread draining the high list.
  while (urgent_at.load(std::memory_order_acquire) < 0) {
  }
  rt.barrier();
  EXPECT_EQ(sink, static_cast<long>(kChain) * 20000);
  EXPECT_LE(urgent_at.load(), at_spawn + 5)
      << "urgent task waited out the chain (policy="
      << to_string(cfg.sched_policy) << " chain_depth=" << cfg.chain_depth
      << ")";
}

TEST(SchedulerPolicy, HighPriorityPreemptsChainUnderBothPolicies) {
  for (SchedPolicyKind kind :
       {SchedPolicyKind::Paper, SchedPolicyKind::Aware}) {
    for (unsigned depth : {0u, 1u, Config{}.chain_depth}) {
      Config cfg;
      cfg.sched_policy = kind;
      cfg.chain_depth = depth;
      run_chain_preemption(cfg);
    }
  }
}

TEST(SchedulerPolicy, AwarePolicyHoldsDependencyOracle) {
  // The full oracle program (chains + reductions + fan-out) under the aware
  // policy, across chain depths and both scheduler modes: placement may
  // differ, results may not.
  for (unsigned depth : {0u, Config{}.chain_depth}) {
    for (SchedulerMode mode :
         {SchedulerMode::Distributed, SchedulerMode::Centralized}) {
      Config cfg;
      cfg.sched_policy = SchedPolicyKind::Aware;
      cfg.chain_depth = depth;
      cfg.scheduler_mode = mode;
      run_dependency_oracle(cfg);
    }
  }
}

TEST(SchedulerPolicy, AwareIndependentWorkStillSpreads) {
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "spread over >=4 workers needs real hardware parallelism";
  Config cfg;
  cfg.num_threads = 8;
  cfg.sched_policy = SchedPolicyKind::Aware;
  Runtime rt(cfg);
  constexpr int kTasks = 256;
  std::vector<std::thread::id> executor(kTasks);
  std::vector<long> sinks(kTasks, 0);
  for (int i = 0; i < kTasks; ++i)
    rt.spawn(
        [i, &executor](long* p) {
          executor[static_cast<std::size_t>(i)] = std::this_thread::get_id();
          *p = 0;
          burn_cycles(200000, p);
        },
        out(&sinks[i]));
  rt.barrier();
  std::set<std::thread::id> distinct(executor.begin(), executor.end());
  EXPECT_GE(distinct.size(), 4u)
      << "aware policy must not serialize independent work";
}

TEST(SchedulerPolicy, PureChainIsMostlyChainedExecutions) {
  // A single long dependency chain with the default bounded chaining: most
  // steps must ride the completion-side fast path, observable both in the
  // stats and in the per-event trace flag.
  Config cfg;
  cfg.num_threads = 4;
  cfg.tracing = true;
  Runtime rt(cfg);
  constexpr int kLen = 512;
  long x = 0;
  for (int i = 0; i < kLen; ++i)
    rt.spawn([](long* p) { burn_cycles(2000, p); }, inout(&x));
  rt.barrier();
  EXPECT_EQ(x, static_cast<long>(kLen) * 2000);
  auto s = rt.stats();
  EXPECT_GT(s.chained_executions, static_cast<std::uint64_t>(kLen) / 4)
      << "a pure chain should mostly bypass the ready lists";
  std::uint64_t traced_chained = 0;
  for (const auto& e : rt.tracer().collect()) traced_chained += e.chained;
  EXPECT_EQ(traced_chained, s.chained_executions)
      << "trace plumbing disagrees with the chained-execution counter";
}

TEST(SchedulerPolicy, CentralizedModeStillBalances) {
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "spread over >=4 workers needs real hardware parallelism";
  Config cfg;
  cfg.num_threads = 8;
  cfg.scheduler_mode = SchedulerMode::Centralized;
  Runtime rt(cfg);
  std::vector<std::thread::id> executor(128);
  std::vector<long> sinks(128, 0);
  for (int i = 0; i < 128; ++i)
    rt.spawn(
        [i, &executor](long* p) {
          executor[static_cast<std::size_t>(i)] = std::this_thread::get_id();
          *p = 0;
          burn_cycles(100000, p);
        },
        out(&sinks[i]));
  rt.barrier();
  std::set<std::thread::id> distinct(executor.begin(), executor.end());
  EXPECT_GE(distinct.size(), 4u);
  EXPECT_EQ(rt.stats().steals, 0u);  // no deques to steal from
}

}  // namespace
}  // namespace smpss
