// Fairness of service-mode admission: the weighted deficit-round-robin unit
// semantics (deterministic, scripted token release — safe on a 1-core CI
// runner), the trickle-vs-greedy starvation guarantee on a real runtime,
// and the per-stream throttled splits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "sched/admission.hpp"

namespace smpss {
namespace {

// Scripted DRR: two tickets (weight 2 vs 1), one admitting thread each, and
// the main thread releasing exactly one slot at a time — only once both
// threads are blocked in admit(), so every grant decision is made with both
// tenants queued. The grant sequence must then follow the 2:1 deficit
// rotation: in every prefix, |granted_a - 2 * granted_b| <= 2.
TEST(AdmissionFairness, WeightedDeficitRoundRobinDeterministic) {
  AdmissionControl adm;
  AdmissionTicket ta, tb;
  ta.weight = 2;
  tb.weight = 1;
  constexpr int kA = 40, kB = 20;  // 2:1, so both finish together
  std::atomic<int> tokens{0};
  std::mutex order_mu;
  std::vector<char> order;
  auto client = [&](AdmissionTicket& t, char id, int n) {
    for (int i = 0; i < n; ++i)
      adm.admit(t, [&]() -> AdmitProbe {
        // Only the ring head probes (under the admission mutex), so the
        // token take needs no CAS. Record the grant BEFORE decrementing:
        // the main thread keys its both-clients-queued wait off the order
        // log once tokens reads zero.
        if (tokens.load() == 0) return AdmitProbe::GlobalFull;
        {
          std::lock_guard<std::mutex> lk(order_mu);
          order.push_back(id);
        }
        tokens.fetch_sub(1);
        return AdmitProbe::Taken;
      });
  };
  std::thread a(client, std::ref(ta), 'a', kA);
  std::thread b(client, std::ref(tb), 'b', kB);
  for (int granted = 0; granted < kA + kB; ++granted) {
    // Wait until every still-running client is blocked in admit() before
    // releasing the next slot, so the head choice is never a timing race.
    std::uint32_t expect_waiters = 0;
    {
      std::lock_guard<std::mutex> lk(order_mu);
      int na = 0, nb = 0;
      for (char c : order) (c == 'a' ? na : nb)++;
      expect_waiters = (na < kA ? 1u : 0u) + (nb < kB ? 1u : 0u);
    }
    while (adm.waiters() < expect_waiters)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    tokens.fetch_add(1);
    adm.notify();
    while (tokens.load() != 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  a.join();
  b.join();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kA + kB));
  int na = 0, nb = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (order[i] == 'a' ? na : nb)++;
    const long diff = static_cast<long>(na) - 2L * nb;
    ASSERT_LE(diff, 2) << "prefix " << i << ": a ran too far ahead";
    ASSERT_GE(diff, -2) << "prefix " << i << ": b ran too far ahead";
  }
  EXPECT_EQ(na, kA);
  EXPECT_EQ(nb, kB);
  adm.remove(ta);
  adm.remove(tb);
}

// Single-threaded: a lone ticket whose probe reports SelfFull (its own
// window is the blocker) must not spin under the mutex — the forfeit path
// falls through to the bounded wait and re-probes until the limit clears.
TEST(AdmissionFairness, LoneSelfFullStreamMakesProgress) {
  AdmissionControl adm;
  AdmissionTicket t;
  int probes = 0;
  adm.admit(t, [&]() -> AdmitProbe {
    return ++probes < 3 ? AdmitProbe::SelfFull : AdmitProbe::Taken;
  });
  EXPECT_EQ(probes, 3);
  EXPECT_EQ(adm.waiters(), 0u);
  adm.remove(t);
}

// Tickets persist in the ring between admissions; turns pass over idle
// tickets. A single thread alternately admitting through two tickets (both
// always Taken) must never hang on the idle peer. 1-core-safe.
TEST(AdmissionFairness, IdleHeadsAreSkipped) {
  AdmissionControl adm;
  AdmissionTicket ta, tb;
  tb.weight = 3;
  for (int i = 0; i < 50; ++i) {
    adm.admit(ta, [] { return AdmitProbe::Taken; });
    adm.admit(tb, [] { return AdmitProbe::Taken; });
  }
  EXPECT_EQ(adm.waiters(), 0u);
  adm.remove(ta);
  adm.remove(tb);
}

// A greedy stream hammering a tight shared window from its own thread must
// not starve a trickle stream: every trickle submission gets admitted in
// bounded time (generous bound — CI runners are slow), and the throttle
// counts split per stream.
TEST(AdmissionFairness, TrickleStreamNotStarvedByGreedy) {
  if (std::thread::hardware_concurrency() < 3)
    GTEST_SKIP() << "needs >= 3 hardware threads for a meaningful race";
  Config cfg;
  cfg.num_threads = 3;
  cfg.nested_tasks = true;
  cfg.task_window = 32;  // tight: the greedy client saturates it
  Runtime rt(cfg);
  StreamHandle greedy = rt.open_stream({.name = "greedy"});
  StreamHandle trickle = rt.open_stream({.name = "trickle"});
  std::atomic<bool> stop{false};
  long g_cell = 0, t_cell = 0;
  std::thread g([&] {
    while (!stop.load(std::memory_order_relaxed))
      greedy.post([](long* c) { *c += 1; }, inout(&g_cell));
    greedy.drain();
  });
  constexpr int kTrickle = 100;
  std::int64_t worst_admit_ns = 0;
  std::thread t([&] {
    for (int i = 0; i < kTrickle; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      trickle.post([](long* c) { *c += 1; }, inout(&t_cell));
      const auto dt = std::chrono::steady_clock::now() - t0;
      worst_admit_ns = std::max<std::int64_t>(
          worst_admit_ns,
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    trickle.drain();
  });
  t.join();
  stop.store(true);
  g.join();
  EXPECT_EQ(trickle.state()->retired.load(), kTrickle);
  // Starvation bound: with round-robin admission a trickle submit waits for
  // at most a few greedy grants, each bounded by task retire time. 2 s per
  // admission would mean the old free-for-all gate behavior (unbounded —
  // the greedy client re-takes every freed slot).
  EXPECT_LT(worst_admit_ns, 2'000'000'000LL);
  const StatsSnapshot st = rt.stats();
  ASSERT_EQ(st.streams.size(), 2u);
  // The greedy stream outran the window, so it did queue; the split is per
  // stream, and the totals line up.
  EXPECT_GT(st.streams[0].throttled, 0u);
  EXPECT_EQ(st.streams[0].throttled + st.streams[1].throttled,
            st.stream_throttled);
  rt.barrier();
  EXPECT_EQ(t_cell, kTrickle);
  EXPECT_EQ(g_cell, static_cast<long>(st.streams[0].retired));
}

// Per-stream windows throttle only their own stream: the capped stream
// queues (throttled > 0), its sibling never does.
TEST(AdmissionFairness, PerStreamWindowThrottlesOnlyItself) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.nested_tasks = true;
  Runtime rt(cfg);
  StreamHandle capped = rt.open_stream({.name = "capped", .task_window = 2});
  StreamHandle free_s = rt.open_stream({.name = "free"});
  long c0 = 0, c1 = 0;
  std::thread tc([&] {
    for (int i = 0; i < 200; ++i) {
      // A microsecond of work per task keeps the 2-deep window full so the
      // submitter actually hits its cap.
      capped.post(
          [](long* c) {
            for (int k = 0; k < 50; ++k) asm volatile("" ::: "memory");
            *c += 1;
          },
          inout(&c0));
    }
    capped.drain();
  });
  std::thread tf([&] {
    for (int i = 0; i < 200; ++i)
      free_s.post([](long* c) { *c += 1; }, inout(&c1));
    free_s.drain();
  });
  tc.join();
  tf.join();
  const StatsSnapshot st = rt.stats();
  ASSERT_EQ(st.streams.size(), 2u);
  EXPECT_GT(st.streams[0].throttled, 0u) << "2-deep window never filled?";
  EXPECT_EQ(st.streams[0].retired, 200u);
  EXPECT_EQ(st.streams[1].retired, 200u);
  rt.barrier();
  EXPECT_EQ(c0, 200);
  EXPECT_EQ(c1, 200);
}

// Weighted streams: both saturate, the heavier one gets more grants while
// both are queued. Correctness assertion only (counts), not timing: both
// must finish, and the per-stream latency histograms must have recorded
// every task.
TEST(AdmissionFairness, WeightedStreamsBothComplete) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.nested_tasks = true;
  cfg.task_window = 16;
  Runtime rt(cfg);
  StreamHandle heavy = rt.open_stream({.name = "heavy", .weight = 4});
  StreamHandle light = rt.open_stream({.name = "light", .weight = 1});
  constexpr int kEach = 500;
  long h_cell = 0, l_cell = 0;
  std::thread th([&] {
    for (int i = 0; i < kEach; ++i)
      heavy.post([](long* c) { *c += 1; }, inout(&h_cell));
    heavy.drain();
  });
  std::thread tl([&] {
    for (int i = 0; i < kEach; ++i)
      light.post([](long* c) { *c += 1; }, inout(&l_cell));
    light.drain();
  });
  th.join();
  tl.join();
  EXPECT_EQ(heavy.state()->latency.count(), kEach);
  EXPECT_EQ(light.state()->latency.count(), kEach);
  rt.barrier();
  EXPECT_EQ(h_cell, kEach);
  EXPECT_EQ(l_cell, kEach);
}

}  // namespace
}  // namespace smpss
