// Array-region algebra tests (paper Sec. V.A, Fig. 6): bound and region
// overlap/containment, the three specifier spellings, and a brute-force
// property sweep comparing Region::overlaps against element enumeration.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dep/region.hpp"

namespace smpss {
namespace {

TEST(Bound, ClosedOverlaps) {
  EXPECT_TRUE(Bound::closed(0, 5).overlaps(Bound::closed(5, 9)));
  EXPECT_TRUE(Bound::closed(3, 7).overlaps(Bound::closed(0, 10)));
  EXPECT_FALSE(Bound::closed(0, 4).overlaps(Bound::closed(5, 9)));
  EXPECT_FALSE(Bound::closed(6, 9).overlaps(Bound::closed(0, 5)));
}

TEST(Bound, LengthSpelling) {
  // {l:L} == {l..l+L-1}
  EXPECT_TRUE(Bound::length(3, 4) == Bound::closed(3, 6));
  EXPECT_TRUE(Bound::length(0, 1) == Bound::closed(0, 0));
}

TEST(Bound, WholeOverlapsEverything) {
  EXPECT_TRUE(Bound::whole().overlaps(Bound::closed(100, 200)));
  EXPECT_TRUE(Bound::closed(0, 0).overlaps(Bound::whole()));
  EXPECT_TRUE(Bound::whole().overlaps(Bound::whole()));
}

TEST(Bound, EmptyOverlapsNothing) {
  Bound empty = Bound::closed(5, 3);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.overlaps(Bound::closed(0, 100)));
  EXPECT_FALSE(empty.overlaps(Bound::whole()));
}

TEST(Bound, Contains) {
  EXPECT_TRUE(Bound::closed(0, 10).contains(Bound::closed(3, 7)));
  EXPECT_TRUE(Bound::closed(0, 10).contains(Bound::closed(0, 10)));
  EXPECT_FALSE(Bound::closed(0, 10).contains(Bound::closed(5, 11)));
  EXPECT_TRUE(Bound::whole().contains(Bound::closed(5, 11)));
  EXPECT_FALSE(Bound::closed(0, 10).contains(Bound::whole()));
}

TEST(Region, TwoDimOverlapNeedsBothDims) {
  Region a({Bound::closed(0, 4), Bound::closed(0, 4)});
  Region b({Bound::closed(2, 6), Bound::closed(2, 6)});
  Region c({Bound::closed(5, 9), Bound::closed(0, 4)});   // rows disjoint
  Region d({Bound::closed(0, 4), Bound::closed(5, 9)});   // cols disjoint
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(a.overlaps(d));
}

TEST(Region, DifferentRankIsConservativelyOverlapping) {
  Region a({Bound::closed(0, 4)});
  Region b({Bound::closed(100, 200), Bound::closed(100, 200)});
  EXPECT_TRUE(a.overlaps(b));  // refuses to reason about reshapes
}

TEST(Region, ContainsAndEquality) {
  Region a({Bound::closed(0, 9), Bound::whole()});
  Region b({Bound::closed(2, 5), Bound::closed(0, 3)});
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_TRUE(a == Region({Bound::closed(0, 9), Bound::whole()}));
  EXPECT_FALSE(a == b);
}

TEST(Region, ElementCount) {
  EXPECT_EQ(Region({Bound::closed(0, 9)}).element_count(), 10u);
  EXPECT_EQ(Region({Bound::closed(0, 3), Bound::closed(0, 4)}).element_count(),
            20u);
  EXPECT_EQ(Region({Bound::whole()}).element_count(), 0u);  // unknown extent
  EXPECT_EQ(Region({Bound::closed(5, 3)}).element_count(), 0u);  // empty
}

TEST(Region, ToStringUsesPaperSyntax) {
  Region r({Bound::closed(2, 7), Bound::whole()});
  EXPECT_EQ(r.to_string(), "{2..7}{}");
}

TEST(Region, ElemBytesCarried) {
  Region r({Bound::closed(0, 3)}, sizeof(double));
  EXPECT_EQ(r.elem_bytes(), sizeof(double));
  r.set_elem_bytes(4);
  EXPECT_EQ(r.elem_bytes(), 4u);
}

// Property sweep: Region::overlaps agrees with brute-force enumeration of
// element sets on a small 2-D grid, over many random region pairs.
TEST(RegionProperty, OverlapMatchesBruteForce2D) {
  Xoshiro256 rng(2024);
  constexpr int kGrid = 8;
  auto random_bound = [&](bool allow_empty) {
    std::int64_t a = static_cast<std::int64_t>(rng.next_below(kGrid));
    std::int64_t b = static_cast<std::int64_t>(rng.next_below(kGrid));
    if (!allow_empty && a > b) std::swap(a, b);
    return Bound::closed(a, b);
  };
  for (int iter = 0; iter < 3000; ++iter) {
    bool allow_empty = iter % 5 == 0;
    Region r1({random_bound(allow_empty), random_bound(allow_empty)});
    Region r2({random_bound(allow_empty), random_bound(allow_empty)});
    bool brute = false;
    for (int i = 0; i < kGrid && !brute; ++i)
      for (int j = 0; j < kGrid && !brute; ++j) {
        auto inside = [&](const Region& r) {
          return i >= r.dim(0).lower && i <= r.dim(0).upper &&
                 j >= r.dim(1).lower && j <= r.dim(1).upper;
        };
        brute = inside(r1) && inside(r2);
      }
    ASSERT_EQ(r1.overlaps(r2), brute)
        << r1.to_string() << " vs " << r2.to_string();
  }
}

// Same property in 1-D including `whole` bounds.
TEST(RegionProperty, OverlapMatchesBruteForce1DWithWhole) {
  Xoshiro256 rng(99);
  constexpr int kGrid = 16;
  auto random_bound = [&]() {
    if (rng.next_below(8) == 0) return Bound::whole();
    std::int64_t a = static_cast<std::int64_t>(rng.next_below(kGrid));
    std::int64_t b = static_cast<std::int64_t>(rng.next_below(kGrid));
    if (a > b) std::swap(a, b);
    return Bound::closed(a, b);
  };
  for (int iter = 0; iter < 3000; ++iter) {
    Region r1({random_bound()});
    Region r2({random_bound()});
    bool brute = false;
    for (int i = 0; i < kGrid && !brute; ++i) {
      auto inside = [&](const Region& r) {
        const Bound& b = r.dim(0);
        return b.full || (i >= b.lower && i <= b.upper);
      };
      brute = inside(r1) && inside(r2);
    }
    ASSERT_EQ(r1.overlaps(r2), brute)
        << r1.to_string() << " vs " << r2.to_string();
  }
}

}  // namespace
}  // namespace smpss
