// cssc translator tests: the lexer, the pragma parser on the paper's own
// listings (Fig. 2 task declarations, Fig. 7 region syntax, Fig. 10 opaque
// pointers), error reporting, and the C++ code generator.
#include <gtest/gtest.h>

#include "cssc/codegen.hpp"
#include "cssc/lexer.hpp"
#include "cssc/pragma_parser.hpp"

namespace smpss::cssc {
namespace {

// --- lexer ------------------------------------------------------------------------

TEST(Lexer, RecognizesPragmaCss) {
  std::string err;
  auto toks = tokenize("#pragma css task\nint x;", &err);
  ASSERT_TRUE(err.empty());
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::PragmaCss);
  EXPECT_EQ(toks[1].kind, TokKind::Identifier);
  EXPECT_EQ(toks[1].text, "task");
}

TEST(Lexer, DotDotToken) {
  std::string err;
  auto toks = tokenize("#pragma css task input(a{i..j})\nvoid f(int a);", &err);
  bool found = false;
  for (const auto& t : toks)
    if (t.kind == TokKind::DotDot) found = true;
  EXPECT_TRUE(found);
}

TEST(Lexer, LineContinuationKeepsPragmaOpen) {
  std::string err;
  auto toks = tokenize("#pragma css task input(a) \\\n output(b)\nvoid f();",
                       &err);
  // "output" must still be inside the pragma (before the Newline token).
  std::size_t newline_at = 0, output_at = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::Newline && newline_at == 0) newline_at = i;
    if (toks[i].kind == TokKind::Identifier && toks[i].text == "output")
      output_at = i;
  }
  EXPECT_LT(output_at, newline_at);
}

TEST(Lexer, SkipsCommentsAndOtherPreprocessor) {
  std::string err;
  auto toks = tokenize("// comment\n#include <x.h>\n/* block */ int y;", &err);
  ASSERT_TRUE(err.empty());
  EXPECT_EQ(toks[0].text, "int");
}

// --- parser on the paper's listings ----------------------------------------------

// Fig. 2 verbatim.
constexpr const char* kFig2 = R"(
#pragma css task input(a, b) inout(c)
void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);
#pragma css task inout(a)
void spotrf_t(float a[M][M]);
#pragma css task input(a) inout(b)
void strsm_t(float a[M][M], float b[M][M]);
#pragma css task input(a) inout(b)
void ssyrk_t(float a[M][M], float b[M][M]);
)";

TEST(Parser, Fig2Declarations) {
  std::string err;
  auto tu = parse_source(kFig2, &err);
  ASSERT_TRUE(tu.has_value()) << err;
  ASSERT_EQ(tu->tasks.size(), 4u);

  const TaskDecl& sgemm = tu->tasks[0];
  EXPECT_EQ(sgemm.name, "sgemm_t");
  EXPECT_EQ(sgemm.return_type, "void");
  ASSERT_EQ(sgemm.clauses.size(), 2u);
  EXPECT_EQ(sgemm.clauses[0].dir, Direction::Input);
  ASSERT_EQ(sgemm.clauses[0].params.size(), 2u);
  EXPECT_EQ(sgemm.clauses[0].params[0].name, "a");
  EXPECT_EQ(sgemm.clauses[1].dir, Direction::Inout);
  EXPECT_EQ(sgemm.clauses[1].params[0].name, "c");
  ASSERT_EQ(sgemm.params.size(), 3u);
  EXPECT_EQ(sgemm.params[0].type_text, "float");
  EXPECT_EQ(sgemm.params[0].decl_dims, (std::vector<std::string>{"M", "M"}));
  EXPECT_TRUE(sgemm.params[0].is_pointer);

  EXPECT_EQ(tu->tasks[1].name, "spotrf_t");
  ASSERT_EQ(tu->tasks[1].clauses.size(), 1u);
  EXPECT_EQ(tu->tasks[1].clauses[0].dir, Direction::Inout);
}

// Fig. 7's region-annotated declarations, verbatim syntax.
constexpr const char* kFig7 = R"(
#pragma css task input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) \
 output (dest{i1..j2})
void seqmerge (ELM data[N], long i1, long j1, long i2, long j2,
 ELM dest[N]);

#pragma css task inout (data{i..j}) input (i, j)
void seqquick (ELM data[N], long i, long j);
)";

TEST(Parser, Fig7RegionSyntax) {
  std::string err;
  auto tu = parse_source(kFig7, &err);
  ASSERT_TRUE(tu.has_value()) << err;
  ASSERT_EQ(tu->tasks.size(), 2u);

  const TaskDecl& merge = tu->tasks[0];
  EXPECT_EQ(merge.name, "seqmerge");
  // `data` appears twice in input with different regions.
  auto occ = merge.occurrences("data");
  ASSERT_EQ(occ.size(), 2u);
  ASSERT_EQ(occ[0].second->regions.size(), 1u);
  EXPECT_EQ(occ[0].second->regions[0].kind, RegionSpec::Kind::Bounds);
  EXPECT_EQ(occ[0].second->regions[0].lo, "i1");
  EXPECT_EQ(occ[0].second->regions[0].hi_or_len, "j1");
  EXPECT_EQ(occ[1].second->regions[0].lo, "i2");
  // dest is an output region.
  auto dest_occ = merge.occurrences("dest");
  ASSERT_EQ(dest_occ.size(), 1u);
  EXPECT_EQ(dest_occ[0].first, Direction::Output);
  // scalar indices are inputs.
  EXPECT_EQ(merge.occurrences("i1").size(), 1u);

  const TaskDecl& quick = tu->tasks[1];
  EXPECT_EQ(quick.name, "seqquick");
  auto q = quick.occurrences("data");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].first, Direction::Inout);
  EXPECT_EQ(q[0].second->regions[0].lo, "i");
}

TEST(Parser, RegionSpellings) {
  std::string err;
  auto tu = parse_source(
      "#pragma css task input(a{0..9}, b{5:10}, c{})\n"
      "void f(int a[N], int b[N], int c[N]);",
      &err);
  ASSERT_TRUE(tu.has_value()) << err;
  const auto& ps = tu->tasks[0].clauses[0].params;
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0].regions[0].kind, RegionSpec::Kind::Bounds);
  EXPECT_EQ(ps[1].regions[0].kind, RegionSpec::Kind::Length);
  EXPECT_EQ(ps[1].regions[0].lo, "5");
  EXPECT_EQ(ps[1].regions[0].hi_or_len, "10");
  EXPECT_EQ(ps[2].regions[0].kind, RegionSpec::Kind::Full);
}

TEST(Parser, HighPriorityClause) {
  std::string err;
  auto tu = parse_source(
      "#pragma css task inout(a) highpriority\nvoid crunch(float a[K]);",
      &err);
  ASSERT_TRUE(tu.has_value()) << err;
  EXPECT_TRUE(tu->tasks[0].high_priority);
}

TEST(Parser, DimensionSpecifiersInClause) {
  // Fig. 10-style: size given in the clause because the declaration lacks it.
  std::string err;
  auto tu = parse_source(
      "#pragma css task input(A, i, j) output(a[M][M])\n"
      "void get_block(int i, int j, void *A, float *a);",
      &err);
  ASSERT_TRUE(tu.has_value()) << err;
  const TaskDecl& t = tu->tasks[0];
  auto a_occ = t.occurrences("a");
  ASSERT_EQ(a_occ.size(), 1u);
  EXPECT_EQ(a_occ[0].second->dims, (std::vector<std::string>{"M", "M"}));
  // void *A is an opaque pointer.
  ASSERT_EQ(t.params.size(), 4u);
  EXPECT_TRUE(t.params[2].is_void_pointer);
}

TEST(Parser, BarrierAndWaitOn) {
  std::string err;
  auto tu = parse_source(
      "#pragma css barrier\n"
      "#pragma css wait on(x, y)\n"
      "#pragma css start\n"
      "#pragma css finish\n",
      &err);
  ASSERT_TRUE(tu.has_value()) << err;
  ASSERT_EQ(tu->others.size(), 4u);
  EXPECT_EQ(tu->others[0].kind, OtherPragma::Kind::Barrier);
  EXPECT_EQ(tu->others[1].kind, OtherPragma::Kind::WaitOn);
  EXPECT_EQ(tu->others[1].wait_exprs.size(), 2u);
  EXPECT_EQ(tu->others[2].kind, OtherPragma::Kind::Start);
  EXPECT_EQ(tu->others[3].kind, OtherPragma::Kind::Finish);
}

TEST(Parser, Errors) {
  std::string err;
  EXPECT_FALSE(parse_source("#pragma css task frobnicate(a)\nvoid f();", &err)
                   .has_value());
  EXPECT_NE(err.find("unknown task clause"), std::string::npos);

  EXPECT_FALSE(parse_source("#pragma css nonsense\n", &err).has_value());
  // Unterminated region specifier.
  EXPECT_FALSE(
      parse_source("#pragma css task input(a{1:2)\nvoid f(int a[N]);", &err)
          .has_value());
}

// The ISSUE's commuting modes: `commutative` (unordered mutually-exclusive
// writers) and `concurrent` (privatized reduction) clauses.
constexpr const char* kCommuting = R"(
#pragma css task input(v) commutative(acc) concurrent(hist[K])
void scatter(float v[N], float acc[N], float *hist);
)";

TEST(Parser, CommutativeAndConcurrentClauses) {
  std::string err;
  auto tu = parse_source(kCommuting, &err);
  ASSERT_TRUE(tu.has_value()) << err;
  ASSERT_EQ(tu->tasks.size(), 1u);
  const TaskDecl& t = tu->tasks[0];
  auto acc = t.occurrences("acc");
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].first, Direction::Commutative);
  auto hist = t.occurrences("hist");
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0].first, Direction::Concurrent);
  EXPECT_EQ(hist[0].second->dims, (std::vector<std::string>{"K"}));
}

TEST(Parser, CommutingClausesRejectRegions) {
  // Commuting modes are whole-object only; a region specifier must be a
  // parse-time diagnosis, not a runtime surprise.
  std::string err;
  EXPECT_FALSE(
      parse_source("#pragma css task commutative(a{0..9})\nvoid f(float a[N]);",
                   &err)
          .has_value());
  EXPECT_NE(err.find("do not accept region specifiers"), std::string::npos);
  EXPECT_FALSE(
      parse_source("#pragma css task concurrent(a{0:4})\nvoid f(float a[N]);",
                   &err)
          .has_value());
  EXPECT_NE(err.find("do not accept region specifiers"), std::string::npos);
}

TEST(Parser, NonPragmaCodeIsIgnored) {
  std::string err;
  auto tu = parse_source(
      "int main() { return 0; }\n"
      "#pragma css task input(x)\nvoid g(double x[4]);\n"
      "void helper(int q);",
      &err);
  ASSERT_TRUE(tu.has_value()) << err;
  EXPECT_EQ(tu->tasks.size(), 1u);
  EXPECT_EQ(tu->tasks[0].name, "g");
}

// --- codegen -----------------------------------------------------------------------

TEST(Codegen, Fig2SgemmAdapter) {
  std::string err;
  auto tu = parse_source(kFig2, &err);
  ASSERT_TRUE(tu.has_value());
  std::string code = generate_task(tu->tasks[0]);
  EXPECT_NE(code.find("register_sgemm_t"), std::string::npos);
  EXPECT_NE(code.find("spawn_sgemm_t"), std::string::npos);
  EXPECT_NE(code.find("smpss::in(a, static_cast<std::size_t>(M) * "
                       "static_cast<std::size_t>(M))"),
            std::string::npos);
  EXPECT_NE(code.find("smpss::inout(c"), std::string::npos);
}

TEST(Codegen, RegionsRenderAsBounds) {
  std::string err;
  auto tu = parse_source(kFig7, &err);
  ASSERT_TRUE(tu.has_value());
  std::string code = generate_task(tu->tasks[0]);
  EXPECT_NE(code.find("smpss::Bound::closed(i1, j1)"), std::string::npos);
  EXPECT_NE(code.find("smpss::Bound::closed(i2, j2)"), std::string::npos);
  EXPECT_NE(code.find("smpss::value(i1)"), std::string::npos);
  // data appears twice: two wrapped region arguments.
  EXPECT_NE(code.find("smpss::in(data, smpss::Region"), std::string::npos);
}

TEST(Codegen, OpaqueAndHighPriority) {
  std::string err;
  auto tu = parse_source(
      "#pragma css task input(i) output(a[M][M]) highpriority\n"
      "void get(int i, void *A, float *a);",
      &err);
  ASSERT_TRUE(tu.has_value()) << err;
  std::string code = generate_task(tu->tasks[0]);
  EXPECT_NE(code.find("smpss::opaque(A)"), std::string::npos);
  EXPECT_NE(code.find("register_task_type(\"get\", true)"), std::string::npos);
}

TEST(Codegen, CommutativeAndConcurrentEmission) {
  std::string err;
  auto tu = parse_source(kCommuting, &err);
  ASSERT_TRUE(tu.has_value()) << err;
  std::string code = generate_task(tu->tasks[0]);
  EXPECT_NE(code.find("smpss::commutative(acc, static_cast<std::size_t>(N))"),
            std::string::npos);
  // `concurrent` lowers to the additive reduction through the typed API.
  EXPECT_NE(code.find("smpss::reduction(smpss::Plus{}, hist, "
                      "static_cast<std::size_t>(K))"),
            std::string::npos);
}

TEST(Codegen, WholeUnitHeader) {
  std::string err;
  auto tu = parse_source(kFig2, &err);
  ASSERT_TRUE(tu.has_value());
  std::string code = generate(*tu);
  EXPECT_NE(code.find("#pragma once"), std::string::npos);
  EXPECT_NE(code.find("namespace css_generated"), std::string::npos);
  EXPECT_NE(code.find("4 task(s)"), std::string::npos);
}

}  // namespace
}  // namespace smpss::cssc
