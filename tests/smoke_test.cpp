// Smoke test: the fastest possible end-to-end canary for CI. Constructs a
// Runtime, spawns a short in/inout dependency chain, and checks that
// barrier() delivers the sequentially-consistent result (paper Sec. II).
// Everything heavier lives in runtime_basic_test / runtime_semantics_test.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.hpp"

namespace smpss {
namespace {

TEST(Smoke, ConstructAndDestroy) {
  Runtime rt;
  EXPECT_GE(rt.num_threads(), 1u);
  rt.barrier();  // empty barrier must not hang
}

TEST(Smoke, InInoutChainBarrier) {
  Runtime rt;

  // produce -> scale -> accumulate, chained through `data` and `sum`.
  constexpr int kN = 8;
  std::vector<int> data(kN, 0);
  long sum = 0;

  rt.spawn([](int* d) { for (int i = 0; i < kN; ++i) d[i] = i + 1; },
           out(data.data(), kN));
  rt.spawn([](int* d) { for (int i = 0; i < kN; ++i) d[i] *= 2; },
           inout(data.data(), kN));
  rt.spawn([](const int* d, long* s) {
             for (int i = 0; i < kN; ++i) *s += d[i];
           },
           in(data.data(), kN), inout(&sum));
  rt.barrier();

  // 2 * (1 + 2 + ... + 8) = 72, and the renamed blocks must have been
  // realigned into the program's own storage by the barrier.
  EXPECT_EQ(sum, 72);
  EXPECT_EQ(data[0], 2);
  EXPECT_EQ(data[kN - 1], 2 * kN);

  auto s = rt.stats();
  EXPECT_EQ(s.tasks_spawned, 3u);
  EXPECT_EQ(s.tasks_executed, 3u);
}

TEST(Smoke, BarrierIsReusable) {
  Runtime rt;
  int x = 0;
  for (int round = 1; round <= 3; ++round) {
    rt.spawn([](int* p) { ++*p; }, inout(&x));
    rt.barrier();
    EXPECT_EQ(x, round);
  }
}

}  // namespace
}  // namespace smpss
