// The multi-process dependency manager (ipc/dist_runtime.hpp) and its
// substrate: shm segments, message rings, process lifecycle, the
// datum-hash shard split, cross-process copy-in/copy-back, and crash
// semantics.
//
// Conformance is differential, like everything else in this repo: every
// family × submission shape × dependency-engine mode runs across 2 (and 3)
// processes and the assembled image must be bit-identical to the
// sequential oracle; the cross-process true-edge multiset must equal the
// generator's intended edges exactly; per-rank accounting rows must sum to
// the coordinator's global totals (including an exact expected count of
// remote fetches derived from the owner hash). The crash tests kill a
// child mid-run and check the stats file gains a parseable partial-run
// marker instead of ending in a torn line.
//
// Everything that forks skips under ThreadSanitizer (children start
// runtime threads, which TSan forbids after fork); the single-process
// sweeps cover the same dataflow there.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ipc/dist_runtime.hpp"
#include "ipc/msg_ring.hpp"
#include "ipc/process_group.hpp"
#include "ipc/shm_segment.hpp"
#include "patterns/driver.hpp"
#include "runtime/runtime.hpp"
#include "sanitizer_util.hpp"
#include "seed_util.hpp"

namespace smpss::ipc {
namespace {

using patterns::AccumMode;
using patterns::all_pattern_kinds;
using patterns::Cell;
using patterns::default_fields;
using patterns::Interval;
using patterns::kMaxIntervals;
using patterns::kPatternKindCount;
using patterns::LowerMode;
using patterns::PatternImage;
using patterns::PatternKind;
using patterns::PatternSpec;
using patterns::run_oracle;
using patterns::run_pattern;
using patterns::RunOptions;
using patterns::RunResult;
using patterns::SubmitShape;

#define SMPSS_REQUIRE_FORK()                                             \
  if (!smpss::testing::fork_backend_supported())                         \
  GTEST_SKIP() << "fork-then-threads is unsupported under TSan; the "    \
                  "single-process conformance sweeps cover this dataflow"

PatternSpec standard_spec(PatternKind kind) {
  PatternSpec s;
  s.kind = kind;
  s.width = kind == PatternKind::Tree ? 16 : 8;
  s.steps = 8;
  s.radix = 3;
  s.period = 3;
  s.seed = 0xD157;
  return s;
}

::testing::AssertionResult images_equal(const PatternImage& got,
                                        const PatternImage& want) {
  if (got == want) return ::testing::AssertionSuccess();
  for (long f = 0; f < want.nfields; ++f)
    for (long p = 0; p < want.width; ++p)
      if (got.at(f, p) != want.at(f, p)) {
        std::ostringstream os;
        os << "first mismatch at row " << f << " point " << p << ": got 0x"
           << std::hex << got.at(f, p) << " want 0x" << want.at(f, p);
        return ::testing::AssertionFailure() << os.str();
      }
  return ::testing::AssertionFailure() << "image shapes differ";
}

// --- the ipc substrate, single-process -----------------------------------------

TEST(IpcPrimitives, ShmSegmentCreateAllocAndInherit) {
  ShmSegment seg = ShmSegment::create(1000);
  ASSERT_TRUE(seg.valid());
  EXPECT_GE(seg.size(), 1000u);
  EXPECT_EQ(seg.size() % 4096, 0u) << "segment size must be page-rounded";

  SegmentAllocator alloc(seg);
  std::uint64_t* a = alloc.alloc<std::uint64_t>(4);
  std::uint64_t* b = alloc.alloc<std::uint64_t>(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_GE(b, a + 4) << "bump allocations must not overlap";
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], 0u) << "segment not zeroed";
  a[0] = 0xFEEDu;
  *b = 0xBEEFu;
  EXPECT_EQ(a[0], 0xFEEDu);

  // Moved-from segments must not double-unmap.
  ShmSegment moved = std::move(seg);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(seg.valid());
}

TEST(IpcPrimitives, MsgRingIsFifoAndBounded) {
  auto ring = std::make_unique<MsgRing>();
  EXPECT_TRUE(ring->empty());
  IpcMsg m;
  EXPECT_FALSE(ring->try_recv(m));

  // Fill to capacity, refuse the overflow, drain in order.
  for (std::uint64_t i = 0; i < MsgRing::kCapacity; ++i) {
    m = IpcMsg{};
    m.kind = MsgKind::Retire;
    m.a = i;
    ASSERT_TRUE(ring->try_send(m)) << "ring full early at " << i;
  }
  m.a = MsgRing::kCapacity;
  EXPECT_FALSE(ring->try_send(m)) << "ring accepted more than kCapacity";
  for (std::uint64_t i = 0; i < MsgRing::kCapacity; ++i) {
    ASSERT_TRUE(ring->try_recv(m));
    EXPECT_EQ(m.a, i) << "ring is not FIFO";
    EXPECT_EQ(m.kind, MsgKind::Retire);
  }
  EXPECT_TRUE(ring->empty());

  // Freed capacity is reusable (wrap-around).
  for (std::uint64_t i = 0; i < 3 * MsgRing::kCapacity; ++i) {
    m.a = i;
    ASSERT_TRUE(ring->try_send(m));
    ASSERT_TRUE(ring->try_recv(m));
    EXPECT_EQ(m.a, i);
  }
}

TEST(IpcPrimitives, DatumOwnerIsStableInRangeAndCoversRanks) {
  for (unsigned nprocs : {1u, 2u, 3u, 16u}) {
    std::vector<bool> hit(nprocs, false);
    for (long f = 0; f < 4; ++f)
      for (long p = 0; p < 16; ++p) {
        const unsigned o = datum_owner(f, p, nprocs);
        ASSERT_LT(o, nprocs);
        EXPECT_EQ(o, datum_owner(f, p, nprocs));
        hit[o] = true;
      }
    // 64 cells over <= 16 ranks: a shard split that starves a rank outright
    // would make the "multi-process" backend silently single-process.
    for (unsigned r = 0; r < nprocs; ++r)
      EXPECT_TRUE(hit[r]) << "rank " << r << "/" << nprocs << " owns no datum";
  }
  EXPECT_EQ(datum_owner(2, 5, 1), 0u);
}

// --- cross-process conformance -------------------------------------------------

struct DistVariant {
  const char* name;
  void (*tweak)(RunOptions&);
};

void check_dist(const PatternSpec& spec, const DistVariant& v) {
  RunOptions opt;
  opt.cfg.num_threads = 2;
  opt.cfg.procs = 2;
  v.tweak(opt);
  opt.nfields = default_fields(spec);
  const PatternImage expect = run_oracle(spec, opt.nfields);
  const RunResult r = run_pattern(spec, opt);
  ASSERT_TRUE(images_equal(r.image, expect))
      << "variant=" << v.name << "\n  " << spec.describe() << "\n  "
      << opt.describe();
  const std::uint64_t expected_tasks =
      spec.total_tasks() +
      (opt.shape == SubmitShape::NestedSteps
           ? static_cast<std::uint64_t>(spec.steps) * opt.cfg.procs
           : 0);
  EXPECT_EQ(r.stats.tasks_spawned, expected_tasks)
      << "variant=" << v.name << " " << spec.describe();
}

const DistVariant kFlatVariants[] = {
    {"flat", [](RunOptions&) {}},
    {"flat_lockfree", [](RunOptions& o) { o.cfg.nested_tasks = true; }},
    {"flat_locked",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
     }},
};

const DistVariant kNestedVariants[] = {
    {"nested_steps_lockfree",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.shape = SubmitShape::NestedSteps;
     }},
    {"nested_steps_locked",
     [](RunOptions& o) {
       o.cfg.nested_tasks = true;
       o.cfg.dep_lockfree = false;
       o.shape = SubmitShape::NestedSteps;
     }},
};

TEST(DistConformance, FlatTwoProcsAllFamilies) {
  SMPSS_REQUIRE_FORK();
  for (PatternKind kind : all_pattern_kinds()) {
    const PatternSpec spec = standard_spec(kind);
    ASSERT_TRUE(patterns::address_mode_ok(spec)) << spec.describe();
    for (const DistVariant& v : kFlatVariants) check_dist(spec, v);
  }
}

TEST(DistConformance, NestedStepsTwoProcsAllFamilies) {
  SMPSS_REQUIRE_FORK();
  for (PatternKind kind : all_pattern_kinds()) {
    const PatternSpec spec = standard_spec(kind);
    for (const DistVariant& v : kNestedVariants) check_dist(spec, v);
  }
}

TEST(DistConformance, ThreeProcsSingleThreadedRanks) {
  SMPSS_REQUIRE_FORK();
  for (PatternKind kind :
       {PatternKind::Stencil1D, PatternKind::Fft, PatternKind::Spread}) {
    const PatternSpec spec = standard_spec(kind);
    RunOptions opt;
    opt.cfg.num_threads = 1;
    opt.cfg.procs = 3;
    opt.nfields = default_fields(spec);
    const RunResult r = run_pattern(spec, opt);
    ASSERT_TRUE(images_equal(r.image, run_oracle(spec, opt.nfields)))
        << spec.describe();
  }
}

TEST(DistConformance, SingleProcBackendMatchesInProcessRun) {
  // nprocs == 1 takes the distributed code path (segment, slots, retire
  // ring) with no fork: the backend degenerates to the classic runtime and
  // must produce the identical image. (SMPSS_PROCS=1 through run_pattern
  // does not even reach this path — that stays the untouched fast path.)
  for (PatternKind kind : {PatternKind::Chain, PatternKind::Stencil1D,
                           PatternKind::AllToAll}) {
    const PatternSpec spec = standard_spec(kind);
    RunOptions opt;
    opt.cfg.num_threads = 2;
    opt.nfields = default_fields(spec);
    const DistResult d = run_pattern_dist(spec, opt, 1);
    EXPECT_TRUE(d.clean_children);
    EXPECT_EQ(d.total_tasks, spec.total_tasks());
    EXPECT_EQ(d.retires_received, d.total_tasks);
    const RunResult classic = run_pattern(spec, opt);
    ASSERT_TRUE(images_equal(d.image, classic.image)) << spec.describe();
    ASSERT_TRUE(images_equal(d.image, run_oracle(spec, opt.nfields)))
        << spec.describe();
  }
}

// --- cross-process graph fidelity ----------------------------------------------

TEST(DistGraph, TrueEdgeMultisetMatchesOracle) {
  SMPSS_REQUIRE_FORK();
  // Chain exercises the in-place inout shard path; spread intends duplicate
  // edges (its modular stride can name one producer twice); tree has
  // never-written cells the image assembly must pre-seed.
  for (PatternKind kind :
       {PatternKind::Chain, PatternKind::Stencil1D, PatternKind::Fft,
        PatternKind::Tree, PatternKind::Spread, PatternKind::RandomNearest}) {
    const PatternSpec spec = standard_spec(kind);
    for (unsigned nprocs : {2u, 3u}) {
      RunOptions opt;
      opt.cfg.num_threads = 1;  // the deterministic recording window
      opt.cfg.task_window = 1u << 20;
      opt.cfg.record_graph = true;
      opt.nfields = default_fields(spec);
      const DistResult d = run_pattern_dist(spec, opt, nprocs);
      ASSERT_TRUE(d.clean_children) << spec.describe();
      const auto want = patterns::intended_true_edges(spec);
      EXPECT_EQ(d.edges, want)
          << "cross-process true-edge multiset diverged: " << spec.describe()
          << " nprocs=" << nprocs;
      ASSERT_TRUE(images_equal(d.image, run_oracle(spec, opt.nfields)))
          << spec.describe();
    }
  }
}

// --- per-stream accounting across processes ------------------------------------

/// Mirror of submit_point's staging rule: how many input cells of the whole
/// graph live on a different rank than their consumer. Every one of them
/// must cost exactly one copy-in, duplicates included.
std::uint64_t expected_remote_fetches(const PatternSpec& spec, int nfields,
                                      unsigned nprocs) {
  std::uint64_t fetches = 0;
  for (long t = 0; t < spec.steps; ++t)
    for (long p = 0; p < spec.width_at(t); ++p) {
      if (spec.kind == PatternKind::Chain && nfields == 1 && t > 0)
        continue;  // in-place inout: producer and consumer share the datum
      const long src_f = t > 0 ? (t - 1) % nfields : 0;
      const unsigned owner =
          datum_owner(t % nfields, p, nprocs);
      Interval iv[kMaxIntervals];
      const std::size_t n = spec.dependencies(t, p, iv);
      for (std::size_t k = 0; k < n; ++k)
        for (long q = iv[k].lo; q <= iv[k].hi; ++q)
          if (datum_owner(src_f, q, nprocs) != owner) ++fetches;
    }
  return fetches;
}

TEST(DistAccounting, RankRowsSumToGlobalTotals) {
  SMPSS_REQUIRE_FORK();
  for (PatternKind kind : {PatternKind::Stencil1D, PatternKind::AllToAll}) {
    const PatternSpec spec = standard_spec(kind);
    const unsigned nprocs = 3;
    RunOptions opt;
    opt.cfg.num_threads = 1;
    opt.nfields = default_fields(spec);
    const DistResult d = run_pattern_dist(spec, opt, nprocs);
    ASSERT_TRUE(d.clean_children);
    ASSERT_EQ(d.ranks.size(), nprocs);

    const std::uint64_t total = spec.total_tasks();
    DistRankStats sum;
    for (const DistRankStats& r : d.ranks) {
      sum.tasks_spawned += r.tasks_spawned;
      sum.tasks_executed += r.tasks_executed;
      sum.publishes += r.publishes;
      sum.fetches += r.fetches;
      sum.retires_sent += r.retires_sent;
    }
    EXPECT_EQ(d.total_tasks, total);
    EXPECT_EQ(sum.tasks_spawned, total) << spec.describe();
    EXPECT_EQ(sum.tasks_executed, total) << spec.describe();
    EXPECT_EQ(sum.publishes, total)
        << "every task publishes exactly one slot, " << spec.describe();
    EXPECT_EQ(sum.retires_sent, total) << spec.describe();
    EXPECT_EQ(d.retires_received, total)
        << "coordinator lost or invented Retire messages, "
        << spec.describe();
    const std::uint64_t want_fetches =
        expected_remote_fetches(spec, opt.nfields, nprocs);
    EXPECT_GT(want_fetches, 0u)
        << "spec never crosses a process boundary — test is vacuous";
    EXPECT_EQ(sum.fetches, want_fetches) << spec.describe();
  }
}

// --- the transfer layer: copy-back across the process boundary -----------------

TEST(DistTransfer, MixedSizeCopybackCrossesProcessBoundary) {
  SMPSS_REQUIRE_FORK();
  // Cross-process variant of MixedSize.CopybackKeepsTailOfSupersededLargerWrite:
  // the datum lives in a shared segment, the whole renamed schedule runs in
  // a forked child, and the *parent* verifies the merged-extent invariant —
  // the copy-back a sibling process observes must carry the superseded
  // larger write's tail, not truncate it.
  constexpr std::size_t kBig = 1024, kSmall = 128;
  ShmSegment seg = ShmSegment::create(kBig + 64);
  SegmentAllocator alloc(seg);
  unsigned char* buf = alloc.alloc<unsigned char>(kBig);
  std::memset(buf, 0xAA, kBig);

  ProcessGroup pg;
  pg.spawn(1, [buf](unsigned) {
    Config cfg;
    cfg.num_threads = 1;
    Runtime rt(cfg);
    int r = 0;
    // Pending reader forces the big write into renamed storage.
    rt.spawn([](const unsigned char* p, int* o) { *o = p[0]; },
             in(buf, kBig), out(&r));
    rt.spawn([](unsigned char* p) { std::memset(p, 0xBB, kBig); },
             out(buf, kBig));
    rt.spawn([](unsigned char* p) { std::memset(p, 0xCC, kSmall); },
             out(buf, kSmall));
    rt.barrier();
    return r == 0xAA;
  });
  ASSERT_TRUE(pg.join()) << "child schedule failed";
  for (std::size_t i = 0; i < kSmall; ++i)
    ASSERT_EQ(buf[i], 0xCC) << "byte " << i;
  for (std::size_t i = kSmall; i < kBig; ++i)
    ASSERT_EQ(buf[i], 0xBB) << "lost merged tail at byte " << i;
}

// --- crash semantics: the stats file's final-line guarantee --------------------

std::string unique_stats_path(const char* tag) {
  return ::testing::TempDir() + "smpss_" + tag + "_" +
         std::to_string(::getpid()) + ".ndjson";
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(DistCrash, KilledChildLeavesPartialRunMarkerNotTornTail) {
  SMPSS_REQUIRE_FORK();
  const std::string path = unique_stats_path("partial");
  // Seed the file the way a SIGKILLed exporter leaves it: one whole line,
  // then a line cut off mid-write with no trailing newline.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "{\"line\":1}\n{\"torn\":tr";
  }
  ShmSegment seg = ShmSegment::create(64);
  auto* ready = new (seg.base()) std::atomic<std::uint64_t>(0);

  ProcessGroup pg;
  pg.spawn(1, [ready](unsigned) {
    ready->store(1, std::memory_order_release);
    for (;;) ::pause();
    return true;
  });
  while (ready->load(std::memory_order_acquire) == 0) ::usleep(1000);
  EXPECT_TRUE(pg.poll()) << "child died before we killed it";
  pg.kill_all();
  EXPECT_FALSE(pg.join(path)) << "a SIGKILLed child reported clean";

  ASSERT_EQ(pg.children().size(), 1u);
  EXPECT_FALSE(pg.children()[0].exited);
  EXPECT_EQ(pg.children()[0].term_signal, SIGKILL);
  EXPECT_FALSE(pg.children()[0].clean());

  const std::string got = slurp(path);
  const std::string want =
      std::string("{\"line\":1}\n{\"torn\":tr\n") +
      "{\"partial_run\":true,\"rank\":1,\"status\":" +
      std::to_string(-SIGKILL) + "}\n";
  EXPECT_EQ(got, want)
      << "torn tail must be newline-terminated and followed by exactly one "
         "well-formed partial-run marker";
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.back(), '\n') << "stats file must end in a complete line";
  std::remove(path.c_str());
}

TEST(DistCrash, CleanChildrenLeaveNoMarker) {
  SMPSS_REQUIRE_FORK();
  const std::string path = unique_stats_path("clean");
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "{\"line\":1}\n";
  }
  ProcessGroup pg;
  pg.spawn(2, [](unsigned) { return true; });
  EXPECT_TRUE(pg.join(path));
  EXPECT_EQ(slurp(path), "{\"line\":1}\n")
      << "clean exits must not append partial-run markers";
  std::remove(path.c_str());
}

// --- randomized differential fuzz over process counts --------------------------

PatternSpec random_dist_spec(Xoshiro256& rng) {
  PatternSpec s;
  s.kind = all_pattern_kinds()[rng.next_below(kPatternKindCount)];
  s.width = 2 + static_cast<std::int32_t>(rng.next_below(7));  // 2..8
  s.steps = 2 + static_cast<std::int32_t>(rng.next_below(7));  // 2..8
  s.radix = 1 + static_cast<std::int32_t>(rng.next_below(
                    std::min<std::uint64_t>(4, s.width)));
  s.period = 1 + static_cast<std::int32_t>(rng.next_below(4));
  s.fraction_ppm = static_cast<std::uint32_t>(rng.next_below(1000001));
  s.seed = rng.next();
  // width <= kMaxAddressFanIn keeps every family address-mode legal; the
  // fallback guards any future family that widens beyond its width.
  if (!patterns::address_mode_ok(s)) s.kind = PatternKind::Stencil1D;
  return s;
}

RunOptions random_dist_options(Xoshiro256& rng) {
  RunOptions o;
  o.cfg.procs = 2 + static_cast<unsigned>(rng.next_below(2));  // 2..3
  o.cfg.num_threads = 1 + static_cast<unsigned>(rng.next_below(2));
  o.cfg.renaming = rng.next_below(2) == 0;
  o.cfg.chain_depth = std::array<unsigned, 3>{0, 1, 16}[rng.next_below(3)];
  o.cfg.task_window = std::array<std::size_t, 3>{4, 16, 8192}[rng.next_below(3)];
  o.cfg.dep_shards = rng.next_below(2) ? 64u : 1u;
  o.cfg.dep_lockfree = rng.next_below(2) == 0;
  o.cfg.nested_tasks = rng.next_below(2) == 0;
  if (o.cfg.nested_tasks && rng.next_below(2) == 0)
    o.shape = SubmitShape::NestedSteps;
  return o;
}

void run_dist_fuzz_seed(std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xD157F0A7ull);
  const PatternSpec spec = random_dist_spec(rng);
  RunOptions opt = random_dist_options(rng);
  opt.nfields = patterns::min_fields(spec) +
                static_cast<int>(rng.next_below(2));
  const PatternImage expect = run_oracle(spec, opt.nfields);
  const RunResult got = run_pattern(spec, opt);
  ASSERT_TRUE(images_equal(got.image, expect))
      << "ipc fuzz seed=" << seed << " procs=" << opt.cfg.procs << "\n  "
      << spec.describe() << "\n  " << opt.describe() << "\n  "
      << smpss::testing::replay_command("ipc_dist_test", "DistFuzz.*", seed);
}

TEST(DistFuzz, TimeBoxedRandomProcs) {
  SMPSS_REQUIRE_FORK();
  if (auto s = smpss::testing::seed_override()) {
    std::cout << "ipc-fuzz: replaying single seed " << *s << std::endl;
    run_dist_fuzz_seed(*s);
    return;
  }
  // A quarter of the shared fuzz budget — each draw forks 1-2 ranks, so
  // seeds here are an order of magnitude pricier than single-process ones.
  const std::uint64_t base = smpss::testing::fuzz_seed_base(20260807);
  const long long budget_ms = smpss::testing::fuzz_budget_ms(2000, 1, 4);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  std::uint64_t seed = base;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_NO_FATAL_FAILURE(run_dist_fuzz_seed(seed))
        << "failing seed: " << seed;
    ++seed;
  }
  std::cout << "ipc-fuzz: " << (seed - base) << " seeds in [" << base << ", "
            << (seed == base ? base : seed - 1)
            << "], budget_ms=" << budget_ms << std::endl;
}

}  // namespace
}  // namespace smpss::ipc
