// Heat-diffusion example: 2-D Jacobi sweeps over array regions (the
// Sec. V.A language extension on a classic flat-data stencil). Shows the
// wavefront dependency structure the region analyzer extracts, and compares
// against the sequential sweep.
//
// Usage: ./examples/heat_regions [n] [steps] [band]  (defaults 512 100 32)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/heat.hpp"
#include "common/timing.hpp"
#include "graph/graph_stats.hpp"

using namespace smpss;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 2048;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;
  const int band = argc > 3 ? std::atoi(argv[3]) : 64;
  const std::size_t cells = static_cast<std::size_t>(n) * n;

  std::vector<float> a_seq(cells), b_seq(cells, 0.0f);
  apps::heat_init(n, a_seq.data());
  auto t0 = now_ns();
  apps::heat_seq(n, a_seq.data(), b_seq.data(), steps);
  double t_sequential = seconds_between(t0, now_ns());
  const float* expect = apps::heat_result(a_seq.data(), b_seq.data(), steps);

  std::vector<float> a(cells), b(cells, 0.0f);
  apps::heat_init(n, a.data());
  Config cfg;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = apps::HeatTasks::register_in(rt);
  t0 = now_ns();
  apps::heat_smpss_regions(rt, tt, n, a.data(), b.data(), steps, band);
  double t_parallel = seconds_between(t0, now_ns());
  const float* got = apps::heat_result(a.data(), b.data(), steps);

  bool identical = true;
  for (std::size_t i = 0; i < cells; ++i)
    if (got[i] != expect[i]) identical = false;

  auto gs = analyze_graph(rt.graph_recorder());
  std::printf("heat %dx%d, %d sweeps, band=%d, %u threads\n", n, n, steps,
              band, rt.num_threads());
  std::printf("  sequential: %.3fs   regions: %.3fs   speedup %.2fx\n",
              t_sequential, t_parallel, t_sequential / t_parallel);
  std::printf("  results bit-identical: %s\n", identical ? "yes" : "NO");
  // Note: the recorded critical path covers only edges between tasks that
  // were simultaneously live — sweeps that completed before later ones were
  // spawned leave no recorded edge (their data is already in memory).
  std::printf("  graph: %zu tasks, %zu recorded true edges, recorded "
              "critical path %zu, avg parallelism %.1f\n",
              gs.nodes, gs.edges, gs.critical_path, gs.avg_parallelism);
  std::printf("  region accesses analyzed: %llu\n",
              static_cast<unsigned long long>(rt.stats().region_accesses));
  return identical ? 0 : 1;
}
