// Quickstart: the SMPSs programming model in one file.
//
// A sequential-looking program whose annotated functions run as parallel
// tasks. The runtime discovers the dependencies between task parameters,
// renames data to remove false dependencies, and schedules ready tasks over
// the cores (paper Sec. II-III).
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "runtime/runtime.hpp"

namespace {

// Ordinary C++ functions become tasks at the call site.
void produce(int* block, const int& seed) {
  for (int i = 0; i < 64; ++i) block[i] = seed + i;
}
void transform(const int* src, int* dst) {
  for (int i = 0; i < 64; ++i) dst[i] = src[i] * 2;
}
void reduce(const int* block, long* total) {
  for (int i = 0; i < 64; ++i) *total += block[i];
}

}  // namespace

int main() {
  smpss::Runtime rt;  // workers fill the remaining cores
  std::printf("SMPSs quickstart on %u threads\n", rt.num_threads());

  constexpr int kBlocks = 16;
  std::vector<std::vector<int>> raw(kBlocks, std::vector<int>(64));
  std::vector<std::vector<int>> cooked(kBlocks, std::vector<int>(64));
  long total = 0;

  // The "program": plain loops, annotated calls. Each produce -> transform
  // pair forms an independent chain; the reduce tasks chain on `total`.
  for (int b = 0; b < kBlocks; ++b) {
    rt.spawn(produce, smpss::out(raw[b].data(), 64), smpss::value(b * 100));
    rt.spawn(transform, smpss::in(raw[b].data(), 64),
             smpss::out(cooked[b].data(), 64));
    rt.spawn(reduce, smpss::in(cooked[b].data(), 64), smpss::inout(&total));
  }

  // Equivalent of `#pragma css barrier`: wait and realign renamed data.
  rt.barrier();

  long expect = 0;
  for (int b = 0; b < kBlocks; ++b)
    for (int i = 0; i < 64; ++i) expect += 2 * (b * 100 + i);
  std::printf("total = %ld (expected %ld)\n", total, expect);

  auto s = rt.stats();
  std::printf("tasks: %llu spawned, %llu executed, %llu steals, "
              "%llu true edges, %llu renames\n",
              static_cast<unsigned long long>(s.tasks_spawned),
              static_cast<unsigned long long>(s.tasks_executed),
              static_cast<unsigned long long>(s.steals),
              static_cast<unsigned long long>(s.raw_edges),
              static_cast<unsigned long long>(s.renames));
  return total == expect ? 0 : 1;
}
