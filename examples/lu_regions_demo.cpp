// LU-with-partial-pivoting example over 2-D array regions — the algorithm
// paper Sec. V singles out as "hard to block" because of its row swaps. The
// region build keeps the matrix flat: panel tasks record pivots, per-stripe
// update tasks apply the swaps inside their own columns, and all ordering
// falls out of region overlap.
//
// Usage: ./examples/lu_regions_demo [n] [block]  (defaults 768 64)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/lu.hpp"
#include "common/timing.hpp"
#include "graph/graph_stats.hpp"
#include "hyper/flat_matrix.hpp"

using namespace smpss;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 768;
  const int bs = argc > 2 ? std::atoi(argv[2]) : 64;
  if (n % bs != 0) {
    std::fprintf(stderr, "block must divide n\n");
    return 2;
  }

  FlatMatrix a(n);
  fill_random(a, 4242);
  FlatMatrix a_seq(a);

  std::vector<int> piv_seq(static_cast<std::size_t>(n));
  auto t0 = now_ns();
  int rc_seq = apps::lu_seq(n, a_seq.data(), piv_seq.data());
  double t_sequential = seconds_between(t0, now_ns());

  Config cfg;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = apps::LuTasks::register_in(rt);
  std::vector<int> piv(static_cast<std::size_t>(n));
  t0 = now_ns();
  int rc = apps::lu_smpss_regions(rt, tt, n, a.data(), piv.data(), bs);
  double t_parallel = seconds_between(t0, now_ns());

  bool same_pivots = piv == piv_seq;
  float dv = max_abs_diff(a, a_seq);
  int swaps = 0;
  for (int j = 0; j < n; ++j)
    if (piv[static_cast<std::size_t>(j)] != j) ++swaps;

  auto gs = analyze_graph(rt.graph_recorder());
  std::printf("LU n=%d bs=%d, %u threads (rc=%d/%d)\n", n, bs,
              rt.num_threads(), rc, rc_seq);
  std::printf("  sequential: %.3fs   regions: %.3fs   speedup %.2fx  "
              "(%.2f Gflop/s)\n",
              t_sequential, t_parallel, t_sequential / t_parallel,
              apps::lu_flops(n) / t_parallel / 1e9);
  std::printf("  pivots identical to unblocked: %s (%d row swaps)  "
              "max |dA| = %.2e\n",
              same_pivots ? "yes" : "NO", swaps, static_cast<double>(dv));
  std::printf("  graph: %zu tasks (%zu panel / %zu update / %zu left-swap), "
              "%zu edges, critical path %zu\n",
              gs.nodes,
              gs.per_type_counts.size() > tt.panel.id
                  ? gs.per_type_counts[tt.panel.id] : 0,
              gs.per_type_counts.size() > tt.update.id
                  ? gs.per_type_counts[tt.update.id] : 0,
              gs.per_type_counts.size() > tt.swap_left.id
                  ? gs.per_type_counts[tt.swap_left.id] : 0,
              gs.edges, gs.critical_path);
  return same_pivots && dv < 1e-2f ? 0 : 1;
}
