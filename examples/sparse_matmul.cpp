// Sparse hyper-matrix multiplication (paper Fig. 3): "converting a dense
// algorithm into a sparse variant is simple and straightforward" — the same
// triple loop, skipping absent blocks and allocating result blocks on
// demand. The runtime keeps only the dependencies the touched blocks imply.
//
// Usage: ./examples/sparse_matmul [nb] [bs] [density%]   (defaults 16 64 25)
#include <cstdio>
#include <cstdlib>

#include "apps/matmul.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "hyper/flat_matrix.hpp"

using namespace smpss;

int main(int argc, char** argv) {
  const int nb = argc > 1 ? std::atoi(argv[1]) : 16;
  const int bs = argc > 2 ? std::atoi(argv[2]) : 64;
  const int density = argc > 3 ? std::atoi(argv[3]) : 25;
  const int n = nb * bs;

  // Build random sparse operands with ~density% of blocks present.
  Xoshiro256 rng(7);
  HyperMatrix A(nb, bs, false), B(nb, bs, false), C(nb, bs, false);
  auto fill_sparse = [&](HyperMatrix& h) {
    for (int i = 0; i < nb; ++i)
      for (int j = 0; j < nb; ++j)
        if (static_cast<int>(rng.next_below(100)) < density || i == j) {
          float* blk = h.ensure_block(i, j);
          for (std::size_t e = 0; e < h.block_elems(); ++e)
            blk[e] = 2.0f * rng.next_float() - 1.0f;
        }
  };
  fill_sparse(A);
  fill_sparse(B);

  Runtime rt;
  auto tt = apps::MatmulTasks::register_in(rt);
  auto t0 = now_ns();
  apps::matmul_smpss_sparse(rt, tt, A, B, C, blas::tuned_kernels());
  double secs = seconds_between(t0, now_ns());

  auto s = rt.stats();
  std::printf("sparse %dx%d blocks of %dx%d (%d%% density), %u threads\n", nb,
              nb, bs, bs, density, rt.num_threads());
  std::printf("  A blocks: %zu  B blocks: %zu  C blocks allocated: %zu\n",
              A.allocated_blocks(), B.allocated_blocks(),
              C.allocated_blocks());
  std::printf("  tasks: %llu (dense would spawn %llu)\n",
              static_cast<unsigned long long>(s.tasks_spawned),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(nb) * nb * nb));
  std::printf("  time: %.3fs\n", secs);

  // Validate against the dense oracle on the expanded matrices.
  FlatMatrix fa(n), fb(n), fc(n), oracle(n);
  flat_from_blocked(fa.data(), A);
  flat_from_blocked(fb.data(), B);
  flat_from_blocked(fc.data(), C);
  apps::matmul_seq_flat(n, fa.data(), fb.data(), oracle.data(),
                        blas::tuned_kernels());
  float diff = max_abs_diff(fc, oracle);
  std::printf("  max |sparse - dense oracle| = %.3e\n",
              static_cast<double>(diff));
  return diff < 1e-2f * static_cast<float>(n) ? 0 : 1;
}
