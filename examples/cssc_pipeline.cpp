// End-to-end "compiler + runtime" pipeline (paper Sec. II): the build runs
//
//     cssc cholesky_tasks.css.c -o cholesky_tasks.generated.hpp
//
// on the paper's own Fig. 2 `#pragma css` declarations, and this program
// factorizes a matrix through the generated spawn adapters. The task bodies
// below are exactly the functions the annotated C program would contain.
#include <cstdio>

// The generated adapters reference the block dimension M from the pragma
// dimension specifiers; define it before including them, as the annotated C
// program would.
constexpr int M = 32;

#include "cholesky_tasks.generated.hpp"

#include "apps/cholesky.hpp"
#include "blas/kernels.hpp"
#include "hyper/flat_matrix.hpp"
#include "hyper/hyper_matrix.hpp"

using namespace smpss;

namespace {
const blas::Kernels& K = blas::tuned_kernels();

// Task bodies, matching the generated adapters' parameter order.
void sgemm_body(const float* a, const float* b, float* c) {
  K.gemm_nt_minus(M, a, b, c);
}
void spotrf_body(float* a) { K.potrf_ln(M, a); }
void strsm_body(const float* a, float* b) { K.trsm_rltn(M, a, b); }
void ssyrk_body(const float* a, float* b) { K.syrk_ln_minus(M, a, b); }
}  // namespace

int main() {
  const int nb = 8, n = nb * M;
  FlatMatrix a(n);
  fill_spd(a, 77);
  FlatMatrix oracle(a);
  apps::cholesky_seq_flat(n, oracle.data(), K);

  Runtime rt;
  TaskType t_gemm = css_generated::register_sgemm_t(rt);
  TaskType t_potrf = css_generated::register_spotrf_t(rt);
  TaskType t_trsm = css_generated::register_strsm_t(rt);
  TaskType t_syrk = css_generated::register_ssyrk_t(rt);

  HyperMatrix A(nb, M, true);
  blocked_from_flat(A, a.data());

  // Fig. 4's loop nest, through the translator-generated adapters.
  for (int j = 0; j < nb; ++j) {
    for (int k = 0; k < j; ++k)
      for (int i = j + 1; i < nb; ++i)
        css_generated::spawn_sgemm_t(rt, t_gemm, sgemm_body, A.block(i, k),
                                     A.block(j, k), A.block(i, j));
    for (int i = 0; i < j; ++i)
      css_generated::spawn_ssyrk_t(rt, t_syrk, ssyrk_body, A.block(j, i),
                                   A.block(j, j));
    css_generated::spawn_spotrf_t(rt, t_potrf, spotrf_body, A.block(j, j));
    for (int i = j + 1; i < nb; ++i)
      css_generated::spawn_strsm_t(rt, t_trsm, strsm_body, A.block(j, j),
                                   A.block(i, j));
  }
  rt.barrier();

  FlatMatrix result(n);
  flat_from_blocked(result.data(), A);
  float diff = max_abs_diff_lower(result, oracle);
  std::printf("cssc pipeline: %llu tasks through generated adapters, "
              "max |Δ| vs oracle = %.2e — %s\n",
              static_cast<unsigned long long>(rt.stats().tasks_spawned),
              static_cast<double>(diff), diff < 1e-2f ? "OK" : "FAILED");
  std::printf("spotrf_t registered as high priority: %s (from the pragma's "
              "highpriority clause)\n",
              rt.task_types()[t_potrf.id].high_priority ? "yes" : "no");
  return diff < 1e-2f ? 0 : 1;
}
