// Tracing demo (paper Sec. VII.C): runs a blocked Cholesky under the
// tracing-enabled runtime and exports every post-mortem artifact:
//   trace.csv      timeline rows for plotting
//   trace.prv/.pcf Paraver-format state records + names
//   graph.dot      the task dependency graph
// plus an ASCII per-thread strip chart and a utilization summary on stdout.
#include <cstdio>
#include <fstream>

#include "apps/cholesky.hpp"
#include "graph/dot_export.hpp"
#include "graph/graph_stats.hpp"
#include "hyper/flat_matrix.hpp"
#include "trace/paraver.hpp"
#include "trace/timeline.hpp"

using namespace smpss;

int main() {
  Config cfg;
  cfg.tracing = true;
  cfg.record_graph = true;
  Runtime rt(cfg);
  auto tt = apps::CholeskyTasks::register_in(rt);

  const int nb = 8, bs = 128, n = nb * bs;
  FlatMatrix a(n);
  fill_spd(a, 99);
  HyperMatrix h(nb, bs, true);
  blocked_from_flat(h, a.data());
  apps::cholesky_smpss_hyper(rt, tt, h, blas::tuned_kernels());

  auto events = rt.tracer().collect();
  std::printf("traced %zu task executions on %u threads\n", events.size(),
              rt.num_threads());

  auto u = summarize_utilization(events, rt.num_threads());
  std::printf("span %.3f ms, busy %.3f ms, utilization %.1f%%, avg task "
              "%.1f us\n",
              u.span_seconds * 1e3, u.total_busy_seconds * 1e3,
              u.avg_utilization * 100.0, u.avg_task_us);

  std::printf("%s", ascii_timeline(events, rt.num_threads(), 100).c_str());

  std::ofstream csv("trace.csv");
  export_timeline_csv(csv, events, rt.task_types(), rt.tracer().origin_ns());
  std::ofstream prv("trace.prv");
  export_paraver_prv(prv, events, rt.num_threads(), rt.tracer().origin_ns());
  std::ofstream pcf("trace.pcf");
  export_paraver_pcf(pcf, rt.task_types());
  std::ofstream dot("graph.dot");
  export_dot(dot, rt.graph_recorder(), rt.task_types());

  auto gs = analyze_graph(rt.graph_recorder());
  std::printf("graph: %zu tasks, %zu edges, critical path %zu, avg "
              "parallelism %.1f\n",
              gs.nodes, gs.edges, gs.critical_path, gs.avg_parallelism);
  std::printf("wrote trace.csv trace.prv trace.pcf graph.dot\n");
  return 0;
}
