// Cholesky demo: the paper's flagship workload.
//
//  1. Factorizes a blocked SPD matrix with the Fig. 4 algorithm and checks
//     the result against the sequential factorization.
//  2. Repeats with the Fig. 9/10 flat-matrix + on-demand blocking variant.
//  3. Regenerates the Fig. 5 artifact: the 6x6 task graph (56 tasks) as a
//     Graphviz file, plus its structural statistics.
//
// Usage: ./examples/cholesky_demo [n] [block]   (defaults 1024 256)
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "apps/cholesky.hpp"
#include "common/timing.hpp"
#include "graph/dot_export.hpp"
#include "graph/graph_stats.hpp"
#include "hyper/flat_matrix.hpp"

using namespace smpss;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int bs = argc > 2 ? std::atoi(argv[2]) : 256;
  if (n <= 0 || bs <= 0 || n % bs != 0) {
    std::fprintf(stderr, "usage: %s [n] [block], block must divide n\n",
                 argv[0]);
    return 2;
  }
  const int nb = n / bs;

  FlatMatrix a(n);
  fill_spd(a, 2008);
  FlatMatrix oracle(a);
  apps::cholesky_seq_flat(n, oracle.data(), blas::tuned_kernels());

  // --- Fig. 4: blocked hyper-matrix factorization --------------------------
  {
    Runtime rt;
    auto tt = apps::CholeskyTasks::register_in(rt);
    HyperMatrix h(nb, bs, true);
    blocked_from_flat(h, a.data());
    auto t0 = now_ns();
    int rc = apps::cholesky_smpss_hyper(rt, tt, h, blas::tuned_kernels());
    double secs = seconds_between(t0, now_ns());
    FlatMatrix result(n);
    flat_from_blocked(result.data(), h);
    std::printf(
        "[hyper] n=%d bs=%d threads=%u: %.3fs  %.2f Gflop/s  rc=%d  "
        "maxdiff=%.2e  tasks=%llu\n",
        n, bs, rt.num_threads(), secs,
        apps::cholesky_flops(n) / secs / 1e9, rc,
        static_cast<double>(max_abs_diff_lower(result, oracle)),
        static_cast<unsigned long long>(rt.stats().tasks_spawned));
  }

  // --- Fig. 9/10: flat matrix with on-demand block copies ------------------
  {
    Runtime rt;
    auto tt = apps::CholeskyTasks::register_in(rt);
    FlatMatrix work(a);
    auto t0 = now_ns();
    int rc = apps::cholesky_smpss_flat(rt, tt, n, work.data(), bs,
                                       blas::tuned_kernels());
    double secs = seconds_between(t0, now_ns());
    std::printf(
        "[flat]  n=%d bs=%d threads=%u: %.3fs  %.2f Gflop/s  rc=%d  "
        "maxdiff=%.2e  tasks=%llu (incl. get/put)\n",
        n, bs, rt.num_threads(), secs,
        apps::cholesky_flops(n) / secs / 1e9, rc,
        static_cast<double>(max_abs_diff_lower(work, oracle)),
        static_cast<unsigned long long>(rt.stats().tasks_spawned));
  }

  // --- Fig. 5: the 6x6 task graph ------------------------------------------
  {
    Config cfg;
    cfg.num_threads = 2;
    cfg.record_graph = true;
    Runtime rt(cfg);
    auto tt = apps::CholeskyTasks::register_in(rt);
    HyperMatrix h(6, 16, true);
    FlatMatrix small(96);
    fill_spd(small, 5);
    blocked_from_flat(h, small.data());
    apps::cholesky_smpss_hyper(rt, tt, h, blas::tuned_kernels());

    auto gs = analyze_graph(rt.graph_recorder());
    std::printf(
        "[fig5]  6x6 Cholesky: %zu tasks, %zu edges, critical path %zu, "
        "max width %zu, avg parallelism %.2f\n",
        gs.nodes, gs.edges, gs.critical_path, gs.max_width,
        gs.avg_parallelism);

    DotOptions opts;
    opts.show_type_names = false;
    std::ofstream dot("cholesky_6x6.dot");
    export_dot(dot, rt.graph_recorder(), rt.task_types(), opts);
    std::printf("[fig5]  wrote cholesky_6x6.dot (render with: dot -Tpng)\n");
  }
  return 0;
}
