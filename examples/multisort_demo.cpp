// Multisort demo (paper Fig. 7 + Sec. V/VI.D): sorts the same array with
// the array-region build, the representant build, the Cilk-like and
// OMP3-like baselines, and the sequential recursion, reporting times.
//
// Usage: ./examples/multisort_demo [n] (default 4M elements)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/multisort.hpp"
#include "common/affinity.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

using namespace smpss;
using apps::ELM;

namespace {

std::vector<ELM> make_data(long n) {
  Xoshiro256 rng(42);
  std::vector<ELM> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<ELM>(rng.next());
  return v;
}

double time_sort(const char* name, const std::vector<ELM>& input,
                 void (*run)(std::vector<ELM>&, std::vector<ELM>&, long)) {
  std::vector<ELM> data = input;
  std::vector<ELM> tmp(data.size());
  auto t0 = now_ns();
  run(data, tmp, static_cast<long>(data.size()));
  double secs = seconds_between(t0, now_ns());
  bool ok = std::is_sorted(data.begin(), data.end());
  std::printf("  %-14s %8.3fs  %s\n", name, secs, ok ? "sorted" : "FAILED");
  return secs;
}

constexpr long kQuick = 1 << 15;
constexpr long kMerge = 1 << 14;

}  // namespace

int main(int argc, char** argv) {
  const long n = argc > 1 ? std::atol(argv[1]) : (1L << 22);
  auto input = make_data(n);
  std::printf("multisort of %ld longs (quick=%ld merge=%ld)\n", n, kQuick,
              kMerge);

  double seq = time_sort("sequential", input,
                         [](std::vector<ELM>& d, std::vector<ELM>& t, long nn) {
                           apps::multisort_seq(d.data(), t.data(), nn, kQuick);
                         });

  double smpss_regions = time_sort(
      "smpss/regions", input,
      [](std::vector<ELM>& d, std::vector<ELM>& t, long nn) {
        Runtime rt;
        auto tt = apps::MultisortTasks::register_in(rt);
        apps::multisort_smpss_regions(rt, tt, d.data(), t.data(), nn, kQuick,
                                      kMerge);
      });

  double smpss_repr = time_sort(
      "smpss/repr", input,
      [](std::vector<ELM>& d, std::vector<ELM>& t, long nn) {
        Runtime rt;
        auto tt = apps::MultisortTasks::register_in(rt);
        apps::multisort_smpss_repr(rt, tt, d.data(), t.data(), nn, kQuick);
      });

  double cilkish = time_sort("forkjoin", input,
                             [](std::vector<ELM>& d, std::vector<ELM>& t,
                                long nn) {
                               fj::Scheduler s(hardware_concurrency());
                               apps::multisort_fj(s, d.data(), t.data(), nn,
                                                  kQuick, kMerge);
                             });

  double pool = time_sort("taskpool", input,
                          [](std::vector<ELM>& d, std::vector<ELM>& t,
                             long nn) {
                            omp3::TaskPool p(hardware_concurrency());
                            apps::multisort_omp3(p, d.data(), t.data(), nn,
                                                 kQuick, kMerge);
                          });

  std::printf("speedups vs sequential: regions %.2fx, repr %.2fx, "
              "forkjoin %.2fx, taskpool %.2fx\n",
              seq / smpss_regions, seq / smpss_repr, seq / cilkish,
              seq / pool);
  return 0;
}
