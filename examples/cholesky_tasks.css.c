/* The paper's Fig. 2 task declarations (plus the Fig. 10 block movers),
 * in the original `#pragma css` syntax. The cssc translator turns this file
 * into C++ spawn adapters at build time — see examples/cssc_pipeline.cpp. */

#pragma css task input(a, b) inout(c)
void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);

#pragma css task inout(a) highpriority
void spotrf_t(float a[M][M]);

#pragma css task input(a) inout(b)
void strsm_t(float a[M][M], float b[M][M]);

#pragma css task input(a) inout(b)
void ssyrk_t(float a[M][M], float b[M][M]);

#pragma css task input(A, i, j) output(a[M][M])
void get_block(int i, int j, void *A, float *a);

#pragma css task input(a[M][M], i, j)
void put_block(int i, int j, float *a, void *A);
