// N-Queens demo (paper Sec. VI.E): counts solutions with all four
// implementations and shows the renaming statistics — the SMPSs version
// never copies the partial-solution array by hand; the runtime's renaming
// does it ("the runtime takes care of it by renaming the array as needed").
//
// Usage: ./examples/nqueens_demo [n] [task_depth]  (defaults 12 4)
#include <cstdio>
#include <cstdlib>

#include "apps/nqueens.hpp"
#include "common/affinity.hpp"
#include "common/timing.hpp"

using namespace smpss;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 13;
  const int depth = argc > 2 ? std::atoi(argv[2]) : 10;
  std::printf("n-queens n=%d, task depth %d, %u threads\n", n, depth,
              hardware_concurrency());

  auto t0 = now_ns();
  long seq = apps::nqueens_seq(n);
  double t_seq = seconds_between(t0, now_ns());
  std::printf("  %-10s %10ld solutions  %8.3fs\n", "sequential", seq, t_seq);

  {
    Runtime rt;
    auto tt = apps::NQueensTasks::register_in(rt);
    t0 = now_ns();
    long count = apps::nqueens_smpss(rt, tt, n, depth);
    double secs = seconds_between(t0, now_ns());
    auto s = rt.stats();
    std::printf(
        "  %-10s %10ld solutions  %8.3fs  (%.2fx)  renames=%llu "
        "copied=%.1f MiB by the RUNTIME, not the program\n",
        "smpss", count, secs, t_seq / secs,
        static_cast<unsigned long long>(s.renames),
        static_cast<double>(s.copy_in_bytes) / (1 << 20));
  }
  {
    fj::Scheduler s(hardware_concurrency());
    t0 = now_ns();
    long count = apps::nqueens_fj(s, n, depth);
    double secs = seconds_between(t0, now_ns());
    std::printf("  %-10s %10ld solutions  %8.3fs  (%.2fx)  board copied "
                "manually per task\n",
                "forkjoin", count, secs, t_seq / secs);
  }
  {
    omp3::TaskPool p(hardware_concurrency());
    t0 = now_ns();
    long count = apps::nqueens_omp3(p, n, depth);
    double secs = seconds_between(t0, now_ns());
    std::printf("  %-10s %10ld solutions  %8.3fs  (%.2fx)  board copied "
                "manually per task\n",
                "taskpool", count, secs, t_seq / secs);
  }
  return 0;
}
