#!/usr/bin/env python3
"""Perf-regression gate over Google Benchmark JSON artifacts.

Diffs the current run's BENCH_*.json files against a baseline directory
(the latest successful main run, restored from the CI cache keyed
``bench-baseline``), prints a trajectory table (and appends it to
``$GITHUB_STEP_SUMMARY`` when set), and exits non-zero when any benchmark's
median throughput regressed by more than the threshold.

Throughput is taken from the ``tasks_per_s`` user counter (higher is
better); benchmarks without it fall back to ``real_time`` (lower is
better). Benchmarks that export a ``p99_ns`` latency counter (the service
benches) are additionally gated on the tail: a ``name::p99_ns`` row
(lower is better) rides next to the throughput row, so a change that keeps
the median rate but blows up the latency tail still fails the gate.
Repetition aggregates: the ``_median`` entry is preferred, then ``_mean``,
then the median over raw repetitions.

Usage:
    bench_compare.py --baseline DIR --current DIR [--threshold 0.20]

A missing baseline directory or file is not a failure — the first run on a
fresh cache seeds the baseline instead of gating against nothing.
"""

import argparse
import glob
import json
import os
import statistics
import sys


def load_medians(path):
    """Map benchmark name -> (value, higher_is_better) medians."""
    with open(path) as f:
        data = json.load(f)
    raw = {}
    aggregates = {}
    for b in data.get("benchmarks", []):
        name = b.get("run_name") or b.get("name", "")
        if not name:
            continue
        metrics = []
        counters_value = b.get("tasks_per_s")
        if counters_value is not None:
            metrics.append((name, float(counters_value), True))
        else:
            metrics.append((name, float(b.get("real_time", 0.0)), False))
        p99 = b.get("p99_ns")
        if p99 is not None and float(p99) > 0:
            metrics.append((f"{name}::p99_ns", float(p99), False))
        for mname, value, higher in metrics:
            if b.get("run_type") == "aggregate":
                if b.get("aggregate_name") in ("median", "mean"):
                    aggregates.setdefault(mname, {})[b["aggregate_name"]] = (
                        value, higher)
            else:
                raw.setdefault(mname, []).append((value, higher))
    out = {}
    for name, aggs in aggregates.items():
        picked = aggs.get("median") or aggs.get("mean")
        if picked is None:
            # No usable aggregate for this metric; leave it to the raw
            # repetitions below rather than storing a row that would make
            # the gate loop unpack None.
            continue
        out[name] = picked
    for name, samples in raw.items():
        if name in out:
            continue
        values = [v for v, _ in samples]
        out[name] = (statistics.median(values), samples[0][1])
    return out


def fmt(value):
    for unit, div in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if abs(value) >= div:
            return f"{value / div:.2f}{unit}"
    return f"{value:.2f}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="directory with the baseline BENCH_*.json files")
    ap.add_argument("--current", required=True,
                    help="directory with this run's BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated median regression (0.20 = 20%%)")
    args = ap.parse_args()

    current_files = sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json")))
    if not current_files:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 2

    lines = ["| benchmark | baseline | current | delta | verdict |",
             "|---|---|---|---|---|"]
    regressions = []
    compared = 0
    for cur_path in current_files:
        fname = os.path.basename(cur_path)
        base_path = os.path.join(args.baseline, fname)
        current = load_medians(cur_path)
        baseline = load_medians(base_path) if os.path.exists(base_path) else {}
        for name, (cur, higher) in sorted(current.items()):
            entry = baseline.get(name)
            base = entry[0] if entry is not None else None
            if base is None or base <= 0:
                # Absent from the baseline, or present with a zero/unusable
                # median (e.g. a ::p99_ns row recorded before the counter
                # existed): nothing to divide by. Report "new benchmark"
                # instead of crashing or silently dropping the row — the
                # next baseline promotion picks it up for real gating.
                lines.append(f"| `{name}` | — | {fmt(cur)} | — | new |")
                continue
            compared += 1
            # Normalize to "relative throughput change" regardless of metric
            # direction, so the table always reads higher-is-better.
            change = (cur - base) / base if higher else (base - cur) / base
            verdict = "ok"
            if change < -args.threshold:
                verdict = "REGRESSION"
                regressions.append((name, change))
            elif change > args.threshold:
                verdict = "improved"
            lines.append(f"| `{name}` | {fmt(base)} | {fmt(cur)} | "
                         f"{change * 100:+.1f}% | {verdict} |")

    title = "## Bench trajectory vs. main baseline"
    if compared == 0:
        title += " (no baseline yet — this run seeds it)"
    table = title + "\n\n" + "\n".join(lines) + "\n"
    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(table)

    if regressions:
        worst = ", ".join(f"{n} ({c * 100:+.1f}%)" for n, c in regressions)
        print(f"FAIL: median throughput regressed beyond "
              f"{args.threshold * 100:.0f}%: {worst}", file=sys.stderr)
        return 1
    print("bench-compare: gate passed "
          f"({compared} benchmark(s) compared against the baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
