#!/usr/bin/env python3
"""Unit tests for bench_compare.py (run from ctest as `bench_compare_unit`).

Covers the regression gate's edge cases around the baseline: a missing
baseline directory seeds instead of failing, a zero or missing baseline
median (the ``::p99_ns`` hazard) reports "new benchmark" instead of
crashing the gate, and genuine throughput/tail regressions still fail.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def bench_row(name, tasks_per_s=None, real_time=None, p99_ns=None,
              aggregate=None):
    row = {"name": name, "run_name": name}
    if aggregate is not None:
        row["run_type"] = "aggregate"
        row["aggregate_name"] = aggregate
    if tasks_per_s is not None:
        row["tasks_per_s"] = tasks_per_s
    if real_time is not None:
        row["real_time"] = real_time
    if p99_ns is not None:
        row["p99_ns"] = p99_ns
    return row


def write_bench(dirpath, fname, rows):
    os.makedirs(dirpath, exist_ok=True)
    with open(os.path.join(dirpath, fname), "w") as f:
        json.dump({"benchmarks": rows}, f)


def run_gate(baseline, current, threshold=0.20):
    argv = sys.argv
    sys.argv = ["bench_compare.py", "--baseline", baseline,
                "--current", current, "--threshold", str(threshold)]
    out = io.StringIO()
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            code = bench_compare.main()
    finally:
        sys.argv = argv
    return code, out.getvalue()


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base = os.path.join(self.tmp.name, "baseline")
        self.cur = os.path.join(self.tmp.name, "current")
        os.makedirs(self.cur)

    def tearDown(self):
        self.tmp.cleanup()

    def test_missing_baseline_dir_seeds(self):
        write_bench(self.cur, "BENCH_x.json", [bench_row("BM_A/1",
                                                         tasks_per_s=100.0)])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 0)
        self.assertIn("no baseline yet", out)
        self.assertIn("| `BM_A/1` | — |", out)

    def test_missing_baseline_entry_reports_new(self):
        write_bench(self.base, "BENCH_x.json", [bench_row("BM_A/1",
                                                          tasks_per_s=100.0)])
        write_bench(self.cur, "BENCH_x.json", [
            bench_row("BM_A/1", tasks_per_s=100.0),
            bench_row("BM_B/1", tasks_per_s=50.0),
        ])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 0)
        self.assertIn("| `BM_B/1` | — |", out)
        self.assertIn("| new |", out)

    def test_zero_baseline_median_reports_new_not_crash(self):
        # A baseline recorded before the counter existed: tasks_per_s == 0.
        # Dividing by it used to crash/skip; it must gate as "new".
        write_bench(self.base, "BENCH_x.json", [bench_row("BM_A/1",
                                                          tasks_per_s=0.0)])
        write_bench(self.cur, "BENCH_x.json", [bench_row("BM_A/1",
                                                         tasks_per_s=120.0)])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 0)
        self.assertIn("| `BM_A/1` | — |", out)
        self.assertIn("| new |", out)

    def test_p99_row_with_zero_baseline_is_new(self):
        # Baseline has throughput but its p99_ns was zero (filtered out on
        # load), current exports a real tail: the ::p99_ns row is new, the
        # throughput row still gates normally.
        write_bench(self.base, "BENCH_s.json", [
            bench_row("BM_S/1", tasks_per_s=100.0, p99_ns=0)])
        write_bench(self.cur, "BENCH_s.json", [
            bench_row("BM_S/1", tasks_per_s=100.0, p99_ns=5000.0)])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 0)
        self.assertIn("| `BM_S/1::p99_ns` | — |", out)

    def test_throughput_regression_fails(self):
        write_bench(self.base, "BENCH_x.json", [bench_row("BM_A/1",
                                                          tasks_per_s=1000.0)])
        write_bench(self.cur, "BENCH_x.json", [bench_row("BM_A/1",
                                                         tasks_per_s=500.0)])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_p99_regression_fails(self):
        write_bench(self.base, "BENCH_s.json", [
            bench_row("BM_S/1", tasks_per_s=100.0, p99_ns=1000.0)])
        write_bench(self.cur, "BENCH_s.json", [
            bench_row("BM_S/1", tasks_per_s=100.0, p99_ns=5000.0)])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 1)
        self.assertIn("BM_S/1::p99_ns", out)

    def test_within_threshold_passes(self):
        write_bench(self.base, "BENCH_x.json", [bench_row("BM_A/1",
                                                          tasks_per_s=1000.0)])
        write_bench(self.cur, "BENCH_x.json", [bench_row("BM_A/1",
                                                         tasks_per_s=950.0)])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 0)
        self.assertIn("gate passed", out)

    def test_aggregate_median_preferred_and_none_safe(self):
        # Aggregates carry the gate; a raw-only metric coexists.
        write_bench(self.base, "BENCH_x.json", [
            bench_row("BM_A/1", tasks_per_s=900.0, aggregate="mean"),
            bench_row("BM_A/1", tasks_per_s=1000.0, aggregate="median"),
        ])
        write_bench(self.cur, "BENCH_x.json", [
            bench_row("BM_A/1", tasks_per_s=980.0, aggregate="median"),
        ])
        code, out = run_gate(self.base, self.cur)
        self.assertEqual(code, 0)
        self.assertIn("gate passed (1 benchmark(s)", out)


if __name__ == "__main__":
    unittest.main()
