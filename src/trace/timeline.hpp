// Timeline exports and utilization summaries from a collected trace.
// CSV for plotting, an ASCII per-thread strip chart for quick terminal
// inspection, and aggregate utilization (the quantity behind the paper's
// scalability discussion: when the graph starves, utilization gaps appear).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace smpss {

struct TaskTypeInfo;

/// worker,task,seq,type,start_us,end_us rows; times relative to origin_ns.
void export_timeline_csv(std::ostream& os, const std::vector<TraceEvent>& events,
                         const std::vector<TaskTypeInfo>& types,
                         std::uint64_t origin_ns);

/// Per-worker busy fraction over the traced interval.
struct UtilizationSummary {
  double span_seconds = 0.0;          ///< first start .. last end
  double total_busy_seconds = 0.0;    ///< sum of task bodies
  double avg_utilization = 0.0;       ///< busy / (span * nthreads)
  double avg_task_us = 0.0;
  std::vector<double> per_worker_busy_seconds;
};

UtilizationSummary summarize_utilization(const std::vector<TraceEvent>& events,
                                         unsigned nthreads);

/// Coarse ASCII strip chart: one row per worker, `width` buckets; a bucket
/// is drawn when the worker was busy during it.
std::string ascii_timeline(const std::vector<TraceEvent>& events,
                           unsigned nthreads, unsigned width = 80);

}  // namespace smpss
