// Per-thread trace buffers, merged on demand. Recording costs one vector
// push per task and only when enabled, in line with the paper's split
// between "a standard runtime and a tracing-enabled runtime".
#pragma once

#include <cstdint>
#include <vector>

#include "common/cache.hpp"
#include "trace/event.hpp"

namespace smpss {

class Tracer {
 public:
  void init(unsigned nthreads, bool enabled);

  bool enabled() const noexcept { return enabled_; }

  void record(unsigned tid, const TraceEvent& e) {
    if (enabled_) buffers_[tid].events.push_back(e);
  }

  /// All events from all threads, sorted by start time.
  std::vector<TraceEvent> collect() const;

  /// Timestamp of init(); timeline exports are relative to this.
  std::uint64_t origin_ns() const noexcept { return origin_; }

  std::size_t event_count() const noexcept;
  void clear();

 private:
  struct alignas(kCacheLineSize) Buffer {
    std::vector<TraceEvent> events;
  };
  bool enabled_ = false;
  std::uint64_t origin_ = 0;
  std::vector<Buffer> buffers_;
};

}  // namespace smpss
