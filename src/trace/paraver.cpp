#include "trace/paraver.hpp"

#include <algorithm>
#include <ostream>

#include "runtime/runtime.hpp"

namespace smpss {

void export_paraver_prv(std::ostream& os, const std::vector<TraceEvent>& events,
                        unsigned nthreads, std::uint64_t origin_ns) {
  std::uint64_t end = origin_ns;
  for (const TraceEvent& e : events) end = std::max(end, e.end_ns);
  const std::uint64_t span = end - origin_ns;

  // Header: #Paraver (date):duration:nodes(cpus):appls:tasks(threads)
  os << "#Paraver (smpss):" << span << "_ns:1(" << nthreads << "):1:1("
     << nthreads << ":1)\n";
  for (const TraceEvent& e : events) {
    // 1:cpu:appl:task:thread:begin:end:state
    os << "1:" << (e.worker + 1) << ":1:1:" << (e.worker + 1) << ':'
       << (e.start_ns - origin_ns) << ':' << (e.end_ns - origin_ns) << ':'
       << (e.type_id + 1) << '\n';
  }
}

void export_paraver_pcf(std::ostream& os,
                        const std::vector<TaskTypeInfo>& types) {
  os << "STATES\n0 Idle\n";
  for (std::size_t i = 0; i < types.size(); ++i)
    os << (i + 1) << ' ' << types[i].name << '\n';
}

}  // namespace smpss
