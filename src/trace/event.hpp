// Trace events: one record per executed task, the information the original
// SMPSs tracing-enabled runtime recorded for post-mortem Paraver analysis
// ("events related to task creation and execution", paper Sec. VII.C).
#pragma once

#include <cstdint>

namespace smpss {

struct TraceEvent {
  std::uint64_t seq;        ///< task invocation order (graph node id)
  std::uint64_t parent_seq; ///< spawning task's seq; 0 = top-level (nested mode)
  std::uint32_t type_id;    ///< task type (for coloring)
  std::uint32_t worker;     ///< executing thread (0 = main)
  std::uint64_t start_ns;   ///< body start, steady-clock ns
  std::uint64_t end_ns;     ///< body end (after completion bookkeeping starts)
};

}  // namespace smpss
