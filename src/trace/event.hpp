// Trace events: one record per executed task, the information the original
// SMPSs tracing-enabled runtime recorded for post-mortem Paraver analysis
// ("events related to task creation and execution", paper Sec. VII.C).
#pragma once

#include <cstdint>

namespace smpss {

struct TraceEvent {
  std::uint64_t seq;        ///< task invocation order (graph node id)
  std::uint64_t parent_seq; ///< spawning task's seq; 0 = top-level (nested mode)
  std::uint32_t type_id;    ///< task type (for coloring)
  std::uint32_t worker;     ///< executing thread (0 = main)
  std::uint64_t start_ns;   ///< body start, steady-clock ns
  std::uint64_t end_ns;     ///< body end (after completion bookkeeping starts)
  /// 1 when the worker reached this task by chaining directly out of the
  /// previous completion (never through the ready lists — see
  /// Config::chain_depth); 0 for a normal ready-list acquire.
  std::uint32_t chained = 0;
};

}  // namespace smpss
