#include "trace/tracer.hpp"

#include <algorithm>

#include "common/timing.hpp"

namespace smpss {

void Tracer::init(unsigned nthreads, bool enabled) {
  enabled_ = enabled;
  origin_ = now_ns();
  buffers_.clear();
  if (enabled_) {
    buffers_.resize(nthreads);
    for (auto& b : buffers_) b.events.reserve(1024);
  }
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> all;
  for (const auto& b : buffers_)
    all.insert(all.end(), b.events.begin(), b.events.end());
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return all;
}

std::size_t Tracer::event_count() const noexcept {
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b.events.size();
  return n;
}

void Tracer::clear() {
  for (auto& b : buffers_) b.events.clear();
}

}  // namespace smpss
