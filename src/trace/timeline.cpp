#include "trace/timeline.hpp"

#include <algorithm>
#include <ostream>

#include "runtime/runtime.hpp"

namespace smpss {

void export_timeline_csv(std::ostream& os, const std::vector<TraceEvent>& events,
                         const std::vector<TaskTypeInfo>& types,
                         std::uint64_t origin_ns) {
  os << "worker,seq,type,start_us,end_us,parent,chained\n";
  for (const TraceEvent& e : events) {
    const char* tname =
        e.type_id < types.size() ? types[e.type_id].name.c_str() : "?";
    os << e.worker << ',' << e.seq << ',' << tname << ','
       << static_cast<double>(e.start_ns - origin_ns) / 1e3 << ','
       << static_cast<double>(e.end_ns - origin_ns) / 1e3 << ','
       << e.parent_seq << ',' << e.chained << '\n';
  }
}

UtilizationSummary summarize_utilization(const std::vector<TraceEvent>& events,
                                         unsigned nthreads) {
  UtilizationSummary s;
  s.per_worker_busy_seconds.assign(nthreads, 0.0);
  if (events.empty()) return s;
  std::uint64_t first = events.front().start_ns, last = 0;
  for (const TraceEvent& e : events) {
    first = std::min(first, e.start_ns);
    last = std::max(last, e.end_ns);
    double busy = static_cast<double>(e.end_ns - e.start_ns) * 1e-9;
    s.total_busy_seconds += busy;
    if (e.worker < nthreads) s.per_worker_busy_seconds[e.worker] += busy;
  }
  s.span_seconds = static_cast<double>(last - first) * 1e-9;
  if (s.span_seconds > 0.0 && nthreads > 0)
    s.avg_utilization = s.total_busy_seconds / (s.span_seconds * nthreads);
  s.avg_task_us = s.total_busy_seconds * 1e6 / static_cast<double>(events.size());
  return s;
}

std::string ascii_timeline(const std::vector<TraceEvent>& events,
                           unsigned nthreads, unsigned width) {
  if (events.empty() || width == 0) return "";
  std::uint64_t first = events.front().start_ns, last = 0;
  for (const TraceEvent& e : events) {
    first = std::min(first, e.start_ns);
    last = std::max(last, e.end_ns);
  }
  if (last <= first) return "";
  double bucket_ns = static_cast<double>(last - first) / width;
  std::vector<std::string> rows(nthreads, std::string(width, '.'));
  for (const TraceEvent& e : events) {
    if (e.worker >= nthreads) continue;
    auto b0 = static_cast<std::size_t>(
        static_cast<double>(e.start_ns - first) / bucket_ns);
    auto b1 = static_cast<std::size_t>(
        static_cast<double>(e.end_ns - first) / bucket_ns);
    b0 = std::min<std::size_t>(b0, width - 1);
    b1 = std::min<std::size_t>(b1, width - 1);
    for (std::size_t b = b0; b <= b1; ++b) rows[e.worker][b] = '#';
  }
  std::string out;
  for (unsigned w = 0; w < nthreads; ++w) {
    out += "T";
    out += std::to_string(w);
    out += w < 10 ? "  |" : " |";
    out += rows[w];
    out += "|\n";
  }
  return out;
}

}  // namespace smpss
