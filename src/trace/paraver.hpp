// Paraver-like trace export (paper Sec. VII.C: the tracing-enabled SMPSs
// runtime "records events related to task creation and execution for post-
// mortem analysis with the Paraver tool").
//
// We emit the textual Paraver .prv state-record format: a header line plus
// one state record per task execution
//
//   1:cpu:appl:task:thread:begin:end:state
//
// with the SMPSs convention of encoding the task type as the state value
// (offset by 1; state 0 = idle). A .pcf naming file is emitted alongside so
// real Paraver builds can color by task type.
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/event.hpp"

namespace smpss {

struct TaskTypeInfo;

void export_paraver_prv(std::ostream& os, const std::vector<TraceEvent>& events,
                        unsigned nthreads, std::uint64_t origin_ns);

void export_paraver_pcf(std::ostream& os,
                        const std::vector<TaskTypeInfo>& types);

}  // namespace smpss
