// Log-bucketed latency histogram for the service-mode latency tier.
//
// The batch engine's benches are throughput-only; a long-lived service is
// judged on tail latency (task-bench's methodology reports both). This
// histogram makes p50/p99 submit-to-retire latency observable at a cost the
// retire fast path can afford: one relaxed fetch_add per sample, no locks,
// no allocation. Buckets are quarter-octave (4 linear sub-buckets per
// power of two), so a reported percentile is within ~12% of the true value —
// plenty for a regression gate, useless for calibration-grade timing.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace smpss {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 2;           // 4 sub-buckets/octave
  static constexpr unsigned kSub = 1u << kSubBits;
  static constexpr unsigned kBuckets = 16 + (64 - 4) * kSub;  // 256

  /// Bucket of a nanosecond sample: values < 16 get an exact bucket each;
  /// above that, the octave of the leading bit plus the next two bits.
  static unsigned index(std::uint64_t ns) noexcept {
    if (ns < 16) return static_cast<unsigned>(ns);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(ns));
    const unsigned sub =
        static_cast<unsigned>(ns >> (msb - kSubBits)) & (kSub - 1);
    return 16 + (msb - 4) * kSub + sub;
  }

  /// Upper bound (ns) of bucket `b` — the value percentile() reports, so
  /// estimates err toward "slower", never hiding a regression.
  static std::uint64_t bucket_bound(unsigned b) noexcept {
    if (b < 16) return b;
    const unsigned msb = 4 + (b - 16) / kSub;
    const unsigned sub = (b - 16) % kSub;
    const std::uint64_t step = std::uint64_t(1) << (msb - kSubBits);
    return (std::uint64_t(1) << msb) + (sub + 1) * step - 1;
  }

  void record(std::uint64_t ns) noexcept {
    buckets_[index(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Latency (ns) at quantile `q` in [0, 1]; 0 when empty. Racy by design
  /// (monitoring reads concurrent with recording) — each bucket load is
  /// atomic, the sum is a snapshot-in-passing.
  std::uint64_t percentile(double q) const noexcept {
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    std::uint64_t rank = static_cast<std::uint64_t>(q * double(total - 1));
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (rank < counts[b]) return bucket_bound(b);
      rank -= counts[b];
    }
    return bucket_bound(kBuckets - 1);
  }

  /// Accumulate this histogram into `out[kBuckets]` (merged service-wide
  /// percentiles across streams).
  void merge_into(std::uint64_t* out) const noexcept {
    for (unsigned b = 0; b < kBuckets; ++b)
      out[b] += buckets_[b].load(std::memory_order_relaxed);
  }

  /// percentile() over a merged bucket array.
  static std::uint64_t percentile_of(const std::uint64_t* counts, double q,
                                     std::uint64_t total) noexcept {
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    std::uint64_t rank = static_cast<std::uint64_t>(q * double(total - 1));
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (rank < counts[b]) return bucket_bound(b);
      rank -= counts[b];
    }
    return bucket_bound(kBuckets - 1);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

}  // namespace smpss
