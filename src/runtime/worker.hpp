// Worker thread entry point. Declared separately so the loop can be unit-
// tested and reused; the Runtime constructor launches one per extra core.
#pragma once

namespace smpss {

class Runtime;

/// Body of worker thread `tid` (1-based; 0 is the main thread). Runs the
/// Sec. III acquire policy until the runtime shuts down.
void worker_main(Runtime& rt, unsigned tid);

}  // namespace smpss
