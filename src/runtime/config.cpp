#include "runtime/config.hpp"

#include "common/affinity.hpp"
#include "common/env.hpp"

namespace smpss {

Config Config::from_env() {
  Config c;
  if (auto v = env_int("SMPSS_NUM_THREADS"); v && *v > 0)
    c.num_threads = static_cast<unsigned>(*v);
  if (auto v = env_int("SMPSS_TASK_WINDOW"); v && *v > 0)
    c.task_window = static_cast<std::size_t>(*v);
  if (auto v = env_int("SMPSS_RENAME_MEMORY_MB"); v && *v > 0)
    c.rename_memory_limit = static_cast<std::size_t>(*v) << 20;
  if (auto v = env_bool("SMPSS_RENAMING")) c.renaming = *v;
  if (auto v = env_bool("SMPSS_NESTED")) c.nested_tasks = *v;
  if (auto v = env_int("SMPSS_DEP_SHARDS"); v && *v > 0)
    c.dep_shards = static_cast<unsigned>(*v);
  if (auto v = env_bool("SMPSS_DEP_LOCKFREE")) c.dep_lockfree = *v;
  if (auto v = env_int("SMPSS_CHAIN_DEPTH"); v && *v >= 0)
    c.chain_depth = static_cast<unsigned>(*v);
  if (auto v = env_int("SMPSS_POOL_CACHE"); v && *v >= 0)
    c.pool_cache = static_cast<unsigned>(*v);
  if (auto v = env_string("SMPSS_SCHEDULER")) {
    if (*v == "centralized") c.scheduler_mode = SchedulerMode::Centralized;
    if (*v == "distributed") c.scheduler_mode = SchedulerMode::Distributed;
  }
  if (auto v = env_string("SMPSS_STEAL_ORDER")) {
    if (*v == "random") c.steal_order = StealOrder::Random;
    if (*v == "creation") c.steal_order = StealOrder::CreationOrder;
  }
  if (auto v = env_string("SMPSS_SCHED_POLICY")) {
    if (*v == "aware") c.sched_policy = SchedPolicyKind::Aware;
    if (*v == "paper") c.sched_policy = SchedPolicyKind::Paper;
  }
  if (auto v = env_int("SMPSS_AWARE_CRIT_PPM"); v && *v > 0)
    c.aware_crit_ppm = static_cast<std::uint32_t>(*v);
  if (auto v = env_int("SMPSS_AWARE_LOCALITY_PPM"); v && *v > 0)
    c.aware_locality_ppm = static_cast<std::uint32_t>(*v);
  if (auto v = env_int("SMPSS_AWARE_COST_NS"); v && *v > 0)
    c.aware_cost_ns = static_cast<std::uint64_t>(*v);
  if (auto v = env_bool("SMPSS_PIN_THREADS")) c.pin_threads = *v;
  if (auto v = env_bool("SMPSS_TRACE")) c.tracing = *v;
  if (auto v = env_bool("SMPSS_RECORD_GRAPH")) c.record_graph = *v;
  if (auto v = env_int("SMPSS_STREAMS"); v && *v > 0)
    c.max_streams = static_cast<unsigned>(*v);
  if (auto v = env_int("SMPSS_STATS_PERIOD_MS"); v && *v >= 0)
    c.stats_period_ms = static_cast<unsigned>(*v);
  if (auto v = env_string("SMPSS_STATS_FILE")) c.stats_path = *v;
  if (auto v = env_int("SMPSS_PROCS"); v && *v > 0)
    c.procs = static_cast<unsigned>(*v);
  return c;
}

void Config::normalize() {
  if (num_threads == 0) num_threads = hardware_concurrency();
  if (num_threads < 1) num_threads = 1;
  if (task_window < 2) task_window = 2;
  if (task_window_low == 0 || task_window_low >= task_window)
    task_window_low = task_window / 2;
  if (dep_shards == 0) dep_shards = 64;
  if (!nested_tasks || !renaming) dep_lockfree = false;
  if (spin_acquires == 0) spin_acquires = 1;
  if (max_streams == 0) max_streams = 1;
  // The promotion threshold must stay above the average (ppm > 1e6) or
  // every ready task would "exceed" it and the high list would swallow the
  // whole graph; cost estimates of 0 would zero all priorities.
  if (aware_crit_ppm <= 1000000) aware_crit_ppm = 1000001;
  if (aware_cost_ns == 0) aware_cost_ns = 1;
  if (procs < 1) procs = 1;
  if (procs > 16) procs = 16;
}

}  // namespace smpss
