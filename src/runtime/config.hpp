// Runtime configuration. Defaults follow the paper; every knob is also
// readable from the environment (the original SMPSs distribution was
// configured through CSS_* variables such as CSS_NUM_CPUS — we use the
// SMPSS_ prefix).
//
//   SMPSS_NUM_THREADS       total threads including the main thread
//   SMPSS_TASK_WINDOW       graph-size blocking condition (live tasks)
//   SMPSS_RENAME_MEMORY_MB  renamed-storage blocking condition
//   SMPSS_RENAMING          0/1 — disable/enable renaming
//   SMPSS_NESTED            0/1 — real nested tasks instead of inlining
//   SMPSS_DEP_SHARDS        dependency-table shards (1 = global lock)
//   SMPSS_DEP_LOCKFREE      0/1 — CAS version-chain publication (no shard
//                           mutexes on submit; needs renaming + nested)
//   SMPSS_CHAIN_DEPTH       max chained executions per acquire (0 = off)
//   SMPSS_POOL_CACHE        task-pool blocks cached per worker (0 = malloc)
//   SMPSS_SCHEDULER         distributed | centralized
//   SMPSS_STEAL_ORDER       creation | random
//   SMPSS_SCHED_POLICY      paper | aware (see sched/policy.hpp)
//   SMPSS_AWARE_CRIT_PPM    aware: high-list promotion threshold vs average
//   SMPSS_AWARE_LOCALITY_PPM aware: input share needed to prefer a worker
//   SMPSS_AWARE_COST_NS     aware: assumed cost of a never-run task type
//   SMPSS_PIN_THREADS       0/1
//   SMPSS_TRACE             0/1 — record per-task timing events
//   SMPSS_RECORD_GRAPH      0/1 — record nodes/edges for DOT export
//   SMPSS_STREAMS           service-mode stream registry capacity
//   SMPSS_STATS_PERIOD_MS   periodic JSON stats exporter period (0 = off)
//   SMPSS_STATS_FILE        exporter destination ("" = stderr, appended)
//   SMPSS_PROCS             worker processes for the pattern drivers'
//                           multi-process backend (1 = single-process)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sched/policy.hpp"
#include "sched/ready_lists.hpp"

namespace smpss {

struct Config {
  /// Total threads, main thread included ("the runtime creates as many
  /// worker threads as necessary to fill out the rest of the cores").
  /// 0 means use all available cores.
  unsigned num_threads = 0;

  /// Graph-size blocking condition: when the number of live (not yet
  /// completed) tasks reaches this, the main thread behaves as a worker
  /// until it drops below `task_window_low`.
  std::size_t task_window = 8192;
  std::size_t task_window_low = 0;  ///< 0 means task_window/2

  /// Renamed-storage blocking condition, in bytes.
  std::size_t rename_memory_limit = std::size_t(512) << 20;

  /// Data renaming (paper default on; off reproduces a dependency-unaware
  /// WAR/WAW-edge runtime for the ablation benches).
  bool renaming = true;

  /// Nested task parallelism. Off (the paper-faithful default, Sec. VII.D)
  /// demotes a spawn from inside a task to a plain inline function call. On,
  /// any thread may submit real tasks: dependency analysis runs through the
  /// address-striped shard pipeline (per-datum serialization, as in the
  /// later BSC runtimes that lifted this restriction), tasks track their
  /// parent, and Runtime::taskwait() waits for the calling task's children
  /// while executing other ready tasks.
  bool nested_tasks = false;

  /// Shard count of the address-striped dependency pipeline: the per-datum
  /// tracking tables are split into this many hash-sharded maps, each with
  /// its own mutex, and a submission locks only the shards its parameters
  /// hash to (in index order — two-phase acquisition). Only exercised with
  /// nested_tasks (the single-submitter path takes no locks at all).
  /// 0 = auto (64); values round up to a power of two; 1 reproduces the
  /// global-submission-lock behavior (the bench baseline).
  unsigned dep_shards = 0;

  /// Lock-free dependency pipeline: publish version-chain heads by CAS and
  /// take no shard mutex on the in/out/inout submission path (see
  /// dep/dependency_analyzer.hpp). Only meaningful with nested_tasks
  /// (single-submitter runs take no locks either way) and requires renaming
  /// (the no-renaming ablation's reader lists need the submission lock);
  /// normalize() clears it when either precondition is missing. The shards
  /// stay as the hash layout of the entry table in both modes.
  bool dep_lockfree = true;

  /// Immediate-successor chaining bound: when completing a task releases
  /// exactly one successor (and no high-priority task is pending), the
  /// worker runs it directly — no ready-list push/pop, no wakeup — up to
  /// this many times per acquire before returning to the normal lookup
  /// policy (which keeps stealing/high-priority latency bounded). 0 turns
  /// chaining off and reproduces the paper's pure list-driven dispatch.
  unsigned chain_depth = 16;

  /// Per-submitter-slot cache size (in blocks) of the pooled TaskNode /
  /// closure allocator; also its refill batch size. 0 disables pooling and
  /// puts plain new/delete back on the spawn/retire path (the microbench
  /// baseline).
  unsigned pool_cache = 64;

  SchedulerMode scheduler_mode = SchedulerMode::Distributed;
  StealOrder steal_order = StealOrder::CreationOrder;

  /// Scheduling policy (sched/policy.hpp): Paper is the Sec. III lists
  /// verbatim; Aware layers cost-EWMA feedback, critical-path promotion,
  /// locality placement, and topology-near stealing on the same skeleton.
  SchedPolicyKind sched_policy = SchedPolicyKind::Paper;
  /// Aware: a ready task is promoted to the high-priority list when its
  /// critical-path priority exceeds the running average times this / 1e6.
  std::uint32_t aware_crit_ppm = 1500000;
  /// Aware: minimum share (ppm) of a task's input versions one worker must
  /// have produced before placement prefers that worker's queue.
  std::uint32_t aware_locality_ppm = 500000;
  /// Aware: assumed cost (ns) of a task type the cost table has never seen.
  std::uint64_t aware_cost_ns = 1000;

  /// The scheduler-policy slice of this Config (sched/ stays independent of
  /// runtime/ headers). Call after normalize().
  PolicyTuning policy_tuning() const {
    PolicyTuning tu;
    tu.nthreads = num_threads;
    tu.mode = scheduler_mode;
    tu.steal_order = steal_order;
    tu.nested_tasks = nested_tasks;
    tu.kind = sched_policy;
    tu.crit_ppm = aware_crit_ppm;
    tu.locality_ppm = aware_locality_ppm;
    tu.default_cost_ns = aware_cost_ns;
    return tu;
  }

  /// Record task nodes/edges for DOT export and graph statistics.
  bool record_graph = false;

  /// Record per-task execution events (timeline / Paraver export).
  bool tracing = false;

  /// Pin threads round-robin over the allowed CPUs.
  bool pin_threads = false;

  /// Failed acquire passes before a worker blocks on the idle gate.
  unsigned spin_acquires = 128;

  /// Service-mode stream registry capacity. StreamStates are registry-pinned
  /// for the Runtime's life (versions carry their rename accounts past
  /// stream close), so this bounds open_stream() calls, not concurrency.
  unsigned max_streams = 64;

  /// Period of the JSON stats exporter thread (one line per period with
  /// tasks/s, window occupancy, per-stream counters + latency percentiles).
  /// 0 disables the thread entirely.
  unsigned stats_period_ms = 0;

  /// Exporter destination, opened in append mode. Empty = stderr.
  std::string stats_path;

  /// Worker processes of the multi-process dependency manager
  /// (ipc/dist_runtime.hpp): the pattern drivers shard the datum space by
  /// hash across this many rank processes over a shared-memory segment.
  /// 1 (the default) is the existing single-process runtime, bit-exact —
  /// a Runtime itself never forks; only the pattern run_pattern() driver
  /// consults this field and routes to the distributed backend. Clamped to
  /// [1, 16] by normalize().
  unsigned procs = 1;

  /// Defaults overridden by SMPSS_* environment variables.
  static Config from_env();

  /// Clamp/derive dependent fields; called by the Runtime constructor.
  void normalize();
};

}  // namespace smpss
