#include "runtime/worker.hpp"

#include "common/affinity.hpp"
#include "common/spin.hpp"
#include "common/timing.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"

namespace smpss {

void worker_main(Runtime& rt, unsigned tid) {
  if (rt.cfg_.pin_threads) pin_current_thread(tid);
  // Register this thread with its runtime: nested spawns and taskwait()
  // route through the per-worker ready list this thread owns.
  detail::tls.rt = &rt;
  detail::tls.tid = tid;
  WorkerCounters& wc = rt.worker_state_[tid].counters;

  unsigned failures = 0;
  Backoff backoff;
  while (!rt.shutdown_.load(std::memory_order_acquire)) {
    if (TaskNode* t = rt.acquire(tid)) {
      // One acquire may run a whole bounded chain of tasks: execute_task
      // follows single released successors directly (Config::chain_depth)
      // before coming back here to the Sec. III lookup policy — which is
      // what bounds how long this worker can ignore the high-priority list
      // and the steal victims.
      rt.execute_task(t, tid);
      failures = 0;
      backoff.reset();
      continue;
    }
    if (++failures < rt.cfg_.spin_acquires) {
      // Exponential backoff between probe passes: dozens of idle workers
      // hammering the shared lists in lock-step would otherwise starve the
      // main thread's task generation (its pushes fight their pops for the
      // same cache lines).
      backoff.pause();
      continue;
    }
    // Two-phase sleep: snapshot the gate, re-try once, then block.
    std::uint64_t seen = rt.gate_.prepare_wait();
    if (TaskNode* t = rt.acquire(tid)) {
      rt.execute_task(t, tid);
      failures = 0;
      backoff.reset();
      continue;
    }
    if (rt.shutdown_.load(std::memory_order_acquire)) break;
    ++wc.idle_sleeps;
    const std::uint64_t w0 = now_ns();
    rt.gate_.wait(seen, std::chrono::microseconds(500));
    wc.idle_ns += now_ns() - w0;
    failures = 0;
    backoff.reset();
  }
}

}  // namespace smpss
