// Per-thread execution context. One thread-local record answers the three
// questions the runtime keeps asking about the calling thread:
//
//   * which Runtime's worker loop owns it (nullptr for the main thread and
//     for foreign threads the program created itself),
//   * which ready-list slot it owns in that runtime (0 = main thread), and
//   * which task body, if any, is currently executing on it.
//
// `current` nests: when a thread blocked in taskwait() picks up another
// ready task, execute_task() saves and restores the previous value, so the
// innermost task is always visible to nested spawns (parent tracking) and
// taskwait() (whose-children-to-wait-for).
#pragma once

namespace smpss {

class Runtime;
class TaskNode;

namespace detail {

struct ThreadContext {
  Runtime* rt = nullptr;       ///< runtime whose worker loop owns this thread
  unsigned tid = 0;            ///< ready-list index within `rt` (0 = main)
  TaskNode* current = nullptr; ///< innermost task body executing here
  Runtime* current_owner = nullptr;  ///< runtime `current` belongs to
  bool in_task_body = false;
  /// True while this thread is draining ready tasks inside the nested-mode
  /// submission throttle; suppresses re-entering the throttle further down
  /// the same stack (bounds recursion depth to one drain loop per thread).
  bool in_throttle = false;
};

inline thread_local ThreadContext tls;

}  // namespace detail
}  // namespace smpss
