#include "runtime/runtime.hpp"

#include "common/affinity.hpp"
#include "common/timing.hpp"
#include "runtime/worker.hpp"

namespace smpss {

Runtime::Runtime(Config cfg)
    : cfg_([&] {
        cfg.normalize();
        return cfg;
      }()),
      main_thread_id_(std::this_thread::get_id()),
      pool_(cfg_.rename_memory_limit),
      dep_(pool_, cfg_.renaming, &recorder_),
      regions_(&recorder_),
      ready_(cfg_.num_threads, cfg_.scheduler_mode, cfg_.steal_order) {
  recorder_.set_enabled(cfg_.record_graph);
  tracer_.init(cfg_.num_threads, cfg_.tracing);
  types_.push_back(TaskTypeInfo{"task", false});

  worker_state_ = std::make_unique<WorkerState[]>(cfg_.num_threads);
  for (unsigned i = 0; i < cfg_.num_threads; ++i)
    worker_state_[i].rng = Xoshiro256(0x5eed + i);

  if (cfg_.pin_threads) pin_current_thread(0);
  threads_.reserve(cfg_.num_threads - 1);
  for (unsigned tid = 1; tid < cfg_.num_threads; ++tid)
    threads_.emplace_back([this, tid] { worker_main(*this, tid); });
}

Runtime::~Runtime() {
  barrier();
  shutdown_.store(true, std::memory_order_release);
  gate_.notify_all();
  for (auto& th : threads_) th.join();
}

TaskType Runtime::register_task_type(std::string name, bool high_priority) {
  SMPSS_CHECK(on_main_thread(), "register_task_type is main-thread-only");
  types_.push_back(TaskTypeInfo{std::move(name), high_priority});
  return TaskType{static_cast<std::uint32_t>(types_.size() - 1)};
}

void* Runtime::route_access(TaskNode* t, const AccessDesc& d) {
  SMPSS_CHECK(d.addr != nullptr, "null pointer passed as task parameter");
  if (d.has_region) {
    SMPSS_CHECK(!dep_.tracks(d.addr),
                "array accessed both with and without region specifiers");
    return regions_.process(t, d);
  }
  SMPSS_CHECK(!regions_.tracks(d.addr),
              "array accessed both with and without region specifiers");
  SMPSS_CHECK(d.bytes > 0, "task parameter with zero size");
  return dep_.process(t, d);
}

void Runtime::submit(TaskNode* t) {
  ++spawned_;
  tasks_live_.fetch_add(1, std::memory_order_relaxed);

  // Release the creation guard; a task with no unsatisfied inputs "is moved
  // into the main ready list or the high priority list" (Sec. III).
  if (t->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ++ready_at_creation_;
    enqueue_ready(t, /*tid=*/0, /*at_creation=*/true);
  }

  // Blocking conditions (Sec. III): "Whenever it reaches a blocking
  // condition (a barrier, a memory limit, or a graph size limit), it behaves
  // as a worker thread until an unblocking condition is reached."
  if (tasks_live_.load(std::memory_order_relaxed) >= cfg_.task_window) {
    ++blocked_window_;
    while (tasks_live_.load(std::memory_order_acquire) > cfg_.task_window_low)
      help_once();
  }
  if (pool_.over_limit()) {
    ++blocked_memory_;
    while (pool_.over_limit() &&
           tasks_live_.load(std::memory_order_acquire) > 0)
      help_once();
  }
}

void Runtime::enqueue_ready(TaskNode* t, unsigned tid, bool at_creation) {
  if (t->high_priority) {
    ready_.push_high(t);
    gate_.notify_one();
    return;
  }
  if (at_creation) {
    ready_.push_main(t);
    gate_.notify_one();
    return;
  }
  // "Each worker thread has its own ready list that contains tasks whose
  // last input dependency has been removed by that thread." The pusher will
  // pop this task itself on its next acquire; only wake a sleeper when a
  // backlog builds up that a thief could take.
  ready_.push_local(tid, t);
  if (ready_.local_size_estimate(tid) > 1) gate_.notify_one();
}

TaskNode* Runtime::acquire(unsigned tid) {
  WorkerState& ws = worker_state_[tid];
  AcquireSource src;
  unsigned attempts = 0;
  TaskNode* t = ready_.acquire(tid, ws.rng, src, attempts);
  ws.counters.steal_attempts += attempts;
  switch (src) {
    case AcquireSource::HighPriority: ++ws.counters.acquired_high; break;
    case AcquireSource::OwnList: ++ws.counters.acquired_own; break;
    case AcquireSource::MainList: ++ws.counters.acquired_main; break;
    case AcquireSource::Steal: ++ws.counters.steals; break;
    case AcquireSource::None: break;
  }
  return t;
}

namespace {
// Set while a thread runs a task body; nested spawns check it so that task
// calls inside tasks stay plain function calls even when the main thread is
// the one executing (barrier/window/memory blocking conditions).
thread_local bool tl_in_task_body = false;
}  // namespace

bool Runtime::in_task_context() noexcept { return tl_in_task_body; }

void Runtime::execute_task(TaskNode* t, unsigned tid) {
  WorkerState& ws = worker_state_[tid];

  std::uint64_t t0 = 0;
  if (tracer_.enabled()) t0 = now_ns();

  tl_in_task_body = true;
  t->run_body();
  tl_in_task_body = false;

  if (tracer_.enabled()) {
    std::uint64_t t1 = now_ns();
    ws.counters.task_ns += t1 - t0;
    tracer_.record(tid, TraceEvent{t->seq, t->type_id, tid, t0, t1});
  }

  // Publish produced versions before releasing successors.
  for (Version* v : t->produces) v->mark_produced();

  auto successors = t->take_successors_and_complete();
  for (TaskNode* s : successors) {
    if (s->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1)
      enqueue_ready(s, tid, /*at_creation=*/false);
  }

  // Retire data tokens: reader marks first (so WAR decisions see the truth),
  // then user-storage quiescence, then lifetime refs.
  for (Version* v : t->reads) v->reader_finished(pool_);
  for (std::atomic<int>* slot : t->user_pending_slots)
    slot->fetch_sub(1, std::memory_order_release);
  for (Version* v : t->produces) v->release(pool_);

  ++ws.counters.executed;

  if (tasks_live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    gate_.notify_all();  // wake a barrier-waiting main thread
  }
  t->release();
}

void Runtime::help_once() {
  if (TaskNode* t = acquire(0)) {
    execute_task(t, 0);
    return;
  }
  std::uint64_t seen = gate_.prepare_wait();
  if (TaskNode* t = acquire(0)) {
    execute_task(t, 0);
    return;
  }
  if (tasks_live_.load(std::memory_order_acquire) == 0) return;
  gate_.wait(seen, std::chrono::microseconds(200));
}

void Runtime::barrier() {
  SMPSS_CHECK(on_main_thread(), "barrier is main-thread-only");
  while (tasks_live_.load(std::memory_order_acquire) > 0) help_once();
  // All tasks retired: realign renamed data into program storage and drop
  // all dependency state; the next spawn starts from a clean slate.
  dep_.flush_all();
  regions_.flush_all();
  ++barriers_;
}

void Runtime::wait_on_addr(const void* addr) {
  SMPSS_CHECK(on_main_thread(), "wait_on is main-thread-only");
  if (regions_.tracks(addr)) {
    // Region-tracked arrays have no single "latest version"; conservatively
    // drain all tasks (data stays in place for regions, so no copy-back).
    while (tasks_live_.load(std::memory_order_acquire) > 0) help_once();
    return;
  }
  DataEntry* e = dep_.find(addr);
  if (!e) return;  // never written by a task: nothing to wait for
  while (!(e->latest->is_produced() &&
           e->user_storage_pending.load(std::memory_order_acquire) == 0)) {
    help_once();
  }
  dep_.copy_back_latest(*e);
}

StatsSnapshot Runtime::stats() const {
  StatsSnapshot s;
  s.tasks_spawned = spawned_;
  s.tasks_inlined = inlined_.load(std::memory_order_relaxed);
  s.ready_at_creation = ready_at_creation_;
  s.barriers = barriers_;
  s.main_blocked_on_window = blocked_window_;
  s.main_blocked_on_memory = blocked_memory_;

  const auto& dc = dep_.counters();
  const auto& rc = regions_.counters();
  s.raw_edges = dc.raw_edges + rc.raw_edges;
  s.war_edges = dc.war_edges + rc.war_edges;
  s.waw_edges = dc.waw_edges + rc.waw_edges;
  s.renames = pool_.rename_count();
  s.rename_bytes_total = pool_.total_bytes();
  s.rename_bytes_peak = pool_.peak_bytes();
  s.in_place_reuses = dc.in_place_reuses;
  s.copy_ins = dc.copy_ins;
  s.copy_in_bytes = dc.copy_in_bytes;
  s.copyback_bytes = dc.copyback_bytes;
  s.tracked_objects = dc.tracked_objects;
  s.region_accesses = rc.accesses;

  for (unsigned i = 0; i < cfg_.num_threads; ++i) {
    const WorkerCounters& w = worker_state_[i].counters;
    s.tasks_executed += w.executed;
    s.steals += w.steals;
    s.steal_attempts += w.steal_attempts;
    s.acquired_high += w.acquired_high;
    s.acquired_own += w.acquired_own;
    s.acquired_main += w.acquired_main;
    s.idle_sleeps += w.idle_sleeps;
    s.task_ns += w.task_ns;
  }
  return s;
}

}  // namespace smpss
