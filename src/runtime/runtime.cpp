#include "runtime/runtime.hpp"

#include <algorithm>
#include <cstring>

#include "common/affinity.hpp"
#include "common/memcopy.hpp"
#include "common/timing.hpp"
#include "dep/access_group.hpp"
#include "runtime/thread_context.hpp"
#include "runtime/worker.hpp"
#include "sched/conflict.hpp"

namespace smpss {

Runtime::Runtime(Config cfg)
    : cfg_([&] {
        cfg.normalize();
        return cfg;
      }()),
      main_thread_id_(std::this_thread::get_id()),
      arena_(cfg_.pool_cache > 0
                 ? std::make_unique<TaskArena>(sizeof(TaskNode),
                                               alignof(TaskNode),
                                               cfg_.num_threads,
                                               cfg_.pool_cache)
                 : nullptr),
      pool_(cfg_.rename_memory_limit),
      dep_(pool_, cfg_.renaming, cfg_.dep_shards, &recorder_,
           cfg_.num_threads, cfg_.pool_cache > 0 ? cfg_.pool_cache : 64,
           cfg_.dep_lockfree),
      regions_(&recorder_),
      policy_(make_policy<TaskNode>(cfg_.policy_tuning())) {
  recorder_.set_enabled(cfg_.record_graph);
  // The aware policy's submit hook needs every RAW producer in task->reads,
  // including in-place-reused inouts (see set_track_raw_preds).
  dep_.set_track_raw_preds(policy_->wants_submit_hook());
  // Commuting groups (Dir::Commutative/Concurrent) need a never-scheduled
  // close node per group; it gets a sequence number and a graph-node record
  // like any task so DOT/sched-sim see the group's version producer.
  dep_.set_close_factory([this](unsigned slot) {
    TaskNode* c = allocate_task(slot);
    c->is_group_close = true;
    c->seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    recorder_.record_node(c->seq, 0);
    return c;
  });
  tracer_.init(cfg_.num_threads, cfg_.tracing);
  types_.push_back(TaskTypeInfo{"task", false});

  worker_state_ = std::make_unique<WorkerState[]>(cfg_.num_threads);
  for (unsigned i = 0; i < cfg_.num_threads; ++i)
    worker_state_[i].rng = Xoshiro256(0x5eed + i);

  if (cfg_.pin_threads) pin_current_thread(0);
  threads_.reserve(cfg_.num_threads - 1);
  for (unsigned tid = 1; tid < cfg_.num_threads; ++tid)
    threads_.emplace_back([this, tid] { worker_main(*this, tid); });

  if (cfg_.stats_period_ms > 0)
    stats_thread_ = std::thread([this] { stats_exporter_main(); });
}

Runtime::~Runtime() {
  // Stop the stats exporter first: it emits one final line (so short runs
  // still export), and it must not call stats() while the members below are
  // torn down.
  if (stats_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_stop_ = true;
    }
    stats_cv_.notify_all();
    stats_thread_.join();
  }
  if (on_main_thread() && !in_task_context()) {
    // Streams still open at destruction drain here; flipping them Closed
    // means a buggy late submit is diagnosed, not lost.
    shutdown_streams();
    barrier();
  } else {
    // Destruction off the constructing thread gets its own drain path
    // instead of barrier()'s misleading main-thread-only diagnostic. A
    // runtime must never be destroyed from inside one of its own task
    // bodies — the destructor would wait for the very task it runs in.
    SMPSS_CHECK(!(in_task_context() && detail::tls.current_owner == this),
                "~Runtime may not run inside one of this runtime's own task "
                "bodies — finish the task (or move destruction to another "
                "thread) first");
    // The destroying thread takes over ready-list slot 0: a valid
    // destruction implies the constructing thread has stopped using this
    // runtime, so the slot has no other owner. Registering as worker 0 (not
    // just borrowing acquire(0)) matters: task bodies executed here then
    // submit and taskwait as a normal in-task worker — the never-sleeping
    // throttle, own-list child execution — instead of being misclassified
    // as foreign threads, which must never run inside a task. Save/restore:
    // the destroying thread may be a worker of a *different* runtime.
    detail::ThreadContext& tc = detail::tls;
    Runtime* prev_rt = tc.rt;
    const unsigned prev_tid = tc.tid;
    tc.rt = this;
    tc.tid = 0;
    while (tasks_live_.load(std::memory_order_acquire) > 0) help_once();
    tc.rt = prev_rt;
    tc.tid = prev_tid;
    // Every task retired above, so the per-stream drains are no-ops here —
    // this just closes the phases (late submits diagnose, not vanish).
    shutdown_streams();
    dep_.close_open_groups();
    if (dep_.has_pending_closes()) drain_group_closes();
    dep_.flush_all();
    regions_.flush_all();
  }
  shutdown_.store(true, std::memory_order_release);
  gate_.notify_all();
  for (auto& th : threads_) th.join();
}

TaskType Runtime::register_task_type(std::string name, bool high_priority) {
  // The types_ vector is read locklessly by every spawn; registration must
  // finish before any concurrent submitter exists. In nested mode "no
  // concurrent submitter" means no live task (any task body may spawn), so
  // registering mid-flight is diagnosed instead of silently racing the
  // vector growth.
  SMPSS_CHECK(on_main_thread() && !in_task_context(),
              "register_task_type is main-thread-only, outside task bodies");
  SMPSS_CHECK(!cfg_.nested_tasks ||
                  tasks_live_.load(std::memory_order_acquire) == 0,
              "register_task_type with nested tasks enabled requires no "
              "task in flight (task bodies are concurrent submitters that "
              "read the type table locklessly)");
  types_.push_back(TaskTypeInfo{std::move(name), high_priority});
  return TaskType{static_cast<std::uint32_t>(types_.size() - 1)};
}

TaskType Runtime::find_task_type(const char* name) const noexcept {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name)
      return TaskType{static_cast<std::uint32_t>(i)};
  return TaskType{0};
}

void* Runtime::route_access(TaskNode* t, const AccessDesc& d,
                            bool check_region_table) {
  SMPSS_CHECK(d.addr != nullptr, "null pointer passed as task parameter");
  if (is_commuting(d.dir)) {
    // Diagnose invalid mode combinations at spawn time, before any tracking
    // state is touched — the misuse surfaces at the offending spawn, not as
    // a corrupted graph later.
    SMPSS_CHECK(!d.has_region,
                "commutative/concurrent access modes are address-mode only "
                "(region-qualified parameters cannot commute)");
    if (d.dir == Dir::Concurrent) {
      SMPSS_CHECK(cfg_.renaming,
                  "reduction (concurrent) parameters require renaming "
                  "(SMPSS_RENAMING=1) — privatization is built on it");
      SMPSS_CHECK(d.op.valid(),
                  "reduction parameter without a reduction operator");
    }
  }
  if (d.has_region) {
    SMPSS_CHECK(!dep_.tracks(d.addr),
                "array accessed both with and without region specifiers");
    return regions_.process(t, d);
  }
  // `check_region_table` is false only on the concurrent path when the
  // region table was empty at lock-decision time (the region rwlock is then
  // not held, so the table must not be read — and an empty table cannot
  // conflict with this address anyway).
  SMPSS_CHECK(!check_region_table || !regions_.tracks(d.addr),
              "array accessed both with and without region specifiers");
  SMPSS_CHECK(d.bytes > 0, "task parameter with zero size");
  return dep_.process(t, d);
}

void Runtime::begin_submission(TaskNode* t) {
  if (cfg_.nested_tasks) {
    // Parent hookup only when the enclosing task belongs to *this* runtime:
    // a task of one runtime spawning into another submits a top-level task
    // there (cross-runtime parent links would tangle the two instances'
    // children accounting and ancestor walks).
    if (detail::tls.in_task_body && detail::tls.current != nullptr &&
        detail::tls.current_owner == this) {
      // Real child task: the parent keeps a live-children count for
      // taskwait() and the child holds a strong ref so the count outlives
      // the parent's retirement.
      TaskNode* parent = detail::tls.current;
      parent->add_ref();
      parent->children_live.fetch_add(1, std::memory_order_relaxed);
      t->parent = parent;
      nested_spawned_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  t->seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  recorder_.record_node(t->seq, t->type_id);
}

void Runtime::analyze_accesses(TaskNode* t, const AccessDesc* descs,
                               std::size_t n) {
  if (dep_.lockfree()) {
    // Lock-free pipeline: no shard mutexes at all — per-datum consistency
    // comes from CAS publication on each chain head (see
    // dep/dependency_analyzer.hpp). Only the region table keeps its rwlock;
    // address-only submissions skip even the shared side while the region
    // table has never been touched.
    bool any_region = false;
    for (std::size_t i = 0; i < n; ++i) any_region |= descs[i].has_region;
    const bool check_regions = any_region || regions_.maybe_tracking();
    if (n != 0 && check_regions) {
      if (any_region)
        region_mu_.lock();
      else
        region_mu_.lock_shared();
    }
    for (std::size_t i = 0; i < n; ++i)
      t->resolved.push_back(route_access(t, descs[i], check_regions));
    if (n != 0 && check_regions) {
      if (any_region)
        region_mu_.unlock();
      else
        region_mu_.unlock_shared();
    }
    return;
  }
  // Two-phase shard acquisition (SMPSS_DEP_LOCKFREE=0 fallback, and the
  // no-renaming ablation). Every shard this task's footprint hashes
  // to is locked up front, in increasing index order (deadlock-free), and
  // held until the whole analysis is done. That makes each submission
  // atomic with respect to any other submission sharing a shard: two
  // conflicting submissions are totally ordered in real time, so per-datum
  // version chains stay mutually consistent and edges always point from an
  // earlier critical section into a later one — no cycles. Region-qualified
  // accesses contribute the shard of their base address too (the mixed-mode
  // diagnosis reads it).
  SmallVector<unsigned, 8> shard_ids;
  bool any_region = false;
  for (std::size_t i = 0; i < n; ++i) {
    shard_ids.push_back(dep_.shard_of(descs[i].addr));
    any_region |= descs[i].has_region;
  }
  std::sort(shard_ids.begin(), shard_ids.end());
  unsigned* shards_end = std::unique(shard_ids.begin(), shard_ids.end());
  for (unsigned* it = shard_ids.begin(); it != shards_end; ++it)
    dep_.shard_mutex(*it).lock();
  // The region table is ordered after every shard mutex. Region-mode
  // submissions hold it exclusively; address-mode submissions only need it
  // shared (for the mixed-mode diagnosis) — and skip even that while the
  // region table has never been touched, so the common address-only case
  // pays no shared-cache-line RMW here at all.
  const bool check_regions = any_region || regions_.maybe_tracking();
  if (n != 0 && check_regions) {
    if (any_region)
      region_mu_.lock();
    else
      region_mu_.lock_shared();
  }
  for (std::size_t i = 0; i < n; ++i)
    t->resolved.push_back(route_access(t, descs[i], check_regions));
  if (n != 0 && check_regions) {
    if (any_region)
      region_mu_.unlock();
    else
      region_mu_.unlock_shared();
  }
  for (unsigned* it = shard_ids.begin(); it != shards_end; ++it)
    dep_.shard_mutex(*it).unlock();
}

unsigned Runtime::submitter_tid() const noexcept {
  if (detail::tls.rt == this) return detail::tls.tid;  // one of our workers
  if (on_main_thread()) return 0;
  return kForeignTid;
}

TaskNode* Runtime::allocate_task(unsigned alloc_slot) {
  TaskNode* t;
  if (!arena_) {
    t = new TaskNode();
  } else {
    void* mem = arena_->nodes.allocate(alloc_slot);
    t = ::new (mem) TaskNode();
    t->arena = arena_.get();
    t->generation = arena_->nodes.generation_of(mem);
  }
  // The submitting thread's pool slot: successor-edge links and data
  // versions created on this task's behalf allocate from it.
  t->submit_slot = alloc_slot;
  return t;
}

void Runtime::policy_submit(TaskNode* t) {
  if (!policy_->wants_submit_hook()) return;
  // Producers of the task's input versions: reads covers in() and inout()
  // parameters; producer() is a strong ref held through the version, so the
  // pointers stay valid for the duration of this call. Initial (never
  // produced) versions have no producer and contribute nothing.
  SmallVector<TaskNode*, 8> preds;
  for (Version* v : t->reads)
    if (TaskNode* p = v->producer()) preds.push_back(p);
  policy_->on_submit(t, preds.begin(), preds.size());
}

void Runtime::submit(TaskNode* t) {
  // A group this submission sealed (by issuing a non-matching access) may
  // have had no unfinished members left — its close node is then queued on
  // the analyzer, waiting for a runtime thread to retire it. Do it here:
  // this very task may depend on the close's version.
  if (dep_.has_pending_closes()) drain_group_closes();
  // Multi-token tasks acquire their exclusion tokens in one global (pointer)
  // order — the all-or-nothing acquire in acquire() depends on it.
  if (t->conflicts.size() > 1)
    std::sort(t->conflicts.begin(), t->conflicts.begin() + t->conflicts.size());
  spawned_.fetch_add(1, std::memory_order_relaxed);
  tasks_live_.fetch_add(1, std::memory_order_relaxed);
  policy_submit(t);

  // Release the creation guard; a task with no unsatisfied inputs "is moved
  // into the main ready list or the high priority list" (Sec. III).
  if (t->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ready_at_creation_.fetch_add(1, std::memory_order_relaxed);
    enqueue_ready(t, submitter_tid(), /*at_creation=*/true);
  }

  // Blocking conditions (Sec. III): "Whenever it reaches a blocking
  // condition (a barrier, a memory limit, or a graph size limit), it behaves
  // as a worker thread until an unblocking condition is reached."
  if (!on_main_thread() || in_task_context()) {
    // Nested-mode generators (task bodies submitting children) throttle
    // best-effort: drain ready tasks while over the limit, but never sleep.
    // A sleeping in-task submitter can deadlock — if every ready source of
    // the graph is a body blocked in this throttle, live can only drop when
    // one of them completes, which none would. So when no ready task is
    // acquirable the spawn proceeds and the window is a soft limit here;
    // the hard limit stays with the paper's sequential generator below.
    if (!cfg_.nested_tasks || detail::tls.in_throttle) return;
    const unsigned tid = submitter_tid();
    if (tid == kForeignTid) {
      // Foreign threads get the *hard* blocking condition: they execute no
      // tasks of this runtime, so sleeping on the gate cannot starve the
      // graph of ready sources — and without the gate they could grow the
      // graph (and the renamed-storage footprint) without bound.
      //
      // Two exemptions, both liveness: a thread inside *some* task body
      // (another runtime's worker submitting here) must never sleep — its
      // own pool may be waiting on it; and a runtime with no worker threads
      // has no independent executor to drain the graph while the main
      // thread is elsewhere (e.g. blocked joining this very submitter), so
      // the window stays soft there as it was before the gate existed.
      if (in_task_context() || cfg_.num_threads < 2) return;
      const auto blocked = [&] {
        const std::size_t live = tasks_live_.load(std::memory_order_acquire);
        return live > cfg_.task_window_low ||
               (pool_.over_limit() && live > 0);
      };
      if (tasks_live_.load(std::memory_order_relaxed) >= cfg_.task_window ||
          pool_.over_limit()) {
        foreign_throttled_.fetch_add(1, std::memory_order_relaxed);
        while (blocked()) {
          std::uint64_t seen = gate_.prepare_wait();
          if (!blocked()) break;
          gate_.wait(seen, std::chrono::microseconds(200));
        }
      }
      return;
    }
    if (tasks_live_.load(std::memory_order_relaxed) >= cfg_.task_window ||
        pool_.over_limit()) {
      nested_throttled_.fetch_add(1, std::memory_order_relaxed);
      detail::tls.in_throttle = true;
      while (tasks_live_.load(std::memory_order_acquire) >
                 cfg_.task_window_low ||
             pool_.over_limit()) {
        TaskNode* t = acquire(tid);
        if (!t) break;
        execute_task(t, tid);
      }
      detail::tls.in_throttle = false;
    }
    return;
  }
  if (tasks_live_.load(std::memory_order_relaxed) >= cfg_.task_window) {
    ++blocked_window_;
    while (tasks_live_.load(std::memory_order_acquire) > cfg_.task_window_low)
      help_once();
  }
  if (pool_.over_limit()) {
    ++blocked_memory_;
    while (pool_.over_limit() &&
           tasks_live_.load(std::memory_order_acquire) > 0)
      help_once();
  }
}

void Runtime::enqueue_ready(TaskNode* t, unsigned tid, bool at_creation) {
  // Placement belongs to the policy; the wakeup protocol stays here (the
  // gate is the Runtime's). A task placed in a shared list (high/main) or
  // routed to another worker's inbox always wakes one sleeper; a task in
  // the enqueuing worker's own list will be popped by the pusher itself on
  // its next acquire, so only a backlog a thief could take is worth a
  // wakeup.
  const Placed where =
      at_creation ? policy_->enqueue_creation(
                        t, tid == kForeignTid
                               ? SchedulerPolicy<TaskNode>::kNoWorker
                               : tid,
                        in_task_context())
                  : policy_->enqueue_released(t, tid);
  if (where == Placed::Local) {
    if (policy_->local_size_estimate(tid) > 1) gate_.notify_one();
    return;
  }
  gate_.notify_one();
}

TaskNode* Runtime::acquire(unsigned tid) {
  WorkerState& ws = worker_state_[tid];
  for (;;) {
    AcquireSource src;
    unsigned attempts = 0;
    TaskNode* t = policy_->acquire(tid, ws.rng, src, attempts);
    ws.counters.steal_attempts += attempts;
    if (t != nullptr && !t->conflicts.empty()) {
      // Commutative members mutually exclude on their group tokens. A
      // ready-but-conflicted task is parked on the blocking token — not
      // spun on, not returned to the lists — and the token's releaser
      // re-enqueues it; this thread goes straight back to the lookup for
      // other work. Park-then-recheck closes the lost-wakeup race where
      // the holder drained the waiter stack between our failed CAS and
      // the park.
      if (ConflictToken* blocked = try_acquire_conflicts(t)) {
        ++ws.counters.conflict_deferrals;
        blocked->park(t);
        if (blocked->free_now()) {
          TaskNode* w = blocked->take_waiters();
          while (w != nullptr) {
            TaskNode* next = w->queue_next;
            w->queue_next = nullptr;
            enqueue_ready(w, tid, /*at_creation=*/false);
            w = next;
          }
        }
        continue;
      }
    }
    if (t != nullptr) {
      switch (src) {
        case AcquireSource::HighPriority: ++ws.counters.acquired_high; break;
        case AcquireSource::OwnList: ++ws.counters.acquired_own; break;
        case AcquireSource::MainList: ++ws.counters.acquired_main; break;
        case AcquireSource::Steal: ++ws.counters.steals; break;
        case AcquireSource::None: break;
      }
    }
    return t;
  }
}

bool Runtime::in_task_context() noexcept { return detail::tls.in_task_body; }

void Runtime::execute_task(TaskNode* t, unsigned tid) {
  // The chain loop: run the acquired task, then keep running the single
  // successor each completion releases — up to chain_depth hops — before
  // returning to the Sec. III lookup policy. Iterative on purpose: a long
  // dependency chain must not grow the stack.
  for (unsigned hops = 0;; ++hops) {
    TaskNode* next = execute_one(t, tid, /*arrived_by_chain=*/hops > 0,
                                 /*allow_chain=*/hops < cfg_.chain_depth);
    if (next == nullptr) return;
    t = next;
  }
}

TaskNode* Runtime::execute_one(TaskNode* t, unsigned tid,
                               bool arrived_by_chain, bool allow_chain) {
  WorkerState& ws = worker_state_[tid];
  if (arrived_by_chain) ++ws.counters.chained;

  // Locality accounting: did this task run on the worker placement aimed it
  // at? (PaperPolicy's own-list pushes set the preference too, so the
  // hit/miss split is meaningful under both policies; main-list placements
  // carry no preference and count as neither.)
  const std::uint32_t pref = t->pref_tid;
  if (pref != ~0u) {
    if (pref == tid)
      ++ws.counters.locality_hits;
    else
      ++ws.counters.locality_misses;
  }
  // Published before the body runs so successors submitted concurrently
  // vote for the worker whose cache is being warmed right now.
  t->exec_tid.store(tid, std::memory_order_relaxed);

  // Commuting-group entry. Commutative: this worker holds the group tokens
  // (acquired in acquire() / the chain check); the first member to run
  // performs the group's inherit copies under its token. Concurrent: patch
  // the resolved parameter slots to this worker's private buffer — members
  // never touch the shared group storage, the close combines privates.
  for (ConflictToken* tok : t->conflicts) tok->group->maybe_init_copy();
  for (const TaskNode::ReduceFixup& f : t->reduce_fixups)
    t->resolved[f.slot] = f.group->private_for(tid);

  // Body timing feeds the tracer and/or the policy's cost table (the aware
  // policy wants the feedback even in untraced runs).
  const bool feedback = policy_->wants_exec_feedback();
  const bool timed = tracer_.enabled() || feedback;
  std::uint64_t t0 = 0;
  if (timed) t0 = now_ns();

  // Save/restore: a thread blocked in taskwait() executes other tasks, so
  // task bodies nest on one stack and the innermost one must be visible to
  // spawns (parent tracking) and taskwait (children to await).
  detail::ThreadContext& tc = detail::tls;
  TaskNode* prev_task = tc.current;
  Runtime* prev_owner = tc.current_owner;
  const bool prev_in_body = tc.in_task_body;
  tc.current = t;
  tc.current_owner = this;
  tc.in_task_body = true;
  t->run_body();
  tc.current = prev_task;
  tc.current_owner = prev_owner;
  tc.in_task_body = prev_in_body;

  if (timed) {
    std::uint64_t t1 = now_ns();
    ws.counters.task_ns += t1 - t0;
    if (feedback) policy_->on_executed(tid, t->type_id, t1 - t0);
    if (tracer_.enabled())
      tracer_.record(tid, TraceEvent{t->seq, t->parent ? t->parent->seq : 0,
                                     t->type_id, tid, t0, t1,
                                     arrived_by_chain ? 1u : 0u});
  }

  // Release the group tokens FIRST — before the completion edges below can
  // retire a close node — and wake the members parked on them. The member's
  // group refs (token- and fixup-held) drop here too; the group object must
  // not outlive its last member plus the close retire.
  for (ConflictToken* tok : t->conflicts) {
    AccessGroup* g = tok->group;
    tok->release();
    TaskNode* w = tok->take_waiters();
    while (w != nullptr) {
      TaskNode* next = w->queue_next;
      w->queue_next = nullptr;
      enqueue_ready(w, tid, /*at_creation=*/false);
      ++ws.counters.conflict_wakeups;
      w = next;
    }
    g->release();
  }
  for (const TaskNode::ReduceFixup& f : t->reduce_fixups) f.group->release();

  // Publish produced versions before releasing successors.
  for (Version* v : t->produces) v->mark_produced();

  auto successors = t->take_successors_and_complete();
  SmallVector<TaskNode*, 8> released;
  for (TaskNode* s : successors) {
    if (s->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (s->is_group_close) {
        // The last member of a sealed group finished: retire the close node
        // inline (it has no body — combine/copy/mark-produced only).
        retire_close(s, tid);
      } else {
        released.push_back(s);
      }
    }
  }

  TaskNode* chain = nullptr;
  if (released.size() == 1) {
    // Exactly one successor released, and it would land in this worker's
    // own list: run it directly after the retire below — no ready-list
    // round trip, no wakeup. A pending high-priority task preempts the
    // chain (Sec. III: "scheduled as soon as possible"): the successor is
    // enqueued normally and the caller's next acquire serves the high list
    // first. A high-priority *successor* is exempt from that preemption
    // check (running it immediately is the soonest possible dispatch) but
    // still subject to the chain_depth bound — past it, the high-priority
    // acquire path picks it up on the very next lookup.
    TaskNode* s = released[0];
    // A conflicted successor only chains if its tokens are free right now
    // (all-or-nothing, same as acquire()); otherwise it goes to the lists —
    // no parking here, the list-side acquire path handles the deferral.
    if (allow_chain && !policy_->preempt_chain(s) &&
        (s->conflicts.empty() || try_acquire_conflicts(s) == nullptr)) {
      chain = s;
    } else {
      enqueue_ready(s, tid, /*at_creation=*/false);
    }
  } else if (released.size() > 1) {
    // Batched release: publish every released task with one list operation
    // per destination and at most one gate notification for the whole set,
    // instead of a push + notify per successor.
    policy_->enqueue_batch(released.begin(), released.size(), tid);
    // This worker consumes one of the batch itself on its next acquire;
    // the rest are worth at most one wakeup each — and none at all when
    // every wakeable worker is already running (no registered sleeper).
    const int want = static_cast<int>(released.size()) - 1;
    const int issued = gate_.notify_some(want);
    ws.counters.wakeups_suppressed.add(static_cast<std::uint64_t>(
        want - issued));
    ++ws.counters.batched_releases;
  }

  // Retire data tokens: reader marks first (so WAR decisions see the truth),
  // then user-storage quiescence, then lifetime refs.
  for (Version* v : t->reads) v->reader_finished(pool_);
  for (std::atomic<int>* slot : t->user_pending_slots) {
    // acq_rel (not plain release): wait_on's quiescence probe pairs with
    // this decrement, and the count must never be observed below zero —
    // each slot entry here is backed by exactly one increment at submission.
    const int prev = slot->fetch_sub(1, std::memory_order_acq_rel);
    SMPSS_ASSERT(prev > 0);
    (void)prev;
  }
  for (Version* v : t->produces) v->release(pool_);

  ++ws.counters.executed;

  // Notify the parent after the data tokens retire, so a taskwait()-ing
  // parent that sees children_live == 0 also sees the children's effects.
  // The parent pointer itself stays set (released by ~TaskNode): live
  // descendants walk the ancestor chain during dependency analysis.
  if (TaskNode* parent = t->parent) {
    if (parent->children_live.fetch_sub(1, std::memory_order_acq_rel) == 1)
      gate_.notify_all();  // wake a taskwait()-blocked thread
  }

  // Wake sleepers at the two thresholds they block on: zero (barrier /
  // outside-task taskwait) and the task-window low-water mark (a throttled
  // main thread in help_once, or a gated foreign submitter). These stay
  // unconditional — they guard liveness, not latency — and they run per
  // retire even mid-chain, so a throttled submitter never waits on a chain
  // to finish before seeing the window drain.
  const std::size_t live_before =
      tasks_live_.fetch_sub(1, std::memory_order_acq_rel);
  if (live_before == 1 || live_before == cfg_.task_window_low + 1) {
    gate_.notify_all();
  }
  // Service hook: fulfill the future (callback runs here) and credit the
  // stream — after the data tokens retired (a callback may read the task's
  // results) and after the global live decrement above, so drain()
  // returning (the stream count reaching zero) implies every one of the
  // stream's tasks has left the global count too.
  if (t->stream != nullptr || t->future != nullptr) retire_service(t);
  // A queued stream submitter may now fit: one relaxed load when service
  // mode is idle, a notify per retire when someone is waiting (their probe
  // needs the decrements above to be visible first).
  if (admission_.has_waiters()) admission_.notify();
  t->release();
  return chain;
}

void Runtime::retire_close(TaskNode* close, unsigned tid) {
  // A close node is not a task: it was never spawned (no live count, no
  // policy placement, no parent, no stream), has no body, and holds no
  // tokens. Its retire is the data half of execute_one's epilogue — plus
  // the group-specific finalization.
  //
  // Unclaimed inherit copies first: a Commutative group whose members all
  // finished ran maybe_init_copy() under the token, but a group sealed with
  // zero members (open, immediately superseded) still owes the renamed
  // storage its previous contents. The analyzer parks such copies on the
  // close node's own copy_ins. safe_copy, not memcpy: master and private
  // extents may overlap once a datum lives inside a shared transfer
  // segment the runtime did not allocate.
  for (const CopyIn& c : close->copy_ins) safe_copy(c.dst, c.src, c.bytes);

  // Concurrent: fold every worker's private into the group storage. The
  // close's pending count ordered this after the last member.
  if (!close->produces.empty()) {
    Version* gv = close->produces[0];
    if (AccessGroup* g = gv->group(); g != nullptr &&
                                      g->mode == Dir::Concurrent)
      g->combine_privates(gv->storage());
  }

  for (Version* v : close->produces) v->mark_produced();

  auto successors = close->take_successors_and_complete();
  for (TaskNode* s : successors) {
    if (s->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (s->is_group_close) {
        // Stacked groups (a lost publication race stacked two groups on one
        // datum): the outer close may be the inner close's last dependency.
        retire_close(s, tid);
      } else {
        // Foreign threads must use the creation path: the released paths
        // index per-worker structures a foreign tid does not own.
        enqueue_ready(s, tid, /*at_creation=*/tid == kForeignTid);
      }
    }
  }

  for (Version* v : close->reads) v->reader_finished(pool_);
  for (std::atomic<int>* slot : close->user_pending_slots) {
    const int prev = slot->fetch_sub(1, std::memory_order_acq_rel);
    SMPSS_ASSERT(prev > 0);
    (void)prev;
  }
  for (Version* v : close->produces) v->release(pool_);
  close->release();
}

void Runtime::drain_group_closes() {
  // Groups sealed on the submission path (non-matching access, barrier,
  // wait_on) queue their close nodes on the analyzer; nothing else will
  // retire them.
  while (dep_.has_pending_closes()) {
    TaskNode* c = dep_.take_pending_closes();
    const unsigned tid = submitter_tid();
    while (c != nullptr) {
      TaskNode* next = c->queue_next;
      c->queue_next = nullptr;
      retire_close(c, tid);
      c = next;
    }
  }
}

bool Runtime::help_one() {
  const unsigned tid = submitter_tid();
  if (tid == kForeignTid) return false;
  if (TaskNode* t = acquire(tid)) {
    execute_task(t, tid);
    return true;
  }
  return false;
}

void Runtime::help_once() {
  if (TaskNode* t = acquire(0)) {
    execute_task(t, 0);
    return;
  }
  std::uint64_t seen = gate_.prepare_wait();
  if (TaskNode* t = acquire(0)) {
    execute_task(t, 0);
    return;
  }
  if (tasks_live_.load(std::memory_order_acquire) == 0) return;
  const std::uint64_t w0 = now_ns();
  gate_.wait(seen, std::chrono::microseconds(200));
  worker_state_[0].counters.idle_ns += now_ns() - w0;
}

void Runtime::taskwait() {
  taskwaits_.fetch_add(1, std::memory_order_relaxed);
  // Only a task of *this* runtime has children here; a foreign runtime's
  // task calling in falls through to the drain-all path (and its
  // main-thread-only check) like any non-task caller.
  TaskNode* cur = in_task_context() && detail::tls.current_owner == this
                      ? detail::tls.current
                      : nullptr;
  if (cur == nullptr) {
    // Outside any task body: wait for everything in flight, but leave the
    // dependency state alone (no realignment — that is barrier()'s job).
    SMPSS_CHECK(on_main_thread(),
                "taskwait outside a task body is main-thread-only");
    while (tasks_live_.load(std::memory_order_acquire) > 0) help_once();
    return;
  }
  const unsigned tid = submitter_tid();
  while (cur->children_live.load(std::memory_order_acquire) > 0) {
    // Run other ready tasks while waiting — this is what lets a recursion
    // deeper than the worker count make progress: the waiter executes its
    // own children (they sit in its local list) on its own stack.
    if (tid != kForeignTid) {
      if (TaskNode* t = acquire(tid)) {
        execute_task(t, tid);
        continue;
      }
    }
    std::uint64_t seen = gate_.prepare_wait();
    if (cur->children_live.load(std::memory_order_acquire) == 0) return;
    if (tid != kForeignTid) {
      if (TaskNode* t = acquire(tid)) {
        execute_task(t, tid);
        continue;
      }
    }
    gate_.wait(seen, std::chrono::microseconds(100));
  }
}

void Runtime::barrier() {
  SMPSS_CHECK(on_main_thread() && !in_task_context(),
              "barrier is main-thread-only and may not be called inside a "
              "task body — use taskwait() to wait for child tasks");
  // Seal every open commuting group — a barrier is a non-matching access to
  // everything — and retire any close that is already free; closes whose
  // members are still running retire on the worker that finishes last.
  dep_.close_open_groups();
  if (dep_.has_pending_closes()) drain_group_closes();
  while (tasks_live_.load(std::memory_order_acquire) > 0) help_once();
  // All tasks retired (and with them all possible nested submitters): seal
  // the groups those submitters opened *during* the wait (the first pass
  // above cannot have seen them), align renamed data back into program
  // storage, and drop all dependency state; the next spawn starts from a
  // clean slate.
  dep_.close_open_groups();
  if (dep_.has_pending_closes()) drain_group_closes();
  dep_.flush_all();
  regions_.flush_all();
  ++barriers_;
}

void Runtime::wait_on_addr(const void* addr) {
  SMPSS_CHECK(on_main_thread() && !in_task_context(),
              "wait_on is main-thread-only and may not be called inside a "
              "task body");
  // An open commuting group on this (or any) datum holds its version
  // unproduced and its user-storage slots elevated; the main thread reading
  // a result is a serialization point, so seal everything first — otherwise
  // the quiescence probes below would wait forever on a group that only a
  // future submission would close.
  dep_.close_open_groups();
  if (dep_.has_pending_closes()) drain_group_closes();
  // In nested mode concurrent submitters may be mutating the tracking
  // tables; every peek synchronizes on the table that owns the address —
  // the region rwlock, or the one dependency shard the address hashes to.
  // The copy-back itself also runs under the shard lock so the "latest"
  // version cannot be superseded mid-copy.
  bool region_tracked;
  {
    std::shared_lock<std::shared_mutex> lk(region_mu_, std::defer_lock);
    if (cfg_.nested_tasks) lk.lock();
    region_tracked = regions_.tracks(addr);
  }
  if (region_tracked) {
    // Region-tracked arrays have no single "latest version"; conservatively
    // drain all tasks (data stays in place for regions, so no copy-back).
    while (tasks_live_.load(std::memory_order_acquire) > 0) help_once();
    return;
  }
  if (dep_.lockfree()) {
    // Lock-free peek: pin the latest version as a reader (so the copy
    // source cannot be reused in place under us) and copy back once it is
    // produced and user storage is quiescent.
    while (true) {
      switch (dep_.try_copy_back_lockfree(addr)) {
        case DependencyAnalyzer::CopyBack::kUntracked:
          return;  // never touched by a task: nothing to wait for
        case DependencyAnalyzer::CopyBack::kDone:
          return;
        case DependencyAnalyzer::CopyBack::kNotReady:
          help_once();
          break;
      }
    }
  }
  const unsigned shard = dep_.shard_of(addr);
  while (true) {
    {
      std::unique_lock<std::mutex> lk(dep_.shard_mutex(shard),
                                      std::defer_lock);
      if (cfg_.nested_tasks) lk.lock();
      DataEntry* e = dep_.find(addr);
      if (!e) return;  // never written by a task: nothing to wait for
      if (e->latest.load(std::memory_order_acquire)->is_produced() &&
          e->user_storage_pending.load(std::memory_order_acquire) == 0) {
        dep_.copy_back_latest(*e);
        return;
      }
    }
    help_once();
  }
}

StatsSnapshot Runtime::stats() const {
  // Read-order discipline: spawned_ is incremented before the task can run
  // (submit happens-before execution), so a snapshot that sums the
  // execution-side counters FIRST and reads spawned_ LAST can never report
  // executed > spawned — the transiently impossible totals the old
  // read-everything-in-declaration-order snapshot produced under racing
  // submitters. On top of that, retry until a pass sees spawned_ unchanged
  // end to end (a quiescent-enough window); bounded attempts, because under
  // a saturating submit rate no such window need exist.
  StatsSnapshot s;
  for (int attempt = 0; attempt < 4; ++attempt) {
    s = StatsSnapshot{};
    const std::uint64_t epoch0 = spawned_.load(std::memory_order_seq_cst);

    s.workers.resize(cfg_.num_threads);
    for (unsigned i = 0; i < cfg_.num_threads; ++i) {
      const WorkerCounters& w = worker_state_[i].counters;
      WorkerStatsRow& row = s.workers[i];
      row.executed = w.executed.get();
      row.steals = w.steals.get();
      row.steal_attempts = w.steal_attempts.get();
      row.acquired_high = w.acquired_high.get();
      row.acquired_own = w.acquired_own.get();
      row.acquired_main = w.acquired_main.get();
      row.idle_sleeps = w.idle_sleeps.get();
      row.idle_ns = w.idle_ns.get();
      row.locality_hits = w.locality_hits.get();
      row.locality_misses = w.locality_misses.get();
      row.chained = w.chained.get();
      s.tasks_executed += row.executed;
      s.steals += row.steals;
      s.steal_attempts += row.steal_attempts;
      s.acquired_high += row.acquired_high;
      s.acquired_own += row.acquired_own;
      s.acquired_main += row.acquired_main;
      s.idle_sleeps += row.idle_sleeps;
      s.idle_ns += row.idle_ns;
      s.task_ns += w.task_ns.get();
      s.locality_hits += row.locality_hits;
      s.locality_misses += row.locality_misses;
      s.chained_executions += row.chained;
      s.batched_releases += w.batched_releases.get();
      s.wakeups_suppressed += w.wakeups_suppressed.get();
      s.conflict_deferrals += w.conflict_deferrals.get();
      s.conflict_wakeups += w.conflict_wakeups.get();
    }
    s.sched_promotions = policy_->promotions();
    std::atomic_thread_fence(std::memory_order_seq_cst);

    // The dependency counters are striped atomics now — summing them is
    // safe against racing submitters in every mode. The region counters
    // stay lock-guarded plain fields: snapshot under the region rwlock
    // (shared side) when nested submitters may be mutating them.
    const DependencyAnalyzer::Counters dc = dep_.counters_snapshot();
    RegionAnalyzer::Counters rc;
    {
      std::shared_lock<std::shared_mutex> lk(region_mu_, std::defer_lock);
      if (cfg_.nested_tasks) lk.lock();
      rc = regions_.counters();
    }
    s.raw_edges = dc.raw_edges + rc.raw_edges;
    s.war_edges = dc.war_edges + rc.war_edges;
    s.waw_edges = dc.waw_edges + rc.waw_edges;
    s.renames = pool_.rename_count();
    s.rename_bytes_total = pool_.total_bytes();
    s.rename_bytes_peak = pool_.peak_bytes();
    s.in_place_reuses = dc.in_place_reuses;
    s.copy_ins = dc.copy_ins;
    s.copy_in_bytes = dc.copy_in_bytes;
    s.copyback_bytes = dc.copyback_bytes;
    s.tracked_objects = dc.tracked_objects;
    s.lockfree_cas_retries = dc.cas_retries;
    s.region_accesses = rc.accesses;
    s.groups_opened = dc.groups_opened;
    s.group_joins = dc.group_joins;
    s.groups_closed = dc.groups_closed;
    s.commute_edges = dc.commute_edges;

    if (arena_) {
      const PoolStats n = arena_->nodes.stats();
      const PoolStats c = arena_->closures.stats();
      s.pool_hits = n.hits + c.hits;
      s.pool_refills = n.refills + c.refills;
      s.pool_slabs = n.slabs + c.slabs;
    }

    {
      std::lock_guard<std::mutex> lk(streams_mu_);
      std::uint64_t merged[LatencyHistogram::kBuckets] = {};
      for (const auto& st : streams_) {
        StreamStats row;
        row.id = st->id;
        row.name = st->name;
        row.weight = st->ticket.weight;
        row.phase = static_cast<std::uint8_t>(
            st->phase.load(std::memory_order_acquire));
        row.submitted = st->submitted.load(std::memory_order_relaxed);
        row.retired = st->retired.load(std::memory_order_relaxed);
        row.live = st->live.load(std::memory_order_relaxed);
        row.throttled = st->throttled.load(std::memory_order_relaxed);
        row.callbacks_run =
            st->callbacks_run.load(std::memory_order_relaxed);
        row.rename_bytes =
            st->account.rename_bytes.load(std::memory_order_relaxed);
        row.renames = st->account.renames.load(std::memory_order_relaxed);
        row.dep_accesses =
            st->account.accesses.load(std::memory_order_relaxed);
        row.dep_edges = st->account.edges.load(std::memory_order_relaxed);
        row.latency_count = st->latency.count();
        row.latency_p50_ns = st->latency.percentile(0.50);
        row.latency_p99_ns = st->latency.percentile(0.99);
        st->latency.merge_into(merged);
        s.stream_submitted += row.submitted;
        s.stream_retired += row.retired;
        s.stream_throttled += row.throttled;
        s.streams.push_back(std::move(row));
      }
      for (std::uint64_t c : merged) s.service_latency_count += c;
      s.service_p50_ns = LatencyHistogram::percentile_of(
          merged, 0.50, s.service_latency_count);
      s.service_p99_ns = LatencyHistogram::percentile_of(
          merged, 0.99, s.service_latency_count);
    }

    // Submission side last, spawned_ very last (the invariant anchor).
    s.tasks_inlined = inlined_.load(std::memory_order_relaxed);
    s.tasks_nested = nested_spawned_.load(std::memory_order_relaxed);
    s.taskwaits = taskwaits_.load(std::memory_order_relaxed);
    s.nested_throttled = nested_throttled_.load(std::memory_order_relaxed);
    s.foreign_throttled = foreign_throttled_.load(std::memory_order_relaxed);
    s.ready_at_creation = ready_at_creation_.load(std::memory_order_relaxed);
    s.barriers = barriers_;
    s.main_blocked_on_window = blocked_window_;
    s.main_blocked_on_memory = blocked_memory_;
    s.tasks_spawned = spawned_.load(std::memory_order_seq_cst);
    s.snapshot_epoch = s.tasks_spawned;
    s.snapshot_consistent = s.tasks_spawned == epoch0;
    if (s.snapshot_consistent) break;
  }
  return s;
}

}  // namespace smpss
