// Service-mode implementation: stream lifecycle (open -> draining ->
// closed), fair blocking admission, the retire-side service hook, and
// future fulfillment. See runtime/stream.hpp for the model and
// sched/admission.hpp for the fairness policy.
#include "runtime/stream.hpp"

#include <algorithm>
#include <chrono>

#include "common/timing.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"

namespace smpss {

StreamHandle Runtime::open_stream(StreamOptions opts) {
  SMPSS_CHECK(cfg_.nested_tasks,
              "open_stream requires Config::nested_tasks (SMPSS_NESTED=1) — "
              "stream clients are concurrent submitters, and the non-nested "
              "runtime inline-demotes foreign-thread spawns");
  std::lock_guard<std::mutex> lk(streams_mu_);
  SMPSS_CHECK(streams_.size() < cfg_.max_streams,
              "stream registry full — raise Config::max_streams "
              "(SMPSS_STREAMS); closed streams stay registered (their "
              "rename accounts may outlive them)");
  auto st = std::make_unique<StreamState>();
  st->id = static_cast<std::uint32_t>(streams_.size());
  st->name = opts.name.empty() ? "stream-" + std::to_string(st->id)
                               : std::move(opts.name);
  st->window = opts.task_window;
  st->account.rename_budget = opts.rename_budget_bytes;
  st->ticket.weight = opts.weight == 0 ? 1 : opts.weight;
  StreamState* p = st.get();
  streams_.push_back(std::move(st));
  return StreamHandle(this, p);
}

std::size_t Runtime::open_stream_count() const {
  std::lock_guard<std::mutex> lk(streams_mu_);
  std::size_t n = 0;
  for (const auto& s : streams_)
    if (s->phase.load(std::memory_order_acquire) == StreamState::Phase::Open)
      ++n;
  return n;
}

void Runtime::stream_admit(StreamState& s) {
  SMPSS_CHECK(s.phase.load(std::memory_order_acquire) ==
                  StreamState::Phase::Open,
              "submission on a draining/closed stream");
  s.submitted.fetch_add(1, std::memory_order_relaxed);

  // Liveness exemptions mirror the foreign-thread gate (Runtime::submit): a
  // client inside *some* task body must never sleep (its own pool may be
  // waiting on it), and a runtime without workers has no independent
  // executor to drain the graph — both keep the window soft.
  const bool can_block = !in_task_context() && cfg_.num_threads >= 2;
  const auto self_full = [&] {
    return (s.window != 0 &&
            s.live.load(std::memory_order_acquire) >=
                static_cast<std::int64_t>(s.window)) ||
           s.account.over_budget();
  };
  const auto global_full = [&] {
    return tasks_live_.load(std::memory_order_acquire) >= cfg_.task_window ||
           pool_.over_limit();
  };
  if (can_block &&
      (admission_.has_waiters() || self_full() || global_full())) {
    s.throttled.fetch_add(1, std::memory_order_relaxed);
    admission_.admit(s.ticket, [&]() -> AdmitProbe {
      // Stream-local limits classify as SelfFull (forfeit the turn: the
      // free capacity belongs to the other tenants); shared limits hold
      // the turn until a retire frees a slot.
      if (self_full()) return AdmitProbe::SelfFull;
      if (global_full()) return AdmitProbe::GlobalFull;
      return AdmitProbe::Taken;
    });
  }
  s.live.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::submit_stream_task(TaskNode* t) {
  // The stream counterpart of submit(): accounting plus the creation-guard
  // release only — the Sec. III blocking conditions already ran as
  // admission (stream_admit), so the foreign-thread hard gate must not run
  // a second, unfair round of backpressure on top.
  if (dep_.has_pending_closes()) drain_group_closes();
  if (t->conflicts.size() > 1)
    std::sort(t->conflicts.begin(), t->conflicts.begin() + t->conflicts.size());
  spawned_.fetch_add(1, std::memory_order_relaxed);
  tasks_live_.fetch_add(1, std::memory_order_relaxed);
  policy_submit(t);
  if (t->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ready_at_creation_.fetch_add(1, std::memory_order_relaxed);
    enqueue_ready(t, submitter_tid(), /*at_creation=*/true);
  }
}

void Runtime::retire_service(TaskNode* t) {
  // Future first: the callback must have finished by the time the stream's
  // live count can read zero, so drain()/close() returning implies every
  // callback already ran — "callbacks never run on a destroyed stream" is
  // this ordering, not a runtime check.
  bool callback_ran = false;
  if (FutureState* f = t->future) {
    t->future = nullptr;
    callback_ran = f->fulfill();
    f->release();  // task-side ref
  }
  StreamState* s = t->stream;
  if (s == nullptr) return;
  if (callback_ran) s->callbacks_run.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  if (now > t->submit_ns)
    s->latency.record(now - t->submit_ns);
  s->retired.fetch_add(1, std::memory_order_relaxed);
  if (s->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Stream went quiescent: a drain()ing client may be asleep on the gate.
    gate_.notify_all();
  }
}

void Runtime::drain_stream(StreamState& s) {
  SMPSS_CHECK(!(in_task_context() && detail::tls.current_owner == this),
              "drain() may not run inside one of this runtime's own task "
              "bodies — it could wait on the very task it runs in");
  // A drain is a promise that the stream's submitted work retired — which
  // for tasks downstream of an open commuting group requires the group's
  // close to be reachable. Seal everything first (future submissions start
  // new groups; correctness is unaffected, only batching).
  dep_.close_open_groups();
  if (dep_.has_pending_closes()) drain_group_closes();
  // The main thread helps execute (as at every Sec. III blocking
  // condition); any other client sleeps on the gate with the usual bounded
  // timeout.
  const bool can_help = on_main_thread() && !in_task_context();
  while (s.live.load(std::memory_order_acquire) > 0) {
    if (can_help) {
      help_once();
      continue;
    }
    const std::uint64_t seen = gate_.prepare_wait();
    if (s.live.load(std::memory_order_acquire) <= 0) break;
    gate_.wait(seen, std::chrono::microseconds(200));
  }
}

void Runtime::close_stream(StreamState& s) {
  StreamState::Phase expected = StreamState::Phase::Open;
  s.phase.compare_exchange_strong(expected, StreamState::Phase::Draining,
                                  std::memory_order_acq_rel);
  if (expected == StreamState::Phase::Closed) return;  // already closed
  drain_stream(s);
  s.phase.store(StreamState::Phase::Closed, std::memory_order_release);
  admission_.remove(s.ticket);
}

void Runtime::shutdown_streams() {
  // Snapshot under the registry lock, flip everything still Open to
  // Draining first (so no stream keeps feeding the window while its
  // sibling drains), then drain and close each.
  std::vector<StreamState*> open;
  {
    std::lock_guard<std::mutex> lk(streams_mu_);
    open.reserve(streams_.size());
    for (const auto& s : streams_) open.push_back(s.get());
  }
  for (StreamState* s : open) {
    StreamState::Phase expected = StreamState::Phase::Open;
    s->phase.compare_exchange_strong(expected, StreamState::Phase::Draining,
                                     std::memory_order_acq_rel);
  }
  for (StreamState* s : open) {
    if (s->phase.load(std::memory_order_acquire) ==
        StreamState::Phase::Closed)
      continue;
    drain_stream(*s);
    s->phase.store(StreamState::Phase::Closed, std::memory_order_release);
    admission_.remove(s->ticket);
  }
}

void Runtime::wait_future(FutureState& f) {
  SMPSS_CHECK(!(in_task_context() && detail::tls.current_owner == this),
              "TaskFuture::wait may not run inside one of this runtime's "
              "own task bodies");
  const bool can_help = on_main_thread() && !in_task_context();
  while (!f.ready()) {
    if (can_help) {
      help_once();
      continue;
    }
    const std::uint64_t seen = future_gate_.prepare_wait();
    if (f.ready()) return;
    future_gate_.wait(seen, std::chrono::microseconds(200));
  }
}

// --- FutureState --------------------------------------------------------------

void FutureState::wait() {
  if (ready()) return;
  rt_->wait_future(*this);
}

void FutureState::then(std::function<void()> cb) {
  cb_ = std::move(cb);
  std::uint8_t st = kNone;
  if (cb_state_.compare_exchange_strong(st, kArmed,
                                        std::memory_order_release,
                                        std::memory_order_acquire)) {
    return;  // the retiring worker will run it
  }
  SMPSS_CHECK(st == kDone, "TaskFuture::then: one callback per future");
  // Task already completed: run inline on the installing thread.
  cb_state_.store(kRan, std::memory_order_relaxed);
  cb_();
}

bool FutureState::fulfill() {
  std::uint8_t st = kNone;
  bool ran = false;
  if (!cb_state_.compare_exchange_strong(st, kDone,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    SMPSS_CHECK(st == kArmed, "future fulfilled twice");
    cb_state_.store(kRan, std::memory_order_relaxed);
    cb_();  // runs on the retiring worker, before done_ is published
    ran = true;
  }
  done_.store(true, std::memory_order_release);
  rt_->future_gate_.notify_all();
  return ran;
}

// --- StreamHandle -------------------------------------------------------------

StreamHandle& StreamHandle::operator=(StreamHandle&& o) noexcept {
  if (this != &o) {
    if (s_ != nullptr && rt_ != nullptr) rt_->close_stream(*s_);
    rt_ = o.rt_;
    s_ = o.s_;
    o.rt_ = nullptr;
    o.s_ = nullptr;
  }
  return *this;
}

StreamHandle::~StreamHandle() {
  if (s_ != nullptr && rt_ != nullptr) rt_->close_stream(*s_);
}

void StreamHandle::drain() {
  SMPSS_CHECK(s_ != nullptr, "drain() on an invalid StreamHandle");
  rt_->drain_stream(*s_);
}

void StreamHandle::close() {
  SMPSS_CHECK(s_ != nullptr, "close() on an invalid StreamHandle");
  rt_->close_stream(*s_);
}

}  // namespace smpss
