// Type-erased task closures. One concrete Closure<F, Ps...> instantiation
// per (task function, parameter-wrapper signature) pair; the vtable gives
// TaskNode a uniform two-pointer handle on it.
//
// Storage tiers (see TaskNode::allocate_closure): closures up to
// TaskNode::kInlineClosureBytes live inside the node itself; larger ones up
// to TaskArena::kClosureBlockBytes come from the runtime's pooled closure
// slabs (recycled at retire, no malloc in steady state); only outsized or
// over-aligned captures fall back to operator new.
#pragma once

#include <cstddef>
#include <tuple>
#include <utility>

#include "graph/task.hpp"
#include "runtime/params.hpp"

namespace smpss::detail {

/// Number of directional parameters among Ps.
template <typename... Ps>
constexpr std::size_t directional_count() {
  return (0 + ... + (ParamTraits<Ps>::directional ? 1 : 0));
}

/// Index into the resolved-storage array for parameter I (number of
/// directional parameters preceding it).
template <std::size_t I, typename... Ps>
constexpr std::size_t resolved_slot() {
  constexpr bool dir[] = {ParamTraits<Ps>::directional..., false};
  std::size_t n = 0;
  for (std::size_t k = 0; k < I; ++k) n += dir[k] ? 1 : 0;
  return n;
}

template <typename F, typename... Ps>
struct Closure {
  F fn;
  std::tuple<Ps...> params;

  template <std::size_t I>
  decltype(auto) arg(void* const* resolved) {
    using P = std::tuple_element_t<I, std::tuple<Ps...>>;
    if constexpr (ParamTraits<P>::directional) {
      return ParamTraits<P>::resolve(std::get<I>(params),
                                     resolved[resolved_slot<I, Ps...>()]);
    } else {
      return ParamTraits<P>::resolve(std::get<I>(params), nullptr);
    }
  }

  template <std::size_t... Is>
  void call([[maybe_unused]] void* const* resolved,
            std::index_sequence<Is...>) {
    fn(arg<Is>(resolved)...);
  }

  static void invoke(void* self, void* const* resolved) {
    static_cast<Closure*>(self)->call(resolved,
                                      std::index_sequence_for<Ps...>{});
  }
  static void destroy(void* self) noexcept {
    static_cast<Closure*>(self)->~Closure();
  }

  static constexpr ClosureVTable vtable{&Closure::invoke, &Closure::destroy};
};

/// Nested task calls are executed inline as plain function calls
/// (paper Sec. VII.D: "SMPSs treats task calls inside tasks as normal
/// function calls") — the function sees the program's own pointers. Only
/// used when Config::nested_tasks is off; the nested mode submits a real
/// task instead.
template <typename F, typename... Ps>
void invoke_inline(F&& fn, Ps&&... ps) {
  std::forward<F>(fn)(ParamTraits<std::decay_t<Ps>>::raw(ps)...);
}

}  // namespace smpss::detail
