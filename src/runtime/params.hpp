// Typed parameter wrappers — the C++ rendering of the `#pragma css task`
// directionality clauses (paper Sec. II). Annotating a call site
//
//     #pragma css task input(a, b) inout(c)
//     void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);
//
// becomes
//
//     rt.spawn(sgemm, smpss::in(a, M*M), smpss::in(b, M*M),
//                      smpss::inout(c, M*M));
//
// The wrappers carry exactly what the paper's compiler forwards to the
// runtime: address, size, directionality, and optionally an array region
// (Sec. V.A). `value()` passes scalars by copy (the paper's non-pointer
// parameters); `opaque()` is the paper's `void*` escape hatch — "opaque
// pointers pass through the runtime unaltered and are not considered in the
// task dependency analysis".
//
// At execution time the runtime substitutes renamed storage for the
// directional pointers, so task bodies must only touch memory through the
// parameters they were handed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <tuple>
#include <type_traits>
#include <utility>

#include "dep/access.hpp"
#include "dep/region.hpp"

namespace smpss {

template <typename T>
struct InParam {
  const T* ptr;
  std::size_t count;
};
template <typename T>
struct OutParam {
  T* ptr;
  std::size_t count;
};
template <typename T>
struct InOutParam {
  T* ptr;
  std::size_t count;
};
template <typename T>
struct ValParam {
  T value;
};
template <typename T>
struct OpaqueParam {
  T* ptr;
};
template <typename T>
struct RegionParam {
  T* base;
  Region region;
  Dir dir;
};
template <typename T>
struct CommutativeParam {
  T* ptr;
  std::size_t count;
};
template <typename T>
struct ReductionParam {
  T* ptr;
  std::size_t count;
  ReductionOp op;
};

/// Optional per-spawn hints, passed as the first spawn argument:
///
///     rt.spawn(smpss::TaskAttrs{.weight = 2500, .name = "potrf"},
///              type, body, smpss::inout(blk, n));
///
/// `weight` is the user's execution-cost estimate in nanoseconds; the aware
/// scheduling policy prefers it over its cost-EWMA until real measurements
/// arrive (and the paper policy ignores it). `name` labels the task in
/// traces. Both default to "no hint".
struct TaskAttrs {
  std::uint64_t weight = 0;    ///< cost hint in ns (0 = no hint)
  const char* name = nullptr;  ///< trace/debug label (nullptr = type name)
};

// --- reduction operator tags -------------------------------------------------

/// Built-in reduction operators for `smpss::reduction(Op{}, ptr, n)`. Each
/// tag expands (per element type) to a type-erased ReductionOp: `init` seeds
/// a per-worker private with the identity, `combine` folds it into the
/// master. User-defined operators pass a ReductionOp directly.
struct Plus {};
struct Min {};
struct Max {};

namespace detail {

template <typename Tag, typename T>
struct ReduceOps;

template <typename T>
struct ReduceOps<Plus, T> {
  static void init(void* priv, std::size_t bytes) {
    T* p = static_cast<T*>(priv);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i) p[i] = T{};
  }
  static void combine(void* into, const void* priv, std::size_t bytes) {
    T* a = static_cast<T*>(into);
    const T* b = static_cast<const T*>(priv);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i) a[i] += b[i];
  }
};

template <typename T>
struct ReduceOps<Min, T> {
  static void init(void* priv, std::size_t bytes) {
    T* p = static_cast<T*>(priv);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i)
      p[i] = std::numeric_limits<T>::max();
  }
  static void combine(void* into, const void* priv, std::size_t bytes) {
    T* a = static_cast<T*>(into);
    const T* b = static_cast<const T*>(priv);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i)
      if (b[i] < a[i]) a[i] = b[i];
  }
};

template <typename T>
struct ReduceOps<Max, T> {
  static void init(void* priv, std::size_t bytes) {
    T* p = static_cast<T*>(priv);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i)
      p[i] = std::numeric_limits<T>::lowest();
  }
  static void combine(void* into, const void* priv, std::size_t bytes) {
    T* a = static_cast<T*>(into);
    const T* b = static_cast<const T*>(priv);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i)
      if (b[i] > a[i]) a[i] = b[i];
  }
};

template <typename Tag, typename T>
ReductionOp reduce_op_for() {
  return ReductionOp{&ReduceOps<Tag, T>::init, &ReduceOps<Tag, T>::combine};
}

}  // namespace detail

// --- factory functions -------------------------------------------------------

template <typename T>
InParam<T> in(const T* p, std::size_t count = 1) {
  return {p, count};
}
template <typename T>
OutParam<T> out(T* p, std::size_t count = 1) {
  return {p, count};
}
template <typename T>
InOutParam<T> inout(T* p, std::size_t count = 1) {
  return {p, count};
}
template <typename T>
ValParam<std::decay_t<T>> value(T&& v) {
  return {std::forward<T>(v)};
}
template <typename T>
OpaqueParam<T> opaque(T* p) {
  return {p};
}

/// Commutative access: the task reads and writes the datum, tasks in the
/// group mutually exclude, but the runtime imposes no order among them.
template <typename T>
CommutativeParam<T> commutative(T* p, std::size_t count = 1) {
  return {p, count};
}

/// Concurrent (reduction) access: every task in the group accumulates into a
/// per-worker private copy seeded with Op's identity; the runtime combines
/// the privates into the master when the group closes. No ordering, no
/// mutual exclusion.
template <typename Op, typename T>
ReductionParam<T> reduction(Op, T* p, std::size_t count = 1) {
  return {p, count, detail::reduce_op_for<Op, T>()};
}
/// User-supplied operator variant: pass the type-erased ReductionOp directly.
template <typename T>
ReductionParam<T> reduction(ReductionOp op, T* p, std::size_t count = 1) {
  return {p, count, op};
}

// --- single-object reference forms ------------------------------------------
//
// The redesigned call-site style: `smpss::in(x)` / `out(x)` / `inout(x)` /
// `commutative(x)` taking the object itself, plus array-reference forms that
// deduce the element count. The (pointer, count) factories above remain as
// compatibility shims for existing call sites and generated code.

template <typename T>
  requires(!std::is_pointer_v<T> && !std::is_array_v<T>)
InParam<T> in(const T& x) {
  return {&x, 1};
}
template <typename T>
  requires(!std::is_pointer_v<T> && !std::is_array_v<T>)
OutParam<T> out(T& x) {
  return {&x, 1};
}
template <typename T>
  requires(!std::is_pointer_v<T> && !std::is_array_v<T>)
InOutParam<T> inout(T& x) {
  return {&x, 1};
}
template <typename T>
  requires(!std::is_pointer_v<T> && !std::is_array_v<T>)
CommutativeParam<T> commutative(T& x) {
  return {&x, 1};
}
template <typename Op, typename T>
  requires(!std::is_pointer_v<T> && !std::is_array_v<T>)
ReductionParam<T> reduction(Op op, T& x) {
  return reduction(op, &x, 1);
}

template <typename T, std::size_t N>
InParam<T> in(const T (&a)[N]) {
  return {a, N};
}
template <typename T, std::size_t N>
OutParam<T> out(T (&a)[N]) {
  return {a, N};
}
template <typename T, std::size_t N>
InOutParam<T> inout(T (&a)[N]) {
  return {a, N};
}
template <typename T, std::size_t N>
CommutativeParam<T> commutative(T (&a)[N]) {
  return {a, N};
}
template <typename Op, typename T, std::size_t N>
ReductionParam<T> reduction(Op op, T (&a)[N]) {
  return reduction(op, static_cast<T*>(a), N);
}

/// Region-qualified accesses (Sec. V.A). The region is given in element
/// units; elem_bytes is filled in from T.
template <typename T>
RegionParam<const T> in(const T* base, Region r) {
  r.set_elem_bytes(sizeof(T));
  return {base, r, Dir::In};
}
template <typename T>
RegionParam<T> out(T* base, Region r) {
  r.set_elem_bytes(sizeof(T));
  return {base, r, Dir::Out};
}
template <typename T>
RegionParam<T> inout(T* base, Region r) {
  r.set_elem_bytes(sizeof(T));
  return {base, r, Dir::InOut};
}

// --- traits used by the spawn machinery --------------------------------------

namespace detail {

template <typename P>
struct ParamTraits;  // primary: not a parameter wrapper

template <typename T>
struct ParamTraits<InParam<T>> {
  static constexpr bool directional = true;
  using arg_type = const T*;
  static AccessDesc desc(const InParam<T>& p) {
    return AccessDesc{const_cast<T*>(p.ptr), p.count * sizeof(T), Dir::In,
                      false, Region{}, ReductionOp{}};
  }
  static arg_type resolve(const InParam<T>&, void* storage) {
    return static_cast<const T*>(storage);
  }
  static arg_type raw(const InParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<OutParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const OutParam<T>& p) {
    return AccessDesc{p.ptr, p.count * sizeof(T), Dir::Out, false, Region{},
                      ReductionOp{}};
  }
  static arg_type resolve(const OutParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const OutParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<InOutParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const InOutParam<T>& p) {
    return AccessDesc{p.ptr, p.count * sizeof(T), Dir::InOut, false, Region{},
                      ReductionOp{}};
  }
  static arg_type resolve(const InOutParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const InOutParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<CommutativeParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const CommutativeParam<T>& p) {
    return AccessDesc{p.ptr, p.count * sizeof(T), Dir::Commutative, false,
                      Region{}, ReductionOp{}};
  }
  static arg_type resolve(const CommutativeParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const CommutativeParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<ReductionParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const ReductionParam<T>& p) {
    return AccessDesc{p.ptr, p.count * sizeof(T), Dir::Concurrent, false,
                      Region{}, p.op};
  }
  static arg_type resolve(const ReductionParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const ReductionParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<RegionParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const RegionParam<T>& p) {
    return AccessDesc{const_cast<std::remove_const_t<T>*>(p.base),
                      /*bytes=*/0, p.dir, true, p.region, ReductionOp{}};
  }
  static arg_type resolve(const RegionParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const RegionParam<T>& p) { return p.base; }
};

template <typename T>
struct ParamTraits<ValParam<T>> {
  static constexpr bool directional = false;
  using arg_type = const T&;
  static arg_type resolve(const ValParam<T>& p, void*) { return p.value; }
  static arg_type raw(const ValParam<T>& p) { return p.value; }
};

template <typename T>
struct ParamTraits<OpaqueParam<T>> {
  static constexpr bool directional = false;
  using arg_type = T*;
  static arg_type resolve(const OpaqueParam<T>& p, void*) { return p.ptr; }
  static arg_type raw(const OpaqueParam<T>& p) { return p.ptr; }
};

template <typename P>
concept TaskParam = requires { ParamTraits<std::decay_t<P>>::directional; };

}  // namespace detail
}  // namespace smpss
