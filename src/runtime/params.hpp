// Typed parameter wrappers — the C++ rendering of the `#pragma css task`
// directionality clauses (paper Sec. II). Annotating a call site
//
//     #pragma css task input(a, b) inout(c)
//     void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);
//
// becomes
//
//     rt.spawn(sgemm, smpss::in(a, M*M), smpss::in(b, M*M),
//                      smpss::inout(c, M*M));
//
// The wrappers carry exactly what the paper's compiler forwards to the
// runtime: address, size, directionality, and optionally an array region
// (Sec. V.A). `value()` passes scalars by copy (the paper's non-pointer
// parameters); `opaque()` is the paper's `void*` escape hatch — "opaque
// pointers pass through the runtime unaltered and are not considered in the
// task dependency analysis".
//
// At execution time the runtime substitutes renamed storage for the
// directional pointers, so task bodies must only touch memory through the
// parameters they were handed.
#pragma once

#include <cstddef>
#include <tuple>
#include <type_traits>
#include <utility>

#include "dep/access.hpp"
#include "dep/region.hpp"

namespace smpss {

template <typename T>
struct InParam {
  const T* ptr;
  std::size_t count;
};
template <typename T>
struct OutParam {
  T* ptr;
  std::size_t count;
};
template <typename T>
struct InOutParam {
  T* ptr;
  std::size_t count;
};
template <typename T>
struct ValParam {
  T value;
};
template <typename T>
struct OpaqueParam {
  T* ptr;
};
template <typename T>
struct RegionParam {
  T* base;
  Region region;
  Dir dir;
};

// --- factory functions -------------------------------------------------------

template <typename T>
InParam<T> in(const T* p, std::size_t count = 1) {
  return {p, count};
}
template <typename T>
OutParam<T> out(T* p, std::size_t count = 1) {
  return {p, count};
}
template <typename T>
InOutParam<T> inout(T* p, std::size_t count = 1) {
  return {p, count};
}
template <typename T>
ValParam<std::decay_t<T>> value(T&& v) {
  return {std::forward<T>(v)};
}
template <typename T>
OpaqueParam<T> opaque(T* p) {
  return {p};
}

/// Region-qualified accesses (Sec. V.A). The region is given in element
/// units; elem_bytes is filled in from T.
template <typename T>
RegionParam<const T> in(const T* base, Region r) {
  r.set_elem_bytes(sizeof(T));
  return {base, r, Dir::In};
}
template <typename T>
RegionParam<T> out(T* base, Region r) {
  r.set_elem_bytes(sizeof(T));
  return {base, r, Dir::Out};
}
template <typename T>
RegionParam<T> inout(T* base, Region r) {
  r.set_elem_bytes(sizeof(T));
  return {base, r, Dir::InOut};
}

// --- traits used by the spawn machinery --------------------------------------

namespace detail {

template <typename P>
struct ParamTraits;  // primary: not a parameter wrapper

template <typename T>
struct ParamTraits<InParam<T>> {
  static constexpr bool directional = true;
  using arg_type = const T*;
  static AccessDesc desc(const InParam<T>& p) {
    return AccessDesc{const_cast<T*>(p.ptr), p.count * sizeof(T), Dir::In,
                      false, Region{}};
  }
  static arg_type resolve(const InParam<T>&, void* storage) {
    return static_cast<const T*>(storage);
  }
  static arg_type raw(const InParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<OutParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const OutParam<T>& p) {
    return AccessDesc{p.ptr, p.count * sizeof(T), Dir::Out, false, Region{}};
  }
  static arg_type resolve(const OutParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const OutParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<InOutParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const InOutParam<T>& p) {
    return AccessDesc{p.ptr, p.count * sizeof(T), Dir::InOut, false, Region{}};
  }
  static arg_type resolve(const InOutParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const InOutParam<T>& p) { return p.ptr; }
};

template <typename T>
struct ParamTraits<RegionParam<T>> {
  static constexpr bool directional = true;
  using arg_type = T*;
  static AccessDesc desc(const RegionParam<T>& p) {
    return AccessDesc{const_cast<std::remove_const_t<T>*>(p.base),
                      /*bytes=*/0, p.dir, true, p.region};
  }
  static arg_type resolve(const RegionParam<T>&, void* storage) {
    return static_cast<T*>(storage);
  }
  static arg_type raw(const RegionParam<T>& p) { return p.base; }
};

template <typename T>
struct ParamTraits<ValParam<T>> {
  static constexpr bool directional = false;
  using arg_type = const T&;
  static arg_type resolve(const ValParam<T>& p, void*) { return p.value; }
  static arg_type raw(const ValParam<T>& p) { return p.value; }
};

template <typename T>
struct ParamTraits<OpaqueParam<T>> {
  static constexpr bool directional = false;
  using arg_type = T*;
  static arg_type resolve(const OpaqueParam<T>& p, void*) { return p.ptr; }
  static arg_type raw(const OpaqueParam<T>& p) { return p.ptr; }
};

template <typename P>
concept TaskParam = requires { ParamTraits<std::decay_t<P>>::directional; };

}  // namespace detail
}  // namespace smpss
