// Helpers around the NDJSON stats export that other subsystems (the
// multi-process backend's parent rank in particular) call without a live
// Runtime: repairing and flagging the stats file of a child that died
// before its exporter could write the final line.
#pragma once

#include <string>

namespace smpss {

/// Append a `{"partial_run":true,...}` line to the stats file at `path`.
///
/// Called by the process-group join path when a child rank exited uncleanly
/// (crash or signal): the child's exporter cannot honor the
/// final-line-at-shutdown guarantee, and its last line may be torn. If the
/// file does not end in a newline the torn tail is first terminated (NDJSON
/// consumers skip the unparseable line), then a well-formed marker line
/// records the rank and raw wait() status so "this run is incomplete" is
/// machine-readable instead of a silent truncation. No-op when `path` is
/// empty or unopenable.
void append_partial_run_marker(const std::string& path, unsigned rank,
                               int status);

}  // namespace smpss
