// smpss::Runtime — the public entry point of the library.
//
// An SMPSs program is a sequential program whose annotated functions become
// tasks (paper Sec. II). With this library the annotation is the spawn call:
//
//     smpss::Runtime rt;
//     auto sgemm_t = rt.register_task_type("sgemm_t");
//     for (int i = 0; i < N; i++)
//       for (int j = 0; j < N; j++)
//         for (int k = 0; k < N; k++)
//           rt.spawn(sgemm_t, sgemm_kernel,
//                    smpss::in(A[i][k], M*M), smpss::in(B[k][j], M*M),
//                    smpss::inout(C[i][j], M*M));
//     rt.barrier();
//
// The runtime analyzes parameter dependencies at each invocation, renames
// data to remove WAR/WAW hazards, builds the task graph, and schedules ready
// tasks over the worker threads with the locality policy of Sec. III.
//
// Threading contract (paper-faithful default): spawn/barrier/wait_on are
// main-thread calls (the thread that constructed the Runtime). A spawn
// issued from inside a task executes the function inline, mirroring the
// paper's "task calls inside tasks are treated as normal function calls".
//
// With Config::nested_tasks (SMPSS_NESTED=1) the inline demotion is lifted:
// spawn() is thread-safe and a spawn from inside a task creates a real child
// task. Dependency analysis runs through an address-striped pipeline whose
// default (Config::dep_lockfree, SMPSS_DEP_LOCKFREE) takes no mutex at all:
// each datum's version-chain head is published by CAS and readers pin it
// speculatively (see dep/dependency_analyzer.hpp), so the in/out/inout
// submission path is lock-free end to end. The SMPSS_DEP_LOCKFREE=0
// fallback (and the no-renaming ablation) keeps the PR-3 design: the
// per-datum tables are hash-sharded (Config::dep_shards), each submission
// locks only the shards its parameters fall in (acquired in index order,
// held for the whole analysis — strict two-phase locking). Either way task
// sequence numbers come from an atomic counter and correctness rests on
// per-datum version-chain order, not on a global submission order: any two
// submissions that share a datum are totally ordered at its chain head,
// which keeps the graph acyclic. The paper-faithful path never takes any
// lock (single submitter). taskwait() suspends the calling task until its
// direct children finished, executing other ready tasks meanwhile;
// barrier/wait_on remain main-thread, outside-any-task calls.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/slab_pool.hpp"
#include "common/timing.hpp"
#include "dep/dependency_analyzer.hpp"
#include "dep/region_analyzer.hpp"
#include "dep/renaming.hpp"
#include "graph/graph_recorder.hpp"
#include "graph/task.hpp"
#include "runtime/config.hpp"
#include "runtime/params.hpp"
#include "runtime/spawn_closure.hpp"
#include "runtime/stats.hpp"
#include "runtime/stream.hpp"
#include "sched/admission.hpp"
#include "sched/idle_wait.hpp"
#include "sched/policy.hpp"
#include "sched/ready_lists.hpp"
#include "trace/tracer.hpp"

namespace smpss {

/// Registered task-kind metadata (name for traces/DOT, scheduling priority —
/// the `highpriority` clause of the task construct).
struct TaskTypeInfo {
  std::string name;
  bool high_priority = false;
};

class Runtime {
 public:
  explicit Runtime(Config cfg = Config::from_env());

  /// Drains all in-flight tasks, realigns renamed data, and joins the
  /// workers. Callable from any thread *outside* this runtime's own task
  /// bodies: destruction on the constructing thread runs a full barrier();
  /// destruction elsewhere uses a dedicated drain path (the destroying
  /// thread takes over the main ready-list slot — by the time destruction
  /// is valid, the constructing thread no longer uses this runtime).
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- task types -----------------------------------------------------------

  /// Declare a task kind. Mirrors `#pragma css task [highpriority]` on a
  /// function declaration. Main thread only.
  TaskType register_task_type(std::string name, bool high_priority = false);

  const std::vector<TaskTypeInfo>& task_types() const noexcept {
    return types_;
  }

  // --- task spawning ----------------------------------------------------------

  /// Invoke `fn` as a task of kind `type`. Parameters are wrapped with the
  /// typed access-mode API of runtime/params.hpp — smpss::in/out/inout/
  /// commutative/reduction (plus value/opaque/region); at execution `fn`
  /// receives the resolved (possibly renamed/privatized) pointers in the
  /// same order.
  template <typename F, detail::TaskParam... Ps>
  void spawn(TaskType type, F&& fn, Ps&&... ps) {
    spawn(TaskAttrs{}, type, std::forward<F>(fn), std::forward<Ps>(ps)...);
  }

  /// Spawn with the default (anonymous) task type.
  template <typename F, detail::TaskParam... Ps>
    requires(!std::is_same_v<std::decay_t<F>, TaskType> &&
             !std::is_same_v<std::decay_t<F>, TaskAttrs>)
  void spawn(F&& fn, Ps&&... ps) {
    spawn(TaskAttrs{}, TaskType{0}, std::forward<F>(fn),
          std::forward<Ps>(ps)...);
  }

  /// Spawn with scheduling hints. `attrs.weight` (ns) seeds the aware
  /// policy's cost estimate for this one task (0 = use the learned per-type
  /// estimate); `attrs.name` labels the task for the no-TaskType overload
  /// below. Hints never change semantics, only placement/ordering.
  template <typename F, detail::TaskParam... Ps>
  void spawn(TaskAttrs attrs, TaskType type, F&& fn, Ps&&... ps) {
    if (!cfg_.nested_tasks && (!on_main_thread() || in_task_context())) {
      // Sec. VII.D: a task call inside a task is a normal function call.
      // The check covers worker threads AND the main thread while it is
      // executing tasks at a blocking condition.
      detail::invoke_inline(std::forward<F>(fn), std::forward<Ps>(ps)...);
      inlined_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    SMPSS_CHECK(type.id < types_.size(), "unregistered task type");
    // Pool slot of the submitting thread; kForeignTid (>= num_threads)
    // routes foreign submitters to the pool's internal lock-guarded slot.
    const unsigned alloc_slot = submitter_tid();
    TaskNode* t = allocate_task(alloc_slot);
    t->type_id = type.id;
    t->high_priority = types_[type.id].high_priority;
    t->weight = attrs.weight;

    using C = detail::Closure<std::decay_t<F>, std::decay_t<Ps>...>;
    void* mem = t->allocate_closure(sizeof(C), alignof(C), alloc_slot);
    C* closure = ::new (mem)
        C{std::forward<F>(fn), std::tuple<std::decay_t<Ps>...>(
                                   std::forward<Ps>(ps)...)};
    t->set_vtable(&C::vtable);

    // Parent hookup, atomic sequence number, node record.
    begin_submission(t);
    if (!cfg_.nested_tasks) {
      // Zero-lock single-submitter fast path: analyze straight into the
      // tracking tables in parameter order.
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        (analyze_param<Is>(closure, t), ...);
      }(std::index_sequence_for<Ps...>{});
    } else {
      // Concurrent submitters: collect the footprint first, then run the
      // analysis under the two-phase shard acquisition.
      SmallVector<AccessDesc, 6> descs;
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        (collect_param<Is>(closure, descs), ...);
      }(std::index_sequence_for<Ps...>{});
      analyze_accesses(t, descs.begin(), descs.size());
    }

    submit(t);
  }

  /// Spawn with hints but no explicit TaskType: `attrs.name`, when set,
  /// selects the registered type of that name (anonymous type otherwise).
  template <typename F, detail::TaskParam... Ps>
    requires(!std::is_same_v<std::decay_t<F>, TaskType>)
  void spawn(TaskAttrs attrs, F&& fn, Ps&&... ps) {
    const TaskType type =
        attrs.name != nullptr ? find_task_type(attrs.name) : TaskType{0};
    spawn(attrs, type, std::forward<F>(fn), std::forward<Ps>(ps)...);
  }

  /// Look up a registered task type by name; TaskType{0} (the anonymous
  /// type) when no match. Safe from any thread once registration is done.
  TaskType find_task_type(const char* name) const noexcept;

  // --- synchronization ---------------------------------------------------------

  /// Wait for all spawned tasks, then realign renamed data back into the
  /// program's own storage. Equivalent to `#pragma css barrier`. The main
  /// thread executes tasks while it waits (Sec. III). Main thread only and
  /// never from inside a task body — a task that must wait for the tasks it
  /// spawned uses taskwait() instead.
  void barrier();

  /// Wait until every *direct child* spawned by the calling task body has
  /// finished executing (OpenMP `taskwait` semantics; children of children
  /// are not awaited — they are the child's responsibility). The calling
  /// thread executes other ready tasks while it waits, so a recursion
  /// deeper than the worker count cannot deadlock the pool. Outside any
  /// task body this waits for all live tasks (no data realignment — that is
  /// barrier()'s job). A no-op in inline (non-nested) mode inside a task,
  /// where children already ran as function calls.
  void taskwait();

  /// Wait until the latest version of `*ptr` has been produced, then copy it
  /// back to the program's storage so the main code can read it. Equivalent
  /// to CellSs/SMPSs `#pragma css wait on(ptr)`. Grants read access only;
  /// use barrier() before writing from main code.
  template <typename T>
  void wait_on(const T* ptr) {
    wait_on_addr(static_cast<const void*>(ptr));
  }

  /// Execute at most one ready task on the calling thread and return whether
  /// one ran. Never blocks and never sleeps — this is the cooperative pump
  /// external wait loops (the multi-process backend's flag/ring waits)
  /// interleave so a 1-thread configuration keeps making progress while it
  /// spins on a condition the runtime knows nothing about. Legal from the
  /// main thread or from inside a task body (same footing as the
  /// execute-while-waiting loops of barrier()/taskwait()); a thread foreign
  /// to this runtime gets `false` and must wait some other way.
  bool help_one();

  // --- service mode -------------------------------------------------------------

  /// Open a persistent submission stream (see runtime/stream.hpp). Requires
  /// Config::nested_tasks (clients are concurrent submitters). Callable
  /// from any thread; the StreamState is registry-pinned until the Runtime
  /// dies. Task types must be registered before clients start submitting.
  StreamHandle open_stream(StreamOptions opts = {});

  /// Graceful whole-runtime shutdown of service mode: move every stream
  /// that is still Open to Draining (new submissions are diagnosed), wait
  /// for all their in-flight tasks (and callbacks) to retire, then mark
  /// them Closed. Does not touch non-stream tasks and does not realign
  /// renamed data — callers needing that run barrier() afterwards.
  void shutdown_streams();

  /// Streams currently in the Open phase.
  std::size_t open_stream_count() const;

  /// One-line JSON snapshot of the service counters (totals, window
  /// occupancy, per-stream admitted/throttled/latency). `tasks_per_s` < 0
  /// omits the rate field (the periodic exporter passes the rate it
  /// computes between periods).
  std::string stats_json(double tasks_per_s = -1.0) const;

  // --- introspection ------------------------------------------------------------

  StatsSnapshot stats() const;
  const Config& config() const noexcept { return cfg_; }
  unsigned num_threads() const noexcept { return cfg_.num_threads; }

  GraphRecorder& graph_recorder() noexcept { return recorder_; }
  const GraphRecorder& graph_recorder() const noexcept { return recorder_; }

  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  const RenamePool& rename_pool() const noexcept { return pool_; }

  /// Live (spawned, not yet completed) task count. Racy, monitoring only.
  std::size_t live_tasks() const noexcept {
    return tasks_live_.load(std::memory_order_relaxed);
  }

  bool on_main_thread() const noexcept {
    return std::this_thread::get_id() == main_thread_id_;
  }

  /// True while the calling thread is inside a task body (any Runtime).
  static bool in_task_context() noexcept;

 private:
  friend void worker_main(Runtime& rt, unsigned tid);
  friend class StreamHandle;
  friend class FutureState;

  /// Per-thread scheduling state, padded against false sharing.
  struct alignas(kCacheLineSize) WorkerState {
    WorkerCounters counters;
    Xoshiro256 rng;
  };

  template <std::size_t I, typename C>
  void analyze_param(C* closure, TaskNode* t) {
    using P = std::tuple_element_t<I, decltype(closure->params)>;
    if constexpr (detail::ParamTraits<P>::directional) {
      AccessDesc d = detail::ParamTraits<P>::desc(std::get<I>(closure->params));
      t->resolved.push_back(route_access(t, d));
    }
  }

  template <std::size_t I, typename C>
  void collect_param(C* closure, SmallVector<AccessDesc, 6>& out) {
    using P = std::tuple_element_t<I, decltype(closure->params)>;
    if constexpr (detail::ParamTraits<P>::directional)
      out.push_back(detail::ParamTraits<P>::desc(std::get<I>(closure->params)));
  }

  /// Dispatch one access to the address-mode or region-mode analyzer,
  /// diagnosing mixed-mode use of one array. `check_region_table` is false
  /// only when the concurrent path decided the region table was empty and
  /// therefore did not take the region rwlock (see analyze_accesses).
  void* route_access(TaskNode* t, const AccessDesc& d,
                     bool check_region_table = true);

  /// Concurrent-submitter analysis. Lock-free mode: run every per-datum
  /// analysis straight in (CAS chain publication; only the region rwlock is
  /// taken, and only when region tracking is live). Locked fallback: lock
  /// the shards this footprint hashes to (in index order), plus the region
  /// table (shared for address-only tasks), run the analysis, release —
  /// strict two-phase locking, any two submissions sharing a shard are
  /// totally ordered.
  void analyze_accesses(TaskNode* t, const AccessDesc* descs, std::size_t n);

  /// Hook up the parent link, assign the (atomic) sequence number, record
  /// the graph node.
  void begin_submission(TaskNode* t);

  /// Account the new task, release its creation guard, then apply the
  /// Sec. III blocking conditions (task window, rename-memory limit).
  void submit(TaskNode* t);

  /// Ready-list index the calling thread owns in this runtime, or kForeignTid
  /// for threads this runtime does not know (their pushes go to the shared
  /// main list, never to a per-worker deque they do not own).
  static constexpr unsigned kForeignTid = ~0u;
  unsigned submitter_tid() const noexcept;

  /// Construct a TaskNode — placement-new on a pooled block (steady state:
  /// no malloc) or plain new when pooling is disabled.
  TaskNode* allocate_task(unsigned alloc_slot);

  void enqueue_ready(TaskNode* t, unsigned tid, bool at_creation);
  TaskNode* acquire(unsigned tid);

  /// Policy submission hook: collect the producers of this task's input
  /// versions and hand them to the policy (critical-path + locality state).
  /// Must run before the creation guard is released. No-op for PaperPolicy.
  void policy_submit(TaskNode* t);

  /// Run `t`, then keep running immediate successors (Config::chain_depth)
  /// as the completions release them — each retire is still complete and in
  /// order (data tokens, parent notification, live count + threshold
  /// wakeups) before the next body starts.
  void execute_task(TaskNode* t, unsigned tid);

  /// One body + full retire. Returns the task to chain into (the single
  /// successor this completion released, when `allow_chain` and no pending
  /// high-priority task preempts it), or nullptr to return to the lists.
  TaskNode* execute_one(TaskNode* t, unsigned tid, bool arrived_by_chain,
                        bool allow_chain);

  /// Run one task on the main thread, or briefly sleep if none is ready.
  void help_once();

  void wait_on_addr(const void* addr);

  // --- commuting-group internals (dep/access_group.hpp) ----------------------

  /// Retire a group-close node: apply its inherit copies, combine reduction
  /// privates into the group storage, mark its version produced, and release
  /// the successors it was holding. Runs wherever the last dependency of the
  /// close resolves (a worker completing the last member, or the submitter
  /// via drain_group_closes when the analyzer sealed an empty/idle group).
  void retire_close(TaskNode* close, unsigned tid);

  /// Retire every close node the analyzer queued (groups sealed on the
  /// submission path resolve there, never on a worker). Called from
  /// submit/barrier/wait_on/drain — any point that observes the analyzer.
  void drain_group_closes();

  // --- service mode internals (runtime/stream.cpp) ---------------------------

  /// Blocking admission for one stream submission: fast path when nobody is
  /// queued and capacity is free, else the weighted round-robin queue.
  /// Increments s.submitted and s.live.
  void stream_admit(StreamState& s);

  /// Post-analysis accounting + creation-guard release for a stream task
  /// (the Sec. III blocking conditions already ran as admission).
  void submit_stream_task(TaskNode* t);

  /// Retire-side service hook: fulfill the future (callback runs here,
  /// before the stream's live count drops), record latency, credit the
  /// stream, wake drainers.
  void retire_service(TaskNode* t);

  void drain_stream(StreamState& s);
  void close_stream(StreamState& s);
  void wait_future(FutureState& f);

  void stats_exporter_main();

  /// StreamHandle::submit/post forward here. `want_future` gates the
  /// FutureState allocation (post() never allocates one).
  template <typename F, detail::TaskParam... Ps>
  TaskFuture spawn_stream(StreamState& s, bool want_future, TaskType type,
                          F&& fn, Ps&&... ps) {
    SMPSS_CHECK(type.id < types_.size(), "unregistered task type");
    stream_admit(s);

    const unsigned alloc_slot = submitter_tid();
    TaskNode* t = allocate_task(alloc_slot);
    t->type_id = type.id;
    t->high_priority = types_[type.id].high_priority;
    t->stream = &s;
    t->account = &s.account;
    t->submit_ns = now_ns();

    using C = detail::Closure<std::decay_t<F>, std::decay_t<Ps>...>;
    void* mem = t->allocate_closure(sizeof(C), alignof(C), alloc_slot);
    C* closure = ::new (mem)
        C{std::forward<F>(fn), std::tuple<std::decay_t<Ps>...>(
                                   std::forward<Ps>(ps)...)};
    t->set_vtable(&C::vtable);

    TaskFuture fut;
    if (want_future) {
      auto* f = new FutureState(this);
      t->future = f;         // task-side ref, dropped after fulfill()
      fut = TaskFuture(f);   // handle-side ref (FutureState starts at 2)
    }

    // Streams are concurrent submitters by definition: always the collected
    // two-phase shard path (open_stream requires Config::nested_tasks).
    begin_submission(t);
    SmallVector<AccessDesc, 6> descs;
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      (collect_param<Is>(closure, descs), ...);
    }(std::index_sequence_for<Ps...>{});
    analyze_accesses(t, descs.begin(), descs.size());

    submit_stream_task(t);
    return fut;
  }

  Config cfg_;
  std::thread::id main_thread_id_;
  /// Pooled TaskNode/closure storage. Declared before (so destroyed after)
  /// the analyzers and the rename pool: their destructors release the last
  /// version-held task references, which recycle nodes into this arena.
  /// Null when Config::pool_cache == 0 (plain new/delete lifecycle).
  std::unique_ptr<TaskArena> arena_;
  RenamePool pool_;
  GraphRecorder recorder_;
  DependencyAnalyzer dep_;
  RegionAnalyzer regions_;
  /// Owner of every placement/ordering/steal decision (sched/policy.hpp):
  /// PaperPolicy wraps the Sec. III ReadyLists verbatim; AwarePolicy adds
  /// cost-, critical-path-, and locality-aware placement
  /// (Config::sched_policy / SMPSS_SCHED_POLICY).
  std::unique_ptr<SchedulerPolicy<TaskNode>> policy_;
  IdleGate gate_;
  Tracer tracer_;

  std::vector<TaskTypeInfo> types_;
  std::unique_ptr<WorkerState[]> worker_state_;  // [0]=main, [1..n-1]=workers
  std::vector<std::thread> threads_;

  std::atomic<std::size_t> tasks_live_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> inlined_{0};

  /// Guards the RegionAnalyzer tables, ordered after every dependency
  /// shard mutex in the two-phase acquisition. Region-qualified submissions
  /// hold it exclusively; address-mode submissions hold it shared (only for
  /// the mixed-mode diagnosis), so they stay mutually concurrent. The
  /// single-submitter path never touches it. Mutable: stats() takes it
  /// shared to snapshot the region counters.
  mutable std::shared_mutex region_mu_;

  /// Invocation identifier source. Atomic: sequence numbers identify tasks
  /// in traces and the recorded graph but no longer define a global
  /// submission order — correctness rests on per-datum version-chain order
  /// established under the shard locks.
  std::atomic<std::uint64_t> seq_{0};

  // submission-side counters; atomics because nested mode submits from many
  // threads concurrently
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> nested_spawned_{0};
  std::atomic<std::uint64_t> taskwaits_{0};
  std::atomic<std::uint64_t> nested_throttled_{0};
  std::atomic<std::uint64_t> foreign_throttled_{0};
  std::atomic<std::uint64_t> ready_at_creation_{0};

  // main-thread-only counters
  std::uint64_t barriers_ = 0;
  std::uint64_t blocked_window_ = 0;
  std::uint64_t blocked_memory_ = 0;

  // --- service mode ----------------------------------------------------------

  /// Append-only stream registry: StreamStates are never freed or reused
  /// before the Runtime dies (versions carry their SubmitterAccount past
  /// stream close). Guarded by streams_mu_ for growth; the states
  /// themselves are internally synchronized.
  mutable std::mutex streams_mu_;
  std::vector<std::unique_ptr<StreamState>> streams_;

  /// Weighted round-robin admission for stream submissions (the fairness
  /// replacement for the free-for-all foreign-thread gate).
  AdmissionControl admission_;

  /// Future waiters sleep here; retire_service notifies after fulfill.
  IdleGate future_gate_;

  // periodic JSON stats exporter (Config::stats_period_ms > 0)
  std::thread stats_thread_;
  std::mutex stats_mu_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;
};

// --- StreamHandle template forwarding (needs the full Runtime type) -----------

template <typename F, detail::TaskParam... Ps>
TaskFuture StreamHandle::submit(TaskType type, F&& fn, Ps&&... ps) {
  SMPSS_CHECK(s_ != nullptr, "submit() on an invalid StreamHandle");
  return rt_->spawn_stream(*s_, /*want_future=*/true, type,
                           std::forward<F>(fn), std::forward<Ps>(ps)...);
}

template <typename F, detail::TaskParam... Ps>
  requires(!std::is_same_v<std::decay_t<F>, TaskType>)
TaskFuture StreamHandle::submit(F&& fn, Ps&&... ps) {
  return submit(TaskType{0}, std::forward<F>(fn), std::forward<Ps>(ps)...);
}

template <typename F, detail::TaskParam... Ps>
void StreamHandle::post(TaskType type, F&& fn, Ps&&... ps) {
  SMPSS_CHECK(s_ != nullptr, "post() on an invalid StreamHandle");
  rt_->spawn_stream(*s_, /*want_future=*/false, type, std::forward<F>(fn),
                    std::forward<Ps>(ps)...);
}

template <typename F, detail::TaskParam... Ps>
  requires(!std::is_same_v<std::decay_t<F>, TaskType>)
void StreamHandle::post(F&& fn, Ps&&... ps) {
  post(TaskType{0}, std::forward<F>(fn), std::forward<Ps>(ps)...);
}

}  // namespace smpss
