// Service mode: persistent multi-stream submission on top of the batch
// engine.
//
// The paper's runtime is a run-to-barrier batch engine: one generator
// thread, one global task window, one barrier. A long-lived service has N
// client threads submitting indefinitely — so the blocking conditions of
// Sec. III become *per-tenant* admission control and the global barrier is
// replaced by per-task futures and per-stream drains:
//
//     smpss::Runtime rt(cfg);                  // cfg.nested_tasks = true
//     auto t = rt.register_task_type("work");  // before clients start
//     smpss::StreamHandle s = rt.open_stream({.name = "tenant-a",
//                                             .weight = 2});
//     auto fut = s.submit(t, body, smpss::inout(&cell));
//     fut.then([] { /* runs on the retiring worker */ });
//     fut.wait();
//     s.drain();   // all tasks admitted through s retired
//     s.close();   // drain + no further submissions
//
// Stream lifecycle: Open -> Draining -> Closed (one-way). StreamStates live
// in an append-only registry owned by the Runtime and are never freed or
// reused mid-run: versions carry the stream's SubmitterAccount past the
// stream's close (a renamed buffer dies with its last reader), so the
// pointed-to state must outlive everything — it does, by construction.
//
// Service mode requires Config::nested_tasks (concurrent submitters) and a
// registered task type per body shape, both set up on the main thread
// before the first client submits.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "common/check.hpp"
#include "dep/renaming.hpp"
#include "graph/task.hpp"
#include "runtime/params.hpp"
#include "sched/admission.hpp"
#include "trace/latency_histogram.hpp"

namespace smpss {

class Runtime;

/// open_stream() parameters. Defaults: equal weight, no stream-local window
/// or rename budget (the global Sec. III blocking conditions still apply).
struct StreamOptions {
  std::string name;                    ///< stats/exporter label ("" = "stream-<id>")
  std::uint32_t weight = 1;            ///< admission slots per round-robin turn
  std::size_t task_window = 0;         ///< per-stream live-task cap (0 = none)
  std::size_t rename_budget_bytes = 0; ///< per-stream renamed-storage cap (0 = none)
};

/// One stream's runtime state. Registry-pinned: allocated by open_stream(),
/// owned by the Runtime, never freed before the Runtime itself.
struct StreamState {
  enum class Phase : std::uint8_t { Open = 0, Draining = 1, Closed = 2 };

  // immutable after open_stream()
  std::uint32_t id = 0;
  std::string name;
  std::size_t window = 0;  ///< per-stream live-task cap (0 = none)

  std::atomic<Phase> phase{Phase::Open};

  // accounting (submit side bumps submitted/live; retire side retired/live)
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::int64_t> live{0};
  /// Admissions that had to queue (the stream hit a window/budget/fairness
  /// wall) — the per-stream split of the old global foreign_throttled.
  std::atomic<std::uint64_t> throttled{0};
  std::atomic<std::uint64_t> callbacks_run{0};

  /// Rename-storage charge/budget + analyzer traffic, threaded through both
  /// analyzers via TaskNode::account.
  SubmitterAccount account;

  /// Submit-to-retire latency (ns). Recorded on every stream-task retire.
  LatencyHistogram latency;

  /// Standing in the weighted round-robin admission ring.
  AdmissionTicket ticket;
};

/// Shared completion state of one task: one ref held by the task (dropped
/// after fulfill), one by the TaskFuture handle. The callback runs exactly
/// once — on the retiring worker when installed before completion, inline
/// in then() when installed after.
class FutureState {
 public:
  explicit FutureState(Runtime* rt) : rt_(rt) {}

  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  void release() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  bool ready() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  /// Block until the task retired (and its callback, if any, ran). The main
  /// thread executes ready tasks while waiting; any other thread sleeps on
  /// the future gate. Must not be called from inside one of the owning
  /// runtime's own task bodies (it would wait on itself).
  void wait();

  /// Install the completion callback. At most one per future; runs on the
  /// retiring worker (keep it short — it delays that worker's next acquire),
  /// or inline here when the task already completed.
  void then(std::function<void()> cb);

  /// Retire side (Runtime::retire_service): publish completion, run the
  /// armed callback, wake waiters. Returns whether a callback ran here.
  bool fulfill();

 private:
  // Callback slot states: then() moves kNone->kArmed (or runs inline after
  // kDone); fulfill() moves kNone->kDone or runs the kArmed callback. The
  // two CASes linearize the race, so the callback runs exactly once.
  enum : std::uint8_t { kNone = 0, kArmed = 1, kDone = 2, kRan = 3 };

  Runtime* rt_;
  std::atomic<std::int32_t> refs_{2};  // task + handle
  std::atomic<bool> done_{false};
  std::atomic<std::uint8_t> cb_state_{kNone};
  std::function<void()> cb_;
};

/// Move-only handle on one task's completion. Obtained from
/// StreamHandle::submit(); fire-and-forget submissions use post() and never
/// allocate future state.
class TaskFuture {
 public:
  TaskFuture() = default;
  explicit TaskFuture(FutureState* st) noexcept : st_(st) {}
  TaskFuture(TaskFuture&& o) noexcept : st_(o.st_) { o.st_ = nullptr; }
  TaskFuture& operator=(TaskFuture&& o) noexcept {
    if (this != &o) {
      if (st_) st_->release();
      st_ = o.st_;
      o.st_ = nullptr;
    }
    return *this;
  }
  TaskFuture(const TaskFuture&) = delete;
  TaskFuture& operator=(const TaskFuture&) = delete;
  ~TaskFuture() {
    if (st_) st_->release();
  }

  bool valid() const noexcept { return st_ != nullptr; }
  bool ready() const noexcept { return st_ && st_->ready(); }
  void wait() {
    SMPSS_CHECK(st_ != nullptr, "wait() on an invalid TaskFuture");
    st_->wait();
  }
  void then(std::function<void()> cb) {
    SMPSS_CHECK(st_ != nullptr, "then() on an invalid TaskFuture");
    st_->then(std::move(cb));
  }

 private:
  FutureState* st_ = nullptr;
};

/// Client-side handle on an open stream. Move-only; the destructor closes
/// the stream (draining it first). One handle may be driven by one client
/// thread at a time for submit/post; drain() is safe concurrently with
/// racing submitters on other handles/threads.
class StreamHandle {
 public:
  StreamHandle() = default;
  StreamHandle(StreamHandle&& o) noexcept : rt_(o.rt_), s_(o.s_) {
    o.rt_ = nullptr;
    o.s_ = nullptr;
  }
  StreamHandle& operator=(StreamHandle&& o) noexcept;
  StreamHandle(const StreamHandle&) = delete;
  StreamHandle& operator=(const StreamHandle&) = delete;
  ~StreamHandle();

  /// Submit a task and get its completion future. Same parameter contract
  /// as Runtime::spawn. Blocks (fairly, see sched/admission.hpp) while the
  /// stream is over its window/budget or the global window is full.
  template <typename F, detail::TaskParam... Ps>
  TaskFuture submit(TaskType type, F&& fn, Ps&&... ps);
  template <typename F, detail::TaskParam... Ps>
    requires(!std::is_same_v<std::decay_t<F>, TaskType>)
  TaskFuture submit(F&& fn, Ps&&... ps);

  /// Fire-and-forget submit: same admission, no future allocation.
  template <typename F, detail::TaskParam... Ps>
  void post(TaskType type, F&& fn, Ps&&... ps);
  template <typename F, detail::TaskParam... Ps>
    requires(!std::is_same_v<std::decay_t<F>, TaskType>)
  void post(F&& fn, Ps&&... ps);

  /// Alias of post() with Runtime::spawn's exact signature, so generic
  /// submission code (the pattern driver) templates over Runtime& and
  /// StreamHandle& interchangeably.
  template <typename F, detail::TaskParam... Ps>
  void spawn(TaskType type, F&& fn, Ps&&... ps) {
    post(type, std::forward<F>(fn), std::forward<Ps>(ps)...);
  }

  /// Wait until every task admitted through this stream so far has retired
  /// (callbacks included). Submissions racing the drain may extend it; the
  /// stream stays open.
  void drain();

  /// Drain, then refuse further submissions (diagnosed, not silently
  /// dropped). Idempotent.
  void close();

  bool valid() const noexcept { return s_ != nullptr; }
  bool open() const noexcept {
    return s_ != nullptr &&
           s_->phase.load(std::memory_order_acquire) ==
               StreamState::Phase::Open;
  }
  std::uint32_t id() const noexcept { return s_ ? s_->id : ~0u; }
  const std::string& name() const {
    static const std::string kInvalid = "<invalid>";
    return s_ ? s_->name : kInvalid;
  }

  /// The pinned runtime-owned state (tests/monitoring).
  StreamState* state() const noexcept { return s_; }

 private:
  friend class Runtime;
  StreamHandle(Runtime* rt, StreamState* s) noexcept : rt_(rt), s_(s) {}

  Runtime* rt_ = nullptr;
  StreamState* s_ = nullptr;
};

}  // namespace smpss
