// Runtime statistics: per-worker padded counters plus main-thread counters,
// flattened into a StatsSnapshot on demand. The ablation benches and several
// tests key off these (e.g. "Strassen is an intensive renaming test case" is
// asserted via renames > 0, locality via steal ratios).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cache.hpp"
#include "common/counters.hpp"

namespace smpss {

/// Written by exactly one worker; padded to avoid false sharing.
struct alignas(kCacheLineSize) WorkerCounters {
  Counter64 executed;
  Counter64 steals;
  Counter64 steal_attempts;
  Counter64 acquired_high;
  Counter64 acquired_own;
  Counter64 acquired_main;
  Counter64 idle_sleeps;
  Counter64 idle_ns;  ///< wall time spent blocked on the idle gate
  Counter64 task_ns;  ///< accumulated body time (tracing or cost feedback)
  /// Executed tasks whose placement preference (TaskNode::pref_tid) matched /
  /// missed this worker. PaperPolicy marks its local pushes too, so the
  /// ratio is meaningful under both policies.
  Counter64 locality_hits;
  Counter64 locality_misses;
  /// Tasks this worker ran by chaining directly out of a completion (the
  /// single released successor bypassed the ready lists entirely).
  Counter64 chained;
  /// Completions that released >= 2 successors and enqueued them with one
  /// ready-list batch operation + at most one wakeup.
  Counter64 batched_releases;
  /// Wakeups the batched-release path did not issue because every wakeable
  /// worker was already running (gate had no sleepers), or because one
  /// wakeup covered several released tasks.
  Counter64 wakeups_suppressed;
  /// Ready commutative members this worker could not acquire the group
  /// token(s) for and parked on the blocking token instead of running.
  Counter64 conflict_deferrals;
  /// Parked members this worker re-enqueued when it released a token.
  Counter64 conflict_wakeups;
};

/// Per-stream service-mode counters (one row per open_stream() call, closed
/// streams included — the registry is append-only).
struct StreamStats {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t weight = 1;
  std::uint8_t phase = 0;  ///< 0 Open, 1 Draining, 2 Closed
  std::uint64_t submitted = 0;
  std::uint64_t retired = 0;
  std::int64_t live = 0;
  std::uint64_t throttled = 0;      ///< admissions that had to queue
  std::uint64_t callbacks_run = 0;  ///< futures whose callback ran at retire
  std::uint64_t rename_bytes = 0;   ///< current renamed storage charged here
  std::uint64_t renames = 0;
  std::uint64_t dep_accesses = 0;
  std::uint64_t dep_edges = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
};

/// One worker's row in StatsSnapshot (index = worker id, 0 = main thread).
struct WorkerStatsRow {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t acquired_high = 0;
  std::uint64_t acquired_own = 0;
  std::uint64_t acquired_main = 0;
  std::uint64_t idle_sleeps = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t locality_hits = 0;
  std::uint64_t locality_misses = 0;
  std::uint64_t chained = 0;
};

/// Aggregate view returned by Runtime::stats().
struct StatsSnapshot {
  // creation side (main thread)
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_inlined = 0;  ///< nested spawns run as function calls
  std::uint64_t tasks_nested = 0;   ///< real child tasks (nested mode only)
  std::uint64_t taskwaits = 0;      ///< Runtime::taskwait() calls
  /// In-task submissions that hit the task-window/rename-memory limit and
  /// drained ready tasks (a best-effort, never-sleeping throttle — see
  /// Runtime::submit; the hard blocking conditions remain main-thread).
  std::uint64_t nested_throttled = 0;
  /// Foreign-thread submissions that hit the task-window/rename-memory limit
  /// and slept on the gate until the graph drained below the low-water mark
  /// (a foreign thread executes no tasks, so it blocks hard instead of
  /// draining — see Runtime::submit).
  std::uint64_t foreign_throttled = 0;
  std::uint64_t ready_at_creation = 0;
  std::uint64_t barriers = 0;
  std::uint64_t main_blocked_on_window = 0;
  std::uint64_t main_blocked_on_memory = 0;

  // dependency engine
  std::uint64_t raw_edges = 0;
  std::uint64_t war_edges = 0;
  std::uint64_t waw_edges = 0;
  std::uint64_t renames = 0;
  std::uint64_t rename_bytes_total = 0;
  std::uint64_t rename_bytes_peak = 0;
  std::uint64_t in_place_reuses = 0;
  std::uint64_t copy_ins = 0;
  std::uint64_t copy_in_bytes = 0;
  std::uint64_t copyback_bytes = 0;
  std::uint64_t tracked_objects = 0;
  /// Lost CAS races in the lock-free dependency pipeline (publication
  /// retries + aborted reader pins); zero in locked mode.
  std::uint64_t lockfree_cas_retries = 0;
  std::uint64_t region_accesses = 0;

  // commuting access groups (Dir::Commutative / Dir::Concurrent)
  std::uint64_t groups_opened = 0;   ///< commuting groups created
  std::uint64_t group_joins = 0;     ///< member accesses folded into a group
  std::uint64_t groups_closed = 0;   ///< groups sealed by a non-matching access/barrier
  std::uint64_t commute_edges = 0;   ///< member -> close completion edges
  std::uint64_t conflict_deferrals = 0;  ///< token-busy parks (summed)
  std::uint64_t conflict_wakeups = 0;    ///< parked members re-enqueued

  // execution side (summed over workers)
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t acquired_high = 0;
  std::uint64_t acquired_own = 0;
  std::uint64_t acquired_main = 0;
  std::uint64_t idle_sleeps = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t task_ns = 0;
  std::uint64_t locality_hits = 0;
  std::uint64_t locality_misses = 0;
  /// Ready tasks the aware policy promoted to the high-priority list on
  /// critical-path priority (zero under the paper policy).
  std::uint64_t sched_promotions = 0;
  /// One row per worker (summed into the aggregates above).
  std::vector<WorkerStatsRow> workers;

  // retire fast path (summed over workers; see Config::chain_depth)
  std::uint64_t chained_executions = 0;
  std::uint64_t batched_releases = 0;
  std::uint64_t wakeups_suppressed = 0;

  // pooled task/closure allocator (zero everywhere when pool_cache == 0)
  std::uint64_t pool_hits = 0;     ///< node+closure allocs served from lists
  std::uint64_t pool_refills = 0;  ///< batched trips to the overflow list
  std::uint64_t pool_slabs = 0;    ///< slab mallocs (the only real allocs)

  // service mode (empty/zero when no stream was ever opened)
  std::vector<StreamStats> streams;
  std::uint64_t stream_submitted = 0;  ///< sum over streams
  std::uint64_t stream_retired = 0;
  std::uint64_t stream_throttled = 0;
  std::uint64_t service_latency_count = 0;  ///< merged over streams
  std::uint64_t service_p50_ns = 0;
  std::uint64_t service_p99_ns = 0;

  // snapshot consistency (see Runtime::stats): the counters above were
  // gathered execution-side-first behind a seq_cst fence, and re-read until
  // two passes agreed (or the attempt bound was hit). `snapshot_epoch` is
  // the spawned_ value the accepted pass observed — monotone across calls.
  std::uint64_t snapshot_epoch = 0;
  bool snapshot_consistent = false;
};

}  // namespace smpss
