// Runtime statistics: per-worker padded counters plus main-thread counters,
// flattened into a StatsSnapshot on demand. The ablation benches and several
// tests key off these (e.g. "Strassen is an intensive renaming test case" is
// asserted via renames > 0, locality via steal ratios).
#pragma once

#include <cstdint>

#include "common/cache.hpp"

namespace smpss {

/// Written by exactly one worker; padded to avoid false sharing.
struct alignas(kCacheLineSize) WorkerCounters {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t acquired_high = 0;
  std::uint64_t acquired_own = 0;
  std::uint64_t acquired_main = 0;
  std::uint64_t idle_sleeps = 0;
  std::uint64_t task_ns = 0;  ///< accumulated body time (tracing only)
};

/// Aggregate view returned by Runtime::stats().
struct StatsSnapshot {
  // creation side (main thread)
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_inlined = 0;  ///< nested spawns run as function calls
  std::uint64_t ready_at_creation = 0;
  std::uint64_t barriers = 0;
  std::uint64_t main_blocked_on_window = 0;
  std::uint64_t main_blocked_on_memory = 0;

  // dependency engine
  std::uint64_t raw_edges = 0;
  std::uint64_t war_edges = 0;
  std::uint64_t waw_edges = 0;
  std::uint64_t renames = 0;
  std::uint64_t rename_bytes_total = 0;
  std::uint64_t rename_bytes_peak = 0;
  std::uint64_t in_place_reuses = 0;
  std::uint64_t copy_ins = 0;
  std::uint64_t copy_in_bytes = 0;
  std::uint64_t copyback_bytes = 0;
  std::uint64_t tracked_objects = 0;
  std::uint64_t region_accesses = 0;

  // execution side (summed over workers)
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t acquired_high = 0;
  std::uint64_t acquired_own = 0;
  std::uint64_t acquired_main = 0;
  std::uint64_t idle_sleeps = 0;
  std::uint64_t task_ns = 0;
};

}  // namespace smpss
