// Periodic JSON stats exporter for service mode: one self-contained line
// per period (newline-delimited JSON, so `tail -f | jq` just works), plus
// one final line at shutdown so short runs still export. The exporter is a
// plain consumer of Runtime::stats(); it owns no counters of its own.
#include "runtime/stats_export.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/timing.hpp"
#include "runtime/runtime.hpp"

namespace smpss {

namespace {

/// write(2) the whole buffer, resuming across EINTR/short writes. The first
/// write almost always lands the full line in one syscall, which is what
/// keeps concurrently-appending ranks (O_APPEND) from interleaving bytes.
void write_full(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stats are best-effort; never take the runtime down
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Minimal JSON string escaping (stream names are caller-chosen).
void append_escaped(std::string& out, const std::string& in) {
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

const char* phase_name(std::uint8_t p) {
  switch (p) {
    case 0: return "open";
    case 1: return "draining";
    default: return "closed";
  }
}

}  // namespace

std::string Runtime::stats_json(double tasks_per_s) const {
  const StatsSnapshot s = stats();
  std::string out;
  out.reserve(512 + 256 * s.streams.size());
  out += '{';
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"ts_ms\":%.3f,", now_ns() / 1e6);
  out += buf;
  if (tasks_per_s >= 0) {
    std::snprintf(buf, sizeof buf, "\"tasks_per_s\":%.1f,", tasks_per_s);
    out += buf;
  }
  append_u64(out, "tasks_spawned", s.tasks_spawned);
  append_u64(out, "tasks_executed", s.tasks_executed);
  const std::uint64_t live = s.tasks_spawned - s.tasks_executed;
  append_u64(out, "tasks_live", live);
  append_u64(out, "task_window", cfg_.task_window);
  std::snprintf(buf, sizeof buf, "\"window_occupancy\":%.4f,",
                cfg_.task_window > 0
                    ? static_cast<double>(live) /
                          static_cast<double>(cfg_.task_window)
                    : 0.0);
  out += buf;
  append_u64(out, "renames", s.renames);
  append_u64(out, "rename_bytes", s.rename_bytes_total);
  append_u64(out, "lockfree_cas_retries", s.lockfree_cas_retries);
  append_u64(out, "steals", s.steals);
  append_u64(out, "idle_ns", s.idle_ns);
  append_u64(out, "locality_hits", s.locality_hits);
  append_u64(out, "locality_misses", s.locality_misses);
  append_u64(out, "sched_promotions", s.sched_promotions);
  out += "\"workers\":[";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerStatsRow& w = s.workers[i];
    if (i != 0) out += ',';
    out += '{';
    append_u64(out, "tid", i);
    append_u64(out, "executed", w.executed);
    append_u64(out, "steals", w.steals);
    append_u64(out, "steal_attempts", w.steal_attempts);
    append_u64(out, "acquired_high", w.acquired_high);
    append_u64(out, "acquired_own", w.acquired_own);
    append_u64(out, "acquired_main", w.acquired_main);
    append_u64(out, "idle_sleeps", w.idle_sleeps);
    append_u64(out, "idle_ns", w.idle_ns);
    append_u64(out, "locality_hits", w.locality_hits);
    append_u64(out, "locality_misses", w.locality_misses);
    append_u64(out, "chained", w.chained, /*comma=*/false);
    out += '}';
  }
  out += "],";
  append_u64(out, "stream_submitted", s.stream_submitted);
  append_u64(out, "stream_retired", s.stream_retired);
  append_u64(out, "stream_throttled", s.stream_throttled);
  append_u64(out, "latency_count", s.service_latency_count);
  append_u64(out, "p50_ns", s.service_p50_ns);
  append_u64(out, "p99_ns", s.service_p99_ns);
  append_u64(out, "snapshot_epoch", s.snapshot_epoch);
  out += s.snapshot_consistent ? "\"snapshot_consistent\":true,"
                               : "\"snapshot_consistent\":false,";
  out += "\"streams\":[";
  for (std::size_t i = 0; i < s.streams.size(); ++i) {
    const StreamStats& r = s.streams[i];
    if (i != 0) out += ',';
    out += '{';
    append_u64(out, "id", r.id);
    out += "\"name\":\"";
    append_escaped(out, r.name);
    out += "\",";
    std::snprintf(buf, sizeof buf, "\"phase\":\"%s\",",
                  phase_name(r.phase));
    out += buf;
    append_u64(out, "weight", r.weight);
    append_u64(out, "submitted", r.submitted);
    append_u64(out, "retired", r.retired);
    append_u64(out, "live",
               r.live > 0 ? static_cast<std::uint64_t>(r.live) : 0);
    append_u64(out, "throttled", r.throttled);
    append_u64(out, "callbacks_run", r.callbacks_run);
    append_u64(out, "rename_bytes", r.rename_bytes);
    append_u64(out, "latency_count", r.latency_count);
    append_u64(out, "p50_ns", r.latency_p50_ns);
    append_u64(out, "p99_ns", r.latency_p99_ns, /*comma=*/false);
    out += '}';
  }
  out += "]}";
  return out;
}

void Runtime::stats_exporter_main() {
  // One write(2) per line against an O_APPEND descriptor: the kernel appends
  // the whole line atomically, so lines from several exporting processes
  // sharing one file never interleave, and a kill can at worst truncate the
  // final line (which append_partial_run_marker then repairs).
  int fd = -1;
  if (!cfg_.stats_path.empty())
    fd = ::open(cfg_.stats_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  const bool own_fd = fd >= 0;
  if (fd < 0) fd = STDERR_FILENO;

  std::uint64_t prev_executed = 0;
  std::uint64_t prev_ns = now_ns();
  for (;;) {
    bool stop;
    {
      std::unique_lock<std::mutex> lk(stats_mu_);
      stats_cv_.wait_for(lk, std::chrono::milliseconds(cfg_.stats_period_ms),
                         [&] { return stats_stop_; });
      stop = stats_stop_;
    }
    const StatsSnapshot s = stats();
    const std::uint64_t now = now_ns();
    const double dt = static_cast<double>(now - prev_ns) / 1e9;
    const double rate =
        dt > 0 ? static_cast<double>(s.tasks_executed - prev_executed) / dt
               : 0.0;
    prev_ns = now;
    prev_executed = s.tasks_executed;
    std::string line = stats_json(rate);
    line += '\n';
    write_full(fd, line.data(), line.size());
    if (stop) break;  // the post-stop pass is the final line
  }
  if (own_fd) ::close(fd);
}

void append_partial_run_marker(const std::string& path, unsigned rank,
                               int status) {
  if (path.empty()) return;
  // O_RDWR, not O_WRONLY: the torn-tail probe pread()s the last byte, which
  // a write-only descriptor refuses (EBADF) — silently disabling the repair.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  // A child killed mid-write leaves a torn last line; terminating it turns
  // the tail into one unparseable (skipped) line instead of corrupting the
  // marker that follows.
  bool torn_tail = false;
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = 0;
    torn_tail =
        ::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n';
  }
  char buf[160];
  const int n = std::snprintf(
      buf, sizeof buf, "%s{\"partial_run\":true,\"rank\":%u,\"status\":%d}\n",
      torn_tail ? "\n" : "", rank, status);
  if (n > 0) write_full(fd, buf, static_cast<std::size_t>(n));
  ::close(fd);
}

}  // namespace smpss
