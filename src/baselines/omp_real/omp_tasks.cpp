#include "baselines/omp_real/omp_tasks.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "apps/multisort.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace smpss::ompreal {

#if !defined(_OPENMP)

bool available() noexcept { return false; }
unsigned max_threads() noexcept { return 0; }
bool multisort(long*, long*, long, long, long, unsigned) { return false; }
long nqueens(int, int, unsigned) { return -1; }

#else

bool available() noexcept { return true; }

unsigned max_threads() noexcept {
  return static_cast<unsigned>(omp_get_max_threads());
}

namespace {

using apps::ELM;

void omp_merge(const ELM* a, long la, const ELM* b, long lb, ELM* out,
               long t0, long t1, long merge_size);

void omp_sort(ELM* data, ELM* tmp, long i, long j, long quick_size,
              long merge_size) {
  long size = j - i + 1;
  if (size < quick_size || size < 8) {
    apps::seqquick(data, i, j);
    return;
  }
  long q = size / 4;
  long i1 = i, j1 = i + q - 1;
  long i2 = i + q, j2 = i + 2 * q - 1;
  long i3 = i + 2 * q, j3 = i + 3 * q - 1;
  long i4 = i + 3 * q, j4 = j;
#pragma omp task default(shared)
  omp_sort(data, tmp, i1, j1, quick_size, merge_size);
#pragma omp task default(shared)
  omp_sort(data, tmp, i2, j2, quick_size, merge_size);
#pragma omp task default(shared)
  omp_sort(data, tmp, i3, j3, quick_size, merge_size);
  omp_sort(data, tmp, i4, j4, quick_size, merge_size);
#pragma omp taskwait
#pragma omp task default(shared)
  omp_merge(data + i1, j1 - i1 + 1, data + i2, j2 - i2 + 1, tmp + i1, 0,
            j2 - i1 + 1, merge_size);
  omp_merge(data + i3, j3 - i3 + 1, data + i4, j4 - i4 + 1, tmp + i3, 0,
            j4 - i3 + 1, merge_size);
#pragma omp taskwait
  omp_merge(tmp + i1, j2 - i1 + 1, tmp + i3, j4 - i3 + 1, data + i1, 0,
            j4 - i1 + 1, merge_size);
#pragma omp taskwait
}

void omp_merge(const ELM* a, long la, const ELM* b, long lb, ELM* out,
               long t0, long t1, long merge_size) {
  if (t1 - t0 <= merge_size) {
    // Co-rank based piece merge, identical to the other baselines.
    long ia = apps::co_rank(t0, a, la, b, lb);
    long ib = t0 - ia;
    long ja = apps::co_rank(t1, a, la, b, lb);
    long jb = t1 - ja;
    long o = t0;
    while (ia < ja && ib < jb) out[o++] = a[ia] <= b[ib] ? a[ia++] : b[ib++];
    while (ia < ja) out[o++] = a[ia++];
    while (ib < jb) out[o++] = b[ib++];
    return;
  }
  long mid = (t0 + t1) / 2;
#pragma omp task default(shared)
  omp_merge(a, la, b, lb, out, t0, mid, merge_size);
  omp_merge(a, la, b, lb, out, mid, t1, merge_size);
#pragma omp taskwait
}

bool nq_safe(const int* board, int d, int c) {
  for (int k = 0; k < d; ++k) {
    int bc = board[k];
    if (bc == c || std::abs(bc - c) == d - k) return false;
  }
  return true;
}

long nq_count_tail(int* board, int d, int n) {
  if (d == n) return 1;
  long total = 0;
  for (int c = 0; c < n; ++c) {
    if (nq_safe(board, d, c)) {
      board[d] = c;
      total += nq_count_tail(board, d + 1, n);
    }
  }
  return total;
}

void nq_rec(std::vector<int> board, int d, int n, int cutoff,
            std::atomic<long>& total) {
  if (d >= cutoff) {
    total.fetch_add(nq_count_tail(board.data(), d, n),
                    std::memory_order_relaxed);
    return;
  }
  for (int c = 0; c < n; ++c) {
    if (!nq_safe(board.data(), d, c)) continue;
    // Per-task copy of the partial solution array, as the paper describes
    // for the OpenMP tasking version.
    std::vector<int> child = board;
    child[d] = c;
#pragma omp task default(shared) firstprivate(child, d)
    nq_rec(std::move(child), d + 1, n, cutoff, total);
  }
#pragma omp taskwait
}

}  // namespace

bool multisort(long* data, long* tmp, long n, long quick_size,
               long merge_size, unsigned threads) {
#pragma omp parallel num_threads(static_cast<int>(threads))
  {
#pragma omp single nowait
    omp_sort(data, tmp, 0, n - 1, quick_size, merge_size);
  }
  return true;
}

long nqueens(int n, int task_depth, unsigned threads) {
  const int cutoff = std::max(0, n - task_depth);
  std::atomic<long> total{0};
#pragma omp parallel num_threads(static_cast<int>(threads))
  {
#pragma omp single nowait
    nq_rec(std::vector<int>(static_cast<std::size_t>(n), 0), 0, n, cutoff,
           total);
  }
  return total.load(std::memory_order_relaxed);
}

#endif  // _OPENMP

}  // namespace smpss::ompreal
