// Real OpenMP tasking baselines (optional, compiled when the toolchain has
// OpenMP). The paper's "OMP3 tasks" series used the Nanos research runtime;
// our primary stand-in is baselines/taskpool. When libgomp is available
// these variants run the same algorithms through actual `#pragma omp task`
// / `taskwait`, giving an external reference point for Figs. 14/15.
//
// Note the paper-relevant detail carried over: the N-Queens board is copied
// manually for every task ("the OpenMP tasking version requires allocating
// a copy of the partial solution array"), and the multisort phases are
// separated by taskwait barriers.
#pragma once

namespace smpss::ompreal {

/// True when this build has real OpenMP support.
bool available() noexcept;

/// Threads OpenMP will use (0 if unavailable).
unsigned max_threads() noexcept;

/// Multisort via omp tasks; same decomposition as apps::multisort_*.
/// Returns false when OpenMP is unavailable (output untouched).
bool multisort(long* data, long* tmp, long n, long quick_size,
               long merge_size, unsigned threads);

/// N-Queens via omp tasks; returns -1 when OpenMP is unavailable.
long nqueens(int n, int task_depth, unsigned threads);

}  // namespace smpss::ompreal
