#include "baselines/taskpool/taskpool.hpp"

#include "common/spin.hpp"

namespace smpss::omp3 {

namespace {
// The spawning context of the code currently running on this thread: the
// pending-children counter of the innermost enclosing task.
thread_local std::atomic<std::int64_t>* t_current_frame = nullptr;
}  // namespace

TaskPool::TaskPool(unsigned nthreads) : nthreads_(nthreads ? nthreads : 1) {
  threads_.reserve(nthreads_ - 1);
  for (unsigned i = 1; i < nthreads_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() {
  shutdown_.store(true, std::memory_order_release);
  gate_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskPool::task(std::function<void()> fn) {
  auto* n = new Node;
  n->fn = std::move(fn);
  n->parent_pending = t_current_frame;
  if (n->parent_pending)
    n->parent_pending->fetch_add(1, std::memory_order_relaxed);
  pool_.push_back(n);
  gate_.notify_one();
}

void TaskPool::execute(Node* n) {
  // Each task body gets its own frame so nested task()/taskwait() nest.
  std::atomic<std::int64_t> frame{0};
  std::atomic<std::int64_t>* saved = t_current_frame;
  t_current_frame = &frame;
  n->fn();
  // OpenMP tasks do not implicitly wait for their children, but our frame
  // counter lives on this stack, so children must be drained before the
  // frame dies. Apps that want OpenMP semantics simply don't rely on it.
  while (frame.load(std::memory_order_acquire) > 0) {
    if (Node* m = pool_.pop_front()) {
      execute(m);
    } else {
      cpu_relax();
    }
  }
  t_current_frame = saved;
  if (n->parent_pending) {
    n->parent_pending->fetch_sub(1, std::memory_order_acq_rel);
    gate_.notify_all();
  }
  delete n;
}

void TaskPool::taskwait() {
  std::atomic<std::int64_t>* frame = t_current_frame;
  if (!frame) return;
  Backoff backoff;
  while (frame->load(std::memory_order_acquire) > 0) {
    if (Node* m = pool_.pop_front()) {
      execute(m);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

void TaskPool::run_root(const std::function<void()>& root) {
  std::atomic<std::int64_t> frame{0};
  std::atomic<std::int64_t>* saved = t_current_frame;
  t_current_frame = &frame;
  root();
  while (frame.load(std::memory_order_acquire) > 0) {
    if (Node* m = pool_.pop_front()) {
      execute(m);
    } else {
      cpu_relax();
    }
  }
  t_current_frame = saved;
}

void TaskPool::worker_loop() {
  unsigned failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Node* n = pool_.pop_front()) {
      execute(n);
      failures = 0;
      continue;
    }
    if (++failures < 64) {
      cpu_relax();
      continue;
    }
    std::uint64_t seen = gate_.prepare_wait();
    if (Node* n = pool_.pop_front()) {
      execute(n);
      failures = 0;
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    gate_.wait(seen, std::chrono::microseconds(500));
    failures = 0;
  }
}

}  // namespace smpss::omp3
