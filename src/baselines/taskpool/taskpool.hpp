// An OpenMP-3.0-style task pool — the "OMP3 tasks" comparison curves of
// Figs. 14-16.
//
// Models the original OpenMP tasking proposal the paper compares against
// (Sec. VII.B): nested tasks, `taskwait` for the children of the current
// task, a shared central FIFO pool, and — crucially — NO dependency
// analysis ("the original task pool proposal does not contemplate
// dependencies, greatly limiting its effectiveness in case of their
// existence") and no renaming (per-sibling array copies are the program's
// job, as in the paper's N-Queens discussion).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sched/idle_wait.hpp"
#include "sched/mpmc_queue.hpp"

namespace smpss::omp3 {

class TaskPool {
 public:
  explicit TaskPool(unsigned nthreads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Spawn a child of the current task (nested tasks allowed; callable from
  /// inside tasks and from the thread that entered run_root).
  void task(std::function<void()> fn);

  /// Wait for the children spawned by the current task, executing queued
  /// tasks meanwhile (a task scheduling point, as in OpenMP).
  void taskwait();

  /// Enter a "parallel region": run `root` on the caller with the pool's
  /// workers participating; returns after root and all tasks complete.
  void run_root(const std::function<void()>& root);

  unsigned nthreads() const noexcept { return nthreads_; }

 private:
  struct Node {
    Node* queue_next = nullptr;
    std::function<void()> fn;
    std::atomic<std::int64_t>* parent_pending = nullptr;
  };

  void execute(Node* n);
  void worker_loop();

  unsigned nthreads_;
  IntrusiveMpmcFifo<Node> pool_;
  IdleGate gate_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace smpss::omp3
