#include "baselines/forkjoin/forkjoin.hpp"

#include "common/spin.hpp"

namespace smpss::fj {

Scheduler::Scheduler(unsigned nthreads) {
  if (nthreads == 0) nthreads = 1;
  deques_.reserve(nthreads);
  rngs_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    deques_.push_back(std::make_unique<ChaseLevDeque<detail::TaskBase>>());
    rngs_.emplace_back(0xF02C + i);
  }
  threads_.reserve(nthreads - 1);
  for (unsigned tid = 1; tid < nthreads; ++tid)
    threads_.emplace_back([this, tid] { worker_loop(tid); });
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  gate_.notify_all();
  for (auto& t : threads_) t.join();
}

detail::TaskBase* Scheduler::acquire(unsigned tid) {
  if (detail::TaskBase* t = deques_[tid]->pop_bottom()) return t;
  const unsigned n = nthreads();
  for (unsigned i = 1; i < n; ++i) {
    unsigned victim = (tid + i) % n;
    if (detail::TaskBase* t = deques_[victim]->steal_top()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void Scheduler::run_task(detail::TaskBase* t, unsigned tid) {
  Context ctx(*this, tid);
  t->execute(ctx);
  ctx.sync();  // implicit sync at task end, as Cilk requires before return
  t->join->fetch_sub(1, std::memory_order_acq_rel);
  gate_.notify_all();  // a parent may be sleeping in sync()
  delete t;
}

void Scheduler::worker_loop(unsigned tid) {
  unsigned failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (detail::TaskBase* t = acquire(tid)) {
      run_task(t, tid);
      failures = 0;
      continue;
    }
    if (++failures < 64) {
      cpu_relax();
      continue;
    }
    std::uint64_t seen = gate_.prepare_wait();
    if (detail::TaskBase* t = acquire(tid)) {
      run_task(t, tid);
      failures = 0;
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    gate_.wait(seen, std::chrono::microseconds(500));
    failures = 0;
  }
}

void Context::sync() {
  Backoff backoff;
  while (pending_children_.load(std::memory_order_acquire) > 0) {
    if (detail::TaskBase* t = sched_.acquire(tid_)) {
      sched_.run_task(t, tid_);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

}  // namespace smpss::fj
