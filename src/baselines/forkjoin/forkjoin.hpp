// A Cilk-like fork-join runtime — the "Cilk" comparison curves of the
// paper's Figs. 14-16, rebuilt from scratch.
//
// Like Cilk 5 (Frigo et al., PLDI'98) it uses per-worker deques: the owner
// works LIFO at the bottom, thieves steal FIFO at the top ("in Cilk
// work-stealing is done in FIFO order to steal tasks as big as possible").
// Unlike SMPSs there is no dependency analysis: the only synchronization is
// sync(), which waits for the children spawned by the current frame — the
// programmer must place it "before exiting a task in order to wait for the
// results of its sibling tasks" (Sec. VII.D), and any data renaming (e.g.
// N-Queens board copies) must be done by hand.
//
// Implementation note: this is a child-stealing scheduler (the spawned
// closure goes on the deque and the parent continues), not Cilk's
// continuation-stealing — the scheduling order differs but the available
// parallelism and deque discipline are the same, which is what the
// comparison needs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/idle_wait.hpp"

namespace smpss::fj {

class Scheduler;

/// Execution context of one task frame. spawn() forks a child; sync() waits
/// for all children of this frame, helping execute work meanwhile.
class Context {
 public:
  template <typename F>
  void spawn(F&& fn);

  void sync();

  Scheduler& scheduler() const noexcept { return sched_; }
  unsigned worker_id() const noexcept { return tid_; }

 private:
  friend class Scheduler;
  Context(Scheduler& s, unsigned tid) noexcept : sched_(s), tid_(tid) {}

  Scheduler& sched_;
  unsigned tid_;
  std::atomic<std::int64_t> pending_children_{0};
};

namespace detail {
struct TaskBase {
  virtual ~TaskBase() = default;
  virtual void execute(Context& ctx) = 0;
  std::atomic<std::int64_t>* join = nullptr;
};
template <typename F>
struct TaskImpl final : TaskBase {
  explicit TaskImpl(F&& f) : fn(std::move(f)) {}
  void execute(Context& ctx) override { fn(ctx); }
  F fn;
};
}  // namespace detail

class Scheduler {
 public:
  explicit Scheduler(unsigned nthreads);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Run `root(ctx)` on the caller (worker 0) and wait until it and all of
  /// its transitive children complete.
  template <typename F>
  void run_root(F&& root) {
    Context ctx(*this, 0);
    root(ctx);
    ctx.sync();
  }

  unsigned nthreads() const noexcept {
    return static_cast<unsigned>(deques_.size());
  }
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  friend class Context;

  void push(unsigned tid, detail::TaskBase* t) {
    deques_[tid]->push_bottom(t);
    gate_.notify_one();
  }

  detail::TaskBase* acquire(unsigned tid);
  void run_task(detail::TaskBase* t, unsigned tid);
  void worker_loop(unsigned tid);

  std::vector<std::unique_ptr<ChaseLevDeque<detail::TaskBase>>> deques_;
  std::vector<std::thread> threads_;
  std::vector<Xoshiro256> rngs_;
  IdleGate gate_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> steals_{0};
};

template <typename F>
void Context::spawn(F&& fn) {
  auto* t = new detail::TaskImpl<std::decay_t<F>>(std::forward<F>(fn));
  t->join = &pending_children_;
  pending_children_.fetch_add(1, std::memory_order_relaxed);
  sched_.push(tid_, t);
}

}  // namespace smpss::fj
