// Graphviz DOT export of a recorded task graph — reproduces paper Fig. 5
// ("Task dependency graph created by a 6 by 6 block Cholesky"): one node per
// task numbered in invocation order, colored by task type, edges for true
// dependencies (dashed/dotted for the WAR/WAW edges that only exist in the
// no-renaming configuration).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph_recorder.hpp"

namespace smpss {

struct TaskTypeInfo;

struct DotOptions {
  bool color_by_type = true;
  bool show_type_names = false;  ///< label "7\nsgemm_t" instead of "7"
  std::string graph_name = "taskgraph";
};

/// Write `recorder`'s nodes and edges as a DOT digraph. `type_names[i]` is
/// the display name of task type i (pass Runtime::task_types()).
void export_dot(std::ostream& os, const GraphRecorder& recorder,
                const std::vector<TaskTypeInfo>& types,
                const DotOptions& opts = {});

/// Convenience: render to a string.
std::string to_dot(const GraphRecorder& recorder,
                   const std::vector<TaskTypeInfo>& types,
                   const DotOptions& opts = {});

}  // namespace smpss
