// Records the dynamically generated task graph (nodes in invocation order,
// edges by kind) for post-mortem inspection: DOT export (paper Fig. 5),
// structural statistics, and the paper-exact count assertions in the tests.
//
// Nodes and edges are only ever recorded under the runtime's submission
// order (plain main-thread execution, or the submission mutex when nested
// tasks are enabled), so no synchronization is needed here beyond the
// enable flag.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smpss {

enum class EdgeKind : std::uint8_t {
  True,  ///< RAW — the only kind present when renaming is enabled
  Anti,  ///< WAR — appears only with renaming disabled
  Output ///< WAW — appears only with renaming disabled
};

class GraphRecorder {
 public:
  struct NodeRec {
    std::uint64_t seq;       ///< 1-based invocation order (Fig. 5 numbering)
    std::uint32_t type_id;
  };
  struct EdgeRec {
    std::uint64_t from;
    std::uint64_t to;
    EdgeKind kind;
  };

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void record_node(std::uint64_t seq, std::uint32_t type_id) {
    if (enabled_) nodes_.push_back(NodeRec{seq, type_id});
  }
  void record_edge(std::uint64_t from, std::uint64_t to, EdgeKind kind) {
    if (enabled_) edges_.push_back(EdgeRec{from, to, kind});
  }

  const std::vector<NodeRec>& nodes() const noexcept { return nodes_; }
  const std::vector<EdgeRec>& edges() const noexcept { return edges_; }

  void clear() {
    nodes_.clear();
    edges_.clear();
  }

 private:
  bool enabled_ = false;
  std::vector<NodeRec> nodes_;
  std::vector<EdgeRec> edges_;
};

}  // namespace smpss
