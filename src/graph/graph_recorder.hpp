// Records the dynamically generated task graph (nodes in invocation order,
// edges by kind) for post-mortem inspection: DOT export (paper Fig. 5),
// structural statistics, and the paper-exact count assertions in the tests.
//
// With the sharded submission pipeline, nodes and edges may be recorded by
// several submitters at once (different tasks hold different shard locks),
// so the record calls serialize on an internal mutex — taken only when
// recording is enabled, which keeps the default configuration free of it.
// The read accessors are for quiescent post-barrier inspection.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace smpss {

enum class EdgeKind : std::uint8_t {
  True,   ///< RAW — the only kind present when renaming is enabled
  Anti,   ///< WAR — appears only with renaming disabled
  Output, ///< WAW — appears only with renaming disabled
  Member  ///< commuting-group member → group-close node (no ordering among
          ///< members; see dep/access_group.hpp). Not a data dependence —
          ///< the sched-sim treats it as a completion edge only.
};

class GraphRecorder {
 public:
  struct NodeRec {
    std::uint64_t seq;       ///< 1-based invocation order (Fig. 5 numbering)
    std::uint32_t type_id;
  };
  struct EdgeRec {
    std::uint64_t from;
    std::uint64_t to;
    EdgeKind kind;
  };

  GraphRecorder() = default;

  // Movable for test/tool construction convenience; the internal mutex is
  // not state, so moving just transfers the records. Callers must not move
  // a recorder that concurrent submitters are still writing to.
  GraphRecorder(GraphRecorder&& other) noexcept
      : enabled_(other.enabled_),
        nodes_(std::move(other.nodes_)),
        edges_(std::move(other.edges_)) {}
  GraphRecorder& operator=(GraphRecorder&& other) noexcept {
    enabled_ = other.enabled_;
    nodes_ = std::move(other.nodes_);
    edges_ = std::move(other.edges_);
    return *this;
  }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void record_node(std::uint64_t seq, std::uint32_t type_id) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lk(mu_);
    nodes_.push_back(NodeRec{seq, type_id});
  }
  void record_edge(std::uint64_t from, std::uint64_t to, EdgeKind kind) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lk(mu_);
    edges_.push_back(EdgeRec{from, to, kind});
  }

  const std::vector<NodeRec>& nodes() const noexcept { return nodes_; }
  const std::vector<EdgeRec>& edges() const noexcept { return edges_; }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    nodes_.clear();
    edges_.clear();
  }

 private:
  bool enabled_ = false;
  std::mutex mu_;
  std::vector<NodeRec> nodes_;
  std::vector<EdgeRec> edges_;
};

}  // namespace smpss
