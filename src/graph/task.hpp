// TaskNode: one dynamically-created task instance — a node of the paper's
// task graph (Sec. II: "Whenever the application calls a task, a node in a
// task graph is added for each task instance and a series of edges
// indicating their dependencies").
//
// Lifetime is reference-counted: the execution path holds one reference,
// every data version produced by the task holds one (so the dependency
// analyzer can still address the producer of a live version), and every
// version that recorded this task as a reader holds one (so WAR edges can be
// added in the no-renaming configuration). Nodes are created by whichever
// thread submits the task (only the main thread in the paper-faithful
// configuration; any thread with nested tasks enabled) under the runtime's
// submission order; completion runs on an arbitrary worker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "common/check.hpp"
#include "common/slab_pool.hpp"
#include "common/small_vector.hpp"
#include "common/spin.hpp"

namespace smpss {

class Version;            // dep/version.hpp
struct SubmitterAccount;  // dep/renaming.hpp
struct StreamState;       // runtime/stream.hpp
class FutureState;        // runtime/stream.hpp
struct AccessGroup;       // dep/access_group.hpp
struct ConflictToken;     // sched/conflict.hpp

/// Identifies a task *kind* (e.g. "sgemm_t"): used for scheduling priority,
/// per-type statistics, and the Fig. 5 graph coloring.
struct TaskType {
  std::uint32_t id = 0;
};

/// Type-erased task body. The concrete closure (built by runtime/spawn.hpp)
/// receives the array of resolved data addresses — after renaming these may
/// differ from the addresses the program passed.
struct ClosureVTable {
  void (*invoke)(void* self, void* const* resolved);
  void (*destroy)(void* self) noexcept;
};

/// A pending byte copy executed immediately before the task body: renaming an
/// `inout` parameter moves the computation to fresh storage, which must first
/// be filled with the predecessor version's contents (paper Sec. II).
struct CopyIn {
  const void* src;
  void* dst;
  std::size_t bytes;
};

class TaskNode;

/// One edge of a predecessor's lock-free successor stack. Allocated from the
/// arena's edge pool (or new/delete without pooling) by the submitting thread
/// that discovered the dependence; freed by whichever worker completes the
/// predecessor and walks the stack.
struct SuccLink {
  TaskNode* succ;
  SuccLink* next;
};

class TaskNode {
 public:
  /// Inline closure storage. Typical closures hold a function pointer plus a
  /// few pointer/scalar parameters; 14 words covers everything in the paper's
  /// applications without a heap allocation per task.
  static constexpr std::size_t kInlineClosureBytes = 112;

  TaskNode() = default;
  TaskNode(const TaskNode&) = delete;
  TaskNode& operator=(const TaskNode&) = delete;

  ~TaskNode() {
    // A task destroyed without ever completing (abandoned runtime teardown)
    // still owns its edge links.
    SuccLink* l = succ_head_.load(std::memory_order_relaxed);
    if (l != closed_sentinel()) {
      while (l != nullptr) {
        SuccLink* next = l->next;
        free_succ_link(l);
        l = next;
      }
    }
    if (vtable_) vtable_->destroy(closure_);
    if (closure_ && closure_ != inline_buf_) {
      if (closure_pooled_) {
        arena->closures.deallocate(closure_);
      } else if (heap_closure_align_ > alignof(std::max_align_t)) {
        ::operator delete(closure_, std::align_val_t{heap_closure_align_});
      } else {
        ::operator delete(closure_);
      }
    }
    if (parent) parent->release();  // may cascade up the (bounded) chain
  }

  // --- closure ------------------------------------------------------------

  /// Reserve closure storage of `bytes`/`align`; returns the slot to
  /// placement-new into. Must be followed by set_vtable(). `alloc_slot` is
  /// the submitting thread's pool slot, only consulted when the closure
  /// overflows the inline buffer and the node belongs to an arena.
  void* allocate_closure(std::size_t bytes, std::size_t align,
                         unsigned alloc_slot = 0) {
    if (bytes <= kInlineClosureBytes && align <= alignof(std::max_align_t)) {
      closure_ = inline_buf_;
    } else if (arena != nullptr && bytes <= TaskArena::kClosureBlockBytes &&
               align <= alignof(std::max_align_t)) {
      closure_ = arena->closures.allocate(alloc_slot);
      closure_pooled_ = true;
    } else if (align > alignof(std::max_align_t)) {
      closure_ = ::operator new(bytes, std::align_val_t{align});
      heap_closure_align_ = align;
    } else {
      closure_ = ::operator new(bytes);
    }
    return closure_;
  }
  void set_vtable(const ClosureVTable* vt) noexcept { vtable_ = vt; }

  void run_body() {
    for (const CopyIn& c : copy_ins) std::memcpy(c.dst, c.src, c.bytes);
    vtable_->invoke(closure_, resolved.begin());
  }

  // --- lifetime -----------------------------------------------------------

  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  void release() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (TaskArena* a = arena) {
        // Pooled node: run the destructor in place (returning the closure
        // block and the parent ref), then hand the memory back to whichever
        // submitter slot owns it. The pool outlives every node (it is
        // destroyed after the dependency tables that hold the last task
        // refs), so `a` stays valid past `this`.
        this->~TaskNode();
        a->nodes.deallocate(this);
      } else {
        delete this;
      }
    }
  }

  // --- dependency bookkeeping ----------------------------------------------

  /// Add a true-dependency edge this→succ unless this task already
  /// completed. Returns true if the edge was recorded (succ's pending count
  /// was incremented by the caller's thread).
  ///
  /// Lock-free: the successor list is a Treiber stack of SuccLink nodes
  /// closed by a sentinel at completion. The successor's pending count is
  /// raised BEFORE the link is published, so the completing walker's
  /// decrement can never outrun the increment; if the stack turns out to be
  /// closed the increment is compensated — safe because the caller (the
  /// thread submitting `succ`) still holds succ's creation guard, so the
  /// count cannot reach zero here.
  bool add_successor(TaskNode* succ) {
    SuccLink* head = succ_head_.load(std::memory_order_acquire);
    if (head == closed_sentinel()) return false;
    succ->pending_deps.fetch_add(1, std::memory_order_acq_rel);
    SuccLink* link;
    if (TaskArena* a = arena) {
      link = static_cast<SuccLink*>(a->edges.allocate(succ->submit_slot));
    } else {
      link = new SuccLink;
    }
    link->succ = succ;
    while (true) {
      if (head == closed_sentinel()) {
        free_succ_link(link);
        const std::int32_t prev =
            succ->pending_deps.fetch_sub(1, std::memory_order_acq_rel);
        SMPSS_ASSERT(prev > 1);  // creation guard still held by the caller
        (void)prev;
        return false;
      }
      link->next = head;
      if (succ_head_.compare_exchange_weak(head, link,
                                           std::memory_order_release,
                                           std::memory_order_acquire))
        return true;
    }
  }

  /// Completion: swing the stack head to the closed sentinel (one atomic
  /// exchange — no lock) and hand the successor list to the caller, which
  /// decrements each successor's pending count exactly once per edge.
  SmallVector<TaskNode*, 4> take_successors_and_complete() {
    SmallVector<TaskNode*, 4> out;
    SuccLink* l = succ_head_.exchange(closed_sentinel(),
                                      std::memory_order_acq_rel);
    while (l != nullptr) {
      SuccLink* next = l->next;
      out.push_back(l->succ);
      free_succ_link(l);
      l = next;
    }
    return out;
  }

  /// Completion hint for lock-free pruning: true once the successor stack is
  /// closed — a closed stack can never accept another edge, so a true answer
  /// lets add_edge skip the RMW on the retired producer's stack head.
  bool finished_hint() const noexcept {
    return succ_head_.load(std::memory_order_acquire) == closed_sentinel();
  }

  // --- data (filled by the dependency analyzer on the main thread) ---------

  /// Resolved storage address per directional parameter, in parameter order.
  SmallVector<void*, 6> resolved;
  /// Versions this task reads; reader tokens released at completion.
  SmallVector<Version*, 4> reads;
  /// Versions this task produces; marked produced + producer token released
  /// at completion.
  SmallVector<Version*, 2> produces;
  /// Copies to run before the body (renamed inout parameters).
  SmallVector<CopyIn, 1> copy_ins;
  /// Per-datum "user storage still in use" counters this task must decrement
  /// at completion (wait_on() quiescence accounting; see dep/version.hpp).
  SmallVector<std::atomic<int>*, 2> user_pending_slots;

  // --- commuting access modes (dep/access_group.hpp) ------------------------

  /// Exclusion tokens this task must hold while executing, one per
  /// Dir::Commutative parameter (group ref held through the token). The
  /// runtime acquires them all-or-nothing around policy acquire; sorted by
  /// pointer so multi-token acquisition has a global order.
  SmallVector<ConflictToken*, 1> conflicts;
  /// Dir::Concurrent parameters: before the body runs, resolved[slot] is
  /// patched to the executing worker's private reduction buffer.
  struct ReduceFixup {
    std::uint32_t slot;  ///< index into `resolved`
    AccessGroup* group;  ///< strong group ref, released at retire
  };
  SmallVector<ReduceFixup, 1> reduce_fixups;
  /// True for a group-close node: a bookkeeping task that is never enqueued
  /// or executed — when its pending count reaches zero the runtime runs
  /// retire_close() (combine privates / apply copy-ins, release versions)
  /// instead of scheduling it.
  bool is_group_close = false;

  // --- scheduling state -----------------------------------------------------

  /// Unsatisfied input dependencies + 1 creation guard. The guard keeps the
  /// task invisible to the scheduler while the submitting thread is still
  /// wiring edges; release_creation_guard() arms it.
  std::atomic<std::int32_t> pending_deps{1};

  TaskNode* queue_next = nullptr;  ///< intrusive link for the global FIFOs

  // Scheduler-policy state (AwarePolicy; see sched/policy.hpp). All atomics
  // are relaxed-only — they carry heuristic weight, not synchronization.

  /// Top-level critical-path distance (longest predecessor chain including
  /// this task's own estimated cost, ns). Written by on_submit; atomic
  /// because a concurrent nested submitter may read a just-published
  /// producer's distance before the producer's own on_submit stored it (it
  /// then reads 0 — an underestimate, never garbage).
  std::atomic<std::uint64_t> path_ns{0};
  /// One-hop bottom-level raise: fetch-max'd by each successor's submission
  /// with the successor's estimated cost. Priority = path_ns + bl_ns.
  std::atomic<std::uint64_t> bl_ns{0};
  /// Worker executing (or having executed) this task; ~0u until the body
  /// starts. Read by successors' submissions for the locality vote, which
  /// may race the start of execution — hence atomic.
  std::atomic<std::uint32_t> exec_tid{~0u};
  /// Worker whose queue this task was placed toward (~0u = no preference);
  /// written before queue publication, compared against the executing
  /// worker for the locality-hit statistics.
  std::uint32_t pref_tid = ~0u;
  /// User cost hint in ns from TaskAttrs (0 = none). The aware policy's
  /// cost_estimate prefers it over the type's default until measured
  /// execution times take over.
  std::uint64_t weight = 0;

  // --- nesting (only used with Config::nested_tasks) ------------------------

  /// The task whose body spawned this one (strong ref, released by the
  /// destructor so the chain stays readable for this node's whole life);
  /// nullptr for tasks submitted outside any task body. Immutable once the
  /// task is published — ancestor walks from live descendants race with
  /// nothing.
  TaskNode* parent = nullptr;

  /// True if `anc` is this task's parent, grandparent, ... The chain is
  /// ref-kept by each child, so every link stays valid while this task is
  /// alive. Used by the dependency analyzers: a version produced by an
  /// ancestor counts as available to its descendants (the ancestor is
  /// mid-execution, its working copy holds the value the child operates
  /// on) — an ancestor→descendant edge would deadlock against taskwait().
  bool has_ancestor(const TaskNode* anc) const noexcept {
    for (const TaskNode* a = parent; a != nullptr; a = a->parent)
      if (a == anc) return true;
    return false;
  }
  /// Direct children spawned by this task's body that have not yet finished
  /// executing. Runtime::taskwait() blocks (while running other ready tasks)
  /// until this reaches zero.
  std::atomic<std::int32_t> children_live{0};

  std::uint64_t seq = 0;           ///< invocation order, 1-based (Fig. 5)
  std::uint32_t type_id = 0;
  /// Pool slot of the submitting thread (kForeignTid routes to the foreign
  /// slot). Edge links and data versions created while wiring this task's
  /// dependencies allocate from this slot.
  std::uint32_t submit_slot = 0;
  bool high_priority = false;

  // --- service mode (only set for stream-submitted tasks) --------------------

  /// The stream this task was admitted through; retire credits its live/
  /// retired counters and latency histogram. Registry-pinned for the
  /// runtime's life, so the pointer never dangles (see runtime/stream.hpp).
  StreamState* stream = nullptr;
  /// Completion future (task-side ref); fulfilled — and its callback run —
  /// during retire, before the stream's live count drops.
  FutureState* future = nullptr;
  /// Account charged for analyzer traffic and renamed storage; null for
  /// non-stream tasks (the global accounting alone applies).
  SubmitterAccount* account = nullptr;
  /// now_ns() at admission; retire records (now - submit_ns) into the
  /// stream's latency histogram. 0 for non-stream tasks.
  std::uint64_t submit_ns = 0;

  // --- pooled storage (nullptr arena = plain new/delete lifecycle) ----------

  /// The arena this node's memory (and possibly its closure block) came
  /// from; set by the runtime immediately after placement-construction.
  /// Task identity across block reuse rests on `seq` (monotonic, never
  /// recycled); `generation` additionally distinguishes tenancies of one
  /// pool block (copied from the block header at allocation).
  TaskArena* arena = nullptr;
  std::uint32_t generation = 0;

 private:
  static SuccLink* closed_sentinel() noexcept {
    return reinterpret_cast<SuccLink*>(std::uintptr_t{1});
  }

  void free_succ_link(SuccLink* l) noexcept {
    if (TaskArena* a = arena)
      a->edges.deallocate(l);
    else
      delete l;
  }

  std::atomic<std::int32_t> refs_{1};
  /// Lock-free successor stack; closed_sentinel() once completed.
  std::atomic<SuccLink*> succ_head_{nullptr};

  const ClosureVTable* vtable_ = nullptr;
  void* closure_ = nullptr;
  std::size_t heap_closure_align_ = 0;
  bool closure_pooled_ = false;
  alignas(std::max_align_t) unsigned char inline_buf_[kInlineClosureBytes];
};

}  // namespace smpss
