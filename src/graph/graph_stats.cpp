#include "graph/graph_stats.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace smpss {

namespace {
/// Dense re-indexing of node seqs (seqs are unique but not necessarily
/// contiguous across barriers).
struct Indexed {
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  std::vector<std::uint64_t> seq_of;
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::size_t> indegree;
};

Indexed build_index(const GraphRecorder& rec) {
  Indexed ix;
  const auto& nodes = rec.nodes();
  ix.seq_of.reserve(nodes.size());
  for (const auto& n : nodes) {
    ix.index_of.emplace(n.seq, ix.seq_of.size());
    ix.seq_of.push_back(n.seq);
  }
  ix.succs.resize(nodes.size());
  ix.indegree.assign(nodes.size(), 0);
  for (const auto& e : rec.edges()) {
    auto f = ix.index_of.find(e.from);
    auto t = ix.index_of.find(e.to);
    if (f == ix.index_of.end() || t == ix.index_of.end()) continue;
    ix.succs[f->second].push_back(t->second);
    ++ix.indegree[t->second];
  }
  return ix;
}
}  // namespace

GraphStats analyze_graph(const GraphRecorder& rec) {
  GraphStats out;
  out.nodes = rec.nodes().size();
  out.edges = rec.edges().size();
  for (const auto& n : rec.nodes()) {
    if (n.type_id >= out.per_type_counts.size())
      out.per_type_counts.resize(n.type_id + 1, 0);
    ++out.per_type_counts[n.type_id];
  }
  if (out.nodes == 0) return out;

  Indexed ix = build_index(rec);

  std::vector<std::size_t> level(out.nodes, 0);
  std::vector<std::size_t> indeg = ix.indegree;
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < out.nodes; ++i)
    if (indeg[i] == 0) frontier.push_back(i);
  out.roots = frontier.size();

  // Level-synchronous topological sweep: level = earliest possible wave.
  std::size_t processed = 0;
  std::size_t depth = 0;
  while (!frontier.empty()) {
    out.max_width = std::max(out.max_width, frontier.size());
    ++depth;
    std::vector<std::size_t> next;
    for (std::size_t u : frontier) {
      ++processed;
      for (std::size_t v : ix.succs[u]) {
        level[v] = std::max(level[v], level[u] + 1);
        if (--indeg[v] == 0) next.push_back(v);
      }
    }
    frontier = std::move(next);
  }
  out.critical_path = depth;
  out.avg_parallelism =
      depth ? static_cast<double>(out.nodes) / static_cast<double>(depth) : 0.0;

  std::size_t leaf_count = 0;
  for (std::size_t i = 0; i < out.nodes; ++i)
    if (ix.succs[i].empty()) ++leaf_count;
  out.leaves = leaf_count;
  return out;
}

std::vector<std::uint64_t> predecessors_of(const GraphRecorder& rec,
                                           std::uint64_t seq) {
  std::unordered_set<std::uint64_t> preds;
  for (const auto& e : rec.edges())
    if (e.to == seq) preds.insert(e.from);
  std::vector<std::uint64_t> out(preds.begin(), preds.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> ancestor_closure(const GraphRecorder& rec,
                                            std::uint64_t seq) {
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> preds;
  for (const auto& e : rec.edges()) preds[e.to].push_back(e.from);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> stack{seq};
  while (!stack.empty()) {
    std::uint64_t u = stack.back();
    stack.pop_back();
    auto it = preds.find(u);
    if (it == preds.end()) continue;
    for (std::uint64_t p : it->second)
      if (seen.insert(p).second) stack.push_back(p);
  }
  std::vector<std::uint64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace smpss
