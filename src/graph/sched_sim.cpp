#include "graph/sched_sim.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/check.hpp"

namespace smpss {

SimResult simulate_schedule(const GraphRecorder& rec, unsigned processors,
                            const std::vector<double>& cost_of_type) {
  SimResult out;
  const auto& nodes = rec.nodes();
  if (nodes.empty() || processors == 0) return out;

  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    index_of.emplace(nodes[i].seq, i);

  std::vector<std::vector<std::size_t>> succs(nodes.size());
  std::vector<std::size_t> indeg(nodes.size(), 0);
  for (const auto& e : rec.edges()) {
    auto f = index_of.find(e.from);
    auto t = index_of.find(e.to);
    if (f == index_of.end() || t == index_of.end()) continue;
    succs[f->second].push_back(t->second);
    ++indeg[t->second];
  }

  auto cost = [&](std::size_t i) {
    std::uint32_t ty = nodes[i].type_id;
    if (ty < cost_of_type.size() && cost_of_type[ty] > 0.0)
      return cost_of_type[ty];
    return 1.0;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) out.total_work += cost(i);

  // Weighted critical path (bottom-up over a topological order).
  {
    std::vector<double> finish(nodes.size(), 0.0);
    std::vector<std::size_t> order;
    order.reserve(nodes.size());
    std::vector<std::size_t> d = indeg;
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (d[i] == 0) frontier.push_back(i);
    while (!frontier.empty()) {
      std::size_t u = frontier.back();
      frontier.pop_back();
      order.push_back(u);
      for (std::size_t v : succs[u])
        if (--d[v] == 0) frontier.push_back(v);
    }
    SMPSS_CHECK(order.size() == nodes.size(), "recorded graph has a cycle");
    for (std::size_t u : order) {
      finish[u] += cost(u);
      for (std::size_t v : succs[u])
        finish[v] = std::max(finish[v], finish[u]);
      out.critical_path = std::max(out.critical_path, finish[u]);
    }
  }

  // Graham list scheduling: ready tasks start in invocation order; the
  // earliest-finishing processor event drives time forward.
  std::vector<std::size_t> d = indeg;
  // Ready queue ordered by invocation index (min-heap).
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (d[i] == 0) ready.push(i);

  // Running tasks as (finish_time, node) min-heap.
  using Running = std::pair<double, std::size_t>;
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;

  double now = 0.0;
  unsigned busy = 0;
  std::size_t done = 0;
  while (done < nodes.size()) {
    while (!ready.empty() && busy < processors) {
      std::size_t u = ready.top();
      ready.pop();
      running.emplace(now + cost(u), u);
      ++busy;
    }
    SMPSS_CHECK(!running.empty(), "scheduler stalled: cyclic graph?");
    auto [t, u] = running.top();
    running.pop();
    now = t;
    --busy;
    ++done;
    for (std::size_t v : succs[u])
      if (--d[v] == 0) ready.push(v);
  }
  out.makespan = now;
  out.speedup = out.makespan > 0.0 ? out.total_work / out.makespan : 0.0;
  return out;
}

}  // namespace smpss
