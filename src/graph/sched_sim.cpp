#include "graph/sched_sim.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <tuple>
#include <unordered_map>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace smpss {

namespace {

/// The simulator's node type for SchedulerPolicy<T>: the intrusive link and
/// the policy fields TaskNode carries, plus the replay's own index. The
/// atomics are single-threaded here; they exist because the shared template
/// code declares its loads/stores against them.
struct SimNode {
  SimNode* queue_next = nullptr;
  std::uint64_t seq = 0;
  std::uint32_t type_id = 0;
  bool high_priority = false;
  std::atomic<std::uint64_t> path_ns{0};
  std::atomic<std::uint64_t> bl_ns{0};
  std::atomic<std::uint32_t> exec_tid{~0u};
  std::uint32_t pref_tid = ~0u;
  std::uint64_t weight = 0;  ///< per-task cost hint (0 in replays)
  std::size_t idx = 0;  ///< position in the nodes() vector (replay only)
};

/// Fixed-point scale for double costs entering the policy's integer
/// priority fields (path_ns / bl_ns).
constexpr double kCostScale = 1024.0;

}  // namespace

SimResult simulate_schedule(const GraphRecorder& rec, unsigned processors,
                            const std::vector<double>& cost_of_type,
                            SchedPolicyKind policy_kind) {
  SimResult out;
  const auto& nodes = rec.nodes();
  if (nodes.empty() || processors == 0) return out;

  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    index_of.emplace(nodes[i].seq, i);

  std::vector<std::vector<std::size_t>> succs(nodes.size());
  std::vector<std::size_t> indeg(nodes.size(), 0);
  for (const auto& e : rec.edges()) {
    auto f = index_of.find(e.from);
    auto t = index_of.find(e.to);
    if (f == index_of.end() || t == index_of.end()) continue;
    succs[f->second].push_back(t->second);
    ++indeg[t->second];
  }

  auto cost = [&](std::size_t i) {
    std::uint32_t ty = nodes[i].type_id;
    if (ty < cost_of_type.size() && cost_of_type[ty] > 0.0)
      return cost_of_type[ty];
    return 1.0;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) out.total_work += cost(i);

  // Weighted critical path (bottom-up over a topological order). `finish`
  // doubles as the top-level-inclusive distance fed to the aware ordering.
  std::vector<double> finish(nodes.size(), 0.0);
  std::vector<std::size_t> order;
  {
    order.reserve(nodes.size());
    std::vector<std::size_t> d = indeg;
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (d[i] == 0) frontier.push_back(i);
    while (!frontier.empty()) {
      std::size_t u = frontier.back();
      frontier.pop_back();
      order.push_back(u);
      for (std::size_t v : succs[u])
        if (--d[v] == 0) frontier.push_back(v);
    }
    SMPSS_CHECK(order.size() == nodes.size(), "recorded graph has a cycle");
    for (std::size_t u : order) {
      finish[u] += cost(u);
      for (std::size_t v : succs[u])
        finish[v] = std::max(finish[v], finish[u]);
      out.critical_path = std::max(out.critical_path, finish[u]);
    }
  }

  // Ready ordering through the policy: SimNodes carry the critical-path
  // fields (top-level inclusive in path_ns, bottom-level exclusive in
  // bl_ns, so path + bl = the full path through the node), and the heap key
  // is the policy's sim_order_key — {0, seq} for Paper reproduces the
  // historical invocation-order Graham scheduler exactly.
  PolicyTuning tu;
  tu.nthreads = 1;
  tu.kind = policy_kind;
  const auto policy = make_policy<SimNode>(tu);
  auto sim = std::make_unique<SimNode[]>(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sim[i].seq = nodes[i].seq;
    sim[i].type_id = nodes[i].type_id;
    sim[i].path_ns.store(static_cast<std::uint64_t>(finish[i] * kCostScale),
                         std::memory_order_relaxed);
  }
  if (policy_kind == SchedPolicyKind::Aware) {
    std::vector<double> below(nodes.size(), 0.0);  // bottom level, exclusive
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t u = *it;
      for (std::size_t v : succs[u])
        below[u] = std::max(below[u], below[v] + cost(v));
    }
    for (std::size_t i = 0; i < nodes.size(); ++i)
      sim[i].bl_ns.store(static_cast<std::uint64_t>(below[i] * kCostScale),
                         std::memory_order_relaxed);
  }
  using Key = std::tuple<std::uint64_t, std::uint64_t, std::size_t>;
  auto key_of = [&](std::size_t i) {
    const auto k = policy->sim_order_key(&sim[i]);
    return Key{k.first, k.second, i};
  };

  // Greedy list scheduling: the lowest-keyed ready task starts whenever a
  // processor is free; the earliest-finishing event drives time forward.
  std::vector<std::size_t> d = indeg;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (d[i] == 0) ready.push(key_of(i));

  // Running tasks as (finish_time, node) min-heap.
  using Running = std::pair<double, std::size_t>;
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;

  double now = 0.0;
  unsigned busy = 0;
  std::size_t done = 0;
  while (done < nodes.size()) {
    while (!ready.empty() && busy < processors) {
      std::size_t u = std::get<2>(ready.top());
      ready.pop();
      running.emplace(now + cost(u), u);
      ++busy;
    }
    SMPSS_CHECK(!running.empty(), "scheduler stalled: cyclic graph?");
    auto [t, u] = running.top();
    running.pop();
    now = t;
    --busy;
    ++done;
    for (std::size_t v : succs[u])
      if (--d[v] == 0) ready.push(key_of(v));
  }
  out.makespan = now;
  out.speedup = out.makespan > 0.0 ? out.total_work / out.makespan : 0.0;
  return out;
}

std::vector<std::uint64_t> simulate_policy_order(
    const GraphRecorder& rec, const PolicyTuning& tuning, unsigned chain_depth,
    const std::vector<std::uint8_t>& high_priority_types) {
  std::vector<std::uint64_t> out;
  const auto& nodes = rec.nodes();
  if (nodes.empty()) return out;

  PolicyTuning tu = tuning;
  tu.nthreads = 1;  // the replay is the single-worker regime by definition
  const auto policy = make_policy<SimNode>(tu);

  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    index_of.emplace(nodes[i].seq, i);

  auto sim = std::make_unique<SimNode[]>(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sim[i].seq = nodes[i].seq;
    sim[i].type_id = nodes[i].type_id;
    sim[i].idx = i;
    sim[i].high_priority = nodes[i].type_id < high_priority_types.size() &&
                           high_priority_types[nodes[i].type_id] != 0;
  }

  // Pending counts come from ALL recorded edges, duplicates included: the
  // dependency analyzer records an edge exactly when add_successor really
  // raised the successor's pending count, so the replay's release
  // arithmetic is the runtime's. True edges double as the on_submit
  // predecessor list (producers of input versions).
  std::vector<std::vector<std::size_t>> succs(nodes.size());
  std::vector<std::vector<std::size_t>> preds(nodes.size());
  std::vector<std::size_t> pending(nodes.size(), 0);
  for (const auto& e : rec.edges()) {
    auto f = index_of.find(e.from);
    auto t = index_of.find(e.to);
    if (f == index_of.end() || t == index_of.end()) continue;
    succs[f->second].push_back(t->second);
    ++pending[t->second];
    // Member edges join the predecessor list too: a group-close node must
    // order after its members in the replay (completion edge), exactly as
    // the runtime's close retire does.
    if (e.kind == EdgeKind::True || e.kind == EdgeKind::Member)
      preds[t->second].push_back(f->second);
  }

  // Phase 1 — submission in invocation order. In the modeled regime every
  // submit precedes every execution, so the policy sees exactly what the
  // runtime's policy saw: empty cost tables, no exec_tid votes, and
  // dependency-free tasks enqueued at creation from the main thread
  // (worker slot 0, not inside a task body).
  std::vector<SimNode*> pv;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (policy->wants_submit_hook()) {
      pv.clear();
      for (std::size_t p : preds[i]) pv.push_back(&sim[p]);
      policy->on_submit(&sim[i], pv.data(), pv.size());
    }
    if (pending[i] == 0) policy->enqueue_creation(&sim[i], 0, false);
  }

  // Phase 2 — the worker loop: acquire, run, release successors in the
  // runtime's reverse-of-record order, chain through single releases up to
  // chain_depth unless the policy preempts (a pending high-priority task).
  Xoshiro256 rng(0x5eedu);
  AcquireSource src = AcquireSource::None;
  unsigned attempts = 0;
  out.reserve(nodes.size());
  std::vector<SimNode*> released;
  while (out.size() < nodes.size()) {
    SimNode* t = policy->acquire(0, rng, src, attempts);
    SMPSS_CHECK(t != nullptr,
                "policy replay stalled: recorded graph incomplete?");
    for (unsigned hops = 0; t != nullptr; ++hops) {
      t->exec_tid.store(0, std::memory_order_relaxed);
      out.push_back(t->seq);
      released.clear();
      const auto& ss = succs[t->idx];
      for (auto it = ss.rbegin(); it != ss.rend(); ++it)
        if (--pending[*it] == 0) released.push_back(&sim[*it]);
      SimNode* chain = nullptr;
      if (released.size() == 1) {
        SimNode* s = released[0];
        if (hops < chain_depth && !policy->preempt_chain(s))
          chain = s;
        else
          policy->enqueue_released(s, 0);
      } else if (released.size() > 1) {
        policy->enqueue_batch(released.data(), released.size(), 0);
      }
      t = chain;
    }
  }
  return out;
}

}  // namespace smpss
