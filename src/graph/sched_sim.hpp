// List-scheduling simulation over a recorded task graph: given P processors
// and per-type task costs, compute the makespan an ideal greedy scheduler
// would achieve. This turns a recorded graph into the *potential*
// parallelism number the paper reasons about (e.g. why a 6x6 Cholesky graph
// with a 16-task critical path cannot use 32 cores, or why big blocks in
// Fig. 8 "have limited parallelism").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_recorder.hpp"

namespace smpss {

struct SimResult {
  double makespan = 0.0;       ///< simulated completion time
  double total_work = 0.0;     ///< sum of task costs
  double speedup = 0.0;        ///< total_work / makespan
  double critical_path = 0.0;  ///< weighted longest chain (P = infinity)
};

/// Simulate greedy list scheduling of `rec` on `processors` identical
/// processors. `cost_of_type[t]` is the execution cost of tasks of type t
/// (missing entries default to 1.0). Ready tasks are started in invocation
/// order whenever a processor is free — the classic Graham list scheduler.
SimResult simulate_schedule(const GraphRecorder& rec, unsigned processors,
                            const std::vector<double>& cost_of_type = {});

}  // namespace smpss
