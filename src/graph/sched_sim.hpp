// List-scheduling simulation over a recorded task graph: given P processors
// and per-type task costs, compute the makespan an ideal greedy scheduler
// would achieve. This turns a recorded graph into the *potential*
// parallelism number the paper reasons about (e.g. why a 6x6 Cholesky graph
// with a 16-task critical path cannot use 32 cores, or why big blocks in
// Fig. 8 "have limited parallelism").
//
// Both entry points consume the real SchedulerPolicy<> template
// (sched/policy.hpp) instead of duplicating queue logic: the makespan
// simulator orders its ready heap by the policy's sim_order_key, and
// simulate_policy_order drives the literal policy enqueue/acquire/preempt
// code over lightweight SimNodes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_recorder.hpp"
#include "sched/policy.hpp"

namespace smpss {

struct SimResult {
  double makespan = 0.0;       ///< simulated completion time
  double total_work = 0.0;     ///< sum of task costs
  double speedup = 0.0;        ///< total_work / makespan
  double critical_path = 0.0;  ///< weighted longest chain (P = infinity)
};

/// Simulate greedy list scheduling of `rec` on `processors` identical
/// processors. `cost_of_type[t]` is the execution cost of tasks of type t
/// (missing entries default to 1.0). Ready tasks start whenever a processor
/// is free, ordered by the policy's sim_order_key: Paper picks them in
/// invocation order (the classic Graham list scheduler, and the historical
/// behavior of this function); Aware by descending critical-path priority.
SimResult simulate_schedule(const GraphRecorder& rec, unsigned processors,
                            const std::vector<double>& cost_of_type = {},
                            SchedPolicyKind policy = SchedPolicyKind::Paper);

/// Deterministic single-worker replay of the runtime's dispatch over a
/// recorded graph, driving the real SchedulerPolicy<> implementation
/// (enqueue_creation / enqueue_released / enqueue_batch / acquire /
/// preempt_chain, including the chain_depth bound). Returns task seqs in
/// execution order.
///
/// The replay models the regime where it is exact: a single worker and a
/// task window larger than the graph, so every submission precedes every
/// execution (cost tables are empty at submit, no locality votes, and the
/// recorded edges are the precise pending counts — an edge is recorded iff
/// the dependence really raised the successor's pending count). Successor
/// walks follow the runtime's reverse-of-record order (the Treiber stack).
/// `high_priority_types[type_id] != 0` marks user high-priority task types.
std::vector<std::uint64_t> simulate_policy_order(
    const GraphRecorder& rec, const PolicyTuning& tuning, unsigned chain_depth,
    const std::vector<std::uint8_t>& high_priority_types = {});

}  // namespace smpss
