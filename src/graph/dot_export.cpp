#include "graph/dot_export.hpp"

#include <ostream>
#include <sstream>

#include "runtime/runtime.hpp"

namespace smpss {

namespace {
// Fill colors cycled per task type, chosen to match the flavor of Fig. 5
// (distinct hues per kernel kind).
constexpr const char* kPalette[] = {
    "#e6550d",  // orange (e.g. spotrf)
    "#3182bd",  // blue   (e.g. strsm)
    "#31a354",  // green  (e.g. ssyrk)
    "#756bb1",  // purple (e.g. sgemm)
    "#636363",  // gray
    "#fd8d3c", "#6baed6", "#74c476", "#9e9ac8", "#969696",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
}  // namespace

void export_dot(std::ostream& os, const GraphRecorder& recorder,
                const std::vector<TaskTypeInfo>& types,
                const DotOptions& opts) {
  os << "digraph " << opts.graph_name << " {\n"
     << "  node [shape=circle, style=filled, fontsize=10];\n";
  for (const auto& n : recorder.nodes()) {
    os << "  t" << n.seq << " [label=\"" << n.seq;
    if (opts.show_type_names && n.type_id < types.size())
      os << "\\n" << types[n.type_id].name;
    os << "\"";
    if (opts.color_by_type)
      os << ", fillcolor=\"" << kPalette[n.type_id % kPaletteSize] << "\"";
    os << "];\n";
  }
  for (const auto& e : recorder.edges()) {
    os << "  t" << e.from << " -> t" << e.to;
    if (e.kind == EdgeKind::Anti) os << " [style=dashed]";
    if (e.kind == EdgeKind::Output) os << " [style=dotted]";
    if (e.kind == EdgeKind::Member) os << " [style=bold, color=gray]";
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const GraphRecorder& recorder,
                   const std::vector<TaskTypeInfo>& types,
                   const DotOptions& opts) {
  std::ostringstream ss;
  export_dot(ss, recorder, types, opts);
  return ss.str();
}

}  // namespace smpss
