// Structural analysis of recorded task graphs: per-type counts, degree
// statistics, critical path (in task count), maximum achievable parallelism
// per level. Used by the Fig. 5 harness and the paper-exact count tests
// (6x6 Cholesky = 56 tasks; "after running tasks 1 and 6, the runtime is
// able to start executing task 51").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_recorder.hpp"

namespace smpss {

struct GraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t roots = 0;           ///< tasks ready at creation
  std::size_t leaves = 0;          ///< tasks nothing depends on
  std::size_t critical_path = 0;   ///< longest chain, in tasks
  std::size_t max_width = 0;       ///< widest level of the level-by-level schedule
  double avg_parallelism = 0.0;    ///< nodes / critical_path
  std::vector<std::size_t> per_type_counts;  ///< indexed by type id
};

/// Compute structural statistics of a recorded (acyclic) graph.
GraphStats analyze_graph(const GraphRecorder& recorder);

/// Direct predecessors of the task with invocation order `seq`.
std::vector<std::uint64_t> predecessors_of(const GraphRecorder& recorder,
                                           std::uint64_t seq);

/// Transitive predecessor closure of `seq` (every task that must complete
/// before `seq` may start).
std::vector<std::uint64_t> ancestor_closure(const GraphRecorder& recorder,
                                            std::uint64_t seq);

}  // namespace smpss
