// Cholesky factorization — the paper's flagship application.
//
// Three parallel variants plus a sequential oracle:
//  * smpss_hyper:  left-looking in-place factorization of a dense
//                  hyper-matrix, Fig. 4 verbatim (the Fig. 5 graph source).
//  * smpss_flat:   the same algorithm over a flat matrix with on-demand
//                  block copies, Fig. 9/10 verbatim — the flat matrix is
//                  passed to get/put tasks as an *opaque* pointer.
//  * threaded:     bulk-synchronous baseline (see blas/threaded_blas.hpp).
//  * seq_flat:     single-threaded oracle for validation.
//
// All variants factorize the lower triangle in place; the upper triangle is
// left untouched (compare with max_abs_diff_lower).
#pragma once

#include <cstdint>

#include "blas/kernels.hpp"
#include "hyper/hyper_matrix.hpp"
#include "runtime/runtime.hpp"

namespace smpss::apps {

/// Task types of the Cholesky apps, registered once per Runtime so that
/// graphs, traces and stats share names/colors (Fig. 5 legend).
struct CholeskyTasks {
  TaskType spotrf, strsm, ssyrk, sgemm, get, put;
  static CholeskyTasks register_in(Runtime& rt);
};

/// Sequential oracle: in-place lower Cholesky of a flat n x n matrix.
/// Returns 0 on success (see Kernels::potrf_ln for the error convention).
int cholesky_seq_flat(int n, float* a, const blas::Kernels& k);

/// Fig. 4: left-looking blocked Cholesky on a dense hyper-matrix. Spawns
/// tasks and runs to the barrier. Returns 0 on success.
int cholesky_smpss_hyper(Runtime& rt, const CholeskyTasks& tt, HyperMatrix& A,
                         const blas::Kernels& k);

/// Fig. 9/10: the same algorithm over a flat matrix, copying blocks into a
/// hyper-matrix on demand (get_block_once) and back at the end. `bs` must
/// divide n. Returns 0 on success.
int cholesky_smpss_flat(Runtime& rt, const CholeskyTasks& tt, int n, float* a,
                        int bs, const blas::Kernels& k);

/// Number of tasks cholesky_smpss_hyper spawns for an nb x nb hyper-matrix
/// (56 for nb=6, matching Fig. 5).
std::uint64_t cholesky_hyper_task_count(int nb);

/// Number of tasks cholesky_smpss_flat spawns (adds one get per distinct
/// lower-triangle block and one put per block). Reproduces the in-text
/// counts of Sec. VI: 49,920 for nb=64 and 374,272 for nb=128.
std::uint64_t cholesky_flat_task_count(int nb);

/// 1/3 n^3 flops (the standard Cholesky count used for Gflops reporting).
double cholesky_flops(int n);

}  // namespace smpss::apps
