#include "apps/strassen.hpp"

#include <cstring>
#include <memory>
#include <vector>

namespace smpss::apps {

StrassenTasks StrassenTasks::register_in(Runtime& rt) {
  StrassenTasks t;
  t.mul = rt.register_task_type("sgemm_t");
  t.add = rt.register_task_type("sadd_t");
  t.sub = rt.register_task_type("ssub_t");
  t.acc = rt.register_task_type("sacc_t");
  t.rec = rt.register_task_type("strassen_rec");
  return t;
}

namespace {

/// A square window into a hyper-matrix, in block coordinates.
struct View {
  HyperMatrix* h;
  int i0, j0, n;
  float* block(int i, int j) const { return h->block(i0 + i, j0 + j); }
  View quad(int qi, int qj) const {
    return View{h, i0 + qi * (n / 2), j0 + qj * (n / 2), n / 2};
  }
};

// Element-wise block bodies beyond the Kernels set.
void body_acc_add(int m, const float* a, float* c) {
  for (int i = 0; i < m * m; ++i) c[i] += a[i];
}
void body_acc_sub(int m, const float* a, float* c) {
  for (int i = 0; i < m * m; ++i) c[i] -= a[i];
}
void body_mul_overwrite(int m, const blas::Kernels* k, const float* a,
                        const float* b, float* c) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * m);
  k->gemm_nn_acc(m, a, b, c);
}

// Task-emission helpers shared by the inline (main-thread-unrolled) and the
// nested (generator-task) builds.

/// One sgemm task: C00 = A00 * B00.
void spawn_mul(Runtime& rt, const StrassenTasks& tt, const blas::Kernels* k,
               int m, std::size_t be, const View& A, const View& B,
               const View& C) {
  rt.spawn(tt.mul,
           [k, m](const float* x, const float* y, float* z) {
             body_mul_overwrite(m, k, x, y, z);
           },
           in(A.block(0, 0), be), in(B.block(0, 0), be),
           out(C.block(0, 0), be));
}

/// dst = a + b (block-wise tasks).
void spawn_add(Runtime& rt, const StrassenTasks& tt, const blas::Kernels* k,
               int m, std::size_t be, const View& a, const View& b,
               const View& dst) {
  for (int i = 0; i < a.n; ++i)
    for (int j = 0; j < a.n; ++j)
      rt.spawn(tt.add,
               [k, m](const float* x, const float* y, float* z) {
                 k->add(m, x, y, z);
               },
               in(a.block(i, j), be), in(b.block(i, j), be),
               out(dst.block(i, j), be));
}

/// dst = a - b.
void spawn_sub(Runtime& rt, const StrassenTasks& tt, const blas::Kernels* k,
               int m, std::size_t be, const View& a, const View& b,
               const View& dst) {
  for (int i = 0; i < a.n; ++i)
    for (int j = 0; j < a.n; ++j)
      rt.spawn(tt.sub,
               [k, m](const float* x, const float* y, float* z) {
                 k->sub(m, x, y, z);
               },
               in(a.block(i, j), be), in(b.block(i, j), be),
               out(dst.block(i, j), be));
}

/// dst += a  /  dst -= a.
void spawn_acc(Runtime& rt, const StrassenTasks& tt, int m, std::size_t be,
               const View& a, const View& dst, bool negate) {
  for (int i = 0; i < a.n; ++i)
    for (int j = 0; j < a.n; ++j) {
      if (negate) {
        rt.spawn(tt.acc,
                 [m](const float* x, float* z) { body_acc_sub(m, x, z); },
                 in(a.block(i, j), be), inout(dst.block(i, j), be));
      } else {
        rt.spawn(tt.acc,
                 [m](const float* x, float* z) { body_acc_add(m, x, z); },
                 in(a.block(i, j), be), inout(dst.block(i, j), be));
      }
    }
}

struct Ctx {
  Runtime& rt;
  const StrassenTasks& tt;
  const blas::Kernels* k;
  int m;                 // block dimension
  std::size_t be;        // block element count
  std::vector<std::unique_ptr<HyperMatrix>> arena;  // temps live to barrier

  View fresh(int n) {
    arena.push_back(std::make_unique<HyperMatrix>(n, m, true));
    return View{arena.back().get(), 0, 0, n};
  }

  void emit_add(const View& a, const View& b, const View& dst) {
    spawn_add(rt, tt, k, m, be, a, b, dst);
  }
  void emit_sub(const View& a, const View& b, const View& dst) {
    spawn_sub(rt, tt, k, m, be, a, b, dst);
  }
  void emit_acc(const View& a, const View& dst, bool negate) {
    spawn_acc(rt, tt, m, be, a, dst, negate);
  }

  void recurse(const View& A, const View& B, const View& C) {
    if (A.n == 1) {
      spawn_mul(rt, tt, k, m, be, A, B, C);
      return;
    }
    const int h = A.n / 2;
    View A11 = A.quad(0, 0), A12 = A.quad(0, 1), A21 = A.quad(1, 0),
         A22 = A.quad(1, 1);
    View B11 = B.quad(0, 0), B12 = B.quad(0, 1), B21 = B.quad(1, 0),
         B22 = B.quad(1, 1);
    View C11 = C.quad(0, 0), C12 = C.quad(0, 1), C21 = C.quad(1, 0),
         C22 = C.quad(1, 1);

    // Only two operand temporaries, reused across all seven products: the
    // renaming-intensive structure Sec. VI.C describes. The product results
    // must coexist, so M1..M7 are distinct.
    View tS = fresh(h), tT = fresh(h);
    View M1 = fresh(h), M2 = fresh(h), M3 = fresh(h), M4 = fresh(h),
         M5 = fresh(h), M6 = fresh(h), M7 = fresh(h);

    emit_add(A11, A22, tS);  // M1 = (A11+A22)(B11+B22)
    emit_add(B11, B22, tT);
    recurse(tS, tT, M1);
    emit_add(A21, A22, tS);  // M2 = (A21+A22) B11      (tS reused: rename)
    recurse(tS, B11, M2);
    emit_sub(B12, B22, tT);  // M3 = A11 (B12-B22)      (tT reused: rename)
    recurse(A11, tT, M3);
    emit_sub(B21, B11, tT);  // M4 = A22 (B21-B11)
    recurse(A22, tT, M4);
    emit_add(A11, A12, tS);  // M5 = (A11+A12) B22
    recurse(tS, B22, M5);
    emit_sub(A21, A11, tS);  // M6 = (A21-A11)(B11+B12)
    emit_add(B11, B12, tT);
    recurse(tS, tT, M6);
    emit_sub(A12, A22, tS);  // M7 = (A12-A22)(B21+B22)
    emit_add(B21, B22, tT);
    recurse(tS, tT, M7);

    emit_add(M1, M4, C11);   // C11 = M1 + M4 - M5 + M7
    emit_acc(M5, C11, /*negate=*/true);
    emit_acc(M7, C11, /*negate=*/false);
    emit_add(M3, M5, C12);   // C12 = M3 + M5
    emit_add(M2, M4, C21);   // C21 = M2 + M4
    emit_sub(M1, M2, C22);   // C22 = M1 - M2 + M3 + M6
    emit_acc(M3, C22, /*negate=*/false);
    emit_acc(M6, C22, /*negate=*/false);
  }
};

// --- nested-spawn build (Config::nested_tasks) --------------------------------

struct NestedCtx {
  Runtime& rt;
  const StrassenTasks& tt;
  const blas::Kernels* k;
  int m;
  std::size_t be;
};

/// Runs inside a `strassen_rec` generator task (or on the main thread for
/// the root call). Temporaries live on this invocation's stack; the final
/// taskwait keeps them alive until every reader completed. Unlike the
/// inline build, operand temporaries are NOT reused across the seven
/// products: sibling generators submit concurrently, and renaming a reused
/// temporary would make the dependency outcome depend on the submission
/// interleaving. Fresh temporaries make every interleaving equivalent.
void nested_recurse(NestedCtx& c, View A, View B, View C) {
  Runtime& rt = c.rt;
  if (A.n == 1) {
    spawn_mul(rt, c.tt, c.k, c.m, c.be, A, B, C);
    return;  // ordered behind us by RAW edges; awaited by an ancestor
  }
  const int h = A.n / 2;
  View A11 = A.quad(0, 0), A12 = A.quad(0, 1), A21 = A.quad(1, 0),
       A22 = A.quad(1, 1);
  View B11 = B.quad(0, 0), B12 = B.quad(0, 1), B21 = B.quad(1, 0),
       B22 = B.quad(1, 1);
  View C11 = C.quad(0, 0), C12 = C.quad(0, 1), C21 = C.quad(1, 0),
       C22 = C.quad(1, 1);

  std::vector<std::unique_ptr<HyperMatrix>> arena;
  auto fresh = [&](int n) {
    arena.push_back(std::make_unique<HyperMatrix>(n, c.m, true));
    return View{arena.back().get(), 0, 0, n};
  };

  View M1 = fresh(h), M2 = fresh(h), M3 = fresh(h), M4 = fresh(h),
       M5 = fresh(h), M6 = fresh(h), M7 = fresh(h);

  // One generator task per product. Operand sums/differences are emitted
  // first; the generator's grandchildren pick them up through RAW edges.
  auto product = [&](const View& L, const View& R, const View& M) {
    rt.spawn(c.tt.rec, [cp = &c, L, R, M] { nested_recurse(*cp, L, R, M); });
  };

  {
    View s = fresh(h), t = fresh(h);                 // M1 = (A11+A22)(B11+B22)
    spawn_add(rt, c.tt, c.k, c.m, c.be, A11, A22, s);
    spawn_add(rt, c.tt, c.k, c.m, c.be, B11, B22, t);
    product(s, t, M1);
  }
  {
    View s = fresh(h);                               // M2 = (A21+A22) B11
    spawn_add(rt, c.tt, c.k, c.m, c.be, A21, A22, s);
    product(s, B11, M2);
  }
  {
    View t = fresh(h);                               // M3 = A11 (B12-B22)
    spawn_sub(rt, c.tt, c.k, c.m, c.be, B12, B22, t);
    product(A11, t, M3);
  }
  {
    View t = fresh(h);                               // M4 = A22 (B21-B11)
    spawn_sub(rt, c.tt, c.k, c.m, c.be, B21, B11, t);
    product(A22, t, M4);
  }
  {
    View s = fresh(h);                               // M5 = (A11+A12) B22
    spawn_add(rt, c.tt, c.k, c.m, c.be, A11, A12, s);
    product(s, B22, M5);
  }
  {
    View s = fresh(h), t = fresh(h);                 // M6 = (A21-A11)(B11+B12)
    spawn_sub(rt, c.tt, c.k, c.m, c.be, A21, A11, s);
    spawn_add(rt, c.tt, c.k, c.m, c.be, B11, B12, t);
    product(s, t, M6);
  }
  {
    View s = fresh(h), t = fresh(h);                 // M7 = (A12-A22)(B21+B22)
    spawn_sub(rt, c.tt, c.k, c.m, c.be, A12, A22, s);
    spawn_add(rt, c.tt, c.k, c.m, c.be, B21, B22, t);
    product(s, t, M7);
  }

  // The combinations read M1..M7; their dependency analysis must happen
  // after the products' writes were *submitted*, which generator completion
  // guarantees (each generator taskwaits before returning).
  rt.taskwait();

  spawn_add(rt, c.tt, c.k, c.m, c.be, M1, M4, C11);  // C11 = M1+M4-M5+M7
  spawn_acc(rt, c.tt, c.m, c.be, M5, C11, /*negate=*/true);
  spawn_acc(rt, c.tt, c.m, c.be, M7, C11, /*negate=*/false);
  spawn_add(rt, c.tt, c.k, c.m, c.be, M3, M5, C12);  // C12 = M3+M5
  spawn_add(rt, c.tt, c.k, c.m, c.be, M2, M4, C21);  // C21 = M2+M4
  spawn_sub(rt, c.tt, c.k, c.m, c.be, M1, M2, C22);  // C22 = M1-M2+M3+M6
  spawn_acc(rt, c.tt, c.m, c.be, M3, C22, /*negate=*/false);
  spawn_acc(rt, c.tt, c.m, c.be, M6, C22, /*negate=*/false);

  rt.taskwait();  // arena (and the leaf muls feeding it) must not outlive us
}

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

void strassen_smpss(Runtime& rt, const StrassenTasks& tt, HyperMatrix& A,
                    HyperMatrix& B, HyperMatrix& C, const blas::Kernels& k) {
  SMPSS_CHECK(is_pow2(A.nblocks()), "Strassen needs a power-of-two block grid");
  if (rt.config().nested_tasks) {
    NestedCtx ctx{rt, tt, &k, A.block_dim(), A.block_elems()};
    nested_recurse(ctx, View{&A, 0, 0, A.nblocks()},
                   View{&B, 0, 0, B.nblocks()}, View{&C, 0, 0, C.nblocks()});
    rt.barrier();
    return;
  }
  Ctx ctx{rt, tt, &k, A.block_dim(), A.block_elems(), {}};
  ctx.recurse(View{&A, 0, 0, A.nblocks()}, View{&B, 0, 0, B.nblocks()},
              View{&C, 0, 0, C.nblocks()});
  rt.barrier();  // temps in ctx.arena stay alive until here
}

namespace {
void seq_rec(const View& A, const View& B, const View& C,
             const blas::Kernels& k, int m,
             std::vector<std::unique_ptr<HyperMatrix>>& arena);

void seq_binop(const View& a, const View& b, const View& d,
               const blas::Kernels& k, int m, bool add_op) {
  for (int i = 0; i < a.n; ++i)
    for (int j = 0; j < a.n; ++j) {
      if (add_op)
        k.add(m, a.block(i, j), b.block(i, j), d.block(i, j));
      else
        k.sub(m, a.block(i, j), b.block(i, j), d.block(i, j));
    }
}
void seq_acc(const View& a, const View& d, int m, bool negate) {
  for (int i = 0; i < a.n; ++i)
    for (int j = 0; j < a.n; ++j) {
      if (negate)
        body_acc_sub(m, a.block(i, j), d.block(i, j));
      else
        body_acc_add(m, a.block(i, j), d.block(i, j));
    }
}

void seq_rec(const View& A, const View& B, const View& C,
             const blas::Kernels& k, int m,
             std::vector<std::unique_ptr<HyperMatrix>>& arena) {
  if (A.n == 1) {
    body_mul_overwrite(m, &k, A.block(0, 0), B.block(0, 0), C.block(0, 0));
    return;
  }
  const int h = A.n / 2;
  auto fresh = [&](int n) {
    arena.push_back(std::make_unique<HyperMatrix>(n, m, true));
    return View{arena.back().get(), 0, 0, n};
  };
  View A11 = A.quad(0, 0), A12 = A.quad(0, 1), A21 = A.quad(1, 0),
       A22 = A.quad(1, 1);
  View B11 = B.quad(0, 0), B12 = B.quad(0, 1), B21 = B.quad(1, 0),
       B22 = B.quad(1, 1);
  View C11 = C.quad(0, 0), C12 = C.quad(0, 1), C21 = C.quad(1, 0),
       C22 = C.quad(1, 1);
  View tS = fresh(h), tT = fresh(h);
  View M1 = fresh(h), M2 = fresh(h), M3 = fresh(h), M4 = fresh(h),
       M5 = fresh(h), M6 = fresh(h), M7 = fresh(h);
  seq_binop(A11, A22, tS, k, m, true);
  seq_binop(B11, B22, tT, k, m, true);
  seq_rec(tS, tT, M1, k, m, arena);
  seq_binop(A21, A22, tS, k, m, true);
  seq_rec(tS, B11, M2, k, m, arena);
  seq_binop(B12, B22, tT, k, m, false);
  seq_rec(A11, tT, M3, k, m, arena);
  seq_binop(B21, B11, tT, k, m, false);
  seq_rec(A22, tT, M4, k, m, arena);
  seq_binop(A11, A12, tS, k, m, true);
  seq_rec(tS, B22, M5, k, m, arena);
  seq_binop(A21, A11, tS, k, m, false);
  seq_binop(B11, B12, tT, k, m, true);
  seq_rec(tS, tT, M6, k, m, arena);
  seq_binop(A12, A22, tS, k, m, false);
  seq_binop(B21, B22, tT, k, m, true);
  seq_rec(tS, tT, M7, k, m, arena);
  seq_binop(M1, M4, C11, k, m, true);
  seq_acc(M5, C11, m, true);
  seq_acc(M7, C11, m, false);
  seq_binop(M3, M5, C12, k, m, true);
  seq_binop(M2, M4, C21, k, m, true);
  seq_binop(M1, M2, C22, k, m, false);
  seq_acc(M3, C22, m, false);
  seq_acc(M6, C22, m, false);
}
}  // namespace

void strassen_seq(HyperMatrix& A, HyperMatrix& B, HyperMatrix& C,
                  const blas::Kernels& k) {
  SMPSS_CHECK(is_pow2(A.nblocks()), "Strassen needs a power-of-two block grid");
  std::vector<std::unique_ptr<HyperMatrix>> arena;
  seq_rec(View{&A, 0, 0, A.nblocks()}, View{&B, 0, 0, B.nblocks()},
          View{&C, 0, 0, C.nblocks()}, k, A.block_dim(), arena);
}

double strassen_flops(int nb, int m) {
  if (nb == 1) {
    const double d = m;
    return 2.0 * d * d * d;
  }
  const double half = static_cast<double>(nb) / 2.0 * m;
  return 7.0 * strassen_flops(nb / 2, m) + 18.0 * half * half;
}

}  // namespace smpss::apps
