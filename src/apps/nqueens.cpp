#include "apps/nqueens.hpp"

#include <atomic>
#include <cstdlib>
#include <vector>

namespace smpss::apps {

NQueensTasks NQueensTasks::register_in(Runtime& rt) {
  NQueensTasks t;
  t.set = rt.register_task_type("set_cell");
  t.solve = rt.register_task_type("solve_tail");
  return t;
}

namespace {

constexpr int kMaxBoard = 24;

/// Fixed-size prefix payload so `value()` can copy it into the task closure.
struct Prefix {
  int cells[kMaxBoard];
};

/// Queen at (d, c) compatible with queens in rows [0, d)?
bool safe(const int* board, int d, int c) {
  for (int k = 0; k < d; ++k) {
    int bc = board[k];
    if (bc == c || std::abs(bc - c) == d - k) return false;
  }
  return true;
}

/// Count completions of the prefix board[0..d) sequentially.
long count_tail(int* board, int d, int n) {
  if (d == n) return 1;
  long total = 0;
  for (int c = 0; c < n; ++c) {
    if (safe(board, d, c)) {
      board[d] = c;
      total += count_tail(board, d + 1, n);
    }
  }
  return total;
}

}  // namespace

long nqueens_seq(int n) {
  std::vector<int> board(static_cast<std::size_t>(n), 0);
  return count_tail(board.data(), 0, n);
}

namespace {

/// Nested-mode recursion: runs inside a `solve_tail` task. The prefix
/// travels by value in the closure (the per-branch copy the runtime's
/// renaming provides in the flat build, made explicit here because nested
/// children of different parents submit concurrently).
void nq_nested_rec(Runtime& rt, TaskType solve, Prefix p, int d, int n,
                   int cutoff, std::atomic<long>* total) {
  if (d >= cutoff) {
    total->fetch_add(count_tail(p.cells, d, n), std::memory_order_relaxed);
    return;
  }
  for (int c = 0; c < n; ++c) {
    if (!safe(p.cells, d, c)) continue;
    Prefix child = p;
    child.cells[d] = c;
    rt.spawn(solve, [&rt, solve, child, d, n, cutoff, total] {
      nq_nested_rec(rt, solve, child, d + 1, n, cutoff, total);
    });
  }
}

long nqueens_smpss_nested(Runtime& rt, const NQueensTasks& tt, int n,
                          int cutoff) {
  std::atomic<long> total{0};
  Prefix root{};
  rt.spawn(tt.solve, [&rt, solve = tt.solve, root, n, cutoff, tp = &total] {
    nq_nested_rec(rt, solve, root, 0, n, cutoff, tp);
  });
  rt.barrier();
  return total.load(std::memory_order_relaxed);
}

}  // namespace

long nqueens_smpss(Runtime& rt, const NQueensTasks& tt, int n,
                   int task_depth) {
  SMPSS_CHECK(n <= kMaxBoard, "board too large for the fixed prefix buffer");
  const int cutoff = std::max(0, n - task_depth);
  if (rt.config().nested_tasks) return nqueens_smpss_nested(rt, tt, n, cutoff);
  std::vector<int> board(static_cast<std::size_t>(n), 0);   // runtime-tracked
  std::vector<int> shadow(static_cast<std::size_t>(n), 0);  // main-side pruning
  std::atomic<long> total{0};
  int* bp = board.data();

  // Prefix expansion in the main code. At every cutoff node one `set` task
  // writes the branch's prefix into the shared board, and one `solve` task
  // reads it. The set is an *output* access: every branch overwrites the
  // same array, a WAW/WAR hazard on the pending solver readers that the
  // runtime resolves by renaming — each branch transparently gets its own
  // copy of the partial-solution array (Sec. VI.E), and, because only true
  // dependencies remain, all branches run in parallel. With renaming
  // disabled the same program serializes behind hazard edges (see the
  // ablation bench).
  auto rec = [&](auto&& self, int d) -> void {
    if (d == cutoff) {
      Prefix p{};
      for (int i = 0; i < d; ++i) p.cells[i] = shadow[static_cast<std::size_t>(i)];
      rt.spawn(tt.set,
               [](int* b, const Prefix& pr, const int& dd) {
                 for (int i = 0; i < dd; ++i) b[i] = pr.cells[i];
               },
               out(bp, static_cast<std::size_t>(n)), value(p), value(d));
      rt.spawn(tt.solve,
               [](const int* b, const int& dd, const int& nn,
                  std::atomic<long>* acc) {
                 // Work on a private copy of the (renamed, stable) version.
                 std::vector<int> local(b, b + nn);
                 acc->fetch_add(count_tail(local.data(), dd, nn),
                                std::memory_order_relaxed);
               },
               in(bp, static_cast<std::size_t>(n)), value(d), value(n),
               opaque(&total));
      return;
    }
    for (int c = 0; c < n; ++c) {
      if (!safe(shadow.data(), d, c)) continue;
      shadow[d] = c;
      self(self, d + 1);
    }
  };
  rec(rec, 0);
  rt.barrier();
  return total.load(std::memory_order_relaxed);
}

namespace {

void fj_rec(fj::Context& ctx, std::vector<int> board, int d, int n, int cutoff,
            std::atomic<long>& total) {
  if (d >= cutoff) {
    total.fetch_add(count_tail(board.data(), d, n), std::memory_order_relaxed);
    return;
  }
  for (int c = 0; c < n; ++c) {
    if (!safe(board.data(), d, c)) continue;
    // Manual duplication of the partial solution array — the artifact the
    // paper points out Cilk requires.
    std::vector<int> child = board;
    child[d] = c;
    ctx.spawn([child = std::move(child), d, n, cutoff, &total](
                  fj::Context& c2) mutable {
      fj_rec(c2, std::move(child), d + 1, n, cutoff, total);
    });
  }
  ctx.sync();
}

}  // namespace

long nqueens_fj(fj::Scheduler& s, int n, int task_depth) {
  const int cutoff = std::max(0, n - task_depth);
  std::atomic<long> total{0};
  s.run_root([&](fj::Context& ctx) {
    fj_rec(ctx, std::vector<int>(static_cast<std::size_t>(n), 0), 0, n, cutoff,
           total);
  });
  return total.load(std::memory_order_relaxed);
}

namespace {

void omp3_rec(omp3::TaskPool& p, std::vector<int> board, int d, int n,
              int cutoff, std::atomic<long>& total) {
  if (d >= cutoff) {
    total.fetch_add(count_tail(board.data(), d, n), std::memory_order_relaxed);
    return;
  }
  for (int c = 0; c < n; ++c) {
    if (!safe(board.data(), d, c)) continue;
    std::vector<int> child = board;  // per-task copy, as the paper describes
    child[d] = c;
    p.task([child = std::move(child), d, n, cutoff, &p, &total]() mutable {
      omp3_rec(p, std::move(child), d + 1, n, cutoff, total);
    });
  }
  p.taskwait();
}

}  // namespace

long nqueens_omp3(omp3::TaskPool& p, int n, int task_depth) {
  const int cutoff = std::max(0, n - task_depth);
  std::atomic<long> total{0};
  p.run_root([&] {
    omp3_rec(p, std::vector<int>(static_cast<std::size_t>(n), 0), 0, n, cutoff,
             total);
  });
  return total.load(std::memory_order_relaxed);
}

}  // namespace smpss::apps
