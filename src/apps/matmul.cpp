#include "apps/matmul.hpp"

namespace smpss::apps {

MatmulTasks MatmulTasks::register_in(Runtime& rt) {
  MatmulTasks t;
  t.sgemm = rt.register_task_type("sgemm_t");
  t.get = rt.register_task_type("get_block");
  t.put = rt.register_task_type("put_block");
  return t;
}

void matmul_seq_flat(int n, const float* a, const float* b, float* c,
                     const blas::Kernels& k) {
  k.gemm_nn_acc(n, a, b, c);
}

void matmul_smpss_hyper(Runtime& rt, const MatmulTasks& tt,
                        const HyperMatrix& A, const HyperMatrix& B,
                        HyperMatrix& C, const blas::Kernels& k) {
  const int nb = A.nblocks();
  const int m = A.block_dim();
  const std::size_t be = A.block_elems();
  const blas::Kernels* kp = &k;
  // Fig. 1: any ordering of the three nested loops is correct; "the
  // programmer does not have to take care of what is the best task order".
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j)
      for (int kk = 0; kk < nb; ++kk)
        rt.spawn(tt.sgemm,
                 [kp, m](const float* x, const float* y, float* z) {
                   kp->gemm_nn_acc(m, x, y, z);
                 },
                 in(A.block(i, kk), be), in(B.block(kk, j), be),
                 inout(C.block(i, j), be));
  rt.barrier();
}

void matmul_smpss_sparse(Runtime& rt, const MatmulTasks& tt,
                         const HyperMatrix& A, const HyperMatrix& B,
                         HyperMatrix& C, const blas::Kernels& k) {
  const int nb = A.nblocks();
  const int m = A.block_dim();
  const std::size_t be = A.block_elems();
  const blas::Kernels* kp = &k;
  // Fig. 3: "if (A[i][k] && B[k][j]) { if (C[i][j] == NULL) C[i][j] =
  // alloc_block(); sgemm_t(...); }"
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j)
      for (int kk = 0; kk < nb; ++kk)
        if (A.present(i, kk) && B.present(kk, j)) {
          float* cij = C.ensure_block(i, j);
          rt.spawn(tt.sgemm,
                   [kp, m](const float* x, const float* y, float* z) {
                     kp->gemm_nn_acc(m, x, y, z);
                   },
                   in(A.block(i, kk), be), in(B.block(kk, j), be),
                   inout(cij, be));
        }
  rt.barrier();
}

void matmul_smpss_flat(Runtime& rt, const MatmulTasks& tt, int n,
                       const float* a, const float* b, float* c, int bs,
                       const blas::Kernels& k) {
  SMPSS_CHECK(n % bs == 0, "block size must divide the matrix size");
  const int nb = n / bs;
  const int m = bs;
  const int lda = n;
  const blas::Kernels* kp = &k;
  HyperMatrix Ab(nb, m, false), Bb(nb, m, false), Cb(nb, m, false);
  const std::size_t be = Ab.block_elems();

  auto get_once = [&](HyperMatrix& H, const float* flat, int i, int j) {
    if (H.present(i, j)) return;
    float* blk = H.ensure_block(i, j);
    rt.spawn(tt.get,
             [m, lda](const float* f, const int& bi, const int& bj,
                      float* dst) { get_block(bi, bj, m, lda, f, dst); },
             opaque(flat), value(i), value(j), out(blk, be));
  };

  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j) {
      // C starts from zero: allocate the accumulator block without a get.
      float* cij = Cb.ensure_block(i, j);
      for (int kk = 0; kk < nb; ++kk) {
        get_once(Ab, a, i, kk);
        get_once(Bb, b, kk, j);
        rt.spawn(tt.sgemm,
                 [kp, m](const float* x, const float* y, float* z) {
                   kp->gemm_nn_acc(m, x, y, z);
                 },
                 in(Ab.block(i, kk), be), in(Bb.block(kk, j), be),
                 inout(cij, be));
      }
      rt.spawn(tt.put,
               [m, lda](const float* blk, const int& bi, const int& bj,
                        float* flat) { put_block(bi, bj, m, lda, blk, flat); },
               in(cij, be), value(i), value(j), opaque(c));
    }
  rt.barrier();
}

double matmul_flops(int n) {
  const double d = n;
  return 2.0 * d * d * d;
}

}  // namespace smpss::apps
