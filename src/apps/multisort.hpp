// Multisort (paper Fig. 7 and Sec. VI.D): mergesort that splits into four
// subarrays per recursion step, sorts leaves with quicksort, and merges with
// a divide-and-conquer parallel merge (after Akl & Santoro, the paper's
// ref. [16]: the merge is decomposed by *output position*, each piece
// locating its input segments by co-ranking — value-oblivious at spawn time,
// which is exactly what a main-thread-spawning model needs).
//
// Variants:
//  * smpss_regions: the Sec. V.A array-region build — seqquick tasks take
//    `inout(data{i..j})`, merge pieces read both run regions and write one
//    output chunk region.
//  * smpss_repr:    the Sec. V.B representant build — Fig. 7 shape, one
//    representant per sort-tree node, data arrays passed as opaque pointers.
//  * fj / omp3:     Cilk-like and OpenMP-3-like baselines (Fig. 14 curves).
//  * seq:           the same decomposition run inline (Fig. 14's baseline).
#pragma once

#include "baselines/forkjoin/forkjoin.hpp"
#include "baselines/taskpool/taskpool.hpp"
#include "runtime/runtime.hpp"

namespace smpss::apps {

using ELM = long;  // the Cilk distribution's element type

struct MultisortTasks {
  TaskType seqquick, seqmerge, sort_rec;
  static MultisortTasks register_in(Runtime& rt);
};

/// Sequential quicksort of data[i..j] inclusive (median-of-three, insertion
/// sort below a threshold). Exposed for tests.
void seqquick(ELM* data, long i, long j);

/// Merge sorted data[i1..j1] and data[i2..j2] into dest starting at dest[i1]
/// (the seqmerge task of Fig. 7). Exposed for tests.
void seqmerge(const ELM* data, long i1, long j1, long i2, long j2, ELM* dest);

/// Co-rank: number of elements of a (length la) among the first `t` of the
/// merge of a and b (length lb). Exposed for property tests.
long co_rank(long t, const ELM* a, long la, const ELM* b, long lb);

/// Sequential multisort (same recursion, inline).
void multisort_seq(ELM* data, ELM* tmp, long n, long quick_size);

/// SMPSs with array regions; merges split into output chunks of at most
/// `merge_size` elements.
///
/// With Config::nested_tasks enabled the sort recursion runs as `sort_rec`
/// generator tasks: each quarter of the tree is expanded from a worker, the
/// generator taskwait()s its quarters (so their writes are submitted before
/// the merges' reads are analyzed) and then emits its merge tasks. The
/// paper-faithful default expands the whole tree on the main thread.
void multisort_smpss_regions(Runtime& rt, const MultisortTasks& tt, ELM* data,
                             ELM* tmp, long n, long quick_size,
                             long merge_size);

/// SMPSs with representants (Fig. 7 shape: whole-node merges).
void multisort_smpss_repr(Runtime& rt, const MultisortTasks& tt, ELM* data,
                          ELM* tmp, long n, long quick_size);

/// Cilk-like baseline.
void multisort_fj(fj::Scheduler& s, ELM* data, ELM* tmp, long n,
                  long quick_size, long merge_size);

/// OpenMP-3-like baseline.
void multisort_omp3(omp3::TaskPool& p, ELM* data, ELM* tmp, long n,
                    long quick_size, long merge_size);

}  // namespace smpss::apps
