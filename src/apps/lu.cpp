#include "apps/lu.hpp"

#include <atomic>
#include <cmath>
#include <utility>

namespace smpss::apps {

LuTasks LuTasks::register_in(Runtime& rt) {
  LuTasks t;
  t.panel = rt.register_task_type("lu_panel", /*high_priority=*/true);
  t.update = rt.register_task_type("lu_update");
  t.swap_left = rt.register_task_type("lu_swap_left");
  return t;
}

namespace {

/// Factorize columns [c0, c1) over rows [c0, n) of the flat matrix in place,
/// unblocked, choosing partial pivots and swapping rows *within those
/// columns only*. Records global pivot rows into piv[c0..c1). Returns 0 or
/// 1 + failing column.
int panel_factor(int n, float* a, int c0, int c1, int* piv) {
  for (int j = c0; j < c1; ++j) {
    // Pivot search in column j, rows j..n-1.
    int imax = j;
    float vmax = std::fabs(a[static_cast<std::size_t>(j) * n + j]);
    for (int i = j + 1; i < n; ++i) {
      float v = std::fabs(a[static_cast<std::size_t>(i) * n + j]);
      if (v > vmax) {
        vmax = v;
        imax = i;
      }
    }
    piv[j] = imax;
    if (vmax == 0.0f) return 1 + j;
    if (imax != j) {
      for (int c = c0; c < c1; ++c)
        std::swap(a[static_cast<std::size_t>(j) * n + c],
                  a[static_cast<std::size_t>(imax) * n + c]);
    }
    float inv = 1.0f / a[static_cast<std::size_t>(j) * n + j];
    for (int i = j + 1; i < n; ++i) {
      float lij = a[static_cast<std::size_t>(i) * n + j] * inv;
      a[static_cast<std::size_t>(i) * n + j] = lij;
      for (int c = j + 1; c < c1; ++c)
        a[static_cast<std::size_t>(i) * n + c] -=
            lij * a[static_cast<std::size_t>(j) * n + c];
    }
  }
  return 0;
}

/// Apply the recorded row swaps of panel [c0, c1) to columns [s0, s1).
void apply_swaps(int n, float* a, const int* piv, int c0, int c1, int s0,
                 int s1) {
  for (int j = c0; j < c1; ++j) {
    int imax = piv[j];
    if (imax != j) {
      for (int c = s0; c < s1; ++c)
        std::swap(a[static_cast<std::size_t>(j) * n + c],
                  a[static_cast<std::size_t>(imax) * n + c]);
    }
  }
}

/// Right-looking update of column stripe [s0, s1) after panel [c0, c1):
/// row swaps, unit-lower triangular solve for the U rows, trailing GEMM.
void update_stripe(int n, float* a, const int* piv, int c0, int c1, int s0,
                   int s1) {
  apply_swaps(n, a, piv, c0, c1, s0, s1);
  // U block: rows c0..c1, columns s0..s1: solve L(c0:c1, c0:c1) X = A.
  for (int i = c0; i < c1; ++i)
    for (int k = c0; k < i; ++k) {
      float lik = a[static_cast<std::size_t>(i) * n + k];
      for (int c = s0; c < s1; ++c)
        a[static_cast<std::size_t>(i) * n + c] -=
            lik * a[static_cast<std::size_t>(k) * n + c];
    }
  // Trailing block: rows c1..n minus L(i, c0:c1) * U(c0:c1, s0:s1).
  for (int i = c1; i < n; ++i)
    for (int k = c0; k < c1; ++k) {
      float lik = a[static_cast<std::size_t>(i) * n + k];
      for (int c = s0; c < s1; ++c)
        a[static_cast<std::size_t>(i) * n + c] -=
            lik * a[static_cast<std::size_t>(k) * n + c];
    }
}

}  // namespace

int lu_seq(int n, float* a, int* piv) {
  // Unblocked == one panel covering all columns.
  return panel_factor(n, a, 0, n, piv);
}

int lu_smpss_regions(Runtime& rt, const LuTasks& tt, int n, float* a, int* piv,
                     int bs) {
  SMPSS_CHECK(n % bs == 0, "block size must divide the matrix size");
  const int nb = n / bs;
  std::atomic<int> err{0};

  for (int k = 0; k < nb; ++k) {
    const int c0 = k * bs, c1 = (k + 1) * bs;
    // Panel: inout on rows c0..n-1 of its own columns, out on its pivots.
    rt.spawn(tt.panel,
             [n, c0, c1](float* base, int* pv, std::atomic<int>* e) {
               if (int rc = panel_factor(n, base, c0, c1, pv); rc != 0) {
                 int expected = 0;
                 e->compare_exchange_strong(expected, rc,
                                            std::memory_order_relaxed);
               }
             },
             inout(a, Region{{Bound::closed(c0, n - 1),
                              Bound::closed(c0, c1 - 1)}}),
             out(piv, Region{{Bound::closed(c0, c1 - 1)}}),
             opaque(&err));

    // Left stripes: swap-only (keeps L rows consistent with the pivoting).
    for (int s = 0; s < k; ++s) {
      const int s0 = s * bs, s1 = (s + 1) * bs;
      rt.spawn(tt.swap_left,
               [n, c0, c1, s0, s1](float* base, const int* pv) {
                 apply_swaps(n, base, pv, c0, c1, s0, s1);
               },
               inout(a, Region{{Bound::closed(c0, n - 1),
                                Bound::closed(s0, s1 - 1)}}),
               in(piv, Region{{Bound::closed(c0, c1 - 1)}}));
    }

    // Right stripes: swaps + triangular solve + trailing update. The read
    // of the panel region and the inout of the stripe region give the RAW
    // and WAW/WAR orderings against the panel and earlier updates.
    for (int s = k + 1; s < nb; ++s) {
      const int s0 = s * bs, s1 = (s + 1) * bs;
      rt.spawn(tt.update,
               [n, c0, c1, s0, s1](const float*, const int* pv, float* base) {
                 update_stripe(n, base, pv, c0, c1, s0, s1);
               },
               in(a, Region{{Bound::closed(c0, n - 1),
                             Bound::closed(c0, c1 - 1)}}),
               in(piv, Region{{Bound::closed(c0, c1 - 1)}}),
               inout(a, Region{{Bound::closed(c0, n - 1),
                                Bound::closed(s0, s1 - 1)}}));
    }
  }
  rt.barrier();
  return err.load(std::memory_order_relaxed);
}

double lu_flops(int n) {
  const double d = n;
  return 2.0 * d * d * d / 3.0;
}

}  // namespace smpss::apps
