#include "apps/pagerank.hpp"

#include <vector>

namespace smpss::apps {

namespace {

/// SplitMix64 — the implicit edge function. Node u's k-th out-edge targets
/// edge_target(u, k, n); both the tasks and the oracle call exactly this.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline int edge_target(int u, int k, int n) {
  return static_cast<int>(
      mix64((static_cast<std::uint64_t>(u) << 20) | static_cast<unsigned>(k)) %
      static_cast<std::uint64_t>(n));
}

// Damping 85/100 and the (1 - d)/n teleport term, all in exact integer
// arithmetic so any summation order is bit-identical.
inline std::int64_t damp(std::int64_t accum) { return accum * 85 / 100; }
inline std::int64_t teleport(int n) { return kRankScale * 15 / 100 / n; }

/// Scatter the edges of source block [s0, s1) that land in destination block
/// [d0, d1). `src` is the source ranks block (src[i] is node s0 + i), `acc`
/// the destination accumulator block (acc[j] is node d0 + j).
void scatter_block(const std::int64_t* src, std::int64_t* acc, int s0, int s1,
                   int d0, int d1, int degree, int n) {
  for (int u = s0; u < s1; ++u) {
    const std::int64_t share = src[u - s0] / degree;
    for (int k = 0; k < degree; ++k) {
      const int v = edge_target(u, k, n);
      if (v >= d0 && v < d1) acc[v - d0] += share;
    }
  }
}

}  // namespace

PageRankTasks PageRankTasks::register_in(Runtime& rt) {
  PageRankTasks tt;
  tt.zero = rt.register_task_type("pr_zero");
  tt.scatter = rt.register_task_type("pr_scatter");
  tt.apply = rt.register_task_type("pr_apply");
  return tt;
}

void pagerank_init(int n, std::int64_t* ranks) {
  const std::int64_t r0 = kRankScale / n;
  for (int i = 0; i < n; ++i) ranks[i] = r0;
}

void pagerank_seq(int n, int degree, int iters, std::int64_t* ranks) {
  std::vector<std::int64_t> accum(static_cast<std::size_t>(n));
  for (int it = 0; it < iters; ++it) {
    for (int i = 0; i < n; ++i) accum[i] = 0;
    scatter_block(ranks, accum.data(), 0, n, 0, n, degree, n);
    const std::int64_t base = teleport(n);
    for (int i = 0; i < n; ++i) ranks[i] = base + damp(accum[i]);
  }
}

void pagerank_smpss(Runtime& rt, const PageRankTasks& tt, int n, int degree,
                    int iters, int block, std::int64_t* ranks,
                    std::int64_t* accum, bool use_commutative) {
  const int nblocks = (n + block - 1) / block;
  const auto b_lo = [&](int b) { return b * block; };
  const auto b_hi = [&](int b) { return b + 1 == nblocks ? n : (b + 1) * block; };

  for (int it = 0; it < iters; ++it) {
    for (int db = 0; db < nblocks; ++db) {
      const int d0 = b_lo(db), d1 = b_hi(db);
      rt.spawn(tt.zero,
               [cnt = d1 - d0](std::int64_t* a) {
                 for (int j = 0; j < cnt; ++j) a[j] = 0;
               },
               smpss::out(accum + d0, static_cast<std::size_t>(d1 - d0)));
    }
    for (int sb = 0; sb < nblocks; ++sb) {
      const int s0 = b_lo(sb), s1 = b_hi(sb);
      for (int db = 0; db < nblocks; ++db) {
        const int d0 = b_lo(db), d1 = b_hi(db);
        // The cost hint: a scatter task scans (s1-s0)*degree edges. Exact
        // scale does not matter, only relative ordering between tasks.
        const TaskAttrs attrs{
            static_cast<std::uint64_t>(s1 - s0) *
                static_cast<std::uint64_t>(degree),
            "pr_scatter"};
        const auto body = [s0, s1, d0, d1, degree, n](const std::int64_t* src,
                                                      std::int64_t* acc) {
          scatter_block(src, acc, s0, s1, d0, d1, degree, n);
        };
        if (use_commutative) {
          rt.spawn(attrs, tt.scatter, body,
                   smpss::in(ranks + s0, static_cast<std::size_t>(s1 - s0)),
                   smpss::commutative(accum + d0,
                                      static_cast<std::size_t>(d1 - d0)));
        } else {
          // Paper-faithful lowering: inout chains the writers of one
          // accumulator in spawn order.
          rt.spawn(attrs, tt.scatter, body,
                   smpss::in(ranks + s0, static_cast<std::size_t>(s1 - s0)),
                   smpss::inout(accum + d0,
                                static_cast<std::size_t>(d1 - d0)));
        }
      }
    }
    const std::int64_t base = teleport(n);
    for (int db = 0; db < nblocks; ++db) {
      const int d0 = b_lo(db), d1 = b_hi(db);
      rt.spawn(tt.apply,
               [cnt = d1 - d0, base](const std::int64_t* a, std::int64_t* r) {
                 for (int j = 0; j < cnt; ++j) r[j] = base + damp(a[j]);
               },
               smpss::in(accum + d0, static_cast<std::size_t>(d1 - d0)),
               smpss::out(ranks + d0, static_cast<std::size_t>(d1 - d0)));
    }
  }
  rt.barrier();
}

}  // namespace smpss::apps
