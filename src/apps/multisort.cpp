#include "apps/multisort.hpp"

#include <algorithm>

#include "dep/representant.hpp"

namespace smpss::apps {

MultisortTasks MultisortTasks::register_in(Runtime& rt) {
  MultisortTasks t;
  t.seqquick = rt.register_task_type("seqquick");
  t.seqmerge = rt.register_task_type("seqmerge");
  t.sort_rec = rt.register_task_type("sort_rec");
  return t;
}

// --- sequential primitives ----------------------------------------------------

namespace {
constexpr long kInsertionThreshold = 32;

void insertion_sort(ELM* a, long lo, long hi) {
  for (long i = lo + 1; i <= hi; ++i) {
    ELM v = a[i];
    long j = i - 1;
    while (j >= lo && a[j] > v) {
      a[j + 1] = a[j];
      --j;
    }
    a[j + 1] = v;
  }
}

ELM median3(ELM a, ELM b, ELM c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}
}  // namespace

void seqquick(ELM* data, long i, long j) {
  while (j - i > kInsertionThreshold) {
    ELM pivot = median3(data[i], data[(i + j) / 2], data[j]);
    long lo = i, hi = j;
    while (lo <= hi) {
      while (data[lo] < pivot) ++lo;
      while (data[hi] > pivot) --hi;
      if (lo <= hi) {
        std::swap(data[lo], data[hi]);
        ++lo;
        --hi;
      }
    }
    // Recurse into the smaller side, iterate on the larger (O(log n) stack).
    if (hi - i < j - lo) {
      if (i < hi) seqquick(data, i, hi);
      i = lo;
    } else {
      if (lo < j) seqquick(data, lo, j);
      j = hi;
    }
  }
  insertion_sort(data, i, j);
}

void seqmerge(const ELM* data, long i1, long j1, long i2, long j2, ELM* dest) {
  long a = i1, b = i2, o = i1;
  while (a <= j1 && b <= j2) dest[o++] = data[a] <= data[b] ? data[a++] : data[b++];
  while (a <= j1) dest[o++] = data[a++];
  while (b <= j2) dest[o++] = data[b++];
}

long co_rank(long t, const ELM* a, long la, const ELM* b, long lb) {
  // Find ia in [max(0, t-lb), min(t, la)] with ib = t - ia such that
  // a[ia-1] <= b[ib] and b[ib-1] < a[ia] (treating out-of-range as +/-inf).
  long lo = std::max<long>(0, t - lb);
  long hi = std::min(t, la);
  while (lo < hi) {
    long ia = lo + (hi - lo) / 2;
    long ib = t - ia;
    if (ia < la && ib > 0 && b[ib - 1] > a[ia]) {
      lo = ia + 1;  // need more of a
    } else if (ia > 0 && ib < lb && a[ia - 1] > b[ib]) {
      hi = ia;      // need less of a
    } else {
      return ia;
    }
  }
  return lo;
}

namespace {

/// Merge output positions [t0, t1) (relative to the merged sequence) of
/// merge(a[0..la), b[0..lb)) into out[t0..t1). Inputs must be sorted.
void merge_piece(const ELM* a, long la, const ELM* b, long lb, long t0,
                 long t1, ELM* out) {
  long ia = co_rank(t0, a, la, b, lb);
  long ib = t0 - ia;
  long ja = co_rank(t1, a, la, b, lb);
  long jb = t1 - ja;
  long o = t0;
  while (ia < ja && ib < jb)
    out[o++] = a[ia] <= b[ib] ? a[ia++] : b[ib++];
  while (ia < ja) out[o++] = a[ia++];
  while (ib < jb) out[o++] = b[ib++];
}

struct Quarters {
  long i1, j1, i2, j2, i3, j3, i4, j4;
};

Quarters split4(long i, long j) {
  long size = j - i + 1;
  long q = size / 4;
  Quarters s;
  s.i1 = i;           s.j1 = i + q - 1;
  s.i2 = i + q;       s.j2 = i + 2 * q - 1;
  s.i3 = i + 2 * q;   s.j3 = i + 3 * q - 1;
  s.i4 = i + 3 * q;   s.j4 = j;
  return s;
}

}  // namespace

// --- sequential multisort -------------------------------------------------------

namespace {
void seq_sort_rec(ELM* data, ELM* tmp, long i, long j, long quick_size) {
  long size = j - i + 1;
  if (size < quick_size || size < 8) {
    seqquick(data, i, j);
    return;
  }
  Quarters q = split4(i, j);
  seq_sort_rec(data, tmp, q.i1, q.j1, quick_size);
  seq_sort_rec(data, tmp, q.i2, q.j2, quick_size);
  seq_sort_rec(data, tmp, q.i3, q.j3, quick_size);
  seq_sort_rec(data, tmp, q.i4, q.j4, quick_size);
  seqmerge(data, q.i1, q.j1, q.i2, q.j2, tmp);
  seqmerge(data, q.i3, q.j3, q.i4, q.j4, tmp);
  seqmerge(tmp, q.i1, q.j2, q.i3, q.j4, data);
}
}  // namespace

void multisort_seq(ELM* data, ELM* tmp, long n, long quick_size) {
  seq_sort_rec(data, tmp, 0, n - 1, quick_size);
}

// --- SMPSs with array regions (Sec. V.A + Sec. VI.D) ---------------------------

namespace {

/// Divide-and-conquer merge: src[i1..j1] and src[i2..j2] -> dst[i1..j2],
/// decomposed by output chunks ("calls a recursive merge function that
/// ends up calling [the seqmerge] task when the operated range is small
/// enough", Sec. VI.D). Region analysis keys on the base pointer, so every
/// access names the array base (`src`/`dst`) with absolute-index regions —
/// the paper's `data{i1..j1}` syntax rendered literally. The task function
/// receives the base once per region (as the pragma's repeated parameter
/// would) and applies the offsets itself. Shared by the inline and nested
/// builds.
void spawn_merge(Runtime& rt, const MultisortTasks& tt, ELM* src, ELM* dst,
                 long i1, long j1, long i2, long j2, long merge_size) {
  const long la = j1 - i1 + 1;
  const long lb = j2 - i2 + 1;
  const long total = la + lb;
  for (long t0 = 0; t0 < total; t0 += merge_size) {
    long t1 = std::min(total, t0 + merge_size);
    // Reads: both run regions. Write: one disjoint output chunk.
    rt.spawn(tt.seqmerge,
             [i1, la, i2, lb, t0, t1](const ELM* s, const ELM*, ELM* d) {
               merge_piece(s + i1, la, s + i2, lb, t0, t1, d + i1);
             },
             in(src, Region{{Bound::closed(i1, j1)}}),
             in(src, Region{{Bound::closed(i2, j2)}}),
             out(dst, Region{{Bound::closed(i1 + t0, i1 + t1 - 1)}}));
  }
}

void spawn_quick(Runtime& rt, const MultisortTasks& tt, ELM* data, long i,
                 long j) {
  rt.spawn(tt.seqquick, [i, j](ELM* d) { seqquick(d, i, j); },
           inout(data, Region{{Bound::closed(i, j)}}));
}

struct RegionCtx {
  Runtime& rt;
  const MultisortTasks& tt;
  ELM* data;
  ELM* tmp;
  long n;
  long quick_size;
  long merge_size;

  void sort_rec(long i, long j) {
    long size = j - i + 1;
    if (size < quick_size || size < 8) {
      spawn_quick(rt, tt, data, i, j);
      return;
    }
    Quarters q = split4(i, j);
    sort_rec(q.i1, q.j1);
    sort_rec(q.i2, q.j2);
    sort_rec(q.i3, q.j3);
    sort_rec(q.i4, q.j4);
    spawn_merge(rt, tt, data, tmp, q.i1, q.j1, q.i2, q.j2, merge_size);
    spawn_merge(rt, tt, data, tmp, q.i3, q.j3, q.i4, q.j4, merge_size);
    spawn_merge(rt, tt, tmp, data, q.i1, q.j2, q.i3, q.j4, merge_size);
  }
};

// --- nested-spawn build (Config::nested_tasks) ---------------------------------

struct NestedSortCtx {
  Runtime& rt;
  const MultisortTasks& tt;
  ELM* data;
  ELM* tmp;
  long quick_size;
  long merge_size;
};

/// Runs inside a `sort_rec` generator task (or on the main thread for the
/// root call). The taskwait between the quarter sorts and the merges is
/// what makes concurrent submission sound: a generator completes only after
/// its whole subtree's accesses were submitted, so when the merges' regions
/// are analyzed every conflicting quarter access is either a live record
/// (edge inserted) or already retired (its effect is in memory). Sibling
/// quarters touch disjoint index ranges, so their interleaved submissions
/// gain no edges against each other and any submission order is equivalent.
void nested_sort_rec(NestedSortCtx& c, long i, long j) {
  long size = j - i + 1;
  if (size < c.quick_size || size < 8) {
    spawn_quick(c.rt, c.tt, c.data, i, j);
    return;
  }
  Quarters q = split4(i, j);
  auto quarter = [&](long qi, long qj) {
    c.rt.spawn(c.tt.sort_rec,
               [cp = &c, qi, qj] { nested_sort_rec(*cp, qi, qj); });
  };
  quarter(q.i1, q.j1);
  quarter(q.i2, q.j2);
  quarter(q.i3, q.j3);
  quarter(q.i4, q.j4);
  c.rt.taskwait();
  spawn_merge(c.rt, c.tt, c.data, c.tmp, q.i1, q.j1, q.i2, q.j2, c.merge_size);
  spawn_merge(c.rt, c.tt, c.data, c.tmp, q.i3, q.j3, q.i4, q.j4, c.merge_size);
  spawn_merge(c.rt, c.tt, c.tmp, c.data, q.i1, q.j2, q.i3, q.j4, c.merge_size);
}

}  // namespace

void multisort_smpss_regions(Runtime& rt, const MultisortTasks& tt, ELM* data,
                             ELM* tmp, long n, long quick_size,
                             long merge_size) {
  if (rt.config().nested_tasks) {
    NestedSortCtx ctx{rt, tt, data, tmp, quick_size, merge_size};
    nested_sort_rec(ctx, 0, n - 1);
    rt.barrier();
    return;
  }
  RegionCtx ctx{rt, tt, data, tmp, n, quick_size, merge_size};
  ctx.sort_rec(0, n - 1);
  rt.barrier();
}

// --- SMPSs with representants (Sec. V.B) ----------------------------------------

namespace {

struct ReprCtx {
  Runtime& rt;
  const MultisortTasks& tt;
  ELM* data;
  ELM* tmp;
  long quick_size;
  RepresentantPool nodes;  // one representant per sort-tree node (Sec. V.B)

  char* fresh() { return nodes.fresh(); }

  /// Returns the representant that stands for "data[i..j] is sorted".
  char* sort_rec(long i, long j) {
    long size = j - i + 1;
    if (size < quick_size || size < 8) {
      char* r = fresh();
      rt.spawn(tt.seqquick,
               [i, j](ELM* d, char*) { seqquick(d, i, j); },
               opaque(data), out(r));
      return r;
    }
    Quarters q = split4(i, j);
    char* r1 = sort_rec(q.i1, q.j1);
    char* r2 = sort_rec(q.i2, q.j2);
    char* r3 = sort_rec(q.i3, q.j3);
    char* r4 = sort_rec(q.i4, q.j4);
    // Fig. 7 shape: three whole-node merges. Dependencies flow through the
    // representants; the data/tmp pointers are opaque.
    char* m1 = fresh();
    char* m2 = fresh();
    char* mp = fresh();
    ELM* d = data;
    ELM* t = tmp;
    rt.spawn(tt.seqmerge,
             [q](const ELM* src, ELM* dst, const char*, const char*, char*) {
               seqmerge(src, q.i1, q.j1, q.i2, q.j2, dst);
             },
             opaque(static_cast<const ELM*>(d)), opaque(t), in(r1), in(r2),
             out(m1));
    rt.spawn(tt.seqmerge,
             [q](const ELM* src, ELM* dst, const char*, const char*, char*) {
               seqmerge(src, q.i3, q.j3, q.i4, q.j4, dst);
             },
             opaque(static_cast<const ELM*>(d)), opaque(t), in(r3), in(r4),
             out(m2));
    rt.spawn(tt.seqmerge,
             [q](const ELM* src, ELM* dst, const char*, const char*, char*) {
               seqmerge(src, q.i1, q.j2, q.i3, q.j4, dst);
             },
             opaque(static_cast<const ELM*>(t)), opaque(d), in(m1), in(m2),
             out(mp));
    return mp;
  }
};

}  // namespace

void multisort_smpss_repr(Runtime& rt, const MultisortTasks& tt, ELM* data,
                          ELM* tmp, long n, long quick_size) {
  ReprCtx ctx{rt, tt, data, tmp, quick_size, {}};
  ctx.sort_rec(0, n - 1);
  rt.barrier();  // ctx.nodes must outlive all tasks
}

// --- Cilk-like baseline -----------------------------------------------------------

namespace {

void fj_merge(fj::Context& ctx, const ELM* a, long la, const ELM* b, long lb,
              ELM* out, long t0, long t1, long merge_size) {
  if (t1 - t0 <= merge_size) {
    merge_piece(a, la, b, lb, t0, t1, out);
    return;
  }
  long mid = (t0 + t1) / 2;
  ctx.spawn([=](fj::Context& c) { fj_merge(c, a, la, b, lb, out, t0, mid, merge_size); });
  ctx.spawn([=](fj::Context& c) { fj_merge(c, a, la, b, lb, out, mid, t1, merge_size); });
  ctx.sync();
}

void fj_sort(fj::Context& ctx, ELM* data, ELM* tmp, long i, long j,
             long quick_size, long merge_size) {
  long size = j - i + 1;
  if (size < quick_size || size < 8) {
    seqquick(data, i, j);
    return;
  }
  Quarters q = split4(i, j);
  ctx.spawn([=](fj::Context& c) { fj_sort(c, data, tmp, q.i1, q.j1, quick_size, merge_size); });
  ctx.spawn([=](fj::Context& c) { fj_sort(c, data, tmp, q.i2, q.j2, quick_size, merge_size); });
  ctx.spawn([=](fj::Context& c) { fj_sort(c, data, tmp, q.i3, q.j3, quick_size, merge_size); });
  fj_sort(ctx, data, tmp, q.i4, q.j4, quick_size, merge_size);
  ctx.sync();
  ctx.spawn([=](fj::Context& c) {
    fj_merge(c, data + q.i1, q.j1 - q.i1 + 1, data + q.i2, q.j2 - q.i2 + 1,
             tmp + q.i1, 0, q.j2 - q.i1 + 1, merge_size);
  });
  fj_merge(ctx, data + q.i3, q.j3 - q.i3 + 1, data + q.i4, q.j4 - q.i4 + 1,
           tmp + q.i3, 0, q.j4 - q.i3 + 1, merge_size);
  ctx.sync();
  fj_merge(ctx, tmp + q.i1, q.j2 - q.i1 + 1, tmp + q.i3, q.j4 - q.i3 + 1,
           data + q.i1, 0, q.j4 - q.i1 + 1, merge_size);
  ctx.sync();
}

}  // namespace

void multisort_fj(fj::Scheduler& s, ELM* data, ELM* tmp, long n,
                  long quick_size, long merge_size) {
  s.run_root([&](fj::Context& ctx) {
    fj_sort(ctx, data, tmp, 0, n - 1, quick_size, merge_size);
  });
}

// --- OpenMP-3-like baseline ---------------------------------------------------------

namespace {

void omp3_merge(omp3::TaskPool& p, const ELM* a, long la, const ELM* b,
                long lb, ELM* out, long t0, long t1, long merge_size) {
  if (t1 - t0 <= merge_size) {
    merge_piece(a, la, b, lb, t0, t1, out);
    return;
  }
  long mid = (t0 + t1) / 2;
  p.task([=, &p] { omp3_merge(p, a, la, b, lb, out, t0, mid, merge_size); });
  p.task([=, &p] { omp3_merge(p, a, la, b, lb, out, mid, t1, merge_size); });
  p.taskwait();
}

void omp3_sort(omp3::TaskPool& p, ELM* data, ELM* tmp, long i, long j,
               long quick_size, long merge_size) {
  long size = j - i + 1;
  if (size < quick_size || size < 8) {
    seqquick(data, i, j);
    return;
  }
  Quarters q = split4(i, j);
  p.task([=, &p] { omp3_sort(p, data, tmp, q.i1, q.j1, quick_size, merge_size); });
  p.task([=, &p] { omp3_sort(p, data, tmp, q.i2, q.j2, quick_size, merge_size); });
  p.task([=, &p] { omp3_sort(p, data, tmp, q.i3, q.j3, quick_size, merge_size); });
  omp3_sort(p, data, tmp, q.i4, q.j4, quick_size, merge_size);
  p.taskwait();
  p.task([=, &p] {
    omp3_merge(p, data + q.i1, q.j1 - q.i1 + 1, data + q.i2, q.j2 - q.i2 + 1,
               tmp + q.i1, 0, q.j2 - q.i1 + 1, merge_size);
  });
  omp3_merge(p, data + q.i3, q.j3 - q.i3 + 1, data + q.i4, q.j4 - q.i4 + 1,
             tmp + q.i3, 0, q.j4 - q.i3 + 1, merge_size);
  p.taskwait();
  omp3_merge(p, tmp + q.i1, q.j2 - q.i1 + 1, tmp + q.i3, q.j4 - q.i3 + 1,
             data + q.i1, 0, q.j4 - q.i1 + 1, merge_size);
  p.taskwait();
}

}  // namespace

void multisort_omp3(omp3::TaskPool& p, ELM* data, ELM* tmp, long n,
                    long quick_size, long merge_size) {
  p.run_root([&] { omp3_sort(p, data, tmp, 0, n - 1, quick_size, merge_size); });
}

}  // namespace smpss::apps
