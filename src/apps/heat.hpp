// 2-D Jacobi heat diffusion over array regions — a classic flat-data HPC
// kernel that the Sec. V.A region extension handles naturally: the grid is
// never blocked into hyper-matrices; tasks read halo-extended row bands and
// write interior bands, and the band-to-band overlap between consecutive
// sweeps produces the wavefront dependency structure automatically (band k
// of sweep t depends on bands k-1, k, k+1 of sweep t-1).
//
// This is the kind of "algorithm that does not adapt well to blocking" the
// paper motivates regions with: the same cells are read by up to three
// different tasks per sweep with overlapping, shifted extents.
#pragma once

#include "runtime/runtime.hpp"

namespace smpss::apps {

struct HeatTasks {
  TaskType sweep;
  static HeatTasks register_in(Runtime& rt);
};

/// Sequential oracle: `steps` Jacobi sweeps on an n x n grid (row-major),
/// alternating between `a` and `b`; boundary cells are fixed. The result
/// (after an even or odd number of steps) is left in `a` if steps is even,
/// else in `b` — as with the parallel version, use result_grid().
void heat_seq(int n, float* a, float* b, int steps);

/// Region-based parallel version: one task per row band per sweep; `band`
/// rows per task. Produces bit-identical results to heat_seq.
void heat_smpss_regions(Runtime& rt, const HeatTasks& tt, int n, float* a,
                        float* b, int steps, int band);

/// Which buffer holds the result after `steps` sweeps starting from `a`.
inline float* heat_result(float* a, float* b, int steps) {
  return steps % 2 == 0 ? a : b;
}

/// Deterministic initial condition: hot edge, cold interior.
void heat_init(int n, float* grid, float edge_value = 100.0f);

}  // namespace smpss::apps
