#include "apps/heat.hpp"

#include <algorithm>

namespace smpss::apps {

HeatTasks HeatTasks::register_in(Runtime& rt) {
  HeatTasks t;
  t.sweep = rt.register_task_type("heat_sweep");
  return t;
}

namespace {

/// One Jacobi sweep over interior rows [r0, r1) reading `src`, writing
/// `dst`. Boundary rows/columns are copied through unchanged.
void sweep_band(int n, const float* src, float* dst, int r0, int r1) {
  for (int i = r0; i < r1; ++i) {
    const float* up = src + static_cast<std::size_t>(i - 1) * n;
    const float* mid = src + static_cast<std::size_t>(i) * n;
    const float* down = src + static_cast<std::size_t>(i + 1) * n;
    float* out_row = dst + static_cast<std::size_t>(i) * n;
    out_row[0] = mid[0];
    for (int j = 1; j < n - 1; ++j)
      out_row[j] = 0.25f * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
    out_row[n - 1] = mid[n - 1];
  }
}

void copy_boundary_rows(int n, const float* src, float* dst) {
  std::copy(src, src + n, dst);
  std::copy(src + static_cast<std::size_t>(n - 1) * n,
            src + static_cast<std::size_t>(n) * n,
            dst + static_cast<std::size_t>(n - 1) * n);
}

}  // namespace

void heat_init(int n, float* grid, float edge_value) {
  std::fill(grid, grid + static_cast<std::size_t>(n) * n, 0.0f);
  for (int j = 0; j < n; ++j) grid[j] = edge_value;              // top edge hot
  for (int i = 0; i < n; ++i)
    grid[static_cast<std::size_t>(i) * n] = edge_value * 0.5f;   // left edge warm
}

void heat_seq(int n, float* a, float* b, int steps) {
  float* src = a;
  float* dst = b;
  for (int s = 0; s < steps; ++s) {
    copy_boundary_rows(n, src, dst);
    sweep_band(n, src, dst, 1, n - 1);
    std::swap(src, dst);
  }
}

void heat_smpss_regions(Runtime& rt, const HeatTasks& tt, int n, float* a,
                        float* b, int steps, int band) {
  SMPSS_CHECK(band >= 1, "band must be positive");
  float* src = a;
  float* dst = b;
  for (int s = 0; s < steps; ++s) {
    // Boundary rows ride along with the first/last band's task; interior
    // bands cover [r0, r1) with a halo-extended read region.
    for (int r0 = 1; r0 < n - 1; r0 += band) {
      const int r1 = std::min(n - 1, r0 + band);
      const bool first = r0 == 1, last = r1 == n - 1;
      rt.spawn(
          tt.sweep,
          [n, r0, r1, first, last](const float* in_grid, float* out_grid) {
            sweep_band(n, in_grid, out_grid, r0, r1);
            if (first) std::copy(in_grid, in_grid + n, out_grid);
            if (last)
              std::copy(in_grid + static_cast<std::size_t>(n - 1) * n,
                        in_grid + static_cast<std::size_t>(n) * n,
                        out_grid + static_cast<std::size_t>(n - 1) * n);
          },
          in(src, Region{{Bound::closed(r0 - 1, r1), Bound::whole()}}),
          out(dst, Region{{Bound::closed(first ? 0 : r0,
                                         last ? n - 1 : r1 - 1),
                           Bound::whole()}}));
    }
    std::swap(src, dst);
  }
  rt.barrier();
}

}  // namespace smpss::apps
