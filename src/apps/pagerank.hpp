// Push-style PageRank over a blocked synthetic graph — the commutative-mode
// mini-app. Each iteration scatters rank mass from every source block into
// per-destination-block accumulators: one task per (source block,
// destination block) pair that reads the source ranks and read-modify-writes
// the destination accumulator. All scatter tasks targeting one accumulator
// commute (integer addition is associative AND exact), which is precisely
// what Dir::Commutative expresses: mutual exclusion without ordering. The
// paper's in/out/inout vocabulary can only serialize them in program order —
// an O(blocks^2) chain per destination.
//
// Ranks are 64-bit fixed point (kRankScale) so the unordered accumulation is
// bit-exact against the sequential oracle: no floating-point reassociation
// slack is needed anywhere.
//
// The graph is implicit and deterministic: node u's k-th out-edge targets
// mix(u, k) % n (SplitMix64), so tasks carry no edge storage and the oracle
// reproduces the exact edge set.
#pragma once

#include <cstdint>

#include "runtime/runtime.hpp"

namespace smpss::apps {

/// Fixed-point scale for rank values (Q32.20-ish; sums stay far below 2^62).
inline constexpr std::int64_t kRankScale = 1 << 20;

struct PageRankTasks {
  TaskType zero;     ///< clear one destination-block accumulator
  TaskType scatter;  ///< (src block, dst block): push rank mass
  TaskType apply;    ///< fold accumulator into new ranks (damping)
  static PageRankTasks register_in(Runtime& rt);
};

/// Deterministic initial condition: every node starts at kRankScale / n.
void pagerank_init(int n, std::int64_t* ranks);

/// Sequential oracle: `iters` push iterations on the implicit graph
/// (out-degree `degree`, damping 85/100 in exact integer arithmetic).
void pagerank_seq(int n, int degree, int iters, std::int64_t* ranks);

/// Task-parallel version. One scatter task per (source block, destination
/// block) pair; `use_commutative` selects how its accumulator parameter is
/// lowered:
///   true  — smpss::commutative(...): writers into one accumulator mutually
///           exclude but run in any order (the point of this app);
///   false — smpss::inout(...): the paper-faithful lowering, which chains
///           all writers of one accumulator in program order.
/// Both produce results bit-identical to pagerank_seq. `accum` must hold n
/// entries, `block` divides the node range into ceil(n/block) blocks.
void pagerank_smpss(Runtime& rt, const PageRankTasks& tt, int n, int degree,
                    int iters, int block, std::int64_t* ranks,
                    std::int64_t* accum, bool use_commutative);

}  // namespace smpss::apps
