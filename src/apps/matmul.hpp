// Matrix multiplication C += A * B.
//
//  * smpss_hyper:   Fig. 1 — dense hyper-matrix multiply, "N^3 tasks
//                   arranged as N^2 chains of N tasks".
//  * smpss_sparse:  Fig. 3 — sparse variant: skip missing blocks, allocate
//                   C blocks on demand.
//  * smpss_flat:    the Fig. 12 transformation — flat matrices with
//                   on-demand block copies (get/put tasks, opaque flats).
//  * threaded:      row-panel parallel baseline (blas::ThreadedBlas).
//  * seq_flat:      single-threaded oracle.
#pragma once

#include <cstdint>

#include "blas/kernels.hpp"
#include "hyper/hyper_matrix.hpp"
#include "runtime/runtime.hpp"

namespace smpss::apps {

struct MatmulTasks {
  TaskType sgemm, get, put;
  static MatmulTasks register_in(Runtime& rt);
};

/// Oracle: C += A * B on flat n x n matrices.
void matmul_seq_flat(int n, const float* a, const float* b, float* c,
                     const blas::Kernels& k);

/// Fig. 1: dense hyper-matrix multiplication.
void matmul_smpss_hyper(Runtime& rt, const MatmulTasks& tt,
                        const HyperMatrix& A, const HyperMatrix& B,
                        HyperMatrix& C, const blas::Kernels& k);

/// Fig. 3: sparse hyper-matrix multiplication. Missing A/B blocks are
/// treated as zero; C blocks are allocated when first written.
void matmul_smpss_sparse(Runtime& rt, const MatmulTasks& tt,
                         const HyperMatrix& A, const HyperMatrix& B,
                         HyperMatrix& C, const blas::Kernels& k);

/// Fig. 12 workload: flat row-major inputs, on-demand blocking. C must be
/// zero-initialized (the result is written back block by block). `bs` must
/// divide n.
void matmul_smpss_flat(Runtime& rt, const MatmulTasks& tt, int n,
                       const float* a, const float* b, float* c, int bs,
                       const blas::Kernels& k);

/// 2 n^3 flops.
double matmul_flops(int n);

}  // namespace smpss::apps
