// LU decomposition with partial pivoting — the algorithm paper Sec. V uses
// to motivate flat data and array regions: "It is usually implemented as an
// in-place algorithm [...] the algorithm includes pivoting operations that
// consist in swapping columns and swapping rows. Those two operations make
// it hard to block."
//
// The SMPSs build here works directly on the flat matrix through 2-D array
// regions (the Sec. V.A extension): a panel task factorizes one column
// stripe (rows k*bs..n-1) and records its pivots; per-stripe update tasks
// read the pivot region and the panel region, apply the row swaps inside
// their own column stripe, and perform the triangular solve + trailing
// update. All ordering falls out of region overlap (panel k+1's region
// overlaps every stripe update of step k).
//
// Because pivot *values* are only known at execution time, nothing in the
// decomposition depends on them — tasks carry the swaps with them. This is
// the value-oblivious spawning discipline the whole programming model rests
// on.
#pragma once

#include "runtime/runtime.hpp"

namespace smpss::apps {

struct LuTasks {
  TaskType panel, update, swap_left;
  static LuTasks register_in(Runtime& rt);
};

/// Sequential oracle: in-place LU with partial pivoting on a flat row-major
/// n x n matrix. piv[j] = row swapped into position j at step j (LAPACK
/// getf2 convention, 0-based). Returns 0, or 1+j if pivot j was exactly 0.
int lu_seq(int n, float* a, int* piv);

/// Region-based blocked right-looking LU with partial pivoting. `bs` must
/// divide n. Produces the same factorization (identical pivots) as lu_seq
/// up to floating-point reassociation. Returns 0 on success.
int lu_smpss_regions(Runtime& rt, const LuTasks& tt, int n, float* a, int* piv,
                     int bs);

/// 2/3 n^3 flops.
double lu_flops(int n);

}  // namespace smpss::apps
