// Strassen matrix multiplication over hyper-matrices (paper Sec. VI.C).
//
// "Strassen's algorithm makes heavy usage of temporary matrices, which
// combined with a recursive implementation, results in an intensive renaming
// test case." We reproduce that structure deliberately: each recursion level
// keeps only TWO operand temporaries (tS for left-operand sums, tT for
// right-operand sums) and reuses them across the seven products. Every reuse
// is a WAW/WAR hazard on live data that renaming absorbs without
// serializing — with renaming disabled the graph collapses to a chain
// (asserted in the ablation tests/bench).
#pragma once

#include <cstdint>

#include "blas/kernels.hpp"
#include "hyper/hyper_matrix.hpp"
#include "runtime/runtime.hpp"

namespace smpss::apps {

struct StrassenTasks {
  TaskType mul, add, sub, acc, rec;
  static StrassenTasks register_in(Runtime& rt);
};

/// C = A * B (overwrite) by Strassen's recursion on the hyper-block level;
/// recursion bottoms out at single blocks (one sgemm task each). The number
/// of blocks per side must be a power of two. Spawns tasks and runs to the
/// barrier.
///
/// With Config::nested_tasks enabled the recursion itself runs as tasks
/// (one `strassen_rec` generator task per product) instead of being fully
/// unrolled on the main thread: each generator emits its block tasks from a
/// worker and taskwait()s. Two structural changes versus the inline build:
/// operand temporaries are per-product instead of reused (sibling subtrees
/// submit concurrently, so the reuse hazard that renaming absorbs under
/// program order would be submission-order-dependent), and the seven
/// products are joined with a taskwait before the combination tasks are
/// emitted (a child's writes must be *submitted* before the parent's reads
/// are analyzed).
void strassen_smpss(Runtime& rt, const StrassenTasks& tt, HyperMatrix& A,
                    HyperMatrix& B, HyperMatrix& C, const blas::Kernels& k);

/// Sequential oracle: same recursion executed inline.
void strassen_seq(HyperMatrix& A, HyperMatrix& B, HyperMatrix& C,
                  const blas::Kernels& k);

/// Strassen's operation count (the paper reports Gflops "calculated using
/// Strassen's formula"): 7 recursive products + 18 half-size additions per
/// level, 2 m^3 per leaf product.
double strassen_flops(int nb, int m);

}  // namespace smpss::apps
