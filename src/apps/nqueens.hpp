// N-Queens (paper Sec. VI.E): count the placements of N queens on an N x N
// board so that no two attack each other.
//
// The paper's point is the partial-solution array: "the OpenMP 3.0 tasking
// version and the Cilk version [...] require allocating a copy of the
// partial solution array so that tasks at the same recursion level do not
// overwrite each other's partial solutions. Like the sequential version,
// SMPSs does not require duplicating the partial solution array by hand. The
// runtime takes care of it by renaming the array as needed."
//
// Realization here: SMPSs has no recursive tasks, so the prefix levels are
// expanded by the main thread ("the queens function is decomposed
// recursively until the last 4 levels, and those are handled by tasks").
// Board-cell writes go through tiny inout `set` tasks — the runtime renames
// the board whenever pending readers exist, i.e. it performs exactly the
// per-sibling copies the other models need by hand. Leaf counting tasks read
// the board version their branch produced and accumulate into an opaque
// atomic counter. The fj/omp3 baselines copy the board manually, as the
// paper describes; the sequential version uses a single board.
#pragma once

#include "baselines/forkjoin/forkjoin.hpp"
#include "baselines/taskpool/taskpool.hpp"
#include "runtime/runtime.hpp"

namespace smpss::apps {

struct NQueensTasks {
  TaskType set, solve;
  static NQueensTasks register_in(Runtime& rt);
};

/// Sequential oracle: single board, full recursion, no copies.
long nqueens_seq(int n);

/// SMPSs version; the last `task_depth` recursion levels run inside tasks.
///
/// With Config::nested_tasks enabled the version is totally recursive, like
/// the Cilk one: every prefix node is a task that spawns one child task per
/// safe column, carrying the partial board by value (the nested model makes
/// the paper's renaming trick unnecessary — no shared board, no hazards),
/// and leaves below the cutoff count sequentially. Exercises deep nesting
/// with a fan-out far beyond the worker count.
long nqueens_smpss(Runtime& rt, const NQueensTasks& tt, int n, int task_depth);

/// Cilk-like baseline: one task per node, each with its own board copy,
/// fully recursive ("the Cilk version is totally recursive").
long nqueens_fj(fj::Scheduler& s, int n, int task_depth);

/// OpenMP-3-like baseline: nested tasks with per-task board copies; the
/// last `task_depth` levels run sequentially inside one task.
long nqueens_omp3(omp3::TaskPool& p, int n, int task_depth);

}  // namespace smpss::apps
