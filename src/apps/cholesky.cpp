#include "apps/cholesky.hpp"

#include <atomic>

namespace smpss::apps {

CholeskyTasks CholeskyTasks::register_in(Runtime& rt) {
  CholeskyTasks t;
  // spotrf is on the critical path of the factorization; the paper's
  // highpriority clause exists for exactly this kind of task.
  t.spotrf = rt.register_task_type("spotrf_t", /*high_priority=*/true);
  t.strsm = rt.register_task_type("strsm_t");
  t.ssyrk = rt.register_task_type("ssyrk_t");
  t.sgemm = rt.register_task_type("sgemm_t");
  t.get = rt.register_task_type("get_block");
  t.put = rt.register_task_type("put_block");
  return t;
}

int cholesky_seq_flat(int n, float* a, const blas::Kernels& k) {
  return k.potrf_ln(n, a);
}

namespace {

/// Shared error slot: potrf failures inside tasks surface after the barrier.
/// Passed to tasks as an opaque pointer — the paper's escape hatch for data
/// the runtime must not track.
struct ErrFlag {
  std::atomic<int> value{0};
  void set(int rc) noexcept {
    int expected = 0;
    value.compare_exchange_strong(expected, rc, std::memory_order_relaxed);
  }
};

}  // namespace

int cholesky_smpss_hyper(Runtime& rt, const CholeskyTasks& tt, HyperMatrix& A,
                         const blas::Kernels& k) {
  const int nb = A.nblocks();
  const int m = A.block_dim();
  const std::size_t be = A.block_elems();
  ErrFlag err;
  const blas::Kernels* kp = &k;

  // Fig. 4, line for line. Only lower-triangle blocks are touched.
  for (int j = 0; j < nb; ++j) {
    for (int kk = 0; kk < j; ++kk)
      for (int i = j + 1; i < nb; ++i)
        rt.spawn(tt.sgemm,
                 [kp, m](const float* a, const float* b, float* c) {
                   kp->gemm_nt_minus(m, a, b, c);
                 },
                 in(A.block(i, kk), be), in(A.block(j, kk), be),
                 inout(A.block(i, j), be));
    for (int i = 0; i < j; ++i)
      rt.spawn(tt.ssyrk,
               [kp, m](const float* a, float* c) {
                 kp->syrk_ln_minus(m, a, c);
               },
               in(A.block(j, i), be), inout(A.block(j, j), be));
    rt.spawn(tt.spotrf,
             [kp, m](float* a, ErrFlag* e) {
               if (int rc = kp->potrf_ln(m, a); rc != 0) e->set(rc);
             },
             inout(A.block(j, j), be), opaque(&err));
    for (int i = j + 1; i < nb; ++i)
      rt.spawn(tt.strsm,
               [kp, m](const float* l, float* x) { kp->trsm_rltn(m, l, x); },
               in(A.block(j, j), be), inout(A.block(i, j), be));
  }
  rt.barrier();
  return err.value.load(std::memory_order_relaxed);
}

int cholesky_smpss_flat(Runtime& rt, const CholeskyTasks& tt, int n, float* a,
                        int bs, const blas::Kernels& k) {
  SMPSS_CHECK(n % bs == 0, "block size must divide the matrix size");
  const int nb = n / bs;
  const int m = bs;
  const int lda = n;
  HyperMatrix A(nb, m, /*allocate_all=*/false);
  const std::size_t be = A.block_elems();
  ErrFlag err;
  const blas::Kernels* kp = &k;

  // Fig. 10's get_block_once: allocate the block and spawn the copy-in task
  // the first time a block is touched. The flat matrix is opaque: "pointers
  // with type void* are opaque to the runtime and are passed directly to the
  // tasks skipping any dependency analysis".
  auto get_block_once = [&](int i, int j) {
    if (A.present(i, j)) return;
    float* blk = A.ensure_block(i, j);
    rt.spawn(tt.get,
             [m, lda](const float* flat, const int& bi, const int& bj,
                      float* out_blk) { get_block(bi, bj, m, lda, flat, out_blk); },
             opaque(static_cast<const float*>(a)), value(i), value(j),
             out(blk, be));
  };

  // Fig. 9, line for line.
  for (int j = 0; j < nb; ++j) {
    for (int kk = 0; kk < j; ++kk)
      for (int i = j + 1; i < nb; ++i) {
        get_block_once(i, kk);
        get_block_once(j, kk);
        get_block_once(i, j);
        rt.spawn(tt.sgemm,
                 [kp, m](const float* x, const float* y, float* c) {
                   kp->gemm_nt_minus(m, x, y, c);
                 },
                 in(A.block(i, kk), be), in(A.block(j, kk), be),
                 inout(A.block(i, j), be));
      }
    for (int i = 0; i < j; ++i) {
      get_block_once(j, i);
      get_block_once(j, j);
      rt.spawn(tt.ssyrk,
               [kp, m](const float* x, float* c) { kp->syrk_ln_minus(m, x, c); },
               in(A.block(j, i), be), inout(A.block(j, j), be));
    }
    get_block_once(j, j);
    rt.spawn(tt.spotrf,
             [kp, m](float* x, ErrFlag* e) {
               if (int rc = kp->potrf_ln(m, x); rc != 0) e->set(rc);
             },
             inout(A.block(j, j), be), opaque(&err));
    for (int i = j + 1; i < nb; ++i) {
      get_block_once(i, j);
      rt.spawn(tt.strsm,
               [kp, m](const float* l, float* x) { kp->trsm_rltn(m, l, x); },
               in(A.block(j, j), be), inout(A.block(i, j), be));
    }
  }
  // Copy-back phase of Fig. 9: "for (i,j): if (A[i][j]) put_block(...)".
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j)
      if (A.present(i, j))
        rt.spawn(tt.put,
                 [m, lda](const float* blk, const int& bi, const int& bj,
                          float* flat) { put_block(bi, bj, m, lda, blk, flat); },
                 in(A.block(i, j), be), value(i), value(j),
                 opaque(static_cast<float*>(a)));
  rt.barrier();
  return err.value.load(std::memory_order_relaxed);
}

std::uint64_t cholesky_hyper_task_count(int nb) {
  const auto n = static_cast<std::uint64_t>(nb);
  // potrf: n, trsm: n(n-1)/2, syrk: n(n-1)/2, gemm: sum_j j*(n-1-j).
  std::uint64_t gemm = 0;
  for (std::uint64_t j = 0; j < n; ++j) gemm += j * (n - 1 - j);
  return n + n * (n - 1) + gemm;
}

std::uint64_t cholesky_flat_task_count(int nb) {
  const auto n = static_cast<std::uint64_t>(nb);
  // One get and one put per distinct lower-triangle block touched.
  return cholesky_hyper_task_count(nb) + 2 * (n * (n + 1) / 2);
}

double cholesky_flops(int n) {
  const double d = n;
  return d * d * d / 3.0;
}

}  // namespace smpss::apps
