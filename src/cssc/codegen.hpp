// C++ code generation from parsed `#pragma css` declarations: the back half
// of the paper's source-to-source compiler. For every task we emit
//
//  * a registration helper (carrying the highpriority clause), and
//  * a typed spawn adapter that wraps each parameter in the smpss::in /
//    out / inout / value / opaque call the runtime expects — sizes from the
//    dimension specifiers, regions from the region specifiers, void*
//    parameters opaque, scalars by value.
//
// The generated file is self-contained C++ that compiles against
// runtime/runtime.hpp (see examples/cssc_pipeline for the end-to-end use).
#pragma once

#include <string>

#include "cssc/pragma_parser.hpp"

namespace smpss::cssc {

struct CodegenOptions {
  std::string ns = "css_generated";  ///< namespace for the emitted helpers
};

/// Render the adapters for a whole translation unit.
std::string generate(const TranslationUnit& tu, const CodegenOptions& opts = {});

/// Render the adapter for a single task (exposed for tests).
std::string generate_task(const TaskDecl& task, const CodegenOptions& opts = {});

}  // namespace smpss::cssc
