// Parser for the `#pragma css` constructs of paper Sec. II and Sec. V.A:
//
//   #pragma css task [clause...]          (before a function decl/def)
//       clause := input(plist) | output(plist) | inout(plist)
//               | commutative(plist) | concurrent(plist) | highpriority
//       plist  := param [, param]...
//       param  := identifier [dimension...] [region...]
//       dimension := '[' expr ']'
//       region    := '{' expr '..' expr '}' | '{' expr ':' expr '}' | '{}'
//   #pragma css barrier
//   #pragma css wait on(expr [, expr]...)
//   #pragma css start
//   #pragma css finish
//
// plus the function declaration following a task pragma. Expressions inside
// dimensions/regions are captured as source text (they are C99 expressions
// evaluated in the generated code's scope, exactly as the paper specifies).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cssc/lexer.hpp"

namespace smpss::cssc {

/// Directionality clauses, including the two commuting extensions:
/// `commutative` (mutually exclusive unordered writers) and `concurrent`
/// (reduction into per-worker privates; codegen emits a Plus reduction).
enum class Direction { Input, Output, Inout, Commutative, Concurrent };

struct RegionSpec {
  enum class Kind { Bounds, Length, Full } kind = Kind::Full;
  std::string lo;          // Bounds/Length
  std::string hi_or_len;   // Bounds: upper; Length: length
};

/// One parameter occurrence inside a directionality clause.
struct ClauseParam {
  std::string name;
  std::vector<std::string> dims;       // dimension specifiers, as text
  std::vector<RegionSpec> regions;     // region specifiers (Sec. V.A)
};

struct Clause {
  Direction dir;
  std::vector<ClauseParam> params;
};

/// One parameter of the annotated C function declaration.
struct FuncParam {
  std::string type_text;               // e.g. "float", "void *"
  std::string name;
  std::vector<std::string> decl_dims;  // dims from the declaration, as text
  bool is_pointer = false;             // declared with * (or array decays)
  bool is_void_pointer = false;        // the paper's opaque pointers
};

struct TaskDecl {
  bool high_priority = false;
  std::vector<Clause> clauses;
  std::string return_type;
  std::string name;
  std::vector<FuncParam> params;
  int line = 0;

  /// The clause occurrences of parameter `name` (a parameter may appear in
  /// several clauses with different regions, Sec. V.A).
  std::vector<std::pair<Direction, const ClauseParam*>> occurrences(
      const std::string& pname) const;
};

struct OtherPragma {
  enum class Kind { Barrier, WaitOn, Start, Finish } kind;
  std::vector<std::string> wait_exprs;  // for WaitOn
  int line = 0;
};

struct TranslationUnit {
  std::vector<TaskDecl> tasks;
  std::vector<OtherPragma> others;
};

/// Parse a whole source buffer; returns nullopt and fills `error` on bad
/// syntax.
std::optional<TranslationUnit> parse_source(const std::string& source,
                                            std::string* error);

}  // namespace smpss::cssc
