#include "cssc/lexer.hpp"

#include <cctype>

namespace smpss::cssc {

namespace {
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::vector<Token> tokenize(const std::string& src, std::string* error) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  bool in_pragma = false;

  auto peek_word = [&](std::size_t at) {
    std::size_t e = at;
    while (e < src.size() && ident_char(src[e])) ++e;
    return src.substr(at, e - at);
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
      i += 2;  // line continuation: pragma keeps going
      ++line;
      continue;
    }
    if (c == '\n') {
      if (in_pragma) {
        out.push_back({TokKind::Newline, "\n", line});
        in_pragma = false;
      }
      ++i;
      ++line;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i += 2;
      continue;
    }
    if (c == '#') {
      // Expect "# pragma css" (whitespace tolerated after '#').
      std::size_t j = i + 1;
      while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (peek_word(j) == "pragma") {
        j += 6;
        while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) ++j;
        if (peek_word(j) == "css") {
          out.push_back({TokKind::PragmaCss, "#pragma css", line});
          in_pragma = true;
          i = j + 3;
          continue;
        }
      }
      // Other preprocessor line: skip it entirely.
      while (i < src.size() && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
          ++i;
          ++line;
        }
        ++i;
      }
      continue;
    }
    if (ident_start(c)) {
      std::string w = peek_word(i);
      out.push_back({TokKind::Identifier, w, line});
      i += w.size();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i;
      while (e < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[e])) ||
              src[e] == '.')) {
        // Stop a number before a ".." range operator.
        if (src[e] == '.' && e + 1 < src.size() && src[e + 1] == '.') break;
        ++e;
      }
      out.push_back({TokKind::Number, src.substr(i, e - i), line});
      i = e;
      continue;
    }
    if (c == '.' && i + 1 < src.size() && src[i + 1] == '.') {
      out.push_back({TokKind::DotDot, "..", line});
      i += 2;
      continue;
    }
    static const std::string punct = "()[]{},;*&=<>+-/%.:";
    if (punct.find(c) != std::string::npos) {
      out.push_back({TokKind::Punct, std::string(1, c), line});
      ++i;
      continue;
    }
    if (error) {
      *error = "unexpected character '" + std::string(1, c) + "' at line " +
               std::to_string(line);
    }
    return out;
  }
  out.push_back({TokKind::End, "", line});
  return out;
}

}  // namespace smpss::cssc
