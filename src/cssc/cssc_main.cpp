// cssc — command-line front end of the SMPSs source-to-source translator.
//
// Usage: cssc <input.css.c> [-o <output.hpp>] [--ns <namespace>] [--dump]
//
// Reads a C source annotated with `#pragma css` constructs and emits C++
// spawn adapters targeting the smpss runtime (see cssc/codegen.hpp).
// `--dump` prints a human-readable summary of what was parsed instead.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cssc/codegen.hpp"
#include "cssc/pragma_parser.hpp"

namespace {

const char* dir_name(smpss::cssc::Direction d) {
  using smpss::cssc::Direction;
  switch (d) {
    case Direction::Input: return "input";
    case Direction::Output: return "output";
    case Direction::Inout: return "inout";
    case Direction::Commutative: return "commutative";
    case Direction::Concurrent: return "concurrent";
  }
  return "?";
}

void dump(const smpss::cssc::TranslationUnit& tu) {
  for (const auto& t : tu.tasks) {
    std::printf("task %s (line %d)%s\n", t.name.c_str(), t.line,
                t.high_priority ? " highpriority" : "");
    for (const auto& c : t.clauses) {
      std::printf("  %s:", dir_name(c.dir));
      for (const auto& p : c.params) {
        std::printf(" %s", p.name.c_str());
        for (const auto& d : p.dims) std::printf("[%s]", d.c_str());
        for (const auto& r : p.regions) {
          using K = smpss::cssc::RegionSpec::Kind;
          if (r.kind == K::Full)
            std::printf("{}");
          else if (r.kind == K::Bounds)
            std::printf("{%s..%s}", r.lo.c_str(), r.hi_or_len.c_str());
          else
            std::printf("{%s:%s}", r.lo.c_str(), r.hi_or_len.c_str());
        }
      }
      std::printf("\n");
    }
    std::printf("  signature: %s %s(", t.return_type.c_str(), t.name.c_str());
    for (std::size_t i = 0; i < t.params.size(); ++i) {
      const auto& p = t.params[i];
      std::printf("%s%s %s", i ? ", " : "", p.type_text.c_str(),
                  p.name.c_str());
      for (const auto& d : p.decl_dims) std::printf("[%s]", d.c_str());
    }
    std::printf(")\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output, ns = "css_generated";
  bool do_dump = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--ns" && i + 1 < argc) {
      ns = argv[++i];
    } else if (arg == "--dump") {
      do_dump = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: cssc <input> [-o output.hpp] [--ns namespace] [--dump]\n");
      return 0;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "cssc: no input file\n");
    return 2;
  }
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cssc: cannot open %s\n", input.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  std::string error;
  auto tu = smpss::cssc::parse_source(buf.str(), &error);
  if (!tu) {
    std::fprintf(stderr, "cssc: %s: %s\n", input.c_str(), error.c_str());
    return 1;
  }
  if (do_dump) {
    dump(*tu);
    return 0;
  }
  smpss::cssc::CodegenOptions opts;
  opts.ns = ns;
  std::string code = smpss::cssc::generate(*tu, opts);
  if (output.empty()) {
    std::cout << code;
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cssc: cannot write %s\n", output.c_str());
      return 2;
    }
    out << code;
  }
  return 0;
}
