#include "cssc/pragma_parser.hpp"

namespace smpss::cssc {

std::vector<std::pair<Direction, const ClauseParam*>> TaskDecl::occurrences(
    const std::string& pname) const {
  std::vector<std::pair<Direction, const ClauseParam*>> out;
  for (const Clause& c : clauses)
    for (const ClauseParam& p : c.params)
      if (p.name == pname) out.emplace_back(c.dir, &p);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, std::string* error)
      : toks_(std::move(toks)), error_(error) {}

  std::optional<TranslationUnit> run() {
    TranslationUnit tu;
    while (!at_end()) {
      if (cur().kind == TokKind::PragmaCss) {
        if (!parse_pragma(tu)) return std::nullopt;
      } else {
        advance();  // plain program text: skip
      }
    }
    return tu;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at_end() const { return cur().kind == TokKind::End; }
  void advance() {
    if (!at_end()) ++pos_;
  }
  bool is_ident(const char* s) const {
    return cur().kind == TokKind::Identifier && cur().text == s;
  }
  bool is_punct(char c) const {
    return cur().kind == TokKind::Punct && cur().text[0] == c;
  }
  bool fail(const std::string& msg) {
    if (error_)
      *error_ = msg + " at line " + std::to_string(cur().line);
    return false;
  }
  bool expect_punct(char c, const char* what) {
    if (!is_punct(c)) return fail(std::string("expected '") + c + "' in " + what);
    advance();
    return true;
  }
  void skip_newlines() {
    while (cur().kind == TokKind::Newline) advance();
  }

  /// Collect expression text until a closing delimiter at depth 0 (one of
  /// the characters in `stoppers`). Brackets/parens/braces nest.
  std::string capture_expr(const std::string& stoppers) {
    std::string out;
    int depth = 0;
    while (!at_end() && cur().kind != TokKind::Newline) {
      if (depth == 0 && cur().kind == TokKind::Punct &&
          stoppers.find(cur().text[0]) != std::string::npos)
        break;
      if (cur().kind == TokKind::DotDot && depth == 0 &&
          stoppers.find('~') != std::string::npos)
        break;  // '~' in stoppers means "stop at ..'"
      if (is_punct('(') || is_punct('[') || is_punct('{')) ++depth;
      if (is_punct(')') || is_punct(']') || is_punct('}')) --depth;
      if (!out.empty() && (cur().kind == TokKind::Identifier ||
                           cur().kind == TokKind::Number))
        out += ' ';
      out += cur().text;
      advance();
    }
    return out;
  }

  bool parse_pragma(TranslationUnit& tu) {
    int line = cur().line;
    advance();  // PragmaCss
    if (is_ident("task")) {
      advance();
      return parse_task(tu, line);
    }
    if (is_ident("barrier")) {
      advance();
      tu.others.push_back({OtherPragma::Kind::Barrier, {}, line});
      skip_newlines();
      return true;
    }
    if (is_ident("wait")) {
      advance();
      if (!is_ident("on")) return fail("expected 'on' after 'wait'");
      advance();
      if (!expect_punct('(', "wait on")) return false;
      OtherPragma p{OtherPragma::Kind::WaitOn, {}, line};
      while (!is_punct(')')) {
        p.wait_exprs.push_back(capture_expr(",)"));
        if (is_punct(',')) advance();
        if (at_end() || cur().kind == TokKind::Newline)
          return fail("unterminated wait on(...)");
      }
      advance();  // ')'
      tu.others.push_back(std::move(p));
      skip_newlines();
      return true;
    }
    if (is_ident("start") || is_ident("finish")) {
      tu.others.push_back({is_ident("start") ? OtherPragma::Kind::Start
                                             : OtherPragma::Kind::Finish,
                           {},
                           line});
      advance();
      skip_newlines();
      return true;
    }
    return fail("unknown css pragma '" + cur().text + "'");
  }

  bool parse_task(TranslationUnit& tu, int line) {
    TaskDecl task;
    task.line = line;
    while (cur().kind != TokKind::Newline && !at_end()) {
      if (is_ident("highpriority")) {
        task.high_priority = true;
        advance();
        continue;
      }
      Direction dir;
      if (is_ident("input")) {
        dir = Direction::Input;
      } else if (is_ident("output")) {
        dir = Direction::Output;
      } else if (is_ident("inout")) {
        dir = Direction::Inout;
      } else if (is_ident("commutative")) {
        dir = Direction::Commutative;
      } else if (is_ident("concurrent")) {
        dir = Direction::Concurrent;
      } else {
        return fail("unknown task clause '" + cur().text + "'");
      }
      advance();
      if (!expect_punct('(', "directionality clause")) return false;
      Clause clause{dir, {}};
      while (!is_punct(')')) {
        ClauseParam p;
        if (cur().kind != TokKind::Identifier)
          return fail("expected parameter name in clause");
        p.name = cur().text;
        advance();
        while (is_punct('[')) {  // dimension specifiers
          advance();
          p.dims.push_back(capture_expr("]"));
          if (!expect_punct(']', "dimension specifier")) return false;
        }
        while (is_punct('{')) {  // region specifiers (Sec. V.A)
          advance();
          RegionSpec r;
          if (is_punct('}')) {
            r.kind = RegionSpec::Kind::Full;
          } else {
            r.lo = capture_expr(":}~");
            if (cur().kind == TokKind::DotDot) {
              advance();
              r.kind = RegionSpec::Kind::Bounds;
              r.hi_or_len = capture_expr("}");
            } else if (is_punct(':')) {
              advance();
              r.kind = RegionSpec::Kind::Length;
              r.hi_or_len = capture_expr("}");
            } else {
              return fail("expected '..' or ':' in region specifier");
            }
          }
          if (!expect_punct('}', "region specifier")) return false;
          p.regions.push_back(std::move(r));
        }
        if (!p.regions.empty() && (dir == Direction::Commutative ||
                                   dir == Direction::Concurrent))
          return fail("commutative/concurrent clauses do not accept region "
                      "specifiers (commuting modes are whole-object only)");
        clause.params.push_back(std::move(p));
        if (is_punct(',')) advance();
      }
      advance();  // ')'
      task.clauses.push_back(std::move(clause));
    }
    skip_newlines();
    if (!parse_function_header(task)) return false;
    tu.tasks.push_back(std::move(task));
    return true;
  }

  /// Parse `ret name(type p [dims], ...)` up to ';' or '{'.
  bool parse_function_header(TaskDecl& task) {
    // Return type: identifiers + '*' until we see ident '(' lookahead.
    std::string ret;
    while (cur().kind == TokKind::Identifier || is_punct('*')) {
      // Is this identifier the function name? (next token is '(')
      if (cur().kind == TokKind::Identifier && pos_ + 1 < toks_.size() &&
          toks_[pos_ + 1].kind == TokKind::Punct &&
          toks_[pos_ + 1].text == "(") {
        task.name = cur().text;
        advance();
        break;
      }
      if (!ret.empty()) ret += ' ';
      ret += cur().text;
      advance();
    }
    if (task.name.empty()) return fail("expected function name after task pragma");
    task.return_type = ret.empty() ? "void" : ret;
    if (!expect_punct('(', "function declaration")) return false;
    while (!is_punct(')')) {
      FuncParam p;
      // type: identifiers, '*', possibly "(*name)[dims]" function-pointer-
      // style array-of-pointer declarations are not supported.
      while (cur().kind == TokKind::Identifier || is_punct('*') ||
             is_punct('&')) {
        // The last identifier before ',' / ')' / '[' is the parameter name.
        if (cur().kind == TokKind::Identifier && pos_ + 1 < toks_.size()) {
          const Token& nxt = toks_[pos_ + 1];
          bool terminator =
              nxt.kind == TokKind::Punct &&
              (nxt.text == "," || nxt.text == ")" || nxt.text == "[");
          if (terminator) {
            p.name = cur().text;
            advance();
            break;
          }
        }
        if (is_punct('*') || is_punct('&')) {
          p.is_pointer = true;  // keep type_text as the base type only
          advance();
          continue;
        }
        if (!p.type_text.empty()) p.type_text += ' ';
        p.type_text += cur().text;
        advance();
      }
      if (p.name.empty()) return fail("expected parameter name in declaration");
      while (is_punct('[')) {
        advance();
        p.decl_dims.push_back(capture_expr("]"));
        if (!expect_punct(']', "array dimension")) return false;
      }
      if (!p.decl_dims.empty()) p.is_pointer = true;  // arrays decay
      p.is_void_pointer = p.type_text == "void" && p.is_pointer &&
                          p.decl_dims.empty();
      task.params.push_back(std::move(p));
      if (is_punct(',')) advance();
    }
    advance();  // ')'
    // Trailing ';' or '{' belongs to the program; leave it in place.
    return true;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<TranslationUnit> parse_source(const std::string& source,
                                            std::string* error) {
  std::string lex_error;
  std::vector<Token> toks = tokenize(source, &lex_error);
  if (!lex_error.empty()) {
    if (error) *error = lex_error;
    return std::nullopt;
  }
  return Parser(std::move(toks), error).run();
}

}  // namespace smpss::cssc
