// Tokenizer for the `cssc` translator. Handles just enough C to read
// `#pragma css` lines and the function declaration that follows a task
// pragma: identifiers, numbers, punctuation (including the `..` range token
// of region specifiers), comments, and backslash line continuations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace smpss::cssc {

enum class TokKind {
  Identifier,
  Number,
  Punct,     // single char: ( ) [ ] { } , ; * & = < > + - / % . :
  DotDot,    // ".."
  PragmaCss, // a "#pragma css" introducer (one token)
  Newline,   // significant inside pragma lines
  End,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// Tokenize a whole source buffer. Newline tokens are emitted only while a
/// pragma line is open (pragmas are line-oriented; declarations are not).
std::vector<Token> tokenize(const std::string& source, std::string* error);

}  // namespace smpss::cssc
