// Hyper-matrices (paper Sec. IV): "1-level hyper-matrices of N by N blocks,
// each of M by M elements" — an N x N array of pointers to contiguous
// M x M row-major blocks. NULL entries make the same structure serve the
// sparse algorithms of Fig. 3 ("This code dynamically allocates memory and
// executes tasks according to the data needs").
//
// Blocks are allocated cache-line aligned, one allocation per block, because
// block addresses are exactly the task-parameter addresses the dependency
// analyzer keys on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace smpss {

class HyperMatrix {
 public:
  /// n x n blocks of m x m floats; `allocate_all` false starts fully sparse.
  HyperMatrix(int n, int m, bool allocate_all = true);
  ~HyperMatrix();

  HyperMatrix(const HyperMatrix&) = delete;
  HyperMatrix& operator=(const HyperMatrix&) = delete;
  HyperMatrix(HyperMatrix&& o) noexcept;

  int nblocks() const noexcept { return n_; }
  int block_dim() const noexcept { return m_; }
  std::size_t block_elems() const noexcept {
    return static_cast<std::size_t>(m_) * m_;
  }

  /// Block pointer (may be nullptr in sparse use).
  float* block(int i, int j) noexcept { return blocks_[index(i, j)]; }
  const float* block(int i, int j) const noexcept {
    return blocks_[index(i, j)];
  }

  bool present(int i, int j) const noexcept {
    return blocks_[index(i, j)] != nullptr;
  }

  /// Allocate (zero-filled) block if absent; returns it (the alloc_block()
  /// of Fig. 3 / Fig. 10).
  float* ensure_block(int i, int j);

  std::size_t allocated_blocks() const noexcept;

  /// Set every allocated block to zero.
  void fill_zero();

 private:
  std::size_t index(int i, int j) const noexcept {
    SMPSS_ASSERT(i >= 0 && i < n_ && j >= 0 && j < n_);
    return static_cast<std::size_t>(i) * n_ + j;
  }

  int n_;
  int m_;
  std::vector<float*> blocks_;
};

/// Copy a flat n*m x n*m row-major matrix into (dense) hyper-matrix form.
void blocked_from_flat(HyperMatrix& dst, const float* flat);

/// Copy a hyper-matrix back to flat row-major form; absent blocks write 0.
void flat_from_blocked(float* flat, const HyperMatrix& src);

/// The get_block/put_block task bodies of Fig. 10: copy one m x m block
/// between a flat n*m x n*m matrix (opaque to the runtime) and contiguous
/// block storage. `lda` is the flat leading dimension (= n*m).
void get_block(int i, int j, int m, int lda, const float* flat, float* block);
void put_block(int i, int j, int m, int lda, const float* block, float* flat);

}  // namespace smpss
