// Flat row-major matrix helpers: aligned owning buffer, deterministic random
// and SPD generators, and comparison utilities used by the validation tests
// and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smpss {

/// Owning, 64-byte-aligned, row-major n x n float matrix.
class FlatMatrix {
 public:
  explicit FlatMatrix(int n);
  ~FlatMatrix();
  FlatMatrix(const FlatMatrix& o);
  FlatMatrix& operator=(const FlatMatrix&) = delete;
  FlatMatrix(FlatMatrix&& o) noexcept;

  int n() const noexcept { return n_; }
  float* data() noexcept { return data_; }
  const float* data() const noexcept { return data_; }
  float& at(int i, int j) noexcept {
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }
  float at(int i, int j) const noexcept {
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }
  std::size_t bytes() const noexcept {
    return sizeof(float) * static_cast<std::size_t>(n_) * n_;
  }

 private:
  int n_;
  float* data_;
};

/// Uniform [-1, 1) entries, deterministic in `seed`.
void fill_random(FlatMatrix& a, std::uint64_t seed);

/// Symmetric positive definite: A = 0.5 R + 0.5 R^T scaled small + n on the
/// diagonal (diagonally dominant, hence SPD and well-conditioned in float).
void fill_spd(FlatMatrix& a, std::uint64_t seed);

/// max_ij |a_ij - b_ij|.
float max_abs_diff(const FlatMatrix& a, const FlatMatrix& b);

/// max over the lower triangle only (Cholesky writes only the lower part).
float max_abs_diff_lower(const FlatMatrix& a, const FlatMatrix& b);

/// Frobenius norm.
double frob_norm(const FlatMatrix& a);

}  // namespace smpss
