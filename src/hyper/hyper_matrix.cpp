#include "hyper/hyper_matrix.hpp"

#include <cstring>

#include "common/aligned_alloc.hpp"
#include "common/cache.hpp"

namespace smpss {

HyperMatrix::HyperMatrix(int n, int m, bool allocate_all)
    : n_(n), m_(m), blocks_(static_cast<std::size_t>(n) * n, nullptr) {
  SMPSS_CHECK(n > 0 && m > 0, "hyper-matrix dimensions must be positive");
  if (allocate_all) {
    for (int i = 0; i < n_; ++i)
      for (int j = 0; j < n_; ++j) ensure_block(i, j);
  }
}

HyperMatrix::~HyperMatrix() {
  for (float* b : blocks_)
    if (b) aligned_free_bytes(b);
}

HyperMatrix::HyperMatrix(HyperMatrix&& o) noexcept
    : n_(o.n_), m_(o.m_), blocks_(std::move(o.blocks_)) {
  o.blocks_.clear();
}

float* HyperMatrix::ensure_block(int i, int j) {
  float*& slot = blocks_[index(i, j)];
  if (!slot) {
    std::size_t bytes = sizeof(float) * block_elems();
    slot = static_cast<float*>(aligned_alloc_bytes(bytes, kDataAlignment));
    SMPSS_CHECK(slot != nullptr, "out of memory allocating block");
    std::memset(slot, 0, bytes);
  }
  return slot;
}

std::size_t HyperMatrix::allocated_blocks() const noexcept {
  std::size_t n = 0;
  for (float* b : blocks_)
    if (b) ++n;
  return n;
}

void HyperMatrix::fill_zero() {
  std::size_t bytes = sizeof(float) * block_elems();
  for (float* b : blocks_)
    if (b) std::memset(b, 0, bytes);
}

void blocked_from_flat(HyperMatrix& dst, const float* flat) {
  const int n = dst.nblocks(), m = dst.block_dim();
  const int lda = n * m;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      get_block(i, j, m, lda, flat, dst.ensure_block(i, j));
}

void flat_from_blocked(float* flat, const HyperMatrix& src) {
  const int n = src.nblocks(), m = src.block_dim();
  const int lda = n * m;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const float* b = src.block(i, j);
      if (b) {
        put_block(i, j, m, lda, b, flat);
      } else {
        for (int r = 0; r < m; ++r)
          std::memset(flat + static_cast<std::size_t>(i * m + r) * lda + j * m,
                      0, sizeof(float) * static_cast<std::size_t>(m));
      }
    }
}

void get_block(int i, int j, int m, int lda, const float* flat, float* block) {
  for (int r = 0; r < m; ++r)
    std::memcpy(block + static_cast<std::size_t>(r) * m,
                flat + static_cast<std::size_t>(i * m + r) * lda + j * m,
                sizeof(float) * static_cast<std::size_t>(m));
}

void put_block(int i, int j, int m, int lda, const float* block, float* flat) {
  for (int r = 0; r < m; ++r)
    std::memcpy(flat + static_cast<std::size_t>(i * m + r) * lda + j * m,
                block + static_cast<std::size_t>(r) * m,
                sizeof(float) * static_cast<std::size_t>(m));
}

}  // namespace smpss
