#include "hyper/flat_matrix.hpp"

#include <cmath>
#include <cstring>

#include "common/aligned_alloc.hpp"
#include "common/cache.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace smpss {

FlatMatrix::FlatMatrix(int n) : n_(n) {
  SMPSS_CHECK(n > 0, "matrix dimension must be positive");
  data_ = static_cast<float*>(aligned_alloc_bytes(bytes(), kDataAlignment));
  SMPSS_CHECK(data_ != nullptr, "out of memory");
  std::memset(data_, 0, bytes());
}

FlatMatrix::~FlatMatrix() {
  if (data_) aligned_free_bytes(data_);
}

FlatMatrix::FlatMatrix(const FlatMatrix& o) : n_(o.n_) {
  data_ = static_cast<float*>(aligned_alloc_bytes(bytes(), kDataAlignment));
  SMPSS_CHECK(data_ != nullptr, "out of memory");
  std::memcpy(data_, o.data_, bytes());
}

FlatMatrix::FlatMatrix(FlatMatrix&& o) noexcept : n_(o.n_), data_(o.data_) {
  o.data_ = nullptr;
}

void fill_random(FlatMatrix& a, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t total = static_cast<std::size_t>(a.n()) * a.n();
  float* p = a.data();
  for (std::size_t i = 0; i < total; ++i) p[i] = 2.0f * rng.next_float() - 1.0f;
}

void fill_spd(FlatMatrix& a, std::uint64_t seed) {
  const int n = a.n();
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= i; ++j) {
      float v = (2.0f * rng.next_float() - 1.0f) / static_cast<float>(n);
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  for (int i = 0; i < n; ++i) a.at(i, i) += 2.0f;
}

float max_abs_diff(const FlatMatrix& a, const FlatMatrix& b) {
  SMPSS_CHECK(a.n() == b.n(), "dimension mismatch");
  float m = 0.0f;
  const std::size_t total = static_cast<std::size_t>(a.n()) * a.n();
  for (std::size_t i = 0; i < total; ++i)
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  return m;
}

float max_abs_diff_lower(const FlatMatrix& a, const FlatMatrix& b) {
  SMPSS_CHECK(a.n() == b.n(), "dimension mismatch");
  float m = 0.0f;
  for (int i = 0; i < a.n(); ++i)
    for (int j = 0; j <= i; ++j)
      m = std::max(m, std::fabs(a.at(i, j) - b.at(i, j)));
  return m;
}

double frob_norm(const FlatMatrix& a) {
  double s = 0.0;
  const std::size_t total = static_cast<std::size_t>(a.n()) * a.n();
  for (std::size_t i = 0; i < total; ++i) {
    double v = a.data()[i];
    s += v * v;
  }
  return std::sqrt(s);
}

}  // namespace smpss
