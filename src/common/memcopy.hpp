// Overlap-safe byte copy for the data-movement paths.
//
// The runtime's copy-in/copy-back moves (rename staging, group inherit
// copies, shared-segment publish/fetch in the multi-process backend) are
// *usually* between disjoint allocations — but "usually" stopped being a
// proof once transfers can stage through a shared segment whose layout the
// runtime does not control: a user can hand the runtime a datum that
// already lives inside the segment, making src and dst ranges of one copy
// overlap. memcpy on overlapping ranges is UB; memmove costs the same on
// every libc that matters (it dispatches to the memcpy path when the
// ranges are disjoint), so the data-movement paths use this helper and the
// question disappears.
#pragma once

#include <cstddef>
#include <cstring>

namespace smpss {

/// True when [a, a+an) and [b, b+bn) share at least one byte.
inline bool ranges_overlap(const void* a, std::size_t an, const void* b,
                           std::size_t bn) noexcept {
  const char* ca = static_cast<const char*>(a);
  const char* cb = static_cast<const char*>(b);
  return ca < cb + bn && cb < ca + an;
}

/// Copy `bytes` from `src` to `dst`, correct for overlapping ranges.
inline void safe_copy(void* dst, const void* src, std::size_t bytes) noexcept {
  std::memmove(dst, src, bytes);
}

}  // namespace smpss
