// Single-writer statistics cells shared by the runtime's per-worker counter
// blocks and the slab pools. Kept in common/ so low-level allocators can
// count without depending on runtime/ headers.
#pragma once

#include <atomic>
#include <cstdint>

namespace smpss {

/// Single-writer statistics cell: updated by exactly one thread with a
/// relaxed load+store pair (a plain add in machine code — no RMW needed
/// because there is only one writer), read by concurrent snapshots without
/// formal data races.
class Counter64 {
 public:
  void add(std::uint64_t d) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
  }
  Counter64& operator+=(std::uint64_t d) noexcept {
    add(d);
    return *this;
  }
  Counter64& operator++() noexcept {
    add(1);
    return *this;
  }
  std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

}  // namespace smpss
