#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace smpss {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return std::nullopt;
  return std::string(v);
}

std::optional<long long> env_int(const char* name) {
  auto s = env_string(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str()) return std::nullopt;
  return v;
}

std::optional<bool> env_bool(const char* name) {
  auto s = env_string(name);
  if (!s) return std::nullopt;
  std::string low = *s;
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (low == "1" || low == "true" || low == "on" || low == "yes") return true;
  if (low == "0" || low == "false" || low == "off" || low == "no") return false;
  return std::nullopt;
}

}  // namespace smpss
