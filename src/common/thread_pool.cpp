#include "common/thread_pool.hpp"

#include "common/check.hpp"

namespace smpss {

ThreadPool::ThreadPool(unsigned nthreads) : nthreads_(nthreads ? nthreads : 1) {
  threads_.reserve(nthreads_ - 1);
  for (unsigned tid = 1; tid < nthreads_; ++tid)
    threads_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  if (nthreads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    done_count_ = 0;
    ++job_epoch_;
  }
  cv_job_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return done_count_ == nthreads_ - 1; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned tid) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] { return shutdown_ || job_epoch_ != seen; });
      if (shutdown_) return;
      seen = job_epoch_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++done_count_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace smpss
