// Spin synchronization primitives for the short critical sections in the
// task-graph bookkeeping (successor-list append vs. completion race).
#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace smpss {

/// One polite busy-wait iteration.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential-ish backoff: spin politely, then start yielding to the OS.
class Backoff {
 public:
  void pause() noexcept {
    if (count_ < kSpinLimit) {
      for (int i = 0; i < (1 << count_); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }
  void reset() noexcept { count_ = 0; }

 private:
  static constexpr int kSpinLimit = 6;
  int count_ = 0;
};

/// Tiny test-and-test-and-set spin lock. Critical sections guarded by this
/// lock are a handful of instructions (flag flip + list splice); a futex
/// would cost more than the section itself.
class SpinLock {
 public:
  void lock() noexcept {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      Backoff b;
      while (flag_.load(std::memory_order_relaxed)) b.pause();
    }
  }
  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace smpss
