#include "common/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace smpss {

unsigned hardware_concurrency() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  unsigned n = std::thread::hardware_concurrency();
  return n ? n : 1;
}

bool pin_current_thread(unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t avail;
  CPU_ZERO(&avail);
  if (sched_getaffinity(0, sizeof(avail), &avail) != 0) return false;
  // Collect the allowed CPUs and pick round-robin among them so that pinning
  // respects cpusets/containers the way the paper's Altix cpuset did.
  int allowed[CPU_SETSIZE];
  int count = 0;
  for (int c = 0; c < CPU_SETSIZE; ++c)
    if (CPU_ISSET(c, &avail)) allowed[count++] = c;
  if (count == 0) return false;
  cpu_set_t target;
  CPU_ZERO(&target);
  CPU_SET(allowed[cpu % static_cast<unsigned>(count)], &target);
  return pthread_setaffinity_np(pthread_self(), sizeof(target), &target) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace smpss
