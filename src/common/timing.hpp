// Wall-clock helpers used by the tracer and the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace smpss {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Seconds between two now_ns() stamps.
inline double seconds_between(std::uint64_t t0, std::uint64_t t1) noexcept {
  return static_cast<double>(t1 - t0) * 1e-9;
}

/// Scope timer accumulating into a double (seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) noexcept : sink_(sink), t0_(now_ns()) {}
  ~ScopedTimer() { sink_ += seconds_between(t0_, now_ns()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& sink_;
  std::uint64_t t0_;
};

}  // namespace smpss
