#include "common/aligned_alloc.hpp"

#include <cstdlib>

#include "common/cache.hpp"
#include "common/check.hpp"

namespace smpss {

void* aligned_alloc_bytes(std::size_t size, std::size_t align) {
  SMPSS_ASSERT(align >= sizeof(void*) && (align & (align - 1)) == 0);
  if (size == 0) size = align;  // keep distinct non-null pointers for 0-size
  void* p = nullptr;
  // posix_memalign keeps the free() contract simple across glibc/musl.
  if (posix_memalign(&p, align, align_up(size, align)) != 0) return nullptr;
  return p;
}

void aligned_free_bytes(void* p) noexcept { std::free(p); }

}  // namespace smpss
