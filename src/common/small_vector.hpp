// A minimal inline-capacity vector for trivially-destructible-or-not payloads.
//
// Task nodes carry short lists (parameters, successors, copy ops) whose
// typical length is 2-8; heap-allocating a std::vector per list would put an
// allocation on the task-creation fast path, which the paper's granularity
// budget (~250 us/task) cannot afford at small block sizes.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.hpp"

namespace smpss {

template <typename T, std::size_t InlineCapacity>
class SmallVector {
  static_assert(InlineCapacity > 0);

 public:
  SmallVector() noexcept : data_(inline_data()), capacity_(InlineCapacity) {}

  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    move_from(std::move(other));
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_and_release();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { clear_and_release(); }

  T& push_back(const T& v) { return emplace_back(v); }
  T& push_back(T&& v) { return emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    SMPSS_ASSERT(size_ > 0);
    data_[--size_].~T();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  T& operator[](std::size_t i) {
    SMPSS_ASSERT(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    SMPSS_ASSERT(i < size_);
    return data_[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool is_inline() const noexcept { return data_ == inline_data(); }

 private:
  T* inline_data() noexcept { return std::launder(reinterpret_cast<T*>(storage_)); }
  const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_));
  }

  void grow() {
    std::size_t new_cap = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(data_, std::align_val_t{alignof(T)});
    data_ = fresh;
    capacity_ = new_cap;
  }

  void clear_and_release() noexcept {
    clear();
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
      data_ = inline_data();
      capacity_ = InlineCapacity;
    }
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      for (std::size_t i = 0; i < other.size_; ++i)
        emplace_back(std::move(other.data_[i]));
      other.clear();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = InlineCapacity;
    }
  }

  alignas(T) unsigned char storage_[InlineCapacity * sizeof(T)];
  T* data_;
  std::size_t size_ = 0;
  std::size_t capacity_;
};

}  // namespace smpss
