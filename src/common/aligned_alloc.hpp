// Cache-line-aligned allocation with byte accounting.
//
// The renaming engine (paper Sec. II) allocates runtime-owned buffers for
// renamed data versions. Those allocations are (a) aligned — the paper notes
// performance gains from "realigning data due to renamings" — and (b)
// accounted, because renamed-storage footprint is one of the runtime's
// blocking conditions (Sec. III: "a memory limit").
#pragma once

#include <atomic>
#include <cstddef>

namespace smpss {

/// Allocate `size` bytes aligned to `align` (power of two, >= sizeof(void*)).
/// Returns nullptr only on out-of-memory.
void* aligned_alloc_bytes(std::size_t size, std::size_t align);

/// Free memory obtained from aligned_alloc_bytes.
void aligned_free_bytes(void* p) noexcept;

/// Monotonic + current counters for a pool of tracked allocations.
/// All operations are thread-safe; `current()` is monotonic-read racy by
/// design (used for watermark checks, not exact accounting).
class MemoryAccountant {
 public:
  void add(std::size_t bytes) noexcept {
    current_.fetch_add(bytes, std::memory_order_relaxed);
    total_.fetch_add(bytes, std::memory_order_relaxed);
    // Best-effort high-watermark update; racy CAS loop is fine here.
    std::size_t cur = current_.load(std::memory_order_relaxed);
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
    }
  }
  void sub(std::size_t bytes) noexcept {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  std::size_t current() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }
  std::size_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  std::size_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> total_{0};
};

}  // namespace smpss
