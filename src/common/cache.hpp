// Cache-geometry constants and alignment helpers shared across the runtime.
//
// The SMPSs scheduler is explicitly cache-driven (paper Sec. III: keep each
// thread on a different region of the graph to minimize coherency traffic),
// so padding/alignment of the shared scheduling structures matters.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smpss {

/// Size every hot shared structure is padded to. 64 bytes covers all current
/// x86-64 and most AArch64 parts; 128 would cover adjacent-line prefetch but
/// doubles the footprint of the per-worker arrays.
inline constexpr std::size_t kCacheLineSize = 64;

/// Alignment used for renamed data storage. The paper attributes part of the
/// 1-thread N-Queens win to "the runtime realigning data due to renamings";
/// renamed buffers therefore always start on a cache-line boundary.
inline constexpr std::size_t kDataAlignment = 64;

/// Round `n` up to the next multiple of `align` (power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// True if `p` is aligned to `align` (power of two).
inline bool is_aligned(const void* p, std::size_t align) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

}  // namespace smpss
