// xoshiro256** — a small, fast, seedable PRNG for workload generators and
// property tests. Deterministic across platforms (unlike std::default_random_engine),
// which keeps the test suites reproducible.
#pragma once

#include <cstdint>

namespace smpss {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // splitmix64 seeding as recommended by the xoshiro authors.
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;  // modulo bias irrelevant for test workloads
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace smpss
