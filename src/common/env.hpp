// Environment-variable configuration, mirroring the CSS_* variables the
// original SMPSs distribution read (CSS_NUM_CPUS and friends). We use the
// SMPSS_ prefix; see runtime/config.hpp for the full list.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace smpss {

std::optional<std::string> env_string(const char* name);
std::optional<long long> env_int(const char* name);
std::optional<bool> env_bool(const char* name);  // accepts 0/1/true/false/on/off

}  // namespace smpss
