// Pooled fixed-size block allocation for the task lifecycle hot path.
//
// Every spawn used to heap-allocate a TaskNode (and sometimes a closure
// block) and every retire freed it — two trips through the global allocator
// per task, which at the paper's target granularity is a measurable slice of
// the per-task overhead floor (QuickSched drives the same overhead to tens
// of nanoseconds with pooled task storage). This pool replaces malloc/free
// in steady state with:
//
//   * per-owner free lists — one cache-line-padded slot per submitting
//     thread (the main thread and each worker), popped/pushed with plain
//     loads and stores, no atomics, because only the owning thread touches
//     its local list;
//   * a remote-free MPSC stack per slot — a block is returned by whichever
//     worker retires the task, which is usually not the thread that
//     allocated it; the retiring thread CAS-pushes the block onto its
//     *owner's* remote stack and the owner reclaims the whole stack with a
//     single exchange on its next allocation (push-only CAS + whole-list
//     takeover by one consumer: no ABA window);
//   * slabs — blocks are carved in batches from cache-line-aligned slab
//     allocations, kept on a global spin-locked overflow list; a slot
//     refills from it in batches, so the global lock is amortized over
//     `cache_blocks` allocations;
//   * a per-block generation counter — bumped every time a block is handed
//     out, so a recycled TaskNode can be distinguished from its previous
//     tenant (trace/graph identity additionally rests on the runtime's
//     monotonic sequence numbers, which never recycle).
//
// Total footprint is bounded by the peak number of live blocks (the task
// window bounds live tasks), plus one partially-used slab per pool: blocks
// are never returned to the OS until the pool is destroyed, which is exactly
// the reuse the hot path wants.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_alloc.hpp"
#include "common/cache.hpp"
#include "common/check.hpp"
#include "common/counters.hpp"
#include "common/spin.hpp"

namespace smpss {

struct PoolStats {
  std::uint64_t hits = 0;     ///< allocations served from a local/remote list
  std::uint64_t refills = 0;  ///< trips to the global overflow list
  std::uint64_t slabs = 0;    ///< slab allocations (the only real mallocs)
};

class SlabPool {
 public:
  /// A pool of `payload_bytes`/`payload_align` blocks with `owner_slots`
  /// single-owner free lists (slot i is only ever allocated from by one
  /// thread at a time) plus one internal lock-guarded slot for foreign
  /// threads. `cache_blocks` is the refill batch size per slot.
  SlabPool(std::size_t payload_bytes, std::size_t payload_align,
           unsigned owner_slots, unsigned cache_blocks)
      : payload_offset_(align_up(sizeof(Header), payload_align)),
        stride_(align_up(payload_offset_ + payload_bytes, kCacheLineSize)),
        owner_slots_(owner_slots),
        cache_blocks_(cache_blocks < 1 ? 1 : cache_blocks),
        blocks_per_slab_(cache_blocks_ < 16 ? 16 : cache_blocks_),
        slots_(std::make_unique<Slot[]>(owner_slots + 1)) {
    SMPSS_CHECK(payload_align <= kCacheLineSize &&
                    (payload_align & (payload_align - 1)) == 0,
                "slab pool payload alignment must be a power of two <= a "
                "cache line");
    SMPSS_CHECK(owner_slots >= 1, "slab pool needs at least one owner slot");
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Frees the slabs. The caller must guarantee no block is still live —
  /// for the runtime this holds once all tasks have retired (barrier/drain)
  /// and the dependency tables have been flushed.
  ~SlabPool() {
    for (void* s : slabs_) aligned_free_bytes(s);
  }

  /// Allocate one block. `slot` identifies the caller's free list; a value
  /// >= the owner-slot count routes to the internal foreign slot, which is
  /// lock-guarded (foreign submitters are rare and may be concurrent).
  void* allocate(unsigned slot) {
    const bool foreign = slot >= owner_slots_;
    const unsigned idx = foreign ? owner_slots_ : slot;
    if (foreign) foreign_mu_.lock();
    Header* h = take_block(slots_[idx]);
    if (foreign) foreign_mu_.unlock();
    h->owner = idx;
    ++h->generation;
    return payload_of(h);
  }

  /// Return a block from any thread: CAS-push onto the owning slot's remote
  /// stack. The owner reclaims the whole stack on its next allocation.
  void deallocate(void* payload) noexcept {
    Header* h = header_of(payload);
    std::atomic<Header*>& top = slots_[h->owner].remote;
    Header* old = top.load(std::memory_order_relaxed);
    do {
      h->next.store(old, std::memory_order_relaxed);
    } while (!top.compare_exchange_weak(old, h, std::memory_order_release,
                                        std::memory_order_relaxed));
  }

  /// Generation of the block's current tenancy (bumped at every allocate).
  std::uint32_t generation_of(const void* payload) const noexcept {
    return header_of(payload)->generation;
  }

  PoolStats stats() const noexcept {
    PoolStats s;
    for (unsigned i = 0; i <= owner_slots_; ++i) {
      s.hits += slots_[i].hits.get();
      s.refills += slots_[i].refills.get();
    }
    s.slabs = slab_count_.load(std::memory_order_relaxed);
    return s;
  }

  std::size_t block_payload_capacity() const noexcept {
    return stride_ - payload_offset_;
  }

 private:
  /// Lives at the front of every block. `next` links the block through
  /// whichever free list currently holds it (local lists use relaxed
  /// accesses — single owner; the remote stack synchronizes through the CAS
  /// on its top pointer). `owner`/`generation` are plain fields written only
  /// by the thread that privately holds the block at that moment.
  struct Header {
    std::atomic<Header*> next{nullptr};
    std::uint32_t owner = 0;
    std::uint32_t generation = 0;
  };

  struct alignas(kCacheLineSize) Slot {
    Header* local = nullptr;  // owner-only LIFO
    Counter64 hits;
    Counter64 refills;
    alignas(kCacheLineSize) std::atomic<Header*> remote{nullptr};
  };

  Header* header_of(const void* payload) const noexcept {
    return reinterpret_cast<Header*>(
        reinterpret_cast<std::uintptr_t>(payload) - payload_offset_);
  }
  void* payload_of(Header* h) const noexcept {
    return reinterpret_cast<char*>(h) + payload_offset_;
  }

  Header* take_block(Slot& sl) {
    Header* h = sl.local;
    if (h != nullptr) {
      sl.local = h->next.load(std::memory_order_relaxed);
      ++sl.hits;
      return h;
    }
    // Local list dry: reclaim everything retire threads pushed back to us.
    h = sl.remote.exchange(nullptr, std::memory_order_acquire);
    if (h != nullptr) {
      sl.local = h->next.load(std::memory_order_relaxed);
      ++sl.hits;
      return h;
    }
    refill(sl);
    h = sl.local;
    sl.local = h->next.load(std::memory_order_relaxed);
    ++sl.refills;
    return h;
  }

  /// Move up to `cache_blocks_` blocks from the global overflow list into
  /// the slot, carving a fresh slab first if the list is empty.
  void refill(Slot& sl) {
    g_mu_.lock();
    if (g_free_ == nullptr) carve_slab_locked();
    Header* head = g_free_;
    Header* tail = head;
    for (unsigned n = 1;
         n < cache_blocks_ &&
         tail->next.load(std::memory_order_relaxed) != nullptr;
         ++n)
      tail = tail->next.load(std::memory_order_relaxed);
    g_free_ = tail->next.load(std::memory_order_relaxed);
    g_mu_.unlock();
    tail->next.store(nullptr, std::memory_order_relaxed);
    sl.local = head;
  }

  void carve_slab_locked() {
    void* mem = aligned_alloc_bytes(stride_ * blocks_per_slab_,
                                    kCacheLineSize);
    SMPSS_CHECK(mem != nullptr, "slab pool out of memory");
    slabs_.push_back(mem);
    slab_count_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < blocks_per_slab_; ++i) {
      auto* h = ::new (static_cast<char*>(mem) + i * stride_) Header{};
      h->next.store(g_free_, std::memory_order_relaxed);
      g_free_ = h;
    }
  }

  const std::size_t payload_offset_;
  const std::size_t stride_;
  const unsigned owner_slots_;
  const unsigned cache_blocks_;
  const std::size_t blocks_per_slab_;
  std::unique_ptr<Slot[]> slots_;  // [owner_slots_] is the foreign slot

  SpinLock foreign_mu_;  ///< serializes foreign-slot allocations

  alignas(kCacheLineSize) SpinLock g_mu_;
  Header* g_free_ = nullptr;        // guarded by g_mu_
  std::vector<void*> slabs_;        // guarded by g_mu_
  std::atomic<std::uint64_t> slab_count_{0};
};

/// The size classes the task lifecycle allocates from: one pool of
/// TaskNode-sized blocks, one of small closure blocks (closures that fit
/// neither the node's inline buffer nor this class fall back to operator
/// new, exactly as before pooling), and one of successor-edge links (the
/// lock-free successor stacks on TaskNode are built from these — see
/// graph/task.hpp). Owned by the Runtime; every TaskNode carries a pointer
/// back here so retire can recycle from any thread.
class TaskArena {
 public:
  /// Closure blocks: large enough for a capture-heavy lambda plus a
  /// several-parameter tuple; anything bigger is rare enough to heap.
  static constexpr std::size_t kClosureBlockBytes = 256;

  /// Successor-link blocks: two pointers (SuccLink in graph/task.hpp).
  static constexpr std::size_t kEdgeBlockBytes = 2 * sizeof(void*);

  TaskArena(std::size_t node_bytes, std::size_t node_align,
            unsigned owner_slots, unsigned cache_blocks)
      : nodes(node_bytes, node_align, owner_slots, cache_blocks),
        closures(kClosureBlockBytes, alignof(std::max_align_t), owner_slots,
                 cache_blocks),
        edges(kEdgeBlockBytes, alignof(void*), owner_slots, cache_blocks) {}

  SlabPool nodes;
  SlabPool closures;
  SlabPool edges;
};

}  // namespace smpss
