// Thread-pinning helpers. The paper runs inside a cpuset of 32 cores with
// memory bound to the local nodes; on a single-socket node the equivalent is
// optional one-thread-per-core pinning.
#pragma once

namespace smpss {

/// Number of logical CPUs available to this process (cpuset-aware).
unsigned hardware_concurrency() noexcept;

/// Pin the calling thread to logical CPU `cpu` (modulo availability).
/// Returns false if pinning is unsupported or fails; callers treat pinning
/// as a best-effort optimization.
bool pin_current_thread(unsigned cpu) noexcept;

}  // namespace smpss
