// A bulk-synchronous fork-join thread pool: the substrate of the "threaded
// Goto / threaded MKL" baselines (dependency-unaware parallel libraries of
// paper Sec. VI.A/B). run() broadcasts one job to all threads and barriers.
//
// This deliberately is NOT the SMPSs scheduler: it models the fork-join
// (parallel-loop + barrier) execution style whose Cholesky scaling the paper
// shows flattening out.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smpss {

class ThreadPool {
 public:
  /// `nthreads` total workers including the caller of run() (so a pool of 1
  /// spawns no threads).
  explicit ThreadPool(unsigned nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute fn(tid) for tid in [0, size()); tid 0 runs on the caller.
  /// Returns when every invocation finished (a full barrier).
  void run(const std::function<void(unsigned tid)>& fn);

  unsigned size() const noexcept { return nthreads_; }

 private:
  void worker_loop(unsigned tid);

  unsigned nthreads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  unsigned done_count_ = 0;
  bool shutdown_ = false;
};

}  // namespace smpss
