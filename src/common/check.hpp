// Lightweight contract checks in the spirit of the Core Guidelines'
// Expects/Ensures. SMPSS_ASSERT compiles away in release builds;
// SMPSS_CHECK stays on in all builds and is used for user-facing API
// contract violations (e.g. spawning from a worker thread).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace smpss::detail {
[[noreturn]] inline void check_failed(const char* kind, const char* cond,
                                      const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "smpss: %s failed: %s at %s:%d%s%s\n", kind, cond, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}
}  // namespace smpss::detail

#define SMPSS_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]]                                               \
      ::smpss::detail::check_failed("check", #cond, __FILE__, __LINE__,     \
                                    (msg));                                 \
  } while (0)

#ifdef NDEBUG
#define SMPSS_ASSERT(cond) ((void)0)
#else
#define SMPSS_ASSERT(cond)                                                  \
  do {                                                                      \
    if (!(cond)) [[unlikely]]                                               \
      ::smpss::detail::check_failed("assert", #cond, __FILE__, __LINE__,    \
                                    nullptr);                               \
  } while (0)
#endif
