// Task-bench-style dependency-pattern generator.
//
// The paper's evaluation exercises the runtime with five hand-written
// applications; this module generates whole *families* of dependency graphs
// instead (following Slaughter et al.'s task-bench parameterization): a
// pattern is a grid of tasks, `width` points wide by `steps` timesteps deep,
// where task (t, p) consumes cells produced at timestep t-1 and produces the
// cell at (t, p). The dependence kind decides which cells of the previous
// timestep feed each point:
//
//   trivial             no dependencies at all (embarrassingly parallel)
//   chain               (t-1, p): width independent chains
//   stencil_1d          (t-1, p-1..p+1), clamped at the edges
//   stencil_1d_periodic same, wrapping around the row ends
//   fft                 butterfly: (t-1, p), (t-1, p +- 2^stage)
//   tree                binary fan-out: point p from parent p/2; the row
//                       doubles every step until it reaches `width`
//   random_nearest      a seeded random subset of a p-centered window of
//                       `radix` cells (always including p)
//   all_to_all          every point of the previous timestep
//   spread              `radix` cells strided width/radix apart, rotated by
//                       the timestep's dependence set
//
// Dependencies are reported as ordered, inclusive intervals over the
// previous row — the natural currency of both the per-cell (address-mode)
// lowering and the array-region lowering in patterns/driver.hpp. Everything
// is a pure function of the spec, so generator, oracle, drivers, and the
// graph-fidelity tests all agree on the intended edge set by construction.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "patterns/kernel.hpp"

namespace smpss::patterns {

enum class PatternKind : std::uint8_t {
  Trivial,
  Chain,
  Stencil1D,
  Stencil1DPeriodic,
  Fft,
  Tree,
  RandomNearest,
  AllToAll,
  Spread,
};

inline constexpr std::size_t kPatternKindCount = 9;

const char* to_string(PatternKind k) noexcept;

/// Every kind, in declaration order — the sweep axis of the conformance
/// harness and the bench.
const std::array<PatternKind, kPatternKindCount>& all_pattern_kinds() noexcept;

/// Inclusive interval of points on the previous timestep's row.
struct Interval {
  std::int32_t lo = 0;
  std::int32_t hi = -1;
  long cells() const noexcept { return hi - lo + 1; }
  bool operator==(const Interval&) const = default;
};

/// Upper bound on intervals per task across all kinds (periodic stencil and
/// fft need 3; spread and random_nearest need `radix`, capped below).
inline constexpr std::size_t kMaxIntervals = 8;

struct PatternSpec {
  PatternKind kind = PatternKind::Trivial;
  std::int32_t width = 8;   ///< points per timestep (max width for tree)
  std::int32_t steps = 8;   ///< timesteps
  std::int32_t radix = 3;   ///< fan-in knob of random_nearest/spread (<= 8)
  std::int32_t period = 3;  ///< dependence-set rotation of spread/random_nearest
  std::uint32_t fraction_ppm = 500000;  ///< random_nearest edge probability
  std::uint64_t seed = 1;   ///< seeds random_nearest and the initial image
  KernelSpec kernel;        ///< per-task busywork grain

  /// Points live at timestep `t` (tree grows 1, 2, 4, ... up to width).
  long width_at(long t) const noexcept;

  /// Dependence intervals of task (t, p) over row t-1, in a canonical order
  /// (the order input cells are folded into the produced value). Empty for
  /// t == 0. Returns the interval count (<= kMaxIntervals). Intervals may
  /// repeat a point (spread's modular stride can collide); consumers must
  /// preserve duplicates so the checksum and the edge multiset stay exact.
  std::size_t dependencies(long t, long p,
                           Interval out[kMaxIntervals]) const noexcept;

  /// Input cells of task (t, p) — the intervals' total cell count.
  long fan_in_cells(long t, long p) const noexcept;

  /// Max fan_in_cells over the whole graph (decides address-mode viability).
  long max_fan_in() const noexcept;

  std::uint64_t total_tasks() const noexcept;

  /// Abort (SMPSS_CHECK) on out-of-range parameters.
  void validate() const;

  /// One-line human/replay description, e.g.
  /// "pattern=fft width=8 steps=10 radix=3 period=3 fraction=500000
  ///  seed=42 kernel=compute/64".
  std::string describe() const;
};

}  // namespace smpss::patterns
