#include "patterns/oracle.hpp"

#include "common/check.hpp"

namespace smpss::patterns {

int min_fields(const PatternSpec& spec) noexcept {
  return spec.kind == PatternKind::Chain ? 1 : 2;
}

int default_fields(const PatternSpec& spec) noexcept {
  return min_fields(spec);
}

PatternImage make_initial_image(const PatternSpec& spec, int nfields) {
  spec.validate();
  SMPSS_CHECK(nfields >= min_fields(spec),
              "pattern image needs >= 2 rows (1 for chain): a step must "
              "never read a row another point of the same step writes");
  PatternImage img;
  img.nfields = nfields;
  img.width = spec.width;
  img.cells.resize(static_cast<std::size_t>(nfields) *
                   static_cast<std::size_t>(spec.width));
  for (long f = 0; f < nfields; ++f)
    for (long p = 0; p < spec.width; ++p)
      img.at(f, p) = mix64(spec.seed ^ 0x696D616765303030ull /* "image000" */,
                           (static_cast<std::uint64_t>(f) << 32) ^
                               static_cast<std::uint64_t>(p));
  return img;
}

PatternImage run_oracle(const PatternSpec& spec, int nfields) {
  PatternImage img = make_initial_image(spec, nfields);
  Interval iv[kMaxIntervals];
  for (long t = 0; t < spec.steps; ++t) {
    const long src = t > 0 ? (t - 1) % nfields : 0;
    const long dst = t % nfields;
    for (long p = 0; p < spec.width_at(t); ++p) {
      const std::size_t n = spec.dependencies(t, p, iv);
      std::uint64_t h = value_seed(spec, t, p);
      // Fold inputs before writing: with nfields == 1 (chains) the read and
      // the write alias the same cell, exactly as the inout lowering sees.
      for (std::size_t k = 0; k < n; ++k)
        for (long q = iv[k].lo; q <= iv[k].hi; ++q)
          h = value_fold(h, img.at(src, q));
      img.at(dst, p) = value_finish(spec, h, t, p);
    }
  }
  return img;
}

std::vector<Cell> oracle_step_sums(const PatternSpec& spec, int nfields) {
  PatternImage img = make_initial_image(spec, nfields);
  std::vector<Cell> sums(static_cast<std::size_t>(spec.steps), 0);
  Interval iv[kMaxIntervals];
  for (long t = 0; t < spec.steps; ++t) {
    const long src = t > 0 ? (t - 1) % nfields : 0;
    const long dst = t % nfields;
    for (long p = 0; p < spec.width_at(t); ++p) {
      const std::size_t n = spec.dependencies(t, p, iv);
      std::uint64_t h = value_seed(spec, t, p);
      for (std::size_t k = 0; k < n; ++k)
        for (long q = iv[k].lo; q <= iv[k].hi; ++q)
          h = value_fold(h, img.at(src, q));
      img.at(dst, p) = value_finish(spec, h, t, p);
      sums[static_cast<std::size_t>(t)] += img.at(dst, p);
    }
  }
  return sums;
}

std::uint64_t image_checksum(const PatternImage& img) noexcept {
  std::uint64_t h = 0x636865636B73756Dull;  // "checksum"
  for (const Cell& c : img.cells) h = mix64(h, c);
  return h;
}

}  // namespace smpss::patterns
