#include "patterns/driver.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "baselines/forkjoin/forkjoin.hpp"
#include "baselines/taskpool/taskpool.hpp"
#include "common/check.hpp"
#include "ipc/dist_runtime.hpp"
#include "runtime/runtime.hpp"

namespace smpss::patterns {

const char* to_string(LowerMode m) noexcept {
  switch (m) {
    case LowerMode::Address: return "address";
    case LowerMode::Region: return "region";
  }
  return "?";
}

const char* to_string(SubmitShape s) noexcept {
  switch (s) {
    case SubmitShape::Flat: return "flat";
    case SubmitShape::NestedSteps: return "nested_steps";
  }
  return "?";
}

const char* to_string(AccumMode a) noexcept {
  switch (a) {
    case AccumMode::None: return "none";
    case AccumMode::Commutative: return "commutative";
    case AccumMode::Concurrent: return "concurrent";
  }
  return "?";
}

std::string RunOptions::describe() const {
  std::ostringstream os;
  os << "mode=" << to_string(mode) << " shape=" << to_string(shape)
     << (join_steps ? "+join" : "") << " nfields=" << nfields
     << " threads=" << cfg.num_threads << " renaming=" << cfg.renaming
     << " nested=" << cfg.nested_tasks << " shards=" << cfg.dep_shards
     << " chain=" << cfg.chain_depth << " pool=" << cfg.pool_cache
     << " window=" << cfg.task_window
     << " sched=" << to_string(cfg.scheduler_mode)
     << " policy=" << to_string(cfg.sched_policy)
     << " lockfree=" << cfg.dep_lockfree;
  if (cfg.procs > 1) os << " procs=" << cfg.procs;
  if (accum != AccumMode::None) os << " accum=" << to_string(accum);
  return os.str();
}

namespace {

// --- task bodies ---------------------------------------------------------------
// All bodies are trivially-copyable structs (not lambdas) so every pattern
// and arity shares one closure instantiation per shape — and the capture is
// self-contained: bodies read and write memory only through the resolved
// parameters the runtime hands them, never through the image.

/// Address mode, write-only output: fold the input cells in parameter order.
struct AddrBody {
  PatternSpec spec;
  std::int32_t t, p;
  template <typename... In>
  void operator()(Cell* dst, In... ins) const {
    std::uint64_t h = value_seed(spec, t, p);
    ((h = value_fold(h, *ins)), ...);
    *dst = value_finish(spec, h, t, p);
  }
};

/// Address mode, in-place chain step: read-modify-write of one cell.
struct AddrChainBody {
  PatternSpec spec;
  std::int32_t t, p;
  void operator()(Cell* cell) const {
    std::uint64_t h = value_seed(spec, t, p);
    h = value_fold(h, *cell);
    *cell = value_finish(spec, h, t, p);
  }
};

/// Region mode: the resolved parameters are row base pointers (regions
/// never relocate data); the body walks its captured intervals to read the
/// exact dependence cells in canonical order.
struct RegionBody {
  PatternSpec spec;
  std::int32_t t, p;
  std::array<Interval, kMaxIntervals> iv;
  std::uint32_t niv;

  std::uint64_t fold_inputs(const Cell* src) const {
    std::uint64_t h = value_seed(spec, t, p);
    for (std::uint32_t k = 0; k < niv; ++k)
      for (long q = iv[k].lo; q <= iv[k].hi; ++q)
        h = value_fold(h, src[q]);
    return h;
  }

  /// niv == 0 (first timestep / trivial): no input rows declared.
  void operator()(Cell* dst) const {
    dst[p] = value_finish(spec, value_seed(spec, t, p), t, p);
  }
  /// One resolved base per declared interval; all name the same source row.
  template <typename... Rest>
  void operator()(Cell* dst, const Cell* src, Rest...) const {
    dst[p] = value_finish(spec, fold_inputs(src), t, p);
  }
};

/// Region mode, in-place chain step (single-row image).
struct RegionChainBody {
  PatternSpec spec;
  std::int32_t t, p;
  void operator()(Cell* base) const {
    std::uint64_t h = value_seed(spec, t, p);
    h = value_fold(h, base[p]);
    base[p] = value_finish(spec, h, t, p);
  }
};

// --- AccumMode bodies ----------------------------------------------------------
// Same folds, plus one commuting write: add the produced value into the
// step accumulator. Under Dir::Commutative `acc` is the shared cell itself
// (the group token excludes concurrent members); under Dir::Concurrent it
// is this worker's zero-initialized private, combined at group close.
// Wrapping uint64 addition commutes, so both match oracle_step_sums
// bit-exactly in any execution order.

struct AddrAccumBody {
  PatternSpec spec;
  std::int32_t t, p;
  template <typename... In>
  void operator()(Cell* dst, Cell* acc, In... ins) const {
    std::uint64_t h = value_seed(spec, t, p);
    ((h = value_fold(h, *ins)), ...);
    *dst = value_finish(spec, h, t, p);
    *acc += *dst;
  }
};

struct AddrChainAccumBody {
  PatternSpec spec;
  std::int32_t t, p;
  void operator()(Cell* cell, Cell* acc) const {
    std::uint64_t h = value_seed(spec, t, p);
    h = value_fold(h, *cell);
    *cell = value_finish(spec, h, t, p);
    *acc += *cell;
  }
};

struct RegionAccumBody {
  PatternSpec spec;
  std::int32_t t, p;
  std::array<Interval, kMaxIntervals> iv;
  std::uint32_t niv;

  void operator()(Cell* dst, Cell* acc) const {
    dst[p] = value_finish(spec, value_seed(spec, t, p), t, p);
    *acc += dst[p];
  }
  template <typename... Rest>
  void operator()(Cell* dst, Cell* acc, const Cell* src, Rest...) const {
    std::uint64_t h = value_seed(spec, t, p);
    for (std::uint32_t k = 0; k < niv; ++k)
      for (long q = iv[k].lo; q <= iv[k].hi; ++q)
        h = value_fold(h, src[q]);
    dst[p] = value_finish(spec, h, t, p);
    *acc += dst[p];
  }
};

struct RegionChainAccumBody {
  PatternSpec spec;
  std::int32_t t, p;
  void operator()(Cell* base, Cell* acc) const {
    std::uint64_t h = value_seed(spec, t, p);
    h = value_fold(h, base[p]);
    base[p] = value_finish(spec, h, t, p);
    *acc += base[p];
  }
};

// --- arity dispatch -------------------------------------------------------------
// rt.spawn's parameter list is compile-time; the generator's fan-in is a
// runtime value. These switches instantiate one spawn per arity 0..8 and
// route each task to the matching one. Templated over the sink: Runtime&
// and StreamHandle& share the spawn(type, fn, params...) signature, so the
// same lowering drives the batch engine and a service-mode stream.

template <std::size_t N, typename RT>
void spawn_addr_n(RT& rt, TaskType tt, const AddrBody& body, Cell* dst,
                  [[maybe_unused]] const std::array<const Cell*,
                                                    kMaxAddressFanIn>& ins) {
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    rt.spawn(tt, body, out(dst), in(ins[Is])...);
  }(std::make_index_sequence<N>{});
}

template <typename RT>
void spawn_addr(RT& rt, TaskType tt, const AddrBody& body, Cell* dst,
                const std::array<const Cell*, kMaxAddressFanIn>& ins,
                std::size_t n) {
  switch (n) {
    case 0: spawn_addr_n<0>(rt, tt, body, dst, ins); break;
    case 1: spawn_addr_n<1>(rt, tt, body, dst, ins); break;
    case 2: spawn_addr_n<2>(rt, tt, body, dst, ins); break;
    case 3: spawn_addr_n<3>(rt, tt, body, dst, ins); break;
    case 4: spawn_addr_n<4>(rt, tt, body, dst, ins); break;
    case 5: spawn_addr_n<5>(rt, tt, body, dst, ins); break;
    case 6: spawn_addr_n<6>(rt, tt, body, dst, ins); break;
    case 7: spawn_addr_n<7>(rt, tt, body, dst, ins); break;
    case 8: spawn_addr_n<8>(rt, tt, body, dst, ins); break;
    default:
      SMPSS_CHECK(false,
                  "address-mode fan-in exceeds kMaxAddressFanIn — lower this "
                  "pattern in region mode (see address_mode_ok)");
  }
}

template <std::size_t N, typename RT>
void spawn_region_n(RT& rt, TaskType tt, const RegionBody& body,
                    Cell* dst_row, [[maybe_unused]] const Cell* src_row) {
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    rt.spawn(tt, body, out(dst_row, Region{span_from(body.p, 1)}),
             in(src_row, Region{bounds(body.iv[Is].lo, body.iv[Is].hi)})...);
  }(std::make_index_sequence<N>{});
}

template <typename RT>
void spawn_region(RT& rt, TaskType tt, const RegionBody& body,
                  Cell* dst_row, const Cell* src_row) {
  switch (body.niv) {
    case 0: spawn_region_n<0>(rt, tt, body, dst_row, src_row); break;
    case 1: spawn_region_n<1>(rt, tt, body, dst_row, src_row); break;
    case 2: spawn_region_n<2>(rt, tt, body, dst_row, src_row); break;
    case 3: spawn_region_n<3>(rt, tt, body, dst_row, src_row); break;
    case 4: spawn_region_n<4>(rt, tt, body, dst_row, src_row); break;
    case 5: spawn_region_n<5>(rt, tt, body, dst_row, src_row); break;
    case 6: spawn_region_n<6>(rt, tt, body, dst_row, src_row); break;
    case 7: spawn_region_n<7>(rt, tt, body, dst_row, src_row); break;
    case 8: spawn_region_n<8>(rt, tt, body, dst_row, src_row); break;
    default: SMPSS_CHECK(false, "interval count exceeds kMaxIntervals");
  }
}

// --- AccumMode arity dispatch ---------------------------------------------------
// The accumulator rides as the second parameter (body signature is
// (dst, acc, ins...)): commutative(acc) under AccumMode::Commutative,
// reduction(Plus{}, acc) under AccumMode::Concurrent. It is always an
// address-mode parameter — commuting modes are whole-object only — even
// when the surrounding task is lowered in region mode, which exercises
// mixed region/address parameter routing on one task.

template <std::size_t N, typename RT>
void spawn_addr_accum_n(RT& rt, TaskType tt, const AddrAccumBody& body,
                        Cell* dst, Cell* acc, AccumMode am,
                        [[maybe_unused]] const std::array<
                            const Cell*, kMaxAddressFanIn>& ins) {
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    if (am == AccumMode::Commutative)
      rt.spawn(tt, body, out(dst), commutative(acc), in(ins[Is])...);
    else
      rt.spawn(tt, body, out(dst), reduction(Plus{}, acc), in(ins[Is])...);
  }(std::make_index_sequence<N>{});
}

template <typename RT>
void spawn_addr_accum(RT& rt, TaskType tt, const AddrAccumBody& body,
                      Cell* dst, Cell* acc, AccumMode am,
                      const std::array<const Cell*, kMaxAddressFanIn>& ins,
                      std::size_t n) {
  switch (n) {
    case 0: spawn_addr_accum_n<0>(rt, tt, body, dst, acc, am, ins); break;
    case 1: spawn_addr_accum_n<1>(rt, tt, body, dst, acc, am, ins); break;
    case 2: spawn_addr_accum_n<2>(rt, tt, body, dst, acc, am, ins); break;
    case 3: spawn_addr_accum_n<3>(rt, tt, body, dst, acc, am, ins); break;
    case 4: spawn_addr_accum_n<4>(rt, tt, body, dst, acc, am, ins); break;
    case 5: spawn_addr_accum_n<5>(rt, tt, body, dst, acc, am, ins); break;
    case 6: spawn_addr_accum_n<6>(rt, tt, body, dst, acc, am, ins); break;
    case 7: spawn_addr_accum_n<7>(rt, tt, body, dst, acc, am, ins); break;
    case 8: spawn_addr_accum_n<8>(rt, tt, body, dst, acc, am, ins); break;
    default:
      SMPSS_CHECK(false,
                  "address-mode fan-in exceeds kMaxAddressFanIn — lower this "
                  "pattern in region mode (see address_mode_ok)");
  }
}

template <std::size_t N, typename RT>
void spawn_region_accum_n(RT& rt, TaskType tt, const RegionAccumBody& body,
                          Cell* dst_row, Cell* acc, AccumMode am,
                          [[maybe_unused]] const Cell* src_row) {
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    if (am == AccumMode::Commutative)
      rt.spawn(tt, body, out(dst_row, Region{span_from(body.p, 1)}),
               commutative(acc),
               in(src_row, Region{bounds(body.iv[Is].lo, body.iv[Is].hi)})...);
    else
      rt.spawn(tt, body, out(dst_row, Region{span_from(body.p, 1)}),
               reduction(Plus{}, acc),
               in(src_row, Region{bounds(body.iv[Is].lo, body.iv[Is].hi)})...);
  }(std::make_index_sequence<N>{});
}

template <typename RT>
void spawn_region_accum(RT& rt, TaskType tt, const RegionAccumBody& body,
                        Cell* dst_row, Cell* acc, AccumMode am,
                        const Cell* src_row) {
  switch (body.niv) {
    case 0: spawn_region_accum_n<0>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 1: spawn_region_accum_n<1>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 2: spawn_region_accum_n<2>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 3: spawn_region_accum_n<3>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 4: spawn_region_accum_n<4>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 5: spawn_region_accum_n<5>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 6: spawn_region_accum_n<6>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 7: spawn_region_accum_n<7>(rt, tt, body, dst_row, acc, am, src_row); break;
    case 8: spawn_region_accum_n<8>(rt, tt, body, dst_row, acc, am, src_row); break;
    default: SMPSS_CHECK(false, "interval count exceeds kMaxIntervals");
  }
}

// --- per-step submission ---------------------------------------------------------

/// Spawn every point task of timestep `t`. Callable from the main thread
/// (Flat), from inside a step task (NestedSteps), or with a StreamHandle
/// sink (service mode).
template <typename RT>
void submit_step(RT& rt, TaskType tt, const PatternSpec& spec,
                 PatternImage& img, LowerMode mode, long t,
                 AccumMode am = AccumMode::None, Cell* accums = nullptr) {
  const long src_f = t > 0 ? (t - 1) % img.nfields : 0;
  const long dst_f = t % img.nfields;
  // The chain pattern on a single-row image is the in-place lowering: one
  // inout parameter carrying both the read of step t-1 and the write of
  // step t (the renaming copy-in path). t == 0 has no input and goes
  // through the general out() lowering like every other pattern.
  const bool in_place =
      spec.kind == PatternKind::Chain && img.nfields == 1 && t > 0;
  Cell* acc = am != AccumMode::None ? &accums[t] : nullptr;
  Interval iv[kMaxIntervals];
  for (long p = 0; p < spec.width_at(t); ++p) {
    const std::size_t n = spec.dependencies(t, p, iv);
    const std::int32_t t32 = static_cast<std::int32_t>(t);
    const std::int32_t p32 = static_cast<std::int32_t>(p);
    if (mode == LowerMode::Address) {
      if (in_place) {
        if (am == AccumMode::None)
          rt.spawn(tt, AddrChainBody{spec, t32, p32}, inout(&img.at(0, p)));
        else if (am == AccumMode::Commutative)
          rt.spawn(tt, AddrChainAccumBody{spec, t32, p32},
                   inout(&img.at(0, p)), commutative(acc));
        else
          rt.spawn(tt, AddrChainAccumBody{spec, t32, p32},
                   inout(&img.at(0, p)), reduction(Plus{}, acc));
        continue;
      }
      std::array<const Cell*, kMaxAddressFanIn> ins{};
      std::size_t c = 0;
      for (std::size_t k = 0; k < n; ++k)
        for (long q = iv[k].lo; q <= iv[k].hi; ++q) {
          SMPSS_CHECK(c < static_cast<std::size_t>(kMaxAddressFanIn),
                      "address-mode fan-in exceeds kMaxAddressFanIn");
          ins[c++] = &img.at(src_f, q);
        }
      if (am == AccumMode::None)
        spawn_addr(rt, tt, AddrBody{spec, t32, p32}, &img.at(dst_f, p), ins,
                   c);
      else
        spawn_addr_accum(rt, tt, AddrAccumBody{spec, t32, p32},
                         &img.at(dst_f, p), acc, am, ins, c);
    } else {
      if (in_place) {
        if (am == AccumMode::None)
          rt.spawn(tt, RegionChainBody{spec, t32, p32},
                   inout(img.row(0), Region{span_from(p, 1)}));
        else if (am == AccumMode::Commutative)
          rt.spawn(tt, RegionChainAccumBody{spec, t32, p32},
                   inout(img.row(0), Region{span_from(p, 1)}),
                   commutative(acc));
        else
          rt.spawn(tt, RegionChainAccumBody{spec, t32, p32},
                   inout(img.row(0), Region{span_from(p, 1)}),
                   reduction(Plus{}, acc));
        continue;
      }
      if (am == AccumMode::None) {
        RegionBody body{spec, t32, p32, {}, static_cast<std::uint32_t>(n)};
        std::copy(iv, iv + n, body.iv.begin());
        spawn_region(rt, tt, body, img.row(dst_f), img.row(src_f));
      } else {
        RegionAccumBody body{spec, t32, p32, {},
                             static_cast<std::uint32_t>(n)};
        std::copy(iv, iv + n, body.iv.begin());
        spawn_region_accum(rt, tt, body, img.row(dst_f), acc, am,
                           img.row(src_f));
      }
    }
  }
}

}  // namespace

void submit_pattern(Runtime& rt, const PatternSpec& spec, PatternImage& img,
                    LowerMode mode, SubmitShape shape, bool join_steps,
                    Cell* sentinel, AccumMode accum, Cell* accums) {
  spec.validate();
  SMPSS_CHECK(img.width == spec.width && img.nfields >= min_fields(spec),
              "image does not match the pattern spec");
  if (mode == LowerMode::Address)
    SMPSS_CHECK(address_mode_ok(spec),
                "pattern fan-in too wide for address mode — use region mode");
  SMPSS_CHECK(accum == AccumMode::None || accums != nullptr,
              "AccumMode needs a spec.steps-cell accumulator array");
  TaskType point = rt.register_task_type(
      std::string("pattern_point:") + to_string(spec.kind));

  if (shape == SubmitShape::Flat) {
    for (long t = 0; t < spec.steps; ++t)
      submit_step(rt, point, spec, img, mode, t, accum, accums);
    return;
  }

  SMPSS_CHECK(rt.config().nested_tasks,
              "NestedSteps submission needs Config::nested_tasks");
  SMPSS_CHECK(sentinel != nullptr,
              "NestedSteps needs a sentinel cell outliving the barrier");
  TaskType step = rt.register_task_type("pattern_step");
  Runtime* rtp = &rt;
  PatternImage* imgp = &img;
  for (long t = 0; t < spec.steps; ++t) {
    // Step tasks serialize on the sentinel (an inout chain), so step t+1's
    // body — and therefore all its point submissions — begins only after
    // step t's body has finished submitting. Point-task *execution* of
    // step t freely overlaps the submission of step t+1: the analyzers see
    // concurrent submit/retire traffic with real cross-step dependencies.
    rt.spawn(step,
             [rtp, imgp, spec, point, mode, t, join_steps, accum,
              accums](Cell* token) {
               *token = value_fold(*token, static_cast<Cell>(t));
               submit_step(*rtp, point, spec, *imgp, mode, t, accum, accums);
               if (join_steps) rtp->taskwait();
             },
             inout(sentinel));
  }
}

void submit_pattern_stream(StreamHandle& stream, TaskType point,
                           const PatternSpec& spec, PatternImage& img,
                           LowerMode mode) {
  spec.validate();
  SMPSS_CHECK(img.width == spec.width && img.nfields >= min_fields(spec),
              "image does not match the pattern spec");
  if (mode == LowerMode::Address)
    SMPSS_CHECK(address_mode_ok(spec),
                "pattern fan-in too wide for address mode — use region mode");
  // Flat (t, p) order only: the point type is pre-registered by the caller
  // (register_task_type requires zero live tasks, and other streams may
  // already be in flight when this one starts submitting).
  for (long t = 0; t < spec.steps; ++t)
    submit_step(stream, point, spec, img, mode, t);
}

RunResult run_pattern(const PatternSpec& spec, const RunOptions& opt) {
  // cfg.procs > 1 routes to the multi-process backend (one dependency-
  // manager shard per rank over shared memory); 1 is the single-process
  // runtime below, untouched.
  if (opt.cfg.procs > 1) {
    ipc::DistResult d = ipc::run_pattern_dist(spec, opt, opt.cfg.procs);
    SMPSS_CHECK(d.clean_children, "a worker rank exited uncleanly");
    SMPSS_CHECK(d.retires_received == d.total_tasks,
                "retire accounting diverged from the task count");
    RunResult res;
    res.image = std::move(d.image);
    // The snapshot a single-process run would fill is per-Runtime; expose
    // the cross-process totals the rank rows sum to.
    for (const ipc::DistRankStats& r : d.ranks) {
      res.stats.tasks_spawned += r.tasks_spawned;
      res.stats.tasks_executed += r.tasks_executed;
      res.stats.renames += r.renames;
    }
    return res;
  }
  const int nf = opt.nfields > 0 ? opt.nfields : default_fields(spec);
  PatternImage img = make_initial_image(spec, nf);
  Cell sentinel = 0;
  RunResult res;
  if (opt.accum != AccumMode::None)
    res.accums.assign(static_cast<std::size_t>(spec.steps), 0);
  {
    Runtime rt(opt.cfg);
    submit_pattern(rt, spec, img, opt.mode, opt.shape, opt.join_steps,
                   &sentinel, opt.accum,
                   res.accums.empty() ? nullptr : res.accums.data());
    rt.barrier();
    res.stats = rt.stats();
  }
  res.image = std::move(img);
  return res;
}

// --- dependency-free baselines ---------------------------------------------------

namespace {

/// The baselines synchronize per timestep, so a point executes against the
/// program's own image directly: within one step every task writes its own
/// dst cell and reads only src-row cells (or, for single-row chains, its
/// own cell) — race-free under a step barrier.
void execute_point_inplace(const PatternSpec& spec, PatternImage& img,
                           long t, long p) {
  Interval iv[kMaxIntervals];
  const long src_f = t > 0 ? (t - 1) % img.nfields : 0;
  const std::size_t n = spec.dependencies(t, p, iv);
  std::uint64_t h = value_seed(spec, t, p);
  for (std::size_t k = 0; k < n; ++k)
    for (long q = iv[k].lo; q <= iv[k].hi; ++q)
      h = value_fold(h, img.at(src_f, q));
  img.at(t % img.nfields, p) = value_finish(spec, h, t, p);
}

}  // namespace

PatternImage run_taskpool_baseline(const PatternSpec& spec, int nfields,
                                   unsigned nthreads) {
  PatternImage img = make_initial_image(spec, nfields);
  omp3::TaskPool pool(nthreads);
  pool.run_root([&] {
    for (long t = 0; t < spec.steps; ++t) {
      for (long p = 0; p < spec.width_at(t); ++p)
        pool.task([&spec, &img, t, p] {
          execute_point_inplace(spec, img, t, p);
        });
      pool.taskwait();
    }
  });
  return img;
}

PatternImage run_forkjoin_baseline(const PatternSpec& spec, int nfields,
                                   unsigned nthreads) {
  PatternImage img = make_initial_image(spec, nfields);
  fj::Scheduler sched(nthreads);
  sched.run_root([&](fj::Context& ctx) {
    for (long t = 0; t < spec.steps; ++t) {
      for (long p = 0; p < spec.width_at(t); ++p)
        ctx.spawn([&spec, &img, t, p](fj::Context&) {
          execute_point_inplace(spec, img, t, p);
        });
      ctx.sync();
    }
  });
  return img;
}

// --- graph fidelity ----------------------------------------------------------------

std::vector<std::pair<std::uint64_t, std::uint64_t>> intended_true_edges(
    const PatternSpec& spec) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  // Prefix sums so seq lookup is O(1) per task.
  std::vector<std::uint64_t> first_seq(
      static_cast<std::size_t>(spec.steps) + 1, 1);
  for (long t = 0; t < spec.steps; ++t)
    first_seq[static_cast<std::size_t>(t) + 1] =
        first_seq[static_cast<std::size_t>(t)] +
        static_cast<std::uint64_t>(spec.width_at(t));
  Interval iv[kMaxIntervals];
  for (long t = 1; t < spec.steps; ++t)
    for (long p = 0; p < spec.width_at(t); ++p) {
      const std::size_t n = spec.dependencies(t, p, iv);
      for (std::size_t k = 0; k < n; ++k)
        for (long q = iv[k].lo; q <= iv[k].hi; ++q)
          edges.emplace_back(
              first_seq[static_cast<std::size_t>(t) - 1] +
                  static_cast<std::uint64_t>(q),
              first_seq[static_cast<std::size_t>(t)] +
                  static_cast<std::uint64_t>(p));
    }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace smpss::patterns
