#include "patterns/kernel.hpp"

namespace smpss::patterns {

const char* to_string(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::Empty: return "empty";
    case KernelKind::Compute: return "compute";
    case KernelKind::Memory: return "memory";
  }
  return "?";
}

namespace {

std::uint64_t kernel_seed(long t, long p) noexcept {
  return mix64(0x6B65726E656C73ull /* "kernels" */,
               (static_cast<std::uint64_t>(t) << 32) ^
                   static_cast<std::uint64_t>(p));
}

std::uint64_t compute_kernel(std::uint32_t iterations, long t,
                             long p) noexcept {
  std::uint64_t x = kernel_seed(t, p);
  for (std::uint32_t i = 0; i < iterations; ++i) x = mix64(x, i);
  return x;
}

std::uint64_t memory_kernel(std::uint32_t sweeps, long t, long p) noexcept {
  // One L1-sized scratch line per invocation, lives on the stack so the
  // kernel stays allocation-free and trivially thread-safe. Each sweep is a
  // serial read-modify-write pass (every element depends on the previous),
  // so the compiler cannot collapse the traffic.
  constexpr std::size_t kWords = 4096 / sizeof(std::uint64_t);
  std::uint64_t scratch[kWords];
  std::uint64_t x = kernel_seed(t, p);
  for (std::size_t i = 0; i < kWords; ++i) {
    x = mix64(x, i);
    scratch[i] = x;
  }
  for (std::uint32_t s = 0; s < sweeps; ++s) {
    for (std::size_t i = 0; i < kWords; ++i) {
      x = mix64(x, scratch[i]);
      scratch[i] = x;
    }
  }
  return x;
}

}  // namespace

std::uint64_t run_kernel(const KernelSpec& k, long t, long p) noexcept {
  switch (k.kind) {
    case KernelKind::Empty: return 0;
    case KernelKind::Compute: return compute_kernel(k.iterations, t, p);
    case KernelKind::Memory: return memory_kernel(k.iterations, t, p);
  }
  return 0;
}

}  // namespace smpss::patterns
