// The deterministic sequential oracle of the pattern engine, and the shared
// per-cell value algebra every execution mode folds with.
//
// The memory model mirrors task-bench's rotating buffers: a pattern runs
// over an image of `nfields` rows of `width` cells; timestep t writes row
// (t % nfields) and reads row ((t-1) % nfields). With nfields == 2 every
// write collides with the two-steps-older version of its cell — a WAW — and
// with the previous step's readers — WARs — which is exactly the hazard
// stream the renaming machinery exists to absorb (and, with renaming
// disabled, the anti/output edge paths must serialize). The *dataflow* is
// independent of nfields, so one oracle checks every buffering choice.
//
// cell(t, p) = finish(fold(...fold(seed(t,p), in_0)..., in_k))
// where the in_i are the dependence cells in the generator's canonical
// interval order and finish mixes in the busywork kernel's result. Any
// missed or phantom dependency, any lost rename copy, any torn cell shows
// up as a checksum mismatch against the oracle image.
#pragma once

#include <cstdint>
#include <vector>

#include "patterns/pattern.hpp"

namespace smpss::patterns {

using Cell = std::uint64_t;

/// A rotating-row cell image: `nfields` rows of `width` cells.
struct PatternImage {
  std::int32_t nfields = 0;
  std::int32_t width = 0;
  std::vector<Cell> cells;

  Cell& at(long f, long p) {
    return cells[static_cast<std::size_t>(f) *
                     static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(p)];
  }
  const Cell& at(long f, long p) const {
    return cells[static_cast<std::size_t>(f) *
                     static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(p)];
  }
  Cell* row(long f) { return &at(f, 0); }
  const Cell* row(long f) const { return &at(f, 0); }

  bool operator==(const PatternImage&) const = default;
};

/// Rows a spec needs at minimum: chains touch a single row in place
/// (read-modify-write); everything else must double-buffer so a step never
/// reads the row it writes.
int min_fields(const PatternSpec& spec) noexcept;

/// Default row count for a spec (min_fields; the sweeps may raise it, e.g.
/// to `steps` for a reuse-free image).
int default_fields(const PatternSpec& spec) noexcept;

/// The seeded pre-execution image every execution mode starts from.
PatternImage make_initial_image(const PatternSpec& spec, int nfields);

/// Run the whole pattern sequentially; the returned image is the ground
/// truth the differential harness compares every runtime configuration to.
PatternImage run_oracle(const PatternSpec& spec, int nfields);

/// Per-timestep wrapping sum of the produced cell values — the ground truth
/// for the commutative/concurrent accumulator lowering (AccumMode): every
/// point task of step t adds its produced value into one shared step
/// accumulator, and uint64 wrapping addition commutes, so any execution
/// order must land on exactly these sums. Returns `spec.steps` entries.
std::vector<Cell> oracle_step_sums(const PatternSpec& spec, int nfields);

/// Order-sensitive digest of an image (bench sanity + failure messages).
std::uint64_t image_checksum(const PatternImage& img) noexcept;

// --- the shared value algebra -------------------------------------------------

inline std::uint64_t value_seed(const PatternSpec& s, long t,
                                long p) noexcept {
  return mix64(s.seed ^ 0x7061747465726E73ull /* "patterns" */,
               (static_cast<std::uint64_t>(t) << 32) ^
                   static_cast<std::uint64_t>(p));
}

inline std::uint64_t value_fold(std::uint64_t h, Cell in) noexcept {
  return mix64(h, in);
}

inline std::uint64_t value_finish(const PatternSpec& s, std::uint64_t h,
                                  long t, long p) noexcept {
  return mix64(h, run_kernel(s.kernel, t, p));
}

}  // namespace smpss::patterns
