// Tunable per-task busywork kernels for the dependency-pattern engine
// (task-bench's "kernel" axis): the same dependency graph can be run with
// empty bodies (pure runtime-overhead measurement), a compute-bound body, or
// a memory-bound body, scaling task grain independently of graph shape.
//
// Every kernel is a pure function of (spec, timestep, point): it returns a
// deterministic value that the pattern driver folds into the produced cell,
// so the differential oracle proves not only that dependencies were honored
// but that every body actually ran with its intended inputs.
#pragma once

#include <cstdint>

namespace smpss::patterns {

/// The one mixing function every layer of the pattern engine shares (oracle,
/// drivers, kernels, initial-image seeding). A change here invalidates all
/// checksums everywhere at once, which is exactly the property a
/// differential harness needs.
inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDull;
  return h ^ (h >> 33);
}

enum class KernelKind : std::uint8_t {
  Empty,    ///< no busywork: measures pure runtime overhead
  Compute,  ///< `iterations` rounds of register-only integer mixing
  Memory,   ///< `iterations` read-modify-write sweeps over a 4 KiB scratch
};

const char* to_string(KernelKind k) noexcept;

struct KernelSpec {
  KernelKind kind = KernelKind::Empty;
  std::uint32_t iterations = 0;  ///< grain: mixing rounds / scratch sweeps
};

/// Run the busywork and return its deterministic result. Thread-safe and
/// allocation-free (the memory kernel sweeps a stack scratch buffer).
std::uint64_t run_kernel(const KernelSpec& k, long t, long p) noexcept;

}  // namespace smpss::patterns
