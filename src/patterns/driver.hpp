// Lowers generated dependency patterns onto the runtimes under test.
//
// Two lowerings onto the SMPSs spawn API:
//
//   * Address mode — every cell is its own datum: task (t, p) spawns with
//     one `in()` per input cell and `out()` on its produced cell (or a
//     single `inout()` for the in-place chain pattern). Exercises the
//     address-keyed DependencyAnalyzer, renaming, and the version chains.
//     Bounded by kMaxAddressFanIn input cells per task (spawn arity is
//     compile-time); wide fan-in patterns use region mode instead.
//
//   * Region mode — every row is one array and each dependence interval is
//     an `in(base, Region{lo..hi})` parameter, the write an
//     `out(base, Region{p:1})`. Exercises the RegionAnalyzer, whose
//     interval-overlap conflicts handle arbitrary fan-in (all_to_all reads
//     a whole row with a single parameter).
//
// Two submission shapes:
//
//   * Flat — the paper-faithful model: the main thread submits every task
//     in (t, p) order and the analyzer alone reconstructs the graph.
//   * NestedSteps — one generator task per timestep, serialized by an
//     inout sentinel token; each step task submits its row's point tasks
//     from whatever worker runs it (optionally taskwait()ing them), so
//     submission, analysis, and retirement of adjacent steps overlap across
//     threads. Requires Config::nested_tasks.
//
// Plus dependency-free baselines (fork-join, OMP3-style task pool) running
// the same pattern with a barrier per timestep — the comparison curves of
// bench/task_bench.cpp — and the intended-edge enumeration the
// GraphRecorder fidelity tests diff the recorded graph against.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "patterns/oracle.hpp"
#include "runtime/config.hpp"
#include "runtime/stats.hpp"

namespace smpss {
class Runtime;
class StreamHandle;
struct TaskType;
}

namespace smpss::patterns {

enum class LowerMode : std::uint8_t { Address, Region };
const char* to_string(LowerMode m) noexcept;

enum class SubmitShape : std::uint8_t { Flat, NestedSteps };
const char* to_string(SubmitShape s) noexcept;

/// Optional commuting-write side channel: every point task of timestep t
/// additionally adds its produced value into one shared accumulator cell
/// per step (wrapping uint64 addition, so any order is bit-exact against
/// oracle_step_sums). Commutative lowers the accumulator parameter as
/// `smpss::commutative(...)` — mutual exclusion, no ordering; Concurrent as
/// `smpss::reduction(smpss::Plus{}, ...)` — per-worker privatization
/// (requires Config::renaming). An all_to_all spec with AccumMode is the
/// "all writers hit one datum" stress the ISSUE's commuting modes exist
/// for: width tasks per step racing one token instead of chaining.
enum class AccumMode : std::uint8_t { None, Commutative, Concurrent };
const char* to_string(AccumMode a) noexcept;

/// Address-mode spawn arity ceiling (input cells per task). Patterns whose
/// max_fan_in exceeds it must run in region mode.
inline constexpr long kMaxAddressFanIn = 8;

inline bool address_mode_ok(const PatternSpec& spec) {
  return spec.max_fan_in() <= kMaxAddressFanIn;
}

struct RunOptions {
  Config cfg;
  LowerMode mode = LowerMode::Address;
  SubmitShape shape = SubmitShape::Flat;
  int nfields = 0;          ///< image rows; 0 = default_fields(spec)
  bool join_steps = false;  ///< NestedSteps: taskwait() before a step ends
  AccumMode accum = AccumMode::None;  ///< per-step commuting accumulator

  /// One-line description for failure messages / replay logs.
  std::string describe() const;
};

/// Submit every task of `spec` over `img` (no barrier — the caller owns the
/// Runtime and synchronizes/inspects it). `sentinel` must point at a cell
/// that outlives the barrier when shape == NestedSteps; unused otherwise.
/// With accum != None, `accums` must point at `spec.steps` zeroed cells
/// outliving the barrier (one commuting accumulator per timestep).
void submit_pattern(Runtime& rt, const PatternSpec& spec, PatternImage& img,
                    LowerMode mode, SubmitShape shape = SubmitShape::Flat,
                    bool join_steps = false, Cell* sentinel = nullptr,
                    AccumMode accum = AccumMode::None, Cell* accums = nullptr);

/// Service-mode lowering: submit every task of `spec` through `stream` in
/// Flat (t, p) order. `point` must be pre-registered on the stream's
/// runtime (register_task_type requires zero live tasks, and sibling
/// streams may already be running). The caller drains/closes the stream.
void submit_pattern_stream(StreamHandle& stream, TaskType point,
                           const PatternSpec& spec, PatternImage& img,
                           LowerMode mode);

struct RunResult {
  PatternImage image;
  StatsSnapshot stats;
  std::vector<Cell> accums;  ///< per-step sums when opt.accum != None
};

/// Build the image, run the pattern to completion on a fresh Runtime, and
/// return the final image (compare to run_oracle) plus the run's stats.
RunResult run_pattern(const PatternSpec& spec, const RunOptions& opt);

/// The same pattern on the dependency-free baselines: one spawn per point,
/// one join per timestep (the program supplies the synchronization the
/// dependency analysis would have discovered).
PatternImage run_taskpool_baseline(const PatternSpec& spec, int nfields,
                                   unsigned nthreads);
PatternImage run_forkjoin_baseline(const PatternSpec& spec, int nfields,
                                   unsigned nthreads);

// --- graph fidelity -----------------------------------------------------------

/// Every intended true-dependency edge (producer seq -> consumer seq) under
/// Flat submission — seqs are 1-based in (t, p) submission order, matching
/// GraphRecorder::NodeRec::seq — sorted; duplicates preserved (spread's
/// modular stride can name one producer twice, which submits two analyzer
/// accesses).
std::vector<std::pair<std::uint64_t, std::uint64_t>> intended_true_edges(
    const PatternSpec& spec);

}  // namespace smpss::patterns
