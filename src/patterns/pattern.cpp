#include "patterns/pattern.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace smpss::patterns {

const char* to_string(PatternKind k) noexcept {
  switch (k) {
    case PatternKind::Trivial: return "trivial";
    case PatternKind::Chain: return "chain";
    case PatternKind::Stencil1D: return "stencil_1d";
    case PatternKind::Stencil1DPeriodic: return "stencil_1d_periodic";
    case PatternKind::Fft: return "fft";
    case PatternKind::Tree: return "tree";
    case PatternKind::RandomNearest: return "random_nearest";
    case PatternKind::AllToAll: return "all_to_all";
    case PatternKind::Spread: return "spread";
  }
  return "?";
}

const std::array<PatternKind, kPatternKindCount>&
all_pattern_kinds() noexcept {
  static const std::array<PatternKind, kPatternKindCount> kinds = {
      PatternKind::Trivial,        PatternKind::Chain,
      PatternKind::Stencil1D,      PatternKind::Stencil1DPeriodic,
      PatternKind::Fft,            PatternKind::Tree,
      PatternKind::RandomNearest,  PatternKind::AllToAll,
      PatternKind::Spread,
  };
  return kinds;
}

namespace {

long ceil_log2(long n) noexcept {
  long stages = 0;
  while ((1L << stages) < n) ++stages;
  return stages;
}

/// Seeded inclusion decision for random_nearest: a pure hash of
/// (seed, dependence set, consumer point, candidate point), biased to
/// `fraction_ppm` parts per million. Integer-only so every platform and
/// every execution mode draws the same graph.
bool random_edge(const PatternSpec& s, long dset, long p, long q) noexcept {
  std::uint64_t h = mix64(s.seed ^ 0x72616E646F6D6E65ull /* "randomne" */,
                          static_cast<std::uint64_t>(dset));
  h = mix64(h, static_cast<std::uint64_t>(p));
  h = mix64(h, static_cast<std::uint64_t>(q));
  return h % 1000000u < s.fraction_ppm;
}

}  // namespace

long PatternSpec::width_at(long t) const noexcept {
  if (kind == PatternKind::Tree)
    return std::min<long>(width, 1L << std::min<long>(t, 30));
  return width;
}

std::size_t PatternSpec::dependencies(long t, long p,
                                      Interval out[kMaxIntervals]) const
    noexcept {
  if (t <= 0) return 0;
  const long w = width;
  // The dependence-set rotation of spread/random_nearest: the pattern
  // repeats with period `period`, so short runs still cover several
  // distinct neighbor sets (task-bench's dependence sets).
  const long dset = (t - 1) % period;
  switch (kind) {
    case PatternKind::Trivial:
      return 0;
    case PatternKind::Chain:
      out[0] = {static_cast<std::int32_t>(p), static_cast<std::int32_t>(p)};
      return 1;
    case PatternKind::Stencil1D:
      out[0] = {static_cast<std::int32_t>(std::max<long>(0, p - 1)),
                static_cast<std::int32_t>(std::min<long>(p + 1, w - 1))};
      return 1;
    case PatternKind::Stencil1DPeriodic: {
      std::size_t n = 0;
      out[n++] = {static_cast<std::int32_t>(std::max<long>(0, p - 1)),
                  static_cast<std::int32_t>(std::min<long>(p + 1, w - 1))};
      if (p - 1 < 0 && w > 1)  // wrap to the right edge
        out[n++] = {static_cast<std::int32_t>(w - 1),
                    static_cast<std::int32_t>(w - 1)};
      if (p + 1 >= w && w > 1)  // wrap to the left edge
        out[n++] = {0, 0};
      return n;
    }
    case PatternKind::Fft: {
      const long stages = std::max<long>(1, ceil_log2(w));
      const long d = 1L << ((t - 1) % stages);
      std::size_t n = 0;
      if (p - d >= 0)
        out[n++] = {static_cast<std::int32_t>(p - d),
                    static_cast<std::int32_t>(p - d)};
      out[n++] = {static_cast<std::int32_t>(p), static_cast<std::int32_t>(p)};
      if (p + d < w)
        out[n++] = {static_cast<std::int32_t>(p + d),
                    static_cast<std::int32_t>(p + d)};
      return n;
    }
    case PatternKind::Tree: {
      // Point p of a doubling row descends from p/2, which always lies
      // inside the previous row (width_at(t) <= 2 * width_at(t-1)).
      const long parent = p / 2;
      out[0] = {static_cast<std::int32_t>(parent),
                static_cast<std::int32_t>(parent)};
      return 1;
    }
    case PatternKind::RandomNearest: {
      // A p-centered window of `radix` candidates; each candidate is kept
      // by a seeded coin flip except p itself, which is always kept so the
      // graph never degenerates to trivial.
      const long first = std::max<long>(0, p - radix / 2);
      const long last = std::min<long>(p + (radix - 1) / 2, w - 1);
      std::size_t n = 0;
      long run_start = -1;
      for (long q = first; q <= last + 1; ++q) {
        const bool keep =
            q <= last && (q == p || random_edge(*this, dset, p, q));
        if (keep && run_start < 0) run_start = q;
        if (!keep && run_start >= 0) {
          out[n++] = {static_cast<std::int32_t>(run_start),
                      static_cast<std::int32_t>(q - 1)};
          run_start = -1;
        }
      }
      return n;
    }
    case PatternKind::AllToAll:
      out[0] = {0, static_cast<std::int32_t>(w - 1)};
      return 1;
    case PatternKind::Spread:
      // `radix` producers strided width/radix apart, rotated by the
      // dependence set; the modulo can collide points for small widths and
      // that duplication is deliberately preserved (see the header).
      for (long i = 0; i < radix; ++i) {
        const long q =
            (p + i * (w / radix) + (i > 0 ? dset : 0)) % w;
        out[static_cast<std::size_t>(i)] = {static_cast<std::int32_t>(q),
                                            static_cast<std::int32_t>(q)};
      }
      return static_cast<std::size_t>(radix);
  }
  return 0;
}

long PatternSpec::fan_in_cells(long t, long p) const noexcept {
  Interval iv[kMaxIntervals];
  const std::size_t n = dependencies(t, p, iv);
  long cells = 0;
  for (std::size_t i = 0; i < n; ++i) cells += iv[i].cells();
  return cells;
}

long PatternSpec::max_fan_in() const noexcept {
  long m = 0;
  for (long t = 1; t < steps; ++t)
    for (long p = 0; p < width_at(t); ++p)
      m = std::max(m, fan_in_cells(t, p));
  return m;
}

std::uint64_t PatternSpec::total_tasks() const noexcept {
  std::uint64_t n = 0;
  for (long t = 0; t < steps; ++t)
    n += static_cast<std::uint64_t>(width_at(t));
  return n;
}

void PatternSpec::validate() const {
  SMPSS_CHECK(width >= 1, "pattern width must be >= 1");
  SMPSS_CHECK(steps >= 1, "pattern steps must be >= 1");
  SMPSS_CHECK(radix >= 1 && static_cast<std::size_t>(radix) <= kMaxIntervals,
              "pattern radix must be in [1, 8]");
  SMPSS_CHECK(period >= 1, "pattern period must be >= 1");
  SMPSS_CHECK(fraction_ppm <= 1000000u,
              "pattern fraction_ppm must be <= 1000000");
  if (kind == PatternKind::Spread)
    SMPSS_CHECK(radix <= width, "spread radix must be <= width");
}

std::string PatternSpec::describe() const {
  std::ostringstream os;
  os << "pattern=" << to_string(kind) << " width=" << width
     << " steps=" << steps << " radix=" << radix << " period=" << period
     << " fraction=" << fraction_ppm << " seed=" << seed
     << " kernel=" << to_string(kernel.kind) << "/" << kernel.iterations;
  return os.str();
}

}  // namespace smpss::patterns
