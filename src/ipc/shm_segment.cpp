#include "ipc/shm_segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"

namespace smpss::ipc {

ShmSegment ShmSegment::create(std::size_t bytes) {
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t ps = page > 0 ? static_cast<std::size_t>(page) : 4096;
  bytes = (bytes + ps - 1) / ps * ps;

  // A per-pid name defeats collisions between concurrent test processes;
  // O_EXCL retries with a nonce cover the (pid reuse) leftovers of a
  // crashed earlier run. The name lives only for the shm_open/shm_unlink
  // window below.
  int fd = -1;
  char name[64];
  for (unsigned nonce = 0; nonce < 64; ++nonce) {
    std::snprintf(name, sizeof name, "/smpss-ipc-%ld-%u",
                  static_cast<long>(::getpid()), nonce);
    fd = ::shm_open(name, O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fd >= 0) break;
    SMPSS_CHECK(errno == EEXIST, "shm_open failed");
  }
  SMPSS_CHECK(fd >= 0, "shm_open could not find a free name");

  SMPSS_CHECK(::ftruncate(fd, static_cast<off_t>(bytes)) == 0,
              "ftruncate on shm segment failed");
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  // Unlink + close before any early return: the mapping alone keeps the
  // memory alive, and no name survives this function.
  ::shm_unlink(name);
  ::close(fd);
  SMPSS_CHECK(base != MAP_FAILED, "mmap of shm segment failed");
  std::memset(base, 0, bytes);
  return ShmSegment(base, bytes);
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    base_ = other.base_;
    bytes_ = other.bytes_;
    other.base_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

std::size_t SegmentAllocator::reserve(std::size_t bytes, std::size_t align) {
  const std::size_t aligned = (off_ + align - 1) & ~(align - 1);
  SMPSS_CHECK(aligned + bytes <= seg_->size(),
              "shm segment sized too small for the requested layout");
  off_ = aligned + bytes;
  return aligned;
}

}  // namespace smpss::ipc
