// The multi-process dependency manager (ROADMAP item 4): run a generated
// dependency pattern across N rank processes, each owning a hash-shard of
// the datum space, over one POSIX shared-memory segment.
//
// Model. The datum space is the pattern image's cells; datum (f, p) is
// owned by rank hash(f, p) % nprocs, and task (t, p) executes on the owner
// of the cell it produces — so every write to a datum lands in one process
// and that process's local DependencyAnalyzer owns the datum's version
// chain outright (the dependency manager is *sharded by datum hash*, not
// replicated). Rank 0 doubles as the coordinator: it walks the global
// (t, p) submission order and streams Submit/SubmitStep messages to the
// owning ranks over per-process-pair SPSC rings (ipc/msg_ring.hpp);
// executed tasks answer with Retire messages that drive the coordinator's
// global accounting.
//
// Data transfer reuses the copy-in/copy-back discipline: a task's produced
// value is copied from its (possibly renamed) resolved storage into an
// immutable per-task slot in the segment at the end of the task body
// ("copy-back" = publish, with a release-stored ready flag), and a consumer
// rank copies a remote input from the slot into a private per-(t, p)
// staging cell before spawning the reader ("copy-in" = fetch). Within a
// rank, dependencies flow through the rank's own analyzer exactly as in
// single-process runs — renaming, version chains, lock-free publication and
// scheduling policies all apply unchanged per shard.
//
// Progress. Every wait (a remote ready flag, a full ring, the coordinator's
// retire count) pumps Runtime::help_one(), so each rank keeps executing its
// own ready tasks while it waits; dependencies only ever reach one timestep
// back, which gives an inductive progress guarantee even at one thread per
// rank. The coordinator additionally polls child liveness (a dead rank can
// never complete the run, so it kills the group and aborts instead of
// hanging) and an overall deadline, mirrored by an abort flag in the
// segment header that the children watch.
//
// Scope. Address-mode lowering, Flat and NestedSteps submission shapes.
// Region mode and the commuting accumulator side channel stay
// single-process (the conformance sweep covers them there).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "patterns/driver.hpp"

namespace smpss::ipc {

/// One rank's contribution to the cross-process accounting: the per-stream
/// accounting story extended across processes — rank rows must sum to the
/// global totals the coordinator counted via Retire messages.
struct DistRankStats {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t renames = 0;
  std::uint64_t rename_bytes = 0;
  std::uint64_t publishes = 0;     ///< slot copy-backs (every owned task)
  std::uint64_t fetches = 0;       ///< remote-input slot copy-ins
  std::uint64_t retires_sent = 0;  ///< Retire messages to the coordinator
};

struct DistResult {
  patterns::PatternImage image;      ///< assembled from every rank's shard
  std::vector<DistRankStats> ranks;  ///< index = rank
  std::uint64_t total_tasks = 0;
  std::uint64_t retires_received = 0;  ///< coordinator-side Retire count
  /// Global true-edge multiset (producer gseq, consumer gseq), sorted; the
  /// union of every rank's recorded + self-recorded edges. Filled only when
  /// cfg.record_graph (which requires Flat shape and num_threads == 1 so
  /// the per-rank recording window is deterministic).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  bool clean_children = true;  ///< every child rank _exit(0)ed
};

/// Owner rank of datum (f, p) — exposed so tests can reason about the
/// shard split (e.g. find a spec that actually crosses process boundaries).
unsigned datum_owner(long f, long p, unsigned nprocs) noexcept;

/// Run `spec` across `nprocs` processes (rank 0 = the calling process;
/// nprocs - 1 forked children). The caller must be effectively
/// single-threaded (no live Runtime) — fork discipline. `opt.cfg` is the
/// per-rank runtime configuration (procs is ignored here; the pattern-level
/// run_pattern() is the dispatcher that reads it).
DistResult run_pattern_dist(const patterns::PatternSpec& spec,
                            const patterns::RunOptions& opt, unsigned nprocs);

}  // namespace smpss::ipc
