// Fixed-capacity message rings in shared memory, one per ordered process
// pair. The protocol of the multi-process backend is tiny — submit, retire,
// done — so a 32-byte fixed message and a power-of-two ring of them cover
// it without any in-segment allocation after setup.
//
// Concurrency contract: each ring has exactly one consumer *process* (the
// pair's destination rank, which drains it from one thread at a time) and
// one producer *process*; because a producer process may be multi-threaded
// (worker threads publishing retire messages), the producer side takes a
// spinlock that lives in the ring header. The lock is in shared memory but
// only threads of the one producer rank ever touch it, so it is still a
// process-local lock — no cross-process lock-holder-dies hazard on the
// consumer side.
//
// Progress contract: send() never blocks without running the caller-supplied
// pump, which the backend wires to Runtime::help_one() plus (on the
// coordinator) ring draining and child liveness checks. That keeps a full
// ring from deadlocking a 1-thread-per-rank configuration.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/check.hpp"
#include "common/spin.hpp"

namespace smpss::ipc {

/// Message kinds of the distributed-backend protocol.
enum class MsgKind : std::uint32_t {
  Invalid = 0,
  Submit,      // coordinator -> executor: run task a=(t), b=(p), c=global seq
  SubmitStep,  // coordinator -> executor: spawn your tasks of step a (nested)
  Retire,      // executor -> coordinator: global seq a finished
  Done,        // coordinator -> executor: no more work; drain and exit
};

/// One fixed-size protocol message. Interpretation of a/b/c is per-kind.
struct IpcMsg {
  MsgKind kind = MsgKind::Invalid;
  std::uint32_t from = 0;  // sender rank
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};
static_assert(sizeof(IpcMsg) == 32, "IpcMsg layout is part of the protocol");

/// SPSC (single consumer process, single producer process) bounded ring.
/// Lives entirely inside the shared segment; constructed by placement into
/// zero-filled memory, so the zero state must be a valid empty ring.
class MsgRing {
 public:
  static constexpr std::uint64_t kCapacity = 1024;  // power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  /// Try to enqueue; false when full. Thread-safe on the producer side.
  bool try_send(const IpcMsg& m) noexcept {
    lock_.lock();
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= kCapacity) {
      lock_.unlock();
      return false;
    }
    slots_[head & (kCapacity - 1)] = m;
    head_.store(head + 1, std::memory_order_release);
    lock_.unlock();
    return true;
  }

  /// Enqueue, running `pump()` while the ring is full. Pump must make
  /// global progress (drain rings / execute tasks) or abort on deadline.
  template <typename Pump>
  void send(const IpcMsg& m, Pump&& pump) {
    Backoff b;
    while (!try_send(m)) {
      pump();
      b.pause();
    }
  }

  /// Try to dequeue; false when empty. Single-threaded consumer side.
  bool try_recv(IpcMsg& out) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = slots_[tail & (kCapacity - 1)];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) SpinLock lock_;  // producer-rank threads only
  alignas(64) IpcMsg slots_[kCapacity];
};

}  // namespace smpss::ipc
