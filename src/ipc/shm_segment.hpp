// POSIX shared-memory segment shared by a fork()ed process group.
//
// The multi-process backend (ipc/dist_runtime.hpp) communicates through one
// segment created by the coordinating process *before* it forks the worker
// ranks: shm_open gives an anonymous-by-convention tmpfs object, ftruncate
// sizes it, mmap(MAP_SHARED) maps it, and the name is shm_unlink()ed
// immediately — the mapping (and the atomics inside it) is inherited by
// every child at the same virtual address, so pointers into the segment are
// valid in every rank and nothing can leak a /dev/shm name past process
// death, even on SIGKILL.
//
// Layout inside the segment is the caller's business; SegmentAllocator is a
// single-threaded bump allocator used during setup (before the fork), after
// which the layout is frozen and ranks only touch their agreed-upon slots.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace smpss::ipc {

class ShmSegment {
 public:
  ShmSegment() = default;

  /// Create + map a segment of `bytes` (rounded up to the page size),
  /// zero-filled. Aborts (SMPSS_CHECK) on any system-call failure — segment
  /// creation happens during test/bench setup where "can't" means a broken
  /// host, not a recoverable condition.
  static ShmSegment create(std::size_t bytes);

  ~ShmSegment();

  ShmSegment(ShmSegment&& other) noexcept
      : base_(other.base_), bytes_(other.bytes_) {
    other.base_ = nullptr;
    other.bytes_ = 0;
  }
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  void* base() const noexcept { return base_; }
  std::size_t size() const noexcept { return bytes_; }
  bool valid() const noexcept { return base_ != nullptr; }

  /// Typed view of the bytes at `offset`.
  template <typename T>
  T* at(std::size_t offset) const noexcept {
    return reinterpret_cast<T*>(static_cast<char*>(base_) + offset);
  }

 private:
  ShmSegment(void* base, std::size_t bytes) : base_(base), bytes_(bytes) {}
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Setup-time bump allocator over a segment: hands out cache-line-aligned
/// (or stricter) ranges and aborts when the segment was sized too small.
/// Single-threaded by design — the layout is fixed before the fork.
class SegmentAllocator {
 public:
  explicit SegmentAllocator(ShmSegment& seg) : seg_(&seg) {}

  /// Reserve `bytes` aligned to `align` (power of two); returns the offset.
  std::size_t reserve(std::size_t bytes, std::size_t align = 64);

  template <typename T>
  T* alloc(std::size_t count = 1) {
    return seg_->at<T>(reserve(sizeof(T) * count, alignof(T) < 8 ? 8
                                                                 : alignof(T)));
  }

  std::size_t used() const noexcept { return off_; }

 private:
  ShmSegment* seg_;
  std::size_t off_ = 0;
};

}  // namespace smpss::ipc
