// Process lifecycle for the multi-process backend: fork the worker ranks,
// join them with per-child exit status, detect crashes, and clean up.
//
// Fork discipline: the coordinator must be effectively single-threaded when
// it calls spawn() — in this codebase that means no live Runtime (its
// destructor joins the workers) and no exporter thread. Children run the
// rank function and _exit() so they never unwind the parent's atexit/gtest
// state they inherited.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace smpss::ipc {

/// Outcome of one child rank, filled in by join().
struct ChildExit {
  pid_t pid = -1;
  bool exited = false;    // normal _exit (vs signal / still running)
  int exit_code = -1;     // valid when exited
  int term_signal = 0;    // valid when !exited and signaled
  bool clean() const { return exited && exit_code == 0; }
};

/// Fork-N/join-all helper. Ranks are 1..n_children (rank 0 is the calling
/// coordinator process itself and never forks).
class ProcessGroup {
 public:
  ProcessGroup() = default;
  ~ProcessGroup();  // joins (after kill) anything still running
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// Fork `n_children` ranks; each child runs `body(rank)` with rank in
  /// [1, n_children] and then _exit(0) (or _exit(1) if body returns false).
  /// Returns only in the parent.
  void spawn(unsigned n_children, const std::function<bool(unsigned)>& body);

  /// Non-blocking liveness sweep (waitpid WNOHANG). Returns true if every
  /// child that has exited so far did so cleanly; a crashed child makes
  /// this false immediately, without waiting for the others.
  bool poll();

  /// Blocking join of all children. When `stats_path` is non-empty, each
  /// uncleanly-exited rank gets a partial-run marker appended there (the
  /// dead child's exporter could not write its final line). Returns true
  /// iff every child exited cleanly.
  bool join(const std::string& stats_path = std::string());

  /// SIGKILL every still-running child (crash-propagation path: one dead
  /// rank means the run can never complete, so take the rest down).
  void kill_all();

  const std::vector<ChildExit>& children() const { return children_; }
  bool any_unclean() const { return any_unclean_; }

 private:
  void reap(std::size_t idx, int status);

  std::vector<ChildExit> children_;
  bool any_unclean_ = false;
};

}  // namespace smpss::ipc
