#include "ipc/dist_runtime.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/memcopy.hpp"
#include "common/timing.hpp"
#include "ipc/msg_ring.hpp"
#include "ipc/process_group.hpp"
#include "ipc/shm_segment.hpp"
#include "patterns/oracle.hpp"
#include "runtime/runtime.hpp"

namespace smpss::ipc {

using patterns::Cell;
using patterns::Interval;
using patterns::kMaxAddressFanIn;
using patterns::kMaxIntervals;
using patterns::PatternImage;
using patterns::PatternKind;
using patterns::PatternSpec;
using patterns::RunOptions;

unsigned datum_owner(long f, long p, unsigned nprocs) noexcept {
  return static_cast<unsigned>(
      patterns::mix64(0x534d505353495043ull /* "SMPSSIPC" */,
                      (static_cast<std::uint64_t>(f) << 32) ^
                          static_cast<std::uint64_t>(p)) %
      nprocs);
}

namespace {

/// Wall-clock ceiling on one distributed run: long past any test/bench
/// duration, short enough that a protocol bug fails instead of hanging CI.
constexpr std::uint64_t kDeadlineNs = 180ull * 1000 * 1000 * 1000;

/// One task's published version: copy-back target of the producing body,
/// copy-in source of every remote reader. Immutable once `ready` is set.
struct alignas(64) SlotRec {
  std::atomic<std::uint64_t> ready{0};
  Cell value = 0;
};

struct alignas(64) RankFlag {
  std::atomic<std::uint64_t> v{0};
};

struct EdgeRec64 {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// Segment header: the cross-rank abort flag (set by whichever rank hits a
/// deadline or detects a dead sibling; everyone else sees it in their pump
/// and leaves).
struct DistHeader {
  std::atomic<std::uint64_t> abort_flag{0};
};

/// Pointers into the one shared segment; identical in every rank because
/// the mapping is inherited across fork at the same virtual address.
struct SharedView {
  DistHeader* hdr = nullptr;
  MsgRing* to_coord = nullptr;    ///< [nprocs] ring rank -> 0
  MsgRing* from_coord = nullptr;  ///< [nprocs] ring 0 -> rank
  SlotRec* slots = nullptr;       ///< [total_tasks], indexed gseq - 1
  Cell* result = nullptr;         ///< [nfields * width] final shard values
  DistRankStats* stats = nullptr;  ///< [nprocs]
  RankFlag* rank_done = nullptr;   ///< [nprocs]
  EdgeRec64* edges = nullptr;      ///< [nprocs * edge_cap] (record_graph)
  std::uint64_t* edge_count = nullptr;  ///< [nprocs]
  std::uint64_t edge_cap = 0;
};

/// Everything one rank's submission loop and task bodies share. Lives on
/// the rank's own stack/heap; bodies capture a raw pointer (trivially
/// copyable closures, same discipline as the single-process driver bodies).
struct RankCtx {
  const PatternSpec* spec = nullptr;
  SharedView sh;
  unsigned rank = 0;
  unsigned nprocs = 1;
  int nfields = 1;
  bool record = false;  ///< deterministic edge accounting is on

  Runtime* rt = nullptr;
  TaskType tt{};

  PatternImage img;             ///< this rank's private image copy
  std::vector<Cell> fetch_buf;  ///< staging, one cell per (t, p)
  std::vector<std::uint64_t> first_seq;  ///< gseq of (t, 0), per t
  Cell sentinel = 0;                     ///< NestedSteps generator chain

  // --- record-mode bookkeeping (threads == 1, Flat: no races) ------------
  std::vector<unsigned char> done_g;  ///< by gseq: local producer finished
  std::vector<std::uint64_t> local_to_global;  ///< recorder seq -> gseq
  std::vector<EdgeRec64> self_edges;  ///< fetch + already-retired edges

  std::atomic<std::uint64_t> publishes{0};  ///< body-side, any worker
  std::uint64_t fetches = 0;                ///< submit-side, single-threaded
  std::uint64_t deadline_ns = 0;
  std::thread::id main_tid;  ///< the rank's submission/drain thread

  // --- coordinator only --------------------------------------------------
  ProcessGroup* group = nullptr;
  std::uint64_t retires_received = 0;
  std::uint64_t poll_tick = 0;

  std::uint64_t gseq_of(long t, long p) const {
    return first_seq[static_cast<std::size_t>(t)] +
           static_cast<std::uint64_t>(p);
  }
  std::size_t stage_index(long t, long p) const {
    return static_cast<std::size_t>(t) *
               static_cast<std::size_t>(spec->width) +
           static_cast<std::size_t>(p);
  }
};

[[noreturn]] void leave_aborted(RankCtx& c, const char* why) {
  c.sh.hdr->abort_flag.store(1, std::memory_order_release);
  if (c.rank != 0) ::_exit(3);
  if (c.group != nullptr) c.group->kill_all();
  SMPSS_CHECK(false, why);
  ::_exit(3);  // unreachable; CHECK aborts
}

/// The pump every wait loop interleaves: run one ready local task, watch
/// the abort flag and the deadline. Safe from the main thread and from
/// inside task bodies alike (help_one never blocks).
void body_pump(RankCtx& c) {
  if (c.sh.hdr->abort_flag.load(std::memory_order_acquire) != 0)
    leave_aborted(c, "distributed run aborted by a sibling rank");
  if (now_ns() > c.deadline_ns)
    leave_aborted(c, "distributed run exceeded its deadline");
  c.rt->help_one();
}

/// Coordinator main-loop pump: body_pump plus draining the Retire rings
/// (their consumer is exclusively this thread) and a throttled child
/// liveness poll.
void coord_pump(RankCtx& c) {
  body_pump(c);
  IpcMsg m;
  for (unsigned r = 0; r < c.nprocs; ++r)
    while (c.sh.to_coord[r].try_recv(m)) {
      SMPSS_CHECK(m.kind == MsgKind::Retire,
                  "unexpected message on a retire ring");
      ++c.retires_received;
    }
  if ((++c.poll_tick & 255u) == 0 && c.group != nullptr &&
      !c.group->poll())
    leave_aborted(c, "a child rank died before the run completed");
}

/// The one wait-loop pump: the coordinator's main thread drains its rings
/// (it is the retire rings' single consumer — a body running on one of
/// rank 0's *worker* threads must not, hence the thread-id dispatch);
/// everyone else just helps execute and watches for abort.
void pump(RankCtx& c) {
  if (c.rank == 0 && std::this_thread::get_id() == c.main_tid)
    coord_pump(c);
  else
    body_pump(c);
}

void publish_and_retire(RankCtx* c, std::uint64_t gseq, const Cell* produced) {
  SlotRec& s = c->sh.slots[gseq - 1];
  // Copy-back into the segment: resolved (possibly renamed) storage -> the
  // immutable published slot. safe_copy for the same reason as the
  // close-node inherit copies — a user datum may itself live in a segment.
  safe_copy(&s.value, produced, sizeof(Cell));
  s.ready.store(1, std::memory_order_release);
  if (c->record) c->done_g[gseq] = 1;
  c->publishes.fetch_add(1, std::memory_order_relaxed);
  IpcMsg m;
  m.kind = MsgKind::Retire;
  m.from = c->rank;
  m.a = gseq;
  c->sh.to_coord[c->rank].send(m, [c] { pump(*c); });
}

// --- task bodies ----------------------------------------------------------
// The single-process driver's fold bodies plus the publish epilogue; same
// trivially-copyable-struct discipline (one closure instantiation per
// arity), reading and writing only through resolved parameters.

struct DistAddrBody {
  PatternSpec spec;
  std::int32_t t, p;
  std::uint64_t gseq;
  RankCtx* ctx;
  template <typename... In>
  void operator()(Cell* dst, In... ins) const {
    std::uint64_t h = patterns::value_seed(spec, t, p);
    ((h = patterns::value_fold(h, *ins)), ...);
    *dst = patterns::value_finish(spec, h, t, p);
    publish_and_retire(ctx, gseq, dst);
  }
};

struct DistChainBody {
  PatternSpec spec;
  std::int32_t t, p;
  std::uint64_t gseq;
  RankCtx* ctx;
  void operator()(Cell* cell) const {
    std::uint64_t h = patterns::value_seed(spec, t, p);
    h = patterns::value_fold(h, *cell);
    *cell = patterns::value_finish(spec, h, t, p);
    publish_and_retire(ctx, gseq, cell);
  }
};

template <std::size_t N>
void spawn_dist_n(RankCtx& c, const DistAddrBody& body, Cell* dst,
                  [[maybe_unused]] const std::array<const Cell*,
                                                    kMaxAddressFanIn>& ins) {
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    c.rt->spawn(c.tt, body, out(dst), in(ins[Is])...);
  }(std::make_index_sequence<N>{});
}

void spawn_dist(RankCtx& c, const DistAddrBody& body, Cell* dst,
                const std::array<const Cell*, kMaxAddressFanIn>& ins,
                std::size_t n) {
  switch (n) {
    case 0: spawn_dist_n<0>(c, body, dst, ins); break;
    case 1: spawn_dist_n<1>(c, body, dst, ins); break;
    case 2: spawn_dist_n<2>(c, body, dst, ins); break;
    case 3: spawn_dist_n<3>(c, body, dst, ins); break;
    case 4: spawn_dist_n<4>(c, body, dst, ins); break;
    case 5: spawn_dist_n<5>(c, body, dst, ins); break;
    case 6: spawn_dist_n<6>(c, body, dst, ins); break;
    case 7: spawn_dist_n<7>(c, body, dst, ins); break;
    case 8: spawn_dist_n<8>(c, body, dst, ins); break;
    default:
      SMPSS_CHECK(false, "address-mode fan-in exceeds kMaxAddressFanIn");
  }
}

// --- submission -----------------------------------------------------------

/// Spawn owned task (t, p) on this rank: stage remote inputs (copy-in from
/// published slots, pumping while they wait), wire local inputs straight to
/// the rank's own image cells so the local analyzer sees the dependency.
void submit_point(RankCtx& c, long t, long p) {
  const PatternSpec& spec = *c.spec;
  const std::uint64_t gseq = c.gseq_of(t, p);
  const long src_f = t > 0 ? (t - 1) % c.nfields : 0;
  const long dst_f = t % c.nfields;
  const bool in_place =
      spec.kind == PatternKind::Chain && c.nfields == 1 && t > 0;
  if (c.record) c.local_to_global.push_back(gseq);
  Interval iv[kMaxIntervals];
  const std::size_t n = spec.dependencies(t, p, iv);

  if (in_place) {
    // Chain on a single row: producer (t-1, p) writes the same datum, so
    // it is local by construction; the inout RAW carries the dependency.
    if (c.record) {
      const std::uint64_t pg = c.gseq_of(t - 1, p);
      if (c.done_g[pg] != 0)
        c.self_edges.push_back(EdgeRec64{pg, gseq});  // runtime skips it
    }
    c.rt->spawn(c.tt,
                DistChainBody{spec, static_cast<std::int32_t>(t),
                              static_cast<std::int32_t>(p), gseq, &c},
                inout(&c.img.at(0, p)));
    return;
  }

  std::array<const Cell*, kMaxAddressFanIn> ins{};
  std::array<std::uint64_t, kMaxAddressFanIn> local_pg{};  // 0 = remote
  std::size_t cnt = 0;
  for (std::size_t k = 0; k < n; ++k)
    for (long q = iv[k].lo; q <= iv[k].hi; ++q) {
      SMPSS_CHECK(cnt < static_cast<std::size_t>(kMaxAddressFanIn),
                  "address-mode fan-in exceeds kMaxAddressFanIn");
      const std::uint64_t pg = c.gseq_of(t - 1, q);
      if (datum_owner(src_f, q, c.nprocs) == c.rank) {
        // Local dependency: same address the producer wrote; the rank's
        // own analyzer orders (and records) it.
        if (c.record) local_pg[cnt] = pg;
        ins[cnt++] = &c.img.at(src_f, q);
      } else {
        // Remote dependency: wait for the published version, copy it into
        // this (t-1, q)'s private staging cell (written exactly once, so
        // readers of any later step never alias it), and read from there.
        SlotRec& s = c.sh.slots[pg - 1];
        while (s.ready.load(std::memory_order_acquire) == 0) pump(c);
        Cell& stage = c.fetch_buf[c.stage_index(t - 1, q)];
        safe_copy(&stage, &s.value, sizeof(Cell));
        ++c.fetches;
        ins[cnt++] = &stage;
        if (c.record) c.self_edges.push_back(EdgeRec64{pg, gseq});
      }
    }
  // Self-record retired local producers only now, after every wait above:
  // the remote-slot waits pump help_one(), which can execute and retire a
  // local producer collected earlier in this very loop — deciding per input
  // as it is collected would let that producer slip between our check and
  // the analyzer's (finished producers are skipped there), dropping the
  // edge. Between here and the spawn nothing pumps, and the record-mode
  // window CHECK keeps the spawn itself from executing tasks, so the
  // done_g snapshot and the analyzer's finished_hint agree exactly.
  if (c.record)
    for (std::size_t i = 0; i < cnt; ++i)
      if (local_pg[i] != 0 && c.done_g[local_pg[i]] != 0)
        c.self_edges.push_back(EdgeRec64{local_pg[i], gseq});
  spawn_dist(c,
             DistAddrBody{spec, static_cast<std::int32_t>(t),
                          static_cast<std::int32_t>(p), gseq, &c},
             &c.img.at(dst_f, p), ins, cnt);
}

/// NestedSteps: one generator task per timestep, serialized on the rank's
/// sentinel chain exactly like the single-process NestedSteps shape; the
/// generator stages/waits remote inputs from inside its body (help_one
/// keeps the rank's point tasks flowing meanwhile).
void spawn_step_generator(RankCtx& c, long t, TaskType step_tt) {
  RankCtx* cp = &c;
  c.rt->spawn(step_tt,
              [cp, t](Cell* token) {
                *token = patterns::value_fold(
                    *token, static_cast<Cell>(t));
                const long w = cp->spec->width_at(t);
                for (long p = 0; p < w; ++p)
                  if (datum_owner(t % cp->nfields, p, cp->nprocs) == cp->rank)
                    submit_point(*cp, t, p);
              },
              inout(&c.sentinel));
}

// --- per-rank epilogue ----------------------------------------------------

/// After the local barrier: copy this rank's shard of the final image into
/// the segment, export the accounting row (and, in record mode, the merged
/// edge list), then raise the rank-done flag — its release publishes all
/// of the above to the coordinator's acquire.
void finish_rank(RankCtx& c) {
  const StatsSnapshot snap = c.rt->stats();
  for (long f = 0; f < c.nfields; ++f)
    for (long p = 0; p < c.spec->width; ++p)
      if (datum_owner(f, p, c.nprocs) == c.rank)
        c.sh.result[static_cast<std::size_t>(f) *
                        static_cast<std::size_t>(c.spec->width) +
                    static_cast<std::size_t>(p)] = c.img.at(f, p);

  DistRankStats& row = c.sh.stats[c.rank];
  row.tasks_spawned = snap.tasks_spawned;
  row.tasks_executed = snap.tasks_executed;
  row.renames = snap.renames;
  row.rename_bytes = snap.rename_bytes_total;
  row.publishes = c.publishes.load(std::memory_order_relaxed);
  row.fetches = c.fetches;
  row.retires_sent = c.publishes.load(std::memory_order_relaxed);

  if (c.record) {
    EdgeRec64* out = c.sh.edges + c.rank * c.sh.edge_cap;
    std::uint64_t cnt = 0;
    for (const GraphRecorder::EdgeRec& e : c.rt->graph_recorder().edges()) {
      if (e.kind != EdgeKind::True) continue;
      SMPSS_CHECK(cnt < c.sh.edge_cap, "per-rank edge area overflow");
      // Recorder seqs are rank-local spawn order; map both ends global.
      out[cnt++] = EdgeRec64{c.local_to_global[e.from - 1],
                             c.local_to_global[e.to - 1]};
    }
    for (const EdgeRec64& e : c.self_edges) {
      SMPSS_CHECK(cnt < c.sh.edge_cap, "per-rank edge area overflow");
      out[cnt++] = e;
    }
    c.sh.edge_count[c.rank] = cnt;
  }
  c.sh.rank_done[c.rank].v.store(1, std::memory_order_release);
}

void init_rank_ctx(RankCtx& c, const PatternSpec& spec,
                   const RunOptions& opt, const SharedView& sh,
                   unsigned rank, unsigned nprocs, int nfields) {
  c.spec = &spec;
  c.sh = sh;
  c.rank = rank;
  c.nprocs = nprocs;
  c.nfields = nfields;
  c.record = opt.cfg.record_graph;
  c.img = patterns::make_initial_image(spec, nfields);
  c.fetch_buf.assign(static_cast<std::size_t>(spec.steps) *
                         static_cast<std::size_t>(spec.width),
                     0);
  c.first_seq.assign(static_cast<std::size_t>(spec.steps) + 1, 1);
  for (long t = 0; t < spec.steps; ++t)
    c.first_seq[static_cast<std::size_t>(t) + 1] =
        c.first_seq[static_cast<std::size_t>(t)] +
        static_cast<std::uint64_t>(spec.width_at(t));
  if (c.record)
    c.done_g.assign(spec.total_tasks() + 1, 0);
  c.deadline_ns = now_ns() + kDeadlineNs;
  c.main_tid = std::this_thread::get_id();
}

/// Child rank main: drain the coordinator's ring, spawning what it assigns,
/// until Done; then barrier, export, leave.
bool worker_rank_main(const PatternSpec& spec, const RunOptions& opt,
                      const SharedView& sh, unsigned rank, unsigned nprocs,
                      int nfields) {
  RankCtx c;
  init_rank_ctx(c, spec, opt, sh, rank, nprocs, nfields);
  Config cfg = opt.cfg;
  cfg.procs = 1;
  Runtime rt(cfg);
  c.rt = &rt;
  c.tt = rt.register_task_type(std::string("dist_point:") +
                               patterns::to_string(spec.kind));
  TaskType step_tt;
  if (opt.shape == patterns::SubmitShape::NestedSteps)
    step_tt = rt.register_task_type("dist_step");

  IpcMsg m;
  for (;;) {
    if (!sh.from_coord[rank].try_recv(m)) {
      body_pump(c);
      continue;
    }
    if (m.kind == MsgKind::Done) break;
    if (m.kind == MsgKind::Submit)
      submit_point(c, static_cast<long>(m.a), static_cast<long>(m.b));
    else if (m.kind == MsgKind::SubmitStep)
      spawn_step_generator(c, static_cast<long>(m.a), step_tt);
    else
      SMPSS_CHECK(false, "unexpected message on a submit ring");
  }
  rt.barrier();
  finish_rank(c);
  return true;
}

}  // namespace

DistResult run_pattern_dist(const PatternSpec& spec, const RunOptions& opt,
                            unsigned nprocs) {
  spec.validate();
  SMPSS_CHECK(nprocs >= 1 && nprocs <= 16, "SMPSS_PROCS out of range");
  SMPSS_CHECK(opt.mode == patterns::LowerMode::Address,
              "multi-process runs lower in address mode only");
  SMPSS_CHECK(patterns::address_mode_ok(spec),
              "pattern fan-in too wide for address mode");
  SMPSS_CHECK(opt.accum == patterns::AccumMode::None,
              "commuting accumulators stay single-process");
  if (opt.shape == patterns::SubmitShape::NestedSteps)
    SMPSS_CHECK(opt.cfg.nested_tasks,
                "NestedSteps submission needs Config::nested_tasks");
  if (opt.cfg.record_graph) {
    SMPSS_CHECK(opt.shape == patterns::SubmitShape::Flat &&
                    opt.cfg.num_threads == 1,
                "cross-process graph recording needs the deterministic "
                "window: Flat shape, one thread per rank");
    SMPSS_CHECK(opt.cfg.task_window > spec.total_tasks(),
                "cross-process graph recording needs a task window larger "
                "than the graph (a throttled spawn would execute tasks "
                "between the self-record decision and the analyzer's)");
  }

  const int nfields =
      opt.nfields > 0 ? opt.nfields : patterns::default_fields(spec);
  const std::uint64_t total = spec.total_tasks();
  const std::uint64_t edge_cap =
      opt.cfg.record_graph ? patterns::intended_true_edges(spec).size() : 0;
  const std::size_t image_cells = static_cast<std::size_t>(nfields) *
                                  static_cast<std::size_t>(spec.width);

  // --- segment layout (frozen before the fork) ---------------------------
  std::size_t need = 4096;
  need += 2 * nprocs * (sizeof(MsgRing) + 64);
  need += total * sizeof(SlotRec) + 64;
  need += image_cells * sizeof(Cell) + 64;
  need += nprocs * (sizeof(DistRankStats) + sizeof(RankFlag) +
                    sizeof(std::uint64_t) + 192);
  need += nprocs * edge_cap * sizeof(EdgeRec64) + 64;
  ShmSegment seg = ShmSegment::create(need);
  SegmentAllocator alloc(seg);

  SharedView sh;
  sh.hdr = new (alloc.alloc<DistHeader>()) DistHeader();
  sh.to_coord = alloc.alloc<MsgRing>(nprocs);
  sh.from_coord = alloc.alloc<MsgRing>(nprocs);
  for (unsigned r = 0; r < nprocs; ++r) {
    new (&sh.to_coord[r]) MsgRing();
    new (&sh.from_coord[r]) MsgRing();
  }
  sh.slots = alloc.alloc<SlotRec>(total);
  for (std::uint64_t i = 0; i < total; ++i) new (&sh.slots[i]) SlotRec();
  sh.result = alloc.alloc<Cell>(image_cells);
  sh.stats = alloc.alloc<DistRankStats>(nprocs);
  sh.rank_done = alloc.alloc<RankFlag>(nprocs);
  sh.edge_count = alloc.alloc<std::uint64_t>(nprocs);
  for (unsigned r = 0; r < nprocs; ++r) {
    new (&sh.stats[r]) DistRankStats();
    new (&sh.rank_done[r]) RankFlag();
    sh.edge_count[r] = 0;
  }
  sh.edge_cap = edge_cap;
  if (edge_cap > 0) sh.edges = alloc.alloc<EdgeRec64>(nprocs * edge_cap);

  // Seed the assembled image with the initial cells so datums no task ever
  // writes (tree's unreached points) come out right without special cases.
  {
    const PatternImage init = patterns::make_initial_image(spec, nfields);
    safe_copy(sh.result, init.cells.data(), image_cells * sizeof(Cell));
  }

  // --- fork the worker ranks --------------------------------------------
  ProcessGroup group;
  if (nprocs > 1)
    group.spawn(nprocs - 1, [&](unsigned rank) {
      return worker_rank_main(spec, opt, sh, rank, nprocs, nfields);
    });

  // --- rank 0: coordinator + executor ------------------------------------
  RankCtx c;
  init_rank_ctx(c, spec, opt, sh, /*rank=*/0, nprocs, nfields);
  c.group = nprocs > 1 ? &group : nullptr;
  {
    Config cfg = opt.cfg;
    cfg.procs = 1;
    Runtime rt(cfg);
    c.rt = &rt;
    c.tt = rt.register_task_type(std::string("dist_point:") +
                                 patterns::to_string(spec.kind));
    IpcMsg m;
    if (opt.shape == patterns::SubmitShape::Flat) {
      // Global (t, p) submission order, streamed to the owning ranks: the
      // coordinator is the paper's main program, the rings its spawn API.
      for (long t = 0; t < spec.steps; ++t)
        for (long p = 0; p < spec.width_at(t); ++p) {
          const unsigned owner = datum_owner(t % nfields, p, nprocs);
          if (owner == 0) {
            submit_point(c, t, p);
          } else {
            m = IpcMsg{};
            m.kind = MsgKind::Submit;
            m.a = static_cast<std::uint64_t>(t);
            m.b = static_cast<std::uint64_t>(p);
            m.c = c.gseq_of(t, p);
            sh.from_coord[owner].send(m, [&c] { coord_pump(c); });
          }
        }
    } else {
      TaskType step_tt = rt.register_task_type("dist_step");
      for (long t = 0; t < spec.steps; ++t) {
        for (unsigned r = 1; r < nprocs; ++r) {
          m = IpcMsg{};
          m.kind = MsgKind::SubmitStep;
          m.a = static_cast<std::uint64_t>(t);
          sh.from_coord[r].send(m, [&c] { coord_pump(c); });
        }
        spawn_step_generator(c, t, step_tt);
      }
    }
    for (unsigned r = 1; r < nprocs; ++r) {
      m = IpcMsg{};
      m.kind = MsgKind::Done;
      sh.from_coord[r].send(m, [&c] { coord_pump(c); });
    }
    rt.barrier();
    // Global completion: every Retire accounted for, every rank's shard
    // exported. rank_done's release pairs with these acquires, so the
    // result/stats/edge reads below see each rank's final writes.
    while (c.retires_received < total) coord_pump(c);
    for (unsigned r = 1; r < nprocs; ++r)
      while (sh.rank_done[r].v.load(std::memory_order_acquire) == 0)
        coord_pump(c);
    finish_rank(c);
  }

  DistResult res;
  res.total_tasks = total;
  res.retires_received = c.retires_received;
  res.image.nfields = nfields;
  res.image.width = spec.width;
  res.image.cells.assign(sh.result, sh.result + image_cells);
  res.ranks.assign(sh.stats, sh.stats + nprocs);
  if (opt.cfg.record_graph) {
    for (unsigned r = 0; r < nprocs; ++r) {
      const EdgeRec64* e = sh.edges + r * sh.edge_cap;
      for (std::uint64_t i = 0; i < sh.edge_count[r]; ++i)
        res.edges.emplace_back(e[i].from, e[i].to);
    }
    std::sort(res.edges.begin(), res.edges.end());
  }
  res.clean_children =
      nprocs == 1 || group.join(opt.cfg.stats_path);
  return res;
}

}  // namespace smpss::ipc
