#include "ipc/process_group.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.hpp"
#include "runtime/stats_export.hpp"

namespace smpss::ipc {

ProcessGroup::~ProcessGroup() {
  kill_all();
  join();
}

void ProcessGroup::spawn(unsigned n_children,
                         const std::function<bool(unsigned)>& body) {
  SMPSS_CHECK(children_.empty(), "ProcessGroup::spawn called twice");
  children_.resize(n_children);
  for (unsigned rank = 1; rank <= n_children; ++rank) {
    const pid_t pid = ::fork();
    SMPSS_CHECK(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: run the rank body and leave without unwinding inherited
      // parent state (atexit handlers, gtest registries, stdio buffers).
      const bool ok = body(rank);
      ::_exit(ok ? 0 : 1);
    }
    children_[rank - 1].pid = pid;
  }
}

void ProcessGroup::reap(std::size_t idx, int status) {
  ChildExit& c = children_[idx];
  c.pid = -1;
  if (WIFEXITED(status)) {
    c.exited = true;
    c.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    c.term_signal = WTERMSIG(status);
  }
  if (!c.clean()) any_unclean_ = true;
}

bool ProcessGroup::poll() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].pid < 0) continue;
    int status = 0;
    const pid_t r = ::waitpid(children_[i].pid, &status, WNOHANG);
    if (r == children_[i].pid) reap(i, status);
  }
  return !any_unclean_;
}

bool ProcessGroup::join(const std::string& stats_path) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].pid < 0) continue;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(children_[i].pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r == children_[i].pid) reap(i, status);
  }
  if (!stats_path.empty()) {
    for (std::size_t i = 0; i < children_.size(); ++i) {
      const ChildExit& c = children_[i];
      if (c.pid < 0 && !c.clean()) {
        const int raw_status =
            c.exited ? c.exit_code : -c.term_signal;
        append_partial_run_marker(stats_path,
                                  static_cast<unsigned>(i + 1), raw_status);
      }
    }
  }
  return !any_unclean_;
}

void ProcessGroup::kill_all() {
  for (ChildExit& c : children_)
    if (c.pid > 0) ::kill(c.pid, SIGKILL);
}

}  // namespace smpss::ipc
