// SchedulerPolicy — the single owner of every placement, priority-ordering,
// and steal-victim decision in the runtime. The Runtime (and the graph
// simulator) never touch a ready list directly; they route enqueues through
// the policy, acquire through the policy, and ask the policy whether a
// pending high-priority task must preempt an immediate-successor chain.
//
// Two implementations:
//
//   * PaperPolicy — the SMPSs Sec. III lists verbatim, delegated to
//     ReadyLists<T> unchanged: high FIFO -> own deque (LIFO) -> main FIFO ->
//     creation-order (or random) steal. Every pre-policy test pins this
//     behavior bit-for-bit.
//
//   * AwarePolicy — three signals the paper's scheduler ignores, layered on
//     the same list skeleton:
//       - cost: a lock-free per-worker EWMA table of per-task-type execution
//         time, fed back from the execute-path timestamps (the same clock
//         the tracer records);
//       - critical path: an exact top-level distance (`path_ns`, final at
//         submit — every predecessor's distance is already final by
//         induction) plus a one-hop bottom-level raise (`bl_ns`, fetch-max'd
//         on each predecessor as successors are submitted). A ready task
//         whose priority exceeds the running average by Config::
//         aware_crit_ppm is promoted into the high-priority FIFO, so the
//         longest chain stops starving behind bulk work;
//       - locality: on_submit votes for the worker that executed the
//         producers of the task's input versions (Config::aware_locality_ppm
//         share required); placement routes the task to that worker's
//         per-worker MPMC inbox (Chase-Lev pushes are owner-only, so remote
//         placement needs its own lane). Steal order is topology-near:
//         victims sharing the thief's core first, then its package
//         (common/affinity reads the sysfs topology).
//
// The node type T supplies: queue_next (intrusive FIFO link), seq, type_id,
// high_priority, and the aware-policy fields path_ns/bl_ns (atomic u64),
// exec_tid (atomic u32), pref_tid (u32). TaskNode is the runtime
// instantiation; graph/sched_sim drives the very same template code over its
// lightweight SimNode, so the simulator consumes the real policy instead of
// duplicating queue logic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/cache.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/small_vector.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/mpmc_queue.hpp"
#include "sched/ready_lists.hpp"

namespace smpss {

enum class SchedPolicyKind : unsigned char {
  Paper,  ///< Sec. III lists verbatim (the default)
  Aware,  ///< cost / critical-path / locality-aware placement
};

const char* to_string(SchedPolicyKind k) noexcept;

/// Everything a policy needs from Config, decoupled so sched/ never includes
/// runtime/ headers (Config::policy_tuning() builds one).
struct PolicyTuning {
  unsigned nthreads = 1;
  SchedulerMode mode = SchedulerMode::Distributed;
  StealOrder steal_order = StealOrder::CreationOrder;
  bool nested_tasks = false;
  SchedPolicyKind kind = SchedPolicyKind::Paper;
  /// Promote a ready task to the high-priority FIFO when its critical-path
  /// priority exceeds the running average times this / 1e6.
  std::uint32_t crit_ppm = 1500000;
  /// Minimum share (ppm) of input versions one worker must have produced
  /// before placement prefers that worker's queue.
  std::uint32_t locality_ppm = 500000;
  /// Assumed cost (ns) of a task type never yet executed.
  std::uint64_t default_cost_ns = 1000;
};

/// Where an enqueue landed. The Runtime owns the wakeup protocol (it holds
/// the gate), so the policy reports placement and the Runtime decides
/// whether to notify: High/Main/Remote always wake one sleeper; Local only
/// when a backlog builds up that a thief could take.
enum class Placed : unsigned char {
  High,    ///< shared high-priority FIFO
  Main,    ///< shared main FIFO
  Local,   ///< the enqueuing worker's own list
  Remote,  ///< another worker's inbox (AwarePolicy locality placement)
};

/// Topology-near victim order for `tid` among `nthreads` workers: same-core
/// SMT siblings first, then same-package, then the rest — each tier in ring
/// (creation) order from tid+1. Assumes the worker->CPU map that
/// pin_current_thread uses (worker i -> allowed CPU i mod count). Falls back
/// to plain creation order when the sysfs topology is unreadable.
std::vector<unsigned> topology_steal_order(unsigned tid, unsigned nthreads);

template <typename T>
class SchedulerPolicy {
 public:
  /// "No owning worker": foreign submitters, and the unset pref_tid.
  static constexpr unsigned kNoWorker = ~0u;

  explicit SchedulerPolicy(const PolicyTuning& tu) : tu_(tu) {}
  virtual ~SchedulerPolicy() = default;

  SchedulerPolicy(const SchedulerPolicy&) = delete;
  SchedulerPolicy& operator=(const SchedulerPolicy&) = delete;

  /// True if submit() should collect the task's predecessors (producers of
  /// its input versions) and call on_submit. PaperPolicy skips the walk.
  virtual bool wants_submit_hook() const noexcept { return false; }

  /// Called once per task, before its creation guard is released (so the
  /// fields written here are visible to whoever releases the task). `preds`
  /// are the producers of the task's input versions, possibly still
  /// executing; they may repeat.
  virtual void on_submit(T* t, T* const* preds, std::size_t npreds) {
    (void)t;
    (void)preds;
    (void)npreds;
  }

  /// True if execute should time task bodies (even without tracing) and
  /// feed the measured ns back through on_executed.
  virtual bool wants_exec_feedback() const noexcept { return false; }

  /// Body-time feedback, called by the worker that ran the task.
  virtual void on_executed(unsigned tid, std::uint32_t type_id,
                           std::uint64_t ns) {
    (void)tid;
    (void)type_id;
    (void)ns;
  }

  /// Current cost estimate of a task type (ns).
  virtual std::uint64_t cost_estimate(std::uint32_t type_id) const {
    (void)type_id;
    return tu_.default_cost_ns;
  }

  /// Task ready at creation: submitted with no unsatisfied inputs. `tid` is
  /// the submitter's worker slot (kNoWorker for foreign threads); `in_task`
  /// reports whether the submitter is inside a task body (nested spawn).
  virtual Placed enqueue_creation(T* t, unsigned tid, bool in_task) = 0;

  /// Task whose last input dependence was removed by worker `tid`.
  virtual Placed enqueue_released(T* t, unsigned tid) = 0;

  /// Batched release: one completion released `n >= 2` tasks; publish them
  /// with one list operation per destination (the caller issues at most one
  /// wakeup for the whole set).
  virtual void enqueue_batch(T* const* ts, std::size_t n, unsigned tid) = 0;

  /// One full pass of the lookup policy. `source` reports where the task
  /// came from (None on failure); `steal_attempts` counts victims probed.
  virtual T* acquire(unsigned tid, Xoshiro256& rng, AcquireSource& source,
                     unsigned& steal_attempts) = 0;

  /// Must a pending high-priority task preempt chaining into `next`? (The
  /// racy high-list emptiness probe lives here, behind the interface: a
  /// high-priority successor is exempt — running it immediately IS the
  /// soonest possible dispatch.)
  virtual bool preempt_chain(const T* next) const = 0;

  /// Racy size of one worker's own list (wakeup heuristics).
  virtual std::size_t local_size_estimate(unsigned tid) const = 0;

  /// Racy emptiness estimate (idle-sleep gate).
  virtual bool maybe_has_work() const = 0;

  /// Ready tasks promoted into the high-priority FIFO by the critical-path
  /// threshold (always 0 for PaperPolicy).
  virtual std::uint64_t promotions() const { return 0; }

  /// Ready-selection key for the makespan simulator (graph/sched_sim):
  /// lower runs first. PaperPolicy orders by invocation (the classic Graham
  /// list scheduler); AwarePolicy by descending critical-path priority.
  virtual std::pair<std::uint64_t, std::uint64_t> sim_order_key(
      const T* t) const {
    return {0, t->seq};
  }

  const PolicyTuning& tuning() const noexcept { return tu_; }

 protected:
  PolicyTuning tu_;
};

// --- PaperPolicy --------------------------------------------------------------

/// Sec. III verbatim: a thin shell over ReadyLists<T>. Placement, lookup
/// order, steal order, and the chain-preemption probe are exactly the
/// pre-policy runtime's — the existing test suite pins this bit-for-bit.
template <typename T>
class PaperPolicy final : public SchedulerPolicy<T> {
  using Base = SchedulerPolicy<T>;
  using Base::tu_;

 public:
  using Base::kNoWorker;

  explicit PaperPolicy(const PolicyTuning& tu)
      : Base(tu), lists_(tu.nthreads, tu.mode, tu.steal_order) {}

  Placed enqueue_creation(T* t, unsigned tid, bool in_task) override {
    if (t->high_priority) {
      lists_.push_high(t);
      return Placed::High;
    }
    // Nested children ready at creation go to the spawning worker's own
    // list: the child operates on data the parent just touched, so this is
    // the same locality argument Sec. III makes for last-dependence-removed
    // tasks. Main-thread and foreign-thread submissions keep the paper's
    // main-list distribution behavior.
    if (tu_.nested_tasks && in_task && tid != kNoWorker) {
      t->pref_tid = tid;
      lists_.push_local(tid, t);
      return Placed::Local;
    }
    lists_.push_main(t);
    return Placed::Main;
  }

  Placed enqueue_released(T* t, unsigned tid) override {
    if (t->high_priority) {
      lists_.push_high(t);
      return Placed::High;
    }
    // "Each worker thread has its own ready list that contains tasks whose
    // last input dependency has been removed by that thread."
    t->pref_tid = tid;
    lists_.push_local(tid, t);
    return Placed::Local;
  }

  void enqueue_batch(T* const* ts, std::size_t n, unsigned tid) override {
    SmallVector<T*, 8> normal;
    for (std::size_t i = 0; i < n; ++i) {
      if (ts[i]->high_priority) {
        lists_.push_high(ts[i]);
      } else {
        ts[i]->pref_tid = tid;
        normal.push_back(ts[i]);
      }
    }
    lists_.push_local_batch(tid, normal.begin(), normal.size());
  }

  T* acquire(unsigned tid, Xoshiro256& rng, AcquireSource& source,
             unsigned& steal_attempts) override {
    return lists_.acquire(tid, rng, source, steal_attempts);
  }

  bool preempt_chain(const T* next) const override {
    return !next->high_priority && lists_.high_pending();
  }

  std::size_t local_size_estimate(unsigned tid) const override {
    return lists_.local_size_estimate(tid);
  }

  bool maybe_has_work() const override { return lists_.maybe_has_work(); }

 private:
  ReadyLists<T> lists_;
};

// --- AwarePolicy --------------------------------------------------------------

template <typename T>
class AwarePolicy final : public SchedulerPolicy<T> {
  using Base = SchedulerPolicy<T>;
  using Base::tu_;

 public:
  using Base::kNoWorker;

  /// Cost-table width: type ids hash (mask) into this many slots per worker
  /// row. Collisions merge estimates, which only blurs a heuristic.
  static constexpr std::size_t kTypeSlots = 64;

  explicit AwarePolicy(const PolicyTuning& tu)
      : Base(tu), cost_(new CostRow[tu.nthreads]()) {
    SMPSS_CHECK(tu.nthreads >= 1, "need at least one thread");
    const bool dist = tu_.mode == SchedulerMode::Distributed;
    if (dist) {
      local_.reserve(tu.nthreads);
      inbox_.reserve(tu.nthreads);
      for (unsigned i = 0; i < tu.nthreads; ++i) {
        local_.push_back(std::make_unique<ChaseLevDeque<T>>());
        inbox_.push_back(std::make_unique<IntrusiveMpmcFifo<T>>());
      }
      // One victim row per thief, computed once: topology-near order, or
      // ring order when the steal-order ablation asks for random (the rng
      // walk below) or the topology is unreadable.
      steal_rows_.resize(tu.nthreads);
      for (unsigned i = 0; i < tu.nthreads; ++i)
        steal_rows_[i] = topology_steal_order(i, tu.nthreads);
    }
  }

  bool wants_submit_hook() const noexcept override { return true; }

  void on_submit(T* t, T* const* preds, std::size_t npreds) override {
    // A per-task weight hint (TaskAttrs::weight) beats the learned per-type
    // estimate: the user knows this invocation's size, the table only knows
    // the type's history.
    const std::uint64_t own =
        t->weight != 0 ? t->weight : cost_estimate(t->type_id);
    std::uint64_t longest = 0;
    unsigned best_tid = kNoWorker;
    std::size_t best_votes = 0;
    for (std::size_t i = 0; i < npreds; ++i) {
      T* p = preds[i];
      const std::uint64_t d = p->path_ns.load(std::memory_order_relaxed);
      if (d > longest) longest = d;
      // One-hop bottom-level raise: p now has a successor costing `own`, so
      // its distance-to-sink is at least that. Exact multi-hop propagation
      // would need predecessor links; the one-hop bound is O(indegree) per
      // submit and already separates chain tails from leaves.
      fetch_max(p->bl_ns, own);
      const unsigned ptid = p->exec_tid.load(std::memory_order_relaxed);
      if (ptid == kNoWorker) continue;  // producer not started yet
      std::size_t votes = 0;
      for (std::size_t j = 0; j < npreds; ++j)
        if (preds[j]->exec_tid.load(std::memory_order_relaxed) == ptid)
          ++votes;
      if (votes > best_votes) {
        best_votes = votes;
        best_tid = ptid;
      }
    }
    // Top-level distance is exact and final here: every predecessor was
    // submitted earlier, so its own path_ns is final by induction.
    t->path_ns.store(longest + own, std::memory_order_relaxed);
    if (tu_.mode == SchedulerMode::Distributed && best_tid != kNoWorker &&
        best_tid < tu_.nthreads && npreds != 0 &&
        best_votes * 1000000ull >=
            static_cast<std::uint64_t>(npreds) * tu_.locality_ppm)
      t->pref_tid = best_tid;
  }

  bool wants_exec_feedback() const noexcept override { return true; }

  void on_executed(unsigned tid, std::uint32_t type_id,
                   std::uint64_t ns) override {
    if (tid >= tu_.nthreads) return;
    std::atomic<std::uint64_t>& cell = cost_[tid].ewma[slot_of(type_id)];
    const std::uint64_t old = cell.load(std::memory_order_relaxed);
    const std::uint64_t next = old == 0 ? ns : old - old / 4 + ns / 4;
    cell.store(next, std::memory_order_relaxed);  // single writer per row
    // Merged view for readers (racy last-writer-wins store — an estimate).
    shared_cost_[slot_of(type_id)].store(next, std::memory_order_relaxed);
  }

  std::uint64_t cost_estimate(std::uint32_t type_id) const override {
    const std::uint64_t c =
        shared_cost_[slot_of(type_id)].load(std::memory_order_relaxed);
    return c != 0 ? c : tu_.default_cost_ns;
  }

  Placed enqueue_creation(T* t, unsigned tid, bool in_task) override {
    if (Placed p; place_high(t, p)) return p;
    if (tu_.mode == SchedulerMode::Distributed) {
      const unsigned pref = t->pref_tid;
      if (pref != kNoWorker && pref < tu_.nthreads) {
        if (pref == tid) {
          local_[tid]->push_bottom(t);
          return Placed::Local;
        }
        inbox_[pref]->push_back(t);
        return Placed::Remote;
      }
      // No locality signal: keep the paper's nested-child placement.
      if (tu_.nested_tasks && in_task && tid != kNoWorker) {
        t->pref_tid = tid;
        local_[tid]->push_bottom(t);
        return Placed::Local;
      }
    }
    main_.push_back(t);
    return Placed::Main;
  }

  Placed enqueue_released(T* t, unsigned tid) override {
    if (Placed p; place_high(t, p)) return p;
    if (tu_.mode == SchedulerMode::Distributed) {
      const unsigned pref = t->pref_tid;
      if (pref != kNoWorker && pref < tu_.nthreads && pref != tid) {
        // The input-locality vote beats the last-dependence-removed-here
        // default: most of this task's inputs live in pref's cache.
        inbox_[pref]->push_back(t);
        return Placed::Remote;
      }
      t->pref_tid = tid;
      local_[tid]->push_bottom(t);
      return Placed::Local;
    }
    t->pref_tid = tid;
    main_.push_back(t);
    return Placed::Local;  // centralized: same wakeup contract as paper
  }

  void enqueue_batch(T* const* ts, std::size_t n, unsigned tid) override {
    SmallVector<T*, 8> own;
    for (std::size_t i = 0; i < n; ++i) {
      T* t = ts[i];
      if (Placed p; place_high(t, p)) continue;
      if (tu_.mode == SchedulerMode::Distributed) {
        const unsigned pref = t->pref_tid;
        if (pref != kNoWorker && pref < tu_.nthreads && pref != tid) {
          inbox_[pref]->push_back(t);
          continue;
        }
        t->pref_tid = tid;
        own.push_back(t);
      } else {
        t->pref_tid = tid;
        main_.push_back(t);
      }
    }
    if (!own.empty()) local_[tid]->push_bottom_batch(own.begin(), own.size());
  }

  T* acquire(unsigned tid, Xoshiro256& rng, AcquireSource& source,
             unsigned& steal_attempts) override {
    (void)rng;  // victim order is precomputed (topology-near)
    steal_attempts = 0;
    if (T* t = high_.try_pop_front()) {
      source = AcquireSource::HighPriority;
      return t;
    }
    if (tu_.mode == SchedulerMode::Distributed) {
      if (T* t = local_[tid]->pop_bottom()) {
        source = AcquireSource::OwnList;
        return t;
      }
      // The inbox is this worker's too — tasks other workers routed here
      // because our cache holds their inputs.
      if (T* t = inbox_[tid]->try_pop_front()) {
        source = AcquireSource::OwnList;
        return t;
      }
    }
    if (T* t = main_.try_pop_front()) {
      source = AcquireSource::MainList;
      return t;
    }
    if (tu_.mode == SchedulerMode::Distributed && tu_.nthreads > 1) {
      for (unsigned victim : steal_rows_[tid]) {
        ++steal_attempts;
        if (T* t = local_[victim]->steal_top()) {
          source = AcquireSource::Steal;
          return t;
        }
        if (T* t = inbox_[victim]->try_pop_front()) {
          source = AcquireSource::Steal;
          return t;
        }
      }
    }
    source = AcquireSource::None;
    return nullptr;
  }

  bool preempt_chain(const T* next) const override {
    // Promoted criticals live in the same high FIFO, so the one probe
    // covers both the user's highpriority tasks and the critical-path
    // promotions.
    return !next->high_priority && !high_.empty_estimate();
  }

  std::size_t local_size_estimate(unsigned tid) const override {
    if (tu_.mode != SchedulerMode::Distributed) return main_.size_estimate();
    return local_[tid]->size_estimate() + inbox_[tid]->size_estimate();
  }

  bool maybe_has_work() const override {
    if (!high_.empty_estimate() || !main_.empty_estimate()) return true;
    if (tu_.mode == SchedulerMode::Distributed) {
      for (const auto& d : local_)
        if (!d->empty_estimate()) return true;
      for (const auto& q : inbox_)
        if (!q->empty_estimate()) return true;
    }
    return false;
  }

  std::uint64_t promotions() const override {
    return promotions_.load(std::memory_order_relaxed);
  }

  std::pair<std::uint64_t, std::uint64_t> sim_order_key(
      const T* t) const override {
    return {std::numeric_limits<std::uint64_t>::max() - priority_of(t),
            t->seq};
  }

 private:
  struct alignas(kCacheLineSize) CostRow {
    std::atomic<std::uint64_t> ewma[kTypeSlots] = {};
  };

  static std::size_t slot_of(std::uint32_t type_id) noexcept {
    return type_id & (kTypeSlots - 1);
  }

  static void fetch_max(std::atomic<std::uint64_t>& a,
                        std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  static std::uint64_t priority_of(const T* t) noexcept {
    return t->path_ns.load(std::memory_order_relaxed) +
           t->bl_ns.load(std::memory_order_relaxed);
  }

  /// Classify one ready task against the promotion threshold (and fold its
  /// priority into the running average). True if it went to the high FIFO.
  bool place_high(T* t, Placed& placed) {
    const std::uint64_t pr = priority_of(t);
    // Racy read-modify-store EWMA: concurrent updates may drop each other,
    // which only slows the average's drift — it stays an average.
    const std::uint64_t avg = avg_priority_.load(std::memory_order_relaxed);
    avg_priority_.store(avg == 0 ? pr : avg - avg / 8 + pr / 8,
                        std::memory_order_relaxed);
    bool crit = false;
    if (!t->high_priority && avg != 0) {
      // Relative-to-average threshold: uniform graphs (a stencil where all
      // priorities agree) promote nothing and keep their locality; a chain
      // tail starving behind bulk work clears the bar.
      const std::uint64_t thresh = avg * (tu_.crit_ppm / 1000u) / 1000u;
      crit = pr > thresh;
    }
    if (!t->high_priority && !crit) return false;
    if (crit && !t->high_priority)
      promotions_.fetch_add(1, std::memory_order_relaxed);
    high_.push_back(t);
    placed = Placed::High;
    return true;
  }

  IntrusiveMpmcFifo<T> high_;
  IntrusiveMpmcFifo<T> main_;
  std::vector<std::unique_ptr<ChaseLevDeque<T>>> local_;
  /// Per-worker remote-placement lane: Chase-Lev bottoms are owner-only, so
  /// locality routing from another worker needs an MPMC inbox per target.
  std::vector<std::unique_ptr<IntrusiveMpmcFifo<T>>> inbox_;
  std::vector<std::vector<unsigned>> steal_rows_;

  /// Per-worker cost rows (single writer each) + a merged last-writer-wins
  /// view so cost_estimate is one relaxed load instead of a row scan.
  std::unique_ptr<CostRow[]> cost_;
  std::atomic<std::uint64_t> shared_cost_[kTypeSlots] = {};

  std::atomic<std::uint64_t> avg_priority_{0};
  std::atomic<std::uint64_t> promotions_{0};
};

template <typename T>
std::unique_ptr<SchedulerPolicy<T>> make_policy(const PolicyTuning& tu) {
  if (tu.kind == SchedPolicyKind::Aware)
    return std::make_unique<AwarePolicy<T>>(tu);
  return std::make_unique<PaperPolicy<T>>(tu);
}

}  // namespace smpss
