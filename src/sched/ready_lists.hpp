// The SMPSs ready-task structure, paper Sec. III verbatim:
//
//   "There are two main ready lists, one for high priority tasks and one for
//    normal priority tasks. [...] Each worker thread has its own ready list
//    that contains tasks whose last input dependency has been removed by
//    that thread. [...] Threads look up ready tasks first in the high
//    priority list. If it is empty, then they look up their own ready list.
//    If they do not succeed, they proceed to check out the main ready list.
//    In case of failure, they proceed to steal work from other threads in
//    creation order starting from the next one. Threads consume tasks from
//    their own list in LIFO order, they get tasks from the main list in FIFO
//    order, and they steal from other threads in FIFO order."
//
// Two ablation knobs probe the design choices: SchedulerMode::Centralized
// collapses the per-worker lists into the main FIFO (the SuperMatrix-style
// single ready queue of Sec. VII.C), and StealOrder::Random replaces the
// creation-order victim walk.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/cache.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/mpmc_queue.hpp"

namespace smpss {

enum class SchedulerMode : unsigned char {
  Distributed,  ///< per-worker lists + stealing (the paper's design)
  Centralized,  ///< single shared FIFO (SuperMatrix-like ablation)
};

enum class StealOrder : unsigned char {
  CreationOrder,  ///< victims visited in thread-creation order (the paper)
  Random,         ///< victims visited in random order (ablation)
};

const char* to_string(SchedulerMode m) noexcept;
const char* to_string(StealOrder o) noexcept;

/// Result detail of an acquire, for the steal statistics.
enum class AcquireSource : unsigned char {
  None,
  HighPriority,
  OwnList,
  MainList,
  Steal,
};

template <typename T>
class ReadyLists {
 public:
  ReadyLists(unsigned nthreads, SchedulerMode mode, StealOrder order)
      : nthreads_(nthreads), mode_(mode), order_(order) {
    SMPSS_CHECK(nthreads >= 1, "need at least one thread");
    if (mode_ == SchedulerMode::Distributed) {
      local_.reserve(nthreads);
      for (unsigned i = 0; i < nthreads; ++i)
        local_.push_back(std::make_unique<ChaseLevDeque<T>>());
    }
  }

  /// High-priority tasks are "scheduled as soon as possible independently of
  /// any locality consideration".
  void push_high(T* t) { high_.push_back(t); }

  /// Dependency-free tasks from the main thread: "a point of distribution of
  /// tasks in areas of the graph that are not being explored".
  void push_main(T* t) { main_.push_back(t); }

  /// Task whose last input dependency was removed by thread `tid`.
  void push_local(unsigned tid, T* t) {
    if (mode_ == SchedulerMode::Distributed) {
      local_[tid]->push_bottom(t);
    } else {
      main_.push_back(t);
    }
  }

  /// Batched form of push_local: a completion that released several tasks at
  /// once publishes them with one list operation (a single bottom store on
  /// the owner's deque; one lock acquisition on the centralized FIFO).
  void push_local_batch(unsigned tid, T* const* items, std::size_t n) {
    if (mode_ == SchedulerMode::Distributed) {
      local_[tid]->push_bottom_batch(items, n);
    } else {
      main_.push_back_batch(items, n);
    }
  }

  /// Racy emptiness of the high-priority list. Chaining consults this: a
  /// pending high-priority task must preempt a normal-priority chain, so a
  /// completion never chains past it (see Runtime::execute_task).
  bool high_pending() const noexcept { return !high_.empty_estimate(); }

  /// One full pass of the Sec. III lookup policy. `source` reports where the
  /// task came from (None on failure); `steal_attempts` counts victims
  /// probed.
  T* acquire(unsigned tid, Xoshiro256& rng, AcquireSource& source,
             unsigned& steal_attempts) {
    steal_attempts = 0;
    if (T* t = high_.try_pop_front()) {
      source = AcquireSource::HighPriority;
      return t;
    }
    if (mode_ == SchedulerMode::Distributed) {
      if (T* t = local_[tid]->pop_bottom()) {
        source = AcquireSource::OwnList;
        return t;
      }
    }
    if (T* t = main_.try_pop_front()) {
      source = AcquireSource::MainList;
      return t;
    }
    if (mode_ == SchedulerMode::Distributed && nthreads_ > 1) {
      if (order_ == StealOrder::CreationOrder) {
        for (unsigned i = 1; i < nthreads_; ++i) {
          unsigned victim = (tid + i) % nthreads_;
          ++steal_attempts;
          if (T* t = local_[victim]->steal_top()) {
            source = AcquireSource::Steal;
            return t;
          }
        }
      } else {
        for (unsigned i = 1; i < nthreads_; ++i) {
          unsigned victim =
              static_cast<unsigned>(rng.next_below(nthreads_ - 1)) + 1;
          victim = (tid + victim) % nthreads_;
          ++steal_attempts;
          if (T* t = local_[victim]->steal_top()) {
            source = AcquireSource::Steal;
            return t;
          }
        }
      }
    }
    source = AcquireSource::None;
    return nullptr;
  }

  /// Racy size of one worker's own list (wakeup heuristics).
  std::size_t local_size_estimate(unsigned tid) const noexcept {
    if (mode_ != SchedulerMode::Distributed) return main_.size_estimate();
    return local_[tid]->size_estimate();
  }

  /// Racy emptiness estimate (idle-sleep gate).
  bool maybe_has_work() const noexcept {
    if (!high_.empty_estimate() || !main_.empty_estimate()) return true;
    if (mode_ == SchedulerMode::Distributed) {
      for (const auto& d : local_)
        if (!d->empty_estimate()) return true;
    }
    return false;
  }

  unsigned nthreads() const noexcept { return nthreads_; }
  SchedulerMode mode() const noexcept { return mode_; }

 private:
  unsigned nthreads_;
  SchedulerMode mode_;
  StealOrder order_;
  IntrusiveMpmcFifo<T> high_;
  IntrusiveMpmcFifo<T> main_;
  std::vector<std::unique_ptr<ChaseLevDeque<T>>> local_;
};

}  // namespace smpss
