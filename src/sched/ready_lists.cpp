#include "sched/ready_lists.hpp"

namespace smpss {

const char* to_string(SchedulerMode m) noexcept {
  switch (m) {
    case SchedulerMode::Distributed: return "distributed";
    case SchedulerMode::Centralized: return "centralized";
  }
  return "?";
}

const char* to_string(StealOrder o) noexcept {
  switch (o) {
    case StealOrder::CreationOrder: return "creation-order";
    case StealOrder::Random: return "random";
  }
  return "?";
}

}  // namespace smpss
