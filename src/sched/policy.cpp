#include "sched/policy.hpp"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <sched.h>
#endif

namespace smpss {

const char* to_string(SchedPolicyKind k) noexcept {
  switch (k) {
    case SchedPolicyKind::Paper: return "paper";
    case SchedPolicyKind::Aware: return "aware";
  }
  return "?";
}

namespace {

/// Read one small integer file (sysfs topology). -1 on any failure.
long read_long(const char* path) {
#if defined(__linux__)
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  long v = -1;
  if (std::fscanf(f, "%ld", &v) != 1) v = -1;
  std::fclose(f);
  return v;
#else
  (void)path;
  return -1;
#endif
}

struct CpuPlace {
  long core = -1;
  long pkg = -1;
};

/// Topology of the CPU each worker lands on, under the same worker->CPU map
/// pin_current_thread uses (round-robin over the allowed set). Empty when
/// the topology is unreadable (non-Linux, stripped sysfs).
std::vector<CpuPlace> worker_places(unsigned nthreads) {
  std::vector<CpuPlace> out;
#if defined(__linux__)
  cpu_set_t avail;
  CPU_ZERO(&avail);
  if (sched_getaffinity(0, sizeof(avail), &avail) != 0) return out;
  std::vector<int> allowed;
  for (int c = 0; c < CPU_SETSIZE; ++c)
    if (CPU_ISSET(c, &avail)) allowed.push_back(c);
  if (allowed.empty()) return out;
  out.resize(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    const int cpu = allowed[i % allowed.size()];
    char path[128];
    std::snprintf(path, sizeof path,
                  "/sys/devices/system/cpu/cpu%d/topology/core_id", cpu);
    out[i].core = read_long(path);
    std::snprintf(path, sizeof path,
                  "/sys/devices/system/cpu/cpu%d/topology/physical_package_id",
                  cpu);
    out[i].pkg = read_long(path);
    if (out[i].core < 0 || out[i].pkg < 0) return {};  // partial = unusable
  }
#else
  (void)nthreads;
#endif
  return out;
}

}  // namespace

std::vector<unsigned> topology_steal_order(unsigned tid, unsigned nthreads) {
  std::vector<unsigned> order;
  if (nthreads < 2) return order;
  order.reserve(nthreads - 1);
  for (unsigned i = 1; i < nthreads; ++i)
    order.push_back((tid + i) % nthreads);

  static const std::vector<CpuPlace> places = worker_places(256);
  if (places.empty() || tid >= places.size()) return order;  // ring fallback
  const CpuPlace self = places[tid];
  // Stable sort keeps ring order inside each tier, so two same-package
  // victims are still visited in creation order from tid+1.
  std::stable_sort(order.begin(), order.end(),
                   [&](unsigned a, unsigned b) {
                     auto tier = [&](unsigned v) {
                       if (v >= places.size()) return 3;
                       if (places[v].pkg != self.pkg) return 2;
                       if (places[v].core != self.core) return 1;
                       return 0;  // SMT sibling: shares L1/L2
                     };
                     return tier(a) < tier(b);
                   });
  return order;
}

}  // namespace smpss
