// Chase–Lev work-stealing deque (SPMC), the per-worker ready list of paper
// Sec. III: the owner pushes/pops at the bottom (LIFO, pseudo-depth-first
// graph traversal), thieves steal at the top (FIFO — "the task that has spent
// most time on the queue and has more probability of having most of its
// input data already evicted from the cache").
//
// Implementation follows Chase & Lev (SPAA'05) with the C11 memory-order
// corrections of Lê et al. (PPoPP'13). Pointers only; ownership of the
// pointed-to tasks stays with the task graph.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cache.hpp"
#include "common/check.hpp"

namespace smpss {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 256)
      : array_(new Array(round_up_pow2(initial_capacity))) {}

  ~ChaseLevDeque() {
    Array* a = array_.load(std::memory_order_relaxed);
    // Retired arrays are chained; free the whole chain.
    while (a) {
      Array* next = a->retired_next;
      delete a;
      a = next;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner-only: push a task at the bottom.
  void push_bottom(T* item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    // Release store (rather than Lê et al.'s release fence + relaxed store;
    // identical on x86, and fences are invisible to TSan): pairs with the
    // thief's acquire load of bottom_ to publish the task payload.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: push `n` tasks at the bottom with a single publication —
  /// all slots are written first, then one release store of bottom makes
  /// the whole batch visible to thieves at once (the batched-release path
  /// of a multi-successor completion).
  void push_bottom_batch(T* const* items, std::size_t n) {
    if (n == 0) return;
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    while (b + static_cast<std::int64_t>(n) - t >
           static_cast<std::int64_t>(a->capacity)) {
      a = grow(a, t, b);
    }
    for (std::size_t i = 0; i < n; ++i)
      a->put(b + static_cast<std::int64_t>(i), items[i]);
    bottom_.store(b + static_cast<std::int64_t>(n),
                  std::memory_order_release);
  }

  /// Owner-only: pop the most recently pushed task (LIFO). nullptr if empty.
  T* pop_bottom() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = a->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steal the oldest task (FIFO). nullptr if empty or lost a race.
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_consume);
    T* item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller may retry elsewhere
    }
    return item;
  }

  /// Racy size estimate, used only for stats and steal heuristics.
  std::size_t size_estimate() const noexcept {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const noexcept { return size_estimate() == 0; }

 private:
  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    ~Array() { delete[] slots; }
    void put(std::int64_t i, T* v) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::atomic<T*>* slots;
    Array* retired_next = nullptr;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 16;
    while (p < n) p <<= 1;
    return p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    Array* fresh = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) fresh->put(i, old->get(i));
    // Retire rather than free: thieves may still be reading the old array.
    // The chain is reclaimed in the destructor; growth is rare (amortized).
    fresh->retired_next = old;
    array_.store(fresh, std::memory_order_release);
    return fresh;
  }

  alignas(kCacheLineSize) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLineSize) std::atomic<Array*> array_;
};

}  // namespace smpss
