// Idle/wakeup coordination for worker threads and throttled submitters.
//
// Besides idle workers, the gate carries the runtime's threshold sleepers:
// a barrier-waiting main thread (wakes when the live-task count hits zero),
// window-throttled helpers, and gated foreign submitters (both woken when
// the count crosses the task-window low-water mark — Runtime::execute_task
// notifies at exactly those two crossings). Threshold sleepers always pass
// a bounded timeout, so a missed crossing costs one re-poll, never a hang.
//
// Workers that find no ready work spin briefly (task inter-arrival at the
// paper's target granularity is short), then block on a condition variable.
// Producers always bump an epoch (one relaxed-ish atomic on the hot path)
// but only take the mutex to notify when a sleeper is registered, so fine-
// grained task streams never serialize on the gate. The epoch recheck after
// registering as a sleeper plus a bounded sleep make lost wakeups impossible
// in the worst case (a worker re-polls after the timeout).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/cache.hpp"

namespace smpss {

class IdleGate {
 public:
  /// Consumer: snapshot to take *before* the final failed acquire attempt.
  std::uint64_t prepare_wait() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Consumer: block until the epoch moves past `seen` or timeout. The
  /// caller must have re-tried acquiring work between prepare_wait() and
  /// this call.
  void wait(std::uint64_t seen,
            std::chrono::microseconds timeout = std::chrono::microseconds(500)) {
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (epoch_.load(std::memory_order_seq_cst) == seen) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, timeout, [&] {
        return epoch_.load(std::memory_order_acquire) != seen;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Producer: new work may be available.
  void notify_all() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      // The lock pairs the epoch bump with a waiter between its predicate
      // check and its cv wait; without it the notify could fall in the gap.
      { std::lock_guard<std::mutex> lk(mu_); }
      cv_.notify_all();
    }
  }

  void notify_one() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lk(mu_); }
      cv_.notify_one();
    }
  }

  /// Producer, batched: `want` new tasks became runnable at once (the
  /// batched-release path of a completion). Issues min(want, sleepers)
  /// wakeups behind a single epoch bump and returns how many it issued.
  ///
  /// When no sleeper is registered this returns 0 without even bumping the
  /// epoch — every wakeable worker is already running, so there is nobody
  /// the bump could inform. The one race this admits (a worker between its
  /// final acquire attempt and its sleeper registration misses the new
  /// work) is bounded by the sleep timeout every waiter passes: the worker
  /// re-polls within one timeout instead of hanging. That trade — a rare
  /// sub-millisecond oversleep for no seq_cst RMW on the busy path — is the
  /// point of the suppression.
  int notify_some(int want) noexcept {
    if (want <= 0) return 0;
    const int s = sleepers_.load(std::memory_order_seq_cst);
    if (s == 0) return 0;
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    { std::lock_guard<std::mutex> lk(mu_); }
    if (want >= s) {
      cv_.notify_all();
      return s;
    }
    for (int i = 0; i < want; ++i) cv_.notify_one();
    return want;
  }

  int sleepers() const noexcept {
    return sleepers_.load(std::memory_order_relaxed);
  }

 private:
  alignas(kCacheLineSize) std::atomic<std::uint64_t> epoch_{0};
  alignas(kCacheLineSize) std::atomic<int> sleepers_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace smpss
