// Exclusion tokens for commutative access groups (QuickSched-style
// "conflicts": mutual exclusion without ordering). A task whose parameters
// include Dir::Commutative accesses carries one ConflictToken* per group in
// TaskNode::conflicts; the scheduler driver acquires them all-or-nothing
// around the policy's acquire (see SchedulerPolicy::acquire's contract in
// sched/policy.hpp) and releases them right after the task body runs.
//
// A ready-but-conflicted task is *deferred*, never spun on: the driver parks
// it on the busy token's waiter stack (a Treiber stack threaded through
// TaskNode::queue_next — the task is in no ready list while parked, so the
// link is free) and moves on to the next candidate. The token holder drains
// the stack back into the ready lists at release. The park/recheck dance
// below closes the lost-wakeup window; liveness holds because tokens are
// only ever held for the duration of one task body — the holder is running
// on some worker, so the system cannot sleep with only parked work.
#pragma once

#include <atomic>
#include <cstdint>

#include "graph/task.hpp"

namespace smpss {

struct AccessGroup;  // dep/access_group.hpp

struct ConflictToken {
  /// 0 = free, 1 = held by an executing task.
  std::atomic<std::uint32_t> held{0};
  /// Parked tasks waiting for release (Treiber stack via queue_next).
  std::atomic<TaskNode*> waiters{nullptr};
  /// Owning group; the driver releases the member's group ref at retire.
  AccessGroup* group = nullptr;

  bool try_acquire() noexcept {
    if (held.load(std::memory_order_relaxed) != 0) return false;
    std::uint32_t expected = 0;
    return held.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
  }

  /// Drop the token. The caller must afterwards take_waiters() and re-enqueue
  /// them (release/wake are split so the waker can use the runtime's
  /// gate-aware enqueue).
  void release() noexcept { held.store(0, std::memory_order_release); }

  /// Park a conflicted task. After parking, the caller MUST re-check
  /// `held == 0` and, if so, take_waiters() and re-enqueue them — the holder
  /// may have released between the failed acquire and the push, in which
  /// case nobody else will ever drain the stack.
  void park(TaskNode* t) noexcept {
    TaskNode* head = waiters.load(std::memory_order_relaxed);
    do {
      t->queue_next = head;
    } while (!waiters.compare_exchange_weak(head, t,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
  }

  bool free_now() const noexcept {
    return held.load(std::memory_order_seq_cst) == 0;
  }

  /// Detach the whole waiter stack (each node exactly once across all
  /// concurrent callers).
  TaskNode* take_waiters() noexcept {
    return waiters.exchange(nullptr, std::memory_order_acq_rel);
  }
};

/// All-or-nothing acquisition of a task's tokens. `conflicts` is sorted by
/// pointer at submit, so concurrent multi-token tasks acquire in one global
/// order. Returns nullptr on success; otherwise the blocking token, with
/// every token acquired so far released again.
inline ConflictToken* try_acquire_conflicts(TaskNode* t) noexcept {
  auto& cs = t->conflicts;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (!cs[i]->try_acquire()) {
      for (std::size_t k = 0; k < i; ++k) cs[k]->release();
      return cs[i];
    }
  }
  return nullptr;
}

}  // namespace smpss
