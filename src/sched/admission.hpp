// Weighted deficit-round-robin admission control for service-mode streams.
//
// The foreign-thread gate (Runtime::submit) is a single shared blocking
// condition: when the task window fills, every gated submitter sleeps on one
// IdleGate and whoever wakes first wins the freed slot. One greedy client
// can therefore re-take every slot and starve a trickle client indefinitely.
// This module replaces that free-for-all for streams with an explicit
// admission queue: each stream owns a persistent AdmissionTicket, waiting
// tickets form a round-robin ring, and the head ticket may take up to
// `weight` slots (its deficit) before the turn rotates. A stream blocked on
// its *own* limits (per-stream window, rename budget) forfeits its turn
// instead of holding the head, so stream-local backpressure never convoys
// the other tenants.
//
// Liveness is timeout-backed like every gate in this runtime: waiters
// re-poll on a bounded wait_for, so a missed notify costs one re-poll,
// never a hang. The fast path (no waiters, capacity available — checked by
// the caller) bypasses the queue entirely; `has_waiters()` is one relaxed
// load, so the retire path pays nothing while the service is unsaturated.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.hpp"

namespace smpss {

/// What a probe (slot-acquisition attempt) under the admission lock found.
enum class AdmitProbe : std::uint8_t {
  Taken,       ///< slot acquired — admission granted
  GlobalFull,  ///< shared capacity exhausted: hold the turn, wait for retire
  SelfFull,    ///< stream-local limit hit: forfeit the turn, let others run
};

/// One stream's standing in the admission ring. Embedded in StreamState and
/// persistent across admissions (the deficit must survive between calls for
/// weighted rotation to mean anything). All fields are guarded by the
/// AdmissionControl mutex.
struct AdmissionTicket {
  std::uint32_t weight = 1;   ///< slots granted per turn at the head
  std::int64_t deficit = 0;   ///< grants left this turn
  std::uint32_t waiting = 0;  ///< threads currently blocked in admit()
  bool queued = false;        ///< ticket is in the ring
};

class AdmissionControl {
 public:
  /// Block until it is `t`'s turn and `probe` reports Taken. `probe` runs
  /// under the admission mutex and must be cheap (a few atomic loads plus
  /// the slot take). Re-entrant per stream: any number of client threads may
  /// wait on one ticket; they share its turn.
  template <typename Probe>
  void admit(AdmissionTicket& t, Probe&& probe) {
    std::unique_lock<std::mutex> lk(mu_);
    enqueue(t);
    ++t.waiting;
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      skip_idle_heads();
      if (head() == &t) {
        const AdmitProbe p = probe();
        if (p == AdmitProbe::Taken) {
          if (--t.deficit <= 0) rotate();
          break;
        }
        if (p == AdmitProbe::SelfFull) {
          // Forfeit: this stream's own window/budget is the blocker; the
          // remaining global capacity belongs to the next tenant in line.
          // Wake the new head, then fall through to the bounded wait (a
          // lone stream would otherwise spin here under the mutex).
          rotate();
          cv_.notify_all();
        }
      }
      // GlobalFull (or not our turn): wait for a retire-side notify; the
      // bounded timeout makes a lost wakeup cost one re-poll.
      cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    --t.waiting;
  }

  /// Retire side: a slot may have freed. One relaxed load when idle.
  bool has_waiters() const noexcept {
    return waiters_.load(std::memory_order_relaxed) > 0;
  }
  void notify() noexcept { cv_.notify_all(); }

  /// Threads currently blocked in admit(). Test/monitoring only.
  std::uint32_t waiters() const noexcept {
    return waiters_.load(std::memory_order_relaxed);
  }

  /// Drop a closed stream's ticket from the ring. No thread may be waiting
  /// on it (close() drains its own submitters first).
  void remove(AdmissionTicket& t) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!t.queued) return;
    SMPSS_CHECK(t.waiting == 0,
                "removing an admission ticket with waiters still blocked");
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      if (ring_[i] != &t) continue;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(i));
      if (head_ > i) --head_;
      if (head_ >= ring_.size()) head_ = 0;
      break;
    }
    t.queued = false;
  }

 private:
  AdmissionTicket* head() const noexcept {
    return ring_.empty() ? nullptr : ring_[head_];
  }

  void enqueue(AdmissionTicket& t) {
    if (t.queued) return;
    t.queued = true;
    t.deficit = t.weight;
    ring_.push_back(&t);
  }

  /// Advance the turn; the new head starts a fresh turn with a full deficit.
  void rotate() noexcept {
    if (ring_.empty()) return;
    head_ = (head_ + 1) % ring_.size();
    ring_[head_]->deficit = static_cast<std::int64_t>(ring_[head_]->weight);
  }

  /// Tickets stay in the ring between admissions (their deficit is their
  /// standing), so the head may have no waiting thread; pass the turn along
  /// until it lands on someone who wants it.
  void skip_idle_heads() noexcept {
    for (std::size_t n = 0; n < ring_.size(); ++n) {
      AdmissionTicket* h = head();
      if (h == nullptr || h->waiting > 0) return;
      rotate();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<AdmissionTicket*> ring_;  // round-robin order
  std::size_t head_ = 0;
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace smpss
