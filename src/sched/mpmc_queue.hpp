// Unbounded MPMC FIFO used for the two global ready lists of paper Sec. III
// (the high-priority list and the "main" list).
//
// These lists see far less traffic than the per-worker deques — they receive
// only dependency-free tasks from the main thread and act as "a point of
// distribution of tasks in areas of the graph that are not being explored" —
// so a padded spin-locked intrusive list is both simple and fast enough.
// Tasks are linked through an intrusive `next` pointer supplied by a traits
// hook, so enqueueing never allocates.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/cache.hpp"
#include "common/check.hpp"
#include "common/spin.hpp"

namespace smpss {

/// T must expose `T* queue_next` (only ever touched while inside a queue).
template <typename T>
class IntrusiveMpmcFifo {
 public:
  IntrusiveMpmcFifo() = default;
  IntrusiveMpmcFifo(const IntrusiveMpmcFifo&) = delete;
  IntrusiveMpmcFifo& operator=(const IntrusiveMpmcFifo&) = delete;

  void push_back(T* item) noexcept {
    item->queue_next = nullptr;
    lock_.lock();
    if (tail_) {
      tail_->queue_next = item;
    } else {
      head_ = item;
    }
    tail_ = item;
    size_.fetch_add(1, std::memory_order_relaxed);
    lock_.unlock();
  }

  /// Append `n` items in order with one lock acquisition (batched release).
  void push_back_batch(T* const* items, std::size_t n) noexcept {
    if (n == 0) return;
    for (std::size_t i = 0; i + 1 < n; ++i) items[i]->queue_next = items[i + 1];
    items[n - 1]->queue_next = nullptr;
    lock_.lock();
    if (tail_) {
      tail_->queue_next = items[0];
    } else {
      head_ = items[0];
    }
    tail_ = items[n - 1];
    size_.fetch_add(n, std::memory_order_relaxed);
    lock_.unlock();
  }

  T* pop_front() noexcept {
    // Fast-path reject without taking the lock; size_ is monotonic enough
    // for this (a false empty is re-checked by the scheduler loop).
    if (size_.load(std::memory_order_relaxed) == 0) return nullptr;
    lock_.lock();
    T* item = pop_front_locked();
    lock_.unlock();
    return item;
  }

  /// Non-blocking pop: gives up immediately when another thread holds the
  /// lock. Lets a crowd of work-seeking consumers fall through to stealing
  /// instead of convoying here against the producer's push.
  T* try_pop_front() noexcept {
    if (size_.load(std::memory_order_relaxed) == 0) return nullptr;
    if (!lock_.try_lock()) return nullptr;
    T* item = pop_front_locked();
    lock_.unlock();
    return item;
  }

  std::size_t size_estimate() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  bool empty_estimate() const noexcept { return size_estimate() == 0; }

 private:
  T* pop_front_locked() noexcept {
    T* item = head_;
    if (item) {
      head_ = item->queue_next;
      if (!head_) tail_ = nullptr;
      size_.fetch_sub(1, std::memory_order_relaxed);
      item->queue_next = nullptr;
    }
    return item;
  }

  alignas(kCacheLineSize) SpinLock lock_;
  T* head_ = nullptr;
  T* tail_ = nullptr;
  alignas(kCacheLineSize) std::atomic<std::size_t> size_{0};
};

}  // namespace smpss
