#include "dep/region_analyzer.hpp"

#include <algorithm>

#include "dep/renaming.hpp"

namespace smpss {

void RegionAnalyzer::add_edge(TaskNode* pred, TaskNode* succ, EdgeKind kind) {
  if (pred->finished_hint()) return;  // finished: can't take successors
  if (!pred->add_successor(succ)) return;
  switch (kind) {
    case EdgeKind::True: ++counters_.raw_edges; break;
    case EdgeKind::Anti: ++counters_.war_edges; break;
    case EdgeKind::Output: ++counters_.waw_edges; break;
    case EdgeKind::Member: break;  // never emitted by the region analyzer
  }
  if (recorder_) recorder_->record_edge(pred->seq, succ->seq, kind);
  // Per-stream accounting mirrors the address-mode analyzer: the edge is
  // charged to the submission that discovered it.
  if (succ->account)
    succ->account->edges.fetch_add(1, std::memory_order_relaxed);
}

void* RegionAnalyzer::process(TaskNode* task, const AccessDesc& access) {
  SMPSS_ASSERT(access.has_region);
  // Belt-and-braces: Runtime::route_access diagnoses this with a proper
  // message before dispatching here; commuting modes never reach regions.
  SMPSS_CHECK(!is_commuting(access.dir),
              "commutative/concurrent access modes are address-mode only");
  ++counters_.accesses;
  if (task->account)
    task->account->accesses.fetch_add(1, std::memory_order_relaxed);

  auto [it, inserted] = arrays_.try_emplace(access.addr);
  ArrayEntry& e = it->second;
  if (inserted) {
    e.elem_bytes = access.region.elem_bytes();
    ++counters_.tracked_arrays;
    tracked_live_.fetch_add(1, std::memory_order_release);
  } else {
    SMPSS_CHECK(e.elem_bytes == access.region.elem_bytes(),
                "one array accessed with two different element sizes");
  }

  // Lazily prune records whose task already finished; their effects are in
  // memory, so they can no longer be the source of a dependency.
  auto dead = std::remove_if(e.live.begin(), e.live.end(), [&](AccessRec& r) {
    if (!r.task->finished_hint()) return false;
    r.task->release();
    ++counters_.pruned_records;
    return true;
  });
  e.live.erase(dead, e.live.end());

  const bool writes = access.dir != Dir::In;
  for (const AccessRec& r : e.live) {
    if (r.task == task) continue;            // duplicate params on one task
    if (!r.writes && !writes) continue;      // read-after-read: no hazard
    if (!r.region.overlaps(access.region)) continue;
    // A child operates inside its ancestor's region access; an edge from
    // the (still-running) ancestor would deadlock against taskwait().
    if (task->has_ancestor(r.task)) continue;
    EdgeKind kind = r.writes ? (writes ? EdgeKind::Output : EdgeKind::True)
                             : EdgeKind::Anti;
    add_edge(r.task, task, kind);
  }

  task->add_ref();
  e.live.push_back(AccessRec{access.region, task, writes});

  return access.addr;  // regions never relocate data
}

void RegionAnalyzer::flush_all() {
  for (auto& [addr, e] : arrays_) {
    for (AccessRec& r : e.live) r.task->release();
    e.live.clear();
  }
  arrays_.clear();
  tracked_live_.store(0, std::memory_order_release);
}

}  // namespace smpss
