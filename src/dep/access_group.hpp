// Commuting access groups — the bookkeeping behind Dir::Commutative and
// Dir::Concurrent (see dep/access.hpp).
//
// Consecutive same-mode accesses to one datum form a *group*: its members
// run in any order (mutually exclusive for Commutative, fully concurrent
// into per-worker privates for Concurrent) instead of being chained by the
// WAW edges the paper's model would impose. The trick that keeps the rest of
// the analyzer unchanged: opening a group runs the ordinary inout
// process_write with the group's *close node* — a TaskNode that is never
// scheduled — as the writing task. That creates one new version whose
// producer is the close node, so everything downstream (RAW edges from later
// readers, copy-back readiness, flush asserts) sees a perfectly normal
// unproduced version until the group closes and the runtime retires the
// close node (combining reduction privates, running the close's copy-ins,
// and releasing its versions exactly like a task retire).
//
// Members each take an edge to the close node, so its pending count is
// 1 (the open guard) + live members; any non-matching access — or a
// barrier/wait_on — closes the group by dropping the guard.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>

#include "common/check.hpp"
#include "common/memcopy.hpp"
#include "common/spin.hpp"
#include "dep/access.hpp"
#include "dep/renaming.hpp"
#include "dep/version.hpp"
#include "graph/task.hpp"
#include "sched/conflict.hpp"

namespace smpss {

struct AccessGroup {
  AccessGroup(Dir mode_, ReductionOp op_, std::size_t bytes_,
              unsigned nworkers_, RenamePool& rpool)
      : mode(mode_), op(op_), bytes(bytes_), nworkers(nworkers_),
        pool(&rpool) {
    token.group = this;
    if (mode == Dir::Concurrent) {
      privates = new std::atomic<void*>[nworkers];
      for (unsigned i = 0; i < nworkers; ++i)
        privates[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  AccessGroup(const AccessGroup&) = delete;
  AccessGroup& operator=(const AccessGroup&) = delete;
  ~AccessGroup() {
    // Normal close retire combines+frees the privates and releases `prev`;
    // this backstop only runs for abandoned runtimes torn down mid-phase.
    if (privates) {
      for (unsigned i = 0; i < nworkers; ++i)
        if (void* p = privates[i].load(std::memory_order_relaxed))
          pool->deallocate(p, bytes, nullptr);
      delete[] privates;
    }
    if (prev) prev->release(*pool);
  }

  // --- identity (immutable after publication) -------------------------------
  Dir mode;             ///< Commutative or Concurrent
  ReductionOp op;       ///< Concurrent: grouping is by operator identity
  std::size_t bytes;    ///< merged datum extent at group open
  unsigned nworkers;    ///< sizes `privates`
  RenamePool* pool;     ///< private buffers + teardown frees

  /// The never-scheduled close node (see file comment). Kept alive by the
  /// group version's producer reference, which outlives every member.
  TaskNode* close = nullptr;

  /// Published-before-initialized guard (lock-free path): the group version
  /// is CAS-published before `prev`/the init copy are recorded, so joiners
  /// and closers spin on this flag first.
  std::atomic<bool> ready{false};

  // --- join/close serialization --------------------------------------------
  SpinLock mu;                  ///< guards `open` writes and member wiring
  std::atomic<bool> open{true}; ///< readable without mu (registry pruning)

  /// Superseded version the group builds on (strong ref, released by the
  /// runtime at close retire): members order after its producer, and the
  /// no-renaming commutative path takes WAR edges from its reader tasks.
  Version* prev = nullptr;

  // --- Commutative ----------------------------------------------------------
  ConflictToken token;  ///< members mutually exclude on this

  /// Renamed group storage must first inherit the previous version's bytes
  /// (plus, for a growing extent, the user-storage tail — hence up to two
  /// copies, mirroring TaskNode::copy_ins); the first member to *run* claims
  /// them (exchange) and performs them under the token, so no member's
  /// writes can be clobbered by the inherit.
  std::atomic<bool> init_pending{false};
  CopyIn init_copies[2] = {};
  unsigned init_count = 0;

  void maybe_init_copy() noexcept {
    if (!init_pending.load(std::memory_order_relaxed)) return;
    if (init_pending.exchange(false, std::memory_order_acq_rel))
      // Same inherit copy as the close-node path: overlap-safe, because
      // master/private extents may alias inside a shared transfer segment.
      for (unsigned i = 0; i < init_count; ++i)
        safe_copy(init_copies[i].dst, init_copies[i].src,
                  init_copies[i].bytes);
  }

  // --- Concurrent -----------------------------------------------------------
  /// Per-worker private buffers, lazily allocated (and identity-seeded) the
  /// first time a member body runs on that worker. Slot `tid` is only ever
  /// written by worker `tid`; the combine at close retire is ordered after
  /// every member by the close node's pending count.
  std::atomic<void*>* privates = nullptr;

  void* private_for(unsigned tid) {
    SMPSS_ASSERT(tid < nworkers);
    void* p = privates[tid].load(std::memory_order_relaxed);
    if (p == nullptr) {
      p = pool->allocate(bytes, nullptr);
      op.init(p, bytes);
      privates[tid].store(p, std::memory_order_release);
    }
    return p;
  }

  /// Close-retire combine: fold every used private into `master` and free it.
  void combine_privates(void* master) noexcept {
    if (!privates) return;
    for (unsigned i = 0; i < nworkers; ++i) {
      if (void* p = privates[i].exchange(nullptr,
                                         std::memory_order_acquire)) {
        op.combine(master, p, bytes);
        pool->deallocate(p, bytes, nullptr);
      }
    }
  }

  /// How many privates were materialized (stats; call before combine).
  unsigned privates_live() const noexcept {
    unsigned n = 0;
    if (privates)
      for (unsigned i = 0; i < nworkers; ++i)
        if (privates[i].load(std::memory_order_relaxed) != nullptr) ++n;
    return n;
  }

  // --- lifetime -------------------------------------------------------------
  // Refs: one per live member (Commutative via its token, Concurrent via its
  // reduce fixup), one for the group version (Version::group()), one for the
  // analyzer's open-group registry.
  std::atomic<int> refs{1};
  void add_ref() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }
  void release() noexcept {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

}  // namespace smpss
