// Parameter access descriptors — the information the paper's compiler
// forwards to the runtime for every task parameter: "the memory address,
// size and directionality of each parameter at each task invocation"
// (Sec. II), optionally refined by an array region (Sec. V.A).
#pragma once

#include <cstddef>

#include "dep/region.hpp"

namespace smpss {

/// Directionality clauses of the `#pragma css task` construct.
enum class Dir : unsigned char {
  In,     ///< parameter is only read
  Out,    ///< parameter is only written
  InOut,  ///< parameter is read and written
};

inline const char* to_string(Dir d) noexcept {
  switch (d) {
    case Dir::In: return "input";
    case Dir::Out: return "output";
    case Dir::InOut: return "inout";
  }
  return "?";
}

/// One directional parameter of one task invocation.
struct AccessDesc {
  void* addr = nullptr;     ///< base address of the datum
  std::size_t bytes = 0;    ///< full size of the datum in bytes
  Dir dir = Dir::In;
  bool has_region = false;  ///< region-qualified access (Sec. V.A)
  Region region;            ///< valid when has_region
};

}  // namespace smpss
