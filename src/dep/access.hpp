// Parameter access descriptors — the information the paper's compiler
// forwards to the runtime for every task parameter: "the memory address,
// size and directionality of each parameter at each task invocation"
// (Sec. II), optionally refined by an array region (Sec. V.A).
#pragma once

#include <cstddef>

#include "dep/region.hpp"

namespace smpss {

/// Directionality clauses of the `#pragma css task` construct, extended by
/// the two QuickSched-style commuting modes (mutual exclusion / reduction)
/// that the paper's in/out/inout vocabulary cannot express.
enum class Dir : unsigned char {
  In,           ///< parameter is only read
  Out,          ///< parameter is only written
  InOut,        ///< parameter is read and written
  Commutative,  ///< read-modify-write; writers mutually exclude, no ordering
  Concurrent,   ///< reduction: unordered writers into per-worker privates
};

inline const char* to_string(Dir d) noexcept {
  switch (d) {
    case Dir::In: return "input";
    case Dir::Out: return "output";
    case Dir::InOut: return "inout";
    case Dir::Commutative: return "commutative";
    case Dir::Concurrent: return "concurrent";
  }
  return "?";
}

/// True for the modes where a group of same-mode accesses commutes (runs in
/// any order) instead of being chained by WAW edges.
inline bool is_commuting(Dir d) noexcept {
  return d == Dir::Commutative || d == Dir::Concurrent;
}

/// Type-erased reduction operator for Dir::Concurrent parameters. `init`
/// seeds a freshly allocated per-worker private buffer with the identity;
/// `combine` folds one private into the master copy. Both receive the full
/// byte extent of the parameter. Operator identity (for grouping accesses
/// into one reduction) is by function-pointer equality.
struct ReductionOp {
  void (*init)(void* priv, std::size_t bytes) = nullptr;
  void (*combine)(void* into, const void* priv, std::size_t bytes) = nullptr;

  bool valid() const noexcept { return init && combine; }
  bool operator==(const ReductionOp& o) const noexcept {
    return init == o.init && combine == o.combine;
  }
};

/// One directional parameter of one task invocation.
struct AccessDesc {
  void* addr = nullptr;     ///< base address of the datum
  std::size_t bytes = 0;    ///< full size of the datum in bytes
  Dir dir = Dir::In;
  bool has_region = false;  ///< region-qualified access (Sec. V.A)
  Region region;            ///< valid when has_region
  ReductionOp op;           ///< valid when dir == Dir::Concurrent
};

}  // namespace smpss
