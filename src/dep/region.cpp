#include "dep/region.hpp"

#include <cstdio>

namespace smpss {

std::uint64_t Region::element_count() const noexcept {
  if (empty()) return 0;
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < ndims_; ++i) {
    if (dims_[i].full) return 0;  // unknown extent
    n *= static_cast<std::uint64_t>(dims_[i].upper - dims_[i].lower + 1);
  }
  return n;
}

std::string Region::to_string() const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < ndims_; ++i) {
    const Bound& b = dims_[i];
    if (b.full) {
      out += "{}";
    } else {
      std::snprintf(buf, sizeof(buf), "{%lld..%lld}",
                    static_cast<long long>(b.lower),
                    static_cast<long long>(b.upper));
      out += buf;
    }
  }
  return out;
}

}  // namespace smpss
