// RenamePool: allocator + accountant for renamed data storage.
//
// Renamed buffers are cache-line aligned (the paper credits part of the
// 1-thread N-Queens speedup to "realigning data due to renamings") and their
// total footprint is tracked: exceeding the configured limit is one of the
// main thread's blocking conditions (Sec. III).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/aligned_alloc.hpp"
#include "common/cache.hpp"
#include "common/check.hpp"

namespace smpss {

class RenamePool {
 public:
  explicit RenamePool(std::size_t soft_limit_bytes) noexcept
      : soft_limit_(soft_limit_bytes) {}

  /// Allocate an aligned renamed buffer. Never fails softly: exceeding the
  /// soft limit is handled by the runtime *before* calling (blocking the
  /// main thread), not here.
  void* allocate(std::size_t bytes) {
    void* p = aligned_alloc_bytes(bytes, kDataAlignment);
    SMPSS_CHECK(p != nullptr, "out of memory for renamed storage");
    accountant_.add(bytes);
    renames_.fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    aligned_free_bytes(p);
    accountant_.sub(bytes);
  }

  /// True while renamed storage exceeds the configured soft limit.
  bool over_limit() const noexcept {
    return accountant_.current() > soft_limit_;
  }

  std::size_t soft_limit() const noexcept { return soft_limit_; }
  std::size_t current_bytes() const noexcept { return accountant_.current(); }
  std::size_t peak_bytes() const noexcept { return accountant_.peak(); }
  std::size_t total_bytes() const noexcept { return accountant_.total(); }
  std::uint64_t rename_count() const noexcept {
    return renames_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t soft_limit_;
  MemoryAccountant accountant_;
  std::atomic<std::uint64_t> renames_{0};
};

}  // namespace smpss
