// RenamePool: allocator + accountant for renamed data storage.
//
// Renamed buffers are cache-line aligned (the paper credits part of the
// 1-thread N-Queens speedup to "realigning data due to renamings") and their
// total footprint is tracked: exceeding the configured limit is one of the
// main thread's blocking conditions (Sec. III).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/aligned_alloc.hpp"
#include "common/cache.hpp"
#include "common/check.hpp"

namespace smpss {

/// Per-submitter accounting, threaded through both analyzers via
/// TaskNode::account. Service-mode streams (runtime/stream.hpp) own one
/// each: renamed storage is charged to the submitting stream when allocated
/// and credited back when the buffer is freed — the account can outlive the
/// submission (a renamed buffer dies with its last reader, possibly after
/// the stream closed), which is why streams are registry-pinned for the
/// runtime's life. `rename_budget` is the stream's private analogue of the
/// global rename-memory blocking condition (Sec. III): admission blocks the
/// offending stream alone instead of everyone.
struct SubmitterAccount {
  std::atomic<std::uint64_t> rename_bytes{0};  ///< outstanding renamed bytes
  std::atomic<std::uint64_t> renames{0};       ///< cumulative rename count
  std::atomic<std::uint64_t> accesses{0};      ///< analyzer accesses (both modes)
  std::atomic<std::uint64_t> edges{0};         ///< edges into this account's tasks
  std::size_t rename_budget = 0;               ///< 0 = no per-stream cap

  bool over_budget() const noexcept {
    return rename_budget != 0 &&
           rename_bytes.load(std::memory_order_relaxed) > rename_budget;
  }
};

class RenamePool {
 public:
  explicit RenamePool(std::size_t soft_limit_bytes) noexcept
      : soft_limit_(soft_limit_bytes) {}

  /// Allocate an aligned renamed buffer. Never fails softly: exceeding the
  /// soft limit is handled by the runtime *before* calling (blocking the
  /// main thread), not here. `acct` (nullable) additionally charges the
  /// bytes to the submitting stream's account; the matching deallocate must
  /// pass the same account (versions carry it — see dep/version.hpp).
  void* allocate(std::size_t bytes, SubmitterAccount* acct = nullptr) {
    void* p = aligned_alloc_bytes(bytes, kDataAlignment);
    SMPSS_CHECK(p != nullptr, "out of memory for renamed storage");
    accountant_.add(bytes);
    renames_.fetch_add(1, std::memory_order_relaxed);
    if (acct) {
      acct->rename_bytes.fetch_add(bytes, std::memory_order_relaxed);
      acct->renames.fetch_add(1, std::memory_order_relaxed);
    }
    return p;
  }

  void deallocate(void* p, std::size_t bytes,
                  SubmitterAccount* acct = nullptr) noexcept {
    aligned_free_bytes(p);
    accountant_.sub(bytes);
    if (acct) acct->rename_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// True while renamed storage exceeds the configured soft limit.
  bool over_limit() const noexcept {
    return accountant_.current() > soft_limit_;
  }

  std::size_t soft_limit() const noexcept { return soft_limit_; }
  std::size_t current_bytes() const noexcept { return accountant_.current(); }
  std::size_t peak_bytes() const noexcept { return accountant_.peak(); }
  std::size_t total_bytes() const noexcept { return accountant_.total(); }
  std::uint64_t rename_count() const noexcept {
    return renames_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t soft_limit_;
  MemoryAccountant accountant_;
  std::atomic<std::uint64_t> renames_{0};
};

}  // namespace smpss
