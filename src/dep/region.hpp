// N-dimensional array regions (paper Sec. V.A).
//
// "Given an N-dimensional array A with dimensions d1..dN, an array region R
// from A is a list of pairs {p1..pN} such that each pair pj = (lj, uj)
// specifies a lower bound and an upper bound on the corresponding dimension;
// R represents all elements with lj <= ij <= uj."
//
// The paper's three specifier spellings map to constructors here:
//   {l..u}  -> Bound::closed(l, u)
//   {l:L}   -> Bound::length(l, L)
//   {}      -> Bound::full()          (whole dimension)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace smpss {

/// Inclusive element-index interval on one array dimension.
struct Bound {
  std::int64_t lower = 0;
  std::int64_t upper = -1;  ///< inclusive; lower > upper means empty
  bool full = false;        ///< "{}": the dimension is used fully

  static Bound closed(std::int64_t l, std::int64_t u) noexcept {
    return Bound{l, u, false};
  }
  static Bound length(std::int64_t l, std::int64_t len) noexcept {
    return Bound{l, l + len - 1, false};
  }
  static Bound whole() noexcept { return Bound{0, -1, true}; }

  bool empty() const noexcept { return !full && lower > upper; }

  /// Intervals overlap; a `full` bound overlaps everything non-empty.
  bool overlaps(const Bound& o) const noexcept {
    if (empty() || o.empty()) return false;
    if (full || o.full) return true;
    return lower <= o.upper && o.lower <= upper;
  }

  /// This interval contains `o` entirely.
  bool contains(const Bound& o) const noexcept {
    if (o.empty()) return true;
    if (full) return true;
    if (o.full) return false;
    return lower <= o.lower && o.upper <= upper;
  }

  bool operator==(const Bound& o) const noexcept {
    if (full && o.full) return true;
    return full == o.full && lower == o.lower && upper == o.upper;
  }
};

/// A rectangular region of up to kMaxDims dimensions, in *element* units.
/// `elem_bytes` records sizeof(element) so byte footprints can be computed
/// and mismatched element types on one array can be diagnosed.
class Region {
 public:
  static constexpr std::size_t kMaxDims = 4;

  Region() = default;

  Region(std::initializer_list<Bound> bounds, std::size_t elem_bytes = 1)
      : ndims_(bounds.size()), elem_bytes_(elem_bytes) {
    SMPSS_CHECK(bounds.size() >= 1 && bounds.size() <= kMaxDims,
                "region must have 1..4 dimensions");
    std::size_t i = 0;
    for (const Bound& b : bounds) dims_[i++] = b;
  }

  std::size_t ndims() const noexcept { return ndims_; }
  std::size_t elem_bytes() const noexcept { return elem_bytes_; }
  void set_elem_bytes(std::size_t b) noexcept { elem_bytes_ = b; }

  const Bound& dim(std::size_t i) const noexcept {
    SMPSS_ASSERT(i < ndims_);
    return dims_[i];
  }
  Bound& dim(std::size_t i) noexcept {
    SMPSS_ASSERT(i < ndims_);
    return dims_[i];
  }

  bool empty() const noexcept {
    if (ndims_ == 0) return true;
    for (std::size_t i = 0; i < ndims_; ++i)
      if (dims_[i].empty()) return true;
    return false;
  }

  /// Rectangles intersect iff every dimension's intervals intersect.
  /// Regions of different rank on the same array are compared
  /// conservatively: they are considered overlapping (the analyzer refuses
  /// to reason about reshapes).
  bool overlaps(const Region& o) const noexcept {
    if (empty() || o.empty()) return false;
    if (ndims_ != o.ndims_) return true;
    for (std::size_t i = 0; i < ndims_; ++i)
      if (!dims_[i].overlaps(o.dims_[i])) return false;
    return true;
  }

  bool contains(const Region& o) const noexcept {
    if (o.empty()) return true;
    if (ndims_ != o.ndims_) return false;
    for (std::size_t i = 0; i < ndims_; ++i)
      if (!dims_[i].contains(o.dims_[i])) return false;
    return true;
  }

  bool operator==(const Region& o) const noexcept {
    if (ndims_ != o.ndims_) return false;
    for (std::size_t i = 0; i < ndims_; ++i)
      if (!(dims_[i] == o.dims_[i])) return false;
    return true;
  }

  /// Number of elements, treating `full` dimensions as unknown (returns 0).
  std::uint64_t element_count() const noexcept;

  /// Render in the paper's specifier syntax, e.g. "{0..9}{}".
  std::string to_string() const;

 private:
  std::size_t ndims_ = 0;
  std::size_t elem_bytes_ = 1;
  std::array<Bound, kMaxDims> dims_{};
};

/// Convenience builders mirroring the paper's syntax.
inline Bound bounds(std::int64_t l, std::int64_t u) { return Bound::closed(l, u); }
inline Bound span_from(std::int64_t l, std::int64_t len) { return Bound::length(l, len); }
inline Bound whole_dim() { return Bound::whole(); }

}  // namespace smpss
