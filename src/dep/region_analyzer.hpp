// Region-mode dependency analysis — the language extension of paper Sec. V.A.
//
// The paper *proposes* region specifiers ({l..u} | {l:L} | {}) but notes its
// runtime "does not yet include support for array regions"; this class
// implements them. Per base array we keep the set of live region accesses;
// a new access gains an edge from every live access it conflicts with
// (write/read, read/write or write/write on overlapping rectangles).
//
// Renaming is deliberately NOT applied across region accesses: partially
// overlapping writes cannot be renamed consistently — the same caveat the
// paper raises for representants ("representants cannot be reliably used if
// there are false dependencies between the represented data").
//
// Threading: main thread only in the paper-faithful configuration. With
// concurrent submitters (nested mode) the Runtime guards this class with a
// dedicated reader-writer lock ordered after the dependency shard mutexes:
// region-qualified submissions hold it exclusively, address-mode
// submissions hold it shared just long enough for the mixed-mode diagnosis
// (tracks()), and stats() reads the counters under the shared side.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dep/access.hpp"
#include "graph/graph_recorder.hpp"
#include "graph/task.hpp"

namespace smpss {

class RegionAnalyzer {
 public:
  struct Counters {
    std::uint64_t accesses = 0;
    std::uint64_t raw_edges = 0;
    std::uint64_t war_edges = 0;
    std::uint64_t waw_edges = 0;
    std::uint64_t pruned_records = 0;
    std::uint64_t tracked_arrays = 0;
  };

  explicit RegionAnalyzer(GraphRecorder* recorder) noexcept
      : recorder_(recorder) {}
  RegionAnalyzer(const RegionAnalyzer&) = delete;
  RegionAnalyzer& operator=(const RegionAnalyzer&) = delete;
  ~RegionAnalyzer() { flush_all(); }

  /// Analyze one region-qualified parameter. The resolved storage is always
  /// the program's own array (regions never relocate data); the return value
  /// exists for symmetry with DependencyAnalyzer.
  void* process(TaskNode* task, const AccessDesc& access);

  /// Drop all access records (barrier time; all tasks complete).
  void flush_all();

  bool tracks(const void* addr) const {
    return arrays_.find(addr) != arrays_.end();
  }

  /// Lock-free probe: has any region access been registered since the last
  /// flush? Address-mode submitters use it to skip the region rwlock (and
  /// the tracks() diagnosis) entirely while the program never touches
  /// region mode — the overwhelmingly common case.
  bool maybe_tracking() const noexcept {
    return tracked_live_.load(std::memory_order_acquire) != 0;
  }

  const Counters& counters() const noexcept { return counters_; }

 private:
  struct AccessRec {
    Region region;
    TaskNode* task;  // strong ref
    bool writes;
  };
  struct ArrayEntry {
    std::vector<AccessRec> live;
    std::size_t elem_bytes = 0;
  };

  void add_edge(TaskNode* pred, TaskNode* succ, EdgeKind kind);

  GraphRecorder* recorder_;
  Counters counters_;
  std::unordered_map<const void*, ArrayEntry> arrays_;
  std::atomic<std::size_t> tracked_live_{0};  ///< arrays_.size(), lock-free
};

}  // namespace smpss
