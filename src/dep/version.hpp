// Data versions — the runtime-side analogue of physical registers in a
// superscalar processor (paper Sec. II: "the SMPSs runtime is capable of
// renaming the data, leaving only the true dependencies. This is the same
// technique used by superscalar processors").
//
// Every datum the program passes to tasks is a chain of versions. A version
// records where its bytes live (the user's storage or a runtime-owned
// renamed buffer), which task produces it, and how many readers are still
// pending. Lifetime is reference-counted:
//   +1 "latest" token   — held while the version is the newest of its datum
//   +1 producer token   — held until the producing task completes
//   +1 per reader       — held until each reading task completes
// When the count drops to zero the version is destroyed and renamed storage
// is returned to the rename pool. This gives the eager reclamation the paper
// relies on to keep renamed-memory bounded.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/check.hpp"
#include "common/small_vector.hpp"
#include "graph/task.hpp"

namespace smpss {

class RenamePool;
struct DataEntry;
struct SubmitterAccount;  // dep/renaming.hpp

class Version {
 public:
  /// Creates a version holding the latest-token (refs=1) plus a producer
  /// token if `producer` is non-null (refs=2). Takes a strong ref on the
  /// producer task. `account` (nullable) is the submitter account the
  /// renamed storage was charged to; the credit is issued when this version
  /// frees the buffer — possibly long after the submitting stream drained,
  /// which is why stream accounts are pinned for the runtime's life.
  Version(DataEntry* entry, void* storage, std::size_t bytes, bool renamed,
          TaskNode* producer, SubmitterAccount* account = nullptr);

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  void* storage() const noexcept { return storage_; }
  std::size_t bytes() const noexcept { return bytes_; }
  bool renamed() const noexcept { return renamed_; }
  SubmitterAccount* account() const noexcept { return account_; }
  DataEntry* entry() const noexcept { return entry_; }
  TaskNode* producer() const noexcept { return producer_; }

  bool is_produced() const noexcept {
    return produced_.load(std::memory_order_acquire);
  }
  void mark_produced() noexcept {
    produced_.store(true, std::memory_order_release);
  }

  // --- reader registration (submission order) -------------------------------

  /// Register `reader` as a pending reader: bumps the pending count, takes a
  /// lifetime ref on this version and a strong ref on the reader task (the
  /// task pointer is needed later for WAR edges when renaming is disabled).
  void register_reader(TaskNode* reader) {
    readers_pending_.fetch_add(1, std::memory_order_relaxed);
    refs_.fetch_add(1, std::memory_order_relaxed);
    reader->add_ref();
    reader_tasks_.push_back(reader);
  }

  /// Pending readers right now (submission-side decision input; workers
  /// only ever decrement, so a nonzero answer can only shrink).
  int readers_pending() const noexcept {
    return readers_pending_.load(std::memory_order_acquire);
  }

  /// Submission-order view of recorded reader tasks (WAR edges in the
  /// no-renaming configuration).
  const SmallVector<TaskNode*, 4>& reader_tasks() const noexcept {
    return reader_tasks_;
  }

  // --- token release (any thread) -------------------------------------------

  /// A reading task finished: drop its pending-reader mark, then its ref.
  void reader_finished(RenamePool& pool) noexcept {
    readers_pending_.fetch_sub(1, std::memory_order_acq_rel);
    release(pool);
  }

  /// Drop one lifetime reference; destroys the version at zero.
  void release(RenamePool& pool) noexcept;

  /// Transfer storage ownership out of this version (used when a successor
  /// version reuses the same bytes in place): the buffer will no longer be
  /// freed when this version dies. Submission order only, while holding the
  /// latest token.
  void disown_storage() noexcept { renamed_ = false; }

 private:
  ~Version();

  DataEntry* entry_;
  void* storage_;
  std::size_t bytes_;
  bool renamed_;
  SubmitterAccount* account_;  // stream charged for renamed storage, or null
  TaskNode* producer_;  // strong ref; null for initial versions
  std::atomic<bool> produced_;
  std::atomic<int> readers_pending_{0};
  std::atomic<int> refs_;
  SmallVector<TaskNode*, 4> reader_tasks_;  // strong refs, submission-order writes
};

/// Per-datum bookkeeping (address-mode analysis). Entries live in the
/// analyzer's hash-sharded unordered_maps (one map + mutex per shard);
/// unordered_map guarantees reference stability so versions can point back
/// at their entry. Mutation is guarded by the owning shard's mutex when
/// submitters are concurrent.
struct DataEntry {
  void* user_ptr = nullptr;  ///< the address the program passes to tasks
  /// Largest extent ever *written* at this address. Invariant: the latest
  /// version always covers all of it (smaller writes inherit the
  /// predecessor's tail), so copying back `latest` alone restores the
  /// datum — see DependencyAnalyzer::process_write.
  std::size_t bytes = 0;
  Version* latest = nullptr; ///< owns the latest-token

  /// Count of unfinished accesses whose storage is the *user* buffer.
  /// wait_on() needs user storage quiescent before copying a renamed latest
  /// version back into it.
  std::atomic<int> user_storage_pending{0};
};

}  // namespace smpss
