// Data versions — the runtime-side analogue of physical registers in a
// superscalar processor (paper Sec. II: "the SMPSs runtime is capable of
// renaming the data, leaving only the true dependencies. This is the same
// technique used by superscalar processors").
//
// Every datum the program passes to tasks is a chain of versions. A version
// records where its bytes live (the user's storage or a runtime-owned
// renamed buffer), which task produces it, and how many readers are still
// pending. Lifetime is reference-counted:
//   +1 "latest" token   — held while the version is the newest of its datum
//   +1 producer token   — held until the producing task completes
//   +1 per reader       — held until each reading task completes
// When the count drops to zero the version is destroyed and renamed storage
// is returned to the rename pool. This gives the eager reclamation the paper
// relies on to keep renamed-memory bounded.
//
// Lock-free chain support (SMPSS_DEP_LOCKFREE): versions are allocated from
// a type-stable SlabPool and their two synchronization counters (refs,
// pending readers) live in a per-block prefix cell that SURVIVES tenancies —
// the pool recycles the block but never reinitializes the counters. A reader
// pins the chain head speculatively (increment first, then validate that the
// entry's latest pointer is unchanged); if the version died in between, the
// increments landed on recycled type-stable memory and the compensating
// decrements make the excursion net-zero. Two invariants make that safe:
//
//   * dead blocks idle at kDeadBias, live tenancies at >= 1, and the
//     1 -> kDeadBias "last reference" transition is one CAS — the count is
//     never observed at 0, so a phantom decrement can only be the genuine
//     last release of a live tenancy (it frees correctly) and can never
//     double-free a dead block;
//   * the counters are revived with fetch_add (never a store), so phantom
//     increments in flight across a reallocation stay counted.
//
// Pending-reader increments and the retiring writer's pending-reader read
// are seq_cst: paired with the seq_cst CAS that publishes a new latest
// version, this is the Dekker-style guarantee that a writer which swung the
// chain head sees every reader that validated against the old head — a
// just-registered reader can never be missed (the in-place-reuse hazard the
// ISSUE's ordering bugfix covers).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"
#include "common/slab_pool.hpp"
#include "common/small_vector.hpp"
#include "common/spin.hpp"
#include "graph/task.hpp"

namespace smpss {

class RenamePool;
struct DataEntry;
struct SubmitterAccount;  // dep/renaming.hpp
struct AccessGroup;       // dep/access_group.hpp

class Version {
 public:
  /// The per-block persistent counter cell: constructed exactly once, on the
  /// block's first tenancy, and only ever mutated with read-modify-writes
  /// afterwards (see file comment).
  struct RefCell {
    std::atomic<int> refs;
    std::atomic<int> readers_pending;
  };

  /// Block layout: [RefCell prefix][Version body]. The prefix is padded to
  /// keep the body at max_align.
  static constexpr std::size_t kPrefixBytes = alignof(std::max_align_t);
  static_assert(sizeof(RefCell) <= kPrefixBytes);

  /// Resting refcount of a dead block. Any value a live tenancy can reach
  /// (real tokens + transient speculative pins) stays far below it.
  static constexpr int kDeadBias = 1 << 29;

  /// Storage sentinel of a version published by CAS before its renaming
  /// decision was made; readers spin in storage_wait() until the winning
  /// writer calls finalize_storage().
  static void* unresolved_storage() noexcept {
    return reinterpret_cast<void*>(std::uintptr_t{1});
  }

  /// Pool block size for a Version (prefix + body).
  static constexpr std::size_t block_bytes() noexcept;

  /// Allocate + construct a version on `vpool` with the latest-token
  /// (refs=1) plus a producer token if `producer` is non-null (refs=2);
  /// takes a strong ref on the producer task. `slot` is the submitting
  /// thread's pool slot. `account` (nullable) is the submitter account the
  /// renamed storage was charged to; the credit is issued when this version
  /// frees the buffer — possibly long after the submitting stream drained,
  /// which is why stream accounts are pinned for the runtime's life.
  static Version* create(SlabPool& vpool, unsigned slot, DataEntry* entry,
                         void* storage, std::size_t bytes, bool renamed,
                         TaskNode* producer,
                         SubmitterAccount* account = nullptr);

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  /// Current storage pointer; unresolved_storage() while a concurrent writer
  /// is still deciding between in-place reuse and renaming.
  void* storage() const noexcept {
    return storage_.load(std::memory_order_acquire);
  }

  /// Storage pointer, spinning past the unresolved window. Must be called
  /// before reading bytes()/renamed()/account() of a version another thread
  /// may have published: finalize_storage() is the release that makes those
  /// fields stable.
  void* storage_wait() const noexcept {
    void* s = storage_.load(std::memory_order_acquire);
    while (s == unresolved_storage()) {
      cpu_relax();
      s = storage_.load(std::memory_order_acquire);
    }
    return s;
  }

  /// The winning writer's publication of the renaming decision: storage,
  /// final extent, ownership and the account charged. Release-paired with
  /// storage_wait().
  void finalize_storage(void* s, std::size_t bytes, bool renamed,
                        SubmitterAccount* acct) noexcept {
    bytes_ = bytes;
    renamed_ = renamed;
    account_ = acct;
    storage_.store(s, std::memory_order_release);
  }

  std::size_t bytes() const noexcept { return bytes_; }
  bool renamed() const noexcept { return renamed_; }
  SubmitterAccount* account() const noexcept { return account_; }
  DataEntry* entry() const noexcept { return entry_; }
  TaskNode* producer() const noexcept { return producer_; }

  /// Commuting access group this version is the target of (null for normal
  /// versions). Takes over one group ref; set before publication, cleared
  /// (with the ref released) only by the destructor. Joiners key off it to
  /// recognize an open group at the chain head.
  void set_group(AccessGroup* g) noexcept { group_ = g; }
  AccessGroup* group() const noexcept { return group_; }

  bool is_produced() const noexcept {
    return produced_.load(std::memory_order_acquire);
  }
  void mark_produced() noexcept {
    produced_.store(true, std::memory_order_release);
  }

  // --- reader registration --------------------------------------------------

  /// Register `reader` as a pending reader: bumps the pending count and
  /// takes a lifetime ref on this version. The pending-count increment is
  /// seq_cst — the write half of the Dekker pairing with the retiring
  /// writer's readers_pending() probe (a relaxed increment here could let an
  /// in-place-reusing writer miss a just-registered reader). `record_task`
  /// additionally takes a strong ref on the reader task and records it for
  /// WAR edges — needed only with renaming disabled, where the recording is
  /// serialized by the submission lock (the lock-free chain requires
  /// renaming and never touches the vector).
  void register_reader(TaskNode* reader, bool record_task) {
    rc().refs.fetch_add(1, std::memory_order_relaxed);
    rc().readers_pending.fetch_add(1, std::memory_order_seq_cst);
    if (record_task) {
      reader->add_ref();
      reader_tasks_.push_back(reader);
    }
  }

  /// Undo a speculative registration that failed chain-head validation (the
  /// version was superseded — or died and was recycled — between the load
  /// and the pin). Identical to a reader finishing: the pair is net-zero on
  /// whatever tenancy the counters belong to now.
  void abort_reader_registration(RenamePool& pool) noexcept {
    reader_finished(pool);
  }

  /// Pending readers right now. seq_cst: the read half of the Dekker pairing
  /// (see register_reader) — a writer that just swung the chain head and
  /// reads 0 here is guaranteed no reader can still validate against the
  /// superseded version.
  int readers_pending() const noexcept {
    return rc().readers_pending.load(std::memory_order_seq_cst);
  }

  /// Submission-order view of recorded reader tasks (WAR edges in the
  /// no-renaming configuration; submission-lock serialized).
  const SmallVector<TaskNode*, 4>& reader_tasks() const noexcept {
    return reader_tasks_;
  }

  // --- token release (any thread) -------------------------------------------

  /// A reading task finished: drop its pending-reader mark, then its ref.
  void reader_finished(RenamePool& pool) noexcept {
    rc().readers_pending.fetch_sub(1, std::memory_order_acq_rel);
    release(pool);
  }

  /// Take one additional lifetime reference (spectulative pins go through
  /// register_reader; this is for already-validated holders).
  void add_ref() noexcept { rc().refs.fetch_add(1, std::memory_order_relaxed); }

  /// Drop one lifetime reference; destroys the version at zero. The last
  /// reference transitions the persistent count 1 -> kDeadBias in a single
  /// CAS, so the block is never observed at 0 (see file comment).
  void release(RenamePool& pool) noexcept;

  /// Transfer storage ownership out of this version (used when a successor
  /// version reuses the same bytes in place): the buffer will no longer be
  /// freed when this version dies. Only the (unique) superseding writer may
  /// call this, and only after observing readers_pending() == 0.
  void disown_storage() noexcept { renamed_ = false; }

 private:
  Version(DataEntry* entry, void* storage, std::size_t bytes, bool renamed,
          TaskNode* producer, SubmitterAccount* account, SlabPool* vpool);
  ~Version();

  RefCell& rc() const noexcept {
    return *reinterpret_cast<RefCell*>(
        reinterpret_cast<char*>(const_cast<Version*>(this)) - kPrefixBytes);
  }

  DataEntry* entry_;
  std::atomic<void*> storage_;
  std::size_t bytes_;
  bool renamed_;
  SubmitterAccount* account_;  // stream charged for renamed storage, or null
  TaskNode* producer_;  // strong ref; null for initial versions
  SlabPool* vpool_;     // the type-stable pool this block came from
  AccessGroup* group_;  // commuting group targeting this version, or null
  std::atomic<bool> produced_;
  SmallVector<TaskNode*, 4> reader_tasks_;  // strong refs, submission-order writes
};

constexpr std::size_t Version::block_bytes() noexcept {
  return kPrefixBytes + sizeof(Version);
}

/// Per-datum bookkeeping (address-mode analysis). Entries live in the
/// analyzer's lock-free chained hash table (per-shard bucket arrays with
/// CAS-insert; see DependencyAnalyzer) and are address-stable for the phase:
/// versions point back at their entry, and entries are only freed at
/// flush_all(), which requires quiescence.
struct DataEntry {
  void* user_ptr = nullptr;  ///< the address the program passes to tasks
  /// Largest extent ever *written* at this address. Invariant: the latest
  /// version always covers all of it (smaller writes inherit the
  /// predecessor's tail), so copying back `latest` alone restores the
  /// datum — see DependencyAnalyzer::process_write. Maintained with
  /// fetch-max under concurrent writers.
  std::atomic<std::size_t> bytes{0};
  /// The chain head (owns the latest-token). Swung by CAS on the lock-free
  /// path; plain release stores under the shard mutex otherwise.
  std::atomic<Version*> latest{nullptr};

  /// Count of unfinished accesses whose storage is the *user* buffer.
  /// wait_on() needs user storage quiescent before copying a renamed latest
  /// version back into it.
  std::atomic<int> user_storage_pending{0};

  /// Hash-chain link (prepend-only until flush).
  std::atomic<DataEntry*> next{nullptr};
};

}  // namespace smpss
