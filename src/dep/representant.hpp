// Representants (paper Sec. V.B): "a memory address that represents a
// possibly non-contiguous collection of memory addresses. Each representant
// is normally associated to an opaque pointer that is used by the tasks to
// access the actual data. [...] By projecting region accesses on their
// representants, a programmer may introduce back the missing dependency
// information."
//
// RepresentantPool hands out stable one-byte addresses to stand for logical
// pieces of data (array regions, tree nodes, ...). Tasks pass representants
// through in()/out()/inout() to express the dependencies, and the real data
// through opaque() so the analyzer skips it.
//
// The paper's caveat applies: "since renaming is automatic and transparent,
// representants cannot be reliably used if there are false dependencies
// between the represented data" — design the representant mapping so that
// each datum piece has exactly one representant (e.g. one per sort-tree
// node in the Multisort app).
#pragma once

#include <deque>

namespace smpss {

class RepresentantPool {
 public:
  /// A fresh representant address, stable for the pool's lifetime.
  char* fresh() {
    slots_.push_back(0);
    return &slots_.back();
  }

  std::size_t size() const noexcept { return slots_.size(); }

 private:
  std::deque<char> slots_;  // deque: push_back never moves prior elements
};

}  // namespace smpss
