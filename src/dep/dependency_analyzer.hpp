// Address-mode dependency analysis with renaming (paper Sec. II).
//
// "The runtime takes the memory address, size and directionality of each
// parameter at each task invocation and uses them to analyze the
// dependencies between them." Data are keyed by their base address; each
// datum carries a chain of versions (see dep/version.hpp). With renaming
// enabled (the paper's default) only true RAW dependencies produce edges;
// WAR/WAW hazards are absorbed by allocating fresh storage. With renaming
// disabled (an ablation the paper argues against) anti- and output-
// dependency edges are inserted instead.
//
// Threading: all methods run under the runtime's *submission order* — plain
// main-thread execution in the paper-faithful configuration, or serialized
// by the Runtime's submission mutex when nested tasks are enabled (any
// thread may then submit). Workers interact with the data this class
// creates only via the atomic tokens on TaskNode/Version, which is why the
// hazard probes here (readers_pending / is_produced) stay correct while
// tasks retire concurrently: pending-reader counts only shrink and produced
// flags only rise, so a stale read can at worst cause a spurious rename,
// never a missed hazard.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "dep/access.hpp"
#include "dep/renaming.hpp"
#include "dep/version.hpp"
#include "graph/graph_recorder.hpp"
#include "graph/task.hpp"

namespace smpss {

class DependencyAnalyzer {
 public:
  struct Counters {
    std::uint64_t accesses = 0;
    std::uint64_t raw_edges = 0;
    std::uint64_t war_edges = 0;      // only with renaming disabled
    std::uint64_t waw_edges = 0;      // only with renaming disabled
    std::uint64_t in_place_reuses = 0;
    std::uint64_t copy_ins = 0;       // inout renames (byte copies)
    std::uint64_t copy_in_bytes = 0;
    std::uint64_t copyback_bytes = 0; // barrier/wait_on realignment copies
    std::uint64_t tracked_objects = 0;
  };

  DependencyAnalyzer(RenamePool& pool, bool renaming_enabled,
                     GraphRecorder* recorder) noexcept
      : pool_(pool), renaming_(renaming_enabled), recorder_(recorder) {}

  DependencyAnalyzer(const DependencyAnalyzer&) = delete;
  DependencyAnalyzer& operator=(const DependencyAnalyzer&) = delete;

  ~DependencyAnalyzer();

  /// Analyze one directional parameter of `task`: wire dependency edges,
  /// create/supersede versions, decide renaming. Returns the storage the
  /// task body must use for this parameter.
  void* process(TaskNode* task, const AccessDesc& access);

  /// Barrier-time realignment: copy every renamed latest version back to its
  /// user storage and drop all tracking state. Requires all tasks complete.
  void flush_all();

  /// Lookup for wait_on(); nullptr when the address was never tracked.
  DataEntry* find(const void* addr);

  /// Copy the latest version's bytes back into user storage (no state
  /// change; chain stays intact so later tasks keep their versions).
  /// Requires the latest version to be produced and user storage quiescent.
  void copy_back_latest(DataEntry& entry);

  /// True if this address is currently tracked (used to diagnose mixing of
  /// address-mode and region-mode access on one array).
  bool tracks(const void* addr) const {
    return entries_.find(addr) != entries_.end();
  }

  const Counters& counters() const noexcept { return counters_; }
  std::size_t live_entries() const noexcept { return entries_.size(); }

 private:
  DataEntry& entry_for(void* addr, std::size_t bytes);
  void add_edge(TaskNode* pred, TaskNode* succ, EdgeKind kind);
  void* process_read(TaskNode* task, DataEntry& e, std::size_t bytes);
  void* process_write(TaskNode* task, DataEntry& e, std::size_t bytes,
                      bool also_reads);

  RenamePool& pool_;
  bool renaming_;
  GraphRecorder* recorder_;
  Counters counters_;
  std::unordered_map<const void*, DataEntry> entries_;
};

}  // namespace smpss
