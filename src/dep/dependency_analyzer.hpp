// Address-mode dependency analysis with renaming (paper Sec. II).
//
// "The runtime takes the memory address, size and directionality of each
// parameter at each task invocation and uses them to analyze the
// dependencies between them." Data are keyed by their base address; each
// datum carries a chain of versions (see dep/version.hpp). With renaming
// enabled (the paper's default) only true RAW dependencies produce edges;
// WAR/WAW hazards are absorbed by allocating fresh storage. With renaming
// disabled (an ablation the paper argues against) anti- and output-
// dependency edges are inserted instead.
//
// Sharding: the per-datum tables are split into `shard_count` hash-sharded
// maps, each with its own mutex, so concurrent submitters only serialize
// when their footprints collide on a shard — per-datum version-chain order,
// not a global submission order, is what dependency correctness rests on.
// The shard mutexes are *not* taken here: the Runtime acquires every shard a
// task touches up front, in index order (two-phase locking, see
// Runtime::analyze_accesses), which makes each whole-task analysis atomic
// with respect to any other task sharing a shard and keeps the graph
// acyclic. In the paper-faithful single-submitter configuration the
// Runtime skips the locks entirely and calls straight in.
//
// Workers interact with the data this class creates only via the atomic
// tokens on TaskNode/Version, which is why the hazard probes here
// (readers_pending / is_produced) stay correct while tasks retire
// concurrently: pending-reader counts only shrink and produced flags only
// rise, so a stale read can at worst cause a spurious rename, never a
// missed hazard.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/cache.hpp"
#include "dep/access.hpp"
#include "dep/renaming.hpp"
#include "dep/version.hpp"
#include "graph/graph_recorder.hpp"
#include "graph/task.hpp"

namespace smpss {

class DependencyAnalyzer {
 public:
  struct Counters {
    std::uint64_t accesses = 0;
    std::uint64_t raw_edges = 0;
    std::uint64_t war_edges = 0;      // only with renaming disabled
    std::uint64_t waw_edges = 0;      // only with renaming disabled
    std::uint64_t in_place_reuses = 0;
    std::uint64_t copy_ins = 0;       // inout renames + extent merges (copies)
    std::uint64_t copy_in_bytes = 0;
    std::uint64_t copyback_bytes = 0; // barrier/wait_on realignment copies
    std::uint64_t tracked_objects = 0;

    Counters& operator+=(const Counters& o) noexcept {
      accesses += o.accesses;
      raw_edges += o.raw_edges;
      war_edges += o.war_edges;
      waw_edges += o.waw_edges;
      in_place_reuses += o.in_place_reuses;
      copy_ins += o.copy_ins;
      copy_in_bytes += o.copy_in_bytes;
      copyback_bytes += o.copyback_bytes;
      tracked_objects += o.tracked_objects;
      return *this;
    }
  };

  DependencyAnalyzer(RenamePool& pool, bool renaming_enabled,
                     unsigned shard_count, GraphRecorder* recorder);

  DependencyAnalyzer(const DependencyAnalyzer&) = delete;
  DependencyAnalyzer& operator=(const DependencyAnalyzer&) = delete;

  ~DependencyAnalyzer();

  // --- sharding (two-phase acquisition is the Runtime's job) ----------------

  unsigned shard_count() const noexcept { return shard_mask_ + 1; }

  /// Shard index owning `addr`. Stable for the analyzer's lifetime.
  unsigned shard_of(const void* addr) const noexcept {
    // Fibonacci hash over the address with the low alignment bits dropped;
    // neighbouring allocations land on different shards.
    auto p = reinterpret_cast<std::uintptr_t>(addr) >> 4;
    return static_cast<unsigned>(
               (static_cast<std::uint64_t>(p) * 0x9E3779B97F4A7C15ull) >> 32) &
           shard_mask_;
  }

  /// The mutex guarding shard `s`. Lock shards in increasing index order.
  std::mutex& shard_mutex(unsigned s) const noexcept {
    return shards_[s].mu;
  }

  // --- analysis (callers hold the owning shard's mutex in concurrent mode) --

  /// Analyze one directional parameter of `task`: wire dependency edges,
  /// create/supersede versions, decide renaming. Returns the storage the
  /// task body must use for this parameter.
  void* process(TaskNode* task, const AccessDesc& access);

  /// Barrier-time realignment: copy every renamed latest version back to its
  /// user storage and drop all tracking state. Requires all tasks complete.
  void flush_all();

  /// Lookup for wait_on(); nullptr when the address was never tracked.
  DataEntry* find(const void* addr);

  /// Copy the latest version's bytes back into user storage (no state
  /// change; chain stays intact so later tasks keep their versions).
  /// Requires the latest version to be produced and user storage quiescent.
  void copy_back_latest(DataEntry& entry);

  /// True if this address is currently tracked (used to diagnose mixing of
  /// address-mode and region-mode access on one array).
  bool tracks(const void* addr) const {
    const Shard& sh = shards_[shard_of(addr)];
    return sh.entries.find(addr) != sh.entries.end();
  }

  // --- introspection --------------------------------------------------------

  /// Aggregate the per-shard counters. With `lock` the snapshot synchronizes
  /// on each shard mutex in turn (concurrent-submitter mode); without it the
  /// read assumes the single-submitter discipline.
  Counters counters_snapshot(bool lock) const;

  std::size_t live_entries() const noexcept {
    std::size_t n = 0;
    for (unsigned s = 0; s <= shard_mask_; ++s) n += shards_[s].entries.size();
    return n;
  }

 private:
  /// One stripe of the datum table: its own map, mutex, and counters, padded
  /// so concurrent submitters on different shards never share a cache line.
  struct alignas(kCacheLineSize) Shard {
    mutable std::mutex mu;
    std::unordered_map<const void*, DataEntry> entries;
    Counters counters;
  };

  Shard& shard_for(const void* addr) noexcept {
    return shards_[shard_of(addr)];
  }

  DataEntry& entry_for(Shard& sh, void* addr, std::size_t bytes);
  void add_edge(Shard& sh, TaskNode* pred, TaskNode* succ, EdgeKind kind);
  void* process_read(Shard& sh, TaskNode* task, DataEntry& e,
                     std::size_t bytes);
  void* process_write(Shard& sh, TaskNode* task, DataEntry& e,
                      std::size_t bytes, bool also_reads);

  RenamePool& pool_;
  bool renaming_;
  GraphRecorder* recorder_;
  unsigned shard_mask_;  // shard count is a power of two
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace smpss
