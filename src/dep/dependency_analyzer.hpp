// Address-mode dependency analysis with renaming (paper Sec. II).
//
// "The runtime takes the memory address, size and directionality of each
// parameter at each task invocation and uses them to analyze the
// dependencies between them." Data are keyed by their base address; each
// datum carries a chain of versions (see dep/version.hpp). With renaming
// enabled (the paper's default) only true RAW dependencies produce edges;
// WAR/WAW hazards are absorbed by allocating fresh storage. With renaming
// disabled (an ablation the paper argues against) anti- and output-
// dependency edges are inserted instead.
//
// Concurrency: the per-datum tables are hash-sharded. In the lock-free
// configuration (SMPSS_DEP_LOCKFREE, the default with renaming + nested
// submitters) submission takes no mutex at all:
//
//   * the entry table is a per-shard array of CAS-prepend bucket chains
//     (entries are address-stable and only reclaimed at flush, which
//     requires quiescence);
//   * a reader pins the chain head speculatively — register first, then
//     validate `latest` is unchanged, retrying on a lost race;
//   * a writer publishes its new version by CAS on `DataEntry::latest`
//     *before* deciding between in-place reuse and renaming; the CAS
//     transfers the superseded version's latest-token to the writer, whose
//     subsequent hazard probes (readers_pending / is_produced) are paired
//     seq_cst with the reader's registration protocol so a just-registered
//     reader is never missed. Readers of the new version spin past the
//     storage-unresolved window (Version::storage_wait).
//
//   Version reclamation rides on the slab pool's type-stable blocks and
//   generation counters: see the scheme comment atop dep/version.hpp.
//
// In the locked fallback (SMPSS_DEP_LOCKFREE=0, or whenever renaming is
// off) each shard has a mutex which the Runtime acquires for every shard a
// task touches up front, in index order (two-phase locking, see
// Runtime::analyze_accesses). The same version-publication code runs under
// the locks — uncontended, the CASes always succeed first try. In the
// paper-faithful single-submitter configuration the Runtime skips the locks
// entirely and calls straight in.
//
// Counters are striped by submitting thread (no shared hot line) and summed
// on snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cache.hpp"
#include "common/slab_pool.hpp"
#include "dep/access.hpp"
#include "dep/renaming.hpp"
#include "dep/version.hpp"
#include "graph/graph_recorder.hpp"
#include "graph/task.hpp"

namespace smpss {

struct AccessGroup;  // dep/access_group.hpp

class DependencyAnalyzer {
 public:
  struct Counters {
    std::uint64_t accesses = 0;
    std::uint64_t raw_edges = 0;
    std::uint64_t war_edges = 0;      // only with renaming disabled
    std::uint64_t waw_edges = 0;      // only with renaming disabled
    std::uint64_t in_place_reuses = 0;
    std::uint64_t copy_ins = 0;       // inout renames + extent merges (copies)
    std::uint64_t copy_in_bytes = 0;
    std::uint64_t copyback_bytes = 0; // barrier/wait_on realignment copies
    std::uint64_t tracked_objects = 0;
    std::uint64_t cas_retries = 0;    // lost publication/pin races (lock-free)
    std::uint64_t groups_opened = 0;  // commuting groups created
    std::uint64_t group_joins = 0;    // member tasks joined onto open groups
    std::uint64_t groups_closed = 0;  // groups sealed (non-matching access,
                                      // size/op mismatch, or barrier)
    std::uint64_t commute_edges = 0;  // member → group-close completion edges

    Counters& operator+=(const Counters& o) noexcept {
      accesses += o.accesses;
      raw_edges += o.raw_edges;
      war_edges += o.war_edges;
      waw_edges += o.waw_edges;
      in_place_reuses += o.in_place_reuses;
      copy_ins += o.copy_ins;
      copy_in_bytes += o.copy_in_bytes;
      copyback_bytes += o.copyback_bytes;
      tracked_objects += o.tracked_objects;
      cas_retries += o.cas_retries;
      groups_opened += o.groups_opened;
      group_joins += o.group_joins;
      groups_closed += o.groups_closed;
      commute_edges += o.commute_edges;
      return *this;
    }
  };

  /// `owner_slots`/`cache_blocks` size the type-stable version pool (same
  /// slot scheme as the TaskArena: one slot per submitting thread).
  /// `lockfree` selects CAS publication without shard mutexes; requires
  /// renaming (the no-renaming ablation records reader task lists, which
  /// need the submission lock).
  DependencyAnalyzer(RenamePool& pool, bool renaming_enabled,
                     unsigned shard_count, GraphRecorder* recorder,
                     unsigned owner_slots, unsigned cache_blocks,
                     bool lockfree);

  DependencyAnalyzer(const DependencyAnalyzer&) = delete;
  DependencyAnalyzer& operator=(const DependencyAnalyzer&) = delete;

  ~DependencyAnalyzer();

  bool lockfree() const noexcept { return lockfree_; }

  /// When set (the aware scheduling policy wants its submit hook fed), an
  /// in-place-reused inout registers its RAW-predecessor version as a read,
  /// so Runtime::policy_submit sees every true-dependence producer —
  /// without it, only renamed inputs reach `task->reads` and inout chains
  /// are invisible to critical-path priorities. Set before any submission.
  void set_track_raw_preds(bool on) noexcept { track_raw_preds_ = on; }

  // --- commuting groups (Dir::Commutative / Dir::Concurrent) ----------------
  // A run of consecutive matching commutative/concurrent accesses to one
  // datum forms an AccessGroup: one synthetic "close" TaskNode stands in as
  // the version producer, members take a Member completion edge to it and no
  // edges among themselves. See dep/access_group.hpp for the full scheme.

  /// The Runtime installs a factory that allocates a group-close TaskNode
  /// (arena slot, seq number, recorder entry). Must be set before the first
  /// commutative/concurrent access is processed.
  void set_close_factory(std::function<TaskNode*(unsigned slot)> f) {
    close_factory_ = std::move(f);
  }

  /// Seal every still-open group (barrier / wait_on: later accesses must
  /// order after the whole group). Close nodes whose membership is already
  /// complete land on the pending-close stack.
  void close_open_groups();

  /// True if some group-close node became ready during analysis on any
  /// thread and awaits Runtime::retire_close. Cheap enough for the submit
  /// fast path.
  bool has_pending_closes() const noexcept {
    return pending_closes_.load(std::memory_order_relaxed) != nullptr;
  }

  /// Drain the ready group-close stack (linked through queue_next). The
  /// Runtime retires each node; the list is snapshot-and-detached, so
  /// concurrent pushes land on the next drain.
  TaskNode* take_pending_closes() noexcept {
    return pending_closes_.exchange(nullptr, std::memory_order_acq_rel);
  }

  // --- sharding (two-phase acquisition is the Runtime's job; locked mode) ---

  unsigned shard_count() const noexcept { return shard_mask_ + 1; }

  /// Shard index owning `addr`. Stable for the analyzer's lifetime.
  unsigned shard_of(const void* addr) const noexcept {
    return static_cast<unsigned>(hash_of(addr) >> 32) & shard_mask_;
  }

  /// The mutex guarding shard `s`. Lock shards in increasing index order.
  /// Unused (never taken) in the lock-free configuration.
  std::mutex& shard_mutex(unsigned s) const noexcept {
    return shards_[s].mu;
  }

  // --- analysis -------------------------------------------------------------
  // Lock-free mode: callable concurrently from any submitter, no locks held.
  // Locked mode: callers hold the owning shard's mutex (or are the sole
  // submitter).

  /// Analyze one directional parameter of `task`: wire dependency edges,
  /// create/supersede versions, decide renaming. Returns the storage the
  /// task body must use for this parameter.
  void* process(TaskNode* task, const AccessDesc& access);

  /// Barrier-time realignment: copy every renamed latest version back to its
  /// user storage and drop all tracking state. Requires all tasks complete.
  void flush_all();

  /// Lookup for wait_on(); nullptr when the address was never tracked.
  /// Lock-free (prepend-only chains), safe in both modes.
  DataEntry* find(const void* addr);

  /// Copy the latest version's bytes back into user storage (no state
  /// change; chain stays intact so later tasks keep their versions).
  /// Requires the latest version to be produced and user storage quiescent.
  /// Locked-mode wait_on path: the caller holds the shard mutex.
  void copy_back_latest(DataEntry& entry);

  /// Lock-free wait_on step: pin the latest version (forcing concurrent
  /// writers to rename, so the copy source stays stable), and copy it back
  /// if it is produced and user storage is quiescent.
  enum class CopyBack { kUntracked, kNotReady, kDone };
  CopyBack try_copy_back_lockfree(const void* addr);

  /// True if this address is currently tracked (used to diagnose mixing of
  /// address-mode and region-mode access on one array).
  bool tracks(const void* addr) { return find(addr) != nullptr; }

  // --- introspection --------------------------------------------------------

  /// Sum the per-thread counter stripes. Safe concurrently in both modes.
  Counters counters_snapshot() const;

  std::size_t live_entries() const noexcept;

 private:
  /// Per-submitting-thread counter stripe: plain atomic bumps, no shared
  /// cache line between concurrent submitters.
  struct alignas(kCacheLineSize) CounterStripe {
    std::atomic<std::uint64_t> accesses{0};
    std::atomic<std::uint64_t> raw_edges{0};
    std::atomic<std::uint64_t> war_edges{0};
    std::atomic<std::uint64_t> waw_edges{0};
    std::atomic<std::uint64_t> in_place_reuses{0};
    std::atomic<std::uint64_t> copy_ins{0};
    std::atomic<std::uint64_t> copy_in_bytes{0};
    std::atomic<std::uint64_t> copyback_bytes{0};
    std::atomic<std::uint64_t> tracked_objects{0};
    std::atomic<std::uint64_t> cas_retries{0};
    std::atomic<std::uint64_t> groups_opened{0};
    std::atomic<std::uint64_t> group_joins{0};
    std::atomic<std::uint64_t> groups_closed{0};
    std::atomic<std::uint64_t> commute_edges{0};
  };
  static constexpr unsigned kStripes = 16;  // power of two

  static constexpr unsigned kBucketsPerShard = 64;  // power of two

  /// One stripe of the datum table: a small bucket array of CAS-prepend
  /// entry chains, plus the mutex the locked configuration's two-phase
  /// acquisition uses. Padded so submitters on different shards never share
  /// a cache line.
  struct alignas(kCacheLineSize) Shard {
    mutable std::mutex mu;
    std::atomic<DataEntry*> buckets[kBucketsPerShard] = {};
  };

  static std::uint64_t hash_of(const void* addr) noexcept {
    // Fibonacci hash over the address with the low alignment bits dropped;
    // neighbouring allocations land on different shards. Shard and bucket
    // indices take disjoint bit ranges of the same product.
    auto p = reinterpret_cast<std::uintptr_t>(addr) >> 4;
    return static_cast<std::uint64_t>(p) * 0x9E3779B97F4A7C15ull;
  }
  static unsigned bucket_of_hash(std::uint64_t h) noexcept {
    return static_cast<unsigned>(h >> 20) & (kBucketsPerShard - 1);
  }

  Shard& shard_for(const void* addr) noexcept {
    return shards_[shard_of(addr)];
  }
  CounterStripe& stripe_for(std::uint32_t slot) noexcept {
    return stripes_[slot & (kStripes - 1)];
  }

  static void fetch_max(std::atomic<std::size_t>& a, std::size_t v) noexcept {
    std::size_t cur = a.load(std::memory_order_relaxed);
    while (cur < v && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
    }
  }

  DataEntry& entry_for(CounterStripe& st, unsigned slot, void* addr,
                       std::size_t bytes);
  void add_edge(CounterStripe& st, TaskNode* pred, TaskNode* succ,
                EdgeKind kind);
  /// Speculatively pin the chain head as a reader: register (count + ref)
  /// first, then validate `latest` is unchanged; on a lost race the
  /// registration is aborted (net-zero even on a recycled block) and the
  /// pin retries against the new head.
  Version* pin_latest(CounterStripe& st, TaskNode* task, DataEntry& e);
  void* process_read(CounterStripe& st, TaskNode* task, DataEntry& e,
                     std::size_t bytes);
  void* process_write(CounterStripe& st, unsigned slot, TaskNode* task,
                      DataEntry& e, std::size_t bytes, bool also_reads,
                      AccessGroup* group = nullptr);
  void* process_write_lockfree(CounterStripe& st, unsigned slot,
                               TaskNode* task, DataEntry& e, std::size_t bytes,
                               bool also_reads, AccessGroup* group = nullptr);
  /// Commutative/concurrent access: join the open group at the chain head if
  /// it matches, otherwise open a fresh group (sealing whatever was there).
  void* process_commuting(CounterStripe& st, unsigned slot, TaskNode* task,
                          DataEntry& e, const AccessDesc& access);
  /// Wire `task` into open group `g` (caller holds g->mu, head verified).
  void join_member(CounterStripe& st, TaskNode* task, AccessGroup* g);
  /// Seal `g` if still open; the winner drops the close node's open-guard
  /// and, if membership is already complete, pushes it on pending_closes_.
  void seal_group(CounterStripe& st, AccessGroup* g);
  void push_pending_close(TaskNode* close) noexcept;
  void register_open_group(AccessGroup* g);

  RenamePool& pool_;
  bool renaming_;
  bool lockfree_;
  bool track_raw_preds_ = false;
  GraphRecorder* recorder_;
  unsigned shard_mask_;  // shard count is a power of two
  unsigned workers_;     ///< sizes per-worker reduction privates (owner_slots)
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<CounterStripe[]> stripes_;
  SlabPool vpool_;  ///< type-stable Version blocks (see dep/version.hpp)

  std::function<TaskNode*(unsigned slot)> close_factory_;
  /// Ready group-close nodes (Treiber stack through TaskNode::queue_next),
  /// awaiting Runtime::retire_close. Per-analyzer so concurrently live
  /// runtimes never retire each other's nodes.
  std::atomic<TaskNode*> pending_closes_{nullptr};
  /// Registry of groups that may still be open, so barriers can seal them.
  /// Holds one group ref per entry; sealed groups are pruned lazily.
  std::mutex groups_mu_;
  std::vector<AccessGroup*> open_groups_;
};

}  // namespace smpss
