#include "dep/version.hpp"

#include "dep/renaming.hpp"

#include "common/cache.hpp"

namespace smpss {

Version::Version(DataEntry* entry, void* storage, std::size_t bytes,
                 bool renamed, TaskNode* producer, SubmitterAccount* account)
    : entry_(entry),
      storage_(storage),
      bytes_(bytes),
      renamed_(renamed),
      account_(account),
      producer_(producer),
      produced_(producer == nullptr),  // initial versions are already valid
      refs_(producer ? 2 : 1) {        // latest token (+ producer token)
  if (producer_) producer_->add_ref();
}

Version::~Version() {
  if (producer_) producer_->release();
  for (TaskNode* t : reader_tasks_) t->release();
}

void Version::release(RenamePool& pool) noexcept {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (renamed_) pool.deallocate(storage_, bytes_, account_);
    delete this;
  }
}

}  // namespace smpss
