#include "dep/version.hpp"

#include <new>

#include "dep/access_group.hpp"
#include "dep/renaming.hpp"

namespace smpss {

Version* Version::create(SlabPool& vpool, unsigned slot, DataEntry* entry,
                         void* storage, std::size_t bytes, bool renamed,
                         TaskNode* producer, SubmitterAccount* account) {
  void* mem = vpool.allocate(slot);
  const int init = producer ? 2 : 1;  // latest token (+ producer token)
  auto* cell = static_cast<RefCell*>(mem);
  if (vpool.generation_of(mem) == 1) {
    // First tenancy of this block: the persistent counter cell does not
    // exist yet. Nobody else can hold a pointer into the block, so a plain
    // construction is race-free exactly once.
    ::new (cell) RefCell{};
    cell->refs.store(init, std::memory_order_relaxed);
    cell->readers_pending.store(0, std::memory_order_relaxed);
  } else {
    // Revival: the dead count idles at kDeadBias plus any in-flight phantom
    // excursions, which must stay counted — hence fetch_add, never a store.
    cell->refs.fetch_add(init - kDeadBias, std::memory_order_relaxed);
  }
  return ::new (static_cast<char*>(mem) + kPrefixBytes)
      Version(entry, storage, bytes, renamed, producer, account, &vpool);
}

Version::Version(DataEntry* entry, void* storage, std::size_t bytes,
                 bool renamed, TaskNode* producer, SubmitterAccount* account,
                 SlabPool* vpool)
    : entry_(entry),
      storage_(storage),
      bytes_(bytes),
      renamed_(renamed),
      account_(account),
      producer_(producer),
      vpool_(vpool),
      group_(nullptr),
      produced_(producer == nullptr) {  // initial versions are already valid
  if (producer_) producer_->add_ref();
}

Version::~Version() {
  if (producer_) producer_->release();
  if (group_) group_->release();
  for (TaskNode* t : reader_tasks_) t->release();
}

void Version::release(RenamePool& pool) noexcept {
  std::atomic<int>& refs = rc().refs;
  int cur = refs.load(std::memory_order_relaxed);
  while (true) {
    SMPSS_ASSERT(cur >= 1);
    // The last live reference parks the persistent count directly at
    // kDeadBias — one atomic step, so no thread ever observes 0 and a
    // phantom decrement on the dead block cannot reach the free path again.
    const int next = cur == 1 ? kDeadBias : cur - 1;
    if (refs.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      if (cur != 1) return;
      break;
    }
  }
  SlabPool* vpool = vpool_;
  if (renamed_)
    pool.deallocate(storage_.load(std::memory_order_relaxed), bytes_,
                    account_);
  this->~Version();
  vpool->deallocate(reinterpret_cast<char*>(this) - kPrefixBytes);
}

}  // namespace smpss
